package sim

import (
	"context"
	"fmt"
	"time"

	"gsfl/internal/metrics"
	"gsfl/internal/parallel"
	"gsfl/internal/schemes"
	"gsfl/obs"
)

// RoundEvent is the structured progress report the Runner streams to
// observers after every completed round.
type RoundEvent struct {
	// Scheme is the trainer's name.
	Scheme string
	// Round is the 1-based index of the round that just completed;
	// Rounds is the run's configured total.
	Round  int
	Rounds int
	// Ledger is the round's per-component latency breakdown.
	Ledger *Ledger
	// RoundSeconds is the round's critical-path latency;
	// ElapsedSeconds is the cumulative virtual training time.
	RoundSeconds   float64
	ElapsedSeconds float64
	// HostSeconds is the real (host) wall-clock time the round took to
	// execute, including its evaluation and checkpoint when they ran.
	// Unlike every other field it is not deterministic; progress
	// reporting and ETA estimation use it so observers need not time
	// rounds themselves.
	HostSeconds float64
	// Eval is the post-round evaluation, nil on rounds the evaluation
	// cadence skipped.
	Eval *Eval
	// CheckpointPath is the checkpoint written after this round, empty
	// when none was.
	CheckpointPath string
}

// Observer receives RoundEvents as the run progresses. OnRound is
// called synchronously from the run loop, in round order.
type Observer interface {
	OnRound(RoundEvent)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(RoundEvent)

// OnRound implements Observer.
func (f ObserverFunc) OnRound(e RoundEvent) { f(e) }

// RunOption configures a Runner.
type RunOption func(*Runner)

// WithRounds sets the total number of training rounds (required; on
// resume it is the overall total, including already-completed rounds).
func WithRounds(n int) RunOption {
	return func(r *Runner) { r.rounds = n }
}

// WithEvalEvery sets the evaluation cadence in rounds (default 1). The
// final round is always evaluated.
func WithEvalEvery(k int) RunOption {
	return func(r *Runner) { r.evalEvery = k }
}

// WithObserver subscribes an observer to the run's RoundEvent stream;
// repeat to subscribe several.
func WithObserver(obs Observer) RunOption {
	return func(r *Runner) { r.observers = append(r.observers, obs) }
}

// WithWorkers sets the shared worker pool size for the run
// (0 = GOMAXPROCS, 1 = serial). Results are bit-identical for any
// worker count; omitting the option leaves the pool untouched.
func WithWorkers(n int) RunOption {
	return func(r *Runner) { r.workers = &n }
}

// WithCheckpointEvery enables checkpointing: the trainer's complete
// state is persisted to the WithCheckpointPath file after every n-th
// round and after the final round. Requires a trainer constructed by
// New (or Resume) whose scheme supports state capture — all built-in
// schemes do.
func WithCheckpointEvery(n int) RunOption {
	return func(r *Runner) { r.ckptEvery = n }
}

// WithCheckpointPath sets the checkpoint file location. The file is
// rewritten atomically at each checkpoint. On resume it defaults to the
// file the run resumed from.
func WithCheckpointPath(path string) RunOption {
	return func(r *Runner) { r.ckptPath = path }
}

// WithTracer attaches an execution tracer (gsfl/obs) to the run. For
// trainers constructed by sim.New the tracer is installed into the
// environment, so every round's latency pricing emits virtual-clock
// phase spans (round → group/client lane → phase); the Runner
// additionally marks evaluations on each scheme's "eval" lane. A nil
// tracer — or omitting the option — leaves the run on the zero-cost
// disabled path.
func WithTracer(t *obs.Tracer) RunOption {
	return func(r *Runner) { r.tracer = t }
}

// Runner drives one trainer for a configured number of rounds,
// streaming RoundEvents and optionally checkpointing. Create with
// NewRunner or Resume; a Runner runs once.
type Runner struct {
	trainer   schemes.Trainer
	rounds    int
	evalEvery int
	observers []Observer
	workers   *int
	ckptEvery int
	ckptPath  string
	tracer    *obs.Tracer

	// Resume state: rounds already completed, their cumulative latency,
	// and the curve points they produced.
	startRound   int
	startElapsed float64
	priorPoints  []Point

	err error // construction error, surfaced by Run
}

// NewRunner builds a Runner over a trainer. Configuration errors are
// deferred to Run so call sites can stay on one line.
func NewRunner(tr Trainer, opts ...RunOption) *Runner {
	r := &Runner{trainer: tr, evalEvery: 1}
	for _, o := range opts {
		o(r)
	}
	r.err = r.validate()
	return r
}

func (r *Runner) validate() error {
	if r.trainer == nil {
		return fmt.Errorf("sim: runner needs a trainer")
	}
	if r.rounds <= r.startRound {
		return fmt.Errorf("sim: rounds %d must exceed completed rounds %d (set sim.WithRounds)", r.rounds, r.startRound)
	}
	if r.evalEvery <= 0 {
		return fmt.Errorf("sim: eval cadence %d must be positive", r.evalEvery)
	}
	if r.ckptEvery < 0 {
		return fmt.Errorf("sim: checkpoint cadence %d must not be negative", r.ckptEvery)
	}
	if r.ckptPath != "" && r.ckptEvery == 0 {
		return fmt.Errorf("sim: checkpoint path set without sim.WithCheckpointEvery")
	}
	if r.ckptEvery > 0 {
		if r.ckptPath == "" {
			return fmt.Errorf("sim: checkpointing needs sim.WithCheckpointPath")
		}
		st, ok := r.trainer.(*SchemeTrainer)
		if !ok {
			return fmt.Errorf("sim: checkpointing needs a trainer constructed by sim.New")
		}
		if _, ok := st.Trainer.(schemes.Checkpointer); !ok {
			return fmt.Errorf("sim: scheme %q does not support state capture", st.scheme)
		}
	}
	return nil
}

// Scheme returns the driven trainer's scheme name.
func (r *Runner) Scheme() string {
	if r.trainer == nil {
		return ""
	}
	return r.trainer.Name()
}

// CompletedRounds returns how many rounds were already done before this
// Runner starts — zero for a fresh run, the checkpointed round after
// Resume.
func (r *Runner) CompletedRounds() int { return r.startRound }

// Run executes the remaining rounds. It returns the training curve —
// on resume, including the points restored from the checkpoint — and
// the first error encountered. Cancelling ctx stops the run within one
// round with ctx.Err(); the partial curve is still returned.
func (r *Runner) Run(ctx context.Context) (*Curve, error) {
	if r.err != nil {
		return nil, r.err
	}
	if r.workers != nil {
		parallel.SetWorkers(*r.workers)
	}
	if r.tracer.On() {
		if st, ok := r.trainer.(*SchemeTrainer); ok {
			st.env.Trace = r.tracer
		}
		// On resume, fast-forward the virtual clock to where the
		// checkpointed run left off so new spans land after the (absent)
		// earlier rounds rather than on top of them.
		if gap := r.startElapsed - r.tracer.Now(); gap > 0 {
			r.tracer.Advance(gap)
		}
	}
	curve := &Curve{Scheme: r.trainer.Name(), Points: append([]Point(nil), r.priorPoints...)}
	elapsed := r.startElapsed
	for round := r.startRound + 1; round <= r.rounds; round++ {
		if err := ctx.Err(); err != nil {
			return curve, err
		}
		roundStart := time.Now()
		led, err := r.trainer.Round(ctx)
		if err != nil {
			return curve, r.runErr(ctx, fmt.Errorf("sim: round %d: %w", round, err))
		}
		elapsed += led.Total()
		ev := RoundEvent{
			Scheme:         r.trainer.Name(),
			Round:          round,
			Rounds:         r.rounds,
			Ledger:         led,
			RoundSeconds:   led.Total(),
			ElapsedSeconds: elapsed,
		}
		if round%r.evalEvery == 0 || round == r.rounds {
			e, err := r.trainer.Evaluate(ctx)
			if err != nil {
				return curve, r.runErr(ctx, fmt.Errorf("sim: evaluating after round %d: %w", round, err))
			}
			ev.Eval = &e
			curve.Append(metrics.Point{
				Round: round, LatencySeconds: elapsed, Loss: e.Loss, Accuracy: e.Accuracy,
			})
			if r.tracer.On() {
				lane := r.tracer.Lane(r.trainer.Name(), "eval")
				lane.Seek(elapsed)
				lane.Instant("eval", "eval",
					fmt.Sprintf("round %d acc=%.4f loss=%.4f", round, e.Accuracy, e.Loss))
			}
		}
		if r.ckptEvery > 0 && (round%r.ckptEvery == 0 || round == r.rounds) {
			if err := r.saveCheckpoint(round, elapsed, curve); err != nil {
				return curve, err
			}
			ev.CheckpointPath = r.ckptPath
		}
		ev.HostSeconds = time.Since(roundStart).Seconds()
		for _, obs := range r.observers {
			obs.OnRound(ev)
		}
	}
	return curve, nil
}

// runErr collapses failures caused by cancellation to the bare context
// error, so callers can compare against ctx.Err() directly.
func (r *Runner) runErr(ctx context.Context, err error) error {
	if ctxErr := ctx.Err(); ctxErr != nil {
		return ctxErr
	}
	return err
}
