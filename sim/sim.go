// Package sim is the public run API of the GSFL reproduction: the one
// way to construct and drive a training scheme.
//
// It wraps the internal training machinery behind three ideas:
//
//   - A scheme registry. Every scheme self-registers under its name
//     ("gsfl", "sl", "fl", "cl", "sfl"; importing this package links all
//     five in), Schemes lists them, and New instantiates one over an
//     environment — no scheme-name switch exists anywhere else.
//
//   - A Runner. Built with functional options (WithRounds,
//     WithEvalEvery, WithObserver, WithWorkers, WithCheckpointEvery),
//     it drives rounds under a context, streams a structured RoundEvent
//     to observers as each round completes, and returns the training
//     curve. Cancelling the context stops the run within one round.
//
//   - Checkpoint/resume. A Runner configured with WithCheckpointEvery
//     persists the trainer's complete mutable state at round
//     boundaries; Resume rebuilds the trainer from the file and an
//     identically constructed environment and continues bit-identically
//     — a killed 100-round run restarts from round 50 and produces the
//     exact curve, latencies included, of an uninterrupted run.
//
// Minimal use:
//
//	world, _ := env.Build(env.TestSpec())
//	tr, _ := sim.New("gsfl", world, sim.Options{Groups: 2})
//	curve, err := sim.NewRunner(tr,
//	    sim.WithRounds(50),
//	    sim.WithEvalEvery(5),
//	    sim.WithObserver(sim.ObserverFunc(func(e sim.RoundEvent) {
//	        fmt.Printf("round %d: %.3fs\n", e.Round, e.ElapsedSeconds)
//	    })),
//	).Run(ctx)
package sim

import (
	"gsfl/internal/metrics"
	"gsfl/internal/schemes"
	"gsfl/internal/simnet"

	// The built-in schemes self-register into the registry from their
	// init functions; importing gsfl/sim therefore makes all five
	// available by name.
	_ "gsfl/internal/gsfl"
	_ "gsfl/internal/schemes/cl"
	_ "gsfl/internal/schemes/fl"
	_ "gsfl/internal/schemes/sfl"
	_ "gsfl/internal/schemes/sl"
)

// Aliases re-export the contract types so callers of the run API need
// no internal imports.
type (
	// Env is the complete simulated world a scheme trains in.
	Env = schemes.Env
	// Trainer is one scheme mid-training (context-aware rounds).
	Trainer = schemes.Trainer
	// Eval is one test-set evaluation (loss, accuracy).
	Eval = schemes.Eval
	// Options carries the scheme-structure knobs a factory may consume.
	Options = schemes.FactoryOpts
	// Factory instantiates a scheme over an environment.
	Factory = schemes.Factory
	// Curve is a training trajectory; Runner.Run returns one.
	Curve = metrics.Curve
	// Point is one evaluation on a Curve.
	Point = metrics.Point
	// Ledger is a round's per-component latency breakdown.
	Ledger = simnet.Ledger
)

// Register adds a scheme factory under its name, making it available to
// New and to checkpoint resume. It panics on an empty name, a nil
// factory, or a duplicate registration (programmer errors at init
// time). The built-in schemes register themselves; call this only for
// out-of-tree schemes.
func Register(name string, f Factory) {
	schemes.Register(name, f)
}

// Schemes returns the registered scheme names in sorted order.
func Schemes() []string {
	return schemes.Names()
}

// SchemeTrainer is a registry-constructed trainer. It remembers which
// scheme, options, and environment built it, which is what lets a
// checkpoint file reconstruct the trainer on resume (and reject resumes
// into a differently configured world).
type SchemeTrainer struct {
	schemes.Trainer
	scheme string
	opts   Options
	env    *Env
}

// New instantiates the named scheme over env — the single
// scheme-construction path of the run API.
func New(scheme string, env *Env, opts Options) (*SchemeTrainer, error) {
	tr, err := schemes.NewByName(scheme, env, opts)
	if err != nil {
		return nil, err
	}
	return &SchemeTrainer{Trainer: tr, scheme: scheme, opts: opts, env: env}, nil
}

// Scheme returns the registry name the trainer was constructed under.
func (t *SchemeTrainer) Scheme() string { return t.scheme }

// Options returns the scheme options the trainer was constructed with.
func (t *SchemeTrainer) Options() Options { return t.opts }

// Unwrap returns the underlying scheme implementation, for callers that
// need scheme-specific accessors (e.g. gsfl's group diagnostics).
func (t *SchemeTrainer) Unwrap() schemes.Trainer { return t.Trainer }
