package sim

import (
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"

	"gsfl/internal/schemes"
	"gsfl/internal/tensor"
	"gsfl/internal/wireless"
)

// checkpointVersion guards against reading incompatible files.
const checkpointVersion = 1

// checkpointFile is the on-disk layout of a run checkpoint: which
// scheme (and options) to rebuild, how far the run had progressed, the
// curve so far, and the trainer's complete mutable state. Everything is
// gob-encoded through plain exported structs, layered on the tensor
// serialization of internal/model's checkpoint format.
type checkpointFile struct {
	Version int
	Scheme  string
	Opts    schemes.FactoryOpts
	// EnvHash fingerprints the environment the run was built over;
	// Resume rejects an env that does not match, since continuing in a
	// different world would silently break the bit-identical contract.
	EnvHash uint64
	// EvalEvery/CkptEvery are the run's cadences; Resume inherits them
	// unless overridden, so a resumed run keeps evaluating and
	// checkpointing as the original did.
	EvalEvery int
	CkptEvery int
	// Round is the number of completed rounds; Elapsed their cumulative
	// latency; Points the evaluations recorded so far.
	Round   int
	Elapsed float64
	Points  []Point
	State   schemes.TrainerState
}

// envFingerprint hashes the run-relevant identity of an environment:
// everything that shapes training numerics or latency pricing and is
// not already carried inside the trainer state. Two envs built from the
// same spec and seed hash equal; changing clients, data sizes,
// hyperparameters, hardware, or bandwidth changes the hash.
func envFingerprint(env *Env) uint64 {
	trainSizes := make([]int, len(env.Train))
	for i, d := range env.Train {
		trainSizes[i] = d.Len()
	}
	popID := ""
	caps := env.Fleet.Capacities()
	if env.Pop != nil {
		popID = env.Pop.Identity()
		// The live fleet carries the current round's device-profile
		// multipliers; fingerprint the pre-scaling capacities so a save
		// mid-run and a fresh build hash the same world.
		if bc, ok := env.Pop.(interface{ BaseCapacities() []float64 }); ok && bc.BaseCapacities() != nil {
			caps = bc.BaseCapacities()
		}
	}
	h := fnv.New64a()
	// gob encoding of a fixed struct layout is deterministic.
	_ = gob.NewEncoder(h).Encode(struct {
		InShape       []int
		Cut           int
		Hyper         schemes.Hyper
		Seed          int64
		Allocator     string
		Capacities    []float64
		ServerSeconds float64 // server compute identity via a fixed-FLOP probe
		Wireless      wireless.Config
		TrainSizes    []int
		TestLen       int
		Population    string // Cohort.Identity(); "" without a population
	}{
		InShape:       env.Arch.InShape,
		Cut:           env.Cut,
		Hyper:         env.Hyper,
		Seed:          env.Seed,
		Allocator:     env.Alloc.Name(),
		Capacities:    caps,
		ServerSeconds: env.Fleet.Server.ComputeSeconds(1 << 30),
		Wireless:      env.Channel.Config(),
		TrainSizes:    trainSizes,
		TestLen:       env.Test.Len(),
		Population:    popID,
	})
	// The numeric mode extends the fingerprint only when it is not the
	// default, mirroring the job-identity hash: default-mode checkpoints
	// keep their historical hashes, while a run under "fast" kernels can
	// only be resumed under "fast" kernels.
	if mode := tensor.CurrentNumericMode(); mode.Name != tensor.DefaultNumericMode {
		_ = gob.NewEncoder(h).Encode(struct{ Numeric string }{mode.Name})
	}
	return h.Sum64()
}

// saveCheckpoint atomically writes the run's state after `round`
// completed rounds.
func (r *Runner) saveCheckpoint(round int, elapsed float64, curve *Curve) error {
	st := r.trainer.(*SchemeTrainer)
	cp := st.Trainer.(schemes.Checkpointer)
	state, err := cp.CaptureState()
	if err != nil {
		return fmt.Errorf("sim: capturing state after round %d: %w", round, err)
	}
	cf := checkpointFile{
		Version:   checkpointVersion,
		Scheme:    st.scheme,
		Opts:      st.opts,
		EnvHash:   envFingerprint(st.env),
		EvalEvery: r.evalEvery,
		CkptEvery: r.ckptEvery,
		Round:     round,
		Elapsed:   elapsed,
		Points:    append([]Point(nil), curve.Points...),
		State:     *state,
	}
	if dir := filepath.Dir(r.ckptPath); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("sim: creating checkpoint directory: %w", err)
		}
	}
	tmp, err := os.CreateTemp(filepath.Dir(r.ckptPath), ".ckpt-*")
	if err != nil {
		return fmt.Errorf("sim: creating checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := gob.NewEncoder(tmp).Encode(cf); err != nil {
		tmp.Close()
		return fmt.Errorf("sim: encoding checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("sim: writing checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), r.ckptPath); err != nil {
		return fmt.Errorf("sim: committing checkpoint: %w", err)
	}
	return nil
}

// loadCheckpoint reads and validates a checkpoint file.
func loadCheckpoint(path string) (*checkpointFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("sim: opening checkpoint: %w", err)
	}
	defer f.Close()
	var cf checkpointFile
	if err := gob.NewDecoder(f).Decode(&cf); err != nil {
		return nil, fmt.Errorf("sim: decoding checkpoint: %w", err)
	}
	if cf.Version != checkpointVersion {
		return nil, fmt.Errorf("sim: checkpoint version %d, want %d", cf.Version, checkpointVersion)
	}
	if cf.Round <= 0 {
		return nil, fmt.Errorf("sim: checkpoint at round %d", cf.Round)
	}
	return &cf, nil
}

// PeekCheckpoint reads a checkpoint's identity — which scheme it trains
// and how many rounds it has completed — without rebuilding a trainer.
// Orchestrators (the sweep engine) use it to decide whether a resume is
// viable before paying for environment construction and training.
func PeekCheckpoint(path string) (scheme string, round int, err error) {
	cf, err := loadCheckpoint(path)
	if err != nil {
		return "", 0, err
	}
	return cf.Scheme, cf.Round, nil
}

// Resume rebuilds a run from a checkpoint written by a Runner with
// checkpointing enabled. env must be constructed identically to the
// original run's environment (same spec and seed) — the checkpoint
// carries the trainer's mutable state, not the world it trains in, and
// Resume rejects an env whose fingerprint (population, data sizes,
// hyperparameters, hardware, bandwidth) differs from the original.
// The scheme and its options always come from the file. The returned
// Runner continues from the checkpointed round and produces results
// bit-identical to an uninterrupted run: same model parameters, same
// curve, same latencies.
//
// Options apply as for NewRunner; WithRounds is the overall total
// (e.g. 100 to finish a 100-round run checkpointed at round 50). The
// original run's evaluation and checkpoint cadences are inherited, and
// the checkpoint path defaults to the file being resumed, so the
// continued run keeps evaluating and checkpointing in place unless
// told otherwise.
func Resume(path string, env *Env, opts ...RunOption) (*Runner, error) {
	cf, err := loadCheckpoint(path)
	if err != nil {
		return nil, err
	}
	if got := envFingerprint(env); got != cf.EnvHash {
		return nil, fmt.Errorf("sim: environment does not match the checkpointed run (rebuild it from the original spec and seed before resuming)")
	}
	tr, err := New(cf.Scheme, env, cf.Opts)
	if err != nil {
		return nil, fmt.Errorf("sim: rebuilding %q trainer: %w", cf.Scheme, err)
	}
	cp, ok := tr.Trainer.(schemes.Checkpointer)
	if !ok {
		return nil, fmt.Errorf("sim: scheme %q does not support state capture", cf.Scheme)
	}
	if err := cp.RestoreState(&cf.State); err != nil {
		return nil, fmt.Errorf("sim: restoring %q state: %w", cf.Scheme, err)
	}
	r := &Runner{
		trainer:      tr,
		evalEvery:    cf.EvalEvery,
		ckptEvery:    cf.CkptEvery,
		ckptPath:     path,
		startRound:   cf.Round,
		startElapsed: cf.Elapsed,
		priorPoints:  cf.Points,
	}
	for _, o := range opts {
		o(r)
	}
	// A run's final round forces an evaluation even off-cadence. When a
	// resume extends the total past the checkpointed round, that forced
	// point would not exist in an uninterrupted run at the new total —
	// drop it so the stitched curve stays bit-identical.
	if n := len(r.priorPoints); n > 0 && r.rounds > cf.Round && r.evalEvery > 0 {
		if last := r.priorPoints[n-1]; last.Round == cf.Round && last.Round%r.evalEvery != 0 {
			r.priorPoints = r.priorPoints[:n-1]
		}
	}
	r.err = r.validate()
	if r.err != nil {
		return nil, r.err
	}
	return r, nil
}
