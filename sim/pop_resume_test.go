package sim_test

import (
	"context"
	"path/filepath"
	"testing"

	"gsfl/env"
	"gsfl/sim"
)

// popResumeSpec is a deliberately hostile population configuration for
// the checkpoint contract: members churn (onoff), devices are
// heterogeneous (the fleet's FLOPS are rescaled every round), and only
// a quarter of the population fits the slots.
func popResumeSpec() env.Spec {
	s := env.TestSpec()
	s.Population = 4 * s.Clients
	s.SampleFraction = 0.25
	s.AvailTrace = "onoff"
	s.DeviceProfileMix = "low-end:0.5,baseline:0.5"
	s.Seed = 77
	return s
}

// TestResumeEquivalencePopulation extends the checkpoint contract to
// population-sampled runs: the population carries no serialized state —
// a resume replays the sampling streams up to the checkpointed round —
// so 8 straight rounds must stay bit-identical to 4 + resume + 4 on a
// freshly built world, for every population-capable scheme.
func TestResumeEquivalencePopulation(t *testing.T) {
	spec := popResumeSpec()
	opts, err := spec.SchemeOptions()
	if err != nil {
		t.Fatal(err)
	}
	build := func(t *testing.T) *sim.Env {
		t.Helper()
		world, err := env.Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		if world.Pop == nil {
			t.Fatal("spec must attach a population")
		}
		return world
	}
	const (
		total     = 8
		ckptRound = 4
	)
	for _, scheme := range []string{"gsfl", "fl", "sfl"} {
		t.Run(scheme, func(t *testing.T) {
			tr, err := sim.New(scheme, build(t), opts)
			if err != nil {
				t.Fatal(err)
			}
			want, err := sim.NewRunner(tr, sim.WithRounds(total)).Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}

			ckpt := filepath.Join(t.TempDir(), "run.ckpt")
			tr2, err := sim.New(scheme, build(t), opts)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sim.NewRunner(tr2,
				sim.WithRounds(ckptRound),
				sim.WithCheckpointEvery(ckptRound),
				sim.WithCheckpointPath(ckpt),
			).Run(context.Background()); err != nil {
				t.Fatal(err)
			}
			runner, err := sim.Resume(ckpt, build(t), sim.WithRounds(total))
			if err != nil {
				t.Fatal(err)
			}
			got, err := runner.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}

			if len(got.Points) != len(want.Points) {
				t.Fatalf("resumed curve has %d points, want %d", len(got.Points), len(want.Points))
			}
			for i := range want.Points {
				if got.Points[i] != want.Points[i] {
					t.Fatalf("point %d diverged after resume:\n  straight: %+v\n  resumed:  %+v",
						i, want.Points[i], got.Points[i])
				}
			}
		})
	}
}

// TestResumeRejectsPopulationMismatch: the env fingerprint includes the
// population identity, so resuming a population checkpoint over a world
// with different sampling parameters must be refused.
func TestResumeRejectsPopulationMismatch(t *testing.T) {
	spec := popResumeSpec()
	opts, err := spec.SchemeOptions()
	if err != nil {
		t.Fatal(err)
	}
	world, err := env.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.New("gsfl", world, opts)
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	if _, err := sim.NewRunner(tr,
		sim.WithRounds(2),
		sim.WithCheckpointEvery(2),
		sim.WithCheckpointPath(ckpt),
	).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	other := spec
	other.SampleFraction = 0.125
	mismatched, err := env.Build(other)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Resume(ckpt, mismatched, sim.WithRounds(4)); err == nil {
		t.Fatal("resume must reject a world with different population sampling")
	}
}
