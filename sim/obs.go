package sim

import (
	"io"
	"net/http"
	"strings"

	"gsfl/internal/metrics"
	"gsfl/internal/simnet"
)

// virtualSecondsBuckets extends the default latency buckets upward:
// virtual round latencies at paper scale run into minutes, well past
// the wall-clock-oriented defaults.
var virtualSecondsBuckets = append(append([]float64(nil),
	metrics.DefSecondsBuckets...), 120, 300, 600, 1800)

// RunMetrics is a Runner observer that aggregates a run's rounds into
// operational metrics — round and per-phase virtual-latency histograms,
// round/eval counters, last accuracy — and serves them in the
// Prometheus text exposition format. It backs gsfl-sim's -metrics
// endpoint the same way the transport AP's registry backs its own.
type RunMetrics struct {
	reg     *metrics.Registry
	rounds  *metrics.Counter
	evals   *metrics.Counter
	round   *metrics.Histogram
	phase   [len(phaseComponents)]*metrics.Histogram
	elapsed *metrics.Gauge
	accPPM  *metrics.Gauge
}

var phaseComponents = [...]simnet.Component{
	simnet.ClientCompute, simnet.Uplink, simnet.ServerCompute,
	simnet.Downlink, simnet.Relay, simnet.Aggregation,
}

// NewRunMetrics builds an empty run-metrics registry. Subscribe it with
// sim.WithObserver and serve Handler from an HTTP mux.
func NewRunMetrics() *RunMetrics {
	reg := metrics.NewRegistry()
	m := &RunMetrics{
		reg:    reg,
		rounds: reg.Counter("gsfl_sim_rounds_total", "training rounds completed"),
		evals:  reg.Counter("gsfl_sim_evals_total", "test-set evaluations run"),
		round: reg.Histogram("gsfl_sim_round_virtual_seconds",
			"per-round critical-path latency on the virtual clock", virtualSecondsBuckets),
		elapsed: reg.Gauge("gsfl_sim_virtual_elapsed_ms",
			"cumulative virtual training time in milliseconds"),
		accPPM: reg.Gauge("gsfl_sim_last_accuracy_ppm",
			"most recent test accuracy in parts per million"),
	}
	for i, c := range phaseComponents {
		name := "gsfl_sim_phase_" + strings.ReplaceAll(c.String(), "-", "_") + "_virtual_seconds"
		m.phase[i] = reg.Histogram(name,
			"per-round virtual seconds attributed to the "+c.String()+" phase", virtualSecondsBuckets)
	}
	return m
}

// OnRound implements Observer.
func (m *RunMetrics) OnRound(e RoundEvent) {
	m.rounds.Inc()
	m.round.Observe(e.RoundSeconds)
	m.elapsed.Set(int64(e.ElapsedSeconds * 1000))
	for i, c := range phaseComponents {
		if s := e.Ledger.Get(c); s > 0 {
			m.phase[i].Observe(s)
		}
	}
	if e.Eval != nil {
		m.evals.Inc()
		m.accPPM.Set(int64(e.Eval.Accuracy * 1e6))
	}
}

// Handler serves the run's metrics in the text exposition format.
func (m *RunMetrics) Handler() http.Handler { return m.reg.Handler() }

// WriteText renders the current metrics page into w — the same bytes
// the Handler serves.
func (m *RunMetrics) WriteText(w io.Writer) error {
	return m.reg.WriteText(w)
}
