package sim_test

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"gsfl/internal/schemes/schemestest"
	"gsfl/obs"
	"gsfl/sim"
)

// runCurve runs a fresh gsfl trainer for rounds rounds with the given
// extra options and returns the curve.
func runCurve(t *testing.T, seed int64, rounds int, extra ...sim.RunOption) *sim.Curve {
	t.Helper()
	tr, err := sim.New("gsfl", schemestest.NewEnv(seed, 4, 30), sim.Options{Groups: 2})
	if err != nil {
		t.Fatal(err)
	}
	ropts := append([]sim.RunOption{sim.WithRounds(rounds)}, extra...)
	curve, err := sim.NewRunner(tr, ropts...).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return curve
}

// TestTracingDoesNotPerturbCurves is the zero-interference contract:
// attaching a tracer must leave every curve point bit-identical.
func TestTracingDoesNotPerturbCurves(t *testing.T) {
	plain := runCurve(t, 21, 3)
	traced := runCurve(t, 21, 3, sim.WithTracer(obs.New(obs.ClockVirtual)))
	if len(plain.Points) != len(traced.Points) {
		t.Fatalf("curve lengths differ: %d vs %d", len(plain.Points), len(traced.Points))
	}
	for i := range plain.Points {
		if plain.Points[i] != traced.Points[i] {
			t.Fatalf("point %d differs with tracing: %+v vs %+v", i, plain.Points[i], traced.Points[i])
		}
	}
}

// TestVirtualTraceShape checks the simulator trace: round spans on the
// scheme's rounds lane, group lanes with client slots and phase spans,
// eval instants, all priced on the virtual clock.
func TestVirtualTraceShape(t *testing.T) {
	tr := obs.New(obs.ClockVirtual)
	curve := runCurve(t, 22, 2, sim.WithTracer(tr))

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
		OtherData map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if file.OtherData["clock"] != "virtual" {
		t.Fatalf("clock metadata %q, want virtual", file.OtherData["clock"])
	}
	byCat := map[string]int{}
	var roundVirtualUS float64
	for _, e := range file.TraceEvents {
		byCat[e.Cat]++
		if e.Cat == "round" {
			roundVirtualUS += e.Dur
		}
	}
	if byCat["round"] != 2 {
		t.Fatalf("%d round spans, want 2", byCat["round"])
	}
	if byCat["slot"] == 0 || byCat["phase"] == 0 {
		t.Fatalf("trace missing slot/phase spans: %v", byCat)
	}
	if byCat["eval"] != 2 {
		t.Fatalf("%d eval instants, want 2", byCat["eval"])
	}
	// The round spans must sum to the curve's final virtual elapsed time
	// (ts/dur are microseconds).
	wantUS := curve.Points[len(curve.Points)-1].LatencySeconds * 1e6
	if math.Abs(roundVirtualUS-wantUS) > 1 {
		t.Fatalf("round spans sum to %v µs, curve says %v µs", roundVirtualUS, wantUS)
	}
}

// TestRunMetricsObserver drives RunMetrics through a short run and
// checks the exposition page it serves.
func TestRunMetricsObserver(t *testing.T) {
	m := sim.NewRunMetrics()
	runCurve(t, 23, 3, sim.WithObserver(m), sim.WithEvalEvery(2))

	var buf bytes.Buffer
	if err := m.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	page := buf.String()
	for _, want := range []string{
		"gsfl_sim_rounds_total 3",
		"gsfl_sim_evals_total 2", // rounds 2 and 3 (final always evaluates)
		"gsfl_sim_round_virtual_seconds_count 3",
		"gsfl_sim_phase_uplink_virtual_seconds_bucket",
		"gsfl_sim_last_accuracy_ppm",
	} {
		if !strings.Contains(page, want) {
			t.Fatalf("metrics page missing %q:\n%s", want, page)
		}
	}
}
