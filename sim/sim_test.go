package sim_test

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"gsfl/internal/model"
	"gsfl/internal/schemes"
	"gsfl/internal/schemes/schemestest"
	"gsfl/internal/wireless"
	"gsfl/sim"
)

// opts returns working scheme options for any built-in scheme over a
// schemestest env (only gsfl reads them).
func opts() sim.Options {
	return sim.Options{Groups: 2}
}

func TestSchemesListsAllBuiltins(t *testing.T) {
	got := map[string]bool{}
	for _, name := range sim.Schemes() {
		got[name] = true
	}
	for _, want := range []string{"cl", "fl", "gsfl", "sfl", "sl"} {
		if !got[want] {
			t.Fatalf("registry %v is missing %q", sim.Schemes(), want)
		}
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	sim.Register("gsfl", func(env *sim.Env, _ sim.Options) (sim.Trainer, error) {
		return nil, nil
	})
}

func TestNewUnknownScheme(t *testing.T) {
	env := schemestest.NewEnv(1, 4, 30)
	if _, err := sim.New("bogus", env, opts()); err == nil {
		t.Fatal("expected error for unknown scheme")
	}
}

func TestNewAllSchemes(t *testing.T) {
	for _, name := range []string{"cl", "fl", "gsfl", "sfl", "sl"} {
		tr, err := sim.New(name, schemestest.NewEnv(2, 4, 30), opts())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tr.Name() != name || tr.Scheme() != name {
			t.Fatalf("trainer reports name %q / scheme %q, want %q", tr.Name(), tr.Scheme(), name)
		}
	}
}

func TestRunnerStreamsRoundEvents(t *testing.T) {
	tr, err := sim.New("gsfl", schemestest.NewEnv(3, 4, 30), opts())
	if err != nil {
		t.Fatal(err)
	}
	var events []sim.RoundEvent
	curve, err := sim.NewRunner(tr,
		sim.WithRounds(6),
		sim.WithEvalEvery(2),
		sim.WithObserver(sim.ObserverFunc(func(e sim.RoundEvent) {
			events = append(events, e)
		})),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 6 {
		t.Fatalf("got %d events, want one per round (6)", len(events))
	}
	elapsed := 0.0
	for i, e := range events {
		if e.Round != i+1 || e.Rounds != 6 || e.Scheme != "gsfl" {
			t.Fatalf("event %d malformed: %+v", i, e)
		}
		if e.RoundSeconds <= 0 || e.Ledger.Total() != e.RoundSeconds {
			t.Fatalf("event %d: inconsistent latency %v vs ledger %v", i, e.RoundSeconds, e.Ledger.Total())
		}
		elapsed += e.RoundSeconds
		if e.ElapsedSeconds != elapsed {
			t.Fatalf("event %d: elapsed %v, want cumulative %v", i, e.ElapsedSeconds, elapsed)
		}
		wantEval := (i+1)%2 == 0 || i+1 == 6
		if (e.Eval != nil) != wantEval {
			t.Fatalf("event %d: eval presence %v, want %v", i, e.Eval != nil, wantEval)
		}
		if e.HostSeconds <= 0 {
			t.Fatalf("event %d: host wall-clock %v, want > 0", i, e.HostSeconds)
		}
	}
	if len(curve.Points) != 3 {
		t.Fatalf("curve has %d points, want evals at rounds 2, 4, 6", len(curve.Points))
	}
	for i, p := range curve.Points {
		e := events[p.Round-1]
		if e.Eval.Loss != p.Loss || e.Eval.Accuracy != p.Accuracy || e.ElapsedSeconds != p.LatencySeconds {
			t.Fatalf("curve point %d disagrees with its event: %+v vs %+v", i, p, e)
		}
	}
}

func TestRunnerCancelledMidRunReturnsCtxErr(t *testing.T) {
	tr, err := sim.New("gsfl", schemestest.NewEnv(4, 4, 30), opts())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rounds := 0
	curve, err := sim.NewRunner(tr,
		sim.WithRounds(1000), // far more than we will allow to run
		sim.WithObserver(sim.ObserverFunc(func(e sim.RoundEvent) {
			rounds++
			if e.Round == 2 {
				cancel()
			}
		})),
	).Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
	if rounds != 2 {
		t.Fatalf("run continued for %d rounds after cancellation at round 2", rounds)
	}
	if curve == nil {
		t.Fatal("cancelled run must still return the partial curve")
	}
}

func TestRunnerAlreadyCancelledContext(t *testing.T) {
	tr, err := sim.New("sl", schemestest.NewEnv(5, 4, 30), opts())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sim.NewRunner(tr, sim.WithRounds(3)).Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestRunnerValidation(t *testing.T) {
	env := schemestest.NewEnv(6, 4, 30)
	tr, err := sim.New("gsfl", env, opts())
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]sim.RunOption{
		"no rounds":           {},
		"bad eval cadence":    {sim.WithRounds(2), sim.WithEvalEvery(0)},
		"checkpoint, no path": {sim.WithRounds(2), sim.WithCheckpointEvery(1)},
		"path, no cadence":    {sim.WithRounds(2), sim.WithCheckpointPath("x.ckpt")},
	}
	for name, o := range cases {
		if _, err := sim.NewRunner(tr, o...).Run(context.Background()); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
	// Checkpointing needs a registry-built trainer.
	bare, err := schemes.NewByName("sl", schemestest.NewEnv(6, 4, 30), schemes.FactoryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = sim.NewRunner(bare,
		sim.WithRounds(2),
		sim.WithCheckpointEvery(1),
		sim.WithCheckpointPath(filepath.Join(t.TempDir(), "x.ckpt")),
	).Run(context.Background())
	if err == nil {
		t.Fatal("checkpointing a non-registry trainer must error")
	}
}

// newTestEnv builds the shared resume-test environment. Mobility and
// outages are enabled so the test covers the channel-state restoration
// path, not just the model weights.
func newTestEnv(t *testing.T, seed int64) *sim.Env {
	t.Helper()
	env := schemestest.NewEnv(seed, 4, 40)
	cfg := wireless.DefaultConfig()
	cfg.MobilitySigmaM = 15
	cfg.OutageProb = 0.05
	env.Channel = wireless.NewChannel(cfg, 4, seed+3)
	if err := env.Validate(); err != nil {
		t.Fatal(err)
	}
	return env
}

// TestResumeEquivalence is the checkpoint contract test: for every
// built-in scheme, 8 straight rounds must be bit-identical — losses,
// accuracies, AND latencies — to 4 rounds, a checkpoint, and 4 resumed
// rounds on a freshly built world.
func TestResumeEquivalence(t *testing.T) {
	cases := []struct {
		name   string
		scheme string
		opts   sim.Options
	}{
		{"gsfl", "gsfl", sim.Options{Groups: 2}},
		{"gsfl-pipelined-dropout", "gsfl", sim.Options{Groups: 2, Pipelined: true, DropoutProb: 0.2}},
		{"sl", "sl", sim.Options{}},
		{"fl", "fl", sim.Options{}},
		{"sfl", "sfl", sim.Options{}},
		{"cl", "cl", sim.Options{}},
	}
	const (
		seed      = 77
		total     = 8
		ckptRound = 4
	)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Reference: one uninterrupted run.
			tr, err := sim.New(tc.scheme, newTestEnv(t, seed), tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			want, err := sim.NewRunner(tr, sim.WithRounds(total)).Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}

			// Interrupted: run to the checkpoint, drop everything, resume.
			ckpt := filepath.Join(t.TempDir(), "run.ckpt")
			tr2, err := sim.New(tc.scheme, newTestEnv(t, seed), tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sim.NewRunner(tr2,
				sim.WithRounds(ckptRound),
				sim.WithCheckpointEvery(ckptRound),
				sim.WithCheckpointPath(ckpt),
			).Run(context.Background()); err != nil {
				t.Fatal(err)
			}
			runner, err := sim.Resume(ckpt, newTestEnv(t, seed), sim.WithRounds(total))
			if err != nil {
				t.Fatal(err)
			}
			got, err := runner.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}

			if len(got.Points) != len(want.Points) {
				t.Fatalf("resumed curve has %d points, want %d", len(got.Points), len(want.Points))
			}
			for i := range want.Points {
				if got.Points[i] != want.Points[i] {
					t.Fatalf("point %d diverged after resume:\n  straight: %+v\n  resumed:  %+v",
						i, want.Points[i], got.Points[i])
				}
			}
		})
	}
}

// TestResumeKeepsCheckpointing verifies a resumed run rewrites its
// checkpoint file, so a second interruption also resumes correctly.
func TestResumeKeepsCheckpointing(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	tr, err := sim.New("gsfl", newTestEnv(t, 9), sim.Options{Groups: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.NewRunner(tr,
		sim.WithRounds(2),
		sim.WithCheckpointEvery(2),
		sim.WithCheckpointPath(ckpt),
	).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Resume 2 -> 4, checkpointing every round into the same file.
	runner, err := sim.Resume(ckpt, newTestEnv(t, 9),
		sim.WithRounds(4), sim.WithCheckpointEvery(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runner.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The rewritten file now holds round 4; resuming past it must work.
	runner2, err := sim.Resume(ckpt, newTestEnv(t, 9), sim.WithRounds(5))
	if err != nil {
		t.Fatal(err)
	}
	curve, err := runner2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if last := curve.Points[len(curve.Points)-1].Round; last != 5 {
		t.Fatalf("second resume ended at round %d, want 5", last)
	}
}

func TestResumeRejectsFinishedRun(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	tr, err := sim.New("sl", newTestEnv(t, 10), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.NewRunner(tr,
		sim.WithRounds(2),
		sim.WithCheckpointEvery(1),
		sim.WithCheckpointPath(ckpt),
	).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Resume(ckpt, newTestEnv(t, 10), sim.WithRounds(2)); err == nil {
		t.Fatal("resuming a finished run (rounds == completed) must error")
	}
	if _, err := sim.Resume(filepath.Join(t.TempDir(), "missing.ckpt"), newTestEnv(t, 10), sim.WithRounds(4)); err == nil {
		t.Fatal("resuming a missing file must error")
	}
}

// TestResumeRejectsMismatchedEnv pins the fingerprint check: resuming
// into a world built from a different spec must fail loudly instead of
// silently breaking the bit-identical contract.
func TestResumeRejectsMismatchedEnv(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	tr, err := sim.New("gsfl", newTestEnv(t, 11), sim.Options{Groups: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.NewRunner(tr,
		sim.WithRounds(2),
		sim.WithCheckpointEvery(1),
		sim.WithCheckpointPath(ckpt),
	).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Different hyperparameters -> different fingerprint.
	other := newTestEnv(t, 11)
	other.Hyper.LR *= 2
	if _, err := sim.Resume(ckpt, other, sim.WithRounds(4)); err == nil {
		t.Fatal("resume into a different env must error")
	}
	// Different seed -> different fingerprint.
	if _, err := sim.Resume(ckpt, newTestEnv(t, 12), sim.WithRounds(4)); err == nil {
		t.Fatal("resume with a different seed must error")
	}
	// Different radio physics -> different fingerprint.
	physics := newTestEnv(t, 11)
	cfg := physics.Channel.Config()
	cfg.OutageProb = 0
	physics.Channel = wireless.NewChannel(cfg, 4, 11+3)
	if _, err := sim.Resume(ckpt, physics, sim.WithRounds(4)); err == nil {
		t.Fatal("resume under different wireless physics must error")
	}
}

// TestResumeInheritsCadences verifies a resumed run keeps the original
// evaluation cadence (so the final curve matches an uninterrupted run)
// and keeps checkpointing without re-passing the options.
func TestResumeInheritsCadences(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	tr, err := sim.New("sl", newTestEnv(t, 13), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.NewRunner(tr,
		sim.WithRounds(3),
		sim.WithEvalEvery(3),
		sim.WithCheckpointEvery(3),
		sim.WithCheckpointPath(ckpt),
	).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	runner, err := sim.Resume(ckpt, newTestEnv(t, 13), sim.WithRounds(6))
	if err != nil {
		t.Fatal(err)
	}
	curve, err := runner.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// EvalEvery 3 inherited: evaluations at rounds 3 and 6 only.
	if len(curve.Points) != 2 || curve.Points[0].Round != 3 || curve.Points[1].Round != 6 {
		t.Fatalf("resumed run did not inherit eval cadence: %+v", curve.Points)
	}
	// CkptEvery 3 inherited: the file now holds round 6.
	if _, err := sim.Resume(ckpt, newTestEnv(t, 13), sim.WithRounds(6)); err == nil {
		t.Fatal("checkpoint was not rewritten at round 6 (resume of a finished run should error)")
	}
}

// TestRestoreStateRejectsForeignState verifies a structurally foreign
// TrainerState errors without leaving a half-restored trainer.
func TestRestoreStateRejectsForeignState(t *testing.T) {
	mk := func() (*sim.SchemeTrainer, schemes.Checkpointer) {
		tr, err := sim.New("sl", schemestest.NewEnv(14, 4, 30), sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return tr, tr.Unwrap().(schemes.Checkpointer)
	}
	tr, cp := mk()
	before, err := tr.Evaluate(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// A state from a wider model: same Models/Opts/Loaders arity, but
	// tensor sizes differ.
	otherEnv := schemestest.NewEnv(14, 4, 30, func(e *sim.Env) {
		e.Arch = model.MLP(schemestest.BlobDim, 32, schemestest.BlobClasses)
	})
	other, err := sim.New("sl", otherEnv, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := other.Unwrap().(schemes.Checkpointer).CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.RestoreState(st); err == nil {
		t.Fatal("restoring a different-cut state must error")
	}
	after, err := tr.Evaluate(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Fatal("failed restore mutated the trainer's model")
	}
}

// TestResumeExtendsFinishedRunOnCadence pins the forced-final-eval
// case: finishing at an off-cadence round records an extra point, and a
// resume that extends the total must drop it so the stitched curve
// matches an uninterrupted run at the new total, bit for bit.
func TestResumeExtendsFinishedRunOnCadence(t *testing.T) {
	const seed = 15
	// Reference: uninterrupted 10 rounds, eval every 4 -> rounds 4, 8, 10.
	tr, err := sim.New("sl", newTestEnv(t, seed), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.NewRunner(tr,
		sim.WithRounds(10), sim.WithEvalEvery(4),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Finished 5-round run (forced eval at off-cadence round 5), then
	// extended to 10 via resume.
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	tr2, err := sim.New("sl", newTestEnv(t, seed), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.NewRunner(tr2,
		sim.WithRounds(5), sim.WithEvalEvery(4),
		sim.WithCheckpointEvery(5), sim.WithCheckpointPath(ckpt),
	).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	runner, err := sim.Resume(ckpt, newTestEnv(t, seed), sim.WithRounds(10))
	if err != nil {
		t.Fatal(err)
	}
	got, err := runner.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Points) != len(want.Points) {
		t.Fatalf("extended curve has %d points, want %d (%+v)", len(got.Points), len(want.Points), got.Points)
	}
	for i := range want.Points {
		if got.Points[i] != want.Points[i] {
			t.Fatalf("point %d diverged: %+v vs %+v", i, got.Points[i], want.Points[i])
		}
	}
}
