package sim

import (
	"gsfl/internal/metrics"
	"gsfl/internal/parallel"
	"gsfl/internal/simnet"
	"gsfl/internal/trace"
)

// This file re-exports the run-output vocabulary — latency components,
// curve analysis, CSV persistence, and the global worker budget — so
// tooling built on the run API (CLIs, examples, the sweep engine) needs
// no internal imports.

// Component identifies one latency component of a round's Ledger
// (client compute, uplink, server compute, downlink, relay,
// aggregation).
type Component = simnet.Component

// Components returns every latency component in canonical order — the
// order JSON streams and manifests enumerate Ledger breakdowns in.
func Components() []Component { return simnet.Components() }

// SaveCurvesCSV writes training curves to a long-format CSV
// (scheme, round, latency, loss, accuracy), creating parent directories
// as needed.
func SaveCurvesCSV(path string, curves []*Curve) error {
	return trace.SaveCurvesCSV(path, curves)
}

// SpeedupVsRounds reports how many times faster (in rounds) curve c
// reaches the target accuracy than other; ok is false when either curve
// never reaches it.
func SpeedupVsRounds(c, other *Curve, target float64) (speedup float64, ok bool) {
	return metrics.SpeedupVsRounds(c, other, target)
}

// DelayReduction reports the relative training-latency reduction of
// curve c versus other at the target accuracy; ok is false when either
// curve never reaches it.
func DelayReduction(c, other *Curve, target float64) (reduction float64, ok bool) {
	return metrics.DelayReduction(c, other, target)
}

// SetWorkers sets the process-global worker-goroutine budget for
// parallel execution (0 = GOMAXPROCS, 1 = serial). Results are
// bit-identical at any setting; it is intended to be called once at
// startup from a -workers flag. Prefer WithWorkers to scope the budget
// to one Runner.
func SetWorkers(n int) { parallel.SetWorkers(n) }
