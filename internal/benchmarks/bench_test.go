// Benchmarks regenerating every figure and table of the paper's
// evaluation (see DESIGN.md's experiment index). Each benchmark prints
// the figure series / table rows it reproduces via b.Logf (run with
// `go test -bench=. -benchmem -v` to see them) and reports the headline
// quantity via b.ReportMetric.
//
// Scale: by default the benchmarks run a reduced configuration so the
// whole suite finishes in minutes on a laptop. Set GSFL_FULL=1 for the
// paper-scale configuration (30 clients, 6 groups, 32x32 images) — this
// takes hours of CPU time but exercises the identical code paths.
package benchmarks_test

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"gsfl/internal/experiment"
	"gsfl/internal/metrics"
	"gsfl/internal/parallel"
	"gsfl/internal/tensor"
)

// benchScale returns the experiment spec plus round/eval counts for the
// selected scale.
func benchScale() (experiment.Spec, int, int) {
	if os.Getenv("GSFL_FULL") == "1" {
		return experiment.PaperSpec(), 200, 10
	}
	spec := experiment.PaperSpec()
	spec.Clients = 10
	spec.Groups = 2
	spec.ImageSize = 12
	spec.TrainPerClient = 60
	spec.TestPerClass = 3
	spec.Hyper.Batch = 8
	spec.Hyper.StepsPerClient = 2
	spec.Device.N = spec.Clients
	return spec, 15, 3
}

func logCurves(b *testing.B, title string, curves []*metrics.Curve) {
	b.Helper()
	b.Logf("=== %s ===", title)
	for _, c := range curves {
		b.Logf("scheme %s:", c.Scheme)
		for _, p := range c.Points {
			b.Logf("  round %4d  latency %10.3fs  loss %7.4f  acc %6.2f%%",
				p.Round, p.LatencySeconds, p.Loss, p.Accuracy*100)
		}
	}
}

// BenchmarkFig2aAccuracyVsRounds regenerates Fig. 2(a): accuracy vs
// training rounds for CL, SL, GSFL, FL.
func BenchmarkFig2aAccuracyVsRounds(b *testing.B) {
	spec, rounds, evalEvery := benchScale()
	var curves []*metrics.Curve
	for i := 0; i < b.N; i++ {
		var err error
		curves, err = experiment.RunFig2a(spec, rounds, evalEvery)
		if err != nil {
			b.Fatal(err)
		}
	}
	logCurves(b, "Fig 2(a): accuracy vs rounds (CL/SL/GSFL/FL)", curves)
	for _, c := range curves {
		b.ReportMetric(c.FinalAccuracy()*100, "final_acc_%_"+c.Scheme)
	}
}

// BenchmarkFig2bAccuracyVsLatency regenerates Fig. 2(b): accuracy vs
// cumulative wall-clock training latency for GSFL vs SL.
func BenchmarkFig2bAccuracyVsLatency(b *testing.B) {
	spec, rounds, evalEvery := benchScale()
	var curves []*metrics.Curve
	for i := 0; i < b.N; i++ {
		var err error
		curves, err = experiment.RunFig2b(spec, rounds, evalEvery)
		if err != nil {
			b.Fatal(err)
		}
	}
	logCurves(b, "Fig 2(b): accuracy vs latency (GSFL vs SL)", curves)
	var gsflC, slC *metrics.Curve
	for _, c := range curves {
		if c.Scheme == "gsfl" {
			gsflC = c
		} else {
			slC = c
		}
	}
	gl := gsflC.Points[len(gsflC.Points)-1].LatencySeconds
	sl := slC.Points[len(slC.Points)-1].LatencySeconds
	b.ReportMetric(gl, "gsfl_total_latency_s")
	b.ReportMetric(sl, "sl_total_latency_s")
	if sl > 0 {
		// The paper reports ≈31.45% at its scale.
		b.ReportMetric((sl-gl)/sl*100, "delay_reduction_%")
	}
}

// BenchmarkTable1ConvergenceRounds regenerates the convergence table
// behind the "nearly 500% improvement in convergence speed vs FL" claim.
func BenchmarkTable1ConvergenceRounds(b *testing.B) {
	spec, rounds, evalEvery := benchScale()
	target := 0.5
	if os.Getenv("GSFL_FULL") == "1" {
		target = 0.85
	}
	for i := 0; i < b.N; i++ {
		tbl, curves, err := experiment.RunTable1(spec, rounds, evalEvery, target)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Logf("=== Table 1: rounds to %.0f%% accuracy ===", target*100)
			for _, r := range tbl.Rows {
				b.Logf("  %v", r)
			}
			var gsflC, flC *metrics.Curve
			for _, c := range curves {
				switch c.Scheme {
				case "gsfl":
					gsflC = c
				case "fl":
					flC = c
				}
			}
			if s, ok := metrics.SpeedupVsRounds(gsflC, flC, target); ok {
				b.ReportMetric(s*100, "gsfl_vs_fl_speedup_%")
			}
		}
	}
}

// BenchmarkTable2LatencyBreakdown regenerates the per-round latency
// breakdown (the decomposition behind the 31.45% delay-reduction claim).
func BenchmarkTable2LatencyBreakdown(b *testing.B) {
	spec, rounds, _ := benchScale()
	for i := 0; i < b.N; i++ {
		tbl, err := experiment.RunTable2(spec, rounds)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Logf("=== Table 2: per-round latency breakdown (s) ===")
			b.Logf("%v", tbl.Columns)
			for _, r := range tbl.Rows {
				b.Logf("  %s: total %v (client %v, up %v, server %v, down %v, relay %v, agg %v)",
					r["scheme"], r["total_s"], r["client_compute_s"], r["uplink_s"],
					r["server_compute_s"], r["downlink_s"], r["relay_s"], r["aggregation_s"])
			}
		}
	}
}

// BenchmarkTable3ServerStorage regenerates the §I storage comparison:
// M server-side replicas (GSFL) vs N (SplitFed).
func BenchmarkTable3ServerStorage(b *testing.B) {
	spec, _, _ := benchScale()
	for i := 0; i < b.N; i++ {
		tbl, err := experiment.RunTable3(spec)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Logf("=== Table 3: edge-server storage ===")
			for _, r := range tbl.Rows {
				b.Logf("  %s: %v replicas, %v bytes", r["scheme"], r["server_replicas"], r["server_storage_bytes"])
				if r["scheme"] == "gsfl" {
					b.ReportMetric(float64(r["server_replicas"].(int)), "gsfl_replicas")
				} else {
					b.ReportMetric(float64(r["server_replicas"].(int)), "sfl_replicas")
				}
			}
		}
	}
}

// BenchmarkAblationCutLayer sweeps the cut layer (future work A1).
func BenchmarkAblationCutLayer(b *testing.B) {
	spec, rounds, evalEvery := benchScale()
	cuts := []int{1, 3, 6, 9}
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunAblationCutLayer(spec, cuts, rounds, evalEvery)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Logf("=== Ablation A1: cut-layer sweep ===")
			for _, r := range res {
				b.Logf("  cut %d: smashed %6d B/batch, client model %6d B, round %8.3fs, final acc %5.2f%%",
					r.Cut, r.SmashedBytes, r.ClientBytes, r.RoundLatency, r.FinalAccuracy*100)
			}
		}
	}
}

// BenchmarkAblationGrouping sweeps group count and strategy (A2).
func BenchmarkAblationGrouping(b *testing.B) {
	spec, rounds, evalEvery := benchScale()
	counts := []int{1, 2, 5}
	if os.Getenv("GSFL_FULL") == "1" {
		counts = []int{1, 2, 3, 6, 10, 15, 30}
	}
	strategies := []string{"round-robin", "random", "compute-balanced"}
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunAblationGrouping(spec, counts, strategies, rounds, evalEvery)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Logf("=== Ablation A2: grouping sweep ===")
			for _, r := range res {
				b.Logf("  M=%2d %-17s round %8.3fs  final acc %5.2f%%",
					r.Groups, r.Strategy, r.RoundLatency, r.FinalAccuracy*100)
			}
		}
	}
}

// BenchmarkAblationResourceAllocation compares bandwidth allocators (A3).
func BenchmarkAblationResourceAllocation(b *testing.B) {
	spec, rounds, _ := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunAblationAllocation(spec, rounds)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Logf("=== Ablation A3: bandwidth allocation ===")
			for _, r := range res {
				b.Logf("  %-17s round %8.3fs", r.Allocator, r.RoundLatency)
				b.ReportMetric(r.RoundLatency, fmt.Sprintf("round_s_%s", r.Allocator))
			}
		}
	}
}

// BenchmarkAblationPipelining compares sequential-stage GSFL against
// communication/computation-overlapped turns (reference [2]'s parallel
// design; extension P in DESIGN.md).
func BenchmarkAblationPipelining(b *testing.B) {
	spec, rounds, evalEvery := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunAblationPipelining(spec, rounds, evalEvery)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Logf("=== Ablation P: pipelined turns ===")
			for _, r := range res {
				b.Logf("  pipelined=%-5v round %8.4fs  final acc %5.2f%%",
					r.Pipelined, r.RoundLatency, r.FinalAccuracy*100)
				if r.Pipelined {
					b.ReportMetric(r.RoundLatency, "round_s_pipelined")
				} else {
					b.ReportMetric(r.RoundLatency, "round_s_sequential")
				}
			}
		}
	}
}

// BenchmarkAblationQuantization compares float32-wire GSFL against 8-bit
// quantized smashed-data/gradient transfers (extension Q in DESIGN.md).
func BenchmarkAblationQuantization(b *testing.B) {
	spec, rounds, evalEvery := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunAblationQuantization(spec, rounds, evalEvery)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Logf("=== Ablation Q: 8-bit transfer quantization ===")
			for _, r := range res {
				b.Logf("  quantized=%-5v round %8.4fs  final acc %5.2f%%",
					r.Quantized, r.RoundLatency, r.FinalAccuracy*100)
			}
		}
	}
}

// BenchmarkAblationDropout sweeps per-round client unavailability
// (extension D in DESIGN.md).
func BenchmarkAblationDropout(b *testing.B) {
	spec, rounds, evalEvery := benchScale()
	probs := []float64{0, 0.1, 0.3}
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunAblationDropout(spec, probs, rounds, evalEvery)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Logf("=== Ablation D: client dropout robustness ===")
			for _, r := range res {
				b.Logf("  p=%.1f round %8.4fs  final acc %5.2f%%",
					r.DropoutProb, r.RoundLatency, r.FinalAccuracy*100)
			}
		}
	}
}

// BenchmarkAblationNonIID sweeps data heterogeneity (Dirichlet alpha)
// for GSFL vs FL (extension N in DESIGN.md).
func BenchmarkAblationNonIID(b *testing.B) {
	spec, rounds, evalEvery := benchScale()
	alphas := []float64{0.1, 1, 100}
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunAblationNonIID(spec, alphas, rounds, evalEvery)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Logf("=== Ablation N: non-IID sweep (GSFL vs FL) ===")
			for _, r := range res {
				b.Logf("  alpha=%-6g %-4s final acc %5.2f%%  rounds-to-50%%: %d (reached=%v)",
					r.Alpha, r.Scheme, r.FinalAccuracy*100, r.RoundsToHalf, r.ReachedHalf)
			}
		}
	}
}

// BenchmarkSeedVariance reruns GSFL across seeds and reports the spread
// of final accuracy (extension S in DESIGN.md).
func BenchmarkSeedVariance(b *testing.B) {
	spec, rounds, evalEvery := benchScale()
	for i := 0; i < b.N; i++ {
		st, err := experiment.RunSeedSweep(spec, "gsfl", 3, rounds, evalEvery)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Logf("=== Extension S: seed variance ===")
			b.Logf("  gsfl over %d seeds: mean %5.2f%%  std %5.2f%%  range [%5.2f%%, %5.2f%%]",
				st.Seeds, st.MeanAcc*100, st.StdAcc*100, st.WorstAcc*100, st.BestAcc*100)
			b.ReportMetric(st.MeanAcc*100, "mean_final_acc_%")
			b.ReportMetric(st.StdAcc*100, "std_final_acc_%")
		}
	}
}

// speedupWorkers are the pool widths the serial-vs-parallel benchmarks
// sweep. workers=1 is the serial baseline; compare ns/op across sub-
// benchmarks to read off the speedup (the acceptance bar is ≥2x at 4+
// workers on multi-core hardware).
var speedupWorkers = []int{1, 2, 4, 8}

// BenchmarkParallelMatMul measures the tensor hot path's row-partitioned
// matrix multiply across worker counts, on the matrix shape a GTSRB CNN
// conv layer produces (weights 32×288, columns 288×1024).
func BenchmarkParallelMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	w := tensor.New(32, 288).RandNormal(rng, 0, 1)
	col := tensor.New(288, 1024).RandNormal(rng, 0, 1)
	for _, workers := range speedupWorkers {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			parallel.SetWorkers(workers)
			defer parallel.SetWorkers(0)
			for i := 0; i < b.N; i++ {
				tensor.MatMul(w, col)
			}
		})
	}
}

// BenchmarkParallelGroupRound measures one full GSFL round — the paper's
// M groups training concurrently — across worker counts. The model
// numerics and the simulated-latency ledger are bit-identical at every
// width (asserted by the determinism tests); only wall-clock time drops.
func BenchmarkParallelGroupRound(b *testing.B) {
	spec := experiment.TestSpec()
	spec.Clients = 8
	spec.Groups = 4
	spec.ImageSize = 16
	spec.TrainPerClient = 64
	spec.Hyper.Batch = 16
	spec.Hyper.StepsPerClient = 2
	spec.Device.N = spec.Clients
	for _, workers := range speedupWorkers {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			parallel.SetWorkers(workers)
			defer parallel.SetWorkers(0)
			tr, err := experiment.NewTrainer(spec, "gsfl")
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tr.Round(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelEvaluate measures test-set evaluation (forward passes
// only — the conv layers' batched im2col and sample-partitioned matmuls)
// across worker counts.
func BenchmarkParallelEvaluate(b *testing.B) {
	spec := experiment.TestSpec()
	spec.ImageSize = 16
	spec.TestPerClass = 4
	for _, workers := range speedupWorkers {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			parallel.SetWorkers(workers)
			defer parallel.SetWorkers(0)
			tr, err := experiment.NewTrainer(spec, "gsfl")
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tr.Evaluate(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkValidationEventDriven quantifies the gap between the analytic
// position-synchronized latency model and true event-driven processor
// sharing (experiment V in DESIGN.md).
func BenchmarkValidationEventDriven(b *testing.B) {
	spec, _, _ := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunValidationEventDriven(spec)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Logf("=== Experiment V: latency-model validation ===")
			b.Logf("  analytic %8.4fs  event-driven %8.4fs  gap %+.2f%%",
				res.AnalyticSeconds, res.EventDrivenSeconds, res.RelativeGap*100)
			b.ReportMetric(res.RelativeGap*100, "model_gap_%")
		}
	}
}
