package tensor

import (
	"math/rand"
	"testing"

	"gsfl/internal/parallel"
)

// The parallel kernels promise bit-identical results to the serial path
// for any worker count (see internal/parallel's determinism contract).
// These tests pin that promise down with exact float64 equality across
// 1, 2, and 8 workers.

var determinismWorkers = []int{1, 2, 8}

// atWorkers evaluates f under each worker count and returns the results.
func atWorkers(t *testing.T, f func() []float64) [][]float64 {
	t.Helper()
	out := make([][]float64, len(determinismWorkers))
	for i, w := range determinismWorkers {
		parallel.SetWorkers(w)
		out[i] = f()
	}
	parallel.SetWorkers(0)
	return out
}

// mustBitIdentical fails unless every result equals the workers=1 result
// exactly (bitwise, via float64 ==; the data contains no NaNs).
func mustBitIdentical(t *testing.T, name string, results [][]float64) {
	t.Helper()
	base := results[0]
	for ri, r := range results[1:] {
		if len(r) != len(base) {
			t.Fatalf("%s: workers=%d result length %d, want %d",
				name, determinismWorkers[ri+1], len(r), len(base))
		}
		for i := range r {
			if r[i] != base[i] {
				t.Fatalf("%s: workers=%d differs from serial at element %d: %g vs %g",
					name, determinismWorkers[ri+1], i, r[i], base[i])
			}
		}
	}
}

func TestMatMulBitIdenticalAcrossWorkers(t *testing.T) {
	// Odd sizes exercise uneven chunk boundaries.
	for _, dims := range [][3]int{{1, 1, 1}, {7, 5, 3}, {64, 64, 64}, {129, 67, 251}} {
		m, k, n := dims[0], dims[1], dims[2]
		rng := rand.New(rand.NewSource(11))
		a := New(m, k).RandNormal(rng, 0, 1)
		b := New(k, n).RandNormal(rng, 0, 1)
		mustBitIdentical(t, "MatMul", atWorkers(t, func() []float64 {
			return MatMul(a, b).Data
		}))
	}
}

func TestMatMulTransABitIdenticalAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := New(130, 71).RandNormal(rng, 0, 1)
	b := New(130, 33).RandNormal(rng, 0, 1)
	mustBitIdentical(t, "MatMulTransA", atWorkers(t, func() []float64 {
		return MatMulTransA(a, b).Data
	}))
}

func TestMatMulTransBBitIdenticalAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := New(71, 130).RandNormal(rng, 0, 1)
	b := New(33, 130).RandNormal(rng, 0, 1)
	mustBitIdentical(t, "MatMulTransB", atWorkers(t, func() []float64 {
		return MatMulTransB(a, b).Data
	}))
}

func convTestGeom() ConvGeom {
	return ConvGeom{
		InC: 5, InH: 17, InW: 13,
		KH: 3, KW: 3,
		StrideH: 2, StrideW: 1,
		PadH: 1, PadW: 2,
	}
}

func TestIm2ColBitIdenticalAcrossWorkers(t *testing.T) {
	g := convTestGeom()
	rng := rand.New(rand.NewSource(14))
	src := New(g.ImageSize()).RandNormal(rng, 0, 1)
	mustBitIdentical(t, "Im2Col", atWorkers(t, func() []float64 {
		dst := make([]float64, g.ColSize())
		Im2Col(dst, src.Data, g)
		return dst
	}))
}

func TestCol2ImBitIdenticalAcrossWorkers(t *testing.T) {
	g := convTestGeom()
	rng := rand.New(rand.NewSource(15))
	src := New(g.ColSize()).RandNormal(rng, 0, 1)
	mustBitIdentical(t, "Col2Im", atWorkers(t, func() []float64 {
		dst := make([]float64, g.ImageSize())
		Col2Im(dst, src.Data, g)
		return dst
	}))
}

func TestIm2ColBatchMatchesPerSampleSerial(t *testing.T) {
	g := convTestGeom()
	const n = 6
	rng := rand.New(rand.NewSource(16))
	src := New(n*g.ImageSize()).RandNormal(rng, 0, 1)

	parallel.SetWorkers(1)
	want := make([]float64, n*g.ColSize())
	for i := 0; i < n; i++ {
		Im2Col(want[i*g.ColSize():(i+1)*g.ColSize()], src.Data[i*g.ImageSize():(i+1)*g.ImageSize()], g)
	}
	results := atWorkers(t, func() []float64 {
		dst := make([]float64, n*g.ColSize())
		Im2ColBatch(dst, src.Data, n, g)
		return dst
	})
	parallel.SetWorkers(0)
	mustBitIdentical(t, "Im2ColBatch", append([][]float64{want}, results...))
}

func TestCol2ImBatchMatchesPerSampleSerial(t *testing.T) {
	g := convTestGeom()
	const n = 6
	rng := rand.New(rand.NewSource(17))
	src := New(n*g.ColSize()).RandNormal(rng, 0, 1)

	parallel.SetWorkers(1)
	want := make([]float64, n*g.ImageSize())
	for i := 0; i < n; i++ {
		Col2Im(want[i*g.ImageSize():(i+1)*g.ImageSize()], src.Data[i*g.ColSize():(i+1)*g.ColSize()], g)
	}
	results := atWorkers(t, func() []float64 {
		dst := make([]float64, n*g.ImageSize())
		Col2ImBatch(dst, src.Data, n, g)
		return dst
	})
	parallel.SetWorkers(0)
	mustBitIdentical(t, "Col2ImBatch", append([][]float64{want}, results...))
}
