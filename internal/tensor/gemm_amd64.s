//go:build amd64

#include "textflag.h"

// GEMM micro-kernels: one 4×8 (MR×NR) tile of C over the full k extent
// of a packed A panel (k×4 interleaved) and packed B panel (k×8
// interleaved). The tile lives in eight YMM accumulators (Y0–Y7); per k
// step the kernel loads one B row (Y8/Y9) and broadcasts each of the
// four A values, so every C element is a single accumulator updated in
// ascending-k order — the determinism contract of the engine. C is
// overwritten at the end; rows are ldc elements apart. k must be ≥ 1
// (the loop is do-while shaped; the Go wrapper guards k == 0).

// func ukernExact4x8(k int64, ap, bp, c *float64, ldc int64)
//
// Exact mode: multiply and add rounded separately (VMULPD + VADDPD),
// bit-identical to the portable scalar kernel.
TEXT ·ukernExact4x8(SB), NOSPLIT, $0-40
	MOVQ k+0(FP), CX
	MOVQ ap+8(FP), AX
	MOVQ bp+16(FP), BX
	MOVQ c+24(FP), DI
	MOVQ ldc+32(FP), SI
	SHLQ $3, SI            // ldc in bytes

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7

exact_loop:
	VMOVUPD (BX), Y8       // b[0:4]
	VMOVUPD 32(BX), Y9     // b[4:8]

	VBROADCASTSD (AX), Y10
	VMULPD Y8, Y10, Y11
	VADDPD Y11, Y0, Y0
	VMULPD Y9, Y10, Y12
	VADDPD Y12, Y1, Y1

	VBROADCASTSD 8(AX), Y13
	VMULPD Y8, Y13, Y14
	VADDPD Y14, Y2, Y2
	VMULPD Y9, Y13, Y15
	VADDPD Y15, Y3, Y3

	VBROADCASTSD 16(AX), Y10
	VMULPD Y8, Y10, Y11
	VADDPD Y11, Y4, Y4
	VMULPD Y9, Y10, Y12
	VADDPD Y12, Y5, Y5

	VBROADCASTSD 24(AX), Y13
	VMULPD Y8, Y13, Y14
	VADDPD Y14, Y6, Y6
	VMULPD Y9, Y13, Y15
	VADDPD Y15, Y7, Y7

	ADDQ $32, AX           // next A row (MR doubles)
	ADDQ $64, BX           // next B row (NR doubles)
	DECQ CX
	JNZ  exact_loop

	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	ADDQ SI, DI
	VMOVUPD Y2, (DI)
	VMOVUPD Y3, 32(DI)
	ADDQ SI, DI
	VMOVUPD Y4, (DI)
	VMOVUPD Y5, 32(DI)
	ADDQ SI, DI
	VMOVUPD Y6, (DI)
	VMOVUPD Y7, 32(DI)
	VZEROUPPER
	RET

// func ukernFast4x8(k int64, ap, bp, c *float64, ldc int64)
//
// Fast mode: the same tile with fused multiply-add — one rounding per
// update instead of two. Only reachable through a Reassociate numeric
// mode; pinned by tolerance tests, not bit-equality.
TEXT ·ukernFast4x8(SB), NOSPLIT, $0-40
	MOVQ k+0(FP), CX
	MOVQ ap+8(FP), AX
	MOVQ bp+16(FP), BX
	MOVQ c+24(FP), DI
	MOVQ ldc+32(FP), SI
	SHLQ $3, SI

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7

fast_loop:
	VMOVUPD (BX), Y8
	VMOVUPD 32(BX), Y9

	VBROADCASTSD (AX), Y10
	VFMADD231PD Y8, Y10, Y0
	VFMADD231PD Y9, Y10, Y1

	VBROADCASTSD 8(AX), Y11
	VFMADD231PD Y8, Y11, Y2
	VFMADD231PD Y9, Y11, Y3

	VBROADCASTSD 16(AX), Y12
	VFMADD231PD Y8, Y12, Y4
	VFMADD231PD Y9, Y12, Y5

	VBROADCASTSD 24(AX), Y13
	VFMADD231PD Y8, Y13, Y6
	VFMADD231PD Y9, Y13, Y7

	ADDQ $32, AX
	ADDQ $64, BX
	DECQ CX
	JNZ  fast_loop

	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	ADDQ SI, DI
	VMOVUPD Y2, (DI)
	VMOVUPD Y3, 32(DI)
	ADDQ SI, DI
	VMOVUPD Y4, (DI)
	VMOVUPD Y5, 32(DI)
	ADDQ SI, DI
	VMOVUPD Y6, (DI)
	VMOVUPD Y7, 32(DI)
	VZEROUPPER
	RET

// func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
