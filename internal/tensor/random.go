package tensor

import (
	"math"
	"math/rand"
)

// RandUniform fills t with samples from Uniform[lo, hi) drawn from rng and
// returns t. Passing the RNG explicitly keeps every fill deterministic and
// lets concurrent group replicas own independent streams.
func (t *Tensor) RandUniform(rng *rand.Rand, lo, hi float64) *Tensor {
	span := hi - lo
	for i := range t.Data {
		t.Data[i] = lo + span*rng.Float64()
	}
	return t
}

// RandNormal fills t with samples from N(mean, std²) and returns t.
func (t *Tensor) RandNormal(rng *rand.Rand, mean, std float64) *Tensor {
	for i := range t.Data {
		t.Data[i] = mean + std*rng.NormFloat64()
	}
	return t
}

// HeInit fills t with the He-normal initialization appropriate for layers
// followed by ReLU: N(0, sqrt(2/fanIn)²).
func (t *Tensor) HeInit(rng *rand.Rand, fanIn int) *Tensor {
	if fanIn <= 0 {
		fanIn = 1
	}
	return t.RandNormal(rng, 0, math.Sqrt(2/float64(fanIn)))
}

// XavierInit fills t with the Glorot-uniform initialization appropriate
// for tanh/sigmoid layers: Uniform(-a, a) with a = sqrt(6/(fanIn+fanOut)).
func (t *Tensor) XavierInit(rng *rand.Rand, fanIn, fanOut int) *Tensor {
	if fanIn+fanOut <= 0 {
		return t.Zeroed()
	}
	a := math.Sqrt(6 / float64(fanIn+fanOut))
	return t.RandUniform(rng, -a, a)
}

// Zeroed zeroes t and returns it (chaining helper).
func (t *Tensor) Zeroed() *Tensor {
	t.Zero()
	return t
}
