package tensor

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// A NumericMode names one floating-point contract for the GEMM engine.
//
// The default "exact" mode keeps the repo-wide determinism guarantee:
// every output element is accumulated in one accumulator, in ascending-k
// order, with separate multiply-then-add rounding — bit-identical at any
// worker count, on any platform, with or without vector hardware.
//
// A mode with Reassociate set is allowed to fuse multiplies into the
// accumulate (FMA) and to reassociate partial sums inside the
// micro-kernel. Results then differ from exact mode in the last few ulps
// (and may differ across CPUs with different vector hardware), but they
// are still deterministic on one machine at any worker count, because
// the per-element instruction sequence does not depend on how output
// rows are partitioned. Reassociating modes are pinned by golden-curve
// tolerance tests rather than bit-equality.
type NumericMode struct {
	// Name is the registry key ("exact", "fast", ...).
	Name string
	// Reassociate permits FMA contraction and in-kernel reassociation.
	Reassociate bool
}

// DefaultNumericMode is the name of the bit-identical default mode.
const DefaultNumericMode = "exact"

var (
	numericMu    sync.Mutex
	numericModes = map[string]NumericMode{}

	// numericReassoc mirrors the current mode's Reassociate flag for the
	// kernel hot path (read once per GEMM call, no lock).
	numericReassoc atomic.Bool
	// numericCurrent / numericAmbient are guarded by numericMu. Ambient
	// is what SetNumericMode installed (the process-wide CLI choice);
	// current may temporarily differ while AcquireNumericMode holds a
	// job-scoped mode.
	numericCurrent NumericMode
	numericAmbient NumericMode
)

func init() {
	exact := NumericMode{Name: DefaultNumericMode}
	numericModes[exact.Name] = exact
	numericModes["fast"] = NumericMode{Name: "fast", Reassociate: true}
	numericCurrent = exact
	numericAmbient = exact
}

// RegisterNumericMode adds a numeric mode to the registry. Registering a
// name twice or registering the empty name panics — modes are wired at
// init time and a clash is a programming error.
func RegisterNumericMode(mode NumericMode) {
	if mode.Name == "" {
		panic("tensor: RegisterNumericMode with empty name")
	}
	numericMu.Lock()
	defer numericMu.Unlock()
	if _, dup := numericModes[mode.Name]; dup {
		panic(fmt.Sprintf("tensor: numeric mode %q registered twice", mode.Name))
	}
	numericModes[mode.Name] = mode
}

// NumericModes returns the sorted names of all registered numeric modes.
func NumericModes() []string {
	numericMu.Lock()
	defer numericMu.Unlock()
	names := make([]string, 0, len(numericModes))
	for name := range numericModes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// CanonicalNumericMode resolves a mode token to its registered name. The
// empty token means the default mode, so specs that never mention
// numerics keep their byte-identical JSON and hashes.
func CanonicalNumericMode(name string) (string, error) {
	if name == "" {
		return DefaultNumericMode, nil
	}
	numericMu.Lock()
	defer numericMu.Unlock()
	if _, ok := numericModes[name]; !ok {
		return "", fmt.Errorf("tensor: unknown numeric mode %q (registered: %v)", name, numericNamesLocked())
	}
	return name, nil
}

func numericNamesLocked() []string {
	names := make([]string, 0, len(numericModes))
	for name := range numericModes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// SetNumericMode installs the process-wide numeric mode (the CLI
// `-numeric` choice). It fails on unknown names and while a different
// mode is held by AcquireNumericMode.
func SetNumericMode(name string) error {
	canon, err := CanonicalNumericMode(name)
	if err != nil {
		return err
	}
	numericMu.Lock()
	defer numericMu.Unlock()
	mode := numericModes[canon]
	if acquireCount > 0 && numericCurrent.Name != mode.Name {
		return fmt.Errorf("tensor: numeric mode %q is held by %d running job(s); cannot switch to %q",
			numericCurrent.Name, acquireCount, mode.Name)
	}
	numericAmbient = mode
	numericCurrent = mode
	numericReassoc.Store(mode.Reassociate)
	return nil
}

// CurrentNumericMode reports the numeric mode the kernels are running
// under right now.
func CurrentNumericMode() NumericMode {
	numericMu.Lock()
	defer numericMu.Unlock()
	return numericCurrent
}

var (
	acquireCount int
	acquireCond  = sync.NewCond(&numericMu)
)

// AcquireNumericMode pins the process numeric mode to name for the
// duration of one job and returns the release function. The mode is a
// process-global kernel switch, so concurrent holders of the same mode
// proceed together (a counting lock) while a holder of a different mode
// blocks until the current holders release. This lets a sweep scheduler
// run a mixed exact/fast grid with full concurrency inside each mode
// and a barrier only at mode switches. When the last holder releases,
// the ambient SetNumericMode choice is restored.
func AcquireNumericMode(name string) (release func(), err error) {
	canon, err := CanonicalNumericMode(name)
	if err != nil {
		return nil, err
	}
	numericMu.Lock()
	defer numericMu.Unlock()
	mode := numericModes[canon]
	for acquireCount > 0 && numericCurrent.Name != mode.Name {
		acquireCond.Wait()
	}
	acquireCount++
	numericCurrent = mode
	numericReassoc.Store(mode.Reassociate)
	var once sync.Once
	return func() {
		once.Do(func() {
			numericMu.Lock()
			acquireCount--
			if acquireCount == 0 {
				numericCurrent = numericAmbient
				numericReassoc.Store(numericAmbient.Reassociate)
				acquireCond.Broadcast()
			}
			numericMu.Unlock()
		})
	}, nil
}
