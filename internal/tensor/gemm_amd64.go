//go:build amd64

package tensor

// AVX2 micro-kernel bindings. The kernels are selected at init after a
// CPUID probe: the exact kernel needs AVX2 (and OS-enabled YMM state),
// the fast kernel additionally needs FMA. Without the hardware the
// portable generic kernel stays active — still bit-identical, since the
// exact AVX2 kernel performs the same per-element operation sequence.

//go:noescape
func ukernExact4x8(k int64, ap, bp, c *float64, ldc int64)

//go:noescape
func ukernFast4x8(k int64, ap, bp, c *float64, ldc int64)

func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

func xgetbv0() (eax, edx uint32)

func ukernExactAVX2(k int, ap, bp, c []float64, ldc int) {
	if k == 0 {
		zeroTile(c, ldc)
		return
	}
	ukernExact4x8(int64(k), &ap[0], &bp[0], &c[0], int64(ldc))
}

func ukernFastAVX2(k int, ap, bp, c []float64, ldc int) {
	if k == 0 {
		zeroTile(c, ldc)
		return
	}
	ukernFast4x8(int64(k), &ap[0], &bp[0], &c[0], int64(ldc))
}

func zeroTile(c []float64, ldc int) {
	for r := 0; r < gemmMR; r++ {
		row := c[r*ldc : r*ldc+gemmNR]
		for j := range row {
			row[j] = 0
		}
	}
}

func init() {
	avx2, fma := detectGEMMKernels()
	if !avx2 {
		return
	}
	kernExact = ukernExactAVX2
	kernFast = ukernExactAVX2
	if fma {
		kernFast = ukernFastAVX2
	}
}

// detectGEMMKernels probes CPUID for AVX2 (with OS-enabled YMM state via
// XGETBV) and FMA. The probe is hand-rolled because the module has no
// dependencies to lean on.
func detectGEMMKernels() (avx2, fma bool) {
	maxLeaf, _, _, _ := cpuidAsm(0, 0)
	if maxLeaf < 7 {
		return false, false
	}
	const (
		cpuidFMA     = 1 << 12 // leaf 1 ECX
		cpuidOSXSAVE = 1 << 27 // leaf 1 ECX
		cpuidAVX     = 1 << 28 // leaf 1 ECX
		cpuidAVX2    = 1 << 5  // leaf 7 EBX
		xcr0YMM      = 0x6     // XMM and YMM state enabled by the OS
	)
	_, _, ecx1, _ := cpuidAsm(1, 0)
	if ecx1&cpuidOSXSAVE == 0 || ecx1&cpuidAVX == 0 {
		return false, false
	}
	if xeax, _ := xgetbv0(); xeax&xcr0YMM != xcr0YMM {
		return false, false
	}
	_, ebx7, _, _ := cpuidAsm(7, 0)
	return ebx7&cpuidAVX2 != 0, ecx1&cpuidFMA != 0
}
