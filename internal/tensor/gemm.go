package tensor

import (
	"fmt"

	"gsfl/internal/parallel"
)

// Blocked, panel-packed GEMM engine.
//
// All three matmul orientations (plain, aᵀ@b, a@bᵀ) and the
// implicit-GEMM convolution kernels funnel into gemmInto: the right-hand
// operand is packed once into NR-column panels, output rows are
// partitioned across the worker pool in MR-row blocks, and each chunk
// packs its own A panels before running the micro-kernel over its tiles.
// Packing buffers come from an internal Pool, so steady-state calls
// allocate nothing in serial runs.
//
// Determinism: every output element is produced by exactly one
// micro-kernel call that accumulates its k terms in ascending order in a
// single accumulator. Chunk boundaries fall between MR-row blocks and
// never change any element's accumulation sequence, so results are
// bit-identical at any worker count — the same contract the previous
// scalar kernels had. In the default "exact" numeric mode the kernel
// rounds every multiply and add separately (scalar and AVX2 paths agree
// bit-for-bit); a Reassociate mode swaps in an FMA kernel whose results
// are still worker-count-independent but only tolerance-comparable to
// exact mode.

const (
	// gemmMR × gemmNR is the micro-kernel register tile: 4 rows × 8
	// columns = eight 4-wide vector accumulators, which fits the 16
	// architectural vector registers on amd64 with room for operands.
	gemmMR = 4
	gemmNR = 8

	// gemmMinFLOPs is the total-work floor below which the packed path's
	// packing overhead beats its kernel win and the scalar fallback runs
	// instead. 2*m*k*n flops; 8192 keeps every tile-edge case reachable
	// by the exhaustive small-shape tests (17³ is above the floor).
	gemmMinFLOPs = 8192
)

// packPool services the packing panels for every GEMM call in the
// process. Buffers are size-bucketed, so the steady state of a training
// loop reuses the same handful of panels round after round.
var packPool Pool

// ukernFunc computes one MR×NR output tile over the full k extent of a
// packed A panel (k×MR interleaved) and packed B panel (k×NR
// interleaved). The tile is overwritten, not accumulated; row r starts
// at c[r*ldc].
type ukernFunc func(k int, ap, bp, c []float64, ldc int)

// kernExact / kernFast are the active micro-kernels, overridden at init
// by the amd64 vector kernels when the CPU supports them. kernExact is
// always bit-identical to ukernExactGeneric; kernFast may contract
// multiply-adds (FMA) and falls back to the exact kernel on hardware
// without FMA.
var (
	kernExact ukernFunc = ukernExactGeneric
	kernFast  ukernFunc = ukernExactGeneric
)

type aKind uint8

const (
	aPlain      aKind = iota // a is (m×k) row-major
	aTransposed              // a is (k×m) row-major, logical A = aᵀ
)

type bKind uint8

const (
	bPlain      bKind = iota // b is (k×n) row-major
	bTransposed              // b is (n×k) row-major, logical B = bᵀ
	bIm2col                  // b is a CHW image; logical B = im2col(b)
	bIm2colT                 // b is a CHW image; logical B = im2col(b)ᵀ
)

// aSource / bSource describe the logical (m×k) and (k×n) operands in
// terms of their physical storage. They are small values passed on the
// stack; constructing them never allocates.
type aSource struct {
	data []float64
	kind aKind
}

type bSource struct {
	data []float64
	kind bKind
	geom ConvGeom // for the im2col kinds
}

// gemmUsable reports whether (m,k,n) is worth routing through the packed
// engine; below the floor the original scalar kernels win.
func gemmUsable(m, k, n int) bool {
	return m >= gemmMR && n >= gemmNR && 2*m*k*n >= gemmMinFLOPs
}

// gemmInto computes dst = A @ B for the logical operands described by
// asrc and bsrc. dst is fully overwritten.
func gemmInto(dst []float64, m, k, n int, asrc aSource, bsrc bSource) {
	if k == 0 {
		for i := range dst[:m*n] {
			dst[i] = 0
		}
		return
	}
	kern := kernExact
	if numericReassoc.Load() {
		kern = kernFast
	}
	nb := (n + gemmNR - 1) / gemmNR
	bp := packPool.GetSlice(nb * k * gemmNR)
	switch bsrc.kind {
	case bPlain:
		packB(bp, bsrc.data, k, n)
	case bTransposed:
		packBTrans(bp, bsrc.data, k, n)
	case bIm2col:
		packBIm2col(bp, bsrc.data, bsrc.geom)
	case bIm2colT:
		packBIm2colT(bp, bsrc.data, bsrc.geom)
	}
	mblocks := (m + gemmMR - 1) / gemmMR
	grain := grainRows(2 * k * n * gemmMR)
	if parallel.Inline(mblocks, grain) {
		ap := packPool.GetSlice(mblocks*k*gemmMR + gemmMR*gemmNR)
		gemmChunk(kern, dst, ap, bp, asrc, m, k, n, 0, mblocks)
		packPool.PutSlice(ap)
	} else {
		gemmParallel(kern, dst, bp, asrc, m, k, n, mblocks, grain)
	}
	packPool.PutSlice(bp)
}

// gemmParallel is the fork-join path, split out so its closure (and the
// escape of everything it captures) is only paid when the matrix is big
// enough to fan out.
func gemmParallel(kern ukernFunc, dst, bp []float64, asrc aSource, m, k, n, mblocks, grain int) {
	parallel.For(mblocks, grain, func(blo, bhi int) {
		ap := packPool.GetSlice((bhi-blo)*k*gemmMR + gemmMR*gemmNR)
		gemmChunk(kern, dst, ap, bp, asrc, m, k, n, blo, bhi)
		packPool.PutSlice(ap)
	})
}

// gemmChunk packs A row-blocks [blo, bhi) into ap and runs the
// micro-kernel over every tile of the chunk. ap carries gemmMR*gemmNR
// extra elements at its tail used as the spill tile for ragged edges
// (keeping the scratch heap-backed so passing it to the kernel does not
// force a per-call allocation).
func gemmChunk(kern ukernFunc, dst, ap, bp []float64, asrc aSource, m, k, n, blo, bhi int) {
	switch asrc.kind {
	case aPlain:
		packA(ap, asrc.data, m, k, blo, bhi)
	case aTransposed:
		packATrans(ap, asrc.data, m, k, blo, bhi)
	}
	nb := (n + gemmNR - 1) / gemmNR
	scratch := ap[(bhi-blo)*k*gemmMR:]
	for bi := blo; bi < bhi; bi++ {
		i0 := bi * gemmMR
		ib := m - i0
		if ib > gemmMR {
			ib = gemmMR
		}
		apan := ap[(bi-blo)*k*gemmMR:]
		for p := 0; p < nb; p++ {
			j0 := p * gemmNR
			jb := n - j0
			if jb > gemmNR {
				jb = gemmNR
			}
			bpan := bp[p*k*gemmNR:]
			if ib == gemmMR && jb == gemmNR {
				kern(k, apan, bpan, dst[i0*n+j0:], n)
			} else {
				kern(k, apan, bpan, scratch, gemmNR)
				for r := 0; r < ib; r++ {
					copy(dst[(i0+r)*n+j0:(i0+r)*n+j0+jb], scratch[r*gemmNR:r*gemmNR+jb])
				}
			}
		}
	}
}

// ConvMatMulInto computes dst = w @ im2col(img) without materializing
// the column matrix — the implicit-GEMM convolution forward pass. w is
// (outC × InC*KH*KW), img is one flat CHW image of g's geometry, dst is
// (outC × OutH*OutW). The packing routine reads the image through the
// im2col index map, so results are bit-identical (in exact mode) to
// Im2Col followed by MatMulInto. It returns dst.
func ConvMatMulInto(dst, w *Tensor, img []float64, g ConvGeom) *Tensor {
	k := g.InC * g.KH * g.KW
	n := g.OutH() * g.OutW()
	m := checkConvMatMul("ConvMatMulInto", dst, w, img, g, k, n)
	gemmInto(dst.Data, m, k, n, aSource{data: w.Data}, bSource{data: img, kind: bIm2col, geom: g})
	return dst
}

// ConvMatMulTransBInto computes dst = dy @ im2col(img)ᵀ without
// materializing the column matrix — the implicit-GEMM weight-gradient
// kernel of the conv backward pass. dy is (outC × OutH*OutW), dst is
// (outC × InC*KH*KW). It returns dst.
func ConvMatMulTransBInto(dst, dy *Tensor, img []float64, g ConvGeom) *Tensor {
	k := g.OutH() * g.OutW()
	n := g.InC * g.KH * g.KW
	m := checkConvMatMul("ConvMatMulTransBInto", dst, dy, img, g, k, n)
	gemmInto(dst.Data, m, k, n, aSource{data: dy.Data}, bSource{data: img, kind: bIm2colT, geom: g})
	return dst
}

// checkConvMatMul validates one implicit-GEMM call: a must be (m×ak),
// dst must be (m×an), img must be one image of g's geometry. It returns
// m. (For the forward kernel ak=colRows and an=spatial; the transposed
// kernel swaps them.)
func checkConvMatMul(op string, dst, a *Tensor, img []float64, g ConvGeom, ak, an int) int {
	if len(a.shape) != 2 || a.shape[1] != ak {
		panic(fmt.Sprintf("tensor: %s: left operand is %v, want (m×%d) for conv geometry %+v", op, a.shape, ak, g))
	}
	m := a.shape[0]
	if len(dst.shape) != 2 || dst.shape[0] != m || dst.shape[1] != an {
		panic(fmt.Sprintf("tensor: %s: dst is %v, want (%d×%d) for conv geometry %+v", op, dst.shape, m, an, g))
	}
	if len(img) != g.ImageSize() {
		panic(fmt.Sprintf("tensor: %s: image has %d elements, want %d (CHW %d×%d×%d)",
			op, len(img), g.ImageSize(), g.InC, g.InH, g.InW))
	}
	return m
}
