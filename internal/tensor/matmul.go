package tensor

import (
	"fmt"

	"gsfl/internal/parallel"
)

// minChunkFLOPs is the serial-work floor per parallel chunk: matrices
// whose total work is below ~2 chunks of this size run on the calling
// goroutine, so the layer-sized matmuls in the hot path parallelize while
// tiny ones skip the fork-join overhead entirely.
const minChunkFLOPs = 64 << 10

// grainRows converts a per-row FLOP estimate into the minimum number of
// output rows one parallel chunk must cover.
func grainRows(flopsPerRow int) int {
	if flopsPerRow <= 0 {
		return minChunkFLOPs
	}
	g := minChunkFLOPs / flopsPerRow
	if g < 1 {
		g = 1
	}
	return g
}

// MatMul returns the matrix product a @ b for 2-D tensors.
// a is (m×k), b is (k×n); the result is (m×n).
//
// Layer-sized products run on the blocked, panel-packed GEMM engine
// (gemm.go); small ones keep the scalar ikj schedule whose fork-join and
// packing overhead they cannot amortize. Both paths accumulate every
// output element in ascending-k order in a single accumulator and
// partition output rows across the parallel worker pool, so results are
// bit-identical to a single-worker run — and to each other.
func MatMul(a, b *Tensor) *Tensor {
	m, k, n := checkMatMul("MatMul", a, b)
	out := New(m, n)
	matMulInto(out.Data, a.Data, b.Data, m, k, n)
	return out
}

// MatMulInto computes dst = a @ b, reusing dst's storage. dst must be
// (m×n) and must not alias a or b. It returns dst. After warmup it
// performs no allocations in serial runs (see parallel.Inline; the GEMM
// packing panels are pooled).
func MatMulInto(dst, a, b *Tensor) *Tensor {
	return MatMulIntoOp("MatMulInto", dst, a, b)
}

// MatMulIntoOp is MatMulInto with a caller-supplied operation name used
// in panic messages, so a shape mismatch reports the layer and pass that
// issued the kernel instead of the bare kernel name.
func MatMulIntoOp(op string, dst, a, b *Tensor) *Tensor {
	m, k, n := checkMatMul(op, a, b)
	checkMatMulDst(op, dst, m, n)
	matMulInto(dst.Data, a.Data, b.Data, m, k, n)
	return dst
}

func checkMatMul(op string, a, b *Tensor) (m, k, n int) {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic(fmt.Sprintf("tensor: %s: requires 2-D operands, got a shape %v and b shape %v", op, a.shape, b.shape))
	}
	if a.shape[1] != b.shape[0] {
		panic(fmt.Sprintf("tensor: %s: inner dimension mismatch: a is (%d×%d), b is (%d×%d); a@b needs a's %d columns to equal b's %d rows",
			op, a.shape[0], a.shape[1], b.shape[0], b.shape[1], a.shape[1], b.shape[0]))
	}
	return a.shape[0], a.shape[1], b.shape[1]
}

// checkMatMulDst validates the destination of any matmul variant whose
// logical product is (m×n).
func checkMatMulDst(op string, dst *Tensor, m, n int) {
	if len(dst.shape) != 2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: %s: dst shape %v, want (%d×%d)", op, dst.shape, m, n))
	}
}

func matMulInto(dst, a, b []float64, m, k, n int) {
	if gemmUsable(m, k, n) {
		gemmInto(dst, m, k, n, aSource{data: a}, bSource{data: b})
		return
	}
	for i := range dst {
		dst[i] = 0
	}
	grain := grainRows(2 * k * n)
	if parallel.Inline(m, grain) {
		matMulRows(dst, a, b, k, n, 0, m)
		return
	}
	parallel.For(m, grain, func(lo, hi int) {
		matMulRows(dst, a, b, k, n, lo, hi)
	})
}

// matMulRows computes output rows [lo, hi) of dst = a @ b with the
// serial ikj schedule. Each call writes only its own rows.
func matMulRows(dst, a, b []float64, k, n, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a[i*k : (i+1)*k]
		drow := dst[i*n : (i+1)*n]
		for kk, av := range arow {
			if av == 0 {
				continue
			}
			brow := b[kk*n : (kk+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulTransA returns aᵀ @ b where a is (k×m) and b is (k×n); the result
// is (m×n). Used for weight gradients (xᵀ @ dy) without materializing the
// transpose. Output rows are partitioned across workers; each output
// element accumulates its k terms in ascending-k order on one worker, so
// results are bit-identical to the serial schedule.
func MatMulTransA(a, b *Tensor) *Tensor {
	k, m, n := checkMatMulTransA("MatMulTransA", a, b)
	out := New(m, n)
	matMulTransAInto(out.Data, a.Data, b.Data, k, m, n)
	return out
}

// MatMulTransAInto computes dst = aᵀ @ b, reusing dst's storage — the
// allocation-free variant the layer backward passes use to write a
// gradient straight into a reusable workspace buffer. dst must be (m×n),
// must not alias a or b, and is fully overwritten. It returns dst.
func MatMulTransAInto(dst, a, b *Tensor) *Tensor {
	return MatMulTransAIntoOp("MatMulTransAInto", dst, a, b)
}

// MatMulTransAIntoOp is MatMulTransAInto with a caller-supplied
// operation name for panic messages.
func MatMulTransAIntoOp(op string, dst, a, b *Tensor) *Tensor {
	k, m, n := checkMatMulTransA(op, a, b)
	checkMatMulDst(op, dst, m, n)
	matMulTransAInto(dst.Data, a.Data, b.Data, k, m, n)
	return dst
}

func checkMatMulTransA(op string, a, b *Tensor) (k, m, n int) {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic(fmt.Sprintf("tensor: %s: requires 2-D operands, got a shape %v and b shape %v", op, a.shape, b.shape))
	}
	if a.shape[0] != b.shape[0] {
		panic(fmt.Sprintf("tensor: %s: outer dimension mismatch: a is (%d×%d), b is (%d×%d); aᵀ@b needs a's %d rows to equal b's %d rows",
			op, a.shape[0], a.shape[1], b.shape[0], b.shape[1], a.shape[0], b.shape[0]))
	}
	return a.shape[0], a.shape[1], b.shape[1]
}

func matMulTransAInto(dst, a, b []float64, k, m, n int) {
	if gemmUsable(m, k, n) {
		gemmInto(dst, m, k, n, aSource{data: a, kind: aTransposed}, bSource{data: b})
		return
	}
	for i := range dst {
		dst[i] = 0
	}
	grain := grainRows(2 * k * n)
	if parallel.Inline(m, grain) {
		matMulTransARows(dst, a, b, k, m, n, 0, m)
		return
	}
	parallel.For(m, grain, func(lo, hi int) {
		matMulTransARows(dst, a, b, k, m, n, lo, hi)
	})
}

// matMulTransARows computes output rows [lo, hi) of aᵀ @ b, keeping the
// serial code's ascending-k accumulation order per element.
func matMulTransARows(dst, a, b []float64, k, m, n, lo, hi int) {
	for kk := 0; kk < k; kk++ {
		arow := a[kk*m : (kk+1)*m]
		brow := b[kk*n : (kk+1)*n]
		for i := lo; i < hi; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			drow := dst[i*n : (i+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulTransB returns a @ bᵀ where a is (m×k) and b is (n×k); the result
// is (m×n). Used for input gradients (dy @ wᵀ) without materializing the
// transpose. Output rows are independent dot products, partitioned across
// workers with bit-identical results.
func MatMulTransB(a, b *Tensor) *Tensor {
	m, k, n := checkMatMulTransB("MatMulTransB", a, b)
	out := New(m, n)
	matMulTransBInto(out.Data, a.Data, b.Data, m, k, n)
	return out
}

// MatMulTransBInto computes dst = a @ bᵀ, reusing dst's storage. dst must
// be (m×n) and must not alias a or b; every element is overwritten.
// It returns dst.
func MatMulTransBInto(dst, a, b *Tensor) *Tensor {
	return MatMulTransBIntoOp("MatMulTransBInto", dst, a, b)
}

// MatMulTransBIntoOp is MatMulTransBInto with a caller-supplied
// operation name for panic messages.
func MatMulTransBIntoOp(op string, dst, a, b *Tensor) *Tensor {
	m, k, n := checkMatMulTransB(op, a, b)
	checkMatMulDst(op, dst, m, n)
	matMulTransBInto(dst.Data, a.Data, b.Data, m, k, n)
	return dst
}

func checkMatMulTransB(op string, a, b *Tensor) (m, k, n int) {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic(fmt.Sprintf("tensor: %s: requires 2-D operands, got a shape %v and b shape %v", op, a.shape, b.shape))
	}
	if a.shape[1] != b.shape[1] {
		panic(fmt.Sprintf("tensor: %s: inner dimension mismatch: a is (%d×%d), b is (%d×%d); a@bᵀ needs a's %d columns to equal b's %d columns",
			op, a.shape[0], a.shape[1], b.shape[0], b.shape[1], a.shape[1], b.shape[1]))
	}
	return a.shape[0], a.shape[1], b.shape[0]
}

func matMulTransBInto(dst, a, b []float64, m, k, n int) {
	if gemmUsable(m, k, n) {
		gemmInto(dst, m, k, n, aSource{data: a}, bSource{data: b, kind: bTransposed})
		return
	}
	grain := grainRows(2 * k * n)
	if parallel.Inline(m, grain) {
		matMulTransBRows(dst, a, b, k, n, 0, m)
		return
	}
	parallel.For(m, grain, func(lo, hi int) {
		matMulTransBRows(dst, a, b, k, n, lo, hi)
	})
}

// matMulTransBRows computes output rows [lo, hi) of a @ bᵀ.
func matMulTransBRows(dst, a, b []float64, k, n, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a[i*k : (i+1)*k]
		drow := dst[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b[j*k : (j+1)*k]
			s := 0.0
			for kk, av := range arow {
				s += av * brow[kk]
			}
			drow[j] = s
		}
	}
}

// Transpose2D returns the transpose of a 2-D tensor as a new tensor.
func (t *Tensor) Transpose2D() *Tensor {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: Transpose2D on %d-D tensor", len(t.shape)))
	}
	r, c := t.shape[0], t.shape[1]
	out := New(c, r)
	for i := 0; i < r; i++ {
		row := t.Data[i*c : (i+1)*c]
		for j, v := range row {
			out.Data[j*r+i] = v
		}
	}
	return out
}

// AddRowVector adds a 1-D vector v (length n) to every row of a 2-D
// (m×n) tensor in place. Used for bias addition.
func (t *Tensor) AddRowVector(v *Tensor) *Tensor {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: AddRowVector on %d-D tensor", len(t.shape)))
	}
	n := t.shape[1]
	if v.Size() != n {
		panic(fmt.Sprintf("tensor: AddRowVector vector size %d, want %d", v.Size(), n))
	}
	for i := 0; i < t.shape[0]; i++ {
		row := t.Data[i*n : (i+1)*n]
		for j := range row {
			row[j] += v.Data[j]
		}
	}
	return t
}
