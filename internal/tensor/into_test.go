package tensor

import (
	"math/rand"
	"testing"

	"gsfl/internal/parallel"
	"gsfl/internal/testutil"
)

// Tests for the destination-passing API: Into kernels must match their
// allocating twins bit for bit, the workspace primitives must reuse
// storage, and the whole family must be allocation-free after warmup.

func TestIntoVariantsMatchAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(7, 5).RandNormal(rng, 0, 1)
	b := New(5, 9).RandNormal(rng, 0, 1)
	if got := MatMulInto(New(7, 9), a, b); !AllClose(got, MatMul(a, b), 0) {
		t.Fatal("MatMulInto != MatMul")
	}
	at := New(5, 7).RandNormal(rng, 0, 1)
	if got := MatMulTransAInto(New(7, 9), at, b); !AllClose(got, MatMulTransA(at, b), 0) {
		t.Fatal("MatMulTransAInto != MatMulTransA")
	}
	bt := New(9, 5).RandNormal(rng, 0, 1)
	if got := MatMulTransBInto(New(7, 9), a, bt); !AllClose(got, MatMulTransB(a, bt), 0) {
		t.Fatal("MatMulTransBInto != MatMulTransB")
	}

	x := New(4, 6).RandNormal(rng, 0, 1)
	y := New(4, 6).RandNormal(rng, 0, 1)
	var dst Tensor
	if !AllClose(AddInto(&dst, x, y), Add(x, y), 0) {
		t.Fatal("AddInto != Add")
	}
	if !AllClose(SubInto(&dst, x, y), Sub(x, y), 0) {
		t.Fatal("SubInto != Sub")
	}
	if !AllClose(MulInto(&dst, x, y), Mul(x, y), 0) {
		t.Fatal("MulInto != Mul")
	}
	if !AllClose(ScaleInto(&dst, 0.37, x), x.Clone().Scale(0.37), 0) {
		t.Fatal("ScaleInto != Scale")
	}
	var sums Tensor
	if !AllClose(x.SumRowsInto(&sums), x.SumRows(), 0) {
		t.Fatal("SumRowsInto != SumRows")
	}
}

func TestIntoVariantsAllowAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := New(3, 4).RandNormal(rng, 0, 1)
	y := New(3, 4).RandNormal(rng, 0, 1)
	want := Add(x, y)
	got := AddInto(x, x, y) // dst aliases a
	if !AllClose(got, want, 0) {
		t.Fatal("AddInto with dst==a is wrong")
	}
}

func TestEnsureReusesStorage(t *testing.T) {
	var ws Tensor
	ws.Ensure(4, 8)
	if ws.Size() != 32 {
		t.Fatalf("Ensure size = %d", ws.Size())
	}
	base := &ws.Data[0]
	ws.Ensure(2, 8) // shrink: must reuse
	if &ws.Data[0] != base {
		t.Fatal("Ensure reallocated on shrink")
	}
	if d := ws.Dims(); d != 2 || ws.Dim(0) != 2 || ws.Dim(1) != 8 {
		t.Fatalf("Ensure shape wrong: %v", ws.Shape())
	}
	ws.Ensure(16, 8) // grow: must reallocate
	if ws.Size() != 128 {
		t.Fatalf("Ensure grow size = %d", ws.Size())
	}

	src := New(2, 3)
	ws.EnsureShapeOf(src)
	if !shapeEq(ws.Shape(), []int{2, 3}) {
		t.Fatalf("EnsureShapeOf shape = %v", ws.Shape())
	}
}

func shapeEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestViews(t *testing.T) {
	src := FromSlice([]float64{0, 1, 2, 3, 4, 5}, 2, 3)
	var v Tensor
	v.ViewOf(src, 3, 2)
	if v.At(2, 1) != 5 {
		t.Fatalf("ViewOf misreads: %v", v)
	}
	v.Data[0] = 42
	if src.Data[0] != 42 {
		t.Fatal("ViewOf must share storage")
	}

	var s Tensor
	s.SliceViewOf(src, 3, 6, 1, 3)
	if s.At(0, 0) != 3 || s.At(0, 2) != 5 {
		t.Fatalf("SliceViewOf misreads: %v", s)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched view size")
		}
	}()
	v.ViewOf(src, 4, 2)
}

func TestAppendShape(t *testing.T) {
	src := New(3, 4, 5)
	buf := make([]int, 0, 8)
	got := src.AppendShape(buf[:0])
	if !shapeEq(got, []int{3, 4, 5}) {
		t.Fatalf("AppendShape = %v", got)
	}
}

func TestPoolReusesBuffers(t *testing.T) {
	var p Pool
	a := p.Get(4, 4)
	for i := range a.Data {
		a.Data[i] = 1 // dirty it
	}
	base := &a.Data[0]
	p.Put(a)
	b := p.Get(4, 4)
	if &b.Data[0] != base {
		t.Fatal("Pool did not reuse the buffer")
	}
	for _, v := range b.Data {
		if v != 0 {
			t.Fatal("Pool.Get returned a non-zeroed tensor")
		}
	}
	// A smaller request must also be servable from the same bucket class.
	p.Put(b)
	c := p.Get(9)
	if cap(c.Data) < 16 {
		t.Fatalf("bucket rounding lost capacity: %d", cap(c.Data))
	}
	// Mismatched class allocates fresh but still zero-filled.
	d := p.Get(100)
	if d.Size() != 100 {
		t.Fatalf("Get(100) size = %d", d.Size())
	}
}

func TestKernelsAllocFreeSerial(t *testing.T) {
	parallel.SetWorkers(1)
	t.Cleanup(func() { parallel.SetWorkers(0) })
	rng := rand.New(rand.NewSource(3))
	a := New(32, 48).RandNormal(rng, 0, 1)
	b := New(48, 24).RandNormal(rng, 0, 1)
	dst := New(32, 24)
	testutil.MaxAllocs(t, "MatMulInto", 0, func() { MatMulInto(dst, a, b) })
	at := New(48, 32).RandNormal(rng, 0, 1)
	testutil.MaxAllocs(t, "MatMulTransAInto", 0, func() { MatMulTransAInto(dst, at, b) })
	bt := New(24, 48).RandNormal(rng, 0, 1)
	testutil.MaxAllocs(t, "MatMulTransBInto", 0, func() { MatMulTransBInto(dst, a, bt) })

	g := ConvGeom{InC: 2, InH: 8, InW: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	src := make([]float64, 2*g.ImageSize())
	cols := make([]float64, 2*g.ColSize())
	testutil.MaxAllocs(t, "Im2ColBatch", 0, func() { Im2ColBatch(cols, src, 2, g) })
	testutil.MaxAllocs(t, "Col2ImBatch", 0, func() { Col2ImBatch(src, cols, 2, g) })

	// The fused conv kernels service their pack panels from packPool, so
	// they must also be allocation-free once the pool is warm.
	colRows, spatial := g.InC*g.KH*g.KW, g.OutH()*g.OutW()
	w := New(8, colRows).RandNormal(rng, 0, 1)
	img := src[:g.ImageSize()]
	convDst := New(8, spatial)
	testutil.MaxAllocs(t, "ConvMatMulInto", 0, func() { ConvMatMulInto(convDst, w, img, g) })
	dy := New(8, spatial).RandNormal(rng, 0, 1)
	dwDst := New(8, colRows)
	testutil.MaxAllocs(t, "ConvMatMulTransBInto", 0, func() { ConvMatMulTransBInto(dwDst, dy, img, g) })

	var ws, hdr Tensor
	testutil.MaxAllocs(t, "Ensure", 0, func() { ws.Ensure(32, 24) })
	testutil.MaxAllocs(t, "SliceViewOf", 0, func() { hdr.SliceViewOf(a, 0, 48, 1, 48) })
	x := New(16)
	y := New(16)
	var out Tensor
	testutil.MaxAllocs(t, "AddInto", 0, func() { AddInto(&out, x, y) })
	testutil.MaxAllocs(t, "SumRowsInto", 0, func() { a.SumRowsInto(&out) })
}
