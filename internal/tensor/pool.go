package tensor

import (
	"math/bits"
	"sync"
)

// poolBuckets covers backing-buffer capacities up to 2^47 elements —
// far beyond any tensor this simulator builds.
const poolBuckets = 48

// poolBucketCap bounds how many free buffers one bucket retains; extra
// Puts are dropped so an unlucky burst cannot pin memory forever.
const poolBucketCap = 8

// Pool is a size-bucketed free list of tensor backing buffers with
// explicit Get/Put, for batch-shaped temporaries that have no natural
// owning workspace (evaluation chunks, ad-hoc scratch). Buffers are
// bucketed by power-of-two capacity: Get serves a request of n elements
// from the bucket whose buffers hold at least n, allocating a fresh
// power-of-two-capacity buffer on a miss, so steady-state Get/Put cycles
// of stable (or boundedly varying) shapes allocate nothing.
//
// Get returns a zero-filled tensor, exactly like New, so swapping
// New(shape...) for p.Get(shape...) never changes results. Put recycles
// the tensor's buffer; the caller must not use the tensor afterwards.
//
// A Pool is safe for concurrent use. The zero value is ready to use.
// Long-lived per-replica state (layer workspaces) should own its buffers
// directly; the pool is for transient borrow/return patterns.
type Pool struct {
	mu      sync.Mutex
	buckets [poolBuckets][][]float64
}

// bucketFor returns the bucket index whose buffers can hold n elements:
// ceil(log2(n)) for n > 1, bucket 0 for n <= 1.
func bucketFor(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// Get returns a zero-filled tensor of the given shape, reusing a pooled
// buffer when one of sufficient capacity is available.
func (p *Pool) Get(shape ...int) *Tensor {
	n := checkShape(shape)
	b := bucketFor(n)
	var buf []float64
	p.mu.Lock()
	if free := p.buckets[b]; len(free) > 0 {
		buf = free[len(free)-1]
		p.buckets[b] = free[:len(free)-1]
	}
	p.mu.Unlock()
	if buf == nil {
		// Round the capacity up to the bucket's power of two so the
		// buffer stays reusable for every size in this class.
		buf = make([]float64, n, 1<<b)
	} else {
		buf = buf[:n]
		for i := range buf {
			buf[i] = 0
		}
	}
	return &Tensor{Data: buf, shape: append([]int(nil), shape...)}
}

// GetSlice returns a raw buffer of n float64s with unspecified
// contents, reusing a pooled buffer when one of sufficient capacity is
// available. It is the header-free, zero-fill-free variant of Get for
// internal scratch (GEMM packing panels) whose every element is written
// before it is read: steady-state GetSlice/PutSlice cycles allocate
// nothing at all, not even a tensor header.
func (p *Pool) GetSlice(n int) []float64 {
	if n < 0 {
		panic("tensor: Pool.GetSlice with negative size")
	}
	b := bucketFor(n)
	var buf []float64
	p.mu.Lock()
	if free := p.buckets[b]; len(free) > 0 {
		buf = free[len(free)-1]
		p.buckets[b] = free[:len(free)-1]
	}
	p.mu.Unlock()
	if buf == nil {
		buf = make([]float64, n, 1<<b)
	}
	return buf[:n]
}

// PutSlice returns a buffer obtained from GetSlice to the pool. The
// caller must not use buf afterwards.
func (p *Pool) PutSlice(buf []float64) {
	if cap(buf) == 0 {
		return
	}
	buf = buf[:cap(buf)]
	b := bits.Len(uint(cap(buf))) - 1
	p.mu.Lock()
	if len(p.buckets[b]) < poolBucketCap {
		p.buckets[b] = append(p.buckets[b], buf)
	}
	p.mu.Unlock()
}

// Put returns t's backing buffer to the pool. t must not be used (nor
// any view aliasing it) after Put. Tensors not obtained from Get are
// accepted too; their capacity decides the bucket they join.
func (p *Pool) Put(t *Tensor) {
	if t == nil || cap(t.Data) == 0 {
		return
	}
	buf := t.Data[:cap(t.Data)]
	// A buffer parks in the largest bucket it can fully serve.
	b := bits.Len(uint(cap(buf))) - 1
	t.Data = nil
	t.shape = nil
	p.mu.Lock()
	if len(p.buckets[b]) < poolBucketCap {
		p.buckets[b] = append(p.buckets[b], buf)
	}
	p.mu.Unlock()
}
