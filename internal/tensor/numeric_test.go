package tensor

import (
	"strings"
	"testing"
	"time"
)

func TestNumericModeRegistry(t *testing.T) {
	names := NumericModes()
	has := func(want string) bool {
		for _, n := range names {
			if n == want {
				return true
			}
		}
		return false
	}
	if !has("exact") || !has("fast") {
		t.Fatalf("built-in modes missing from registry: %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("NumericModes not sorted: %v", names)
		}
	}

	if got, err := CanonicalNumericMode(""); err != nil || got != DefaultNumericMode {
		t.Fatalf("CanonicalNumericMode(\"\") = %q, %v; want %q", got, err, DefaultNumericMode)
	}
	if got, err := CanonicalNumericMode("fast"); err != nil || got != "fast" {
		t.Fatalf("CanonicalNumericMode(fast) = %q, %v", got, err)
	}
	if _, err := CanonicalNumericMode("no-such-mode"); err == nil || !strings.Contains(err.Error(), "no-such-mode") {
		t.Fatalf("unknown mode error = %v", err)
	}
}

func TestRegisterNumericModeEmptyNamePanics(t *testing.T) {
	defer expectPanic(t, "empty name")
	RegisterNumericMode(NumericMode{})
}

func TestRegisterNumericModeDuplicatePanics(t *testing.T) {
	defer expectPanic(t, "registered twice")
	RegisterNumericMode(NumericMode{Name: "exact"})
}

func TestSetNumericMode(t *testing.T) {
	t.Cleanup(func() {
		if err := SetNumericMode(DefaultNumericMode); err != nil {
			t.Fatal(err)
		}
	})
	if err := SetNumericMode("fast"); err != nil {
		t.Fatal(err)
	}
	if cur := CurrentNumericMode(); cur.Name != "fast" || !cur.Reassociate {
		t.Fatalf("CurrentNumericMode = %+v after SetNumericMode(fast)", cur)
	}
	if err := SetNumericMode("bogus"); err == nil {
		t.Fatal("SetNumericMode accepted an unknown mode")
	}
	if err := SetNumericMode(""); err != nil {
		t.Fatal(err)
	}
	if cur := CurrentNumericMode(); cur.Name != DefaultNumericMode {
		t.Fatalf("empty name must restore the default, got %q", cur.Name)
	}
}

// TestAcquireNumericMode pins the counting-lock semantics: same-mode
// holders share, a different mode blocks until the last holder releases,
// release restores the ambient choice, and releasing twice is harmless.
func TestAcquireNumericMode(t *testing.T) {
	rel1, err := AcquireNumericMode("fast")
	if err != nil {
		t.Fatal(err)
	}
	if cur := CurrentNumericMode(); cur.Name != "fast" {
		t.Fatalf("mode = %q while fast is held", cur.Name)
	}
	// A second same-mode holder must not block.
	rel2, err := AcquireNumericMode("fast")
	if err != nil {
		t.Fatal(err)
	}
	// Switching the ambient mode out from under the holders must fail.
	if err := SetNumericMode("exact"); err == nil {
		t.Fatal("SetNumericMode(exact) succeeded while fast is held")
	}

	// An exact-mode acquirer must block until both fast holders release.
	acquired := make(chan struct{})
	go func() {
		rel, err := AcquireNumericMode("") // empty = default = exact
		if err != nil {
			t.Error(err)
		}
		close(acquired)
		rel()
	}()
	select {
	case <-acquired:
		t.Fatal("exact acquire proceeded while fast was held")
	case <-time.After(20 * time.Millisecond):
	}
	rel1()
	rel1() // double release must be a no-op, not a spurious count decrement
	select {
	case <-acquired:
		t.Fatal("exact acquire proceeded while one fast holder remained")
	case <-time.After(20 * time.Millisecond):
	}
	rel2()
	select {
	case <-acquired:
	case <-time.After(5 * time.Second):
		t.Fatal("exact acquire still blocked after every fast holder released")
	}
	if cur := CurrentNumericMode(); cur.Name != DefaultNumericMode {
		t.Fatalf("ambient mode not restored: %q", cur.Name)
	}
}
