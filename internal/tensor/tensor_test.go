package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3, 4)
	if x.Size() != 24 {
		t.Fatalf("Size() = %d, want 24", x.Size())
	}
	for i, v := range x.Data {
		if v != 0 {
			t.Fatalf("Data[%d] = %v, want 0", i, v)
		}
	}
	if got := x.Shape(); len(got) != 3 || got[0] != 2 || got[1] != 3 || got[2] != 4 {
		t.Fatalf("Shape() = %v, want [2 3 4]", got)
	}
}

func TestNewScalar(t *testing.T) {
	s := New()
	if s.Size() != 1 {
		t.Fatalf("scalar Size() = %d, want 1", s.Size())
	}
	if s.Dims() != 0 {
		t.Fatalf("scalar Dims() = %d, want 0", s.Dims())
	}
}

func TestNewNegativeDimPanics(t *testing.T) {
	defer expectPanic(t, "negative dimension")
	New(2, -1)
}

func TestFromSlice(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if x.At(0, 0) != 1 || x.At(0, 2) != 3 || x.At(1, 0) != 4 || x.At(1, 2) != 6 {
		t.Fatalf("row-major layout broken: %v", x)
	}
}

func TestFromSliceSizeMismatchPanics(t *testing.T) {
	defer expectPanic(t, "size mismatch")
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestFullAndOnes(t *testing.T) {
	x := Full(2.5, 3)
	for _, v := range x.Data {
		if v != 2.5 {
			t.Fatalf("Full element = %v, want 2.5", v)
		}
	}
	o := Ones(2, 2)
	if o.Sum() != 4 {
		t.Fatalf("Ones(2,2).Sum() = %v, want 4", o.Sum())
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(2, 3)
	x.Set(7, 1, 2)
	if x.At(1, 2) != 7 {
		t.Fatalf("At after Set = %v, want 7", x.At(1, 2))
	}
	if x.Data[5] != 7 {
		t.Fatalf("flat offset wrong: Data = %v", x.Data)
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	defer expectPanic(t, "out of range")
	New(2, 2).At(0, 2)
}

func TestAtWrongRankPanics(t *testing.T) {
	defer expectPanic(t, "wrong rank")
	New(2, 2).At(1)
}

func TestCloneIsDeep(t *testing.T) {
	x := FromSlice([]float64{1, 2}, 2)
	y := x.Clone()
	y.Data[0] = 99
	if x.Data[0] != 1 {
		t.Fatal("Clone shares data with original")
	}
}

func TestCopyFrom(t *testing.T) {
	x := New(2, 2)
	y := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	x.CopyFrom(y)
	if !AllClose(x, y, 0) {
		t.Fatalf("CopyFrom mismatch: %v vs %v", x, y)
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	y.Data[0] = 42
	if x.Data[0] != 42 {
		t.Fatal("Reshape must share underlying data")
	}
	if y.At(2, 1) != 6 {
		t.Fatalf("reshaped indexing wrong: %v", y)
	}
}

func TestReshapeInfer(t *testing.T) {
	x := New(4, 6)
	y := x.Reshape(2, -1)
	if y.Dim(1) != 12 {
		t.Fatalf("inferred dim = %d, want 12", y.Dim(1))
	}
	z := x.Reshape(-1)
	if z.Dims() != 1 || z.Dim(0) != 24 {
		t.Fatalf("flatten = %v", z.Shape())
	}
}

func TestReshapeBadCountPanics(t *testing.T) {
	defer expectPanic(t, "element count change")
	New(2, 3).Reshape(4, 2)
}

func TestReshapeDoubleInferPanics(t *testing.T) {
	defer expectPanic(t, "double -1")
	New(2, 3).Reshape(-1, -1)
}

func TestRowView(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	r := x.Row(1)
	if len(r) != 3 || r[0] != 4 {
		t.Fatalf("Row(1) = %v", r)
	}
	r[0] = 99
	if x.At(1, 0) != 99 {
		t.Fatal("Row must be a view")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{10, 20, 30}, 3)
	if got := Add(a, b); !AllClose(got, FromSlice([]float64{11, 22, 33}, 3), 0) {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(b, a); !AllClose(got, FromSlice([]float64{9, 18, 27}, 3), 0) {
		t.Fatalf("Sub = %v", got)
	}
	if got := Mul(a, b); !AllClose(got, FromSlice([]float64{10, 40, 90}, 3), 0) {
		t.Fatalf("Mul = %v", got)
	}
	c := a.Clone().Scale(2)
	if !AllClose(c, FromSlice([]float64{2, 4, 6}, 3), 0) {
		t.Fatalf("Scale = %v", c)
	}
	d := a.Clone().AddScaled(0.5, b)
	if !AllClose(d, FromSlice([]float64{6, 12, 18}, 3), 0) {
		t.Fatalf("AddScaled = %v", d)
	}
}

func TestSizeMismatchPanics(t *testing.T) {
	defer expectPanic(t, "size mismatch")
	New(2).AddInPlace(New(3))
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float64{-1, 4, 2, -7}, 4)
	if x.Sum() != -2 {
		t.Fatalf("Sum = %v", x.Sum())
	}
	if x.Mean() != -0.5 {
		t.Fatalf("Mean = %v", x.Mean())
	}
	if x.Max() != 4 {
		t.Fatalf("Max = %v", x.Max())
	}
	if x.Min() != -7 {
		t.Fatalf("Min = %v", x.Min())
	}
	if got := x.L2Norm(); math.Abs(got-math.Sqrt(1+16+4+49)) > 1e-12 {
		t.Fatalf("L2Norm = %v", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if got := New(0).Mean(); got != 0 {
		t.Fatalf("empty Mean = %v, want 0", got)
	}
}

func TestDot(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)
	if got := Dot(a, b); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestArgMaxRows(t *testing.T) {
	x := FromSlice([]float64{
		0.1, 0.9, 0.0,
		0.5, 0.5, 0.4, // tie -> lowest index
		-3, -1, -2,
	}, 3, 3)
	got := x.ArgMaxRows()
	want := []int{1, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ArgMaxRows = %v, want %v", got, want)
		}
	}
}

func TestSumRows(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	got := x.SumRows()
	want := FromSlice([]float64{5, 7, 9}, 3)
	if !AllClose(got, want, 0) {
		t.Fatalf("SumRows = %v, want %v", got, want)
	}
}

func TestApplyAndMap(t *testing.T) {
	x := FromSlice([]float64{1, 4, 9}, 3)
	y := x.Map(math.Sqrt)
	if !AllClose(y, FromSlice([]float64{1, 2, 3}, 3), 1e-12) {
		t.Fatalf("Map = %v", y)
	}
	if x.Data[1] != 4 {
		t.Fatal("Map must not mutate the receiver")
	}
	x.Apply(func(v float64) float64 { return -v })
	if x.Data[2] != -9 {
		t.Fatalf("Apply in place failed: %v", x)
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	got := MatMul(a, b)
	want := FromSlice([]float64{58, 64, 139, 154}, 2, 2)
	if !AllClose(got, want, 1e-12) {
		t.Fatalf("MatMul = %v, want %v", got, want)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(4, 4).RandNormal(rng, 0, 1)
	id := New(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(1, i, i)
	}
	if got := MatMul(a, id); !AllClose(got, a, 1e-12) {
		t.Fatal("A @ I != A")
	}
	if got := MatMul(id, a); !AllClose(got, a, 1e-12) {
		t.Fatal("I @ A != A")
	}
}

func TestMatMulDimMismatchPanics(t *testing.T) {
	defer expectPanic(t, "dim mismatch")
	MatMul(New(2, 3), New(2, 3))
}

func TestMatMulInto(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{5, 6, 7, 8}, 2, 2)
	dst := Full(999, 2, 2) // stale contents must be overwritten
	MatMulInto(dst, a, b)
	want := MatMul(a, b)
	if !AllClose(dst, want, 1e-12) {
		t.Fatalf("MatMulInto = %v, want %v", dst, want)
	}
}

func TestMatMulTransVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := New(5, 3).RandNormal(rng, 0, 1)
	b := New(5, 4).RandNormal(rng, 0, 1)
	got := MatMulTransA(a, b)
	want := MatMul(a.Transpose2D(), b)
	if !AllClose(got, want, 1e-10) {
		t.Fatal("MatMulTransA != Aᵀ@B")
	}
	c := New(6, 3).RandNormal(rng, 0, 1)
	d := New(4, 3).RandNormal(rng, 0, 1)
	got2 := MatMulTransB(c, d)
	want2 := MatMul(c, d.Transpose2D())
	if !AllClose(got2, want2, 1e-10) {
		t.Fatal("MatMulTransB != A@Bᵀ")
	}
}

func TestTranspose2D(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Transpose2D()
	if y.Dim(0) != 3 || y.Dim(1) != 2 {
		t.Fatalf("transpose shape = %v", y.Shape())
	}
	if y.At(2, 0) != 3 || y.At(0, 1) != 4 {
		t.Fatalf("transpose values wrong: %v", y)
	}
}

func TestAddRowVector(t *testing.T) {
	x := New(2, 3)
	v := FromSlice([]float64{1, 2, 3}, 3)
	x.AddRowVector(v)
	want := FromSlice([]float64{1, 2, 3, 1, 2, 3}, 2, 3)
	if !AllClose(x, want, 0) {
		t.Fatalf("AddRowVector = %v", x)
	}
}

func TestRandDeterminism(t *testing.T) {
	a := New(100).RandNormal(rand.New(rand.NewSource(42)), 0, 1)
	b := New(100).RandNormal(rand.New(rand.NewSource(42)), 0, 1)
	if !AllClose(a, b, 0) {
		t.Fatal("same seed must produce identical fills")
	}
}

func TestHeInitScale(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := New(100000).HeInit(rng, 50)
	wantStd := math.Sqrt(2.0 / 50.0)
	var s, ss float64
	for _, v := range x.Data {
		s += v
		ss += v * v
	}
	n := float64(x.Size())
	mean := s / n
	std := math.Sqrt(ss/n - mean*mean)
	if math.Abs(mean) > 0.01 || math.Abs(std-wantStd)/wantStd > 0.05 {
		t.Fatalf("HeInit mean=%v std=%v, want mean≈0 std≈%v", mean, std, wantStd)
	}
}

func TestXavierInitBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := New(10000).XavierInit(rng, 30, 20)
	a := math.Sqrt(6.0 / 50.0)
	for _, v := range x.Data {
		if v < -a || v >= a {
			t.Fatalf("Xavier sample %v outside [-%v, %v)", v, a, a)
		}
	}
}

func TestStringPreview(t *testing.T) {
	s := New(100).String()
	if s == "" {
		t.Fatal("String() empty")
	}
}

// --- property-based tests -------------------------------------------------

// prop: MatMul distributes over addition: A@(B+C) == A@B + A@C.
func TestPropMatMulDistributive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a := New(m, k).RandNormal(rng, 0, 1)
		b := New(k, n).RandNormal(rng, 0, 1)
		c := New(k, n).RandNormal(rng, 0, 1)
		lhs := MatMul(a, Add(b, c))
		rhs := Add(MatMul(a, b), MatMul(a, c))
		return AllClose(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// prop: transpose is an involution.
func TestPropTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(8), 1+rng.Intn(8)
		a := New(r, c).RandNormal(rng, 0, 1)
		return AllClose(a.Transpose2D().Transpose2D(), a, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// prop: (A@B)ᵀ == Bᵀ@Aᵀ.
func TestPropMatMulTransposeIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5)
		a := New(m, k).RandNormal(rng, 0, 1)
		b := New(k, n).RandNormal(rng, 0, 1)
		lhs := MatMul(a, b).Transpose2D()
		rhs := MatMul(b.Transpose2D(), a.Transpose2D())
		return AllClose(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// prop: Dot(a,a) == L2Norm(a)².
func TestPropDotNorm(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(64)
		a := New(n).RandNormal(rng, 0, 2)
		d := Dot(a, a)
		l := a.L2Norm()
		return math.Abs(d-l*l) <= 1e-9*(1+d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// prop: Im2Col followed by Col2Im of an all-ones column matrix counts how
// many windows cover each pixel; with kernel 1x1 stride 1 no padding it is
// exactly 1 everywhere (perfect reconstruction).
func TestPropIm2ColIdentityKernel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, h, w := 1+rng.Intn(3), 1+rng.Intn(6), 1+rng.Intn(6)
		g := ConvGeom{InC: c, InH: h, InW: w, KH: 1, KW: 1, StrideH: 1, StrideW: 1}
		src := New(c*h*w).RandNormal(rng, 0, 1)
		col := make([]float64, c*g.OutH()*g.OutW())
		Im2Col(col, src.Data, g)
		back := make([]float64, c*h*w)
		Col2Im(back, col, g)
		return AllClose(FromSlice(back, c*h*w), src, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestIm2ColKnownValues(t *testing.T) {
	// 1 channel, 3x3 input, 2x2 kernel, stride 1, no pad -> 2x2 output.
	g := ConvGeom{InC: 1, InH: 3, InW: 3, KH: 2, KW: 2, StrideH: 1, StrideW: 1}
	src := []float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}
	col := make([]float64, 4*4)
	Im2Col(col, src, g)
	// Rows are kernel positions (kh,kw), columns are output positions.
	want := []float64{
		1, 2, 4, 5, // (0,0)
		2, 3, 5, 6, // (0,1)
		4, 5, 7, 8, // (1,0)
		5, 6, 8, 9, // (1,1)
	}
	if !AllClose(FromSlice(col, 16), FromSlice(want, 16), 0) {
		t.Fatalf("Im2Col = %v, want %v", col, want)
	}
}

func TestIm2ColPadding(t *testing.T) {
	g := ConvGeom{InC: 1, InH: 2, InW: 2, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	if g.OutH() != 2 || g.OutW() != 2 {
		t.Fatalf("out dims = %dx%d, want 2x2", g.OutH(), g.OutW())
	}
	src := []float64{1, 2, 3, 4}
	col := make([]float64, 9*4)
	Im2Col(col, src, g)
	// Kernel position (0,0) looks up-left of each output; with pad 1 the
	// first column sees the zero padding everywhere except bottom-right.
	row0 := col[0:4]
	want0 := []float64{0, 0, 0, 1}
	if !AllClose(FromSlice(row0, 4), FromSlice(want0, 4), 0) {
		t.Fatalf("padded Im2Col row0 = %v, want %v", row0, want0)
	}
}

func TestConvGeomValidate(t *testing.T) {
	cases := []struct {
		name string
		g    ConvGeom
		ok   bool
	}{
		{"valid", ConvGeom{InC: 3, InH: 8, InW: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}, true},
		{"zero channels", ConvGeom{InC: 0, InH: 8, InW: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1}, false},
		{"zero stride", ConvGeom{InC: 1, InH: 8, InW: 8, KH: 3, KW: 3, StrideH: 0, StrideW: 1}, false},
		{"negative pad", ConvGeom{InC: 1, InH: 8, InW: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: -1}, false},
		{"kernel too big", ConvGeom{InC: 1, InH: 2, InW: 2, KH: 5, KW: 5, StrideH: 1, StrideW: 1}, false},
		{"zero kernel", ConvGeom{InC: 1, InH: 2, InW: 2, KH: 0, KW: 1, StrideH: 1, StrideW: 1}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.g.Validate()
			if tc.ok && err != nil {
				t.Fatalf("Validate() = %v, want nil", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("Validate() = nil, want error")
			}
		})
	}
}

func expectPanic(t *testing.T, what string) {
	t.Helper()
	if recover() == nil {
		t.Fatalf("expected panic: %s", what)
	}
}
