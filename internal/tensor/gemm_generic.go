package tensor

// ukernExactGeneric is the portable micro-kernel: one MR×NR tile,
// ascending-k, one accumulator per element, multiply rounded separately
// from add. It defines the bit-exact reference semantics of the default
// numeric mode — the amd64 AVX2 exact kernel performs the identical
// operation sequence per element and therefore produces identical bits.
// On platforms without a vector kernel it also serves as the "fast"
// kernel (there is nothing faster to reassociate for).
func ukernExactGeneric(k int, ap, bp, c []float64, ldc int) {
	var acc [gemmMR * gemmNR]float64
	for kk := 0; kk < k; kk++ {
		brow := bp[kk*gemmNR : kk*gemmNR+gemmNR]
		arow := ap[kk*gemmMR : kk*gemmMR+gemmMR]
		for r := 0; r < gemmMR; r++ {
			av := arow[r]
			crow := acc[r*gemmNR : r*gemmNR+gemmNR]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	for r := 0; r < gemmMR; r++ {
		copy(c[r*ldc:r*ldc+gemmNR], acc[r*gemmNR:r*gemmNR+gemmNR])
	}
}
