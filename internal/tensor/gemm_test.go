package tensor

import (
	"math"
	"math/rand"
	"testing"

	"gsfl/internal/parallel"
)

// Tests for the packed GEMM engine. The exact-mode contract is bitwise:
// every shape, every transpose variant, and both dispatch paths (the
// packed engine and the small-shape scalar kernels) must reproduce a
// naive single-accumulator ascending-k reference bit for bit — that is
// the property the repo-wide determinism guarantee rests on.

// naiveMatMul is the reference contract: dst = a @ b with one
// accumulator per output element, ascending k, separate multiply then
// add. a is (m×k), b is (k×n).
func naiveMatMul(dst, a, b []float64, m, k, n int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += a[i*k+p] * b[p*n+j]
			}
			dst[i*n+j] = s
		}
	}
}

// naiveTransA computes dst = atᵀ @ b with at stored (k×m).
func naiveTransA(dst, at, b []float64, m, k, n int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += at[p*m+i] * b[p*n+j]
			}
			dst[i*n+j] = s
		}
	}
}

// naiveTransB computes dst = a @ btᵀ with bt stored (n×k).
func naiveTransB(dst, a, bt []float64, m, k, n int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += a[i*k+p] * bt[j*k+p]
			}
			dst[i*n+j] = s
		}
	}
}

// fillMixed fills buf with normal draws, zeroing roughly a third of the
// entries — the post-ReLU sparsity pattern the old kernels special-cased
// with a skip branch, so any +0/-0 or skip-dependence bug surfaces here.
func fillMixed(rng *rand.Rand, buf []float64) {
	for i := range buf {
		if rng.Intn(3) == 0 {
			buf[i] = 0
		} else {
			buf[i] = rng.NormFloat64()
		}
	}
}

// requireBitEqual fails on the first element whose bits differ.
func requireBitEqual(t *testing.T, what string, got, want []float64, m, k, n int) {
	t.Helper()
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s (m=%d k=%d n=%d): element %d = %v (bits %016x), want %v (bits %016x)",
				what, m, k, n, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

// TestGEMMExhaustiveSmallShapes sweeps every (m,k,n) in 1..17 across all
// three transpose variants and checks both the packed engine (called
// directly, so shapes the dispatcher would route to the scalar kernels
// still exercise the pack/micro-kernel path and its edge padding) and
// the public dispatch against the naive reference, bit for bit. 17
// crosses the MR=4/NR=8 tile edges and the flop floor, so full tiles,
// ragged edges, and both dispatch decisions are all covered.
func TestGEMMExhaustiveSmallShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const max = 17
	a := make([]float64, max*max)
	b := make([]float64, max*max)
	got := make([]float64, max*max)
	want := make([]float64, max*max)
	for m := 1; m <= max; m++ {
		for k := 1; k <= max; k++ {
			for n := 1; n <= max; n++ {
				fillMixed(rng, a[:m*k])
				fillMixed(rng, b[:k*n])
				naiveMatMul(want, a, b, m, k, n)
				gemmInto(got, m, k, n, aSource{data: a, kind: aPlain}, bSource{data: b, kind: bPlain})
				requireBitEqual(t, "gemm", got[:m*n], want[:m*n], m, k, n)
				MatMulInto(FromSlice(got[:m*n], m, n), FromSlice(a[:m*k], m, k), FromSlice(b[:k*n], k, n))
				requireBitEqual(t, "MatMulInto", got[:m*n], want[:m*n], m, k, n)

				// at is (k×m): reuse a's buffer with the transposed fill.
				fillMixed(rng, a[:k*m])
				naiveTransA(want, a, b, m, k, n)
				gemmInto(got, m, k, n, aSource{data: a, kind: aTransposed}, bSource{data: b, kind: bPlain})
				requireBitEqual(t, "gemm transA", got[:m*n], want[:m*n], m, k, n)
				MatMulTransAInto(FromSlice(got[:m*n], m, n), FromSlice(a[:k*m], k, m), FromSlice(b[:k*n], k, n))
				requireBitEqual(t, "MatMulTransAInto", got[:m*n], want[:m*n], m, k, n)

				// bt is (n×k).
				fillMixed(rng, a[:m*k])
				fillMixed(rng, b[:n*k])
				naiveTransB(want, a, b, m, k, n)
				gemmInto(got, m, k, n, aSource{data: a, kind: aPlain}, bSource{data: b, kind: bTransposed})
				requireBitEqual(t, "gemm transB", got[:m*n], want[:m*n], m, k, n)
				MatMulTransBInto(FromSlice(got[:m*n], m, n), FromSlice(a[:m*k], m, k), FromSlice(b[:n*k], n, k))
				requireBitEqual(t, "MatMulTransBInto", got[:m*n], want[:m*n], m, k, n)
			}
		}
	}
}

// TestGEMMZeroK pins the degenerate inner dimension: the engine must
// fully overwrite dst with zeros, not leave stale values.
func TestGEMMZeroK(t *testing.T) {
	got := []float64{1, 2, 3, 4, 5, 6}
	gemmInto(got, 2, 0, 3, aSource{kind: aPlain}, bSource{kind: bPlain})
	for i, v := range got {
		if v != 0 {
			t.Fatalf("k=0 output element %d = %v, want 0", i, v)
		}
	}
}

// convGeoms are the shapes the fused-conv tests sweep: odd sizes,
// strides, 1×1 kernels, zero padding, and one large-enough case that the
// packed engine (not the scalar fallback) runs.
var convGeoms = []ConvGeom{
	{InC: 1, InH: 5, InW: 5, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
	{InC: 3, InH: 8, InW: 6, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1},
	{InC: 2, InH: 7, InW: 7, KH: 5, KW: 5, StrideH: 1, StrideW: 1, PadH: 2, PadW: 2},
	{InC: 1, InH: 4, InW: 4, KH: 1, KW: 1, StrideH: 1, StrideW: 1},
	{InC: 3, InH: 9, InW: 9, KH: 3, KW: 3, StrideH: 2, StrideW: 1, PadH: 0, PadW: 1},
	{InC: 4, InH: 16, InW: 16, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
}

// TestConvMatMulMatchesIm2Col checks the implicit-GEMM conv kernels
// against the two-step reference they replaced — materialize the column
// matrix with Im2Col, then run the naive GEMM over it — bit for bit, in
// both the forward (W @ col) and weight-gradient (dy @ colᵀ) shapes.
func TestConvMatMulMatchesIm2Col(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, g := range convGeoms {
		if err := g.Validate(); err != nil {
			t.Fatalf("geom %+v: %v", g, err)
		}
		colRows := g.InC * g.KH * g.KW
		spatial := g.OutH() * g.OutW()
		img := make([]float64, g.ImageSize())
		fillMixed(rng, img)
		cols := make([]float64, g.ColSize())
		Im2Col(cols, img, g)

		for _, outC := range []int{3, 8} {
			w := New(outC, colRows)
			fillMixed(rng, w.Data)
			want := make([]float64, outC*spatial)
			naiveMatMul(want, w.Data, cols, outC, colRows, spatial)
			got := ConvMatMulInto(New(outC, spatial), w, img, g)
			requireBitEqual(t, "ConvMatMulInto", got.Data, want, outC, colRows, spatial)

			dy := New(outC, spatial)
			fillMixed(rng, dy.Data)
			wantDW := make([]float64, outC*colRows)
			naiveTransB(wantDW, dy.Data, cols, outC, spatial, colRows)
			gotDW := ConvMatMulTransBInto(New(outC, colRows), dy, img, g)
			requireBitEqual(t, "ConvMatMulTransBInto", gotDW.Data, wantDW, outC, spatial, colRows)
		}
	}
}

// TestFastModeToleranceAndWorkerDeterminism pins the reassociating
// mode's two contracts: it stays within a tight tolerance of exact mode
// (FMA changes only last-ulp rounding), and on one machine it is still
// bit-identical across worker counts (the per-element instruction
// sequence does not depend on how output rows are partitioned).
func TestFastModeToleranceAndWorkerDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := New(48, 64).RandNormal(rng, 0, 1)
	b := New(64, 40).RandNormal(rng, 0, 1)
	exact := MatMulInto(New(48, 40), a, b)

	release, err := AcquireNumericMode("fast")
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	fast1 := MatMulInto(New(48, 40), a, b)
	if !AllClose(exact, fast1, 1e-10) {
		t.Fatal("fast mode drifted beyond tolerance from exact mode")
	}
	parallel.SetWorkers(4)
	t.Cleanup(func() { parallel.SetWorkers(0) })
	fastN := MatMulInto(New(48, 40), a, b)
	requireBitEqual(t, "fast workers=4 vs workers=ambient", fastN.Data, fast1.Data, 48, 64, 40)
}

// FuzzPackedGEMM drives the packed index math (panel layouts, ragged
// edge padding, im2col geometry walks) with fuzzed shapes and checks all
// sources against the naive references bit for bit.
func FuzzPackedGEMM(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(5), uint8(9))
	f.Add(int64(7), uint8(4), uint8(16), uint8(8))
	f.Add(int64(11), uint8(1), uint8(1), uint8(1))
	f.Add(int64(13), uint8(17), uint8(13), uint8(24))
	f.Add(int64(17), uint8(63), uint8(2), uint8(63))
	f.Fuzz(func(t *testing.T, seed int64, mm, kk, nn uint8) {
		m := int(mm)%48 + 1
		k := int(kk)%48 + 1
		n := int(nn)%48 + 1
		rng := rand.New(rand.NewSource(seed))
		a := make([]float64, m*k)
		b := make([]float64, k*n)
		got := make([]float64, m*n)
		want := make([]float64, m*n)

		fillMixed(rng, a)
		fillMixed(rng, b)
		naiveMatMul(want, a, b, m, k, n)
		gemmInto(got, m, k, n, aSource{data: a, kind: aPlain}, bSource{data: b, kind: bPlain})
		requireBitEqual(t, "fuzz gemm", got, want, m, k, n)

		at := make([]float64, k*m)
		fillMixed(rng, at)
		naiveTransA(want, at, b, m, k, n)
		gemmInto(got, m, k, n, aSource{data: at, kind: aTransposed}, bSource{data: b, kind: bPlain})
		requireBitEqual(t, "fuzz gemm transA", got, want, m, k, n)

		bt := make([]float64, n*k)
		fillMixed(rng, bt)
		naiveTransB(want, a, bt, m, k, n)
		gemmInto(got, m, k, n, aSource{data: a, kind: aPlain}, bSource{data: bt, kind: bTransposed})
		requireBitEqual(t, "fuzz gemm transB", got, want, m, k, n)

		// Exercise the im2col packers too: derive a small geometry from
		// the fuzzed sizes and compare against the materialized reference.
		g := ConvGeom{
			InC: k%3 + 1, InH: m%10 + 3, InW: n%10 + 3,
			KH: k%3 + 1, KW: n%3 + 1,
			StrideH: m%2 + 1, StrideW: k%2 + 1,
			PadH: n % 2, PadW: m % 2,
		}
		if g.Validate() != nil {
			return
		}
		colRows := g.InC * g.KH * g.KW
		spatial := g.OutH() * g.OutW()
		img := make([]float64, g.ImageSize())
		fillMixed(rng, img)
		cols := make([]float64, g.ColSize())
		Im2Col(cols, img, g)
		outC := int(mm)%6 + 1
		w := make([]float64, outC*colRows)
		fillMixed(rng, w)
		cGot := make([]float64, outC*spatial)
		cWant := make([]float64, outC*spatial)
		naiveMatMul(cWant, w, cols, outC, colRows, spatial)
		gemmInto(cGot, outC, colRows, spatial, aSource{data: w, kind: aPlain}, bSource{data: img, kind: bIm2col, geom: g})
		requireBitEqual(t, "fuzz conv", cGot, cWant, outC, colRows, spatial)

		dy := make([]float64, outC*spatial)
		fillMixed(rng, dy)
		dwGot := make([]float64, outC*colRows)
		dwWant := make([]float64, outC*colRows)
		naiveTransB(dwWant, dy, cols, outC, spatial, colRows)
		gemmInto(dwGot, outC, spatial, colRows, aSource{data: dy, kind: aPlain}, bSource{data: img, kind: bIm2colT, geom: g})
		requireBitEqual(t, "fuzz conv transB", dwGot, dwWant, outC, spatial, colRows)
	})
}
