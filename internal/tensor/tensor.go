// Package tensor implements a dense, row-major float64 tensor library.
//
// It is the numerical substrate for the neural-network framework in
// internal/nn. The design goals, in order, are correctness, determinism,
// and enough performance to train small CNNs on a CPU: all operations are
// pure Go, allocation-conscious, and free of global state so concurrent
// training replicas (one per GSFL group) never contend.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense row-major float64 tensor. The zero value is an empty
// tensor; use New or the constructors below to create usable instances.
//
// Data is exposed deliberately: hot loops in internal/nn index it directly.
// Mutating Data through an alias is allowed, but mutating shape metadata is
// not — use Reshape, which validates element counts.
type Tensor struct {
	// Data holds the elements in row-major order. len(Data) == Size().
	Data []float64
	// shape holds the extent of each dimension. It is private so the
	// invariant len(Data) == product(shape) cannot be broken externally.
	shape []int
}

// New returns a zero-filled tensor with the given shape.
// It panics if any dimension is negative; a zero-dimension tensor is a
// scalar holding one element.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{Data: make([]float64, n), shape: append([]int(nil), shape...)}
}

// FromSlice wraps data in a tensor with the given shape. The slice is used
// directly (not copied); the caller must not retain a conflicting alias.
// It panics if len(data) does not match the shape's element count.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: FromSlice got %d elements for shape %v (want %d)", len(data), shape, n))
	}
	return &Tensor{Data: data, shape: append([]int(nil), shape...)}
}

// Full returns a tensor with every element set to v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// Ones returns a tensor of ones.
func Ones(shape ...int) *Tensor { return Full(1, shape...) }

// checkShape validates the shape and returns the element count.
//
// The panic paths live in noinline helpers that copy the shape before
// formatting it: referencing the variadic shape slice in a fmt call
// directly would make it escape, putting one heap allocation on every
// Ensure/ViewOf/New call site even though the panic never fires.
func checkShape(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panicNegativeDim(shape)
		}
		n *= d
	}
	return n
}

//go:noinline
func panicNegativeDim(shape []int) {
	panic(fmt.Sprintf("tensor: negative dimension in shape %v", append([]int(nil), shape...)))
}

//go:noinline
func panicViewSize(op string, shape []int, n, have int) {
	panic(fmt.Sprintf("tensor: %s shape %v needs %d elements, have %d", op, append([]int(nil), shape...), n, have))
}

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int { return append([]int(nil), t.shape...) }

// AppendShape appends t's shape to dst and returns the result. It is the
// allocation-free alternative to Shape for callers that keep a reusable
// destination slice (append(cached[:0], …)).
func (t *Tensor) AppendShape(dst []int) []int { return append(dst, t.shape...) }

// Ensure reshapes t in place to the given shape, reusing its backing
// storage when capacity allows and growing it otherwise. The contents
// are unspecified afterwards — callers either overwrite every element or
// call Zero explicitly. Ensure is the workspace primitive behind the
// destination-passing hot path: a zero-value Tensor grows on first use
// and is then reused allocation-free while its shape is stable.
// It returns t.
func (t *Tensor) Ensure(shape ...int) *Tensor {
	n := checkShape(shape)
	if cap(t.Data) >= n {
		t.Data = t.Data[:n]
	} else {
		t.Data = make([]float64, n)
	}
	t.shape = append(t.shape[:0], shape...)
	return t
}

// EnsureShapeOf is Ensure with o's shape; shape-preserving layers use it
// to size their output and input-gradient workspaces without copying the
// source shape.
func (t *Tensor) EnsureShapeOf(o *Tensor) *Tensor {
	n := len(o.Data)
	if cap(t.Data) >= n {
		t.Data = t.Data[:n]
	} else {
		t.Data = make([]float64, n)
	}
	t.shape = append(t.shape[:0], o.shape...)
	return t
}

// ViewOf repoints t to share src's data under the given shape (the
// element counts must match). No data moves; t's own storage for the
// shape slice is reused, so repointing an existing header allocates
// nothing. It returns t.
//
// Views follow the buffer-ownership rule of the hot path: a view is
// valid for exactly as long as the buffer it aliases.
func (t *Tensor) ViewOf(src *Tensor, shape ...int) *Tensor {
	n := checkShape(shape)
	if n != len(src.Data) {
		panicViewSize("ViewOf", shape, n, len(src.Data))
	}
	t.Data = src.Data
	t.shape = append(t.shape[:0], shape...)
	return t
}

// SliceViewOf repoints t to alias src.Data[lo:hi) under the given shape.
// Like ViewOf it moves no data and allocates nothing when t's header is
// reused; the per-sample matmuls in the convolution layers use it to
// address one sample's slice of a batched buffer.
func (t *Tensor) SliceViewOf(src *Tensor, lo, hi int, shape ...int) *Tensor {
	n := checkShape(shape)
	if lo < 0 || hi > len(src.Data) || lo > hi || hi-lo != n {
		panicViewSize("SliceViewOf", shape, n, hi-lo)
	}
	t.Data = src.Data[lo:hi:hi]
	t.shape = append(t.shape[:0], shape...)
	return t
}

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.shape) }

// Dim returns the extent of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.Data) }

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i, d := range t.shape {
		if o.shape[i] != d {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{Data: make([]float64, len(t.Data)), shape: append([]int(nil), t.shape...)}
	copy(c.Data, t.Data)
	return c
}

// CopyFrom copies o's data into t. Shapes must match element counts.
func (t *Tensor) CopyFrom(o *Tensor) {
	if len(t.Data) != len(o.Data) {
		panic(fmt.Sprintf("tensor: CopyFrom size mismatch %d vs %d", len(t.Data), len(o.Data)))
	}
	copy(t.Data, o.Data)
}

// Reshape returns a tensor sharing t's data with a new shape.
// The element count must be preserved. One dimension may be -1, in which
// case it is inferred.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	shape = append([]int(nil), shape...)
	infer := -1
	known := 1
	for i, d := range shape {
		switch {
		case d == -1:
			if infer != -1 {
				panic("tensor: Reshape with more than one -1 dimension")
			}
			infer = i
		case d < 0:
			panic(fmt.Sprintf("tensor: Reshape negative dimension in %v", shape))
		default:
			known *= d
		}
	}
	if infer >= 0 {
		if known == 0 || len(t.Data)%known != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dimension reshaping %v to %v", t.shape, shape))
		}
		shape[infer] = len(t.Data) / known
		known *= shape[infer]
	}
	if known != len(t.Data) {
		panic(fmt.Sprintf("tensor: Reshape %v -> %v changes element count", t.shape, shape))
	}
	return &Tensor{Data: t.Data, shape: shape}
}

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float64 { return t.Data[t.offset(idx)] }

// Set assigns v at the given multi-dimensional index.
func (t *Tensor) Set(v float64, idx ...int) { t.Data[t.offset(idx)] = v }

// offset converts a multi-dimensional index to a flat offset.
func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index %v has wrong rank for shape %v", idx, t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Row returns a view (shared data) of row i of a 2-D tensor.
func (t *Tensor) Row(i int) []float64 {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: Row on %d-D tensor", len(t.shape)))
	}
	c := t.shape[1]
	return t.Data[i*c : (i+1)*c]
}

// Zero sets every element of t to zero in place.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element of t to v in place.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Apply replaces every element x with f(x) in place and returns t.
func (t *Tensor) Apply(f func(float64) float64) *Tensor {
	for i, v := range t.Data {
		t.Data[i] = f(v)
	}
	return t
}

// Map returns a new tensor whose elements are f applied to t's elements.
func (t *Tensor) Map(f func(float64) float64) *Tensor {
	out := New(t.shape...)
	for i, v := range t.Data {
		out.Data[i] = f(v)
	}
	return out
}

// AddInPlace adds o to t elementwise. Shapes must have equal element counts.
func (t *Tensor) AddInPlace(o *Tensor) *Tensor {
	checkSameSize("AddInPlace", t, o)
	for i, v := range o.Data {
		t.Data[i] += v
	}
	return t
}

// SubInPlace subtracts o from t elementwise.
func (t *Tensor) SubInPlace(o *Tensor) *Tensor {
	checkSameSize("SubInPlace", t, o)
	for i, v := range o.Data {
		t.Data[i] -= v
	}
	return t
}

// MulInPlace multiplies t by o elementwise (Hadamard product).
func (t *Tensor) MulInPlace(o *Tensor) *Tensor {
	checkSameSize("MulInPlace", t, o)
	for i, v := range o.Data {
		t.Data[i] *= v
	}
	return t
}

// Scale multiplies every element by s in place and returns t.
func (t *Tensor) Scale(s float64) *Tensor {
	for i := range t.Data {
		t.Data[i] *= s
	}
	return t
}

// AddScaled performs t += s*o (axpy) in place and returns t.
func (t *Tensor) AddScaled(s float64, o *Tensor) *Tensor {
	checkSameSize("AddScaled", t, o)
	for i, v := range o.Data {
		t.Data[i] += s * v
	}
	return t
}

// Add returns t + o as a new tensor.
func Add(t, o *Tensor) *Tensor { return t.Clone().AddInPlace(o) }

// Sub returns t - o as a new tensor.
func Sub(t, o *Tensor) *Tensor { return t.Clone().SubInPlace(o) }

// Mul returns the elementwise product as a new tensor.
func Mul(t, o *Tensor) *Tensor { return t.Clone().MulInPlace(o) }

// AddInto computes dst = a + b elementwise, shaping dst like a (reusing
// its storage) and returning dst. dst may alias a or b.
func AddInto(dst, a, b *Tensor) *Tensor {
	checkSameSize("AddInto", a, b)
	dst.EnsureShapeOf(a)
	for i, v := range a.Data {
		dst.Data[i] = v + b.Data[i]
	}
	return dst
}

// SubInto computes dst = a - b elementwise, shaping dst like a (reusing
// its storage) and returning dst. dst may alias a or b.
func SubInto(dst, a, b *Tensor) *Tensor {
	checkSameSize("SubInto", a, b)
	dst.EnsureShapeOf(a)
	for i, v := range a.Data {
		dst.Data[i] = v - b.Data[i]
	}
	return dst
}

// MulInto computes the elementwise product dst = a * b, shaping dst like
// a (reusing its storage) and returning dst. dst may alias a or b.
func MulInto(dst, a, b *Tensor) *Tensor {
	checkSameSize("MulInto", a, b)
	dst.EnsureShapeOf(a)
	for i, v := range a.Data {
		dst.Data[i] = v * b.Data[i]
	}
	return dst
}

// ScaleInto computes dst = s*a, shaping dst like a (reusing its storage)
// and returning dst. dst may alias a.
func ScaleInto(dst *Tensor, s float64, a *Tensor) *Tensor {
	dst.EnsureShapeOf(a)
	for i, v := range a.Data {
		dst.Data[i] = s * v
	}
	return dst
}

func checkSameSize(op string, a, b *Tensor) {
	if len(a.Data) != len(b.Data) {
		panic(fmt.Sprintf("tensor: %s size mismatch: %v vs %v", op, a.shape, b.shape))
	}
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func (t *Tensor) Mean() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.Data))
}

// Max returns the maximum element. It panics on an empty tensor.
func (t *Tensor) Max() float64 {
	if len(t.Data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := t.Data[0]
	for _, v := range t.Data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element. It panics on an empty tensor.
func (t *Tensor) Min() float64 {
	if len(t.Data) == 0 {
		panic("tensor: Min of empty tensor")
	}
	m := t.Data[0]
	for _, v := range t.Data[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// L2Norm returns the Euclidean norm of the flattened tensor.
func (t *Tensor) L2Norm() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of two tensors viewed as flat vectors.
func Dot(a, b *Tensor) float64 {
	checkSameSize("Dot", a, b)
	s := 0.0
	for i, v := range a.Data {
		s += v * b.Data[i]
	}
	return s
}

// ArgMaxRows returns, for a 2-D tensor, the column index of the maximum in
// each row. Ties resolve to the lowest index, making results deterministic.
func (t *Tensor) ArgMaxRows() []int {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: ArgMaxRows on %d-D tensor", len(t.shape)))
	}
	rows, cols := t.shape[0], t.shape[1]
	out := make([]int, rows)
	for r := 0; r < rows; r++ {
		best, bi := math.Inf(-1), 0
		row := t.Data[r*cols : (r+1)*cols]
		for c, v := range row {
			if v > best {
				best, bi = v, c
			}
		}
		out[r] = bi
	}
	return out
}

// SumRows returns a 1-D tensor holding the sum over rows (axis 0) of a
// 2-D tensor, i.e. out[c] = sum_r t[r,c].
func (t *Tensor) SumRows() *Tensor {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: SumRows on %d-D tensor", len(t.shape)))
	}
	return t.SumRowsInto(New(t.shape[1]))
}

// SumRowsInto computes the row sums of a 2-D tensor into dst, shaping
// dst to a 1-D tensor of the column count (reusing its storage) and
// returning dst. The accumulation visits rows in ascending order, so
// results are bit-identical to SumRows.
func (t *Tensor) SumRowsInto(dst *Tensor) *Tensor {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: SumRows on %d-D tensor", len(t.shape)))
	}
	rows, cols := t.shape[0], t.shape[1]
	dst.Ensure(cols)
	dst.Zero()
	for r := 0; r < rows; r++ {
		row := t.Data[r*cols : (r+1)*cols]
		for c, v := range row {
			dst.Data[c] += v
		}
	}
	return dst
}

// AllClose reports whether every pair of corresponding elements differs by
// at most tol (absolute). Tensors of different sizes are never close.
func AllClose(a, b *Tensor, tol float64) bool {
	if len(a.Data) != len(b.Data) {
		return false
	}
	for i, v := range a.Data {
		if math.Abs(v-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders a compact human-readable description (shape + a data
// preview), suitable for debugging and test failure messages.
func (t *Tensor) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Tensor%v[", t.shape)
	n := len(t.Data)
	const preview = 8
	for i := 0; i < n && i < preview; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%.4g", t.Data[i])
	}
	if n > preview {
		fmt.Fprintf(&sb, ", … (%d total)", n)
	}
	sb.WriteString("]")
	return sb.String()
}
