package tensor

import (
	"fmt"

	"gsfl/internal/parallel"
)

// ConvGeom describes the geometry of a 2-D convolution or pooling window.
// Inputs are NCHW: (batch, channels, height, width).
type ConvGeom struct {
	InC, InH, InW    int // input channels / height / width
	KH, KW           int // kernel height / width
	StrideH, StrideW int // strides
	PadH, PadW       int // symmetric zero padding
}

// OutH returns the output height for this geometry.
func (g ConvGeom) OutH() int { return (g.InH+2*g.PadH-g.KH)/g.StrideH + 1 }

// OutW returns the output width for this geometry.
func (g ConvGeom) OutW() int { return (g.InW+2*g.PadW-g.KW)/g.StrideW + 1 }

// ColSize returns the element count of one image's column matrix,
// (InC*KH*KW) * (OutH*OutW).
func (g ConvGeom) ColSize() int { return g.InC * g.KH * g.KW * g.OutH() * g.OutW() }

// ImageSize returns the element count of one CHW image.
func (g ConvGeom) ImageSize() int { return g.InC * g.InH * g.InW }

// Validate returns an error when the geometry cannot produce an output.
func (g ConvGeom) Validate() error {
	if g.InC <= 0 || g.InH <= 0 || g.InW <= 0 {
		return fmt.Errorf("tensor: conv geometry has non-positive input dims %+v", g)
	}
	if g.KH <= 0 || g.KW <= 0 {
		return fmt.Errorf("tensor: conv geometry has non-positive kernel %+v", g)
	}
	if g.StrideH <= 0 || g.StrideW <= 0 {
		return fmt.Errorf("tensor: conv geometry has non-positive stride %+v", g)
	}
	if g.PadH < 0 || g.PadW < 0 {
		return fmt.Errorf("tensor: conv geometry has negative padding %+v", g)
	}
	if g.OutH() <= 0 || g.OutW() <= 0 {
		return fmt.Errorf("tensor: conv geometry produces empty output %+v", g)
	}
	return nil
}

// grainChannels returns how many channels one parallel chunk must cover
// for im2col/col2im, keeping chunks above the serial-work floor.
func grainChannels(g ConvGeom) int {
	perChannel := g.KH * g.KW * g.OutH() * g.OutW()
	if perChannel <= 0 {
		return 1
	}
	grain := minChunkFLOPs / perChannel
	if grain < 1 {
		grain = 1
	}
	return grain
}

// Im2Col unrolls one image (CHW, flat in src) into a column matrix of
// shape (C*KH*KW) x (OutH*OutW), written into dst. This turns convolution
// into a single MatMul, which is how Conv2D achieves acceptable CPU
// performance. dst must have size (InC*KH*KW) * (OutH*OutW).
//
// Channels are partitioned across the parallel worker pool: channel c
// owns column-matrix rows [c*KH*KW, (c+1)*KH*KW), so workers write
// disjoint regions and the result is bit-identical to the serial loop.
func Im2Col(dst, src []float64, g ConvGeom) {
	cols := g.OutH() * g.OutW()
	if want := g.InC * g.KH * g.KW * cols; len(dst) != want {
		panic(fmt.Sprintf("tensor: Im2Col dst size %d, want %d", len(dst), want))
	}
	if want := g.InC * g.InH * g.InW; len(src) != want {
		panic(fmt.Sprintf("tensor: Im2Col src size %d, want %d", len(src), want))
	}
	if grain := grainChannels(g); parallel.Inline(g.InC, grain) {
		for c := 0; c < g.InC; c++ {
			im2colChannel(dst, src, g, c)
		}
	} else {
		parallel.For(g.InC, grain, func(lo, hi int) {
			for c := lo; c < hi; c++ {
				im2colChannel(dst, src, g, c)
			}
		})
	}
}

// Im2ColBatch unrolls n images at once: src holds n CHW images
// back-to-back and dst receives their n column matrices back-to-back.
// (sample, channel) units are partitioned across the worker pool, so a
// convolution layer's whole batch keeps every core busy even when single
// images are small. Results are bit-identical to n serial Im2Col calls.
func Im2ColBatch(dst, src []float64, n int, g ConvGeom) {
	colSize, imgSize := g.ColSize(), g.ImageSize()
	if want := n * colSize; len(dst) != want {
		panic(fmt.Sprintf("tensor: Im2ColBatch dst size %d, want %d", len(dst), want))
	}
	if want := n * imgSize; len(src) != want {
		panic(fmt.Sprintf("tensor: Im2ColBatch src size %d, want %d", len(src), want))
	}
	if grain := grainChannels(g); parallel.Inline(n*g.InC, grain) {
		for u := 0; u < n*g.InC; u++ {
			i, c := u/g.InC, u%g.InC
			im2colChannel(dst[i*colSize:(i+1)*colSize], src[i*imgSize:(i+1)*imgSize], g, c)
		}
	} else {
		parallel.For(n*g.InC, grain, func(lo, hi int) {
			for u := lo; u < hi; u++ {
				i, c := u/g.InC, u%g.InC
				im2colChannel(dst[i*colSize:(i+1)*colSize], src[i*imgSize:(i+1)*imgSize], g, c)
			}
		})
	}
}

// im2colChannel writes channel c's rows of one image's column matrix.
func im2colChannel(dst, src []float64, g ConvGeom, c int) {
	outH, outW := g.OutH(), g.OutW()
	cols := outH * outW
	chanBase := c * g.InH * g.InW
	row := c * g.KH * g.KW
	for kh := 0; kh < g.KH; kh++ {
		for kw := 0; kw < g.KW; kw++ {
			drow := dst[row*cols : (row+1)*cols]
			row++
			di := 0
			for oh := 0; oh < outH; oh++ {
				ih := oh*g.StrideH - g.PadH + kh
				if ih < 0 || ih >= g.InH {
					for ow := 0; ow < outW; ow++ {
						drow[di] = 0
						di++
					}
					continue
				}
				rowBase := chanBase + ih*g.InW
				for ow := 0; ow < outW; ow++ {
					iw := ow*g.StrideW - g.PadW + kw
					if iw < 0 || iw >= g.InW {
						drow[di] = 0
					} else {
						drow[di] = src[rowBase+iw]
					}
					di++
				}
			}
		}
	}
}

// Col2Im scatter-adds a column matrix (the layout produced by Im2Col) back
// into an image (CHW, flat in dst). dst is NOT zeroed first: overlapping
// windows accumulate, which is exactly the gradient semantics the conv
// backward pass needs.
//
// Channels are partitioned across the worker pool: channel c only ever
// scatter-adds into its own dst plane, and within a channel the
// accumulation order matches the serial loop, so results are
// bit-identical to a single-worker run.
func Col2Im(dst, src []float64, g ConvGeom) {
	cols := g.OutH() * g.OutW()
	if want := g.InC * g.KH * g.KW * cols; len(src) != want {
		panic(fmt.Sprintf("tensor: Col2Im src size %d, want %d", len(src), want))
	}
	if want := g.InC * g.InH * g.InW; len(dst) != want {
		panic(fmt.Sprintf("tensor: Col2Im dst size %d, want %d", len(dst), want))
	}
	if grain := grainChannels(g); parallel.Inline(g.InC, grain) {
		for c := 0; c < g.InC; c++ {
			col2imChannel(dst, src, g, c)
		}
	} else {
		parallel.For(g.InC, grain, func(lo, hi int) {
			for c := lo; c < hi; c++ {
				col2imChannel(dst, src, g, c)
			}
		})
	}
}

// Col2ImBatch scatter-adds n column matrices back into n CHW images,
// partitioning (sample, channel) units across the worker pool. As with
// Col2Im, dst is not zeroed. Results are bit-identical to n serial
// Col2Im calls.
func Col2ImBatch(dst, src []float64, n int, g ConvGeom) {
	colSize, imgSize := g.ColSize(), g.ImageSize()
	if want := n * colSize; len(src) != want {
		panic(fmt.Sprintf("tensor: Col2ImBatch src size %d, want %d", len(src), want))
	}
	if want := n * imgSize; len(dst) != want {
		panic(fmt.Sprintf("tensor: Col2ImBatch dst size %d, want %d", len(dst), want))
	}
	if grain := grainChannels(g); parallel.Inline(n*g.InC, grain) {
		for u := 0; u < n*g.InC; u++ {
			i, c := u/g.InC, u%g.InC
			col2imChannel(dst[i*imgSize:(i+1)*imgSize], src[i*colSize:(i+1)*colSize], g, c)
		}
	} else {
		parallel.For(n*g.InC, grain, func(lo, hi int) {
			for u := lo; u < hi; u++ {
				i, c := u/g.InC, u%g.InC
				col2imChannel(dst[i*imgSize:(i+1)*imgSize], src[i*colSize:(i+1)*colSize], g, c)
			}
		})
	}
}

// col2imChannel scatter-adds channel c's rows of one column matrix into
// the image plane it owns.
func col2imChannel(dst, src []float64, g ConvGeom, c int) {
	outH, outW := g.OutH(), g.OutW()
	cols := outH * outW
	chanBase := c * g.InH * g.InW
	row := c * g.KH * g.KW
	for kh := 0; kh < g.KH; kh++ {
		for kw := 0; kw < g.KW; kw++ {
			srow := src[row*cols : (row+1)*cols]
			row++
			si := 0
			for oh := 0; oh < outH; oh++ {
				ih := oh*g.StrideH - g.PadH + kh
				if ih < 0 || ih >= g.InH {
					si += outW
					continue
				}
				rowBase := chanBase + ih*g.InW
				for ow := 0; ow < outW; ow++ {
					iw := ow*g.StrideW - g.PadW + kw
					if iw >= 0 && iw < g.InW {
						dst[rowBase+iw] += srow[si]
					}
					si++
				}
			}
		}
	}
}
