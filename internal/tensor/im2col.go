package tensor

import "fmt"

// ConvGeom describes the geometry of a 2-D convolution or pooling window.
// Inputs are NCHW: (batch, channels, height, width).
type ConvGeom struct {
	InC, InH, InW    int // input channels / height / width
	KH, KW           int // kernel height / width
	StrideH, StrideW int // strides
	PadH, PadW       int // symmetric zero padding
}

// OutH returns the output height for this geometry.
func (g ConvGeom) OutH() int { return (g.InH+2*g.PadH-g.KH)/g.StrideH + 1 }

// OutW returns the output width for this geometry.
func (g ConvGeom) OutW() int { return (g.InW+2*g.PadW-g.KW)/g.StrideW + 1 }

// Validate returns an error when the geometry cannot produce an output.
func (g ConvGeom) Validate() error {
	if g.InC <= 0 || g.InH <= 0 || g.InW <= 0 {
		return fmt.Errorf("tensor: conv geometry has non-positive input dims %+v", g)
	}
	if g.KH <= 0 || g.KW <= 0 {
		return fmt.Errorf("tensor: conv geometry has non-positive kernel %+v", g)
	}
	if g.StrideH <= 0 || g.StrideW <= 0 {
		return fmt.Errorf("tensor: conv geometry has non-positive stride %+v", g)
	}
	if g.PadH < 0 || g.PadW < 0 {
		return fmt.Errorf("tensor: conv geometry has negative padding %+v", g)
	}
	if g.OutH() <= 0 || g.OutW() <= 0 {
		return fmt.Errorf("tensor: conv geometry produces empty output %+v", g)
	}
	return nil
}

// Im2Col unrolls one image (CHW, flat in src) into a column matrix of
// shape (C*KH*KW) x (OutH*OutW), written into dst. This turns convolution
// into a single MatMul, which is how Conv2D achieves acceptable CPU
// performance. dst must have size (InC*KH*KW) * (OutH*OutW).
func Im2Col(dst, src []float64, g ConvGeom) {
	outH, outW := g.OutH(), g.OutW()
	cols := outH * outW
	if want := g.InC * g.KH * g.KW * cols; len(dst) != want {
		panic(fmt.Sprintf("tensor: Im2Col dst size %d, want %d", len(dst), want))
	}
	if want := g.InC * g.InH * g.InW; len(src) != want {
		panic(fmt.Sprintf("tensor: Im2Col src size %d, want %d", len(src), want))
	}
	row := 0
	for c := 0; c < g.InC; c++ {
		chanBase := c * g.InH * g.InW
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				drow := dst[row*cols : (row+1)*cols]
				row++
				di := 0
				for oh := 0; oh < outH; oh++ {
					ih := oh*g.StrideH - g.PadH + kh
					if ih < 0 || ih >= g.InH {
						for ow := 0; ow < outW; ow++ {
							drow[di] = 0
							di++
						}
						continue
					}
					rowBase := chanBase + ih*g.InW
					for ow := 0; ow < outW; ow++ {
						iw := ow*g.StrideW - g.PadW + kw
						if iw < 0 || iw >= g.InW {
							drow[di] = 0
						} else {
							drow[di] = src[rowBase+iw]
						}
						di++
					}
				}
			}
		}
	}
}

// Col2Im scatter-adds a column matrix (the layout produced by Im2Col) back
// into an image (CHW, flat in dst). dst is NOT zeroed first: overlapping
// windows accumulate, which is exactly the gradient semantics the conv
// backward pass needs.
func Col2Im(dst, src []float64, g ConvGeom) {
	outH, outW := g.OutH(), g.OutW()
	cols := outH * outW
	if want := g.InC * g.KH * g.KW * cols; len(src) != want {
		panic(fmt.Sprintf("tensor: Col2Im src size %d, want %d", len(src), want))
	}
	if want := g.InC * g.InH * g.InW; len(dst) != want {
		panic(fmt.Sprintf("tensor: Col2Im dst size %d, want %d", len(dst), want))
	}
	row := 0
	for c := 0; c < g.InC; c++ {
		chanBase := c * g.InH * g.InW
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				srow := src[row*cols : (row+1)*cols]
				row++
				si := 0
				for oh := 0; oh < outH; oh++ {
					ih := oh*g.StrideH - g.PadH + kh
					if ih < 0 || ih >= g.InH {
						si += outW
						continue
					}
					rowBase := chanBase + ih*g.InW
					for ow := 0; ow < outW; ow++ {
						iw := ow*g.StrideW - g.PadW + kw
						if iw >= 0 && iw < g.InW {
							dst[rowBase+iw] += srow[si]
						}
						si++
					}
				}
			}
		}
	}
}
