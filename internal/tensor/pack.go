package tensor

// Panel packing for the blocked GEMM engine (gemm.go).
//
// The micro-kernel consumes two packed panel formats:
//
//   - A panels: one panel per MR-row block of the output. Panel bi holds
//     A rows [bi*MR, bi*MR+MR) interleaved k-major:
//     ap[kk*MR+ir] = A[bi*MR+ir][kk]. Rows past m are zero-filled, so
//     edge tiles run the same bounds-check-free kernel and the padded
//     rows land in scratch.
//
//   - B panels: one panel per NR-column stripe. Panel p holds B columns
//     [p*NR, p*NR+NR) interleaved k-major: bp[kk*NR+jr] = B[kk][p*NR+jr].
//     Columns past n are zero-filled.
//
// Padding is mathematically inert for the real outputs: a padded A row
// only feeds scratch rows that are discarded, and a padded B column only
// feeds scratch columns that are discarded, so packing never perturbs
// the bit-exact accumulation of live elements.
//
// Four logical operand layouts are packed from three physical sources:
// a plain (m×k) or transposed (k×m) A matrix, a plain (k×n) or
// transposed (n×k) B matrix, and — for the implicit-GEMM convolution
// path — a B matrix that is the im2col column matrix of a CHW image,
// read directly through the same index map as im2colChannel without
// ever materializing the columns.

// packA packs A row-blocks [blo, bhi) from a plain (m×k) matrix.
func packA(ap, a []float64, m, k, blo, bhi int) {
	off := 0
	for bi := blo; bi < bhi; bi++ {
		i0 := bi * gemmMR
		for ir := 0; ir < gemmMR; ir++ {
			i := i0 + ir
			if i >= m {
				for kk := 0; kk < k; kk++ {
					ap[off+kk*gemmMR+ir] = 0
				}
				continue
			}
			arow := a[i*k : (i+1)*k]
			for kk, av := range arow {
				ap[off+kk*gemmMR+ir] = av
			}
		}
		off += k * gemmMR
	}
}

// packATrans packs A row-blocks [blo, bhi) where the logical A (m×k) is
// stored transposed as (k×m): A[i][kk] = a[kk*m+i]. The read of one
// panel row is contiguous in a, which is why backprop's xᵀ@dy never
// needs a materialized transpose.
func packATrans(ap, a []float64, m, k, blo, bhi int) {
	off := 0
	for bi := blo; bi < bhi; bi++ {
		i0 := bi * gemmMR
		ib := m - i0
		if ib > gemmMR {
			ib = gemmMR
		}
		for kk := 0; kk < k; kk++ {
			src := a[kk*m+i0 : kk*m+i0+ib]
			dst := ap[off+kk*gemmMR : off+kk*gemmMR+gemmMR]
			for ir := 0; ir < ib; ir++ {
				dst[ir] = src[ir]
			}
			for ir := ib; ir < gemmMR; ir++ {
				dst[ir] = 0
			}
		}
		off += k * gemmMR
	}
}

// packB packs every NR-column panel of a plain (k×n) matrix.
func packB(bp, b []float64, k, n int) {
	np := (n + gemmNR - 1) / gemmNR
	for p := 0; p < np; p++ {
		j0 := p * gemmNR
		jb := n - j0
		if jb > gemmNR {
			jb = gemmNR
		}
		off := p * k * gemmNR
		for kk := 0; kk < k; kk++ {
			src := b[kk*n+j0 : kk*n+j0+jb]
			dst := bp[off+kk*gemmNR : off+kk*gemmNR+gemmNR]
			for jr := 0; jr < jb; jr++ {
				dst[jr] = src[jr]
			}
			for jr := jb; jr < gemmNR; jr++ {
				dst[jr] = 0
			}
		}
	}
}

// packBTrans packs every NR-column panel where the logical B (k×n) is
// stored transposed as (n×k): B[kk][j] = b[j*k+kk].
func packBTrans(bp, b []float64, k, n int) {
	np := (n + gemmNR - 1) / gemmNR
	for p := 0; p < np; p++ {
		j0 := p * gemmNR
		jb := n - j0
		if jb > gemmNR {
			jb = gemmNR
		}
		off := p * k * gemmNR
		for jr := 0; jr < jb; jr++ {
			brow := b[(j0+jr)*k : (j0+jr+1)*k]
			for kk, bv := range brow {
				bp[off+kk*gemmNR+jr] = bv
			}
		}
		for jr := jb; jr < gemmNR; jr++ {
			for kk := 0; kk < k; kk++ {
				bp[off+kk*gemmNR+jr] = 0
			}
		}
	}
}

// packBIm2col packs every NR-column panel of the implicit column matrix
// of one CHW image: logical B is (k×n) with k = InC*KH*KW column-matrix
// rows and n = OutH*OutW spatial positions, B[kk][j] being pixel
// (c,ih,iw) under the same index map im2colChannel uses (zero outside
// the padded input). The column matrix itself is never stored.
func packBIm2col(bp, img []float64, g ConvGeom) {
	outH, outW := g.OutH(), g.OutW()
	n := outH * outW
	k := g.InC * g.KH * g.KW
	np := (n + gemmNR - 1) / gemmNR
	for p := 0; p < np; p++ {
		j0 := p * gemmNR
		jb := n - j0
		if jb > gemmNR {
			jb = gemmNR
		}
		off := p * k * gemmNR
		kk := 0
		for c := 0; c < g.InC; c++ {
			chanBase := c * g.InH * g.InW
			for kh := 0; kh < g.KH; kh++ {
				for kw := 0; kw < g.KW; kw++ {
					dst := bp[off+kk*gemmNR : off+kk*gemmNR+gemmNR]
					oh, ow := (j0)/outW, (j0)%outW
					for jr := 0; jr < jb; jr++ {
						ih := oh*g.StrideH - g.PadH + kh
						iw := ow*g.StrideW - g.PadW + kw
						if ih < 0 || ih >= g.InH || iw < 0 || iw >= g.InW {
							dst[jr] = 0
						} else {
							dst[jr] = img[chanBase+ih*g.InW+iw]
						}
						ow++
						if ow == outW {
							ow = 0
							oh++
						}
					}
					for jr := jb; jr < gemmNR; jr++ {
						dst[jr] = 0
					}
					kk++
				}
			}
		}
	}
}

// packBIm2colT packs every NR-column panel of the TRANSPOSED implicit
// column matrix: logical B is (k×n) with k = OutH*OutW spatial positions
// and n = InC*KH*KW column-matrix rows, B[kk][j] = colmat[j][kk]. This
// is the dW = dy @ im2col(x)ᵀ orientation of the conv backward pass.
func packBIm2colT(bp, img []float64, g ConvGeom) {
	outH, outW := g.OutH(), g.OutW()
	k := outH * outW
	n := g.InC * g.KH * g.KW
	np := (n + gemmNR - 1) / gemmNR
	for p := 0; p < np; p++ {
		j0 := p * gemmNR
		jb := n - j0
		if jb > gemmNR {
			jb = gemmNR
		}
		off := p * k * gemmNR
		for jr := 0; jr < jb; jr++ {
			// Column-matrix row j0+jr decomposes into (channel, kh, kw).
			r := j0 + jr
			c := r / (g.KH * g.KW)
			kh := (r / g.KW) % g.KH
			kw := r % g.KW
			chanBase := c * g.InH * g.InW
			kk := 0
			for oh := 0; oh < outH; oh++ {
				ih := oh*g.StrideH - g.PadH + kh
				if ih < 0 || ih >= g.InH {
					for ow := 0; ow < outW; ow++ {
						bp[off+kk*gemmNR+jr] = 0
						kk++
					}
					continue
				}
				rowBase := chanBase + ih*g.InW
				for ow := 0; ow < outW; ow++ {
					iw := ow*g.StrideW - g.PadW + kw
					if iw < 0 || iw >= g.InW {
						bp[off+kk*gemmNR+jr] = 0
					} else {
						bp[off+kk*gemmNR+jr] = img[rowBase+iw]
					}
					kk++
				}
			}
		}
		for jr := jb; jr < gemmNR; jr++ {
			for kk := 0; kk < k; kk++ {
				bp[off+kk*gemmNR+jr] = 0
			}
		}
	}
}
