package tensor

import (
	"fmt"
	"math/rand"
	"testing"

	"gsfl/internal/parallel"
)

// Micro-benchmarks for the numerical kernels the NN framework spends its
// time in. These guide optimization of the simulation's wall-clock cost
// (they do not correspond to paper figures).

// benchWorkers are the pool widths the serial-vs-parallel benchmarks
// sweep; workers=1 is the serial baseline the speedups are measured
// against.
var benchWorkers = []int{1, 2, 4, 8}

// BenchmarkMatMulWorkers measures the row-partitioned MatMul across pool
// widths on a layer-sized matrix product.
func BenchmarkMatMulWorkers(b *testing.B) {
	x, y := benchMatrices(256, 256, 256)
	for _, w := range benchWorkers {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			parallel.SetWorkers(w)
			defer parallel.SetWorkers(0)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				MatMul(x, y)
			}
		})
	}
}

// BenchmarkIm2ColBatchWorkers measures the batched unroll across pool
// widths on a training-batch-sized input.
func BenchmarkIm2ColBatchWorkers(b *testing.B) {
	g := ConvGeom{InC: 8, InH: 32, InW: 32, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	const n = 16
	src := make([]float64, n*g.ImageSize())
	dst := make([]float64, n*g.ColSize())
	for _, w := range benchWorkers {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			parallel.SetWorkers(w)
			defer parallel.SetWorkers(0)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Im2ColBatch(dst, src, n, g)
			}
		})
	}
}

func benchMatrices(m, k, n int) (*Tensor, *Tensor) {
	rng := rand.New(rand.NewSource(1))
	return New(m, k).RandNormal(rng, 0, 1), New(k, n).RandNormal(rng, 0, 1)
}

func BenchmarkMatMul64(b *testing.B) {
	x, y := benchMatrices(64, 64, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func BenchmarkMatMul256(b *testing.B) {
	x, y := benchMatrices(256, 256, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func BenchmarkMatMulInto64(b *testing.B) {
	x, y := benchMatrices(64, 64, 64)
	dst := New(64, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, x, y)
	}
}

// BenchmarkGEMMExact256 times the packed engine's exact micro-kernel on
// the hot-path shape (the same 256³ matmul BENCH_hotpath.json records).
func BenchmarkGEMMExact256(b *testing.B) {
	x, y := benchMatrices(256, 256, 256)
	dst := New(256, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, x, y)
	}
}

// BenchmarkGEMMFast256 times the same shape under the reassociating
// (FMA) kernel the "fast" numeric mode selects.
func BenchmarkGEMMFast256(b *testing.B) {
	release, err := AcquireNumericMode("fast")
	if err != nil {
		b.Fatal(err)
	}
	defer release()
	x, y := benchMatrices(256, 256, 256)
	dst := New(256, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, x, y)
	}
}

// BenchmarkConvMatMul times the fused implicit-GEMM conv forward (never
// materializing the column matrix) on a conv-layer-shaped operand.
func BenchmarkConvMatMul(b *testing.B) {
	g := ConvGeom{InC: 8, InH: 32, InW: 32, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	rng := rand.New(rand.NewSource(4))
	img := make([]float64, g.ImageSize())
	for i := range img {
		img[i] = rng.NormFloat64()
	}
	w := New(16, g.InC*g.KH*g.KW).RandNormal(rng, 0, 1)
	dst := New(16, g.OutH()*g.OutW())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ConvMatMulInto(dst, w, img, g)
	}
}

func BenchmarkMatMulTransA(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := New(128, 64).RandNormal(rng, 0, 1)
	y := New(128, 32).RandNormal(rng, 0, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMulTransA(x, y)
	}
}

func BenchmarkIm2Col32(b *testing.B) {
	g := ConvGeom{InC: 8, InH: 32, InW: 32, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	src := make([]float64, 8*32*32)
	dst := make([]float64, 8*9*32*32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Im2Col(dst, src, g)
	}
}

func BenchmarkAddScaled(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := New(1<<16).RandNormal(rng, 0, 1)
	y := New(1<<16).RandNormal(rng, 0, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.AddScaled(0.001, y)
	}
}
