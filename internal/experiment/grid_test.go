package experiment

import (
	"context"
	"strings"
	"testing"
)

func TestGridJobsExpansionOrder(t *testing.T) {
	spec := TestSpec()
	g := Grid{
		Name: "demo", Base: spec, Rounds: 4, EvalEvery: 2,
		Axes: Axes{
			Groups:     []int{1, 2},
			Strategies: []string{"roundrobin", "random"},
			Schemes:    []string{"gsfl"},
		},
	}
	jobs, err := g.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	wantNames := []string{
		"demo/groups=1,strategy=roundrobin",
		"demo/groups=1,strategy=random",
		"demo/groups=2,strategy=roundrobin",
		"demo/groups=2,strategy=random",
	}
	if len(jobs) != len(wantNames) {
		t.Fatalf("expanded %d jobs, want %d", len(jobs), len(wantNames))
	}
	for i, j := range jobs {
		if j.Name != wantNames[i] {
			t.Fatalf("job %d named %q, want %q (outer axes must nest first)", i, j.Name, wantNames[i])
		}
		if j.Scheme != "gsfl" || j.Rounds != 4 || j.EvalEvery != 2 {
			t.Fatalf("job %d carries wrong run config: %+v", i, j)
		}
	}
	if jobs[2].Spec.Groups != 2 || jobs[1].Spec.Strategy != "random" {
		t.Fatalf("axis values not applied: %+v / %+v", jobs[2].Spec, jobs[1].Spec)
	}
}

func TestGridSingleValueAxesOmittedFromNames(t *testing.T) {
	g := Grid{
		Name: "solo", Base: TestSpec(), Rounds: 2, EvalEvery: 1,
		Axes: Axes{Cuts: []int{3}, Schemes: []string{"sl"}},
	}
	jobs, err := g.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].Name != "solo" {
		t.Fatalf("single-value axes must not clutter the name: %+v", jobs)
	}
}

func TestGridDefaultsToGSFL(t *testing.T) {
	g := Grid{Name: "d", Base: TestSpec(), Rounds: 2, EvalEvery: 1, Axes: Axes{Cuts: []int{1, 3}}}
	jobs, err := g.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if j.Scheme != "gsfl" {
			t.Fatalf("empty scheme axis must default to gsfl, got %q", j.Scheme)
		}
	}
}

func TestJobIDsStableAndContentSensitive(t *testing.T) {
	g := Fig2aGrid(TestSpec(), 4, 2)
	a, err := g.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatalf("job %d ID unstable across expansions: %s vs %s", i, a[i].ID, b[i].ID)
		}
		if len(a[i].ID) != 16 {
			t.Fatalf("job %d ID %q is not 16 hex digits", i, a[i].ID)
		}
		if seen[a[i].ID] {
			t.Fatalf("duplicate ID %s inside one grid", a[i].ID)
		}
		seen[a[i].ID] = true
	}
	// Any identity change must move the hash.
	mut := g
	mut.Rounds++
	c, err := mut.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if c[0].ID == a[0].ID {
		t.Fatal("changing rounds did not change the job ID")
	}
	mut = g
	mut.Base.Seed++
	d, err := mut.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if d[0].ID == a[0].ID {
		t.Fatal("changing the seed did not change the job ID")
	}
}

func TestGridOverlapSharesIDs(t *testing.T) {
	// fig2b's cells are a subset of fig2a's; equal cells must hash equal
	// so schedulers deduplicate across experiments.
	a, err := Fig2aGrid(TestSpec(), 4, 2).Jobs()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig2bGrid(TestSpec(), 4, 2).Jobs()
	if err != nil {
		t.Fatal(err)
	}
	ids := map[string]bool{}
	for _, j := range a {
		ids[j.ID] = true
	}
	for _, j := range b {
		if !ids[j.ID] {
			t.Fatalf("fig2b job %s (%s) not found among fig2a IDs", j.Name, j.ID)
		}
	}
}

func TestGridJobsValidation(t *testing.T) {
	if _, err := (Grid{Name: "x", Base: TestSpec(), EvalEvery: 1}).Jobs(); err == nil {
		t.Fatal("expected error for zero rounds")
	}
	if _, err := (Grid{Name: "x", Base: TestSpec(), Rounds: 2}).Jobs(); err == nil {
		t.Fatal("expected error for zero eval cadence")
	}
	bad := Grid{Name: "x", Base: TestSpec(), Rounds: 2, EvalEvery: 1, Axes: Axes{Strategies: []string{"bogus"}}}
	if _, err := bad.Jobs(); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("expected strategy parse error, got %v", err)
	}
	bad.Axes = Axes{Allocators: []string{"nope"}}
	if _, err := bad.Jobs(); err == nil {
		t.Fatal("expected allocator parse error")
	}
}

// TestRunJobMatchesRunScheme pins the single-job executor to the
// historical convenience wrapper: same spec, same curve.
func TestRunJobMatchesRunScheme(t *testing.T) {
	spec := TestSpec()
	want, err := RunScheme(spec, "sl", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := (Grid{Name: "j", Base: spec, Rounds: 2, EvalEvery: 1, Axes: Axes{Schemes: []string{"sl"}}}).Jobs()
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunJob(context.Background(), jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve.Points) != len(want.Points) {
		t.Fatalf("curves differ in length: %d vs %d", len(res.Curve.Points), len(want.Points))
	}
	for i := range want.Points {
		if res.Curve.Points[i] != want.Points[i] {
			t.Fatalf("point %d differs: %+v vs %+v", i, res.Curve.Points[i], want.Points[i])
		}
	}
	if res.TotalSeconds != res.Ledger.Total() && res.TotalSeconds <= 0 {
		t.Fatalf("result accumulators inconsistent: total %v ledger %v", res.TotalSeconds, res.Ledger.Total())
	}
}

func TestDefaultGroupCounts(t *testing.T) {
	got := DefaultGroupCounts(6)
	for _, m := range got {
		if m > 6 {
			t.Fatalf("group count %d exceeds client count", m)
		}
	}
	if len(got) == 0 || got[0] != 1 {
		t.Fatalf("DefaultGroupCounts(6) = %v", got)
	}
}

// TestJobSpecsCarryCanonicalNames: aliases arriving through the base
// spec (e.g. a grid file's "base" patch), not just through axes, are
// canonicalized onto the expanded jobs, so folds and stores record one
// spelling per extension.
func TestJobSpecsCarryCanonicalNames(t *testing.T) {
	base := TestSpec()
	base.Alloc = "propfair"
	base.Strategy = "balanced"
	g := Grid{Name: "alias-base", Base: base, Rounds: 2, EvalEvery: 1, Axes: Axes{}}
	jobs, err := g.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if jobs[0].Spec.Alloc != "proportional-fair" || jobs[0].Spec.Strategy != "compute-balanced" {
		t.Fatalf("base aliases not canonicalized: %+v", jobs[0].Spec)
	}
	canon := base
	canon.Alloc, canon.Strategy = "proportional-fair", "compute-balanced"
	g2 := Grid{Name: "alias-base", Base: canon, Rounds: 2, EvalEvery: 1, Axes: Axes{}}
	jobs2, err := g2.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if jobs[0].ID != jobs2[0].ID {
		t.Fatal("alias and canonical base specs must expand to the same cell ID")
	}
}
