// Package experiment assembles complete simulated worlds (data + fleet +
// channel + model) and runs the paper's experiments end to end.
//
// Each exported Run* function regenerates one figure or table from
// DESIGN.md's experiment index: Fig. 2(a) accuracy-vs-rounds, Fig. 2(b)
// accuracy-vs-latency, the convergence/latency/storage tables, and the
// future-work ablations (cut layer, grouping, resource allocation).
package experiment

import (
	"context"
	"fmt"

	"gsfl/internal/data"
	"gsfl/internal/device"
	"gsfl/internal/gtsrb"
	"gsfl/internal/metrics"
	"gsfl/internal/model"
	"gsfl/internal/partition"
	"gsfl/internal/schemes"
	"gsfl/internal/wireless"
	"gsfl/sim"
)

// Spec describes one experimental configuration. The zero value is not
// usable; start from PaperSpec or TestSpec and override.
type Spec struct {
	// Clients (N) and Groups (M) set the population structure; the paper
	// uses N=30, M=6.
	Clients int
	Groups  int
	// Strategy assigns clients to groups.
	Strategy partition.GroupStrategy
	// ImageSize is the synthetic-GTSRB edge length (32 at paper scale).
	ImageSize int
	// TrainPerClient is each client's private sample count.
	TrainPerClient int
	// TestPerClass sizes the balanced held-out test set.
	TestPerClass int
	// Alpha is the Dirichlet non-IID concentration; 0 means IID.
	Alpha float64
	// Cut is the split index into model.GTSRBCNN.
	Cut int
	// Hyper are the shared optimization hyperparameters.
	Hyper schemes.Hyper
	// Alloc is the bandwidth allocation policy.
	Alloc wireless.Allocator
	// Device and Wireless override the hardware environment; zero values
	// take the package defaults.
	Device   device.Config
	Wireless wireless.Config
	// Seed derives all randomness.
	Seed int64
	// Pipelined enables communication/computation overlap in GSFL turns.
	Pipelined bool
	// DropoutProb injects per-round client unavailability into GSFL.
	DropoutProb float64
}

// PaperSpec is the configuration of Section III: 30 clients, 6 groups,
// GTSRB-scale images, mildly non-IID data.
func PaperSpec() Spec {
	return Spec{
		Clients:        30,
		Groups:         6,
		Strategy:       partition.GroupRoundRobin,
		ImageSize:      32,
		TrainPerClient: 200,
		TestPerClass:   10,
		Alpha:          1.0,
		Cut:            model.GTSRBCNNDefaultCut,
		Hyper: schemes.Hyper{
			Batch:          16,
			StepsPerClient: 4,
			LR:             0.02,
			Momentum:       0.9,
			ClipNorm:       5,
		},
		Alloc:    wireless.Uniform{},
		Device:   device.DefaultConfig(30),
		Wireless: wireless.DefaultConfig(),
		Seed:     1,
	}
}

// TestSpec is a minimal configuration for fast CI runs: 6 clients in 2
// groups on 8x8 images.
func TestSpec() Spec {
	s := PaperSpec()
	s.Clients = 6
	s.Groups = 2
	s.ImageSize = 8
	s.TrainPerClient = 40
	s.TestPerClass = 2
	s.Hyper.Batch = 8
	s.Hyper.StepsPerClient = 2
	s.Device = device.DefaultConfig(6)
	return s
}

// Build materializes the Spec into a schemes.Env.
func Build(spec Spec) (*schemes.Env, error) {
	if spec.Clients <= 0 || spec.Groups <= 0 || spec.Groups > spec.Clients {
		return nil, fmt.Errorf("experiment: bad population N=%d M=%d", spec.Clients, spec.Groups)
	}
	if spec.Alloc == nil {
		return nil, fmt.Errorf("experiment: missing allocator")
	}
	spec.Device.N = spec.Clients

	gen := gtsrb.NewGenerator(gtsrb.DefaultConfig(spec.ImageSize), spec.Seed)
	pool := gen.Dataset(spec.Clients*spec.TrainPerClient, nil)
	testGen := gtsrb.NewGenerator(gtsrb.DefaultConfig(spec.ImageSize), spec.Seed+1)
	test := testGen.Balanced(spec.TestPerClass)

	fleet := device.NewFleet(spec.Device, spec.Seed+2)
	channel := wireless.NewChannel(spec.Wireless, spec.Clients, spec.Seed+3)

	env := &schemes.Env{
		Arch:    model.GTSRBCNN(spec.ImageSize, gtsrb.NumClasses),
		Cut:     spec.Cut,
		Fleet:   fleet,
		Channel: channel,
		Alloc:   spec.Alloc,
		Test:    test,
		Hyper:   spec.Hyper,
		Seed:    spec.envSeed(),
	}

	partRng := env.Rng("partition", 0)
	var subsets []*data.Subset
	if spec.Alpha > 0 {
		subsets = partition.Dirichlet(pool, spec.Clients, spec.Alpha, partRng)
	} else {
		subsets = partition.IID(pool, spec.Clients, partRng)
	}
	env.Train = make([]data.Dataset, len(subsets))
	for i, s := range subsets {
		env.Train[i] = s
	}
	if err := env.Validate(); err != nil {
		return nil, fmt.Errorf("experiment: built invalid env: %w", err)
	}
	return env, nil
}

// envSeed derives the env-level seed every scheme RNG stream hangs off.
// Build and the data-free architecture probe (grids.go) must agree on
// it, so it has exactly one definition.
func (s Spec) envSeed() int64 { return s.Seed + 4 }

// SchemeOptions maps the Spec's scheme-structure knobs into the run
// API's factory options.
func (s Spec) SchemeOptions() sim.Options {
	return sim.Options{
		Groups:      s.Groups,
		Strategy:    s.Strategy,
		Pipelined:   s.Pipelined,
		DropoutProb: s.DropoutProb,
	}
}

// NewTrainer instantiates the named scheme over a fresh env built from
// spec, through the gsfl/sim registry (see sim.Schemes for the
// recognized names).
func NewTrainer(spec Spec, scheme string) (schemes.Trainer, error) {
	env, err := Build(spec)
	if err != nil {
		return nil, err
	}
	return sim.New(scheme, env, spec.SchemeOptions())
}

// RunScheme builds the named scheme and trains it for the given number
// of rounds, evaluating every evalEvery rounds. It is a convenience
// wrapper over the run API; drive sim.NewRunner directly for streaming
// events, cancellation, or checkpointing.
func RunScheme(spec Spec, scheme string, rounds, evalEvery int) (*metrics.Curve, error) {
	tr, err := NewTrainer(spec, scheme)
	if err != nil {
		return nil, err
	}
	return runCurve(tr, rounds, evalEvery)
}

// runCurve drives a trainer to a finished curve — the harness-internal
// shorthand for a Runner with no observers.
func runCurve(tr schemes.Trainer, rounds, evalEvery int) (*metrics.Curve, error) {
	return sim.NewRunner(tr,
		sim.WithRounds(rounds),
		sim.WithEvalEvery(evalEvery),
	).Run(context.Background())
}
