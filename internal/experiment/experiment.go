// Package experiment is the paper-reproduction harness: it declares the
// figures, tables, and ablations as experiment grids over environment
// specs, runs them, and folds the results into the paper's CSVs.
//
// Environment construction lives in the public gsfl/env package — this
// package is a thin consumer: its Spec is an alias of env.Spec, Build
// delegates to env.Build, and the extension points (allocators,
// grouping strategies, datasets, architectures) resolve through the
// env registries. What remains here is the harness itself: the Grid
// expansion with stable job content hashes (grid.go), the catalogue of
// paper experiments and their folds (grids.go), and the Run* reference
// wrappers (figures.go, extensions.go).
package experiment

import (
	"context"

	"gsfl/env"
	"gsfl/internal/metrics"
	"gsfl/internal/schemes"
	"gsfl/sim"
)

// Spec describes one experimental configuration; it is the public
// env.Spec (fully JSON-serializable, extension points by registered
// name). The zero value is not usable; start from PaperSpec or TestSpec
// and override.
type Spec = env.Spec

// PaperSpec is the configuration of Section III: 30 clients, 6 groups,
// GTSRB-scale images, mildly non-IID data.
func PaperSpec() Spec { return env.PaperSpec() }

// TestSpec is a minimal configuration for fast CI runs: 6 clients in 2
// groups on 8x8 images.
func TestSpec() Spec { return env.TestSpec() }

// Build materializes the Spec into a schemes.Env via the public
// environment builder.
func Build(spec Spec) (*schemes.Env, error) { return env.Build(spec) }

// NewTrainer instantiates the named scheme over a fresh env built from
// spec, through the gsfl/sim registry (see sim.Schemes for the
// recognized names).
func NewTrainer(spec Spec, scheme string) (schemes.Trainer, error) {
	world, err := Build(spec)
	if err != nil {
		return nil, err
	}
	opts, err := spec.SchemeOptions()
	if err != nil {
		return nil, err
	}
	return sim.New(scheme, world, opts)
}

// RunScheme builds the named scheme and trains it for the given number
// of rounds, evaluating every evalEvery rounds. It is a convenience
// wrapper over the run API; drive sim.NewRunner directly for streaming
// events, cancellation, or checkpointing.
func RunScheme(spec Spec, scheme string, rounds, evalEvery int) (*metrics.Curve, error) {
	tr, err := NewTrainer(spec, scheme)
	if err != nil {
		return nil, err
	}
	return runCurve(tr, rounds, evalEvery)
}

// runCurve drives a trainer to a finished curve — the harness-internal
// shorthand for a Runner with no observers.
func runCurve(tr schemes.Trainer, rounds, evalEvery int) (*metrics.Curve, error) {
	return sim.NewRunner(tr,
		sim.WithRounds(rounds),
		sim.WithEvalEvery(evalEvery),
	).Run(context.Background())
}
