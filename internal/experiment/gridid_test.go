package experiment

import (
	"fmt"
	"testing"
)

// goldenJobIDs pins the content-hash ID of every cell in the paper
// catalogue at test scale (rounds=3, evalEvery=2, target=0.3), captured
// before the Spec migration to gsfl/env. Job IDs key the sweep store —
// an ID change silently orphans completed work and breaks manifest
// byte-identity — so any refactor of Spec, the identity encoding, or
// the registries must keep these exact values (or ship a versioned
// store migration).
var goldenJobIDs = []string{
	"fig2a 5eab3becbe8e4c72 fig2a/scheme=cl",
	"fig2a ffbca4e7deb1cf22 fig2a/scheme=sl",
	"fig2a 4f4917f2affe18bb fig2a/scheme=gsfl",
	"fig2a 25591a8afc47a2a5 fig2a/scheme=fl",
	"fig2b 4f4917f2affe18bb fig2b/scheme=gsfl",
	"fig2b ffbca4e7deb1cf22 fig2b/scheme=sl",
	"table1 5eab3becbe8e4c72 fig2a/scheme=cl",
	"table1 ffbca4e7deb1cf22 fig2a/scheme=sl",
	"table1 4f4917f2affe18bb fig2a/scheme=gsfl",
	"table1 25591a8afc47a2a5 fig2a/scheme=fl",
	"table2 dc7efbbbf7dc2562 table2/scheme=gsfl",
	"table2 82d97bf7e630037b table2/scheme=sl",
	"table2 302382ea5bf54d3c table2/scheme=fl",
	"table2 3faded92107b5641 table2/scheme=sfl",
	"table2 f9daa5f69506a34b table2/scheme=cl",
	"cutlayer bb029d5921641f21 cutlayer/cut=1",
	"cutlayer 4f4917f2affe18bb cutlayer/cut=3",
	"cutlayer d93560c8ee3aea14 cutlayer/cut=6",
	"cutlayer 434f45c48647ea89 cutlayer/cut=9",
	"grouping 49c9187cb54955e2 grouping/groups=1,strategy=round-robin",
	"grouping 003201a28016f34c grouping/groups=1,strategy=random",
	"grouping b9a7006c38136457 grouping/groups=1,strategy=compute-balanced",
	"grouping 4f4917f2affe18bb grouping/groups=2,strategy=round-robin",
	"grouping c84e09451d783ac7 grouping/groups=2,strategy=random",
	"grouping 16fc5d9b4ddb1b8c grouping/groups=2,strategy=compute-balanced",
	"grouping 489cd4a9cb839658 grouping/groups=3,strategy=round-robin",
	"grouping 9a5c5a8dcb3f937e grouping/groups=3,strategy=random",
	"grouping f2d2d6a9cc9a8849 grouping/groups=3,strategy=compute-balanced",
	"grouping de4e4f2a1dccf52f grouping/groups=6,strategy=round-robin",
	"grouping 40119d426165528b grouping/groups=6,strategy=random",
	"grouping 54d20579d271b380 grouping/groups=6,strategy=compute-balanced",
	"resalloc dc7efbbbf7dc2562 resalloc/alloc=uniform",
	"resalloc f3ac30f8ba49995e resalloc/alloc=proportional-fair",
	"resalloc c4673572ef40a237 resalloc/alloc=latency-min",
	"pipeline 4f4917f2affe18bb pipeline/pipe=false",
	"pipeline e8578aece7fbcbb4 pipeline/pipe=true",
	"quant 4f4917f2affe18bb quant/quant=false",
	"quant 12b0b4373438a8e0 quant/quant=true",
	"dropout 4f4917f2affe18bb dropout/dropout=0",
	"dropout 8df53de72cf680c0 dropout/dropout=0.1",
	"dropout 8deb3de72cee2c3b dropout/dropout=0.2",
	"dropout 8dee41e72cf068de dropout/dropout=0.3",
	"noniid b44d0f9ebe79a479 noniid/alpha=0.1,scheme=gsfl",
	"noniid dddfd3984bf229cf noniid/alpha=0.1,scheme=fl",
	"noniid 4f4917f2affe18bb noniid/alpha=1,scheme=gsfl",
	"noniid 25591a8afc47a2a5 noniid/alpha=1,scheme=fl",
	"noniid 5f8b6fc577b1aa3b noniid/alpha=100,scheme=gsfl",
	"noniid 1c4b3a7ff4f50155 noniid/alpha=100,scheme=fl",
	"popsample 1bfd10ea69d3a332 popsample/groups=2,frac=0.05",
	"popsample fa7a2962d7743858 popsample/groups=2,frac=0.1",
	"popsample 1b3c2a6b5681ed5c popsample/groups=2,frac=0.25",
	"popsample 7b291ef5f5175b86 popsample/groups=6,frac=0.05",
	"popsample 1f02fb77106e1a2c popsample/groups=6,frac=0.1",
	"popsample ad43faf87c3886c0 popsample/groups=6,frac=0.25",
	"seeds 4f4917f2affe18bb seeds-gsfl/seed=1",
	"seeds d152ea4a34c16ef0 seeds-gsfl/seed=1001",
	"seeds 09a5ec72eb93dc0d seeds-gsfl/seed=2001",
	"seeds ffbca4e7deb1cf22 seeds-sl/seed=1",
	"seeds ce5926fd0f31ab23 seeds-sl/seed=1001",
	"seeds 214f8b62829bfec2 seeds-sl/seed=2001",
	"seeds 25591a8afc47a2a5 seeds-fl/seed=1",
	"seeds 8ba7a9874b08c75e seeds-fl/seed=1001",
	"seeds 5b02a95b67cf5c0f seeds-fl/seed=2001",
	// PR 8: the numeric-mode study. The exact cell must share the base
	// gsfl cell's ID (4f4917f2affe18bb) — the default mode is erased
	// from the identity encoding, so the scheduler dedups it against
	// fig2a's gsfl run and every historical store entry stays valid.
	"numeric 4f4917f2affe18bb numeric/numeric=exact",
	"numeric 86f4ba5b876490ca numeric/numeric=fast",
}

// TestGridIDStabilityAcrossSpecMigration expands the full catalogue and
// compares every (experiment, id, name) triple against the pinned
// pre-migration values.
func TestGridIDStabilityAcrossSpecMigration(t *testing.T) {
	spec := TestSpec()
	var got []string
	for _, e := range GridExperiments(spec, 3, 2, 0.3) {
		jobs, err := e.Jobs()
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		for _, j := range jobs {
			got = append(got, fmt.Sprintf("%s %s %s", e.Name, j.ID, j.Name))
		}
	}
	if len(got) != len(goldenJobIDs) {
		t.Fatalf("catalogue expands to %d cells, golden list has %d", len(got), len(goldenJobIDs))
	}
	for i := range got {
		if got[i] != goldenJobIDs[i] {
			t.Errorf("cell %d drifted:\n  got  %s\n  want %s", i, got[i], goldenJobIDs[i])
		}
	}
}

// TestGridIDAliasCanonicalization checks that alias tokens ("propfair",
// "roundrobin") hash to the same cell as their canonical names, so grid
// files written with shorthands deduplicate against the catalogue.
func TestGridIDAliasCanonicalization(t *testing.T) {
	mk := func(strategy, alloc string) string {
		g := Grid{
			Name: "alias", Base: TestSpec(), Rounds: 2, EvalEvery: 1,
			Axes: Axes{Strategies: []string{strategy}, Allocators: []string{alloc}},
		}
		jobs, err := g.Jobs()
		if err != nil {
			t.Fatal(err)
		}
		if len(jobs) != 1 {
			t.Fatalf("expanded %d jobs", len(jobs))
		}
		return jobs[0].ID
	}
	if mk("roundrobin", "propfair") != mk("round-robin", "proportional-fair") {
		t.Fatal("alias tokens must hash to the canonical cell ID")
	}
}

// TestGridIDDefaultExtensionsKeepHistoricalHash checks the identity
// extension rule: the default dataset/arch (explicit or empty) must
// hash exactly as the pre-migration encoding, while non-default values
// produce distinct IDs.
func TestGridIDDefaultExtensionsKeepHistoricalHash(t *testing.T) {
	id := func(mutate func(*Spec)) string {
		s := TestSpec()
		mutate(&s)
		g := Grid{Name: "x", Base: s, Rounds: 2, EvalEvery: 1, Axes: Axes{}}
		jobs, err := g.Jobs()
		if err != nil {
			t.Fatal(err)
		}
		return jobs[0].ID
	}
	base := id(func(*Spec) {})
	blank := id(func(s *Spec) { s.Dataset, s.Arch = "", "" })
	if base != blank {
		t.Fatal("empty dataset/arch must hash like the explicit defaults")
	}
	mlp := id(func(s *Spec) { s.Arch = "mlp" })
	if mlp == base {
		t.Fatal("non-default arch must change the job ID")
	}
	// The population fields follow the same extension rule: absent they
	// leave the historical bytes alone (pinned by the golden list above),
	// present they must produce a new, stable, distinct ID.
	pop := id(func(s *Spec) { s.Population = 120; s.SampleFraction = 0.1 })
	if pop == base {
		t.Fatal("a configured population must change the job ID")
	}
	pop2 := id(func(s *Spec) { s.Population = 120; s.SampleFraction = 0.1; s.AvailTrace = "always-on" })
	if pop2 != pop {
		t.Fatal("an explicit default trace must hash like the normalized empty trace")
	}
	frac := id(func(s *Spec) { s.Population = 120; s.SampleFraction = 0.25 })
	if frac == pop {
		t.Fatal("the sampling fraction must be part of the job ID")
	}
}
