package experiment

import (
	"context"
	"fmt"

	"gsfl/internal/gsfl"
	"gsfl/internal/metrics"
	"gsfl/internal/schemes/sfl"
	"gsfl/internal/trace"
)

// The Run* functions here are the serial reference harness: each one
// expands its Grid (grids.go), executes the jobs in order via RunGrid,
// and folds the results. cmd/gsfl-bench and cmd/gsfl-sweep run the same
// grids through gsfl/sweep's concurrent scheduler and the same folds,
// producing byte-identical output.

// RunFig2a regenerates Fig. 2(a): accuracy versus training rounds for
// CL, SL, GSFL, and FL on the synthetic GTSRB task.
func RunFig2a(spec Spec, rounds, evalEvery int) ([]*metrics.Curve, error) {
	res, err := RunGrid(context.Background(), Fig2aGrid(spec, rounds, evalEvery))
	if err != nil {
		return nil, err
	}
	return FoldCurves(res), nil
}

// RunFig2b regenerates Fig. 2(b): accuracy versus cumulative training
// latency for GSFL and SL.
func RunFig2b(spec Spec, rounds, evalEvery int) ([]*metrics.Curve, error) {
	res, err := RunGrid(context.Background(), Fig2bGrid(spec, rounds, evalEvery))
	if err != nil {
		return nil, err
	}
	return FoldCurves(res), nil
}

// RunTable1 regenerates the convergence-speed comparison behind the
// paper's "nearly 500% improvement over FL" headline: rounds to reach
// the target accuracy per scheme, with speedups relative to GSFL.
func RunTable1(spec Spec, rounds, evalEvery int, target float64) (*trace.Table, []*metrics.Curve, error) {
	curves, err := RunFig2a(spec, rounds, evalEvery)
	if err != nil {
		return nil, nil, err
	}
	return FoldTable1(curves, target), curves, nil
}

// RunTable2 regenerates the per-round latency breakdown for every
// scheme — the decomposition behind the "31.45% delay reduction vs SL"
// headline. It averages component seconds over the given number of
// rounds.
func RunTable2(spec Spec, rounds int) (*trace.Table, error) {
	res, err := RunGrid(context.Background(), Table2Grid(spec, rounds))
	if err != nil {
		return nil, err
	}
	return FoldTable2(res), nil
}

// RunTable3 regenerates the server-storage comparison from §I: the edge
// server hosts M server-side replicas under GSFL versus N under SplitFed.
// It runs no training rounds, so it stays outside the grid catalogue.
func RunTable3(spec Spec) (*trace.Table, error) {
	world, err := Build(spec)
	if err != nil {
		return nil, err
	}
	opts, err := spec.SchemeOptions()
	if err != nil {
		return nil, err
	}
	g, err := gsfl.New(world, gsfl.Config{NumGroups: spec.Groups, Strategy: opts.Strategy})
	if err != nil {
		return nil, err
	}
	world2, err := Build(spec)
	if err != nil {
		return nil, err
	}
	s, err := sfl.New(world2)
	if err != nil {
		return nil, err
	}
	tbl := trace.NewTable("table3-server-storage",
		"scheme", "server_replicas", "server_storage_bytes")
	tbl.Add(trace.Row{
		"scheme":               "gsfl",
		"server_replicas":      g.ServerReplicaCount(),
		"server_storage_bytes": g.ServerStorageBytes(),
	})
	tbl.Add(trace.Row{
		"scheme":               "sfl",
		"server_replicas":      s.ServerReplicaCount(),
		"server_storage_bytes": s.ServerStorageBytes(),
	})
	return tbl, nil
}

// CutLayerResult is one row of the cut-layer ablation (A1).
type CutLayerResult struct {
	Cut           int
	SmashedBytes  int64
	ClientBytes   int64
	RoundLatency  float64
	FinalAccuracy float64
}

// RunAblationCutLayer sweeps the split index (future work §IV) and
// reports, per cut, the smashed-data size, client-model size, mean round
// latency, and final accuracy after the given rounds.
func RunAblationCutLayer(spec Spec, cuts []int, rounds, evalEvery int) ([]CutLayerResult, error) {
	res, err := RunGrid(context.Background(), CutLayerGrid(spec, cuts, rounds, evalEvery))
	if err != nil {
		return nil, err
	}
	return FoldCutLayer(res), nil
}

// GroupingResult is one row of the grouping ablation (A2). Strategy is
// the canonical registry name.
type GroupingResult struct {
	Groups        int
	Strategy      string
	RoundLatency  float64
	FinalAccuracy float64
}

// RunAblationGrouping sweeps the number of groups and the grouping
// strategy (future work §IV). Strategies are registry names (see
// env.Strategies).
func RunAblationGrouping(spec Spec, groupCounts []int, strategies []string, rounds, evalEvery int) ([]GroupingResult, error) {
	res, err := RunGrid(context.Background(), GroupingGrid(spec, groupCounts, strategies, rounds, evalEvery))
	if err != nil {
		return nil, err
	}
	return FoldGrouping(res), nil
}

// AllocationResult is one row of the resource-allocation ablation (A3).
type AllocationResult struct {
	Allocator    string
	RoundLatency float64
}

// RunAblationAllocation compares bandwidth allocation policies (future
// work §IV) on GSFL round latency, holding everything else fixed.
func RunAblationAllocation(spec Spec, rounds int) ([]AllocationResult, error) {
	if spec.Alloc == "" {
		return nil, fmt.Errorf("experiment: allocation ablation needs a base allocator")
	}
	res, err := RunGrid(context.Background(), AllocationGrid(spec, rounds))
	if err != nil {
		return nil, err
	}
	return FoldAllocation(res), nil
}
