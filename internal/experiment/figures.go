package experiment

import (
	"context"
	"fmt"

	"gsfl/internal/gsfl"
	"gsfl/internal/metrics"
	"gsfl/internal/partition"
	"gsfl/internal/schemes/sfl"
	"gsfl/internal/simnet"
	"gsfl/internal/trace"
	"gsfl/internal/wireless"
)

// RunFig2a regenerates Fig. 2(a): accuracy versus training rounds for
// CL, SL, GSFL, and FL on the synthetic GTSRB task.
func RunFig2a(spec Spec, rounds, evalEvery int) ([]*metrics.Curve, error) {
	curves := make([]*metrics.Curve, 0, 4)
	for _, scheme := range []string{"cl", "sl", "gsfl", "fl"} {
		c, err := RunScheme(spec, scheme, rounds, evalEvery)
		if err != nil {
			return nil, fmt.Errorf("experiment: fig2a %s: %w", scheme, err)
		}
		curves = append(curves, c)
	}
	return curves, nil
}

// RunFig2b regenerates Fig. 2(b): accuracy versus cumulative training
// latency for GSFL and SL.
func RunFig2b(spec Spec, rounds, evalEvery int) ([]*metrics.Curve, error) {
	curves := make([]*metrics.Curve, 0, 2)
	for _, scheme := range []string{"gsfl", "sl"} {
		c, err := RunScheme(spec, scheme, rounds, evalEvery)
		if err != nil {
			return nil, fmt.Errorf("experiment: fig2b %s: %w", scheme, err)
		}
		curves = append(curves, c)
	}
	return curves, nil
}

// RunTable1 regenerates the convergence-speed comparison behind the
// paper's "nearly 500% improvement over FL" headline: rounds to reach
// the target accuracy per scheme, with speedups relative to GSFL.
func RunTable1(spec Spec, rounds, evalEvery int, target float64) (*trace.Table, []*metrics.Curve, error) {
	curves, err := RunFig2a(spec, rounds, evalEvery)
	if err != nil {
		return nil, nil, err
	}
	var gsflCurve *metrics.Curve
	for _, c := range curves {
		if c.Scheme == "gsfl" {
			gsflCurve = c
		}
	}
	tbl := trace.NewTable("table1-convergence",
		"scheme", "target_accuracy", "rounds_to_target", "reached", "speedup_vs_scheme_for_gsfl")
	for _, c := range curves {
		r, ok := c.RoundsToAccuracy(target)
		row := trace.Row{
			"scheme":          c.Scheme,
			"target_accuracy": target,
			"reached":         ok,
		}
		if ok {
			row["rounds_to_target"] = r
		}
		if s, sok := metrics.SpeedupVsRounds(gsflCurve, c, target); sok {
			row["speedup_vs_scheme_for_gsfl"] = fmt.Sprintf("%.2f", s)
		}
		tbl.Add(row)
	}
	return tbl, curves, nil
}

// RunTable2 regenerates the per-round latency breakdown for every
// scheme — the decomposition behind the "31.45% delay reduction vs SL"
// headline. It averages component seconds over the given number of
// rounds without evaluating accuracy (pure latency measurement).
func RunTable2(spec Spec, rounds int) (*trace.Table, error) {
	tbl := trace.NewTable("table2-latency-breakdown",
		"scheme", "client_compute_s", "uplink_s", "server_compute_s",
		"downlink_s", "relay_s", "aggregation_s", "total_s",
		"client_energy_J", "server_energy_J")
	energy := simnet.DefaultEnergyModel()
	for _, scheme := range []string{"gsfl", "sl", "fl", "sfl", "cl"} {
		tr, err := NewTrainer(spec, scheme)
		if err != nil {
			return nil, fmt.Errorf("experiment: table2 %s: %w", scheme, err)
		}
		var sum simnet.Ledger
		for r := 0; r < rounds; r++ {
			led, err := tr.Round(context.Background())
			if err != nil {
				return nil, fmt.Errorf("experiment: table2 %s round %d: %w", scheme, r+1, err)
			}
			sum.Merge(led)
		}
		inv := 1 / float64(rounds)
		tbl.Add(trace.Row{
			"scheme":           scheme,
			"client_compute_s": fmt.Sprintf("%.4f", sum.Get(simnet.ClientCompute)*inv),
			"uplink_s":         fmt.Sprintf("%.4f", sum.Get(simnet.Uplink)*inv),
			"server_compute_s": fmt.Sprintf("%.4f", sum.Get(simnet.ServerCompute)*inv),
			"downlink_s":       fmt.Sprintf("%.4f", sum.Get(simnet.Downlink)*inv),
			"relay_s":          fmt.Sprintf("%.4f", sum.Get(simnet.Relay)*inv),
			"aggregation_s":    fmt.Sprintf("%.4f", sum.Get(simnet.Aggregation)*inv),
			"total_s":          fmt.Sprintf("%.4f", sum.Total()*inv),
			"client_energy_J":  fmt.Sprintf("%.4f", energy.ClientEnergyJ(&sum)*inv),
			"server_energy_J":  fmt.Sprintf("%.4f", energy.ServerEnergyJ(&sum)*inv),
		})
	}
	return tbl, nil
}

// RunTable3 regenerates the server-storage comparison from §I: the edge
// server hosts M server-side replicas under GSFL versus N under SplitFed.
func RunTable3(spec Spec) (*trace.Table, error) {
	env, err := Build(spec)
	if err != nil {
		return nil, err
	}
	g, err := gsfl.New(env, gsfl.Config{NumGroups: spec.Groups, Strategy: spec.Strategy})
	if err != nil {
		return nil, err
	}
	env2, err := Build(spec)
	if err != nil {
		return nil, err
	}
	s, err := sfl.New(env2)
	if err != nil {
		return nil, err
	}
	tbl := trace.NewTable("table3-server-storage",
		"scheme", "server_replicas", "server_storage_bytes")
	tbl.Add(trace.Row{
		"scheme":               "gsfl",
		"server_replicas":      g.ServerReplicaCount(),
		"server_storage_bytes": g.ServerStorageBytes(),
	})
	tbl.Add(trace.Row{
		"scheme":               "sfl",
		"server_replicas":      s.ServerReplicaCount(),
		"server_storage_bytes": s.ServerStorageBytes(),
	})
	return tbl, nil
}

// CutLayerResult is one row of the cut-layer ablation (A1).
type CutLayerResult struct {
	Cut           int
	SmashedBytes  int64
	ClientBytes   int64
	RoundLatency  float64
	FinalAccuracy float64
}

// RunAblationCutLayer sweeps the split index (future work §IV) and
// reports, per cut, the smashed-data size, client-model size, mean round
// latency, and final accuracy after the given rounds.
func RunAblationCutLayer(spec Spec, cuts []int, rounds, evalEvery int) ([]CutLayerResult, error) {
	out := make([]CutLayerResult, 0, len(cuts))
	for _, cut := range cuts {
		s := spec
		s.Cut = cut
		env, err := Build(s)
		if err != nil {
			return nil, fmt.Errorf("experiment: cut %d: %w", cut, err)
		}
		tr, err := gsfl.New(env, gsfl.Config{NumGroups: s.Groups, Strategy: s.Strategy})
		if err != nil {
			return nil, fmt.Errorf("experiment: cut %d: %w", cut, err)
		}
		curve, err := runCurve(tr, rounds, evalEvery)
		if err != nil {
			return nil, fmt.Errorf("experiment: cut %d: %w", cut, err)
		}
		probe := env.Arch.NewSplit(env.Rng("probe", 0), cut)
		total := 0.0
		for _, p := range curve.Points {
			total = p.LatencySeconds // cumulative; keep the last
		}
		out = append(out, CutLayerResult{
			Cut:           cut,
			SmashedBytes:  probe.SmashedBytes(s.Hyper.Batch),
			ClientBytes:   probe.ClientParamBytes(),
			RoundLatency:  total / float64(rounds),
			FinalAccuracy: curve.FinalAccuracy(),
		})
	}
	return out, nil
}

// GroupingResult is one row of the grouping ablation (A2).
type GroupingResult struct {
	Groups        int
	Strategy      partition.GroupStrategy
	RoundLatency  float64
	FinalAccuracy float64
}

// RunAblationGrouping sweeps the number of groups and the grouping
// strategy (future work §IV).
func RunAblationGrouping(spec Spec, groupCounts []int, strategies []partition.GroupStrategy, rounds, evalEvery int) ([]GroupingResult, error) {
	var out []GroupingResult
	for _, m := range groupCounts {
		for _, st := range strategies {
			s := spec
			s.Groups = m
			s.Strategy = st
			env, err := Build(s)
			if err != nil {
				return nil, fmt.Errorf("experiment: grouping M=%d: %w", m, err)
			}
			tr, err := gsfl.New(env, gsfl.Config{NumGroups: m, Strategy: st})
			if err != nil {
				return nil, fmt.Errorf("experiment: grouping M=%d: %w", m, err)
			}
			curve, err := runCurve(tr, rounds, evalEvery)
			if err != nil {
				return nil, fmt.Errorf("experiment: grouping M=%d: %w", m, err)
			}
			last := curve.Points[len(curve.Points)-1]
			out = append(out, GroupingResult{
				Groups:        m,
				Strategy:      st,
				RoundLatency:  last.LatencySeconds / float64(rounds),
				FinalAccuracy: curve.FinalAccuracy(),
			})
		}
	}
	return out, nil
}

// AllocationResult is one row of the resource-allocation ablation (A3).
type AllocationResult struct {
	Allocator    string
	RoundLatency float64
}

// RunAblationAllocation compares bandwidth allocation policies (future
// work §IV) on GSFL round latency, holding everything else fixed.
func RunAblationAllocation(spec Spec, rounds int) ([]AllocationResult, error) {
	var out []AllocationResult
	for _, alloc := range []wireless.Allocator{
		wireless.Uniform{}, wireless.ProportionalFair{}, wireless.LatencyMin{},
	} {
		s := spec
		s.Alloc = alloc
		tr, err := NewTrainer(s, "gsfl")
		if err != nil {
			return nil, fmt.Errorf("experiment: allocation %s: %w", alloc.Name(), err)
		}
		total := 0.0
		for r := 0; r < rounds; r++ {
			led, err := tr.Round(context.Background())
			if err != nil {
				return nil, fmt.Errorf("experiment: allocation %s round %d: %w", alloc.Name(), r+1, err)
			}
			total += led.Total()
		}
		out = append(out, AllocationResult{
			Allocator:    alloc.Name(),
			RoundLatency: total / float64(rounds),
		})
	}
	return out, nil
}
