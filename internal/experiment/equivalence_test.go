package experiment

import (
	"context"
	"testing"

	"gsfl/internal/gsfl"
	"gsfl/internal/partition"
	"gsfl/internal/schemes"
	"gsfl/internal/schemes/schemestest"
	"gsfl/internal/schemes/sfl"
	"gsfl/internal/schemes/sl"
)

// GSFL is a strict generalization of both benchmark split schemes; these
// tests pin the degenerate cases to be *numerically identical*, which
// catches any drift between the three implementations.

// TestGSFLWithOneGroupEqualsSL: M=1 GSFL is vanilla SL plus a vacuous
// FedAvg over a single group (the identity). Same seeds, same loader
// streams, same optimizer structure => identical evaluations each round.
func TestGSFLWithOneGroupEqualsSL(t *testing.T) {
	envG := schemestest.NewEnv(5, 5, 40)
	g, err := gsfl.New(envG, gsfl.Config{NumGroups: 1, Strategy: partition.GroupRoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	envS := schemestest.NewEnv(5, 5, 40)
	s, err := sl.New(envS)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for r := 0; r < 4; r++ {
		if _, err := g.Round(ctx); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Round(ctx); err != nil {
			t.Fatal(err)
		}
		ge, err := g.Evaluate(ctx)
		if err != nil {
			t.Fatal(err)
		}
		se, err := s.Evaluate(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if ge != se {
			t.Fatalf("round %d: GSFL(M=1) diverged from SL: %+v vs %+v", r+1, ge, se)
		}
	}
}

// TestGSFLWithSingletonGroupsEqualsSFL: M=N GSFL is SplitFed — every
// client trains in parallel against its own server replica and both
// halves aggregate.
func TestGSFLWithSingletonGroupsEqualsSFL(t *testing.T) {
	const n = 5
	envG := schemestest.NewEnv(6, n, 40)
	g, err := gsfl.New(envG, gsfl.Config{NumGroups: n, Strategy: partition.GroupRoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	envS := schemestest.NewEnv(6, n, 40)
	s, err := sfl.New(envS)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for r := 0; r < 4; r++ {
		if _, err := g.Round(ctx); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Round(ctx); err != nil {
			t.Fatal(err)
		}
		ge, err := g.Evaluate(ctx)
		if err != nil {
			t.Fatal(err)
		}
		se, err := s.Evaluate(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if ge != se {
			t.Fatalf("round %d: GSFL(M=N) diverged from SplitFed: %+v vs %+v", r+1, ge, se)
		}
	}
}

// TestSchemesShareInitialModel: every split scheme must start from the
// same global initialization (the paper distributes ONE model), so their
// round-0 evaluations coincide.
func TestSchemesShareInitialModel(t *testing.T) {
	build := func() (schemes.Trainer, schemes.Trainer, schemes.Trainer) {
		e1 := schemestest.NewEnv(7, 4, 30)
		g, err := gsfl.New(e1, gsfl.Config{NumGroups: 2, Strategy: partition.GroupRoundRobin})
		if err != nil {
			t.Fatal(err)
		}
		e2 := schemestest.NewEnv(7, 4, 30)
		s, err := sl.New(e2)
		if err != nil {
			t.Fatal(err)
		}
		e3 := schemestest.NewEnv(7, 4, 30)
		f, err := sfl.New(e3)
		if err != nil {
			t.Fatal(err)
		}
		return g, s, f
	}
	g, s, f := build()
	ctx := context.Background()
	ge, err := g.Evaluate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	se, err := s.Evaluate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	fe, err := f.Evaluate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ge != se || ge != fe {
		t.Fatalf("initial models differ: %+v / %+v / %+v", ge, se, fe)
	}
}
