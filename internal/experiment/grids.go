package experiment

import (
	"fmt"
	"math"
	"path/filepath"

	"gsfl/env"
	"gsfl/internal/metrics"
	"gsfl/internal/model"
	"gsfl/internal/schemes"
	"gsfl/internal/simnet"
	"gsfl/internal/trace"
)

// This file declares the paper's figures, tables, and ablations as
// Grids plus pure folds over the expanded jobs' results. The Run*
// wrappers in figures.go and extensions.go execute them serially;
// cmd/gsfl-bench and cmd/gsfl-sweep run the same grids concurrently
// through gsfl/sweep's scheduler and apply the same folds, so one-worker
// and N-worker harnesses produce byte-identical CSVs.

// Fig2aGrid sweeps the four schemes of Fig. 2(a).
func Fig2aGrid(spec Spec, rounds, evalEvery int) Grid {
	return Grid{
		Name: "fig2a", Base: spec, Rounds: rounds, EvalEvery: evalEvery,
		Axes: Axes{Schemes: []string{"cl", "sl", "gsfl", "fl"}},
	}
}

// Fig2bGrid sweeps the two schemes of Fig. 2(b). Its cells are a subset
// of Fig2aGrid's (same IDs), so a sweep running both executes them once.
func Fig2bGrid(spec Spec, rounds, evalEvery int) Grid {
	return Grid{
		Name: "fig2b", Base: spec, Rounds: rounds, EvalEvery: evalEvery,
		Axes: Axes{Schemes: []string{"gsfl", "sl"}},
	}
}

// Table2Grid sweeps all five schemes for the per-round latency
// breakdown. Accuracy is irrelevant here, so cells evaluate only after
// the final round (the historical harness never evaluated them at all;
// evaluation does not perturb training numerics or latency).
func Table2Grid(spec Spec, rounds int) Grid {
	return Grid{
		Name: "table2", Base: spec, Rounds: rounds, EvalEvery: rounds,
		Axes: Axes{Schemes: []string{"gsfl", "sl", "fl", "sfl", "cl"}},
	}
}

// CutLayerGrid sweeps the split index (ablation A1).
func CutLayerGrid(spec Spec, cuts []int, rounds, evalEvery int) Grid {
	return Grid{
		Name: "cutlayer", Base: spec, Rounds: rounds, EvalEvery: evalEvery,
		Axes: Axes{Cuts: cuts},
	}
}

// GroupingGrid sweeps group count and grouping strategy (ablation A2),
// groups outermost — the historical row order. Strategies are registry
// names (see env.Strategies).
func GroupingGrid(spec Spec, groupCounts []int, strategies []string, rounds, evalEvery int) Grid {
	return Grid{
		Name: "grouping", Base: spec, Rounds: rounds, EvalEvery: evalEvery,
		Axes: Axes{Groups: groupCounts, Strategies: strategies},
	}
}

// AllocationGrid sweeps the bandwidth allocation policy (ablation A3),
// latency-only like Table2Grid.
func AllocationGrid(spec Spec, rounds int) Grid {
	return Grid{
		Name: "resalloc", Base: spec, Rounds: rounds, EvalEvery: rounds,
		Axes: Axes{Allocators: []string{"uniform", "proportional-fair", "latency-min"}},
	}
}

// PipelineGrid compares GSFL without and with communication/computation
// overlap.
func PipelineGrid(spec Spec, rounds, evalEvery int) Grid {
	return Grid{
		Name: "pipeline", Base: spec, Rounds: rounds, EvalEvery: evalEvery,
		Axes: Axes{Pipelined: []bool{false, true}},
	}
}

// QuantGrid compares full-precision against 8-bit quantized transfers.
func QuantGrid(spec Spec, rounds, evalEvery int) Grid {
	return Grid{
		Name: "quant", Base: spec, Rounds: rounds, EvalEvery: evalEvery,
		Axes: Axes{Quantized: []bool{false, true}},
	}
}

// DropoutGrid sweeps per-round client unavailability.
func DropoutGrid(spec Spec, probs []float64, rounds, evalEvery int) Grid {
	return Grid{
		Name: "dropout", Base: spec, Rounds: rounds, EvalEvery: evalEvery,
		Axes: Axes{Dropouts: probs},
	}
}

// NonIIDGrid crosses Dirichlet concentration with {gsfl, fl}, alphas
// outermost — the historical row order.
func NonIIDGrid(spec Spec, alphas []float64, rounds, evalEvery int) Grid {
	return Grid{
		Name: "noniid", Base: spec, Rounds: rounds, EvalEvery: evalEvery,
		Axes: Axes{Alphas: alphas, Schemes: []string{"gsfl", "fl"}},
	}
}

// PopSampleGrid crosses the per-round sampling fraction with the group
// count over a persistent client population (PR 7): the population is a
// fixed multiple of the slot count, members churn through the "onoff"
// availability trace, and each cell trains GSFL on the cohorts the
// population samples. Fractions are relative to the population, so at
// the default scale (30 clients, 120 members) they span cohorts from a
// handful of clients up to every slot.
func PopSampleGrid(spec Spec, fractions []float64, groupCounts []int, rounds, evalEvery int) Grid {
	spec.Population = popMembersPerSlot * spec.Clients
	spec.AvailTrace = "onoff"
	return Grid{
		Name: "popsample", Base: spec, Rounds: rounds, EvalEvery: evalEvery,
		Axes: Axes{SampleFractions: fractions, Groups: groupCounts},
	}
}

// popMembersPerSlot sizes the popsample population relative to the slot
// count; with DefaultPopFractions the largest cohort exactly fills the
// slots.
const popMembersPerSlot = 4

// DefaultPopFractions is the popsample study's sampling-fraction sweep.
func DefaultPopFractions() []float64 { return []float64{0.05, 0.1, 0.25} }

// PopSampleResult is one popsample cell's folded row.
type PopSampleResult struct {
	Fraction      float64
	Population    int
	Cohort        int
	Groups        int
	RoundLatency  float64
	FinalAccuracy float64
}

// FoldPopSample derives the population-sampling study rows.
func FoldPopSample(res []JobResult) []PopSampleResult {
	out := make([]PopSampleResult, 0, len(res))
	for _, r := range res {
		s := r.Job.Spec
		out = append(out, PopSampleResult{
			Fraction:      s.SampleFraction,
			Population:    s.Population,
			Cohort:        s.CohortSize(),
			Groups:        s.Groups,
			RoundLatency:  lastLatency(r.Curve) / float64(r.Job.Rounds),
			FinalAccuracy: r.Curve.FinalAccuracy(),
		})
	}
	return out
}

// NumericGrid reruns the base GSFL cell under each registered numeric
// mode (PR 8). The exact-mode cell normalizes to a numeric-free spec,
// so it shares its job ID — and therefore its sweep-store entry — with
// the historical catalogue; only non-default modes add cells.
func NumericGrid(spec Spec, modes []string, rounds, evalEvery int) Grid {
	return Grid{
		Name: "numeric", Base: spec, Rounds: rounds, EvalEvery: evalEvery,
		Axes: Axes{Numerics: modes},
	}
}

// NumericResult is one numeric-mode cell's folded row.
type NumericResult struct {
	Mode          string
	RoundLatency  float64
	FinalAccuracy float64
}

// FoldNumeric derives the numeric-mode comparison rows. Both derived
// columns are simulation-deterministic — simulated latency and final
// accuracy, never host wall-clock — so the CSV stays byte-identical
// across harness worker counts even though the cells ran under
// different kernels.
func FoldNumeric(res []JobResult) []NumericResult {
	out := make([]NumericResult, 0, len(res))
	for _, r := range res {
		mode, err := env.CanonicalNumericMode(r.Job.Spec.Numeric)
		if err != nil {
			// The grid expansion already validated the name.
			panic(fmt.Sprintf("experiment: fold numeric: %v", err))
		}
		out = append(out, NumericResult{
			Mode:          mode,
			RoundLatency:  lastLatency(r.Curve) / float64(r.Job.Rounds),
			FinalAccuracy: r.Curve.FinalAccuracy(),
		})
	}
	return out
}

// SeedSweepGrid reruns one scheme across k seeds spaced as the
// historical seed-variance study spaced them.
func SeedSweepGrid(spec Spec, scheme string, seeds, rounds, evalEvery int) Grid {
	sv := make([]int64, seeds)
	for k := range sv {
		sv[k] = spec.Seed + int64(1000*k)
	}
	return Grid{
		Name: "seeds-" + scheme, Base: spec, Rounds: rounds, EvalEvery: evalEvery,
		Axes: Axes{Seeds: sv, Schemes: []string{scheme}},
	}
}

// FoldCurves extracts each result's training curve, in job order.
func FoldCurves(res []JobResult) []*metrics.Curve {
	out := make([]*metrics.Curve, len(res))
	for i, r := range res {
		out[i] = r.Curve
	}
	return out
}

// FoldTable1 derives the convergence-speed table from Fig. 2(a)'s
// curves: rounds to target accuracy per scheme and the speedup of GSFL
// over each.
func FoldTable1(curves []*metrics.Curve, target float64) *trace.Table {
	var gsflCurve *metrics.Curve
	for _, c := range curves {
		if c.Scheme == "gsfl" {
			gsflCurve = c
		}
	}
	tbl := trace.NewTable("table1-convergence",
		"scheme", "target_accuracy", "rounds_to_target", "reached", "speedup_vs_scheme_for_gsfl")
	for _, c := range curves {
		r, ok := c.RoundsToAccuracy(target)
		row := trace.Row{
			"scheme":          c.Scheme,
			"target_accuracy": target,
			"reached":         ok,
		}
		if ok {
			row["rounds_to_target"] = r
		}
		if s, sok := metrics.SpeedupVsRounds(gsflCurve, c, target); sok {
			row["speedup_vs_scheme_for_gsfl"] = fmt.Sprintf("%.2f", s)
		}
		tbl.Add(row)
	}
	return tbl
}

// FoldTable2 averages each scheme's summed ledger into the per-round
// latency and energy breakdown table.
func FoldTable2(res []JobResult) *trace.Table {
	tbl := trace.NewTable("table2-latency-breakdown",
		"scheme", "client_compute_s", "uplink_s", "server_compute_s",
		"downlink_s", "relay_s", "aggregation_s", "total_s",
		"client_energy_J", "server_energy_J")
	energy := simnet.DefaultEnergyModel()
	for _, r := range res {
		sum := r.Ledger
		inv := 1 / float64(r.Job.Rounds)
		tbl.Add(trace.Row{
			"scheme":           r.Job.Scheme,
			"client_compute_s": fmt.Sprintf("%.4f", sum.Get(simnet.ClientCompute)*inv),
			"uplink_s":         fmt.Sprintf("%.4f", sum.Get(simnet.Uplink)*inv),
			"server_compute_s": fmt.Sprintf("%.4f", sum.Get(simnet.ServerCompute)*inv),
			"downlink_s":       fmt.Sprintf("%.4f", sum.Get(simnet.Downlink)*inv),
			"relay_s":          fmt.Sprintf("%.4f", sum.Get(simnet.Relay)*inv),
			"aggregation_s":    fmt.Sprintf("%.4f", sum.Get(simnet.Aggregation)*inv),
			"total_s":          fmt.Sprintf("%.4f", sum.Total()*inv),
			"client_energy_J":  fmt.Sprintf("%.4f", energy.ClientEnergyJ(&sum)*inv),
			"server_energy_J":  fmt.Sprintf("%.4f", energy.ServerEnergyJ(&sum)*inv),
		})
	}
	return tbl
}

// probeSplit rebuilds the architecture probe the cut-layer ablation
// reports transfer/model sizes from, without materializing a dataset
// (the class count comes from a cheaply instantiated source). The rng
// only initializes weights, which the size accessors ignore; it is
// derived exactly as Build derives it so the probe is the same object
// the historical env-based code produced. The spec comes from an
// already-executed job, so resolution errors are programmer errors.
func probeSplit(s Spec) *model.SplitModel {
	s = s.Normalized()
	src, err := env.NewDataset(s.Dataset, env.DataConfig{ImageSize: s.ImageSize, Seed: s.Seed})
	if err != nil {
		panic(fmt.Sprintf("experiment: probe dataset: %v", err))
	}
	arch, err := env.NewArch(s.Arch, env.ArchConfig{ImageSize: s.ImageSize, Classes: src.Classes(), Seed: s.Seed})
	if err != nil {
		panic(fmt.Sprintf("experiment: probe arch: %v", err))
	}
	probeEnv := &schemes.Env{Seed: s.EnvSeed()}
	return arch.NewSplit(probeEnv.Rng("probe", 0), s.Cut)
}

// lastLatency returns the curve's final cumulative latency (0 when the
// curve is empty).
func lastLatency(c *metrics.Curve) float64 {
	if len(c.Points) == 0 {
		return 0
	}
	return c.Points[len(c.Points)-1].LatencySeconds
}

// FoldCutLayer derives the cut-layer ablation rows from each cell's
// curve plus a data-free architecture probe.
func FoldCutLayer(res []JobResult) []CutLayerResult {
	out := make([]CutLayerResult, 0, len(res))
	for _, r := range res {
		s := r.Job.Spec
		probe := probeSplit(s)
		out = append(out, CutLayerResult{
			Cut:           s.Cut,
			SmashedBytes:  probe.SmashedBytes(s.Hyper.Batch),
			ClientBytes:   probe.ClientParamBytes(),
			RoundLatency:  lastLatency(r.Curve) / float64(r.Job.Rounds),
			FinalAccuracy: r.Curve.FinalAccuracy(),
		})
	}
	return out
}

// FoldGrouping derives the grouping ablation rows.
func FoldGrouping(res []JobResult) []GroupingResult {
	out := make([]GroupingResult, 0, len(res))
	for _, r := range res {
		out = append(out, GroupingResult{
			Groups:        r.Job.Spec.Groups,
			Strategy:      r.Job.Spec.Strategy,
			RoundLatency:  lastLatency(r.Curve) / float64(r.Job.Rounds),
			FinalAccuracy: r.Curve.FinalAccuracy(),
		})
	}
	return out
}

// FoldAllocation derives the allocation ablation rows from the summed
// round latencies (the cells never needed accuracy). TotalSeconds is
// used rather than Ledger.Total() to keep the floating-point summation
// order of the historical per-round accumulation.
func FoldAllocation(res []JobResult) []AllocationResult {
	out := make([]AllocationResult, 0, len(res))
	for _, r := range res {
		out = append(out, AllocationResult{
			Allocator:    r.Job.Spec.Alloc, // canonical: grid expansion resolved it
			RoundLatency: r.TotalSeconds / float64(r.Job.Rounds),
		})
	}
	return out
}

// FoldPipelining derives the pipelining ablation rows.
func FoldPipelining(res []JobResult) []PipelineResult {
	out := make([]PipelineResult, 0, len(res))
	for _, r := range res {
		out = append(out, PipelineResult{
			Pipelined:     r.Job.Spec.Pipelined,
			RoundLatency:  lastLatency(r.Curve) / float64(r.Job.Rounds),
			FinalAccuracy: r.Curve.FinalAccuracy(),
		})
	}
	return out
}

// FoldQuantization derives the transfer-precision ablation rows.
func FoldQuantization(res []JobResult) []QuantResult {
	out := make([]QuantResult, 0, len(res))
	for _, r := range res {
		out = append(out, QuantResult{
			Quantized:     r.Job.Spec.Hyper.QuantizeTransfers,
			RoundLatency:  lastLatency(r.Curve) / float64(r.Job.Rounds),
			FinalAccuracy: r.Curve.FinalAccuracy(),
		})
	}
	return out
}

// FoldDropout derives the dropout robustness rows.
func FoldDropout(res []JobResult) []DropoutResult {
	out := make([]DropoutResult, 0, len(res))
	for _, r := range res {
		out = append(out, DropoutResult{
			DropoutProb:   r.Job.Spec.DropoutProb,
			RoundLatency:  lastLatency(r.Curve) / float64(r.Job.Rounds),
			FinalAccuracy: r.Curve.FinalAccuracy(),
		})
	}
	return out
}

// FoldNonIID derives the heterogeneity sweep rows.
func FoldNonIID(res []JobResult) []NonIIDResult {
	out := make([]NonIIDResult, 0, len(res))
	for _, r := range res {
		rounds, ok := r.Curve.RoundsToAccuracy(0.5)
		out = append(out, NonIIDResult{
			Alpha:         r.Job.Spec.Alpha,
			Scheme:        r.Job.Scheme,
			FinalAccuracy: r.Curve.FinalAccuracy(),
			RoundsToHalf:  rounds,
			ReachedHalf:   ok,
		})
	}
	return out
}

// FoldSeedStats summarizes a seed sweep's final accuracies.
func FoldSeedStats(res []JobResult) SeedStats {
	accs := make([]float64, 0, len(res))
	scheme := ""
	for _, r := range res {
		accs = append(accs, r.Curve.FinalAccuracy())
		scheme = r.Job.Scheme
	}
	st := SeedStats{Scheme: scheme, Seeds: len(accs), WorstAcc: accs[0], BestAcc: accs[0]}
	sum := 0.0
	for _, a := range accs {
		sum += a
		if a < st.WorstAcc {
			st.WorstAcc = a
		}
		if a > st.BestAcc {
			st.BestAcc = a
		}
	}
	st.MeanAcc = sum / float64(len(accs))
	ss := 0.0
	for _, a := range accs {
		d := a - st.MeanAcc
		ss += d * d
	}
	st.StdAcc = math.Sqrt(ss / float64(len(accs)))
	return st
}

// DefaultGroupCounts picks the grouping ablation's sweep of M values for
// n clients.
func DefaultGroupCounts(n int) []int {
	candidates := []int{1, 2, 3, 6, 10, 15, 30}
	var out []int
	for _, c := range candidates {
		if c <= n {
			out = append(out, c)
		}
	}
	return out
}

// GridExperiment is one named figure/table whose cells come from one or
// more Grids and whose output files come from folding the cells'
// results. Both harness CLIs (gsfl-bench, gsfl-sweep) iterate this
// catalogue, so they regenerate identical CSVs from identical jobs.
type GridExperiment struct {
	// Name is the -exp token ("fig2a", "grouping", …).
	Name string
	// Grids expand (concatenated, in order) into the experiment's jobs.
	// Most experiments are a single grid; the seed-variance study is one
	// seed grid per scheme.
	Grids []Grid
	// Save folds the results (in job order, aligned with Jobs()) and
	// writes the experiment's CSV file(s) under outDir.
	Save func(outDir string, res []JobResult) error
}

// Jobs expands the experiment's grids into one concatenated job list.
func (e GridExperiment) Jobs() ([]Job, error) {
	var out []Job
	for _, g := range e.Grids {
		jobs, err := g.Jobs()
		if err != nil {
			return nil, err
		}
		out = append(out, jobs...)
	}
	return out, nil
}

// GridSelection is a resolved -exp choice: the selected experiments,
// their concatenated job list, and the bookkeeping to slice scheduler
// results back per experiment. Both harness CLIs (gsfl-bench,
// gsfl-sweep) build and consume one, so the job concatenation and the
// result slicing — which the byte-identical-CSV contract depends on —
// have a single implementation.
type GridSelection struct {
	Experiments []GridExperiment
	Jobs        []Job
	counts      []int // Jobs per experiment, aligned with Experiments
}

// SelectGridExperiments filters the catalogue by an -exp token ("all"
// selects everything) and expands the chosen grids. Tokens matching no
// catalogue entry yield an empty selection; callers validate the token
// against their own accepted set first.
func SelectGridExperiments(catalogue []GridExperiment, name string) (GridSelection, error) {
	var sel GridSelection
	for _, e := range catalogue {
		if name != "all" && name != e.Name {
			continue
		}
		js, err := e.Jobs()
		if err != nil {
			return GridSelection{}, fmt.Errorf("%s: %w", e.Name, err)
		}
		sel.Experiments = append(sel.Experiments, e)
		sel.counts = append(sel.counts, len(js))
		sel.Jobs = append(sel.Jobs, js...)
	}
	return sel, nil
}

// Save folds each selected experiment over its slice of the results
// (which must align with Jobs, as a scheduler run over them returns)
// and writes its CSVs under outDir. saved, when non-nil, is called per
// experiment with its name and cell count.
func (s GridSelection) Save(outDir string, results []JobResult, saved func(name string, cells int)) error {
	if len(results) != len(s.Jobs) {
		return fmt.Errorf("experiment: %d results for %d selected jobs", len(results), len(s.Jobs))
	}
	off := 0
	for i, e := range s.Experiments {
		n := s.counts[i]
		if err := e.Save(outDir, results[off:off+n]); err != nil {
			return fmt.Errorf("%s: %w", e.Name, err)
		}
		if saved != nil {
			saved(e.Name, n)
		}
		off += n
	}
	return nil
}

// GridExperiments catalogues every grid-backed experiment at the given
// scale parameters, in the harness's canonical order. Table 3 (storage
// accounting) and the event-driven latency validation run no training
// rounds and stay outside the catalogue.
func GridExperiments(spec Spec, rounds, evalEvery int, target float64) []GridExperiment {
	return []GridExperiment{
		{
			Name:  "fig2a",
			Grids: []Grid{Fig2aGrid(spec, rounds, evalEvery)},
			Save: func(outDir string, res []JobResult) error {
				return trace.SaveCurvesCSV(filepath.Join(outDir, "fig2a.csv"), FoldCurves(res))
			},
		},
		{
			Name:  "fig2b",
			Grids: []Grid{Fig2bGrid(spec, rounds, evalEvery)},
			Save: func(outDir string, res []JobResult) error {
				return trace.SaveCurvesCSV(filepath.Join(outDir, "fig2b.csv"), FoldCurves(res))
			},
		},
		{
			Name:  "table1",
			Grids: []Grid{Fig2aGrid(spec, rounds, evalEvery)}, // same cells as fig2a; the scheduler dedups
			Save: func(outDir string, res []JobResult) error {
				curves := FoldCurves(res)
				if err := trace.SaveCurvesCSV(filepath.Join(outDir, "table1_curves.csv"), curves); err != nil {
					return err
				}
				return FoldTable1(curves, target).SaveCSV(filepath.Join(outDir, "table1.csv"))
			},
		},
		{
			Name:  "table2",
			Grids: []Grid{Table2Grid(spec, rounds)},
			Save: func(outDir string, res []JobResult) error {
				return FoldTable2(res).SaveCSV(filepath.Join(outDir, "table2.csv"))
			},
		},
		{
			Name:  "cutlayer",
			Grids: []Grid{CutLayerGrid(spec, []int{1, 3, 6, 9}, rounds, evalEvery)},
			Save: func(outDir string, res []JobResult) error {
				tbl := trace.NewTable("ablation-cutlayer",
					"cut", "smashed_bytes_per_batch", "client_model_bytes", "round_latency_s", "final_accuracy")
				for _, x := range FoldCutLayer(res) {
					tbl.Add(trace.Row{
						"cut":                     x.Cut,
						"smashed_bytes_per_batch": x.SmashedBytes,
						"client_model_bytes":      x.ClientBytes,
						"round_latency_s":         fmt.Sprintf("%.4f", x.RoundLatency),
						"final_accuracy":          fmt.Sprintf("%.4f", x.FinalAccuracy),
					})
				}
				return tbl.SaveCSV(filepath.Join(outDir, "ablation_cutlayer.csv"))
			},
		},
		{
			Name: "grouping",
			Grids: []Grid{GroupingGrid(spec, DefaultGroupCounts(spec.Clients), []string{
				"round-robin", "random", "compute-balanced",
			}, rounds, evalEvery)},
			Save: func(outDir string, res []JobResult) error {
				tbl := trace.NewTable("ablation-grouping",
					"groups", "strategy", "round_latency_s", "final_accuracy")
				for _, x := range FoldGrouping(res) {
					tbl.Add(trace.Row{
						"groups":          x.Groups,
						"strategy":        x.Strategy,
						"round_latency_s": fmt.Sprintf("%.4f", x.RoundLatency),
						"final_accuracy":  fmt.Sprintf("%.4f", x.FinalAccuracy),
					})
				}
				return tbl.SaveCSV(filepath.Join(outDir, "ablation_grouping.csv"))
			},
		},
		{
			Name:  "resalloc",
			Grids: []Grid{AllocationGrid(spec, rounds)},
			Save: func(outDir string, res []JobResult) error {
				tbl := trace.NewTable("ablation-resalloc", "allocator", "round_latency_s")
				for _, x := range FoldAllocation(res) {
					tbl.Add(trace.Row{
						"allocator":       x.Allocator,
						"round_latency_s": fmt.Sprintf("%.4f", x.RoundLatency),
					})
				}
				return tbl.SaveCSV(filepath.Join(outDir, "ablation_resalloc.csv"))
			},
		},
		{
			Name:  "pipeline",
			Grids: []Grid{PipelineGrid(spec, rounds, evalEvery)},
			Save: func(outDir string, res []JobResult) error {
				tbl := trace.NewTable("ablation-pipeline", "pipelined", "round_latency_s", "final_accuracy")
				for _, x := range FoldPipelining(res) {
					tbl.Add(trace.Row{
						"pipelined":       x.Pipelined,
						"round_latency_s": fmt.Sprintf("%.4f", x.RoundLatency),
						"final_accuracy":  fmt.Sprintf("%.4f", x.FinalAccuracy),
					})
				}
				return tbl.SaveCSV(filepath.Join(outDir, "ablation_pipeline.csv"))
			},
		},
		{
			Name:  "quant",
			Grids: []Grid{QuantGrid(spec, rounds, evalEvery)},
			Save: func(outDir string, res []JobResult) error {
				tbl := trace.NewTable("ablation-quant", "quantized", "round_latency_s", "final_accuracy")
				for _, x := range FoldQuantization(res) {
					tbl.Add(trace.Row{
						"quantized":       x.Quantized,
						"round_latency_s": fmt.Sprintf("%.4f", x.RoundLatency),
						"final_accuracy":  fmt.Sprintf("%.4f", x.FinalAccuracy),
					})
				}
				return tbl.SaveCSV(filepath.Join(outDir, "ablation_quant.csv"))
			},
		},
		{
			Name:  "dropout",
			Grids: []Grid{DropoutGrid(spec, []float64{0, 0.1, 0.2, 0.3}, rounds, evalEvery)},
			Save: func(outDir string, res []JobResult) error {
				tbl := trace.NewTable("ablation-dropout", "dropout_prob", "round_latency_s", "final_accuracy")
				for _, x := range FoldDropout(res) {
					tbl.Add(trace.Row{
						"dropout_prob":    fmt.Sprintf("%.2f", x.DropoutProb),
						"round_latency_s": fmt.Sprintf("%.4f", x.RoundLatency),
						"final_accuracy":  fmt.Sprintf("%.4f", x.FinalAccuracy),
					})
				}
				return tbl.SaveCSV(filepath.Join(outDir, "ablation_dropout.csv"))
			},
		},
		{
			Name:  "noniid",
			Grids: []Grid{NonIIDGrid(spec, []float64{0.1, 1, 100}, rounds, evalEvery)},
			Save: func(outDir string, res []JobResult) error {
				tbl := trace.NewTable("ablation-noniid",
					"alpha", "scheme", "final_accuracy", "rounds_to_50pct", "reached")
				for _, x := range FoldNonIID(res) {
					tbl.Add(trace.Row{
						"alpha":           fmt.Sprintf("%g", x.Alpha),
						"scheme":          x.Scheme,
						"final_accuracy":  fmt.Sprintf("%.4f", x.FinalAccuracy),
						"rounds_to_50pct": x.RoundsToHalf,
						"reached":         x.ReachedHalf,
					})
				}
				return tbl.SaveCSV(filepath.Join(outDir, "ablation_noniid.csv"))
			},
		},
		{
			Name:  "popsample",
			Grids: []Grid{PopSampleGrid(spec, DefaultPopFractions(), []int{2, 6}, rounds, evalEvery)},
			Save: func(outDir string, res []JobResult) error {
				tbl := trace.NewTable("popsample",
					"fraction", "population", "cohort", "groups", "round_latency_s", "final_accuracy")
				for _, x := range FoldPopSample(res) {
					tbl.Add(trace.Row{
						"fraction":        fmt.Sprintf("%g", x.Fraction),
						"population":      x.Population,
						"cohort":          x.Cohort,
						"groups":          x.Groups,
						"round_latency_s": fmt.Sprintf("%.4f", x.RoundLatency),
						"final_accuracy":  fmt.Sprintf("%.4f", x.FinalAccuracy),
					})
				}
				return tbl.SaveCSV(filepath.Join(outDir, "popsample.csv"))
			},
		},
		{
			Name: "seeds",
			Grids: []Grid{
				SeedSweepGrid(spec, "gsfl", seedsPerScheme, rounds, evalEvery),
				SeedSweepGrid(spec, "sl", seedsPerScheme, rounds, evalEvery),
				SeedSweepGrid(spec, "fl", seedsPerScheme, rounds, evalEvery),
			},
			Save: func(outDir string, res []JobResult) error {
				tbl := trace.NewTable("seed-variance",
					"scheme", "seeds", "mean_acc", "std_acc", "worst_acc", "best_acc")
				for i := 0; i+seedsPerScheme <= len(res); i += seedsPerScheme {
					st := FoldSeedStats(res[i : i+seedsPerScheme])
					tbl.Add(trace.Row{
						"scheme":    st.Scheme,
						"seeds":     st.Seeds,
						"mean_acc":  fmt.Sprintf("%.4f", st.MeanAcc),
						"std_acc":   fmt.Sprintf("%.4f", st.StdAcc),
						"worst_acc": fmt.Sprintf("%.4f", st.WorstAcc),
						"best_acc":  fmt.Sprintf("%.4f", st.BestAcc),
					})
				}
				return tbl.SaveCSV(filepath.Join(outDir, "seed_variance.csv"))
			},
		},
		{
			Name:  "numeric",
			Grids: []Grid{NumericGrid(spec, env.NumericModes(), rounds, evalEvery)},
			Save: func(outDir string, res []JobResult) error {
				tbl := trace.NewTable("numeric-modes",
					"numeric", "round_latency_s", "final_accuracy")
				for _, x := range FoldNumeric(res) {
					tbl.Add(trace.Row{
						"numeric":         x.Mode,
						"round_latency_s": fmt.Sprintf("%.4f", x.RoundLatency),
						"final_accuracy":  fmt.Sprintf("%.4f", x.FinalAccuracy),
					})
				}
				return tbl.SaveCSV(filepath.Join(outDir, "numeric.csv"))
			},
		},
	}
}

// seedsPerScheme is the seed-variance study's per-scheme seed count.
const seedsPerScheme = 3
