package experiment

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"strings"

	"gsfl/env"
	"gsfl/internal/device"
	"gsfl/internal/metrics"
	"gsfl/internal/schemes"
	"gsfl/internal/simnet"
	"gsfl/internal/tensor"
	"gsfl/internal/wireless"
	"gsfl/sim"
)

// Grid is a declarative experiment sweep: a base Spec plus one value
// list per swept dimension. Jobs expands it into the cross product of
// all non-empty axes, one Job per cell, in a canonical order (see Axes).
// A Grid is the unit the sweep engine (gsfl/sweep) schedules; every
// figure and ablation of the paper harness is expressed as one.
type Grid struct {
	// Name prefixes the expanded job names ("fig2a", "grouping", …).
	Name string `json:"name"`
	// Base is the configuration every cell starts from; axes override
	// individual fields. It is not part of the JSON grid-file format —
	// files select a base via scale (see cmd/gsfl-sweep).
	Base Spec `json:"-"`
	// Rounds and EvalEvery drive every cell's run.
	Rounds    int `json:"rounds"`
	EvalEvery int `json:"eval_every"`
	// Axes are the swept dimensions.
	Axes Axes `json:"axes"`
}

// Axes lists the values each swept dimension takes. An empty axis keeps
// the base Spec's value. Expansion nests the axes in declaration order —
// Seeds outermost, Schemes innermost — so single-axis grids enumerate in
// the order given and multi-axis grids match the paper harness's
// historical loop nesting (groups over strategies, alphas over schemes).
// Extension-point axes (Strategies, Allocators, Datasets, Archs) carry
// registered names, so grids serialize to JSON; aliases resolve through
// the env registries and are canonicalized before hashing.
type Axes struct {
	Seeds      []int64   `json:"seeds,omitempty"`
	Alphas     []float64 `json:"alphas,omitempty"`
	Cuts       []int     `json:"cuts,omitempty"`
	Groups     []int     `json:"groups,omitempty"`
	Strategies []string  `json:"strategies,omitempty"`
	Allocators []string  `json:"allocators,omitempty"`
	Dropouts   []float64 `json:"dropouts,omitempty"`
	Quantized  []bool    `json:"quantized,omitempty"`
	Pipelined  []bool    `json:"pipelined,omitempty"`
	Datasets   []string  `json:"datasets,omitempty"`
	Archs      []string  `json:"archs,omitempty"`
	// Population axes sweep the persistent-population dimensions from
	// PR 7: total member count, per-round sampling fraction, and the
	// availability trace members follow.
	Populations     []int     `json:"populations,omitempty"`
	SampleFractions []float64 `json:"sample_fractions,omitempty"`
	AvailTraces     []string  `json:"avail_traces,omitempty"`
	// Numerics sweeps the registered numeric modes the kernels run
	// under ("exact", "fast", …); the default-mode cell hashes exactly
	// like a spec that never mentions numerics.
	Numerics []string `json:"numerics,omitempty"`
	// Schemes defaults to ["gsfl"], the subject of every ablation.
	Schemes []string `json:"schemes,omitempty"`
}

// Job is one expanded grid cell: a complete, self-contained run
// request. ID is a stable content hash of everything that shapes the
// run's results — two jobs with equal IDs produce bit-identical curves,
// which is what lets a sweep store skip completed work and lets
// overlapping grids (fig2a and table1 share all four cells) deduplicate.
type Job struct {
	// ID is the 16-hex-digit content hash of the job identity.
	ID string `json:"id"`
	// Name is the human-readable cell label: the grid name plus the
	// swept axis values ("grouping/groups=6,strategy=random").
	Name string `json:"name"`
	// Scheme is the registry name of the scheme to train.
	Scheme string `json:"scheme"`
	// Spec is the cell's complete world configuration.
	Spec Spec `json:"-"`
	// Rounds and EvalEvery drive the cell's Runner.
	Rounds    int `json:"rounds"`
	EvalEvery int `json:"eval_every"`
}

// jobIdentity is the canonical encoding hashed into a Job ID: every
// field that shapes training numerics or latency pricing, spelled out
// explicitly so the hash does not silently change shape with Spec
// refactors. Interface-typed Spec fields are captured by name.
type jobIdentity struct {
	Scheme         string
	Rounds         int
	EvalEvery      int
	Clients        int
	Groups         int
	Strategy       string
	ImageSize      int
	TrainPerClient int
	TestPerClass   int
	Alpha          float64
	Cut            int
	Hyper          schemes.Hyper
	Alloc          string
	Device         device.Config
	Wireless       wireless.Config
	Seed           int64
	Pipelined      bool
	DropoutProb    float64
}

// hashJob derives the stable content ID of a (scheme, spec, rounds,
// evalEvery) cell. Extension names are canonicalized through the env
// registries before hashing, so a spec saying "propfair" and one saying
// "proportional-fair" are the same cell.
func hashJob(scheme string, s Spec, rounds, evalEvery int) (string, error) {
	if s.Alloc == "" {
		return "", fmt.Errorf("experiment: job spec has no allocator")
	}
	s = s.Normalized()
	alloc, err := env.CanonicalAllocator(s.Alloc)
	if err != nil {
		return "", fmt.Errorf("experiment: job identity: %w", err)
	}
	strategy, err := env.CanonicalStrategy(s.Strategy)
	if err != nil {
		return "", fmt.Errorf("experiment: job identity: %w", err)
	}
	id := jobIdentity{
		Scheme:         scheme,
		Rounds:         rounds,
		EvalEvery:      evalEvery,
		Clients:        s.Clients,
		Groups:         s.Groups,
		Strategy:       strategy,
		ImageSize:      s.ImageSize,
		TrainPerClient: s.TrainPerClient,
		TestPerClass:   s.TestPerClass,
		Alpha:          s.Alpha,
		Cut:            s.Cut,
		Hyper:          s.Hyper,
		Alloc:          alloc,
		Device:         s.Device,
		Wireless:       s.Wireless,
		Seed:           s.Seed,
		Pipelined:      s.Pipelined,
		DropoutProb:    s.DropoutProb,
	}
	buf, err := json.Marshal(id) // struct field order is fixed => deterministic bytes
	if err != nil {
		return "", fmt.Errorf("experiment: encoding job identity: %w", err)
	}
	h := fnv.New64a()
	_, _ = h.Write(buf)
	// The dataset and architecture joined the identity after the format
	// above was pinned; they extend the hash only when non-default, so
	// every historical job keeps its historical ID.
	if s.Dataset != env.DefaultDataset || s.Arch != env.DefaultArch {
		ext, err := json.Marshal(struct{ Dataset, Arch string }{s.Dataset, s.Arch})
		if err != nil {
			return "", fmt.Errorf("experiment: encoding job identity extension: %w", err)
		}
		_, _ = h.Write(ext)
	}
	// The population fields joined later still (PR 7); same rule — only a
	// spec that actually configures a population extends the hash, so
	// population-free jobs keep their historical IDs.
	if s.Population != 0 {
		trace, err := env.CanonicalAvailTrace(s.AvailTrace)
		if err != nil {
			return "", fmt.Errorf("experiment: job identity: %w", err)
		}
		ext, err := json.Marshal(struct {
			Population     int
			SampleFraction float64
			AvailTrace     string
			ProfileMix     string
		}{s.Population, s.SampleFraction, trace, s.DeviceProfileMix})
		if err != nil {
			return "", fmt.Errorf("experiment: encoding job identity extension: %w", err)
		}
		_, _ = h.Write(ext)
	}
	// The numeric mode (PR 8) extends the hash only when it is not the
	// default, so every exact-mode job — the entire historical catalogue —
	// keeps its historical ID.
	numeric, err := env.CanonicalNumericMode(s.Numeric)
	if err != nil {
		return "", fmt.Errorf("experiment: job identity: %w", err)
	}
	if numeric != env.DefaultNumericMode {
		ext, err := json.Marshal(struct{ Numeric string }{numeric})
		if err != nil {
			return "", fmt.Errorf("experiment: encoding job identity extension: %w", err)
		}
		_, _ = h.Write(ext)
	}
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// RehashJob recomputes a job's content-hash ID from its fields — the
// integrity check a fleet worker runs on a job received over the wire:
// a decoded job whose recomputed hash differs from its claimed ID was
// corrupted (or built by a coordinator with drifted identity rules) and
// must not execute under the claimed identity.
func RehashJob(j Job) (string, error) {
	return hashJob(j.Scheme, j.Spec, j.Rounds, j.EvalEvery)
}

// canonicalizeSpec rewrites the spec's extension names to their
// canonical registry forms (empty strategy/dataset/arch to defaults,
// aliases like "propfair" to "proportional-fair"). An empty allocator
// is left for hashJob's dedicated error.
func canonicalizeSpec(s *Spec) error {
	*s = s.Normalized()
	if s.Alloc != "" {
		alloc, err := env.CanonicalAllocator(s.Alloc)
		if err != nil {
			return err
		}
		s.Alloc = alloc
	}
	strategy, err := env.CanonicalStrategy(s.Strategy)
	if err != nil {
		return err
	}
	s.Strategy = strategy
	if _, err := env.CanonicalDataset(s.Dataset); err != nil {
		return err
	}
	if _, err := env.CanonicalArch(s.Arch); err != nil {
		return err
	}
	if s.Population > 0 {
		if _, err := env.CanonicalAvailTrace(s.AvailTrace); err != nil {
			return err
		}
	}
	if _, err := env.CanonicalNumericMode(s.Numeric); err != nil {
		return err
	}
	return nil
}

// axis is one expanded dimension: a key for labels and one apply
// function per value.
type axis struct {
	key  string
	vals []axisVal
}

type axisVal struct {
	label string
	apply func(j *Job) error
}

// axes assembles the expansion plan in canonical nesting order.
func (g Grid) axes() []axis {
	var out []axis
	add := func(key string, n int, label func(i int) string, apply func(j *Job, i int) error) {
		if n == 0 {
			return
		}
		a := axis{key: key}
		for i := 0; i < n; i++ {
			i := i
			a.vals = append(a.vals, axisVal{
				label: fmt.Sprintf("%s=%s", key, label(i)),
				apply: func(j *Job) error { return apply(j, i) },
			})
		}
		out = append(out, a)
	}
	add("seed", len(g.Axes.Seeds),
		func(i int) string { return fmt.Sprintf("%d", g.Axes.Seeds[i]) },
		func(j *Job, i int) error { j.Spec.Seed = g.Axes.Seeds[i]; return nil })
	add("alpha", len(g.Axes.Alphas),
		func(i int) string { return fmt.Sprintf("%g", g.Axes.Alphas[i]) },
		func(j *Job, i int) error { j.Spec.Alpha = g.Axes.Alphas[i]; return nil })
	add("cut", len(g.Axes.Cuts),
		func(i int) string { return fmt.Sprintf("%d", g.Axes.Cuts[i]) },
		func(j *Job, i int) error { j.Spec.Cut = g.Axes.Cuts[i]; return nil })
	add("groups", len(g.Axes.Groups),
		func(i int) string { return fmt.Sprintf("%d", g.Axes.Groups[i]) },
		func(j *Job, i int) error { j.Spec.Groups = g.Axes.Groups[i]; return nil })
	add("strategy", len(g.Axes.Strategies),
		func(i int) string { return g.Axes.Strategies[i] },
		func(j *Job, i int) error {
			st, err := env.CanonicalStrategy(g.Axes.Strategies[i])
			if err != nil {
				return err
			}
			j.Spec.Strategy = st
			return nil
		})
	add("alloc", len(g.Axes.Allocators),
		func(i int) string { return g.Axes.Allocators[i] },
		func(j *Job, i int) error {
			al, err := env.CanonicalAllocator(g.Axes.Allocators[i])
			if err != nil {
				return err
			}
			j.Spec.Alloc = al
			return nil
		})
	add("dropout", len(g.Axes.Dropouts),
		func(i int) string { return fmt.Sprintf("%g", g.Axes.Dropouts[i]) },
		func(j *Job, i int) error { j.Spec.DropoutProb = g.Axes.Dropouts[i]; return nil })
	add("quant", len(g.Axes.Quantized),
		func(i int) string { return fmt.Sprintf("%t", g.Axes.Quantized[i]) },
		func(j *Job, i int) error { j.Spec.Hyper.QuantizeTransfers = g.Axes.Quantized[i]; return nil })
	add("pipe", len(g.Axes.Pipelined),
		func(i int) string { return fmt.Sprintf("%t", g.Axes.Pipelined[i]) },
		func(j *Job, i int) error { j.Spec.Pipelined = g.Axes.Pipelined[i]; return nil })
	add("dataset", len(g.Axes.Datasets),
		func(i int) string { return g.Axes.Datasets[i] },
		func(j *Job, i int) error {
			name, err := env.CanonicalDataset(g.Axes.Datasets[i])
			if err != nil {
				return err
			}
			j.Spec.Dataset = name
			return nil
		})
	add("arch", len(g.Axes.Archs),
		func(i int) string { return g.Axes.Archs[i] },
		func(j *Job, i int) error {
			name, err := env.CanonicalArch(g.Axes.Archs[i])
			if err != nil {
				return err
			}
			j.Spec.Arch = name
			return nil
		})
	add("pop", len(g.Axes.Populations),
		func(i int) string { return fmt.Sprintf("%d", g.Axes.Populations[i]) },
		func(j *Job, i int) error { j.Spec.Population = g.Axes.Populations[i]; return nil })
	add("frac", len(g.Axes.SampleFractions),
		func(i int) string { return fmt.Sprintf("%g", g.Axes.SampleFractions[i]) },
		func(j *Job, i int) error { j.Spec.SampleFraction = g.Axes.SampleFractions[i]; return nil })
	add("trace", len(g.Axes.AvailTraces),
		func(i int) string { return g.Axes.AvailTraces[i] },
		func(j *Job, i int) error {
			name, err := env.CanonicalAvailTrace(g.Axes.AvailTraces[i])
			if err != nil {
				return err
			}
			j.Spec.AvailTrace = name
			return nil
		})
	add("numeric", len(g.Axes.Numerics),
		func(i int) string { return g.Axes.Numerics[i] },
		func(j *Job, i int) error {
			name, err := env.CanonicalNumericMode(g.Axes.Numerics[i])
			if err != nil {
				return err
			}
			// canonicalizeSpec's Normalized folds the default back to "",
			// so the exact-mode cell dedups against numeric-free grids.
			j.Spec.Numeric = name
			return nil
		})
	schemesAxis := g.Axes.Schemes
	if len(schemesAxis) == 0 {
		schemesAxis = []string{"gsfl"}
	}
	add("scheme", len(schemesAxis),
		func(i int) string { return schemesAxis[i] },
		func(j *Job, i int) error { j.Scheme = schemesAxis[i]; return nil })
	return out
}

// Jobs expands the grid into its cells, outermost axis first. Axis value
// order is preserved, so a single-axis grid enumerates exactly as
// written. Every job gets a content-hash ID and a name listing the
// values of axes that sweep more than one value.
func (g Grid) Jobs() ([]Job, error) {
	if g.Rounds <= 0 {
		return nil, fmt.Errorf("experiment: grid %q needs positive rounds, got %d", g.Name, g.Rounds)
	}
	if g.EvalEvery <= 0 {
		return nil, fmt.Errorf("experiment: grid %q needs positive eval cadence, got %d", g.Name, g.EvalEvery)
	}
	axes := g.axes()
	var jobs []Job
	var expand func(prefix []string, applied []func(j *Job) error, depth int) error
	expand = func(prefix []string, applied []func(j *Job) error, depth int) error {
		if depth == len(axes) {
			j := Job{Name: g.Name, Spec: g.Base, Rounds: g.Rounds, EvalEvery: g.EvalEvery}
			for _, apply := range applied {
				if err := apply(&j); err != nil {
					return fmt.Errorf("experiment: grid %q: %w", g.Name, err)
				}
			}
			if len(prefix) > 0 {
				j.Name += "/" + strings.Join(prefix, ",")
			}
			// The job carries the canonical spec (alias names from a grid
			// file's base patch resolved, defaults filled in), so folds,
			// stores, and logs all record one spelling per extension.
			if err := canonicalizeSpec(&j.Spec); err != nil {
				return fmt.Errorf("experiment: grid %q cell %s: %w", g.Name, j.Name, err)
			}
			id, err := hashJob(j.Scheme, j.Spec, j.Rounds, j.EvalEvery)
			if err != nil {
				return fmt.Errorf("experiment: grid %q cell %s: %w", g.Name, j.Name, err)
			}
			j.ID = id
			jobs = append(jobs, j)
			return nil
		}
		a := axes[depth]
		for _, v := range a.vals {
			p := prefix
			if len(a.vals) > 1 {
				p = append(p[:len(p):len(p)], v.label)
			}
			if err := expand(p, append(applied[:len(applied):len(applied)], v.apply), depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := expand(nil, nil, 0); err != nil {
		return nil, err
	}
	return jobs, nil
}

// JobResult is one completed cell: the training curve plus the summed
// per-component latency ledger over every executed round (the breakdown
// the latency tables fold over). TotalSeconds accumulates each round's
// critical-path total in round order — numerically it is Ledger.Total()
// in a different floating-point summation order, kept separate so folds
// reproduce the historical per-round accumulation bit for bit.
type JobResult struct {
	Job          Job
	Curve        *metrics.Curve
	Ledger       simnet.Ledger
	TotalSeconds float64
}

// resultObserver accumulates every round's ledger and total into res.
func resultObserver(res *JobResult) sim.RunOption {
	return sim.WithObserver(sim.ObserverFunc(func(e sim.RoundEvent) {
		res.Ledger.Merge(e.Ledger)
		res.TotalSeconds += e.RoundSeconds
	}))
}

// RunJob executes one cell from scratch: build the world, construct the
// scheme, drive the Runner. Extra options (observers, checkpointing)
// are appended to the job's own rounds/cadence configuration. This is
// the single job-execution path shared by the serial harness (RunGrid)
// and the concurrent scheduler (gsfl/sweep).
func RunJob(ctx context.Context, j Job, opts ...sim.RunOption) (JobResult, error) {
	// The numeric mode is a process-global kernel switch: hold it for
	// the job's duration so concurrent same-mode jobs proceed together
	// while a mixed exact/fast grid serializes only at mode boundaries.
	release, err := tensor.AcquireNumericMode(j.Spec.Numeric)
	if err != nil {
		return JobResult{}, fmt.Errorf("experiment: job %s: %w", j.Name, err)
	}
	defer release()
	world, err := Build(j.Spec)
	if err != nil {
		return JobResult{}, fmt.Errorf("experiment: job %s: %w", j.Name, err)
	}
	schemeOpts, err := j.Spec.SchemeOptions()
	if err != nil {
		return JobResult{}, fmt.Errorf("experiment: job %s: %w", j.Name, err)
	}
	tr, err := sim.New(j.Scheme, world, schemeOpts)
	if err != nil {
		return JobResult{}, fmt.Errorf("experiment: job %s: %w", j.Name, err)
	}
	res := JobResult{Job: j}
	ropts := append([]sim.RunOption{
		sim.WithRounds(j.Rounds),
		sim.WithEvalEvery(j.EvalEvery),
		resultObserver(&res),
	}, opts...)
	res.Curve, err = sim.NewRunner(tr, ropts...).Run(ctx)
	if err != nil {
		return JobResult{}, fmt.Errorf("experiment: job %s: %w", j.Name, err)
	}
	return res, nil
}

// ResumeJob continues a cell from a sim checkpoint written by an earlier
// (killed) execution of the same job. prior and priorTotal seed the
// ledger/total accumulators with the already-completed rounds' sums
// (persisted by the sweep store alongside the checkpoint): seeding —
// rather than merging afterwards — keeps the floating-point addition
// order identical to an uninterrupted run, so the resumed result is bit
// identical. startRound reports how many rounds the checkpoint had
// completed; callers must ensure prior covers exactly those rounds.
func ResumeJob(ctx context.Context, j Job, ckptPath string, prior simnet.Ledger, priorTotal float64, opts ...sim.RunOption) (res JobResult, startRound int, err error) {
	release, err := tensor.AcquireNumericMode(j.Spec.Numeric)
	if err != nil {
		return JobResult{}, 0, fmt.Errorf("experiment: job %s: %w", j.Name, err)
	}
	defer release()
	world, err := Build(j.Spec)
	if err != nil {
		return JobResult{}, 0, fmt.Errorf("experiment: job %s: %w", j.Name, err)
	}
	res = JobResult{Job: j, Ledger: prior, TotalSeconds: priorTotal}
	ropts := append([]sim.RunOption{
		sim.WithRounds(j.Rounds),
		sim.WithEvalEvery(j.EvalEvery),
		resultObserver(&res),
	}, opts...)
	r, err := sim.Resume(ckptPath, world, ropts...)
	if err != nil {
		return JobResult{}, 0, fmt.Errorf("experiment: job %s: %w", j.Name, err)
	}
	if r.Scheme() != j.Scheme {
		return JobResult{}, 0, fmt.Errorf("experiment: job %s: checkpoint trains %q, job wants %q", j.Name, r.Scheme(), j.Scheme)
	}
	startRound = r.CompletedRounds()
	res.Curve, err = r.Run(ctx)
	if err != nil {
		return JobResult{}, startRound, fmt.Errorf("experiment: job %s: %w", j.Name, err)
	}
	return res, startRound, nil
}

// RunGrid expands and executes a grid serially, in job order — the
// one-worker reference execution every concurrent schedule must match
// bit-for-bit. Use gsfl/sweep's Scheduler to run the same jobs
// concurrently with a store, resume, and progress events.
func RunGrid(ctx context.Context, g Grid) ([]JobResult, error) {
	jobs, err := g.Jobs()
	if err != nil {
		return nil, err
	}
	out := make([]JobResult, len(jobs))
	for i, j := range jobs {
		if out[i], err = RunJob(ctx, j); err != nil {
			return nil, err
		}
	}
	return out, nil
}
