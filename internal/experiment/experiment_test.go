package experiment

import (
	"strconv"
	"testing"

	"gsfl/internal/gsfl"
	"gsfl/internal/metrics"
	"gsfl/internal/partition"
	"gsfl/internal/schemes/fl"
	"gsfl/internal/schemes/schemestest"
)

func TestBuildProducesValidEnv(t *testing.T) {
	env, err := Build(TestSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(env.Train) != 6 {
		t.Fatalf("train partitions = %d", len(env.Train))
	}
	total := 0
	for _, d := range env.Train {
		total += d.Len()
	}
	if total != 6*40 {
		t.Fatalf("total training samples = %d, want 240", total)
	}
}

func TestBuildIIDWhenAlphaZero(t *testing.T) {
	spec := TestSpec()
	spec.Alpha = 0
	env, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	// IID split: every client has the same sample count (240/6 = 40).
	for i, d := range env.Train {
		if d.Len() != 40 {
			t.Fatalf("client %d has %d samples under IID", i, d.Len())
		}
	}
}

func TestBuildValidation(t *testing.T) {
	bad := TestSpec()
	bad.Groups = 100
	if _, err := Build(bad); err == nil {
		t.Fatal("expected error for M > N")
	}
	bad2 := TestSpec()
	bad2.Alloc = ""
	if _, err := Build(bad2); err == nil {
		t.Fatal("expected error for missing allocator")
	}
	bad3 := TestSpec()
	bad3.Alloc = "no-such-policy"
	if _, err := Build(bad3); err == nil {
		t.Fatal("expected error for unknown allocator")
	}
}

func TestNewTrainerAllSchemes(t *testing.T) {
	for _, scheme := range []string{"gsfl", "sl", "fl", "cl", "sfl"} {
		tr, err := NewTrainer(TestSpec(), scheme)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if tr.Name() != scheme {
			t.Fatalf("trainer name %q, want %q", tr.Name(), scheme)
		}
	}
	if _, err := NewTrainer(TestSpec(), "bogus"); err == nil {
		t.Fatal("expected error for unknown scheme")
	}
}

func TestRunSchemeDeterministic(t *testing.T) {
	spec := TestSpec()
	c1, err := RunScheme(spec, "gsfl", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := RunScheme(spec, "gsfl", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range c1.Points {
		if c1.Points[i] != c2.Points[i] {
			t.Fatalf("nondeterministic experiment at point %d", i)
		}
	}
}

func TestFig2aShape(t *testing.T) {
	curves, err := RunFig2a(TestSpec(), 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 4 {
		t.Fatalf("fig2a needs 4 curves, got %d", len(curves))
	}
	want := map[string]bool{"cl": true, "sl": true, "gsfl": true, "fl": true}
	for _, c := range curves {
		if !want[c.Scheme] {
			t.Fatalf("unexpected scheme %q", c.Scheme)
		}
		if len(c.Points) != 3 {
			t.Fatalf("%s has %d points, want 3", c.Scheme, len(c.Points))
		}
		if !c.IsFinite() {
			t.Fatalf("%s curve has non-finite values", c.Scheme)
		}
	}
}

func TestFig2bLatencyOrdering(t *testing.T) {
	// The paper's headline: GSFL accumulates training latency more slowly
	// than SL. At any common round index, GSFL's cumulative latency must
	// be lower.
	curves, err := RunFig2b(TestSpec(), 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	var gsflC, slC *metrics.Curve
	for _, c := range curves {
		switch c.Scheme {
		case "gsfl":
			gsflC = c
		case "sl":
			slC = c
		}
	}
	for i := range gsflC.Points {
		g, s := gsflC.Points[i], slC.Points[i]
		if g.LatencySeconds >= s.LatencySeconds {
			t.Fatalf("round %d: GSFL latency %v not below SL %v",
				g.Round, g.LatencySeconds, s.LatencySeconds)
		}
	}
}

func TestTable2LatencyBreakdown(t *testing.T) {
	tbl, err := RunTable2(TestSpec(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("table2 rows = %d, want 5 schemes", len(tbl.Rows))
	}
	totals := map[string]float64{}
	for _, r := range tbl.Rows {
		v, err := strconv.ParseFloat(r["total_s"].(string), 64)
		if err != nil {
			t.Fatal(err)
		}
		totals[r["scheme"].(string)] = v
	}
	// Headline orderings: GSFL beats SL; CL (server-only) is cheapest.
	if totals["gsfl"] >= totals["sl"] {
		t.Fatalf("GSFL per-round latency %v not below SL %v", totals["gsfl"], totals["sl"])
	}
	if totals["cl"] >= totals["gsfl"] {
		t.Fatalf("CL per-round latency %v should be smallest (got gsfl=%v)", totals["cl"], totals["gsfl"])
	}
}

func TestTable3StorageOrdering(t *testing.T) {
	tbl, err := RunTable3(TestSpec())
	if err != nil {
		t.Fatal(err)
	}
	byScheme := map[string]int{}
	for _, r := range tbl.Rows {
		byScheme[r["scheme"].(string)] = r["server_replicas"].(int)
	}
	if byScheme["gsfl"] != 2 {
		t.Fatalf("gsfl replicas = %d, want M=2", byScheme["gsfl"])
	}
	if byScheme["sfl"] != 6 {
		t.Fatalf("sfl replicas = %d, want N=6", byScheme["sfl"])
	}
}

func TestConvergenceGSFLFasterThanFLInRounds(t *testing.T) {
	// Cross-scheme round-efficiency on the quickly learnable blob task:
	// GSFL applies N*steps sequential updates per round versus FL's
	// averaged local updates, so GSFL reaches the target in fewer rounds
	// (the paper's ~5x claim, direction-checked here at toy scale).
	env1 := schemestest.NewEnv(11, 6, 40)
	g, err := gsfl.New(env1, gsfl.Config{NumGroups: 2, Strategy: partition.GroupRoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	env2 := schemestest.NewEnv(11, 6, 40)
	f, err := fl.New(env2)
	if err != nil {
		t.Fatal(err)
	}
	gc := schemestest.RunCurve(t, g, 20, 1)
	fc := schemestest.RunCurve(t, f, 20, 1)
	const target = 0.6
	gr, gok := gc.RoundsToAccuracy(target)
	fr, fok := fc.RoundsToAccuracy(target)
	if !gok {
		t.Fatalf("GSFL never reached %v (final %v)", target, gc.FinalAccuracy())
	}
	if fok && fr <= gr {
		t.Fatalf("FL reached target in %d rounds, GSFL in %d; expected GSFL faster", fr, gr)
	}
}

func TestAblationCutLayer(t *testing.T) {
	spec := TestSpec()
	res, err := RunAblationCutLayer(spec, []int{1, 3, 6}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d results", len(res))
	}
	// Deeper cuts never shrink the client side (ReLU/pool layers carry no
	// parameters, so cuts 1 and 3 tie) and strictly grow once the second
	// conv block moves over.
	if res[0].ClientBytes > res[1].ClientBytes || res[1].ClientBytes >= res[2].ClientBytes {
		t.Fatalf("client bytes not monotone in cut: %+v", res)
	}
	// Cutting after pooling (cut 3) shrinks the smashed data versus
	// cutting before it (cut 1).
	if res[1].SmashedBytes >= res[0].SmashedBytes {
		t.Fatalf("pooled cut should shrink smashed data: %+v", res)
	}
}

func TestAblationGrouping(t *testing.T) {
	spec := TestSpec()
	res, err := RunAblationGrouping(spec, []int{1, 3},
		[]string{"round-robin"}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d results", len(res))
	}
	// More groups = more parallelism = shorter rounds.
	if res[1].RoundLatency >= res[0].RoundLatency {
		t.Fatalf("M=3 latency %v not below M=1 latency %v", res[1].RoundLatency, res[0].RoundLatency)
	}
}

func TestAblationAllocation(t *testing.T) {
	res, err := RunAblationAllocation(TestSpec(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d results", len(res))
	}
	names := map[string]bool{}
	for _, r := range res {
		if r.RoundLatency <= 0 {
			t.Fatalf("allocator %s latency %v", r.Allocator, r.RoundLatency)
		}
		names[r.Allocator] = true
	}
	for _, want := range []string{"uniform", "proportional-fair", "latency-min"} {
		if !names[want] {
			t.Fatalf("missing allocator %s in %v", want, names)
		}
	}
}

func TestTable1Structure(t *testing.T) {
	// Table 1 at tiny scale: just verify structure and that every scheme
	// appears (convergence itself is covered by the blob test above and
	// the full-scale bench).
	tbl, curves, err := RunTable1(TestSpec(), 2, 1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 || len(curves) != 4 {
		t.Fatalf("rows=%d curves=%d", len(tbl.Rows), len(curves))
	}
}
