package experiment

import (
	"context"
	"fmt"

	"gsfl/internal/gsfl"
	"gsfl/internal/simnet"
)

// ValidationResult compares the analytic GSFL round-latency model
// against event-driven processor sharing (experiment V).
type ValidationResult struct {
	// AnalyticSeconds is the position-synchronized model's round latency.
	AnalyticSeconds float64
	// EventDrivenSeconds is the processor-sharing makespan of the same
	// round's task chains.
	EventDrivenSeconds float64
	// RelativeGap is (analytic - eventDriven) / eventDriven.
	RelativeGap float64
}

// RunValidationEventDriven builds one GSFL round twice over a fading-free
// copy of the spec's world: once through the analytic latency model
// (what every figure uses) and once through simnet.RunChains, where
// groups desynchronize and the spectrum is re-divided at every task
// boundary. A small relative gap validates the analytic approximation;
// its sign shows whether the approximation is conservative (positive:
// analytic over-estimates because it assumes worst-case contention for
// whole positions).
func RunValidationEventDriven(spec Spec) (ValidationResult, error) {
	// Fading and outages off: both models must price identical physics.
	spec.Wireless.FadingJitter = 0
	spec.Wireless.OutageProb = 0

	world, err := Build(spec)
	if err != nil {
		return ValidationResult{}, err
	}
	opts, err := spec.SchemeOptions()
	if err != nil {
		return ValidationResult{}, err
	}
	tr, err := gsfl.New(world, gsfl.Config{NumGroups: spec.Groups, Strategy: opts.Strategy})
	if err != nil {
		return ValidationResult{}, err
	}
	led, err := tr.Round(context.Background())
	if err != nil {
		return ValidationResult{}, fmt.Errorf("experiment: analytic round: %w", err)
	}
	analytic := led.Total()

	// Rebuild the same round's task structure as event-sim chains. The
	// model quantities (FLOPs, bytes) are identical by construction; only
	// the bandwidth-sharing discipline differs.
	env2, err := Build(spec)
	if err != nil {
		return ValidationResult{}, err
	}
	probe := env2.Arch.NewSplit(env2.Rng("probe", 0), spec.Cut)
	tr2, err := gsfl.New(env2, gsfl.Config{NumGroups: spec.Groups, Strategy: opts.Strategy})
	if err != nil {
		return ValidationResult{}, err
	}
	batch := int64(spec.Hyper.Batch)
	clientFLOPs := 3 * probe.ClientFwdFLOPs() * batch
	serverFLOPs := 3 * probe.ServerFwdFLOPs() * batch
	smashedBits := float64(probe.SmashedBytes(spec.Hyper.Batch)) * 8
	gradBits := float64(probe.GradBytes(spec.Hyper.Batch)) * 8
	modelBits := float64(probe.ClientParamBytes()) * 8

	chains := make([][]simnet.Task, 0, spec.Groups)
	for _, members := range tr2.Groups() {
		var chain []simnet.Task
		// Model distribution to the first client.
		chain = append(chain, simnet.Task{
			Kind: simnet.TaskDownlink, Bits: modelBits,
			Client: members[0], Component: simnet.Relay,
		})
		for pos, ci := range members {
			dev := env2.Fleet.Clients[ci]
			for s := 0; s < spec.Hyper.StepsPerClient; s++ {
				chain = append(chain,
					simnet.Task{Kind: simnet.TaskCompute, Seconds: dev.ComputeSeconds(clientFLOPs), Component: simnet.ClientCompute},
					simnet.Task{Kind: simnet.TaskUplink, Bits: smashedBits, Client: ci, Component: simnet.Uplink},
					simnet.Task{Kind: simnet.TaskCompute, Seconds: env2.Fleet.Server.ComputeSeconds(serverFLOPs), Component: simnet.ServerCompute},
					simnet.Task{Kind: simnet.TaskDownlink, Bits: gradBits, Client: ci, Component: simnet.Downlink},
				)
			}
			// Relay to the next client or return to the AP.
			chain = append(chain, simnet.Task{
				Kind: simnet.TaskUplink, Bits: modelBits, Client: ci, Component: simnet.Relay,
			})
			if pos+1 < len(members) {
				chain = append(chain, simnet.Task{
					Kind: simnet.TaskDownlink, Bits: modelBits,
					Client: members[pos+1], Component: simnet.Relay,
				})
			}
		}
		chains = append(chains, chain)
	}

	res, err := simnet.RunChains(chains, env2.Channel.UplinkHz(), env2.Channel.DownlinkHz(),
		func(client int, wHz float64, uplink bool) float64 {
			return env2.Channel.MeanRate(client, wHz, uplink)
		})
	if err != nil {
		return ValidationResult{}, fmt.Errorf("experiment: event-driven replay: %w", err)
	}
	// Aggregation cost is identical in both models; add it to the
	// event-driven side for a like-for-like total.
	var aggLed simnet.Ledger
	total := probe.Client.ParamCount() + probe.Server.ParamCount()
	aggFLOPs := int64(2) * int64(spec.Groups) * int64(total)
	aggLed.Add(simnet.Aggregation, env2.Fleet.Server.ComputeSeconds(aggFLOPs))
	eventDriven := res.Makespan + aggLed.Total()

	return ValidationResult{
		AnalyticSeconds:    analytic,
		EventDrivenSeconds: eventDriven,
		RelativeGap:        (analytic - eventDriven) / eventDriven,
	}, nil
}
