package experiment

import (
	"fmt"
	"math"

	"gsfl/internal/gsfl"
)

// PipelineResult is one row of the communication/computation-overlap
// ablation (the "parallel design" of the paper's reference [2]).
type PipelineResult struct {
	Pipelined     bool
	RoundLatency  float64
	FinalAccuracy float64
}

// RunAblationPipelining compares GSFL with and without per-turn
// communication/computation overlap. Training numerics are identical;
// only the latency model changes, so the accuracy columns should match
// and the latency column should strictly favour pipelining.
func RunAblationPipelining(spec Spec, rounds, evalEvery int) ([]PipelineResult, error) {
	out := make([]PipelineResult, 0, 2)
	for _, pipelined := range []bool{false, true} {
		env, err := Build(spec)
		if err != nil {
			return nil, fmt.Errorf("experiment: pipelining: %w", err)
		}
		tr, err := gsfl.New(env, gsfl.Config{
			NumGroups: spec.Groups,
			Strategy:  spec.Strategy,
			Pipelined: pipelined,
		})
		if err != nil {
			return nil, fmt.Errorf("experiment: pipelining: %w", err)
		}
		curve, err := runCurve(tr, rounds, evalEvery)
		if err != nil {
			return nil, fmt.Errorf("experiment: pipelining: %w", err)
		}
		last := curve.Points[len(curve.Points)-1]
		out = append(out, PipelineResult{
			Pipelined:     pipelined,
			RoundLatency:  last.LatencySeconds / float64(rounds),
			FinalAccuracy: curve.FinalAccuracy(),
		})
	}
	return out, nil
}

// QuantResult is one row of the transfer-precision ablation.
type QuantResult struct {
	Quantized     bool
	RoundLatency  float64
	FinalAccuracy float64
}

// RunAblationQuantization compares full-precision (float32 wire) GSFL
// against 8-bit quantized smashed-data/gradient transfers: 4x less
// uplink/downlink traffic versus whatever accuracy the precision loss
// costs.
func RunAblationQuantization(spec Spec, rounds, evalEvery int) ([]QuantResult, error) {
	out := make([]QuantResult, 0, 2)
	for _, quant := range []bool{false, true} {
		s := spec
		s.Hyper.QuantizeTransfers = quant
		env, err := Build(s)
		if err != nil {
			return nil, fmt.Errorf("experiment: quantization: %w", err)
		}
		tr, err := gsfl.New(env, gsfl.Config{NumGroups: s.Groups, Strategy: s.Strategy})
		if err != nil {
			return nil, fmt.Errorf("experiment: quantization: %w", err)
		}
		curve, err := runCurve(tr, rounds, evalEvery)
		if err != nil {
			return nil, fmt.Errorf("experiment: quantization: %w", err)
		}
		last := curve.Points[len(curve.Points)-1]
		out = append(out, QuantResult{
			Quantized:     quant,
			RoundLatency:  last.LatencySeconds / float64(rounds),
			FinalAccuracy: curve.FinalAccuracy(),
		})
	}
	return out, nil
}

// DropoutResult is one row of the client-dropout robustness sweep.
type DropoutResult struct {
	DropoutProb   float64
	RoundLatency  float64
	FinalAccuracy float64
}

// RunAblationDropout sweeps per-round client unavailability and reports
// its effect on GSFL latency and accuracy — the robustness experiment a
// deployment over flaky mobile devices needs.
func RunAblationDropout(spec Spec, probs []float64, rounds, evalEvery int) ([]DropoutResult, error) {
	out := make([]DropoutResult, 0, len(probs))
	for _, p := range probs {
		env, err := Build(spec)
		if err != nil {
			return nil, fmt.Errorf("experiment: dropout %v: %w", p, err)
		}
		tr, err := gsfl.New(env, gsfl.Config{
			NumGroups:   spec.Groups,
			Strategy:    spec.Strategy,
			DropoutProb: p,
		})
		if err != nil {
			return nil, fmt.Errorf("experiment: dropout %v: %w", p, err)
		}
		curve, err := runCurve(tr, rounds, evalEvery)
		if err != nil {
			return nil, fmt.Errorf("experiment: dropout %v: %w", p, err)
		}
		last := curve.Points[len(curve.Points)-1]
		out = append(out, DropoutResult{
			DropoutProb:   p,
			RoundLatency:  last.LatencySeconds / float64(rounds),
			FinalAccuracy: curve.FinalAccuracy(),
		})
	}
	return out, nil
}

// NonIIDResult is one row of the data-heterogeneity sweep.
type NonIIDResult struct {
	Alpha         float64
	Scheme        string
	FinalAccuracy float64
	RoundsToHalf  int // rounds to 50% accuracy
	ReachedHalf   bool
}

// RunAblationNonIID sweeps the Dirichlet concentration alpha (small =
// highly skewed client data) for GSFL and FL. Federated averaging is
// known to degrade sharply under non-IID data while split-sequential
// training is more robust — the gap that drives the paper's
// convergence-speed advantage.
func RunAblationNonIID(spec Spec, alphas []float64, rounds, evalEvery int) ([]NonIIDResult, error) {
	var out []NonIIDResult
	for _, alpha := range alphas {
		for _, scheme := range []string{"gsfl", "fl"} {
			s := spec
			s.Alpha = alpha
			curve, err := RunScheme(s, scheme, rounds, evalEvery)
			if err != nil {
				return nil, fmt.Errorf("experiment: non-iid alpha=%v %s: %w", alpha, scheme, err)
			}
			r, ok := curve.RoundsToAccuracy(0.5)
			out = append(out, NonIIDResult{
				Alpha:         alpha,
				Scheme:        scheme,
				FinalAccuracy: curve.FinalAccuracy(),
				RoundsToHalf:  r,
				ReachedHalf:   ok,
			})
		}
	}
	return out, nil
}

// SeedStats summarizes a scheme's final accuracy across seeds.
type SeedStats struct {
	Scheme   string
	Seeds    int
	MeanAcc  float64
	StdAcc   float64
	WorstAcc float64
	BestAcc  float64
}

// RunSeedSweep reruns a scheme across k seeds and reports the spread of
// final accuracy — the variance bar a credible reproduction publishes
// alongside point estimates.
func RunSeedSweep(spec Spec, scheme string, seeds, rounds, evalEvery int) (SeedStats, error) {
	if seeds <= 0 {
		return SeedStats{}, fmt.Errorf("experiment: seed sweep needs positive seed count, got %d", seeds)
	}
	accs := make([]float64, 0, seeds)
	for k := 0; k < seeds; k++ {
		s := spec
		s.Seed = spec.Seed + int64(1000*k)
		curve, err := RunScheme(s, scheme, rounds, evalEvery)
		if err != nil {
			return SeedStats{}, fmt.Errorf("experiment: seed sweep %s seed %d: %w", scheme, k, err)
		}
		accs = append(accs, curve.FinalAccuracy())
	}
	st := SeedStats{Scheme: scheme, Seeds: seeds, WorstAcc: accs[0], BestAcc: accs[0]}
	sum := 0.0
	for _, a := range accs {
		sum += a
		if a < st.WorstAcc {
			st.WorstAcc = a
		}
		if a > st.BestAcc {
			st.BestAcc = a
		}
	}
	st.MeanAcc = sum / float64(seeds)
	ss := 0.0
	for _, a := range accs {
		d := a - st.MeanAcc
		ss += d * d
	}
	st.StdAcc = math.Sqrt(ss / float64(seeds))
	return st, nil
}
