package experiment

import (
	"context"
	"fmt"
)

// PipelineResult is one row of the communication/computation-overlap
// ablation (the "parallel design" of the paper's reference [2]).
type PipelineResult struct {
	Pipelined     bool
	RoundLatency  float64
	FinalAccuracy float64
}

// RunAblationPipelining compares GSFL with and without per-turn
// communication/computation overlap. Training numerics are identical;
// only the latency model changes, so the accuracy columns should match
// and the latency column should strictly favour pipelining.
func RunAblationPipelining(spec Spec, rounds, evalEvery int) ([]PipelineResult, error) {
	res, err := RunGrid(context.Background(), PipelineGrid(spec, rounds, evalEvery))
	if err != nil {
		return nil, err
	}
	return FoldPipelining(res), nil
}

// QuantResult is one row of the transfer-precision ablation.
type QuantResult struct {
	Quantized     bool
	RoundLatency  float64
	FinalAccuracy float64
}

// RunAblationQuantization compares full-precision (float32 wire) GSFL
// against 8-bit quantized smashed-data/gradient transfers: 4x less
// uplink/downlink traffic versus whatever accuracy the precision loss
// costs.
func RunAblationQuantization(spec Spec, rounds, evalEvery int) ([]QuantResult, error) {
	res, err := RunGrid(context.Background(), QuantGrid(spec, rounds, evalEvery))
	if err != nil {
		return nil, err
	}
	return FoldQuantization(res), nil
}

// DropoutResult is one row of the client-dropout robustness sweep.
type DropoutResult struct {
	DropoutProb   float64
	RoundLatency  float64
	FinalAccuracy float64
}

// RunAblationDropout sweeps per-round client unavailability and reports
// its effect on GSFL latency and accuracy — the robustness experiment a
// deployment over flaky mobile devices needs.
func RunAblationDropout(spec Spec, probs []float64, rounds, evalEvery int) ([]DropoutResult, error) {
	res, err := RunGrid(context.Background(), DropoutGrid(spec, probs, rounds, evalEvery))
	if err != nil {
		return nil, err
	}
	return FoldDropout(res), nil
}

// NonIIDResult is one row of the data-heterogeneity sweep.
type NonIIDResult struct {
	Alpha         float64
	Scheme        string
	FinalAccuracy float64
	RoundsToHalf  int // rounds to 50% accuracy
	ReachedHalf   bool
}

// RunAblationNonIID sweeps the Dirichlet concentration alpha (small =
// highly skewed client data) for GSFL and FL. Federated averaging is
// known to degrade sharply under non-IID data while split-sequential
// training is more robust — the gap that drives the paper's
// convergence-speed advantage.
func RunAblationNonIID(spec Spec, alphas []float64, rounds, evalEvery int) ([]NonIIDResult, error) {
	res, err := RunGrid(context.Background(), NonIIDGrid(spec, alphas, rounds, evalEvery))
	if err != nil {
		return nil, err
	}
	return FoldNonIID(res), nil
}

// SeedStats summarizes a scheme's final accuracy across seeds.
type SeedStats struct {
	Scheme   string
	Seeds    int
	MeanAcc  float64
	StdAcc   float64
	WorstAcc float64
	BestAcc  float64
}

// RunSeedSweep reruns a scheme across k seeds and reports the spread of
// final accuracy — the variance bar a credible reproduction publishes
// alongside point estimates.
func RunSeedSweep(spec Spec, scheme string, seeds, rounds, evalEvery int) (SeedStats, error) {
	if seeds <= 0 {
		return SeedStats{}, fmt.Errorf("experiment: seed sweep needs positive seed count, got %d", seeds)
	}
	res, err := RunGrid(context.Background(), SeedSweepGrid(spec, scheme, seeds, rounds, evalEvery))
	if err != nil {
		return SeedStats{}, err
	}
	return FoldSeedStats(res), nil
}
