package experiment

import (
	"context"
	"math"
	"testing"
)

// TestNumericGridFastWithinGoldenTolerance executes the numeric study's
// cells at test scale and pins the two-sided contract end to end —
// through grid expansion, AcquireNumericMode, and full training rounds:
//
//   - the exact cell is bit-identical to a run that never mentions
//     numerics (the default mode IS the historical behavior), and
//   - the fast cell's curve tracks the exact curve within the golden
//     tolerance: identical simulated latencies (kernel numerics never
//     touch the latency model), losses and accuracies within a small
//     absolute band. On hardware without FMA the fast kernels fall back
//     to the exact ones and the band is trivially met.
func TestNumericGridFastWithinGoldenTolerance(t *testing.T) {
	spec := TestSpec()
	jobs, err := NumericGrid(spec, []string{"exact", "fast"}, 3, 1).Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("numeric grid expanded to %d jobs, want 2", len(jobs))
	}

	baseGrid := Grid{Name: "base", Base: spec, Rounds: 3, EvalEvery: 1}
	baseJobs, err := baseGrid.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if baseJobs[0].ID != jobs[0].ID {
		t.Fatalf("exact cell ID %s differs from the numeric-free cell %s", jobs[0].ID, baseJobs[0].ID)
	}

	ctx := context.Background()
	base, err := RunJob(ctx, baseJobs[0])
	if err != nil {
		t.Fatal(err)
	}
	exact, err := RunJob(ctx, jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	fast, err := RunJob(ctx, jobs[1])
	if err != nil {
		t.Fatal(err)
	}

	if len(exact.Curve.Points) != len(base.Curve.Points) || len(fast.Curve.Points) != len(base.Curve.Points) {
		t.Fatalf("curve lengths differ: base %d exact %d fast %d",
			len(base.Curve.Points), len(exact.Curve.Points), len(fast.Curve.Points))
	}
	for i, want := range base.Curve.Points {
		if exact.Curve.Points[i] != want {
			t.Fatalf("exact-mode point %d differs from the numeric-free run: %+v vs %+v",
				i, exact.Curve.Points[i], want)
		}
	}

	// Golden tolerance for the reassociating mode. Measured drift on
	// FMA hardware after 3 test-scale rounds is ~1e-15 in loss; the band
	// leaves generous headroom for deeper runs and other vector hardware
	// while still catching any real numerical change (a kernel bug
	// shifts the loss by far more than 1e-6).
	const lossTol, accTol = 1e-6, 0.05
	for i, want := range exact.Curve.Points {
		got := fast.Curve.Points[i]
		if got.Round != want.Round || got.LatencySeconds != want.LatencySeconds {
			t.Fatalf("fast-mode point %d: round/latency must be identical: %+v vs %+v", i, got, want)
		}
		if d := math.Abs(got.Loss - want.Loss); d > lossTol {
			t.Fatalf("fast-mode point %d: loss drifted %g from exact (tolerance %g)", i, d, lossTol)
		}
		if d := math.Abs(got.Accuracy - want.Accuracy); d > accTol {
			t.Fatalf("fast-mode point %d: accuracy drifted %g from exact (tolerance %g)", i, d, accTol)
		}
	}
}
