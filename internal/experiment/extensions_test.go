package experiment

import "testing"

func TestAblationPipelining(t *testing.T) {
	res, err := RunAblationPipelining(TestSpec(), 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d results", len(res))
	}
	var plain, piped PipelineResult
	for _, r := range res {
		if r.Pipelined {
			piped = r
		} else {
			plain = r
		}
	}
	// Identical numerics: accuracy must match exactly (same seeds, same
	// update sequence; only the latency algebra differs).
	if plain.FinalAccuracy != piped.FinalAccuracy {
		t.Fatalf("pipelining changed accuracy: %v vs %v", plain.FinalAccuracy, piped.FinalAccuracy)
	}
	// Overlap must reduce (or at worst match) round latency.
	if piped.RoundLatency > plain.RoundLatency*1.02 {
		t.Fatalf("pipelined latency %v above sequential %v", piped.RoundLatency, plain.RoundLatency)
	}
}

func TestAblationQuantization(t *testing.T) {
	res, err := RunAblationQuantization(TestSpec(), 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	var full, quant QuantResult
	for _, r := range res {
		if r.Quantized {
			quant = r
		} else {
			full = r
		}
	}
	// At this test scale transfers dominate, so 4x smaller transfers must
	// clearly reduce round latency.
	if quant.RoundLatency >= full.RoundLatency {
		t.Fatalf("quantized latency %v not below full-precision %v",
			quant.RoundLatency, full.RoundLatency)
	}
}

func TestAblationDropoutSweep(t *testing.T) {
	res, err := RunAblationDropout(TestSpec(), []float64{0, 0.3}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d results", len(res))
	}
	if res[1].RoundLatency >= res[0].RoundLatency {
		t.Fatalf("30%% dropout latency %v not below failure-free %v",
			res[1].RoundLatency, res[0].RoundLatency)
	}
}

func TestAblationNonIID(t *testing.T) {
	res, err := RunAblationNonIID(TestSpec(), []float64{0.1, 10}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 { // 2 alphas x 2 schemes
		t.Fatalf("got %d results", len(res))
	}
	for _, r := range res {
		if r.Scheme != "gsfl" && r.Scheme != "fl" {
			t.Fatalf("unexpected scheme %q", r.Scheme)
		}
		if r.FinalAccuracy < 0 || r.FinalAccuracy > 1 {
			t.Fatalf("accuracy %v out of range", r.FinalAccuracy)
		}
	}
}

func TestSeedSweepStats(t *testing.T) {
	st, err := RunSeedSweep(TestSpec(), "gsfl", 3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Seeds != 3 || st.Scheme != "gsfl" {
		t.Fatalf("stats header wrong: %+v", st)
	}
	if st.WorstAcc > st.MeanAcc || st.MeanAcc > st.BestAcc {
		t.Fatalf("ordering violated: %+v", st)
	}
	if st.StdAcc < 0 {
		t.Fatalf("negative std: %+v", st)
	}
}

func TestSeedSweepValidation(t *testing.T) {
	if _, err := RunSeedSweep(TestSpec(), "gsfl", 0, 1, 1); err == nil {
		t.Fatal("expected error for zero seeds")
	}
}

func TestValidationEventDriven(t *testing.T) {
	res, err := RunValidationEventDriven(TestSpec())
	if err != nil {
		t.Fatal(err)
	}
	if res.AnalyticSeconds <= 0 || res.EventDrivenSeconds <= 0 {
		t.Fatalf("non-positive latencies: %+v", res)
	}
	// The analytic model assumes full contention at every position, so it
	// should never *under*-estimate by much; and the two disciplines price
	// the same physics, so they must agree within a factor band.
	if res.RelativeGap < -0.25 || res.RelativeGap > 0.6 {
		t.Fatalf("analytic vs event-driven gap %v outside sanity band: %+v",
			res.RelativeGap, res)
	}
}
