// Package hotbench measures the training hot path — one full GSFL
// round at a reduced spec plus the tensor kernels it is built from —
// and writes ns/op, B/op, and allocs/op to a JSON file. Committed
// before/after pairs of these files (see BENCH_hotpath.json at the repo
// root) form the perf trajectory of the allocation-free hot-path work.
// The public entry point is sweep.WriteHotPathBench (what gsfl-bench
// -benchjson calls).
//
// Measurements run with a single worker: serial execution excludes
// fork-join goroutine churn from the allocation counts, so the numbers
// isolate exactly what the destination-passing refactor targets. The
// wall-clock effect at higher worker counts is covered by the
// BenchmarkParallelGroupRound sweep in bench_test.go.
package hotbench

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"gsfl/internal/experiment"
	"gsfl/internal/nn"
	"gsfl/internal/parallel"
	"gsfl/internal/tensor"
)

// Measurement is one measured operation.
type Measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Iters       int     `json:"iters"`
}

// Report is the full -benchjson artifact.
type Report struct {
	Label     string                 `json:"label,omitempty"`
	Generated string                 `json:"generated"`
	Workers   int                    `json:"workers"`
	Spec      string                 `json:"spec"`
	Results   map[string]Measurement `json:"results"`
}

// measureOp times f over iters iterations after warmup warm-up calls and
// reports per-iteration wall time and heap traffic.
func measureOp(warmup, iters int, f func()) Measurement {
	for i := 0; i < warmup; i++ {
		f()
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < iters; i++ {
		f()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	n := float64(iters)
	return Measurement{
		NsPerOp:     float64(elapsed.Nanoseconds()) / n,
		BytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / n,
		AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / n,
		Iters:       iters,
	}
}

// benchSpec is the reduced GSFL configuration the round measurement
// uses: small enough to run in seconds, large enough that conv/dense
// layers dominate like they do at paper scale.
func benchSpec() experiment.Spec {
	spec := experiment.TestSpec()
	spec.Clients = 8
	spec.Groups = 2
	spec.ImageSize = 16
	spec.TrainPerClient = 64
	spec.TestPerClass = 2
	spec.Hyper.Batch = 16
	spec.Hyper.StepsPerClient = 2
	spec.Device.N = spec.Clients
	return spec
}

// Write produces the hot-path report and writes it to path.
func Write(path, label string) error {
	parallel.SetWorkers(1)
	defer parallel.SetWorkers(0)

	report := &Report{
		Label:     label,
		Generated: time.Now().UTC().Format(time.RFC3339),
		Workers:   1,
		Spec:      "gsfl reduced: 8 clients, 2 groups, 16x16 images, batch 16, 2 steps/client",
		Results:   map[string]Measurement{},
	}

	// One full GSFL round: distribution, concurrent-group split training,
	// FedAvg aggregation — the steady-state loop the simulator lives in.
	tr, err := experiment.NewTrainer(benchSpec(), "gsfl")
	if err != nil {
		return err
	}
	ctx := context.Background()
	report.Results["gsfl_round"] = measureOp(2, 6, func() {
		if _, err := tr.Round(ctx); err != nil {
			panic(err)
		}
	})

	// Tensor kernels on layer-shaped operands.
	rng := rand.New(rand.NewSource(1))
	a := tensor.New(256, 256).RandNormal(rng, 0, 1)
	b := tensor.New(256, 256).RandNormal(rng, 0, 1)
	report.Results["matmul_256"] = measureOp(2, 20, func() { tensor.MatMul(a, b) })

	// The same shape under the reassociating kernel (-numeric fast), so
	// the report records both sides of the exact/fast trade.
	release, err := tensor.AcquireNumericMode("fast")
	if err != nil {
		return err
	}
	report.Results["matmul_256_fast"] = measureOp(2, 20, func() { tensor.MatMul(a, b) })
	release()

	g := tensor.ConvGeom{InC: 8, InH: 32, InW: 32, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	const nImg = 16
	src := make([]float64, nImg*g.ImageSize())
	dst := make([]float64, nImg*g.ColSize())
	report.Results["im2col_batch"] = measureOp(2, 20, func() { tensor.Im2ColBatch(dst, src, nImg, g) })

	conv := nn.NewConv2D(rng, 3, 8, 3, 1, 1)
	xc := tensor.New(16, 3, 16, 16).RandNormal(rng, 0, 1)
	report.Results["conv2d_fwd_bwd"] = measureOp(2, 20, func() {
		y := conv.Forward(xc, true)
		nn.ZeroGrads([]nn.Layer{conv})
		conv.Backward(y)
	})

	dense := nn.NewDense(rng, 1024, 64)
	xd := tensor.New(16, 1024).RandNormal(rng, 0, 1)
	report.Results["dense_fwd_bwd"] = measureOp(2, 50, func() {
		y := dense.Forward(xd, true)
		nn.ZeroGrads([]nn.Layer{dense})
		dense.Backward(y)
	})

	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("benchjson: wrote %s\n", path)
	for _, name := range []string{"gsfl_round", "matmul_256", "matmul_256_fast", "im2col_batch", "conv2d_fwd_bwd", "dense_fwd_bwd"} {
		m := report.Results[name]
		fmt.Printf("  %-16s %12.0f ns/op %12.0f B/op %10.1f allocs/op\n",
			name, m.NsPerOp, m.BytesPerOp, m.AllocsPerOp)
	}
	return nil
}

// checkBudget is the Check regression allowance: the live matmul_256
// may be at most this fraction over the recorded stage before Check
// fails.
const checkBudget = 0.25

// Check measures the live 256³ matmul and compares it against the
// "gemm" stage recorded in a committed multi-stage hot-path file
// (BENCH_hotpath.json at the repo root), returning an error — and so a
// non-zero gsfl-bench exit — when the live time regresses more than
// checkBudget over the recording. CI runs it as a cheap perf ratchet on
// the packed-GEMM engine.
func Check(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("hotbench: reading recorded report: %w", err)
	}
	var file struct {
		Gemm struct {
			Results map[string]Measurement `json:"results"`
		} `json:"gemm"`
	}
	if err := json.Unmarshal(raw, &file); err != nil {
		return fmt.Errorf("hotbench: parsing %s: %w", path, err)
	}
	rec, ok := file.Gemm.Results["matmul_256"]
	if !ok {
		return fmt.Errorf("hotbench: %s has no gemm-stage matmul_256 recording", path)
	}

	parallel.SetWorkers(1)
	defer parallel.SetWorkers(0)
	rng := rand.New(rand.NewSource(1))
	a := tensor.New(256, 256).RandNormal(rng, 0, 1)
	b := tensor.New(256, 256).RandNormal(rng, 0, 1)
	// Best of three samples: the minimum estimates what the kernel can
	// do, which is what a ratchet compares — a single sample on a busy
	// CI box can spike past the budget on scheduler noise alone.
	live := measureOp(2, 20, func() { tensor.MatMul(a, b) })
	for i := 0; i < 2; i++ {
		if s := measureOp(2, 20, func() { tensor.MatMul(a, b) }); s.NsPerOp < live.NsPerOp {
			live = s
		}
	}

	limit := rec.NsPerOp * (1 + checkBudget)
	fmt.Printf("benchcheck: matmul_256 live %.0f ns/op, recorded %.0f ns/op, limit %.0f ns/op (+%d%%)\n",
		live.NsPerOp, rec.NsPerOp, limit, int(checkBudget*100))
	if live.NsPerOp > limit {
		return fmt.Errorf("hotbench: matmul_256 regressed: %.0f ns/op exceeds %.0f ns/op (recorded %.0f +%d%%)",
			live.NsPerOp, limit, rec.NsPerOp, int(checkBudget*100))
	}
	return nil
}
