// Package optim implements the gradient-descent optimizers the training
// schemes use to update client-side and server-side model halves.
//
// An Optimizer owns per-parameter state (momentum buffers, Adam moments)
// keyed by position, so each model half gets its own optimizer instance;
// the split schemes create one per server-side replica and one per
// client-side model, mirroring how the paper's AP and clients update
// their halves independently.
package optim

import (
	"fmt"
	"math"

	"gsfl/internal/tensor"
)

// Optimizer updates parameters in place from accumulated gradients.
type Optimizer interface {
	// Name identifies the optimizer in traces.
	Name() string
	// Step applies one update. params and grads are aligned; decay is an
	// optional mask (nil = decay everything) marking which parameters
	// receive L2 weight decay.
	Step(params, grads []*tensor.Tensor, decay []bool)
}

// LRSchedule maps a 0-based step index to a learning rate.
type LRSchedule func(step int) float64

// ConstLR returns a schedule that always yields lr.
func ConstLR(lr float64) LRSchedule { return func(int) float64 { return lr } }

// StepDecayLR multiplies lr by factor every interval steps.
func StepDecayLR(lr, factor float64, interval int) LRSchedule {
	if interval <= 0 {
		panic(fmt.Sprintf("optim: StepDecayLR interval must be positive, got %d", interval))
	}
	return func(step int) float64 {
		return lr * math.Pow(factor, float64(step/interval))
	}
}

// CosineLR anneals from lr to floor over horizon steps, then stays at floor.
func CosineLR(lr, floor float64, horizon int) LRSchedule {
	if horizon <= 0 {
		panic(fmt.Sprintf("optim: CosineLR horizon must be positive, got %d", horizon))
	}
	return func(step int) float64 {
		if step >= horizon {
			return floor
		}
		return floor + (lr-floor)*0.5*(1+math.Cos(math.Pi*float64(step)/float64(horizon)))
	}
}

// SGD is stochastic gradient descent with optional momentum, L2 weight
// decay, and gradient clipping by global norm.
type SGD struct {
	Schedule    LRSchedule
	Momentum    float64
	WeightDecay float64
	// ClipNorm, when positive, rescales gradients so their global L2 norm
	// never exceeds it. Stabilizes early split-training steps.
	ClipNorm float64

	step     int
	velocity []*tensor.Tensor
}

// NewSGD constructs plain SGD with a constant learning rate.
func NewSGD(lr float64) *SGD { return &SGD{Schedule: ConstLR(lr)} }

// NewSGDMomentum constructs SGD with momentum.
func NewSGDMomentum(lr, momentum float64) *SGD {
	return &SGD{Schedule: ConstLR(lr), Momentum: momentum}
}

// Name implements Optimizer.
func (s *SGD) Name() string { return "sgd" }

// Step implements Optimizer.
func (s *SGD) Step(params, grads []*tensor.Tensor, decay []bool) {
	checkAligned(params, grads, decay)
	lr := s.Schedule(s.step)
	s.step++

	clipScale := clipFactor(grads, s.ClipNorm)

	if s.Momentum != 0 && s.velocity == nil {
		s.velocity = make([]*tensor.Tensor, len(params))
		for i, p := range params {
			s.velocity[i] = tensor.New(p.Shape()...)
		}
	}
	for i, p := range params {
		g := grads[i]
		wd := s.WeightDecay
		if decay != nil && !decay[i] {
			wd = 0
		}
		if s.Momentum == 0 {
			for j := range p.Data {
				gj := g.Data[j]*clipScale + wd*p.Data[j]
				p.Data[j] -= lr * gj
			}
			continue
		}
		v := s.velocity[i]
		for j := range p.Data {
			gj := g.Data[j]*clipScale + wd*p.Data[j]
			v.Data[j] = s.Momentum*v.Data[j] + gj
			p.Data[j] -= lr * v.Data[j]
		}
	}
}

// SGDState is an SGD optimizer's complete mutable state — the step
// counter (which drives LR schedules) and the momentum buffers. Plain
// exported fields keep it gob-serializable for training checkpoints.
type SGDState struct {
	Step int
	// VelocityShapes/VelocityData hold the per-parameter momentum
	// buffers; both are empty when momentum is disabled or no step has
	// allocated them yet.
	VelocityShapes [][]int
	VelocityData   [][]float64
}

// State captures the optimizer for checkpointing.
func (s *SGD) State() SGDState {
	st := SGDState{Step: s.step}
	for _, v := range s.velocity {
		st.VelocityShapes = append(st.VelocityShapes, v.Shape())
		st.VelocityData = append(st.VelocityData, append([]float64(nil), v.Data...))
	}
	return st
}

// Restore resets the optimizer to a state captured by State. The
// optimizer must have been constructed with the same hyperparameters;
// subsequent steps then continue bit-identically.
func (s *SGD) Restore(st SGDState) error {
	if st.Step < 0 {
		return fmt.Errorf("optim: negative step count %d", st.Step)
	}
	if len(st.VelocityShapes) != len(st.VelocityData) {
		return fmt.Errorf("optim: %d velocity shapes vs %d buffers", len(st.VelocityShapes), len(st.VelocityData))
	}
	var vel []*tensor.Tensor
	for i, shape := range st.VelocityShapes {
		n := 1
		for _, d := range shape {
			if d < 0 {
				return fmt.Errorf("optim: velocity %d has negative dimension", i)
			}
			n *= d
		}
		if n != len(st.VelocityData[i]) {
			return fmt.Errorf("optim: velocity %d shape %v does not match %d values", i, shape, len(st.VelocityData[i]))
		}
		vel = append(vel, tensor.FromSlice(append([]float64(nil), st.VelocityData[i]...), shape...))
	}
	s.step = st.Step
	s.velocity = vel
	return nil
}

// Adam implements the Adam optimizer with bias correction.
type Adam struct {
	Schedule    LRSchedule
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64

	step int
	m, v []*tensor.Tensor
}

// NewAdam constructs Adam with the canonical defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{Schedule: ConstLR(lr), Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Name implements Optimizer.
func (a *Adam) Name() string { return "adam" }

// Step implements Optimizer.
func (a *Adam) Step(params, grads []*tensor.Tensor, decay []bool) {
	checkAligned(params, grads, decay)
	lr := a.Schedule(a.step)
	a.step++
	if a.m == nil {
		a.m = make([]*tensor.Tensor, len(params))
		a.v = make([]*tensor.Tensor, len(params))
		for i, p := range params {
			a.m[i] = tensor.New(p.Shape()...)
			a.v[i] = tensor.New(p.Shape()...)
		}
	}
	bc1 := 1 - math.Pow(a.Beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for i, p := range params {
		g := grads[i]
		wd := a.WeightDecay
		if decay != nil && !decay[i] {
			wd = 0
		}
		m, v := a.m[i], a.v[i]
		for j := range p.Data {
			gj := g.Data[j] + wd*p.Data[j]
			m.Data[j] = a.Beta1*m.Data[j] + (1-a.Beta1)*gj
			v.Data[j] = a.Beta2*v.Data[j] + (1-a.Beta2)*gj*gj
			mhat := m.Data[j] / bc1
			vhat := v.Data[j] / bc2
			p.Data[j] -= lr * mhat / (math.Sqrt(vhat) + a.Eps)
		}
	}
}

// clipFactor returns the multiplier that caps the global gradient norm at
// clip (1 when clipping is disabled or unnecessary).
func clipFactor(grads []*tensor.Tensor, clip float64) float64 {
	if clip <= 0 {
		return 1
	}
	ss := 0.0
	for _, g := range grads {
		for _, v := range g.Data {
			ss += v * v
		}
	}
	norm := math.Sqrt(ss)
	if norm <= clip {
		return 1
	}
	return clip / norm
}

func checkAligned(params, grads []*tensor.Tensor, decay []bool) {
	if len(params) != len(grads) {
		panic(fmt.Sprintf("optim: %d params vs %d grads", len(params), len(grads)))
	}
	if decay != nil && len(decay) != len(params) {
		panic(fmt.Sprintf("optim: %d params vs %d decay flags", len(params), len(decay)))
	}
	for i := range params {
		if params[i].Size() != grads[i].Size() {
			panic(fmt.Sprintf("optim: param %d size %d vs grad size %d", i, params[i].Size(), grads[i].Size()))
		}
	}
}
