package optim

import (
	"math/rand"
	"testing"

	"gsfl/internal/tensor"
	"gsfl/internal/testutil"
)

// TestStepAllocFree pins the in-place optimizer contract: after the
// first step lazily allocates momentum/moment buffers, SGD and Adam
// updates touch no heap.
func TestStepAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mk := func() ([]*tensor.Tensor, []*tensor.Tensor, []bool) {
		params := []*tensor.Tensor{
			tensor.New(32, 16).RandNormal(rng, 0, 1),
			tensor.New(16).RandNormal(rng, 0, 1),
		}
		grads := []*tensor.Tensor{
			tensor.New(32, 16).RandNormal(rng, 0, 0.1),
			tensor.New(16).RandNormal(rng, 0, 0.1),
		}
		return params, grads, []bool{true, false}
	}

	p, g, d := mk()
	sgd := NewSGDMomentum(0.01, 0.9)
	sgd.WeightDecay = 1e-4
	sgd.ClipNorm = 5
	testutil.MaxAllocs(t, "SGD.Step", 0, func() { sgd.Step(p, g, d) })

	p2, g2, d2 := mk()
	adam := NewAdam(0.001)
	testutil.MaxAllocs(t, "Adam.Step", 0, func() { adam.Step(p2, g2, d2) })
}
