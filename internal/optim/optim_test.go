package optim

import (
	"math"
	"math/rand"
	"testing"

	"gsfl/internal/tensor"
)

// quadratic is the convex test problem f(p) = ||p - target||²; its exact
// gradient is 2(p-target). Every optimizer must drive p to target.
type quadratic struct {
	target *tensor.Tensor
}

func (q quadratic) grad(p *tensor.Tensor) *tensor.Tensor {
	g := tensor.Sub(p, q.target)
	return g.Scale(2)
}

func (q quadratic) value(p *tensor.Tensor) float64 {
	d := tensor.Sub(p, q.target)
	return tensor.Dot(d, d)
}

func runOptimizer(t *testing.T, opt Optimizer, steps int) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	target := tensor.New(8).RandNormal(rng, 0, 1)
	p := tensor.New(8).RandNormal(rng, 0, 1)
	q := quadratic{target: target}
	for i := 0; i < steps; i++ {
		opt.Step([]*tensor.Tensor{p}, []*tensor.Tensor{q.grad(p)}, nil)
	}
	return q.value(p)
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	if v := runOptimizer(t, NewSGD(0.1), 200); v > 1e-10 {
		t.Fatalf("SGD final value %v, want ≈0", v)
	}
}

func TestSGDMomentumConverges(t *testing.T) {
	if v := runOptimizer(t, NewSGDMomentum(0.05, 0.9), 300); v > 1e-10 {
		t.Fatalf("SGD+momentum final value %v, want ≈0", v)
	}
}

func TestAdamConverges(t *testing.T) {
	if v := runOptimizer(t, NewAdam(0.05), 1000); v > 1e-6 {
		t.Fatalf("Adam final value %v, want ≈0", v)
	}
}

func TestSGDSingleStepExact(t *testing.T) {
	p := tensor.FromSlice([]float64{1, 2}, 2)
	g := tensor.FromSlice([]float64{0.5, -0.5}, 2)
	NewSGD(0.1).Step([]*tensor.Tensor{p}, []*tensor.Tensor{g}, nil)
	want := tensor.FromSlice([]float64{0.95, 2.05}, 2)
	if !tensor.AllClose(p, want, 1e-12) {
		t.Fatalf("p = %v, want %v", p, want)
	}
}

func TestWeightDecayShrinksParams(t *testing.T) {
	p := tensor.FromSlice([]float64{10}, 1)
	g := tensor.New(1) // zero gradient: only decay acts
	opt := NewSGD(0.1)
	opt.WeightDecay = 0.5
	opt.Step([]*tensor.Tensor{p}, []*tensor.Tensor{g}, nil)
	// p -= lr * wd * p = 10 - 0.1*0.5*10 = 9.5
	if math.Abs(p.Data[0]-9.5) > 1e-12 {
		t.Fatalf("p = %v, want 9.5", p.Data[0])
	}
}

func TestDecayMaskExemptsParams(t *testing.T) {
	p1 := tensor.FromSlice([]float64{10}, 1)
	p2 := tensor.FromSlice([]float64{10}, 1)
	g1, g2 := tensor.New(1), tensor.New(1)
	opt := NewSGD(0.1)
	opt.WeightDecay = 0.5
	opt.Step([]*tensor.Tensor{p1, p2}, []*tensor.Tensor{g1, g2}, []bool{true, false})
	if p1.Data[0] >= 10 {
		t.Fatal("decayed param did not shrink")
	}
	if p2.Data[0] != 10 {
		t.Fatalf("exempt param changed: %v", p2.Data[0])
	}
}

func TestClipNormCapsUpdates(t *testing.T) {
	p := tensor.New(2)
	g := tensor.FromSlice([]float64{300, 400}, 2) // norm 500
	opt := NewSGD(1.0)
	opt.ClipNorm = 5
	opt.Step([]*tensor.Tensor{p}, []*tensor.Tensor{g}, nil)
	// Clipped gradient has norm 5 => update norm 5 with lr 1.
	if n := p.L2Norm(); math.Abs(n-5) > 1e-9 {
		t.Fatalf("update norm = %v, want 5", n)
	}
}

func TestClipNormNoEffectWhenSmall(t *testing.T) {
	p := tensor.New(1)
	g := tensor.FromSlice([]float64{0.1}, 1)
	opt := NewSGD(1.0)
	opt.ClipNorm = 5
	opt.Step([]*tensor.Tensor{p}, []*tensor.Tensor{g}, nil)
	if math.Abs(p.Data[0]+0.1) > 1e-12 {
		t.Fatalf("p = %v, want -0.1 (unclipped)", p.Data[0])
	}
}

func TestStepDecaySchedule(t *testing.T) {
	s := StepDecayLR(1.0, 0.5, 10)
	cases := map[int]float64{0: 1.0, 9: 1.0, 10: 0.5, 19: 0.5, 20: 0.25}
	for step, want := range cases {
		if got := s(step); math.Abs(got-want) > 1e-12 {
			t.Fatalf("schedule(%d) = %v, want %v", step, got, want)
		}
	}
}

func TestCosineSchedule(t *testing.T) {
	s := CosineLR(1.0, 0.1, 100)
	if got := s(0); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("cosine(0) = %v, want 1.0", got)
	}
	if got := s(100); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("cosine(100) = %v, want 0.1", got)
	}
	if got := s(1000); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("cosine(1000) = %v, want floor", got)
	}
	mid := s(50)
	if mid <= 0.1 || mid >= 1.0 {
		t.Fatalf("cosine(50) = %v, want strictly between floor and peak", mid)
	}
}

func TestScheduleDrivenSGD(t *testing.T) {
	opt := &SGD{Schedule: StepDecayLR(0.2, 0.5, 100)}
	if v := runOptimizer(t, opt, 300); v > 1e-8 {
		t.Fatalf("scheduled SGD final value %v", v)
	}
}

func TestMisalignedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on misaligned params/grads")
		}
	}()
	NewSGD(0.1).Step([]*tensor.Tensor{tensor.New(1)}, nil, nil)
}

func TestMomentumAcceleratesOnRavine(t *testing.T) {
	// On an ill-conditioned quadratic, momentum should reach a lower value
	// than plain SGD in the same number of steps with the same LR.
	build := func() (*tensor.Tensor, func(*tensor.Tensor) *tensor.Tensor, func(*tensor.Tensor) float64) {
		p := tensor.FromSlice([]float64{5, 5}, 2)
		grad := func(p *tensor.Tensor) *tensor.Tensor {
			return tensor.FromSlice([]float64{2 * 0.01 * p.Data[0], 2 * 1.0 * p.Data[1]}, 2)
		}
		val := func(p *tensor.Tensor) float64 {
			return 0.01*p.Data[0]*p.Data[0] + p.Data[1]*p.Data[1]
		}
		return p, grad, val
	}
	run := func(opt Optimizer) float64 {
		p, grad, val := build()
		for i := 0; i < 100; i++ {
			opt.Step([]*tensor.Tensor{p}, []*tensor.Tensor{grad(p)}, nil)
		}
		return val(p)
	}
	plain := run(NewSGD(0.1))
	mom := run(NewSGDMomentum(0.1, 0.9))
	if mom >= plain {
		t.Fatalf("momentum (%v) should beat plain SGD (%v) on a ravine", mom, plain)
	}
}

func TestSGDStateRestoreContinuesBitIdentically(t *testing.T) {
	mk := func() *SGD {
		opt := NewSGDMomentum(0.1, 0.9)
		opt.Schedule = StepDecayLR(0.1, 0.5, 3) // step count must survive too
		return opt
	}
	params := func() []*tensor.Tensor {
		return []*tensor.Tensor{tensor.FromSlice([]float64{1, 2, 3}, 3)}
	}
	grad := []*tensor.Tensor{tensor.FromSlice([]float64{0.5, -1, 0.25}, 3)}

	ref, p1 := mk(), params()
	for i := 0; i < 4; i++ {
		ref.Step(p1, grad, nil)
	}
	st := ref.State()

	restored, p2 := mk(), params()
	// Bring p2 to p1's current values (the model snapshot does this in a
	// real checkpoint), then restore optimizer state.
	copy(p2[0].Data, p1[0].Data)
	if err := restored.Restore(st); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		ref.Step(p1, grad, nil)
		restored.Step(p2, grad, nil)
	}
	for j := range p1[0].Data {
		if p1[0].Data[j] != p2[0].Data[j] {
			t.Fatalf("param %d diverged after restore: %v vs %v", j, p1[0].Data[j], p2[0].Data[j])
		}
	}
}

func TestSGDRestoreValidation(t *testing.T) {
	opt := NewSGDMomentum(0.1, 0.9)
	if err := opt.Restore(SGDState{Step: -1}); err == nil {
		t.Fatal("negative step must error")
	}
	if err := opt.Restore(SGDState{
		VelocityShapes: [][]int{{2}},
		VelocityData:   [][]float64{{1, 2, 3}},
	}); err == nil {
		t.Fatal("shape/data mismatch must error")
	}
}
