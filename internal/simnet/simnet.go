// Package simnet provides the deterministic virtual-clock accounting the
// latency evaluation runs on.
//
// The paper's delay numbers come from summing compute and transfer times
// along each scheme's critical path: sequential stages add, parallel
// stages take the max. A Ledger records those contributions per
// component (client compute, uplink, downlink, server compute, model
// relay, aggregation), which yields both the Fig. 2(b) curves and the
// latency-breakdown table. No real time passes; everything is replayable
// and exact.
package simnet

import (
	"fmt"
	"sort"
	"strings"
)

// Component labels one contributor to round latency.
type Component int

const (
	// ClientCompute is client-side forward+backward time.
	ClientCompute Component = iota
	// Uplink is smashed-data / model upload time.
	Uplink
	// ServerCompute is server-side forward+backward time.
	ServerCompute
	// Downlink is gradient / model download time.
	Downlink
	// Relay is client-model hand-off between consecutive clients.
	Relay
	// Aggregation is FedAvg time at the AP.
	Aggregation
	numComponents
)

// String implements fmt.Stringer.
func (c Component) String() string {
	switch c {
	case ClientCompute:
		return "client-compute"
	case Uplink:
		return "uplink"
	case ServerCompute:
		return "server-compute"
	case Downlink:
		return "downlink"
	case Relay:
		return "relay"
	case Aggregation:
		return "aggregation"
	default:
		return fmt.Sprintf("Component(%d)", int(c))
	}
}

// Components lists all components in display order.
func Components() []Component {
	out := make([]Component, numComponents)
	for i := range out {
		out[i] = Component(i)
	}
	return out
}

// Ledger accumulates virtual seconds per component. The zero value is an
// empty ledger ready to use.
type Ledger struct {
	seconds [numComponents]float64
	// onAdd, when set, observes every Add in order — the execution
	// tracer's tap into the latency model. It never affects the totals;
	// the disabled state is a single nil check on the pricing path.
	onAdd func(Component, float64)
}

// Add records dt seconds against component c. Negative durations panic:
// time never runs backward in the simulation.
func (l *Ledger) Add(c Component, dt float64) {
	if dt < 0 {
		panic(fmt.Sprintf("simnet: negative duration %v for %v", dt, c))
	}
	if c < 0 || c >= numComponents {
		panic(fmt.Sprintf("simnet: unknown component %d", int(c)))
	}
	l.seconds[c] += dt
	if l.onAdd != nil {
		l.onAdd(c, dt)
	}
}

// Observe installs fn as the ledger's Add observer (nil detaches). The
// observer sees each (component, dt) in pricing order; it must not
// mutate the ledger.
func (l *Ledger) Observe(fn func(Component, float64)) {
	l.onAdd = fn
}

// Get returns the accumulated seconds for component c.
func (l *Ledger) Get(c Component) float64 {
	if c < 0 || c >= numComponents {
		panic(fmt.Sprintf("simnet: unknown component %d", int(c)))
	}
	return l.seconds[c]
}

// Total returns the sum over all components.
func (l *Ledger) Total() float64 {
	t := 0.0
	for _, s := range l.seconds {
		t += s
	}
	return t
}

// Merge adds every component of other into l (sequential composition).
func (l *Ledger) Merge(other *Ledger) {
	for i := range l.seconds {
		l.seconds[i] += other.seconds[i]
	}
}

// MaxOf returns a ledger representing parallel composition: the ledger
// among ls with the largest total (the critical path). Component detail
// of the chosen ledger is preserved so breakdowns stay meaningful; any
// Add observer is NOT inherited (the copy starts a new lane in time,
// so the winner's per-lane tap would misattribute later adds).
// It panics on an empty slice.
func MaxOf(ls []*Ledger) *Ledger {
	if len(ls) == 0 {
		panic("simnet: MaxOf of zero ledgers")
	}
	best := ls[0]
	for _, l := range ls[1:] {
		if l.Total() > best.Total() {
			best = l
		}
	}
	cp := *best
	cp.onAdd = nil
	return &cp
}

// Breakdown renders the per-component totals, largest first.
func (l *Ledger) Breakdown() string {
	type row struct {
		c Component
		s float64
	}
	rows := make([]row, 0, numComponents)
	for i, s := range l.seconds {
		rows = append(rows, row{Component(i), s})
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].s > rows[b].s })
	var sb strings.Builder
	for _, r := range rows {
		if r.s == 0 {
			continue
		}
		fmt.Fprintf(&sb, "%-16s %12.4fs\n", r.c, r.s)
	}
	fmt.Fprintf(&sb, "%-16s %12.4fs\n", "total", l.Total())
	return sb.String()
}

// Clock is a monotone virtual clock measured in seconds.
type Clock struct {
	now float64
}

// Now returns the current virtual time.
func (c *Clock) Now() float64 { return c.now }

// Advance moves the clock forward by dt seconds.
func (c *Clock) Advance(dt float64) {
	if dt < 0 {
		panic(fmt.Sprintf("simnet: clock cannot move backward (dt=%v)", dt))
	}
	c.now += dt
}

// AdvanceTo moves the clock to t, which must not be in the past.
func (c *Clock) AdvanceTo(t float64) {
	if t < c.now {
		panic(fmt.Sprintf("simnet: AdvanceTo(%v) before now (%v)", t, c.now))
	}
	c.now = t
}
