package simnet

import (
	"math"
	"testing"
)

func TestEnergyModelAttribution(t *testing.T) {
	m := EnergyModel{ClientComputeW: 2, ClientTxW: 1, ClientRxW: 0.5, ServerComputeW: 100}
	var l Ledger
	l.Add(ClientCompute, 10) // 20 J client
	l.Add(Uplink, 4)         // 4 J client
	l.Add(Downlink, 2)       // 1 J client
	l.Add(Relay, 8)          // 8 * 0.75 = 6 J client
	l.Add(ServerCompute, 3)  // 300 J server
	l.Add(Aggregation, 1)    // 100 J server

	if got := m.ClientEnergyJ(&l); math.Abs(got-31) > 1e-12 {
		t.Fatalf("client energy = %v, want 31", got)
	}
	if got := m.ServerEnergyJ(&l); math.Abs(got-400) > 1e-12 {
		t.Fatalf("server energy = %v, want 400", got)
	}
	if got := m.TotalEnergyJ(&l); math.Abs(got-431) > 1e-12 {
		t.Fatalf("total energy = %v, want 431", got)
	}
}

func TestEnergyModelEmptyLedger(t *testing.T) {
	m := DefaultEnergyModel()
	var l Ledger
	if m.TotalEnergyJ(&l) != 0 {
		t.Fatal("empty ledger must cost zero energy")
	}
}

func TestEnergyModelValidate(t *testing.T) {
	if err := DefaultEnergyModel().Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
	bad := EnergyModel{ClientComputeW: -1}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative power accepted")
	}
}

func TestEnergyAdditiveUnderMerge(t *testing.T) {
	m := DefaultEnergyModel()
	var a, b Ledger
	a.Add(Uplink, 2)
	a.Add(ClientCompute, 1)
	b.Add(Downlink, 3)
	b.Add(ServerCompute, 0.5)
	ea := m.TotalEnergyJ(&a)
	eb := m.TotalEnergyJ(&b)
	a.Merge(&b)
	if got := m.TotalEnergyJ(&a); math.Abs(got-(ea+eb)) > 1e-12 {
		t.Fatalf("energy not additive: %v vs %v", got, ea+eb)
	}
}
