package simnet

import "fmt"

// EnergyModel converts a latency ledger into energy estimates — the
// second resource that "resource-limited" wireless clients actually run
// out of. Power draws are average device-level figures; energy is simply
// power × time per component, attributed to whoever burns it:
//
//   - client energy: local compute at ClientComputeW, uplink transmission
//     at ClientTxW, downlink reception at ClientRxW, relays at the mean of
//     tx/rx (each relay is one upload by one client and one download by
//     another);
//   - server energy: server compute and aggregation at ServerComputeW.
type EnergyModel struct {
	ClientComputeW float64
	ClientTxW      float64
	ClientRxW      float64
	ServerComputeW float64
}

// DefaultEnergyModel uses mobile-SoC-class figures: ~2 W sustained CNN
// compute, ~1.2 W radio transmit (23 dBm PA plus chain), ~0.8 W receive,
// and a 150 W edge-server accelerator.
func DefaultEnergyModel() EnergyModel {
	return EnergyModel{
		ClientComputeW: 2.0,
		ClientTxW:      1.2,
		ClientRxW:      0.8,
		ServerComputeW: 150,
	}
}

// Validate reports non-physical configurations.
func (m EnergyModel) Validate() error {
	if m.ClientComputeW < 0 || m.ClientTxW < 0 || m.ClientRxW < 0 || m.ServerComputeW < 0 {
		return fmt.Errorf("simnet: negative power in energy model %+v", m)
	}
	return nil
}

// ClientEnergyJ estimates total client-side energy for the ledger.
func (m EnergyModel) ClientEnergyJ(l *Ledger) float64 {
	relayW := (m.ClientTxW + m.ClientRxW) / 2
	return l.Get(ClientCompute)*m.ClientComputeW +
		l.Get(Uplink)*m.ClientTxW +
		l.Get(Downlink)*m.ClientRxW +
		l.Get(Relay)*relayW
}

// ServerEnergyJ estimates total edge-server energy for the ledger.
func (m EnergyModel) ServerEnergyJ(l *Ledger) float64 {
	return (l.Get(ServerCompute) + l.Get(Aggregation)) * m.ServerComputeW
}

// TotalEnergyJ is the sum of client and server energy.
func (m EnergyModel) TotalEnergyJ(l *Ledger) float64 {
	return m.ClientEnergyJ(l) + m.ServerEnergyJ(l)
}
