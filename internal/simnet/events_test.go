package simnet

import (
	"math/rand"
	"sort"
	"testing"
)

// TestEventQueueOrdering pops a shuffled event set and checks the
// sequence is sorted by (Time, ID) — the determinism contract.
func TestEventQueueOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var evs []Event
	for i := 0; i < 500; i++ {
		// Coarse times force plenty of ties to exercise the ID tie-break.
		evs = append(evs, Event{Time: float64(rng.Intn(20)), ID: int64(i)})
	}
	rng.Shuffle(len(evs), func(i, j int) { evs[i], evs[j] = evs[j], evs[i] })

	want := append([]Event(nil), evs...)
	sort.Slice(want, func(i, j int) bool { return want[i].less(want[j]) })

	// Half the events via bulk init, half via Push: both construction
	// paths must agree.
	q := NewEventQueue(append([]Event(nil), evs[:250]...))
	for _, e := range evs[250:] {
		q.Push(e)
	}
	for i := 0; q.Len() > 0; i++ {
		if got := q.Pop(); got != want[i] {
			t.Fatalf("pop %d: got %+v, want %+v", i, got, want[i])
		}
	}
}

// TestEventQueueInterleaved interleaves pushes and pops the way the
// population's toggle loop does, checking the head is always minimal.
func TestEventQueueInterleaved(t *testing.T) {
	var q EventQueue
	rng := rand.New(rand.NewSource(3))
	prev := -1.0
	for step := 0; step < 2000; step++ {
		if q.Len() == 0 || rng.Intn(3) > 0 {
			q.Push(Event{Time: prev + rng.Float64()*5, ID: int64(step)})
			continue
		}
		e := q.Pop()
		if e.Time < prev {
			t.Fatalf("step %d: popped time %v after %v", step, e.Time, prev)
		}
		prev = e.Time
	}
}

// TestEventQueueSteadyStateAllocs pins the pop/push cycle as
// allocation-free once capacity is established.
func TestEventQueueSteadyStateAllocs(t *testing.T) {
	var q EventQueue
	for i := 0; i < 1024; i++ {
		q.Push(Event{Time: float64(i), ID: int64(i)})
	}
	allocs := testing.AllocsPerRun(100, func() {
		e := q.Pop()
		e.Time += 1000
		q.Push(e)
	})
	if allocs > 0 {
		t.Fatalf("steady-state pop/push allocated %v times per cycle", allocs)
	}
}
