package simnet

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestLedgerAddAndTotal(t *testing.T) {
	var l Ledger
	l.Add(ClientCompute, 1.5)
	l.Add(Uplink, 0.5)
	l.Add(ClientCompute, 0.5)
	if got := l.Get(ClientCompute); got != 2 {
		t.Fatalf("ClientCompute = %v, want 2", got)
	}
	if got := l.Total(); got != 2.5 {
		t.Fatalf("Total = %v, want 2.5", got)
	}
	if got := l.Get(Downlink); got != 0 {
		t.Fatalf("untouched component = %v", got)
	}
}

func TestLedgerNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var l Ledger
	l.Add(Uplink, -1)
}

func TestLedgerUnknownComponentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var l Ledger
	l.Add(Component(99), 1)
}

func TestMergeIsSequentialComposition(t *testing.T) {
	var a, b Ledger
	a.Add(Uplink, 1)
	b.Add(Uplink, 2)
	b.Add(Relay, 3)
	a.Merge(&b)
	if a.Get(Uplink) != 3 || a.Get(Relay) != 3 {
		t.Fatalf("merge result: uplink=%v relay=%v", a.Get(Uplink), a.Get(Relay))
	}
	if a.Total() != 6 {
		t.Fatalf("merged total = %v", a.Total())
	}
}

func TestMaxOfPicksCriticalPath(t *testing.T) {
	var a, b, c Ledger
	a.Add(Uplink, 1)
	b.Add(ServerCompute, 5)
	c.Add(Downlink, 3)
	got := MaxOf([]*Ledger{&a, &b, &c})
	if got.Total() != 5 || got.Get(ServerCompute) != 5 {
		t.Fatalf("MaxOf picked wrong ledger: %v", got.Breakdown())
	}
	// The returned ledger is a copy: mutating it must not affect b.
	got.Add(Uplink, 100)
	if b.Get(Uplink) != 0 {
		t.Fatal("MaxOf must return a copy")
	}
}

func TestMaxOfEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MaxOf(nil)
}

func TestBreakdownRendering(t *testing.T) {
	var l Ledger
	l.Add(Uplink, 2)
	l.Add(ClientCompute, 1)
	s := l.Breakdown()
	if !strings.Contains(s, "uplink") || !strings.Contains(s, "total") {
		t.Fatalf("breakdown missing rows:\n%s", s)
	}
	// Zero components are suppressed.
	if strings.Contains(s, "aggregation") {
		t.Fatalf("breakdown shows zero component:\n%s", s)
	}
	// Largest first.
	if strings.Index(s, "uplink") > strings.Index(s, "client-compute") {
		t.Fatalf("breakdown not sorted:\n%s", s)
	}
}

func TestComponentsAndStrings(t *testing.T) {
	cs := Components()
	if len(cs) != int(numComponents) {
		t.Fatalf("Components() = %d entries", len(cs))
	}
	for _, c := range cs {
		if strings.HasPrefix(c.String(), "Component(") {
			t.Fatalf("component %d lacks a name", int(c))
		}
	}
}

func TestClock(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatal("zero clock must start at 0")
	}
	c.Advance(1.5)
	c.AdvanceTo(3)
	if c.Now() != 3 {
		t.Fatalf("Now = %v, want 3", c.Now())
	}
}

func TestClockBackwardPanics(t *testing.T) {
	var c Clock
	c.Advance(5)
	for name, f := range map[string]func(){
		"advance": func() { c.Advance(-1) },
		"to":      func() { c.AdvanceTo(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// prop: Total is additive under Merge and Ledger ordering is irrelevant.
func TestPropLedgerAdditive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var a, b Ledger
		ta, tb := 0.0, 0.0
		for i := 0; i < 20; i++ {
			c := Component(rng.Intn(int(numComponents)))
			d := rng.Float64()
			if i%2 == 0 {
				a.Add(c, d)
				ta += d
			} else {
				b.Add(c, d)
				tb += d
			}
		}
		a.Merge(&b)
		return math.Abs(a.Total()-(ta+tb)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// prop: MaxOf total ≥ every input total.
func TestPropMaxOfDominates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		ls := make([]*Ledger, n)
		for i := range ls {
			var l Ledger
			for j := 0; j < 5; j++ {
				l.Add(Component(rng.Intn(int(numComponents))), rng.Float64())
			}
			ls[i] = &l
		}
		m := MaxOf(ls)
		for _, l := range ls {
			if m.Total() < l.Total() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
