package simnet

import (
	"math"
	"testing"
)

// linearRate is a rate function exactly proportional to bandwidth:
// 1 bit/s per Hz, making expected completion times hand-computable.
func linearRate(client int, wHz float64, uplink bool) float64 { return wHz }

func TestEventSimSingleChainSequential(t *testing.T) {
	chains := [][]Task{{
		{Kind: TaskCompute, Seconds: 2, Component: ClientCompute},
		{Kind: TaskUplink, Bits: 10, Client: 0, Component: Uplink},
		{Kind: TaskCompute, Seconds: 1, Component: ServerCompute},
		{Kind: TaskDownlink, Bits: 20, Client: 0, Component: Downlink},
	}}
	res, err := RunChains(chains, 10, 10, linearRate)
	if err != nil {
		t.Fatal(err)
	}
	// 2s + 10bits/10Hz + 1s + 20bits/10Hz = 2+1+1+2 = 6.
	if math.Abs(res.Makespan-6) > 1e-9 {
		t.Fatalf("makespan = %v, want 6", res.Makespan)
	}
	led := res.Ledgers[0]
	if math.Abs(led.Get(ClientCompute)-2) > 1e-9 || math.Abs(led.Get(Downlink)-2) > 1e-9 {
		t.Fatalf("ledger attribution wrong: %s", led.Breakdown())
	}
}

func TestEventSimProcessorSharing(t *testing.T) {
	// Two identical uplink transfers start together: they share the link,
	// each at half rate, finishing together at twice the solo time.
	chains := [][]Task{
		{{Kind: TaskUplink, Bits: 10, Client: 0, Component: Uplink}},
		{{Kind: TaskUplink, Bits: 10, Client: 1, Component: Uplink}},
	}
	res, err := RunChains(chains, 10, 10, linearRate)
	if err != nil {
		t.Fatal(err)
	}
	// Solo: 1s. Shared: each gets 5 Hz -> 2s.
	for i, f := range res.ChainFinish {
		if math.Abs(f-2) > 1e-9 {
			t.Fatalf("chain %d finish = %v, want 2", i, f)
		}
	}
}

func TestEventSimDesynchronizedSharing(t *testing.T) {
	// Chain A transfers immediately; chain B computes 1s first. A has the
	// full link for 1s (10 bits done), then shares: remaining 10 bits at
	// 5 Hz -> 2 more seconds. A finishes at 3. B's 10 bits: 1s compute,
	// then 5 Hz while sharing with A (2s -> 10 bits done at t=3).
	chains := [][]Task{
		{{Kind: TaskUplink, Bits: 20, Client: 0, Component: Uplink}},
		{
			{Kind: TaskCompute, Seconds: 1, Component: ClientCompute},
			{Kind: TaskUplink, Bits: 10, Client: 1, Component: Uplink},
		},
	}
	res, err := RunChains(chains, 10, 10, linearRate)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ChainFinish[0]-3) > 1e-9 {
		t.Fatalf("chain A finish = %v, want 3", res.ChainFinish[0])
	}
	if math.Abs(res.ChainFinish[1]-3) > 1e-9 {
		t.Fatalf("chain B finish = %v, want 3", res.ChainFinish[1])
	}
}

func TestEventSimDirectionsDoNotContend(t *testing.T) {
	// An uplink and a downlink transfer run concurrently at full budget.
	chains := [][]Task{
		{{Kind: TaskUplink, Bits: 10, Client: 0, Component: Uplink}},
		{{Kind: TaskDownlink, Bits: 10, Client: 1, Component: Downlink}},
	}
	res, err := RunChains(chains, 10, 10, linearRate)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range res.ChainFinish {
		if math.Abs(f-1) > 1e-9 {
			t.Fatalf("chain %d finish = %v, want 1 (no cross-direction contention)", i, f)
		}
	}
}

func TestEventSimZeroBitTransfer(t *testing.T) {
	chains := [][]Task{{
		{Kind: TaskUplink, Bits: 0, Client: 0, Component: Uplink},
		{Kind: TaskCompute, Seconds: 1, Component: ClientCompute},
	}}
	res, err := RunChains(chains, 10, 10, linearRate)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-1) > 1e-9 {
		t.Fatalf("makespan = %v, want 1", res.Makespan)
	}
}

func TestEventSimEmptyChains(t *testing.T) {
	res, err := RunChains([][]Task{{}, {}}, 10, 10, linearRate)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 0 {
		t.Fatalf("empty chains makespan = %v", res.Makespan)
	}
}

func TestEventSimValidation(t *testing.T) {
	if _, err := RunChains(nil, 0, 10, linearRate); err == nil {
		t.Fatal("zero budget accepted")
	}
	bad := [][]Task{{{Kind: TaskCompute, Seconds: -1}}}
	if _, err := RunChains(bad, 10, 10, linearRate); err == nil {
		t.Fatal("negative duration accepted")
	}
	unknown := [][]Task{{{Kind: TaskKind(99)}}}
	if _, err := RunChains(unknown, 10, 10, linearRate); err == nil {
		t.Fatal("unknown kind accepted")
	}
	zeroRate := [][]Task{{{Kind: TaskUplink, Bits: 1, Client: 0, Component: Uplink}}}
	if _, err := RunChains(zeroRate, 10, 10, func(int, float64, bool) float64 { return 0 }); err == nil {
		t.Fatal("zero rate accepted")
	}
}

func TestEventSimMakespanIsMaxFinish(t *testing.T) {
	chains := [][]Task{
		{{Kind: TaskCompute, Seconds: 5, Component: ClientCompute}},
		{{Kind: TaskCompute, Seconds: 2, Component: ClientCompute}},
	}
	res, err := RunChains(chains, 10, 10, linearRate)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 5 || res.ChainFinish[1] != 2 {
		t.Fatalf("makespan %v, finishes %v", res.Makespan, res.ChainFinish)
	}
}

// Under sublinear (Shannon-like) rates, sharing is less than twice as
// slow as solo — the effect that makes GSFL's concurrent transfers
// cheaper than a naive 1/M split suggests.
func TestEventSimSublinearRateSharingAdvantage(t *testing.T) {
	shannon := func(client int, wHz float64, uplink bool) float64 {
		snrPerHz := 1e7 // high-SNR regime
		return wHz * math.Log2(1+snrPerHz/wHz)
	}
	solo := [][]Task{{{Kind: TaskUplink, Bits: 1e6, Client: 0, Component: Uplink}}}
	rSolo, err := RunChains(solo, 10e6, 10e6, shannon)
	if err != nil {
		t.Fatal(err)
	}
	shared := [][]Task{
		{{Kind: TaskUplink, Bits: 1e6, Client: 0, Component: Uplink}},
		{{Kind: TaskUplink, Bits: 1e6, Client: 1, Component: Uplink}},
	}
	rShared, err := RunChains(shared, 10e6, 10e6, shannon)
	if err != nil {
		t.Fatal(err)
	}
	ratio := rShared.Makespan / rSolo.Makespan
	if ratio >= 2 || ratio <= 1 {
		t.Fatalf("sharing slowdown ratio = %v, want within (1, 2) under Shannon rates", ratio)
	}
}
