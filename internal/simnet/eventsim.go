package simnet

import (
	"fmt"
	"math"
)

// This file implements an event-driven execution model for chains of
// compute and transfer tasks sharing wireless links — a finer-grained
// alternative to the position-synchronized bandwidth split the analytic
// GSFL latency model uses.
//
// In the analytic model, the M groups are assumed to advance in
// lockstep: while every group trains its p-th client, those M clients
// split the spectrum evenly for the whole position. In reality groups
// desynchronize (a fast group reaches its uplink while a slow one is
// still computing), so the number of concurrent transfers fluctuates and
// the spectrum is re-divided whenever it changes. EventSim models exactly
// that: transfers progress under processor sharing — at any instant the k
// active same-direction transfers each get budget/k Hz, converted to a
// rate by the caller's RateFunc — and every task completion re-triggers
// rate recomputation. Experiment V in DESIGN.md uses it to quantify the
// approximation error of the analytic model.

// TaskKind distinguishes chain task types.
type TaskKind int

const (
	// TaskCompute runs for a fixed duration on a dedicated resource.
	TaskCompute TaskKind = iota
	// TaskUplink moves bits over the shared uplink.
	TaskUplink
	// TaskDownlink moves bits over the shared downlink.
	TaskDownlink
)

// Task is one stage in a chain.
type Task struct {
	Kind TaskKind
	// Seconds is the duration of a compute task (ignored for transfers).
	Seconds float64
	// Bits is the transfer size (ignored for compute).
	Bits float64
	// Client identifies whose radio the transfer uses (rate lookup).
	Client int
	// Component attributes the task's elapsed time in the ledger.
	Component Component
}

// RateFunc returns the achievable rate in bits/s for a client granted
// wHz of bandwidth in the given direction. It must be positive for
// positive wHz. Pass (*wireless.Channel).MeanRate-backed closures.
type RateFunc func(client int, wHz float64, uplink bool) float64

// EventResult reports an event-driven execution.
type EventResult struct {
	// Makespan is when the last chain finished.
	Makespan float64
	// ChainFinish holds each chain's completion time.
	ChainFinish []float64
	// Ledgers attributes each chain's elapsed time per component.
	Ledgers []*Ledger
}

// RunChains executes the chains concurrently under processor sharing of
// the uplink and downlink budgets and returns completion times. Chains
// execute their tasks strictly in order; compute tasks of different
// chains never contend (each client/server replica is its own resource,
// matching the GSFL architecture).
func RunChains(chains [][]Task, upHz, downHz float64, rate RateFunc) (EventResult, error) {
	if upHz <= 0 || downHz <= 0 {
		return EventResult{}, fmt.Errorf("simnet: budgets must be positive (up %v, down %v)", upHz, downHz)
	}
	n := len(chains)
	res := EventResult{
		ChainFinish: make([]float64, n),
		Ledgers:     make([]*Ledger, n),
	}
	type state struct {
		idx       int     // current task index
		remaining float64 // seconds (compute) or bits (transfer)
	}
	st := make([]state, n)
	active := 0
	for i, ch := range chains {
		res.Ledgers[i] = &Ledger{}
		for ti, task := range ch {
			if err := validateTask(task); err != nil {
				return EventResult{}, fmt.Errorf("simnet: chain %d task %d: %w", i, ti, err)
			}
		}
		if len(ch) > 0 {
			st[i].remaining = taskBudget(ch[0])
			active++
		}
	}

	now := 0.0
	const eps = 1e-12
	// Each iteration advances to the next task completion. Every
	// iteration completes at least one task, so the loop is bounded by
	// the total task count.
	maxIter := 1
	for _, ch := range chains {
		maxIter += len(ch) + 1
	}
	for iter := 0; active > 0; iter++ {
		if iter > maxIter {
			return EventResult{}, fmt.Errorf("simnet: event loop exceeded %d iterations (internal bug)", maxIter)
		}
		// Count concurrent transfers per direction to derive shares.
		upActive, downActive := 0, 0
		for i := range st {
			if st[i].idx >= len(chains[i]) {
				continue
			}
			switch chains[i][st[i].idx].Kind {
			case TaskUplink:
				upActive++
			case TaskDownlink:
				downActive++
			}
		}
		// Progress speed of each chain's current task (units/sec in the
		// task's own budget currency).
		speed := make([]float64, n)
		dt := math.Inf(1)
		for i := range st {
			if st[i].idx >= len(chains[i]) {
				continue
			}
			task := chains[i][st[i].idx]
			switch task.Kind {
			case TaskCompute:
				speed[i] = 1
			case TaskUplink:
				speed[i] = rate(task.Client, upHz/float64(upActive), true)
			case TaskDownlink:
				speed[i] = rate(task.Client, downHz/float64(downActive), false)
			}
			if speed[i] <= 0 {
				return EventResult{}, fmt.Errorf("simnet: non-positive rate for chain %d task %d", i, st[i].idx)
			}
			if t := st[i].remaining / speed[i]; t < dt {
				dt = t
			}
		}
		if math.IsInf(dt, 1) {
			break // nothing active (defensive; active>0 should prevent this)
		}
		now += dt
		// Advance every active task and complete those that finish.
		for i := range st {
			if st[i].idx >= len(chains[i]) {
				continue
			}
			task := chains[i][st[i].idx]
			res.Ledgers[i].Add(task.Component, dt)
			st[i].remaining -= dt * speed[i]
			if st[i].remaining <= eps*math.Max(1, taskBudget(task)) {
				st[i].idx++
				if st[i].idx >= len(chains[i]) {
					res.ChainFinish[i] = now
					active--
				} else {
					st[i].remaining = taskBudget(chains[i][st[i].idx])
				}
			}
		}
	}
	res.Makespan = now
	return res, nil
}

func taskBudget(t Task) float64 {
	if t.Kind == TaskCompute {
		return t.Seconds
	}
	return t.Bits
}

func validateTask(t Task) error {
	switch t.Kind {
	case TaskCompute:
		if t.Seconds < 0 {
			return fmt.Errorf("negative compute duration %v", t.Seconds)
		}
	case TaskUplink, TaskDownlink:
		if t.Bits < 0 {
			return fmt.Errorf("negative transfer size %v", t.Bits)
		}
	default:
		return fmt.Errorf("unknown task kind %d", int(t.Kind))
	}
	return nil
}
