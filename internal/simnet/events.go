package simnet

// This file implements a deterministic event queue — the scheduling
// half of the event engine. RunChains (eventsim.go) owns the
// processor-sharing execution of one round's task chains; EventQueue
// owns long-horizon scheduling across rounds, where millions of
// independent actors (population members going online/offline) each
// carry a single "next event" timestamp. The population engine
// (gsfl/pop) drives its availability traces through this queue.
//
// Determinism contract: two events with equal Time pop in ascending ID
// order, so replaying the same pushes always yields the same pop
// sequence regardless of insertion order.

// Event is one scheduled occurrence: actor ID fires at Time.
type Event struct {
	Time float64
	ID   int64
}

// less orders events by time, breaking ties by ID so the pop order is a
// pure function of the event set.
func (e Event) less(o Event) bool {
	if e.Time != o.Time {
		return e.Time < o.Time
	}
	return e.ID < o.ID
}

// EventQueue is a binary min-heap of events. The zero value is an empty
// queue ready for use. Push reuses the backing array's capacity, so a
// steady-state pop/push cycle (the population's toggle loop) does not
// allocate.
type EventQueue struct {
	ev []Event
}

// NewEventQueue heapifies evs in place and returns a queue backed by
// it. Bulk initialization is O(n), versus O(n log n) for n pushes —
// the difference matters when seeding a million-member population.
func NewEventQueue(evs []Event) *EventQueue {
	q := &EventQueue{ev: evs}
	for i := len(evs)/2 - 1; i >= 0; i-- {
		q.siftDown(i)
	}
	return q
}

// Len reports the number of pending events.
func (q *EventQueue) Len() int { return len(q.ev) }

// Cap reports the backing array's capacity — memory accounting for
// callers that bound their resident footprint.
func (q *EventQueue) Cap() int { return cap(q.ev) }

// Peek returns the earliest event without removing it. It panics on an
// empty queue (callers guard with Len).
func (q *EventQueue) Peek() Event { return q.ev[0] }

// Push schedules an event.
func (q *EventQueue) Push(e Event) {
	q.ev = append(q.ev, e)
	q.siftUp(len(q.ev) - 1)
}

// Pop removes and returns the earliest event. It panics on an empty
// queue (callers guard with Len).
func (q *EventQueue) Pop() Event {
	top := q.ev[0]
	last := len(q.ev) - 1
	q.ev[0] = q.ev[last]
	q.ev = q.ev[:last]
	if last > 0 {
		q.siftDown(0)
	}
	return top
}

func (q *EventQueue) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.ev[i].less(q.ev[parent]) {
			return
		}
		q.ev[i], q.ev[parent] = q.ev[parent], q.ev[i]
		i = parent
	}
}

func (q *EventQueue) siftDown(i int) {
	n := len(q.ev)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		min := left
		if right := left + 1; right < n && q.ev[right].less(q.ev[left]) {
			min = right
		}
		if !q.ev[min].less(q.ev[i]) {
			return
		}
		q.ev[i], q.ev[min] = q.ev[min], q.ev[i]
		i = min
	}
}
