// Package parallel provides the shared bounded worker pool behind every
// concurrent hot path in the reproduction: the row-partitioned tensor
// kernels (internal/tensor), the sample-partitioned convolution layers
// (internal/nn), and the concurrent group/client training loops in
// internal/gsfl and internal/schemes/{fl,sfl}.
//
// # Design
//
// The pool is a fixed budget of helper tokens, sized Workers()-1 (one
// worker is always the calling goroutine itself). The single fork-join
// primitive, For, splits an index range into contiguous chunks and
// executes them across the caller plus however many helper goroutines it
// can acquire from the pool *without blocking*. Nested calls — a parallel MatMul inside a group that is
// itself training on a pool worker — therefore never deadlock and never
// oversubscribe the CPU: when the pool is exhausted the inner call simply
// degrades to the serial loop on the calling goroutine.
//
// # Determinism contract
//
// For guarantees nothing about which worker executes which chunk or in
// what order chunks complete. Callers obtain deterministic, bit-identical
// results by construction instead:
//
//   - each chunk must write only state that no other chunk touches
//     (disjoint output rows, samples, channels, groups, …), and
//   - the computation of each output element must stay entirely inside
//     one chunk, in the same element-internal order as the serial code.
//
// Under those two rules the result is independent of both the worker
// count and the scheduling, so parallel runs are bit-for-bit equal to
// Workers()==1 runs. Every user in this repository follows the rules and
// has a determinism test asserting the equality.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

var (
	mu sync.RWMutex
	// width is the configured worker count (caller + helpers).
	width int
	// tokens holds width-1 helper slots. Helpers are acquired
	// non-blockingly, so the pool bounds total concurrency at width
	// without ever deadlocking nested For calls.
	tokens chan struct{}
)

func init() { configure(runtime.GOMAXPROCS(0)) }

func configure(n int) {
	if n < 1 {
		n = 1
	}
	width = n
	tokens = make(chan struct{}, n-1)
	for i := 0; i < n-1; i++ {
		tokens <- struct{}{}
	}
}

// SetWorkers sets the pool's total worker count (the calling goroutine
// plus helper goroutines). n <= 0 resets to runtime.GOMAXPROCS(0).
// SetWorkers(1) disables all parallelism, which is useful both for
// serial baselines in benchmarks and for debugging.
//
// It is safe to call concurrently with running For loops — in-flight
// loops keep the pool they started with — but it is intended to be
// called once at startup (e.g. from a -workers flag).
func SetWorkers(n int) {
	mu.Lock()
	defer mu.Unlock()
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	configure(n)
}

// Workers returns the configured worker count.
func Workers() int {
	mu.RLock()
	defer mu.RUnlock()
	return width
}

// acquire takes up to max helper tokens without blocking and returns how
// many it got plus the channel to release them into.
func acquire(max int) (int, chan struct{}) {
	mu.RLock()
	ch := tokens
	mu.RUnlock()
	got := 0
	for got < max {
		select {
		case <-ch:
			got++
		default:
			return got, ch
		}
	}
	return got, ch
}

// Budget splits a total worker budget across inflight concurrent
// top-level tasks (e.g. sweep jobs): it returns the pool width to pass
// to SetWorkers so that the inflight task goroutines plus the pool's
// helper tokens never exceed total. Each task goroutine is itself a
// worker in every For it issues, so width = total - (inflight - 1),
// floored at 1 — when tasks outnumber the budget, every task simply
// runs serial. total <= 0 means runtime.GOMAXPROCS(0).
func Budget(total, inflight int) int {
	if total <= 0 {
		total = runtime.GOMAXPROCS(0)
	}
	if inflight < 1 {
		inflight = 1
	}
	w := total - (inflight - 1)
	if w < 1 {
		w = 1
	}
	return w
}

// Inline reports whether For(n, grain, body) is guaranteed to run its
// body inline on the calling goroutine: the range fits in a single chunk
// or only one worker is configured. Hot call sites consult it before
// constructing the body closure — a closure passed to For escapes to the
// heap, so skipping its construction keeps steady-state kernels
// allocation-free in serial runs. When Inline returns false For may
// still degrade to the serial loop (pool exhaustion), just not
// provably so.
func Inline(n, grain int) bool {
	if n <= 0 {
		return true
	}
	if grain < 1 {
		grain = 1
	}
	return n <= grain || Workers() == 1
}

// For executes body over the index range [0, n), fork-join style. The
// range is split into contiguous chunks of at least grain indices each
// (the final chunk may carry the smaller remainder); chunks run
// concurrently on the caller plus any pool helpers available, and For
// returns only after every chunk has finished. grain is the serial-work
// floor: when n <= grain (or only one worker is available) the whole
// range runs inline on the caller, so hot loops can call For
// unconditionally without paying goroutine overhead on tiny inputs.
//
// body(lo, hi) must confine its writes to state owned by [lo, hi) — see
// the package comment's determinism contract. A panic in any chunk is
// re-raised on the caller after all workers have stopped.
func For(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	maxChunks := (n + grain - 1) / grain
	want := maxChunks - 1
	if w := Workers() - 1; want > w {
		want = w
	}
	if want <= 0 {
		body(0, n)
		return
	}
	helpers, ch := acquire(want)
	if helpers == 0 {
		body(0, n)
		return
	}
	// Over-decompose a little so an unlucky worker stuck with a slow
	// chunk does not serialize the tail.
	chunks := (helpers + 1) * 4
	if chunks > maxChunks {
		chunks = maxChunks
	}
	size := (n + chunks - 1) / chunks
	if size < grain {
		// Hold the serial-work floor; only the final chunk may be short.
		size = grain
		chunks = (n + size - 1) / size
	}

	var next atomic.Int64
	var panicOnce sync.Once
	var panicVal any
	run := func() {
		defer func() {
			if r := recover(); r != nil {
				panicOnce.Do(func() { panicVal = r })
			}
		}()
		for {
			c := int(next.Add(1)) - 1
			if c >= chunks {
				return
			}
			lo := c * size
			hi := lo + size
			if hi > n {
				hi = n
			}
			if lo < hi {
				body(lo, hi)
			}
		}
	}

	var wg sync.WaitGroup
	wg.Add(helpers)
	for i := 0; i < helpers; i++ {
		go func() {
			defer wg.Done()
			run()
		}()
	}
	run() // the caller is always a worker
	wg.Wait()
	for i := 0; i < helpers; i++ {
		ch <- struct{}{}
	}
	if panicVal != nil {
		panic(panicVal)
	}
}
