package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// withWorkers runs f under a temporary pool width, restoring GOMAXPROCS
// sizing afterwards so tests do not leak configuration.
func withWorkers(t *testing.T, n int, f func()) {
	t.Helper()
	SetWorkers(n)
	defer SetWorkers(0)
	f()
}

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		withWorkers(t, workers, func() {
			for _, n := range []int{0, 1, 7, 64, 1000} {
				hits := make([]int32, n)
				For(n, 1, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
					}
				}
			}
		})
	}
}

func TestForChunksRespectGrain(t *testing.T) {
	withWorkers(t, 8, func() {
		var calls atomic.Int32
		For(10, 100, func(lo, hi int) {
			calls.Add(1)
			if lo != 0 || hi != 10 {
				t.Errorf("grain larger than n must run one inline chunk, got [%d,%d)", lo, hi)
			}
		})
		if calls.Load() != 1 {
			t.Fatalf("expected exactly 1 chunk, got %d", calls.Load())
		}
	})
}

func TestForNegativeAndZeroN(t *testing.T) {
	called := false
	For(0, 1, func(lo, hi int) { called = true })
	For(-5, 1, func(lo, hi int) { called = true })
	if called {
		t.Fatal("For must not invoke body for n <= 0")
	}
}

func TestNestedForDoesNotDeadlock(t *testing.T) {
	withWorkers(t, 4, func() {
		total := make([]int64, 16)
		For(16, 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				sum := int64(0)
				For(100, 10, func(ilo, ihi int) {
					// Inner loops may run inline when the pool is
					// exhausted; either way every index must be covered.
					for j := ilo; j < ihi; j++ {
						atomic.AddInt64(&sum, int64(j))
					}
				})
				total[i] = sum
			}
		})
		for i, s := range total {
			if s != 4950 {
				t.Fatalf("nested sum at %d = %d, want 4950", i, s)
			}
		}
	})
}

func TestForPropagatesPanic(t *testing.T) {
	withWorkers(t, 4, func() {
		defer func() {
			if r := recover(); r != "boom" {
				t.Fatalf("expected panic \"boom\", got %v", r)
			}
		}()
		For(64, 1, func(lo, hi int) {
			if lo == 0 {
				panic("boom")
			}
		})
	})
}

func TestForReleasesTokensAfterPanic(t *testing.T) {
	withWorkers(t, 4, func() {
		for round := 0; round < 10; round++ {
			func() {
				defer func() { recover() }()
				For(64, 1, func(lo, hi int) { panic("boom") })
			}()
		}
		// All tokens must be back: a 4-worker For should still find
		// helpers (observable as >1 distinct goroutine... simplest proxy:
		// it completes and covers the range).
		var covered atomic.Int32
		For(64, 1, func(lo, hi int) { covered.Add(int32(hi - lo)) })
		if covered.Load() != 64 {
			t.Fatalf("pool broken after panics: covered %d/64", covered.Load())
		}
	})
}

func TestSetWorkersBounds(t *testing.T) {
	SetWorkers(3)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d, want 3", Workers())
	}
	SetWorkers(-1)
	if Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers() = %d, want GOMAXPROCS %d", Workers(), runtime.GOMAXPROCS(0))
	}
	SetWorkers(0)
	if Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers() = %d, want GOMAXPROCS %d", Workers(), runtime.GOMAXPROCS(0))
	}
}

func TestBudget(t *testing.T) {
	cases := []struct{ total, inflight, want int }{
		{8, 1, 8},  // one job gets the whole budget
		{8, 4, 5},  // 4 job goroutines + 4 helpers = 8
		{8, 8, 1},  // every job serial
		{8, 16, 1}, // oversubscribed: floor at 1
		{1, 1, 1},
		{4, 0, 4}, // inflight clamps to 1
	}
	for _, c := range cases {
		if got := Budget(c.total, c.inflight); got != c.want {
			t.Fatalf("Budget(%d, %d) = %d, want %d", c.total, c.inflight, got, c.want)
		}
	}
	want := runtime.GOMAXPROCS(0) - 1
	if want < 1 {
		want = 1
	}
	if got := Budget(0, 2); got != want {
		t.Fatalf("Budget(0, 2) = %d, want %d", got, want)
	}
}
