package gsfl

import (
	"testing"

	"gsfl/internal/partition"
	"gsfl/internal/schemes/schemestest"
)

func newDropoutTrainer(t *testing.T, seed int64, n, groups int, p float64) *Trainer {
	t.Helper()
	env := schemestest.NewEnv(seed, n, 40)
	tr, err := New(env, Config{NumGroups: groups, Strategy: partition.GroupRoundRobin, DropoutProb: p})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestDropoutStillLearns(t *testing.T) {
	// With 20% of clients dropping each round, GSFL must still converge —
	// the aggregation just averages over fewer participants.
	tr := newDropoutTrainer(t, 1, 6, 2, 0.2)
	curve := schemestest.RunCurve(t, tr, 20, 4)
	if !curve.IsFinite() {
		t.Fatal("training with dropout diverged")
	}
	if acc := curve.FinalAccuracy(); acc < 0.6 {
		t.Fatalf("final accuracy %v under 20%% dropout", acc)
	}
}

func TestDropoutDeterministic(t *testing.T) {
	c1 := schemestest.RunCurve(t, newDropoutTrainer(t, 2, 6, 2, 0.3), 6, 1)
	c2 := schemestest.RunCurve(t, newDropoutTrainer(t, 2, 6, 2, 0.3), 6, 1)
	for i := range c1.Points {
		if c1.Points[i] != c2.Points[i] {
			t.Fatalf("dropout runs diverged at point %d", i)
		}
	}
}

func TestDropoutReducesRoundLatency(t *testing.T) {
	// Fewer participating clients per round means shorter sequential
	// chains inside groups; average round latency must not exceed the
	// failure-free case. (High dropout makes rounds cheaper, not costlier.)
	latency := func(p float64) float64 {
		tr := newDropoutTrainer(t, 3, 8, 2, p)
		total := 0.0
		for i := 0; i < 10; i++ {
			total += schemestest.MustRound(t, tr).Total()
		}
		return total
	}
	if l0, l5 := latency(0), latency(0.5); l5 >= l0 {
		t.Fatalf("50%% dropout latency %v not below failure-free %v", l5, l0)
	}
}

func TestFullDropoutRoundIsNoOp(t *testing.T) {
	// With dropout ≈ 1 some rounds lose every client; those rounds must
	// not panic, cost nothing, and leave the global model unchanged.
	tr := newDropoutTrainer(t, 4, 4, 2, 0.97)
	beforeC, beforeS := tr.GlobalSnapshots()
	sawNoOp := false
	for i := 0; i < 30; i++ {
		led := schemestest.MustRound(t, tr)
		if led.Total() == 0 {
			sawNoOp = true
			break
		}
		beforeC, beforeS = tr.GlobalSnapshots()
	}
	if !sawNoOp {
		t.Skip("no fully-dropped round occurred in 30 tries (improbable)")
	}
	afterC, afterS := tr.GlobalSnapshots()
	if beforeC.L2Distance(afterC) != 0 || beforeS.L2Distance(afterS) != 0 {
		t.Fatal("no-op round mutated the global model")
	}
}

func TestInvalidDropoutRejected(t *testing.T) {
	env := schemestest.NewEnv(5, 4, 30)
	if _, err := New(env, Config{NumGroups: 2, DropoutProb: 1.0}); err == nil {
		t.Fatal("dropout = 1 must be rejected")
	}
	if _, err := New(env, Config{NumGroups: 2, DropoutProb: -0.1}); err == nil {
		t.Fatal("negative dropout must be rejected")
	}
}
