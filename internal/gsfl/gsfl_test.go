package gsfl

import (
	"math"
	"path/filepath"
	"testing"

	"gsfl/internal/model"
	"gsfl/internal/partition"
	"gsfl/internal/schemes/schemestest"
	"gsfl/internal/simnet"
)

func newTrainer(t *testing.T, seed int64, nClients, groups int) *Trainer {
	t.Helper()
	env := schemestest.NewEnv(seed, nClients, 40)
	tr, err := New(env, Config{NumGroups: groups, Strategy: partition.GroupRoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestGSFLLearnsBlobs(t *testing.T) {
	tr := newTrainer(t, 1, 6, 2)
	curve := schemestest.RunCurve(t, tr, 15, 3)
	if !curve.IsFinite() {
		t.Fatal("training diverged to NaN/Inf")
	}
	final := curve.FinalAccuracy()
	if final < 0.7 {
		t.Fatalf("final accuracy %v; GSFL failed to learn the toy task", final)
	}
	// Loss should drop substantially from the first evaluation.
	first, last := curve.Points[0], curve.Points[len(curve.Points)-1]
	if last.Loss >= first.Loss {
		t.Fatalf("loss did not decrease: %v -> %v", first.Loss, last.Loss)
	}
}

func TestGSFLDeterministic(t *testing.T) {
	c1 := schemestest.RunCurve(t, newTrainer(t, 7, 6, 3), 5, 1)
	c2 := schemestest.RunCurve(t, newTrainer(t, 7, 6, 3), 5, 1)
	for i := range c1.Points {
		a, b := c1.Points[i], c2.Points[i]
		if a.Accuracy != b.Accuracy || a.Loss != b.Loss || a.LatencySeconds != b.LatencySeconds {
			t.Fatalf("run diverged at point %d: %+v vs %+v", i, a, b)
		}
	}
}

func TestGSFLGroupStructure(t *testing.T) {
	tr := newTrainer(t, 2, 10, 4)
	groups := tr.Groups()
	if len(groups) != 4 {
		t.Fatalf("got %d groups", len(groups))
	}
	seen := map[int]bool{}
	for _, g := range groups {
		if len(g) == 0 {
			t.Fatal("empty group")
		}
		for _, ci := range g {
			if seen[ci] {
				t.Fatalf("client %d in two groups", ci)
			}
			seen[ci] = true
		}
	}
	if len(seen) != 10 {
		t.Fatalf("groups cover %d clients, want 10", len(seen))
	}
}

func TestGSFLServerStorageScalesWithM(t *testing.T) {
	tr2 := newTrainer(t, 3, 8, 2)
	tr4 := newTrainer(t, 3, 8, 4)
	if tr2.ServerReplicaCount() != 2 || tr4.ServerReplicaCount() != 4 {
		t.Fatalf("replica counts: %d, %d", tr2.ServerReplicaCount(), tr4.ServerReplicaCount())
	}
	if tr4.ServerStorageBytes() != 2*tr2.ServerStorageBytes() {
		t.Fatalf("storage should scale linearly in M: %d vs %d",
			tr2.ServerStorageBytes(), tr4.ServerStorageBytes())
	}
}

func TestGSFLRoundLedgerComponents(t *testing.T) {
	tr := newTrainer(t, 4, 6, 2)
	led := schemestest.MustRound(t, tr)
	for _, c := range []simnet.Component{
		simnet.ClientCompute, simnet.Uplink, simnet.ServerCompute,
		simnet.Downlink, simnet.Relay, simnet.Aggregation,
	} {
		if led.Get(c) <= 0 {
			t.Fatalf("component %v is zero; the GSFL round must exercise it", c)
		}
	}
	if led.Total() <= 0 || math.IsNaN(led.Total()) {
		t.Fatalf("round total = %v", led.Total())
	}
}

func TestGSFLMoreGroupsReduceRoundLatency(t *testing.T) {
	// With parallel groups, round latency should drop as M grows (the
	// core of the paper's speedup claim). Compare M=1 (SL-like) to M=4.
	lat := func(groups int) float64 {
		tr := newTrainer(t, 5, 8, groups)
		total := 0.0
		for i := 0; i < 3; i++ {
			total += schemestest.MustRound(t, tr).Total()
		}
		return total
	}
	seq := lat(1)
	par := lat(4)
	if par >= seq {
		t.Fatalf("M=4 round latency %v not below M=1 latency %v", par, seq)
	}
}

func TestGSFLAggregationKeepsReplicasInSync(t *testing.T) {
	tr := newTrainer(t, 6, 4, 2)
	schemestest.MustRound(t, tr)
	// After a round, the global snapshots are the FedAvg of the two
	// replicas; restoring them into each replica at the start of the next
	// round means both replicas begin identical. Verify via the global
	// snapshot distance to each replica being equal... simpler: run a
	// round, snapshot, run Evaluate twice — identical results.
	e1 := schemestest.MustEval(t, tr)
	e2 := schemestest.MustEval(t, tr)
	if e1 != e2 {
		t.Fatal("Evaluate must be a pure function of the aggregated model")
	}
}

func TestGSFLConfigValidation(t *testing.T) {
	env := schemestest.NewEnv(1, 4, 30)
	if _, err := New(env, Config{NumGroups: 0}); err == nil {
		t.Fatal("expected error for zero groups")
	}
	if _, err := New(env, Config{NumGroups: 5}); err == nil {
		t.Fatal("expected error for more groups than clients")
	}
	bad := schemestest.NewEnv(1, 4, 30)
	bad.Train = bad.Train[:2]
	if _, err := New(bad, Config{NumGroups: 2}); err == nil {
		t.Fatal("expected error for invalid env")
	}
}

func TestGSFLSingletonGroupsEqualsSFLStructure(t *testing.T) {
	// M = N degenerates to SplitFed: every group has exactly one client.
	tr := newTrainer(t, 8, 5, 5)
	for gi, g := range tr.Groups() {
		if len(g) != 1 {
			t.Fatalf("group %d has %d clients, want 1", gi, len(g))
		}
	}
	if tr.ServerReplicaCount() != 5 {
		t.Fatalf("replicas = %d", tr.ServerReplicaCount())
	}
}

func TestGSFLGlobalSnapshotsAreCopies(t *testing.T) {
	tr := newTrainer(t, 9, 4, 2)
	schemestest.MustRound(t, tr)
	c1, s1 := tr.GlobalSnapshots()
	c1.Tensors[0].Fill(999)
	s1.Tensors[0].Fill(999)
	c2, s2 := tr.GlobalSnapshots()
	if c2.Tensors[0].Data[0] == 999 || s2.Tensors[0].Data[0] == 999 {
		t.Fatal("GlobalSnapshots must return deep copies")
	}
}

func TestGSFLPipelinedSameAccuracyLessLatency(t *testing.T) {
	run := func(pipelined bool) (float64, float64) {
		env := schemestest.NewEnv(42, 6, 40)
		tr, err := New(env, Config{
			NumGroups: 2,
			Strategy:  partition.GroupRoundRobin,
			Pipelined: pipelined,
		})
		if err != nil {
			t.Fatal(err)
		}
		curve := schemestest.RunCurve(t, tr, 6, 2)
		last := curve.Points[len(curve.Points)-1]
		return curve.FinalAccuracy(), last.LatencySeconds
	}
	accSeq, latSeq := run(false)
	accPipe, latPipe := run(true)
	if accSeq != accPipe {
		t.Fatalf("pipelining changed training numerics: %v vs %v", accSeq, accPipe)
	}
	if latPipe >= latSeq {
		t.Fatalf("pipelined latency %v not below sequential %v", latPipe, latSeq)
	}
}

func TestGSFLQuantizedTransfersReduceLatency(t *testing.T) {
	run := func(quant bool) float64 {
		env := schemestest.NewEnv(43, 6, 40)
		env.Hyper.QuantizeTransfers = quant
		tr, err := New(env, Config{NumGroups: 2, Strategy: partition.GroupRoundRobin})
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for i := 0; i < 4; i++ {
			led := schemestest.MustRound(t, tr)
			total += led.Get(simnet.Uplink) + led.Get(simnet.Downlink)
		}
		return total
	}
	full := run(false)
	quant := run(true)
	if quant >= full*0.6 {
		t.Fatalf("8-bit transfer time %v not well below full-precision %v", quant, full)
	}
}

func TestGSFLCheckpointResume(t *testing.T) {
	// Train 3 rounds, checkpoint, build a fresh trainer from the same
	// env, restore, and verify the restored trainer evaluates identically
	// to the original — the production resume path.
	env := schemestest.NewEnv(50, 4, 40)
	tr, err := New(env, Config{NumGroups: 2, Strategy: partition.GroupRoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		schemestest.MustRound(t, tr)
	}
	client, server := tr.GlobalSnapshots()
	path := filepath.Join(t.TempDir(), "resume.gob")
	if err := model.SaveCheckpointFile(path, client, server, env.Cut); err != nil {
		t.Fatal(err)
	}

	c2, s2, cut, err := model.LoadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if cut != env.Cut {
		t.Fatalf("checkpoint cut = %d, want %d", cut, env.Cut)
	}
	env2 := schemestest.NewEnv(50, 4, 40)
	resumed, err := New(env2, Config{NumGroups: 2, Strategy: partition.GroupRoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	resumed.RestoreGlobal(c2, s2)

	e1 := schemestest.MustEval(t, tr)
	e2 := schemestest.MustEval(t, resumed)
	if e1 != e2 {
		t.Fatalf("resumed trainer differs: %+v vs %+v", e1, e2)
	}
	// And it must keep training without issue.
	schemestest.MustRound(t, resumed)
	if e := schemestest.MustEval(t, resumed); e.Accuracy < 0 || e.Accuracy > 1 {
		t.Fatalf("post-resume accuracy %v", e.Accuracy)
	}
}

func TestRestoreGlobalRejectsWrongStructure(t *testing.T) {
	env := schemestest.NewEnv(51, 4, 30)
	tr, err := New(env, Config{NumGroups: 2, Strategy: partition.GroupRoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic restoring mismatched snapshot")
		}
	}()
	bad := model.Snapshot{}
	tr.RestoreGlobal(bad, bad)
}
