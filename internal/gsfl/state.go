package gsfl

import (
	"fmt"

	"gsfl/internal/data"
	"gsfl/internal/model"
	"gsfl/internal/schemes"
)

func init() {
	schemes.Register("gsfl", func(env *schemes.Env, opts schemes.FactoryOpts) (schemes.Trainer, error) {
		return New(env, Config{
			NumGroups:   opts.Groups,
			Strategy:    opts.Strategy,
			Pipelined:   opts.Pipelined,
			DropoutProb: opts.DropoutProb,
		})
	})
}

// CaptureState implements schemes.Checkpointer. GSFL's persistent state
// is the two aggregated global halves, the per-group optimizer pairs
// (replica parameters are rewritten from the global halves every round,
// so they are derived, not state), the per-client loaders, the round
// counter (which keys the dropout stream), and the channel cursor.
// Optimizer slots are captured over the full configured group count
// (clientOpts), not t.groups, which the population path re-slices per
// round. In population mode the loaders carry no cross-round state —
// every round Resets them from the sampled bindings, which the
// population replays deterministically on resume — so zero-value
// states are stored to keep the checkpoint shape fixed.
func (t *Trainer) CaptureState() (*schemes.TrainerState, error) {
	st := &schemes.TrainerState{
		Round:   t.round,
		Channel: t.env.Channel.State(),
		Models: []model.SnapshotState{
			t.globalClient.State(),
			t.globalServer.State(),
		},
	}
	for g := range t.clientOpts {
		st.Opts = append(st.Opts, t.clientOpts[g].State(), t.serverOpts[g].State())
	}
	if t.env.Pop != nil {
		st.Loaders = make([]data.LoaderState, len(t.loaders))
	} else {
		for _, l := range t.loaders {
			st.Loaders = append(st.Loaders, l.State())
		}
	}
	return st, nil
}

// RestoreState implements schemes.Checkpointer.
func (t *Trainer) RestoreState(st *schemes.TrainerState) error {
	if err := st.CheckCounts("gsfl", 2, 2*len(t.clientOpts), len(t.loaders)); err != nil {
		return err
	}
	client, err := model.SnapshotFromState(st.Models[0])
	if err != nil {
		return fmt.Errorf("gsfl: restoring client half: %w", err)
	}
	server, err := model.SnapshotFromState(st.Models[1])
	if err != nil {
		return fmt.Errorf("gsfl: restoring server half: %w", err)
	}
	// Structural validation against the eval scratch model.
	if err := schemes.RestoreSnapshots("gsfl",
		schemes.SnapshotTarget{Snap: client, Dst: t.evalModel.Client},
		schemes.SnapshotTarget{Snap: server, Dst: t.evalModel.Server},
	); err != nil {
		return err
	}
	t.globalClient = client.Clone()
	t.globalServer = server.Clone()
	for g := range t.clientOpts {
		if err := t.clientOpts[g].Restore(st.Opts[2*g]); err != nil {
			return fmt.Errorf("gsfl: group %d client optimizer: %w", g, err)
		}
		if err := t.serverOpts[g].Restore(st.Opts[2*g+1]); err != nil {
			return fmt.Errorf("gsfl: group %d server optimizer: %w", g, err)
		}
	}
	if t.env.Pop == nil {
		for ci, l := range t.loaders {
			if err := l.Restore(st.Loaders[ci]); err != nil {
				return fmt.Errorf("gsfl: client %d loader: %w", ci, err)
			}
		}
	}
	if err := t.env.Channel.Restore(st.Channel); err != nil {
		return fmt.Errorf("gsfl: channel: %w", err)
	}
	t.round = st.Round
	return nil
}
