package gsfl

import (
	"testing"

	"gsfl/internal/metrics"
	"gsfl/internal/model"
	"gsfl/internal/parallel"
	"gsfl/internal/partition"
	"gsfl/internal/schemes/schemestest"
)

// GSFL's groups train on concurrent goroutines, but the contract is that
// worker scheduling never changes anything observable: training curves
// (loss, accuracy, AND latency — the fading RNG draw order is preserved)
// and the aggregated model parameters must be bit-identical to a
// single-worker run.

// runAtWorkers trains a fresh GSFL trainer under the given worker count
// and returns its curve plus the final aggregated halves.
func runAtWorkers(t *testing.T, workers int, cfg Config) (*metrics.Curve, model.Snapshot, model.Snapshot) {
	t.Helper()
	parallel.SetWorkers(workers)
	env := schemestest.NewEnv(21, 8, 40)
	tr, err := New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	curve := schemestest.RunCurve(t, tr, 6, 2)
	client, server := tr.GlobalSnapshots()
	return curve, client, server
}

func mustEqualCurves(t *testing.T, workers int, a, b *metrics.Curve) {
	t.Helper()
	if len(a.Points) != len(b.Points) {
		t.Fatalf("workers=%d: %d curve points vs %d serial", workers, len(b.Points), len(a.Points))
	}
	for i := range a.Points {
		p, q := a.Points[i], b.Points[i]
		if p.Loss != q.Loss || p.Accuracy != q.Accuracy || p.LatencySeconds != q.LatencySeconds {
			t.Fatalf("workers=%d diverged from serial at point %d: %+v vs %+v", workers, i, q, p)
		}
	}
}

func mustEqualSnapshots(t *testing.T, workers int, name string, a, b model.Snapshot) {
	t.Helper()
	if len(a.Tensors) != len(b.Tensors) {
		t.Fatalf("workers=%d %s: %d tensors vs %d serial", workers, name, len(b.Tensors), len(a.Tensors))
	}
	for ti := range a.Tensors {
		x, y := a.Tensors[ti].Data, b.Tensors[ti].Data
		for i := range x {
			if x[i] != y[i] {
				t.Fatalf("workers=%d %s tensor %d element %d: %g vs serial %g",
					workers, name, ti, i, y[i], x[i])
			}
		}
	}
}

func TestGSFLBitIdenticalAcrossWorkers(t *testing.T) {
	defer parallel.SetWorkers(0)
	for _, cfg := range []Config{
		{NumGroups: 3, Strategy: partition.GroupRoundRobin},
		{NumGroups: 3, Strategy: partition.GroupRoundRobin, Pipelined: true},
		{NumGroups: 3, Strategy: partition.GroupRoundRobin, DropoutProb: 0.2},
	} {
		baseCurve, baseClient, baseServer := runAtWorkers(t, 1, cfg)
		for _, workers := range []int{2, 8} {
			curve, client, server := runAtWorkers(t, workers, cfg)
			mustEqualCurves(t, workers, baseCurve, curve)
			mustEqualSnapshots(t, workers, "client-half", baseClient, client)
			mustEqualSnapshots(t, workers, "server-half", baseServer, server)
		}
	}
}
