package gsfl

import (
	"context"
	"testing"

	"gsfl/internal/parallel"
	"gsfl/internal/partition"
	"gsfl/internal/schemes/schemestest"
	"gsfl/internal/testutil"
)

// TestRoundSteadyStateAllocs guards the allocation-free training hot
// path end to end: after warmup, a full GSFL round — model distribution,
// split training in every group, latency pricing, FedAvg aggregation —
// must stay within a small bookkeeping budget. The pre-workspace
// implementation spent tens of thousands of allocations per round (see
// BENCH_hotpath.json); the budget below covers round-scoped bookkeeping
// (ledgers, per-position slices, bandwidth allocations), not per-element
// tensor traffic, so a regression that reintroduces per-step buffer
// allocation trips it immediately. Measured 264 allocs/round after the
// packed-GEMM/implicit-conv rewrite (PR 8, down from 428 at PR 3); the
// limit sits ~10% above the measurement so it ratchets down with the
// code.
func TestRoundSteadyStateAllocs(t *testing.T) {
	parallel.SetWorkers(1)
	t.Cleanup(func() { parallel.SetWorkers(0) })

	env := schemestest.NewEnv(7, 6, 48)
	tr, err := New(env, Config{NumGroups: 2, Strategy: partition.GroupRoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	round := func() {
		if _, err := tr.Round(ctx); err != nil {
			t.Fatal(err)
		}
	}
	round() // warm up workspaces across every group
	testutil.MaxAllocs(t, "gsfl round", 290, round)
}
