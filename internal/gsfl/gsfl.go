// Package gsfl implements the paper's contribution: group-based split
// federated learning.
//
// GSFL partitions N clients into M groups and trains in a
// split-then-federated manner each round:
//
//  1. Model distribution — the AP sends the (aggregated) client-side
//     model to the first client of every group; each group gets its own
//     replica of the server-side model at the edge server.
//  2. Model training — within a group, clients train sequentially in
//     split-learning fashion: client-side forward, smashed-data upload,
//     server-side forward/backward at the AP, cut-gradient download,
//     client-side backward; after a client finishes its local steps the
//     client-side model is relayed through the AP to the group's next
//     client. The M groups run in parallel, sharing the wireless uplink
//     and downlink budgets.
//  3. Model aggregation — the AP FedAvg-aggregates the M client-side and
//     M server-side models into new global halves.
//
// Latency follows the same structure: sequential stages within a group
// add, the M groups compose via max (parallel), aggregation adds at the
// end. Bandwidth is shared position-wise: while every group is training
// its p-th client, those M clients split the spectrum via the env's
// Allocator; a group with fewer clients simply stops contending after it
// finishes (modelled by allocating over the groups still active at each
// position).
//
// Execution mirrors the model: the M groups really do train on
// concurrent goroutines (internal/parallel) each round, since every group
// owns its replica, optimizer state, and its clients' data loaders.
// Latency pricing, which consumes the shared wireless fading RNG, stays
// serial in group order, so both training numerics and ledgers are
// bit-identical for any worker count.
package gsfl

import (
	"context"
	"fmt"

	"gsfl/internal/agg"
	"gsfl/internal/data"
	"gsfl/internal/model"
	"gsfl/internal/optim"
	"gsfl/internal/parallel"
	"gsfl/internal/partition"
	"gsfl/internal/schemes"
	"gsfl/internal/simnet"
)

// Config selects GSFL's structural parameters on top of a schemes.Env.
type Config struct {
	// NumGroups is M, the number of parallel groups.
	NumGroups int
	// Strategy chooses how clients are assigned to groups.
	Strategy partition.GroupStrategy
	// DropoutProb is the per-round probability that a client is
	// unavailable (battery, mobility, deep outage). Unavailable clients
	// are skipped; their group trains with whoever remains, and a group
	// whose clients all drop sits the round out (it is excluded from that
	// round's aggregation). 0 disables failure injection.
	DropoutProb float64
	// Pipelined enables communication/computation overlap within each
	// client's turn (the "parallel design" of the paper's reference [2]):
	// after a one-step warm-up the turn advances at the pace of its
	// slowest stage instead of the sum of all stages. Training numerics
	// are unchanged; only latency pricing differs.
	Pipelined bool
}

// Trainer is the GSFL scheme mid-training. Create with New; drive with
// Round/Evaluate (typically via a gsfl/sim Runner).
type Trainer struct {
	env    *schemes.Env
	cfg    Config
	groups [][]int
	round  int

	// globalClient/globalServer are the aggregated halves after the most
	// recent round (the model the AP would deploy).
	globalClient model.Snapshot
	globalServer model.Snapshot

	// replicas[g] is group g's working split model; optimizer state is
	// kept per group across rounds.
	replicas   []*model.SplitModel
	clientOpts []*optim.SGD
	serverOpts []*optim.SGD

	loaders []*data.Loader
	weights []float64 // per-group aggregation weights (sample counts)

	evalModel *model.SplitModel // scratch model for evaluation

	// Per-group reusable state, so steady-state rounds allocate nothing
	// beyond bookkeeping: stepWS[g] is group g's training-step workspace
	// (batch, loss gradient, quantization buffers); capClient/capServer[g]
	// are its re-captured parameter snapshots for aggregation. The agg*
	// slices are the per-round scratch lists of live-group snapshots and
	// weights handed to agg.FedAvgInto.
	stepWS               []schemes.StepWorkspace
	capClient, capServer []model.Snapshot
	aggClient, aggServer []model.Snapshot
	aggW                 []float64

	// popCaps is the population path's reusable capacity scratch for
	// per-round cohort regrouping.
	popCaps []float64
}

// New validates the environment and assembles a GSFL trainer.
func New(env *schemes.Env, cfg Config) (*Trainer, error) {
	if err := env.Validate(); err != nil {
		return nil, err
	}
	if cfg.NumGroups <= 0 || cfg.NumGroups > env.Fleet.N() {
		return nil, fmt.Errorf("gsfl: %d groups for %d clients", cfg.NumGroups, env.Fleet.N())
	}
	if cfg.DropoutProb < 0 || cfg.DropoutProb >= 1 {
		return nil, fmt.Errorf("gsfl: dropout probability %v outside [0,1)", cfg.DropoutProb)
	}
	groups := partition.Groups(env.Fleet.N(), cfg.NumGroups, cfg.Strategy,
		env.Fleet.Capacities(), env.Rng("grouping", 0))

	t := &Trainer{env: env, cfg: cfg, groups: groups}

	// One global initialization shared by every replica, so round 0
	// starts from a single common model (the paper's model distribution).
	init := env.Arch.NewSplit(env.Rng("init", 0), env.Cut)
	t.globalClient = model.TakeSnapshot(init.Client)
	t.globalServer = model.TakeSnapshot(init.Server)
	t.evalModel = init

	t.replicas = make([]*model.SplitModel, len(groups))
	t.clientOpts = make([]*optim.SGD, len(groups))
	t.serverOpts = make([]*optim.SGD, len(groups))
	t.stepWS = make([]schemes.StepWorkspace, len(groups))
	t.capClient = make([]model.Snapshot, len(groups))
	t.capServer = make([]model.Snapshot, len(groups))
	for g := range groups {
		// Fresh structure; parameters are overwritten from the global
		// snapshots at the start of every round.
		t.replicas[g] = env.Arch.NewSplit(env.Rng("replica", g), env.Cut)
		t.clientOpts[g] = env.NewOptimizer()
		t.serverOpts[g] = env.NewOptimizer()
	}

	t.loaders = make([]*data.Loader, env.Fleet.N())
	for ci, ds := range env.Train {
		t.loaders[ci] = data.NewLoader(ds, env.Hyper.Batch, env.Arch.InShape, env.Rng("loader", ci))
	}

	t.weights = make([]float64, len(groups))
	for g, members := range groups {
		for _, ci := range members {
			t.weights[g] += float64(env.Train[ci].Len())
		}
	}
	return t, nil
}

// Name implements schemes.Trainer.
func (t *Trainer) Name() string { return "gsfl" }

// Groups exposes the group assignment (read-only view for diagnostics).
func (t *Trainer) Groups() [][]int { return t.groups }

// ServerReplicaCount returns how many server-side models the edge server
// hosts — M for GSFL, the storage quantity Table 3 compares against
// SplitFed's N.
func (t *Trainer) ServerReplicaCount() int { return len(t.groups) }

// ServerStorageBytes returns the edge-server memory the server-side
// replicas occupy.
func (t *Trainer) ServerStorageBytes() int64 {
	return int64(t.ServerReplicaCount()) * t.globalServer.WireBytes()
}

// mountCohort wires one round's sampled population members onto the
// physical slots: every binding's slot loader is re-pointed at the
// member's data shard under the member's participation seed, the
// cohort is regrouped (bindings are dense — binding i owns slot i —
// so group member indices remain valid slot indices), and aggregation
// weights are recomputed from the mounted shard sizes. The per-round
// regrouping draws from the dedicated "pop-grouping" stream keyed by
// round, leaving the classic path's "grouping" stream untouched.
func (t *Trainer) mountCohort(binds []schemes.SlotBinding) {
	env := t.env
	for i := range binds {
		b := &binds[i]
		t.loaders[b.Slot].Reset(env.Train[b.Shard], b.LoaderSeed)
	}
	k := len(binds)
	m := t.cfg.NumGroups
	if m > k {
		m = k
	}
	t.popCaps = t.popCaps[:0]
	for i := range binds {
		// Effective capacities: the population applied each member's
		// device-profile speed to its slot before returning bindings, so
		// compute-balanced grouping sees what this round's devices can do.
		t.popCaps = append(t.popCaps, env.Fleet.Clients[binds[i].Slot].FLOPS)
	}
	t.groups = partition.Groups(k, m, t.cfg.Strategy, t.popCaps, env.Rng("pop-grouping", t.round))
	t.weights = t.weights[:0]
	for _, members := range t.groups {
		w := 0.0
		for _, ci := range members {
			w += float64(env.Train[binds[ci].Shard].Len())
		}
		t.weights = append(t.weights, w)
	}
}

// availableGroups applies per-round client dropout, returning the
// surviving members of each group (same outer length as t.groups; a
// fully dropped group has an empty inner slice) plus the participant
// weights for aggregation.
func (t *Trainer) availableGroups() ([][]int, []float64) {
	if t.cfg.DropoutProb == 0 {
		return t.groups, t.weights
	}
	rng := t.env.Rng("dropout", t.round)
	avail := make([][]int, len(t.groups))
	weights := make([]float64, len(t.groups))
	for g, members := range t.groups {
		for _, ci := range members {
			if rng.Float64() < t.cfg.DropoutProb {
				continue
			}
			avail[g] = append(avail[g], ci)
			weights[g] += float64(t.env.Train[ci].Len())
		}
	}
	return avail, weights
}

// Round implements schemes.Trainer: one full distribute/train/aggregate
// cycle. Cancellation is honoured between client positions; a cancelled
// round returns ctx.Err() and leaves the trainer unusable (resume from
// the last checkpoint instead).
func (t *Trainer) Round(ctx context.Context) (*simnet.Ledger, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	env := t.env
	env.Channel.AdvanceRound() // new fading stream + client mobility
	t.round++
	if env.Pop != nil {
		binds, err := env.Pop.BeginRound(t.round)
		if err != nil {
			return nil, err
		}
		if len(binds) == 0 {
			// Nobody available: the round is a no-op, like a full dropout.
			return &simnet.Ledger{}, nil
		}
		t.mountCohort(binds)
	}
	groups, weights := t.availableGroups()

	// Indices of groups with at least one available client this round.
	var live []int
	for g, members := range groups {
		if len(members) > 0 {
			live = append(live, g)
		}
	}
	if len(live) == 0 {
		// Every client dropped: the round is a no-op (the AP waits out a
		// timeout; we price nothing and keep the previous global model).
		return &simnet.Ledger{}, nil
	}

	// Tracing (nil when disabled): one lane per live group on the
	// virtual clock, phase spans straight from the ledger adds.
	rt := env.BeginRoundTrace("gsfl", t.round)

	// --- Step 1: model distribution -----------------------------------
	// Every live group replica is reset to the global halves. The first
	// available client of each group downloads the client-side model; the
	// downloads are concurrent and share the downlink budget.
	groupLeds := make(map[int]*simnet.Ledger, len(live))
	firstClients := make([]int, len(live))
	for li, g := range live {
		groupLeds[g] = &simnet.Ledger{}
		rt.Lane("group", g, groupLeds[g])
		firstClients[li] = groups[g][0]
		t.globalClient.Restore(t.replicas[g].Client)
		t.globalServer.Restore(t.replicas[g].Server)
	}
	distAlloc := env.Alloc.Allocate(env.Channel, firstClients, env.Channel.DownlinkHz(), false)
	for li, g := range live {
		bytes := t.replicas[g].ClientParamBytes()
		groupLeds[g].Add(simnet.Relay,
			env.Channel.TransferSeconds(firstClients[li], bytes, distAlloc[li], false))
	}

	// --- Step 2: model training within groups (parallel) --------------
	maxLen := 0
	for _, g := range live {
		if len(groups[g]) > maxLen {
			maxLen = len(groups[g])
		}
	}
	for pos := 0; pos < maxLen; pos++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Groups still training at this position contend for spectrum.
		var activeGroups []int
		var activeClients []int
		for _, g := range live {
			if pos < len(groups[g]) {
				activeGroups = append(activeGroups, g)
				activeClients = append(activeClients, groups[g][pos])
			}
		}
		upAlloc := env.Alloc.Allocate(env.Channel, activeClients, env.Channel.UplinkHz(), true)
		downAlloc := env.Alloc.Allocate(env.Channel, activeClients, env.Channel.DownlinkHz(), false)

		// The active groups train concurrently — the paper's "M groups in
		// parallel", executed as real goroutines. Each group touches only
		// group-owned state (its replica, its optimizers, its clients'
		// loaders), so worker scheduling cannot perturb training numerics.
		batchSizes := make([][]int, len(activeGroups))
		parallel.For(len(activeGroups), 1, func(lo, hi int) {
			for ai := lo; ai < hi; ai++ {
				g := activeGroups[ai]
				ci := activeClients[ai]
				rep := t.replicas[g]
				ws := &t.stepWS[g]
				sizes := make([]int, env.Hyper.StepsPerClient)
				for s := 0; s < env.Hyper.StepsPerClient; s++ {
					t.loaders[ci].NextInto(&ws.Batch)
					ws.SplitStep(rep, t.clientOpts[g], t.serverOpts[g], ws.Batch, env.Hyper.QuantizeTransfers)
					sizes[s] = len(ws.Batch.Y)
				}
				batchSizes[ai] = sizes
			}
		})

		// Latency pricing draws fast-fading samples from the shared
		// channel RNG, so it runs serially in group order — the exact
		// draw sequence of a single-worker run, keeping ledgers (and
		// therefore every latency figure) bit-identical.
		for ai, g := range activeGroups {
			ci := activeClients[ai]
			rep := t.replicas[g]
			rt.BeginSlot(groupLeds[g], "client", ci)
			if t.cfg.Pipelined {
				if err := schemes.TurnLatency(env, rep, ci, env.Hyper.Batch, env.Hyper.StepsPerClient,
					upAlloc[ai], downAlloc[ai], true, groupLeds[g]); err != nil {
					return nil, err
				}
			} else {
				for _, bn := range batchSizes[ai] {
					schemes.StepLatency(env, rep, ci, bn, upAlloc[ai], downAlloc[ai], groupLeds[g])
				}
			}
			// Model sharing: relay to the next client in the group, or
			// return the client model to the AP after the last client.
			if pos+1 < len(groups[g]) {
				next := groups[g][pos+1]
				schemes.RelayLatency(env, rep, ci, next, upAlloc[ai], downAlloc[ai], groupLeds[g])
			} else {
				groupLeds[g].Add(simnet.Relay,
					env.Channel.TransferSeconds(ci, rep.ClientParamBytes(), upAlloc[ai], true))
			}
			rt.EndSlot(groupLeds[g])
		}
	}

	// --- Step 3: aggregation among groups ------------------------------
	leds := make([]*simnet.Ledger, 0, len(live))
	for _, g := range live {
		leds = append(leds, groupLeds[g])
	}
	round := simnet.MaxOf(leds)
	// Aggregation prices onto the critical-path ledger after the groups
	// join; its spans belong on the AP's lane, starting where the
	// slowest group finished.
	rt.TailLane("ap", -1, round)

	t.aggClient = t.aggClient[:0]
	t.aggServer = t.aggServer[:0]
	t.aggW = t.aggW[:0]
	for _, g := range live {
		t.capClient[g].CaptureFrom(t.replicas[g].Client)
		t.capServer[g].CaptureFrom(t.replicas[g].Server)
		t.aggClient = append(t.aggClient, t.capClient[g])
		t.aggServer = append(t.aggServer, t.capServer[g])
		t.aggW = append(t.aggW, weights[g])
	}
	agg.FedAvgInto(&t.globalClient, t.aggClient, t.aggW)
	agg.FedAvgInto(&t.globalServer, t.aggServer, t.aggW)
	schemes.AggregationLatency(t.env, len(live),
		t.globalClient.ParamCount()+t.globalServer.ParamCount(), round)
	rt.End(round)
	return round, nil
}

// Evaluate implements schemes.Trainer: test-set performance of the
// aggregated global model.
func (t *Trainer) Evaluate(ctx context.Context) (schemes.Eval, error) {
	t.globalClient.Restore(t.evalModel.Client)
	t.globalServer.Restore(t.evalModel.Server)
	return schemes.Evaluate(ctx, t.evalModel, t.env.Test, t.env.Arch.InShape)
}

// GlobalSnapshots returns copies of the current aggregated halves (for
// checkpointing or cross-scheme comparisons).
func (t *Trainer) GlobalSnapshots() (client, server model.Snapshot) {
	return t.globalClient.Clone(), t.globalServer.Clone()
}

// RestoreGlobal replaces the aggregated global halves, e.g. when
// resuming training from a checkpoint written with
// model.SaveCheckpointFile. The snapshots must match the trainer's
// architecture and cut. Optimizer momentum is not part of a checkpoint;
// resumed training re-warms it within a few steps.
func (t *Trainer) RestoreGlobal(client, server model.Snapshot) {
	// Validate structure by restoring into the eval model first (Restore
	// panics on mismatch before any trainer state is touched).
	client.Restore(t.evalModel.Client)
	server.Restore(t.evalModel.Server)
	t.globalClient = client.Clone()
	t.globalServer = server.Clone()
}
