// Package faultconn is a deterministic network-fault harness: it wraps
// net.Conn with seeded, reproducible delays, partial writes, mid-frame
// drops, and stalls.
//
// Determinism is the point. The transport protocol is strictly
// sequential per connection side (one frame in flight, request/response
// turns), so the i-th Read and the i-th Write of a wrapped connection
// are the same operation in every run. Each Conn draws its fault
// decisions from a private RNG seeded by its Profile, in operation
// order — so a given (profile, seed) replays the exact same failure
// schedule, byte for byte, on every run. Tests assert this directly:
// Script() renders the schedule as a canonical string that must be
// identical across runs.
//
// The faults:
//
//   - Read/write delays: sampled per op with the configured probability,
//     sleeping a deterministic duration before the op proceeds.
//   - Partial writes: a write delivers only a prefix this op; the
//     remainder is NOT retried by the conn — io-layer callers relying on
//     a single Write delivering everything will see short writes exactly
//     as a congested kernel would deliver them. (net.Conn semantics make
//     most stacks retry; the harness reports n < len(p) with no error,
//     which io.Writer contracts treat as ErrShortWrite upstream.)
//   - DropAfterBytes: after writing a total byte budget, the connection
//     delivers one final truncated write and closes — the peer observes
//     a mid-frame EOF.
//   - Stalls: after a configured number of reads or writes, the
//     connection blocks forever (until Close), simulating a hung peer —
//     the case round deadlines exist for.
package faultconn

import (
	"fmt"
	"math/rand"
	"net"
	"os"
	"strings"
	"sync"
	"time"
)

// Profile configures one wrapped connection's fault schedule. The zero
// value injects nothing.
type Profile struct {
	// Seed drives every probabilistic decision below.
	Seed int64

	// ReadDelayProb is the per-Read probability of sleeping ReadDelay
	// first. WriteDelayProb/WriteDelay mirror it for writes.
	ReadDelayProb  float64
	ReadDelay      time.Duration
	WriteDelayProb float64
	WriteDelay     time.Duration

	// PartialWriteProb is the per-Write probability of delivering only a
	// prefix (at least 1 byte, a seeded fraction of the buffer).
	PartialWriteProb float64

	// DropAfterBytes, when positive, closes the connection after that
	// many bytes have been written — mid-frame if the budget expires
	// inside one (the final write delivers the prefix, then the conn
	// dies).
	DropAfterBytes int64

	// StallAfterWrites / StallAfterReads, when positive, block the n-th
	// (1-based) write or read forever, until Close.
	StallAfterWrites int
	StallAfterReads  int
}

// Event is one fault decision, in operation order.
type Event struct {
	// Op is "read" or "write"; N is the 1-based op index on that side.
	Op string
	N  int
	// Fault describes what was injected: "delay", "partial", "drop",
	// "stall".
	Fault string
	// Bytes is the byte count involved (delivered bytes for partial and
	// drop events, 0 otherwise).
	Bytes int
}

// Conn wraps a net.Conn with the profile's deterministic faults.
type Conn struct {
	inner net.Conn
	p     Profile

	mu       sync.Mutex
	rng      *rand.Rand
	reads    int
	writes   int
	written  int64
	events   []Event
	dead     bool
	rd, wd   time.Time // read/write deadlines (stalls must honour them)
	closed   chan struct{}
	closeErr error
	closing  sync.Once
}

// Wrap decorates c with p's fault schedule.
func Wrap(c net.Conn, p Profile) *Conn {
	return &Conn{inner: c, p: p, rng: rand.New(rand.NewSource(p.Seed)), closed: make(chan struct{})}
}

// Pipe returns an in-memory, synchronous connection pair (net.Pipe)
// with per-end fault profiles — the standard substrate of the transport
// fault tests, because its unbuffered writes make stalls and
// backpressure fully deterministic.
func Pipe(pa, pb Profile) (*Conn, *Conn) {
	a, b := net.Pipe()
	return Wrap(a, pa), Wrap(b, pb)
}

// record appends an event under mu.
func (c *Conn) record(op string, n int, fault string, bytes int) {
	c.events = append(c.events, Event{Op: op, N: n, Fault: fault, Bytes: bytes})
}

// Events returns a copy of the injected-fault log so far.
func (c *Conn) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// Script renders the fault log as a canonical one-line-per-event string.
// Two runs of the same profile against the same traffic produce equal
// scripts — the replay guarantee the fault tests pin.
func (c *Conn) Script() string {
	var b strings.Builder
	for _, e := range c.Events() {
		fmt.Fprintf(&b, "%s#%d %s %d\n", e.Op, e.N, e.Fault, e.Bytes)
	}
	return b.String()
}

// stall blocks until the connection is closed or the operation's
// deadline passes — a stalled op must still trip the caller's deadline,
// exactly as a hung TCP peer trips SetReadDeadline.
func (c *Conn) stall(deadline time.Time) error {
	if deadline.IsZero() {
		<-c.closed
		return net.ErrClosed
	}
	t := time.NewTimer(time.Until(deadline))
	defer t.Stop()
	select {
	case <-c.closed:
		return net.ErrClosed
	case <-t.C:
		return os.ErrDeadlineExceeded
	}
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return 0, net.ErrClosed
	}
	c.reads++
	n := c.reads
	deadline := c.rd
	var delay time.Duration
	stall := c.p.StallAfterReads > 0 && n >= c.p.StallAfterReads
	if stall {
		c.record("read", n, "stall", 0)
	} else if c.p.ReadDelayProb > 0 && c.rng.Float64() < c.p.ReadDelayProb {
		delay = c.p.ReadDelay
		c.record("read", n, "delay", 0)
	}
	c.mu.Unlock()

	if stall {
		return 0, c.stall(deadline)
	}
	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-c.closed:
			return 0, net.ErrClosed
		}
	}
	return c.inner.Read(p)
}

// Write implements net.Conn.
func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return 0, net.ErrClosed
	}
	c.writes++
	n := c.writes
	deadline := c.wd
	limit := len(p)
	var delay time.Duration
	die := false
	stall := c.p.StallAfterWrites > 0 && n >= c.p.StallAfterWrites
	switch {
	case stall:
		c.record("write", n, "stall", 0)
	default:
		if c.p.WriteDelayProb > 0 && c.rng.Float64() < c.p.WriteDelayProb {
			delay = c.p.WriteDelay
			c.record("write", n, "delay", 0)
		}
		if c.p.DropAfterBytes > 0 && c.written+int64(limit) > c.p.DropAfterBytes {
			limit = int(c.p.DropAfterBytes - c.written)
			if limit < 0 {
				limit = 0
			}
			die = true
			c.record("write", n, "drop", limit)
		} else if c.p.PartialWriteProb > 0 && limit > 1 && c.rng.Float64() < c.p.PartialWriteProb {
			// Deliver a seeded fraction, at least one byte.
			limit = 1 + c.rng.Intn(limit-1)
			c.record("write", n, "partial", limit)
		}
	}
	c.mu.Unlock()

	if stall {
		return 0, c.stall(deadline)
	}
	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-c.closed:
			return 0, net.ErrClosed
		}
	}
	wrote, err := c.inner.Write(p[:limit])
	c.mu.Lock()
	c.written += int64(wrote)
	c.mu.Unlock()
	if die {
		// Budget exhausted: the peer sees the prefix, then EOF mid-frame.
		c.mu.Lock()
		c.dead = true
		c.mu.Unlock()
		c.Close()
		if err == nil {
			err = net.ErrClosed
		}
		return wrote, err
	}
	if err == nil && wrote < len(p) {
		// Partial delivery: surface the short write as the kernel would.
		return wrote, nil
	}
	return wrote, err
}

// Close implements net.Conn. It also releases any stalled or delayed
// operation, so tests and servers tear down cleanly.
func (c *Conn) Close() error {
	c.closing.Do(func() {
		close(c.closed)
		c.closeErr = c.inner.Close()
	})
	return c.closeErr
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.inner.LocalAddr() }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.rd, c.wd = t, t
	c.mu.Unlock()
	return c.inner.SetDeadline(t)
}

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.rd = t
	c.mu.Unlock()
	return c.inner.SetReadDeadline(t)
}

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.wd = t
	c.mu.Unlock()
	return c.inner.SetWriteDeadline(t)
}

// Listener wraps a net.Listener so every accepted connection carries the
// same fault profile (each with its own RNG seeded by Seed+connIndex, so
// schedules stay reproducible per accept order).
type Listener struct {
	net.Listener
	p Profile

	mu sync.Mutex
	n  int64
}

// WrapListener decorates ln.
func WrapListener(ln net.Listener, p Profile) *Listener {
	return &Listener{Listener: ln, p: p}
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	p := l.p
	p.Seed += l.n
	l.n++
	l.mu.Unlock()
	return Wrap(conn, p), nil
}
