package faultconn

import (
	"errors"
	"io"
	"net"
	"os"
	"testing"
	"time"
)

// drive pushes a fixed write schedule through a wrapped pipe end while a
// peer goroutine drains it, and returns the wrapper's fault script.
func drive(t *testing.T, p Profile, writes []int) string {
	t.Helper()
	a, b := net.Pipe()
	conn := Wrap(a, p)
	defer conn.Close()
	defer b.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 1<<12)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
		}
	}()
	for _, n := range writes {
		if _, err := conn.Write(make([]byte, n)); err != nil {
			break
		}
	}
	conn.Close()
	<-done
	return conn.Script()
}

func TestScriptReplayIsByteIdentical(t *testing.T) {
	p := Profile{Seed: 42, WriteDelayProb: 0.5, WriteDelay: time.Millisecond, PartialWriteProb: 0.3}
	writes := []int{64, 128, 32, 256, 16, 512}
	s1 := drive(t, p, writes)
	s2 := drive(t, p, writes)
	if s1 != s2 {
		t.Fatalf("schedules diverged:\n--- run 1\n%s--- run 2\n%s", s1, s2)
	}
	if s1 == "" {
		t.Fatal("profile injected nothing; replay test is vacuous")
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	writes := []int{64, 128, 32, 256, 16, 512, 64, 128}
	s1 := drive(t, Profile{Seed: 1, PartialWriteProb: 0.5}, writes)
	s2 := drive(t, Profile{Seed: 2, PartialWriteProb: 0.5}, writes)
	if s1 == s2 {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestStallHonorsReadDeadline(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	conn := Wrap(a, Profile{StallAfterReads: 1})
	defer conn.Close()

	conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	start := time.Now()
	_, err := conn.Read(make([]byte, 8))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("stalled read returned %v, want ErrDeadlineExceeded", err)
	}
	if el := time.Since(start); el < 40*time.Millisecond || el > 2*time.Second {
		t.Fatalf("deadline fired after %v, want ~50ms", el)
	}
}

func TestStallReleasedByClose(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	conn := Wrap(a, Profile{StallAfterWrites: 1})

	errc := make(chan error, 1)
	go func() {
		_, err := conn.Write([]byte("hello"))
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	conn.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("released stall returned %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not release the stalled write")
	}
}

func TestDropAfterBytesDeliversPrefixThenEOF(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	conn := Wrap(a, Profile{DropAfterBytes: 10})

	got := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 64)
		n, _ := io.ReadFull(b, buf[:10])
		got <- buf[:n]
	}()
	if _, err := conn.Write(make([]byte, 6)); err != nil {
		t.Fatalf("write inside budget: %v", err)
	}
	// This write crosses the budget: 4 bytes delivered, then death.
	if _, err := conn.Write(make([]byte, 8)); err == nil {
		t.Fatal("budget-crossing write reported success")
	}
	if prefix := <-got; len(prefix) != 10 {
		t.Fatalf("peer got %d bytes before EOF, want 10", len(prefix))
	}
	if _, err := b.Read(make([]byte, 8)); err != io.EOF {
		t.Fatalf("peer read after drop returned %v, want EOF", err)
	}
	if _, err := conn.Write([]byte("more")); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("write after drop returned %v, want ErrClosed", err)
	}
}

func TestPartialWriteDeliversShortCount(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	conn := Wrap(a, Profile{Seed: 3, PartialWriteProb: 1})
	defer conn.Close()

	go io.Copy(io.Discard, b)
	n, err := conn.Write(make([]byte, 100))
	if err != nil {
		t.Fatalf("partial write errored: %v", err)
	}
	if n <= 0 || n >= 100 {
		t.Fatalf("partial write delivered %d of 100 bytes", n)
	}
	evs := conn.Events()
	if len(evs) != 1 || evs[0].Fault != "partial" || evs[0].Bytes != n {
		t.Fatalf("events %+v, want one partial of %d bytes", evs, n)
	}
}

func TestZeroProfileIsTransparent(t *testing.T) {
	a, b := net.Pipe()
	conn := Wrap(a, Profile{})
	defer conn.Close()
	defer b.Close()

	go func() {
		buf := make([]byte, 5)
		io.ReadFull(b, buf)
		b.Write(buf)
	}()
	if _, err := conn.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(conn, buf); err != nil || string(buf) != "hello" {
		t.Fatalf("echo through clean wrapper: %q, %v", buf, err)
	}
	if s := conn.Script(); s != "" {
		t.Fatalf("zero profile injected faults:\n%s", s)
	}
}

func TestListenerSeedsPerConnection(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fln := WrapListener(ln, Profile{Seed: 10, PartialWriteProb: 0.5})
	defer fln.Close()

	accepted := make(chan net.Conn, 2)
	go func() {
		for i := 0; i < 2; i++ {
			c, err := fln.Accept()
			if err != nil {
				return
			}
			accepted <- c
		}
	}()
	for i := 0; i < 2; i++ {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
	}
	for i := 0; i < 2; i++ {
		c := <-accepted
		if _, ok := c.(*Conn); !ok {
			t.Fatalf("accepted conn %T is not wrapped", c)
		}
		c.Close()
	}
}
