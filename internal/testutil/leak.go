package testutil

import (
	"runtime"
	"strings"
	"time"
)

// GoroutinesMatching counts live goroutines whose stack trace contains
// the substring (e.g. a package import path), excluding the caller's
// own goroutine.
func GoroutinesMatching(substr string) int {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	count := 0
	stacks := strings.Split(string(buf), "\n\n")
	for i, s := range stacks {
		if i == 0 {
			continue // first stack is the calling goroutine
		}
		if strings.Contains(s, substr) {
			count++
		}
	}
	return count
}

// ExpectNoGoroutines fails the test if, after a grace period for
// shutdown-in-progress goroutines to unwind, any goroutine mentioning
// substr in its stack is still alive — the goleak-style assertion the
// transport shutdown tests use. The failure message includes the
// offending stacks.
func ExpectNoGoroutines(t interface {
	Helper()
	Errorf(format string, args ...any)
}, substr string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if GoroutinesMatching(substr) == 0 {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	var leaked []string
	for i, s := range strings.Split(string(buf[:n]), "\n\n") {
		if i > 0 && strings.Contains(s, substr) {
			leaked = append(leaked, s)
		}
	}
	t.Errorf("testutil: %d goroutine(s) mentioning %q survived shutdown:\n%s",
		len(leaked), substr, strings.Join(leaked, "\n\n"))
}
