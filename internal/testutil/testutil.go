// Package testutil holds shared test helpers. Its main export is
// MaxAllocs, the assertion behind the allocation-regression tests that
// guard the destination-passing hot path (see docs/ARCHITECTURE.md,
// "Memory model & buffer ownership").
package testutil

import "testing"

// MaxAllocs runs f once to warm up lazily-sized workspaces, then asserts
// that its steady-state allocations per run do not exceed limit.
//
// Under the race detector the workload still runs — exercising the
// buffer-reuse paths for data races is exactly why these tests are part
// of the race job — but the numeric assertion is skipped, because race
// instrumentation perturbs allocation counts.
func MaxAllocs(t testing.TB, name string, limit float64, f func()) {
	t.Helper()
	f() // warm up
	got := testing.AllocsPerRun(10, f)
	if RaceEnabled {
		t.Logf("%s: %.1f allocs/op (not asserted under -race)", name, got)
		return
	}
	if got > limit {
		t.Errorf("%s: %.1f allocs/op, want <= %v", name, got, limit)
	}
}
