// Package schemes defines the environment and trainer contract shared by
// every distributed-learning scheme in the reproduction: the paper's
// GSFL (internal/gsfl) and the benchmark schemes CL, SL, FL, and SplitFed
// (internal/schemes/{cl,sl,fl,sfl}).
//
// A scheme consumes an Env — the fleet, the wireless channel, the
// per-client datasets, the architecture and cut layer, and the training
// hyperparameters — and produces, per round, a simnet.Ledger pricing that
// round's critical-path latency. The experiment harness turns sequences
// of (round, ledger, evaluation) into the paper's figures.
//
// Parallelism in the modelled system (GSFL's concurrent groups, FL's and
// SplitFed's concurrent clients) is priced through ledger composition
// (simnet.MaxOf) and executed as real goroutines on the shared worker
// pool (internal/parallel): independent groups/clients train
// concurrently, while everything that consumes a shared RNG stream —
// notably wireless fading draws — runs serially in a fixed order. Every
// run is therefore exactly reproducible: results are bit-identical for
// any worker count, including 1.
package schemes

import (
	"context"
	"fmt"
	"math/rand"

	"gsfl/internal/data"
	"gsfl/internal/device"
	"gsfl/internal/loss"
	"gsfl/internal/metrics"
	"gsfl/internal/model"
	"gsfl/internal/nn"
	"gsfl/internal/optim"
	"gsfl/internal/quantize"
	"gsfl/internal/simnet"
	"gsfl/internal/tensor"
	"gsfl/internal/wireless"
	"gsfl/obs"
)

// Hyper bundles the optimization hyperparameters shared by all schemes.
type Hyper struct {
	// Batch is the mini-batch size.
	Batch int
	// StepsPerClient is how many mini-batches each client trains per
	// round (one "local pass" in the paper's per-epoch description).
	StepsPerClient int
	// LR is the SGD learning rate.
	LR float64
	// Momentum is the SGD momentum coefficient (0 disables).
	Momentum float64
	// ClipNorm caps the global gradient norm (0 disables).
	ClipNorm float64
	// QuantizeTransfers, when true, quantizes the smashed data and the
	// cut-layer gradient to 8 bits for transfer (4x less traffic at a
	// small precision cost). Both the training numerics (the receiving
	// side sees the dequantized tensor) and the latency pricing (1 byte
	// per scalar) honour it.
	QuantizeTransfers bool
	// LRDecayFactor/LRDecayEvery, when both set, multiply the learning
	// rate by the factor every LRDecayEvery optimizer steps (per-model
	// step counts, matching how each half trains independently). Zero
	// values keep the rate constant.
	LRDecayFactor float64
	LRDecayEvery  int
}

// Validate reports configuration errors.
func (h Hyper) Validate() error {
	if h.Batch <= 0 {
		return fmt.Errorf("schemes: batch %d must be positive", h.Batch)
	}
	if h.StepsPerClient <= 0 {
		return fmt.Errorf("schemes: steps per client %d must be positive", h.StepsPerClient)
	}
	if h.LR <= 0 {
		return fmt.Errorf("schemes: learning rate %v must be positive", h.LR)
	}
	if h.Momentum < 0 || h.Momentum >= 1 {
		return fmt.Errorf("schemes: momentum %v outside [0,1)", h.Momentum)
	}
	if (h.LRDecayFactor != 0) != (h.LRDecayEvery != 0) {
		return fmt.Errorf("schemes: LR decay needs both factor (%v) and interval (%d)", h.LRDecayFactor, h.LRDecayEvery)
	}
	if h.LRDecayFactor < 0 || h.LRDecayFactor > 1 {
		return fmt.Errorf("schemes: LR decay factor %v outside [0,1]", h.LRDecayFactor)
	}
	if h.LRDecayEvery < 0 {
		return fmt.Errorf("schemes: LR decay interval %d negative", h.LRDecayEvery)
	}
	return nil
}

// Env is the complete simulated world a scheme trains in.
type Env struct {
	// Arch and Cut define the model and its client/server boundary.
	Arch model.Arch
	Cut  int
	// Fleet supplies compute capacities; Channel and Alloc supply
	// transfer times under shared bandwidth.
	Fleet   *device.Fleet
	Channel *wireless.Channel
	Alloc   wireless.Allocator
	// Train holds each client's private dataset (len == Fleet.N()).
	Train []data.Dataset
	// Test is the held-out evaluation set at the AP.
	Test data.Dataset
	// Hyper are the optimization hyperparameters.
	Hyper Hyper
	// Seed derives every RNG stream in the scheme (model init, loaders).
	Seed int64
	// Pop, when non-nil, is a client population behind the fleet's
	// physical slots: each round the cohort-based schemes (gsfl, fl,
	// sfl) call Pop.BeginRound and train only the returned slot
	// bindings instead of the fixed client list. Train then holds the
	// population's data shards (still len == Fleet.N(); members map to
	// shards via SlotBinding.Shard). Nil means the classic fixed-client
	// world — the paper's setting — with numerics untouched.
	Pop Cohort
	// Trace, when non-nil, receives execution spans for every round on
	// the virtual clock: one lane per parallel ledger (group or client),
	// phase spans for each latency-model contribution, and a round span
	// on the critical path. Nil (the default) is free: the schemes'
	// pricing paths pay one pointer check and allocate nothing.
	Trace *obs.Tracer
}

// SlotBinding mounts one sampled population member onto a physical
// client slot for the duration of a round. Bindings returned by a
// Cohort fill slots densely in order: binding i has Slot == i.
type SlotBinding struct {
	// Slot is the fleet/channel/loader index the member occupies.
	Slot int
	// Member is the population-wide member id (diagnostics only).
	Member int64
	// Shard indexes Env.Train: the member's data shard.
	Shard int
	// LoaderSeed seeds the slot loader's shuffle stream for this
	// participation; it advances with the member's participation
	// cursor, so a member that returns sees fresh batch orders.
	LoaderSeed int64
	// Speed is the member's device-profile multiplier; the cohort has
	// already applied it to the slot's fleet entry when the bindings
	// are returned.
	Speed float64
}

// Cohort is the per-round sampling interface a population exposes to
// the schemes. Implementations live above this package (gsfl/pop);
// schemes only consume bindings.
type Cohort interface {
	// BeginRound advances the population to the given 1-based round and
	// returns the sampled bindings. Rounds must be requested in
	// increasing order; skipping ahead (a resumed run) replays the
	// intermediate rounds internally so the availability and sampling
	// streams stay aligned with the original run. An empty slice means
	// no member was available; the round is a no-op.
	BeginRound(round int) ([]SlotBinding, error)
	// Identity is a stable description of the population's
	// configuration, folded into checkpoint env fingerprints so a
	// resume cannot silently continue under a different population.
	Identity() string
}

// Validate reports structural errors in the environment.
func (e *Env) Validate() error {
	if e.Fleet == nil || e.Channel == nil || e.Alloc == nil {
		return fmt.Errorf("schemes: env missing fleet/channel/allocator")
	}
	if len(e.Train) != e.Fleet.N() {
		return fmt.Errorf("schemes: %d client datasets for %d clients", len(e.Train), e.Fleet.N())
	}
	if e.Channel.N() != e.Fleet.N() {
		return fmt.Errorf("schemes: channel built for %d clients, fleet has %d", e.Channel.N(), e.Fleet.N())
	}
	if e.Test == nil || e.Test.Len() == 0 {
		return fmt.Errorf("schemes: missing test set")
	}
	for i, d := range e.Train {
		if d == nil || d.Len() == 0 {
			return fmt.Errorf("schemes: client %d has no data", i)
		}
	}
	return e.Hyper.Validate()
}

// NewOptimizer builds the scheme-standard SGD from the hyperparameters.
func (e *Env) NewOptimizer() *optim.SGD {
	opt := optim.NewSGDMomentum(e.Hyper.LR, e.Hyper.Momentum)
	opt.ClipNorm = e.Hyper.ClipNorm
	if e.Hyper.LRDecayEvery > 0 {
		opt.Schedule = optim.StepDecayLR(e.Hyper.LR, e.Hyper.LRDecayFactor, e.Hyper.LRDecayEvery)
	}
	return opt
}

// DeriveSeed maps (seed, purpose, k) to the seed of the named RNG
// stream. It is the one definition both execution substrates share: the
// in-process schemes derive every stream through Env.Rng, and the real
// TCP deployment (internal/transport) derives its model-init and
// client-loader streams with the same function — which is what makes a
// fault-free TCP round byte-identical to the simulator at equal seeds.
func DeriveSeed(seed int64, purpose string, k int) int64 {
	h := seed
	for _, c := range purpose {
		h = h*131 + int64(c)
	}
	return h*1_000_003 + int64(k)
}

// Rng derives a deterministic RNG stream for a named purpose. Distinct
// (purpose, k) pairs get independent streams, so adding a consumer never
// perturbs existing ones.
func (e *Env) Rng(purpose string, k int) *rand.Rand {
	return rand.New(rand.NewSource(DeriveSeed(e.Seed, purpose, k)))
}

// Eval is one evaluation of a scheme's current global model on the
// env's held-out test set.
type Eval struct {
	// Loss is the mean test loss.
	Loss float64
	// Accuracy is the test accuracy in [0,1].
	Accuracy float64
}

// Trainer is one distributed-learning scheme mid-training. It is the
// contract the public run API (gsfl/sim) drives: rounds are cancellable
// through their context and report failures as errors, never panics.
type Trainer interface {
	// Name is the scheme's short identifier ("gsfl", "sl", "fl", "cl",
	// "sfl"), used as the curve label and the registry key.
	Name() string
	// Round executes one global training round and returns its
	// critical-path latency ledger. It honours ctx cancellation at
	// internal sequencing points; after a non-nil error (including
	// ctx.Err()) the trainer may hold partially updated state and must
	// not be driven further.
	Round(ctx context.Context) (*simnet.Ledger, error)
	// Evaluate returns the test-set performance of the scheme's current
	// global model. It does not mutate training state.
	Evaluate(ctx context.Context) (Eval, error)
}

// EvalChunk bounds evaluation batch sizes so test-set forward passes
// never allocate huge activations.
const EvalChunk = 256

// evalPool recycles the evaluation chunk buffers across Evaluate and
// EvaluateConfusion calls (batch-shaped temporaries with no owning
// workspace — exactly what tensor.Pool exists for).
var evalPool tensor.Pool

// Evaluate runs the split model over the test set in chunks and returns
// the mean loss and accuracy. It is the shared implementation behind
// every scheme's Evaluate; cancellation is honoured between chunks.
func Evaluate(ctx context.Context, m *model.SplitModel, test data.Dataset, inShape []int) (Eval, error) {
	n := test.Len()
	lossFn := loss.SoftmaxCrossEntropy{}
	totalLoss := 0.0
	correct := 0
	for lo := 0; lo < n; lo += EvalChunk {
		if err := ctx.Err(); err != nil {
			return Eval{}, err
		}
		hi := lo + EvalChunk
		if hi > n {
			hi = n
		}
		cnt := hi - lo
		shape := append([]int{cnt}, inShape...)
		x := evalPool.Get(shape...)
		y := make([]int, cnt)
		per := x.Size() / cnt
		for i := lo; i < hi; i++ {
			f, label := test.Sample(i)
			copy(x.Data[(i-lo)*per:(i-lo+1)*per], f)
			y[i-lo] = label
		}
		logits := m.Forward(x, false)
		l, _ := lossFn.Eval(logits, y)
		totalLoss += l * float64(cnt)
		for i, p := range logits.ArgMaxRows() {
			if p == y[i] {
				correct++
			}
		}
		evalPool.Put(x)
	}
	return Eval{Loss: totalLoss / float64(n), Accuracy: float64(correct) / float64(n)}, nil
}

// StepWorkspace is the per-replica scratch state one training step
// needs beyond the layer-owned workspaces: the batch buffers drawn into
// by data.Loader.NextInto, the loss-gradient tensor, and the
// quantization round-trip buffers for each transfer direction. Each
// concurrently-training replica (a GSFL group, an SFL client, an FL
// client) owns exactly one, so steady-state steps allocate nothing and
// replicas never contend. The zero value is ready to use; buffers grow
// lazily on first step.
type StepWorkspace struct {
	// Batch is the reusable mini-batch destination for NextInto; its
	// contents are consumed within the step that drew them.
	Batch data.Batch

	lossGrad   tensor.Tensor
	qUp, qDown quantize.Buffer
}

// SplitStep runs one split-learning mini-batch: client-side forward,
// (conceptual) smashed-data upload, server-side forward + loss +
// backward, (conceptual) gradient download, client-side backward, and
// both optimizer steps. It returns the batch loss. Latency is priced
// separately by the calling scheme via StepLatency, keeping numerical
// training and time accounting decoupled.
//
// When quantizeTransfers is true, the smashed data and the returned
// gradient pass through an 8-bit quantization round trip, so the
// receiving side trains on exactly what the narrower wire would deliver.
func (ws *StepWorkspace) SplitStep(m *model.SplitModel, clientOpt, serverOpt optim.Optimizer, batch data.Batch, quantizeTransfers bool) float64 {
	smashed := m.Client.Forward(batch.X, true)
	serverIn := smashed
	if quantizeTransfers {
		serverIn = ws.qUp.RoundTrip(smashed)
	}
	logits := m.Server.Forward(serverIn, true)
	l := loss.SoftmaxCrossEntropy{}.EvalInto(logits, batch.Y, &ws.lossGrad)

	m.Server.ZeroGrads()
	dSmashed := m.Server.Backward(&ws.lossGrad)
	if quantizeTransfers {
		dSmashed = ws.qDown.RoundTrip(dSmashed)
	}
	m.Client.ZeroGrads()
	m.Client.Backward(dSmashed)

	serverOpt.Step(m.Server.Params(), m.Server.Grads(), m.Server.DecayMask())
	clientOpt.Step(m.Client.Params(), m.Client.Grads(), m.Client.DecayMask())
	return l
}

// LocalStep runs one full-model mini-batch (forward, loss, backward,
// optimizer step) on net — the centralized / FedAvg-style update CL and
// FL use. It returns the batch loss.
func (ws *StepWorkspace) LocalStep(net *nn.Sequential, opt optim.Optimizer, batch data.Batch) float64 {
	logits := net.Forward(batch.X, true)
	l := loss.SoftmaxCrossEntropy{}.EvalInto(logits, batch.Y, &ws.lossGrad)
	net.ZeroGrads()
	net.Backward(&ws.lossGrad)
	opt.Step(net.Params(), net.Grads(), net.DecayMask())
	return l
}

// SplitStep is the convenience form of StepWorkspace.SplitStep for
// callers outside the training hot path (tests, one-off probes); it
// allocates a throwaway workspace per call.
func SplitStep(m *model.SplitModel, clientOpt, serverOpt optim.Optimizer, batch data.Batch, quantizeTransfers bool) float64 {
	var ws StepWorkspace
	return ws.SplitStep(m, clientOpt, serverOpt, batch, quantizeTransfers)
}

// transferWidth returns the per-scalar wire width the env's precision
// setting implies.
func transferWidth(e *Env) int {
	if e.Hyper.QuantizeTransfers {
		return quantize.WireBytesPerScalar
	}
	return model.WireBytesPerScalar
}

// StepLatency prices one split mini-batch for client ci under the given
// bandwidth allocations, adding components to led. The backward pass is
// priced at 2x forward FLOPs (the standard training-cost model), so a
// full client step costs 3x its forward FLOPs.
func StepLatency(e *Env, m *model.SplitModel, ci, batchN int, upHz, downHz float64, led *simnet.Ledger) {
	client := e.Fleet.Clients[ci]
	b := int64(batchN)
	w := transferWidth(e)
	led.Add(simnet.ClientCompute, client.ComputeSeconds(3*m.ClientFwdFLOPs()*b))
	led.Add(simnet.Uplink, e.Channel.TransferSeconds(ci, m.SmashedBytesWith(batchN, w), upHz, true))
	led.Add(simnet.ServerCompute, e.Fleet.Server.ComputeSeconds(3*m.ServerFwdFLOPs()*b))
	led.Add(simnet.Downlink, e.Channel.TransferSeconds(ci, m.GradBytesWith(batchN, w), downHz, false))
}

// TurnLatency prices a whole client turn of `steps` mini-batches.
// Without pipelining it is steps independent StepLatency charges. With
// pipelining (the "parallel design" of the paper's reference [2]), the
// four stages — client compute, uplink, server compute, downlink —
// overlap across consecutive batches, so after a one-step warm-up the
// turn advances at the pace of its slowest stage:
//
//	turn = (t_client + t_up + t_srv + t_down) + (steps-1) * max(stages)
//
// The warm-up charges each component once; the steady-state remainder is
// attributed to the bottleneck component.
func TurnLatency(e *Env, m *model.SplitModel, ci, batchN, steps int, upHz, downHz float64, pipelined bool, led *simnet.Ledger) error {
	if steps <= 0 {
		return fmt.Errorf("schemes: turn needs positive steps, got %d", steps)
	}
	if !pipelined {
		for s := 0; s < steps; s++ {
			StepLatency(e, m, ci, batchN, upHz, downHz, led)
		}
		return nil
	}
	client := e.Fleet.Clients[ci]
	b := int64(batchN)
	w := transferWidth(e)
	stages := []struct {
		comp simnet.Component
		secs float64
	}{
		{simnet.ClientCompute, client.ComputeSeconds(3 * m.ClientFwdFLOPs() * b)},
		{simnet.Uplink, e.Channel.TransferSeconds(ci, m.SmashedBytesWith(batchN, w), upHz, true)},
		{simnet.ServerCompute, e.Fleet.Server.ComputeSeconds(3 * m.ServerFwdFLOPs() * b)},
		{simnet.Downlink, e.Channel.TransferSeconds(ci, m.GradBytesWith(batchN, w), downHz, false)},
	}
	bottleneck := 0
	for i, s := range stages {
		led.Add(s.comp, s.secs) // warm-up: one full pass through the pipe
		if s.secs > stages[bottleneck].secs {
			bottleneck = i
		}
	}
	led.Add(stages[bottleneck].comp, float64(steps-1)*stages[bottleneck].secs)
	return nil
}

// RelayLatency prices handing the client-side model from client `from`
// to client `to` through the AP: an uplink transfer then a downlink
// transfer of the client-model parameters.
func RelayLatency(e *Env, m *model.SplitModel, from, to int, upHz, downHz float64, led *simnet.Ledger) {
	bytes := m.ClientParamBytes()
	led.Add(simnet.Relay, e.Channel.TransferSeconds(from, bytes, upHz, true))
	led.Add(simnet.Relay, e.Channel.TransferSeconds(to, bytes, downHz, false))
}

// AggregationLatency prices FedAvg at the AP over nModels models of the
// given total parameter count: one add + one multiply per scalar per
// model on the edge server.
func AggregationLatency(e *Env, nModels, paramCount int, led *simnet.Ledger) {
	flops := int64(2) * int64(nModels) * int64(paramCount)
	led.Add(simnet.Aggregation, e.Fleet.Server.ComputeSeconds(flops))
}

// EvaluateConfusion runs the split model over the test set and returns
// the full confusion matrix — per-class recall matters on GTSRB, where
// rare sign classes are exactly the safety-critical ones.
func EvaluateConfusion(m *model.SplitModel, test data.Dataset, inShape []int) *metrics.ConfusionMatrix {
	cm := metrics.NewConfusionMatrix(test.Classes())
	n := test.Len()
	for lo := 0; lo < n; lo += EvalChunk {
		hi := lo + EvalChunk
		if hi > n {
			hi = n
		}
		cnt := hi - lo
		shape := append([]int{cnt}, inShape...)
		x := evalPool.Get(shape...)
		y := make([]int, cnt)
		per := x.Size() / cnt
		for i := lo; i < hi; i++ {
			f, label := test.Sample(i)
			copy(x.Data[(i-lo)*per:(i-lo+1)*per], f)
			y[i-lo] = label
		}
		logits := m.Forward(x, false)
		for i, p := range logits.ArgMaxRows() {
			cm.Observe(y[i], p)
		}
		evalPool.Put(x)
	}
	return cm
}
