package schemes

import (
	"fmt"
	"sort"
	"sync"

	"gsfl/internal/partition"
)

// FactoryOpts carries the scheme-structure knobs a Factory may consume.
// Schemes ignore the fields that do not apply to them (only GSFL reads
// Groups/Strategy/Pipelined/DropoutProb today); a zero value is valid
// for every registered baseline.
type FactoryOpts struct {
	// Groups is M, the number of parallel GSFL groups.
	Groups int
	// Strategy chooses how clients are assigned to groups.
	Strategy partition.GroupStrategy
	// Pipelined enables communication/computation overlap within turns.
	Pipelined bool
	// DropoutProb injects per-round client unavailability.
	DropoutProb float64
}

// Factory instantiates one scheme over an environment. Registered
// factories must validate env and opts and return errors, not panic.
type Factory func(env *Env, opts FactoryOpts) (Trainer, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// Register adds a scheme factory under its name. The scheme packages
// self-register from their init functions, so importing a scheme (or
// the gsfl/sim facade, which imports all of them) makes it available by
// name. Register panics on an empty name, a nil factory, or a duplicate
// name — all programmer errors at init time.
func Register(name string, f Factory) {
	if name == "" {
		panic("schemes: Register with empty scheme name")
	}
	if f == nil {
		panic(fmt.Sprintf("schemes: Register(%q) with nil factory", name))
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("schemes: scheme %q registered twice", name))
	}
	registry[name] = f
}

// Names returns the registered scheme names in sorted order.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// NewByName instantiates the named scheme over env. It is the single
// name-to-scheme resolution path; callers outside this module use the
// gsfl/sim facade instead.
func NewByName(name string, env *Env, opts FactoryOpts) (Trainer, error) {
	registryMu.RLock()
	f, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("schemes: unknown scheme %q (registered: %v)", name, Names())
	}
	return f(env, opts)
}
