package sfl

import (
	"testing"

	"gsfl/internal/schemes/schemestest"
	"gsfl/internal/simnet"
)

func newTrainer(t *testing.T, seed int64, n int) *Trainer {
	t.Helper()
	tr, err := New(schemestest.NewEnv(seed, n, 40))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSFLLearnsBlobs(t *testing.T) {
	tr := newTrainer(t, 1, 6)
	curve := schemestest.RunCurve(t, tr, 15, 3)
	if !curve.IsFinite() {
		t.Fatal("training diverged")
	}
	if acc := curve.FinalAccuracy(); acc < 0.7 {
		t.Fatalf("final accuracy %v; SplitFed failed to learn", acc)
	}
}

func TestSFLDeterministic(t *testing.T) {
	c1 := schemestest.RunCurve(t, newTrainer(t, 3, 5), 4, 1)
	c2 := schemestest.RunCurve(t, newTrainer(t, 3, 5), 4, 1)
	for i := range c1.Points {
		if c1.Points[i] != c2.Points[i] {
			t.Fatalf("point %d differs", i)
		}
	}
}

func TestSFLStoresOneReplicaPerClient(t *testing.T) {
	tr := newTrainer(t, 2, 7)
	if tr.ServerReplicaCount() != 7 {
		t.Fatalf("replicas = %d, want 7 (one per client)", tr.ServerReplicaCount())
	}
	if tr.ServerStorageBytes() <= 0 {
		t.Fatal("storage must be positive")
	}
}

func TestSFLRoundComponents(t *testing.T) {
	tr := newTrainer(t, 4, 4)
	led := schemestest.MustRound(t, tr)
	for _, c := range []simnet.Component{
		simnet.ClientCompute, simnet.Uplink, simnet.ServerCompute,
		simnet.Downlink, simnet.Relay, simnet.Aggregation,
	} {
		if led.Get(c) <= 0 {
			t.Fatalf("component %v is zero", c)
		}
	}
}

func TestSFLParallelismBoundsLatency(t *testing.T) {
	// All clients train at once; like FL, latency must scale sublinearly
	// in the fleet size.
	small := schemestest.MustRound(t, newTrainer(t, 5, 4)).Total()
	large := schemestest.MustRound(t, newTrainer(t, 5, 8)).Total()
	if large >= 1.9*small {
		t.Fatalf("SplitFed latency scaled like sequential: %v -> %v", small, large)
	}
}

func TestSFLInvalidEnv(t *testing.T) {
	env := schemestest.NewEnv(1, 4, 30)
	env.Hyper.LR = -1
	if _, err := New(env); err == nil {
		t.Fatal("expected error for invalid env")
	}
}
