// Package sfl implements SplitFed learning (SFL), the hybrid
// federated/split scheme the paper's introduction critiques: every
// client trains in parallel split-learning fashion against its OWN
// server-side replica, and both halves are FedAvg-aggregated each round.
//
// SFL is the degenerate GSFL configuration M = N (every group has one
// client). It maximizes parallelism but requires the edge server to host
// N server-side models — the "prohibitive storage resources" problem
// (Table 3) that motivates GSFL's group-based middle ground — and its N
// concurrent uplink transfers squeeze per-client bandwidth.
package sfl

import (
	"context"
	"fmt"

	"gsfl/internal/agg"
	"gsfl/internal/data"
	"gsfl/internal/model"
	"gsfl/internal/optim"
	"gsfl/internal/parallel"
	"gsfl/internal/schemes"
	"gsfl/internal/simnet"
)

func init() {
	schemes.Register("sfl", func(env *schemes.Env, _ schemes.FactoryOpts) (schemes.Trainer, error) {
		return New(env)
	})
}

// Trainer is the SplitFed scheme mid-training.
type Trainer struct {
	env *schemes.Env

	globalClient model.Snapshot
	globalServer model.Snapshot

	replicas   []*model.SplitModel // one per client
	clientOpts []*optim.SGD
	serverOpts []*optim.SGD
	loaders    []*data.Loader
	weights    []float64

	evalModel *model.SplitModel

	// Per-client reusable state: stepWS[ci] is client ci's training-step
	// workspace; capClient/capServer[ci] its re-captured snapshots for
	// aggregation (the agg inputs FedAvgInto consumes).
	stepWS               []schemes.StepWorkspace
	capClient, capServer []model.Snapshot

	// round counts completed rounds (keys the population's sampling
	// stream); popW is the population path's per-round weight scratch.
	round int
	popW  []float64
}

// New validates the environment and assembles a SplitFed trainer.
func New(env *schemes.Env) (*Trainer, error) {
	if err := env.Validate(); err != nil {
		return nil, err
	}
	t := &Trainer{env: env}
	init := env.Arch.NewSplit(env.Rng("init", 0), env.Cut)
	t.globalClient = model.TakeSnapshot(init.Client)
	t.globalServer = model.TakeSnapshot(init.Server)
	t.evalModel = init

	n := env.Fleet.N()
	t.replicas = make([]*model.SplitModel, n)
	t.clientOpts = make([]*optim.SGD, n)
	t.serverOpts = make([]*optim.SGD, n)
	t.loaders = make([]*data.Loader, n)
	t.weights = make([]float64, n)
	t.stepWS = make([]schemes.StepWorkspace, n)
	t.capClient = make([]model.Snapshot, n)
	t.capServer = make([]model.Snapshot, n)
	for ci := 0; ci < n; ci++ {
		t.replicas[ci] = env.Arch.NewSplit(env.Rng("replica", ci), env.Cut)
		t.clientOpts[ci] = env.NewOptimizer()
		t.serverOpts[ci] = env.NewOptimizer()
		t.loaders[ci] = data.NewLoader(env.Train[ci], env.Hyper.Batch, env.Arch.InShape, env.Rng("loader", ci))
		t.weights[ci] = float64(env.Train[ci].Len())
	}
	return t, nil
}

// Name implements schemes.Trainer.
func (t *Trainer) Name() string { return "sfl" }

// ServerReplicaCount returns N — the storage cost GSFL reduces to M.
func (t *Trainer) ServerReplicaCount() int { return len(t.replicas) }

// ServerStorageBytes returns the edge-server memory for all replicas.
func (t *Trainer) ServerStorageBytes() int64 {
	return int64(t.ServerReplicaCount()) * t.globalServer.WireBytes()
}

// Round implements schemes.Trainer: all clients train concurrently
// against their own server replicas, then both halves aggregate.
func (t *Trainer) Round(ctx context.Context) (*simnet.Ledger, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	env := t.env
	env.Channel.AdvanceRound() // new fading stream + client mobility
	t.round++
	n := env.Fleet.N()
	weights := t.weights
	if env.Pop != nil {
		// Population mode: train only the sampled cohort. Bindings are
		// dense (binding i owns slot i), so the round body below simply
		// runs over the first n slots with per-round shard weights.
		binds, err := env.Pop.BeginRound(t.round)
		if err != nil {
			return nil, err
		}
		if len(binds) == 0 {
			return &simnet.Ledger{}, nil
		}
		t.popW = t.popW[:0]
		for i := range binds {
			b := &binds[i]
			t.loaders[b.Slot].Reset(env.Train[b.Shard], b.LoaderSeed)
			t.popW = append(t.popW, float64(env.Train[b.Shard].Len()))
		}
		n = len(binds)
		weights = t.popW
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	upAlloc := env.Alloc.Allocate(env.Channel, all, env.Channel.UplinkHz(), true)
	downAlloc := env.Alloc.Allocate(env.Channel, all, env.Channel.DownlinkHz(), false)

	// Tracing (nil when disabled): one virtual-clock lane per client,
	// attached before the parallel section so bookkeeping never races.
	rt := env.BeginRoundTrace("sfl", t.round)
	clientLeds := make([]*simnet.Ledger, n)
	for ci := range clientLeds {
		clientLeds[ci] = &simnet.Ledger{}
		rt.Lane("client", ci, clientLeds[ci])
	}
	batchSizes := make([][]int, n)
	// All clients train concurrently against their own server replicas —
	// SplitFed's maximal parallelism, executed as real goroutines. Each
	// client touches only its own replica, optimizers, and loader, so
	// scheduling cannot perturb numerics.
	parallel.For(n, 1, func(lo, hi int) {
		for ci := lo; ci < hi; ci++ {
			rep := t.replicas[ci]
			ws := &t.stepWS[ci]
			t.globalClient.Restore(rep.Client)
			t.globalServer.Restore(rep.Server)
			sizes := make([]int, env.Hyper.StepsPerClient)
			for s := 0; s < env.Hyper.StepsPerClient; s++ {
				t.loaders[ci].NextInto(&ws.Batch)
				ws.SplitStep(rep, t.clientOpts[ci], t.serverOpts[ci], ws.Batch, env.Hyper.QuantizeTransfers)
				sizes[s] = len(ws.Batch.Y)
			}
			batchSizes[ci] = sizes
		}
	})
	// Latency pricing draws from the shared channel RNG, so it runs
	// serially in client order — the same draw sequence as a
	// single-worker run, keeping ledgers bit-identical.
	for ci := 0; ci < n; ci++ {
		led := clientLeds[ci]
		rep := t.replicas[ci]
		// Client-side model download (model distribution).
		led.Add(simnet.Relay,
			env.Channel.TransferSeconds(ci, rep.ClientParamBytes(), downAlloc[ci], false))
		for _, bn := range batchSizes[ci] {
			schemes.StepLatency(env, rep, ci, bn, upAlloc[ci], downAlloc[ci], led)
		}
		// Client-side model upload for aggregation.
		led.Add(simnet.Relay,
			env.Channel.TransferSeconds(ci, rep.ClientParamBytes(), upAlloc[ci], true))
	}

	round := simnet.MaxOf(clientLeds)
	rt.TailLane("ap", -1, round)

	for ci := 0; ci < n; ci++ {
		t.capClient[ci].CaptureFrom(t.replicas[ci].Client)
		t.capServer[ci].CaptureFrom(t.replicas[ci].Server)
	}
	agg.FedAvgInto(&t.globalClient, t.capClient[:n], weights[:n])
	agg.FedAvgInto(&t.globalServer, t.capServer[:n], weights[:n])
	schemes.AggregationLatency(env, n,
		t.globalClient.ParamCount()+t.globalServer.ParamCount(), round)
	rt.End(round)
	return round, nil
}

// Evaluate implements schemes.Trainer.
func (t *Trainer) Evaluate(ctx context.Context) (schemes.Eval, error) {
	t.globalClient.Restore(t.evalModel.Client)
	t.globalServer.Restore(t.evalModel.Server)
	return schemes.Evaluate(ctx, t.evalModel, t.env.Test, t.env.Arch.InShape)
}

// CaptureState implements schemes.Checkpointer. SplitFed's persistent
// state is the two aggregated global halves (per-client replicas are
// rewritten from them every round), the per-client optimizer pairs,
// the loaders, and the round counter (which keys the population
// sampling stream). In population mode the loaders carry no
// cross-round state — every round Resets them from the replayable
// sampled bindings — so zero-value states keep the checkpoint shape
// fixed.
func (t *Trainer) CaptureState() (*schemes.TrainerState, error) {
	st := &schemes.TrainerState{
		Round:   t.round,
		Channel: t.env.Channel.State(),
		Models: []model.SnapshotState{
			t.globalClient.State(),
			t.globalServer.State(),
		},
	}
	for ci := range t.replicas {
		st.Opts = append(st.Opts, t.clientOpts[ci].State(), t.serverOpts[ci].State())
	}
	if t.env.Pop != nil {
		st.Loaders = make([]data.LoaderState, len(t.loaders))
	} else {
		for ci := range t.loaders {
			st.Loaders = append(st.Loaders, t.loaders[ci].State())
		}
	}
	return st, nil
}

// RestoreState implements schemes.Checkpointer.
func (t *Trainer) RestoreState(st *schemes.TrainerState) error {
	if err := st.CheckCounts("sfl", 2, 2*len(t.replicas), len(t.loaders)); err != nil {
		return err
	}
	client, err := model.SnapshotFromState(st.Models[0])
	if err != nil {
		return fmt.Errorf("sfl: restoring client half: %w", err)
	}
	server, err := model.SnapshotFromState(st.Models[1])
	if err != nil {
		return fmt.Errorf("sfl: restoring server half: %w", err)
	}
	// Structural validation against the eval scratch model.
	if err := schemes.RestoreSnapshots("sfl",
		schemes.SnapshotTarget{Snap: client, Dst: t.evalModel.Client},
		schemes.SnapshotTarget{Snap: server, Dst: t.evalModel.Server},
	); err != nil {
		return err
	}
	t.globalClient = client.Clone()
	t.globalServer = server.Clone()
	for ci := range t.replicas {
		if err := t.clientOpts[ci].Restore(st.Opts[2*ci]); err != nil {
			return fmt.Errorf("sfl: client %d client-half optimizer: %w", ci, err)
		}
		if err := t.serverOpts[ci].Restore(st.Opts[2*ci+1]); err != nil {
			return fmt.Errorf("sfl: client %d server-half optimizer: %w", ci, err)
		}
		if t.env.Pop != nil {
			continue // loaders are Reset from replayed bindings each round
		}
		if err := t.loaders[ci].Restore(st.Loaders[ci]); err != nil {
			return fmt.Errorf("sfl: client %d loader: %w", ci, err)
		}
	}
	if err := t.env.Channel.Restore(st.Channel); err != nil {
		return fmt.Errorf("sfl: channel: %w", err)
	}
	t.round = st.Round
	return nil
}
