package cl

import (
	"testing"

	"gsfl/internal/schemes/schemestest"
	"gsfl/internal/simnet"
)

func newTrainer(t *testing.T, seed int64, n int) *Trainer {
	t.Helper()
	tr, err := New(schemestest.NewEnv(seed, n, 40))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestCLLearnsBlobs(t *testing.T) {
	tr := newTrainer(t, 1, 6)
	curve := schemestest.RunCurve(t, tr, 8, 2)
	if !curve.IsFinite() {
		t.Fatal("training diverged")
	}
	if acc := curve.FinalAccuracy(); acc < 0.8 {
		t.Fatalf("final accuracy %v; CL (the upper bound) must learn well", acc)
	}
}

func TestCLDeterministic(t *testing.T) {
	c1 := schemestest.RunCurve(t, newTrainer(t, 3, 5), 3, 1)
	c2 := schemestest.RunCurve(t, newTrainer(t, 3, 5), 3, 1)
	for i := range c1.Points {
		if c1.Points[i] != c2.Points[i] {
			t.Fatalf("point %d differs", i)
		}
	}
}

func TestCLOnlyServerCompute(t *testing.T) {
	tr := newTrainer(t, 2, 4)
	led := schemestest.MustRound(t, tr)
	if led.Get(simnet.ServerCompute) <= 0 {
		t.Fatal("CL must pay server compute")
	}
	for _, c := range []simnet.Component{
		simnet.ClientCompute, simnet.Uplink, simnet.Downlink,
		simnet.Relay, simnet.Aggregation,
	} {
		if led.Get(c) != 0 {
			t.Fatalf("CL round must not pay %v", c)
		}
	}
}

func TestCLFastestPerRound(t *testing.T) {
	// The edge server is ~100x faster than clients and pays no wireless
	// cost, so a CL round must be far cheaper than any distributed round
	// doing the same number of updates.
	tr := newTrainer(t, 4, 6)
	if total := schemestest.MustRound(t, tr).Total(); total > 1 {
		t.Fatalf("CL round took %v virtual seconds; expected sub-second server-only time", total)
	}
}

func TestCLUploadCostPositive(t *testing.T) {
	tr := newTrainer(t, 5, 4)
	led := tr.UploadCost()
	if led.Get(simnet.Uplink) <= 0 {
		t.Fatal("one-time raw-data upload must cost uplink time")
	}
}

func TestCLInvalidEnv(t *testing.T) {
	env := schemestest.NewEnv(1, 4, 30)
	env.Hyper.Batch = 0
	if _, err := New(env); err == nil {
		t.Fatal("expected error for invalid env")
	}
}
