// Package cl implements centralized learning, the paper's upper-bound
// baseline: the edge server trains the full model on the pooled data of
// all clients.
//
// CL has no wireless cost per round (the data is assumed resident at the
// server; the optional one-time raw-data upload can be priced with
// UploadCost) and the server's compute capacity makes its rounds fast —
// it is the accuracy ceiling the distributed schemes are measured
// against, not a deployable alternative (it violates the privacy
// constraint that motivates FL/SL in the first place).
package cl

import (
	"context"
	"fmt"

	"gsfl/internal/data"
	"gsfl/internal/model"
	"gsfl/internal/optim"
	"gsfl/internal/schemes"
	"gsfl/internal/simnet"
)

func init() {
	schemes.Register("cl", func(env *schemes.Env, _ schemes.FactoryOpts) (schemes.Trainer, error) {
		return New(env)
	})
}

// Trainer is the centralized baseline mid-training.
type Trainer struct {
	env *schemes.Env

	m      *model.SplitModel // full model held server-side (cut 0)
	opt    *optim.SGD
	loader *data.Loader
	// stepsPerRound matches the total update count of one GSFL/SL round
	// so accuracy-vs-rounds curves are update-for-update comparable.
	stepsPerRound int

	// ws is the single training-step workspace (batch + loss gradient).
	ws schemes.StepWorkspace

	// round counts completed rounds (trace labels only).
	round int
}

// New validates the environment and assembles a CL trainer. The pooled
// dataset is the concatenation of every client's data.
func New(env *schemes.Env) (*Trainer, error) {
	if err := env.Validate(); err != nil {
		return nil, err
	}
	if env.Pop != nil {
		return nil, fmt.Errorf("cl: population sampling is not supported (sequential schemes train the full client list; use gsfl, fl, or sfl)")
	}
	pooled := pool(env.Train)
	t := &Trainer{
		env:           env,
		m:             env.Arch.NewSplit(env.Rng("init", 0), 0),
		opt:           env.NewOptimizer(),
		loader:        data.NewLoader(pooled, env.Hyper.Batch, env.Arch.InShape, env.Rng("loader", 0)),
		stepsPerRound: env.Fleet.N() * env.Hyper.StepsPerClient,
	}
	return t, nil
}

// pool concatenates client datasets into one in-memory dataset (feature
// slices are shared, not copied).
func pool(parts []data.Dataset) data.Dataset {
	var x [][]float64
	var y []int
	classes := parts[0].Classes()
	for _, p := range parts {
		for i := 0; i < p.Len(); i++ {
			f, label := p.Sample(i)
			x = append(x, f)
			y = append(y, label)
		}
	}
	return data.NewInMemory(x, y, classes)
}

// Name implements schemes.Trainer.
func (t *Trainer) Name() string { return "cl" }

// Round implements schemes.Trainer: N*StepsPerClient SGD steps on pooled
// data, all on the edge server. Cancellation is honoured between steps.
func (t *Trainer) Round(ctx context.Context) (*simnet.Ledger, error) {
	t.round++
	rt := t.env.BeginRoundTrace("cl", t.round)
	led := &simnet.Ledger{}
	rt.Lane("server", -1, led) // everything runs on the edge server
	server := t.env.Fleet.Server
	perSample := 3 * t.m.ServerFwdFLOPs() // cut 0: whole model is server-side
	for s := 0; s < t.stepsPerRound; s++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		t.loader.NextInto(&t.ws.Batch)
		t.ws.LocalStep(t.m.Server, t.opt, t.ws.Batch)
		led.Add(simnet.ServerCompute, server.ComputeSeconds(perSample*int64(len(t.ws.Batch.Y))))
	}
	rt.End(led)
	return led, nil
}

// UploadCost prices the one-time raw-data upload that centralizing the
// training data would require: every client ships its whole dataset over
// the shared uplink concurrently. Returned separately because the paper
// treats CL as an accuracy reference, not a latency competitor.
func (t *Trainer) UploadCost() *simnet.Ledger {
	env := t.env
	n := env.Fleet.N()
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	alloc := env.Alloc.Allocate(env.Channel, all, env.Channel.UplinkHz(), true)
	leds := make([]*simnet.Ledger, n)
	perSample := int64(1)
	for _, d := range env.Arch.InShape {
		perSample *= int64(d)
	}
	perSample = perSample*model.WireBytesPerScalar + model.WireBytesPerScalar // +label
	for ci := 0; ci < n; ci++ {
		led := &simnet.Ledger{}
		bytes := perSample * int64(env.Train[ci].Len())
		led.Add(simnet.Uplink, env.Channel.TransferSeconds(ci, bytes, alloc[ci], true))
		leds[ci] = led
	}
	return simnet.MaxOf(leds)
}

// Evaluate implements schemes.Trainer.
func (t *Trainer) Evaluate(ctx context.Context) (schemes.Eval, error) {
	return schemes.Evaluate(ctx, t.m, t.env.Test, t.env.Arch.InShape)
}

// CaptureState implements schemes.Checkpointer. CL's persistent state is
// the full model (held server-side at cut 0), its optimizer, and the
// pooled loader.
func (t *Trainer) CaptureState() (*schemes.TrainerState, error) {
	return &schemes.TrainerState{
		Channel: t.env.Channel.State(),
		Models:  []model.SnapshotState{model.StateOf(t.m.Server)},
		Opts:    []optim.SGDState{t.opt.State()},
		Loaders: []data.LoaderState{t.loader.State()},
	}, nil
}

// RestoreState implements schemes.Checkpointer.
func (t *Trainer) RestoreState(st *schemes.TrainerState) error {
	if err := st.CheckCounts("cl", 1, 1, 1); err != nil {
		return err
	}
	full, err := model.SnapshotFromState(st.Models[0])
	if err != nil {
		return fmt.Errorf("cl: restoring model: %w", err)
	}
	if err := schemes.RestoreSnapshots("cl",
		schemes.SnapshotTarget{Snap: full, Dst: t.m.Server},
	); err != nil {
		return err
	}
	if err := t.opt.Restore(st.Opts[0]); err != nil {
		return fmt.Errorf("cl: optimizer: %w", err)
	}
	if err := t.loader.Restore(st.Loaders[0]); err != nil {
		return fmt.Errorf("cl: loader: %w", err)
	}
	if err := t.env.Channel.Restore(st.Channel); err != nil {
		return fmt.Errorf("cl: channel: %w", err)
	}
	return nil
}
