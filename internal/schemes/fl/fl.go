// Package fl implements federated learning with FedAvg, the paper's
// second benchmark scheme.
//
// Every client holds the full model and trains locally on its private
// data; each round all clients train in parallel, upload the full model
// over the shared uplink, the AP FedAvg-aggregates, and all clients
// download the new global model. The full-model transfers are FL's
// weakness in resource-limited wireless networks — the communication
// overhead the paper's introduction calls out — and non-IID client data
// slows its convergence in rounds, which is why GSFL beats it by ~5x.
package fl

import (
	"context"
	"fmt"

	"gsfl/internal/agg"
	"gsfl/internal/data"
	"gsfl/internal/model"
	"gsfl/internal/optim"
	"gsfl/internal/parallel"
	"gsfl/internal/schemes"
	"gsfl/internal/simnet"
)

func init() {
	schemes.Register("fl", func(env *schemes.Env, _ schemes.FactoryOpts) (schemes.Trainer, error) {
		return New(env)
	})
}

// Trainer is the FedAvg scheme mid-training.
type Trainer struct {
	env *schemes.Env

	// global is the aggregated full model (represented as a SplitModel
	// with an all-client cut so FLOPs/bytes helpers apply).
	global  model.Snapshot
	locals  []*model.SplitModel
	opts    []*optim.SGD
	loaders []*data.Loader
	weights []float64

	evalModel *model.SplitModel
	fullCut   int

	// Per-client reusable state: stepWS[ci] holds client ci's batch and
	// loss-gradient buffers; caps[ci] is its re-captured model snapshot
	// for FedAvg.
	stepWS []schemes.StepWorkspace
	caps   []model.Snapshot

	// round counts completed rounds (keys the population's sampling
	// stream); popW is the population path's per-round weight scratch.
	round int
	popW  []float64
}

// New validates the environment and assembles an FL trainer. The env's
// Cut is ignored: FL always trains the full model on the client.
func New(env *schemes.Env) (*Trainer, error) {
	if err := env.Validate(); err != nil {
		return nil, err
	}
	fullCut := len(env.Arch.Build(env.Rng("probe", 0)))
	t := &Trainer{env: env, fullCut: fullCut}

	init := env.Arch.NewSplit(env.Rng("init", 0), fullCut)
	t.global = model.TakeSnapshot(init.Client)
	t.evalModel = init

	n := env.Fleet.N()
	t.locals = make([]*model.SplitModel, n)
	t.opts = make([]*optim.SGD, n)
	t.loaders = make([]*data.Loader, n)
	t.weights = make([]float64, n)
	t.stepWS = make([]schemes.StepWorkspace, n)
	t.caps = make([]model.Snapshot, n)
	for ci := 0; ci < n; ci++ {
		t.locals[ci] = env.Arch.NewSplit(env.Rng("local", ci), fullCut)
		t.opts[ci] = env.NewOptimizer()
		t.loaders[ci] = data.NewLoader(env.Train[ci], env.Hyper.Batch, env.Arch.InShape, env.Rng("loader", ci))
		t.weights[ci] = float64(env.Train[ci].Len())
	}
	return t, nil
}

// Name implements schemes.Trainer.
func (t *Trainer) Name() string { return "fl" }

// Round implements schemes.Trainer: parallel local training, concurrent
// full-model upload, FedAvg, concurrent download.
func (t *Trainer) Round(ctx context.Context) (*simnet.Ledger, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	env := t.env
	env.Channel.AdvanceRound() // new fading stream + client mobility
	t.round++
	n := env.Fleet.N()
	weights := t.weights
	if env.Pop != nil {
		// Population mode: train only the sampled cohort. Bindings are
		// dense (binding i owns slot i), so the round body below simply
		// runs over the first n slots with per-round shard weights.
		binds, err := env.Pop.BeginRound(t.round)
		if err != nil {
			return nil, err
		}
		if len(binds) == 0 {
			return &simnet.Ledger{}, nil
		}
		t.popW = t.popW[:0]
		for i := range binds {
			b := &binds[i]
			t.loaders[b.Slot].Reset(env.Train[b.Shard], b.LoaderSeed)
			t.popW = append(t.popW, float64(env.Train[b.Shard].Len()))
		}
		n = len(binds)
		weights = t.popW
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	upAlloc := env.Alloc.Allocate(env.Channel, all, env.Channel.UplinkHz(), true)
	downAlloc := env.Alloc.Allocate(env.Channel, all, env.Channel.DownlinkHz(), false)

	// Tracing (nil when disabled): one virtual-clock lane per client.
	// Lanes attach before the parallel section so the trace bookkeeping
	// never races; span emission inside it stays per-lane.
	rt := env.BeginRoundTrace("fl", t.round)
	clientLeds := make([]*simnet.Ledger, n)
	for ci := range clientLeds {
		clientLeds[ci] = &simnet.Ledger{}
		rt.Lane("client", ci, clientLeds[ci])
	}
	// Clients train concurrently — FL's defining parallelism, executed as
	// real goroutines. Each client touches only its own local model,
	// optimizer, and loader (t.global is read-only during the round), so
	// scheduling cannot perturb numerics. Local compute is priced inside
	// the loop because ComputeSeconds is a pure function; the wireless
	// transfers draw from the shared channel RNG and are priced serially
	// below.
	parallel.For(n, 1, func(lo, hi int) {
		for ci := lo; ci < hi; ci++ {
			led := clientLeds[ci]
			local := t.locals[ci]
			ws := &t.stepWS[ci]
			t.global.Restore(local.Client)
			dev := env.Fleet.Clients[ci]
			for s := 0; s < env.Hyper.StepsPerClient; s++ {
				t.loaders[ci].NextInto(&ws.Batch)
				ws.LocalStep(local.Client, t.opts[ci], ws.Batch)
				led.Add(simnet.ClientCompute,
					dev.ComputeSeconds(3*local.ClientFwdFLOPs()*int64(len(ws.Batch.Y))))
			}
		}
	})
	// Price the global-model download and trained-model upload serially
	// in client order, consuming the channel's fading RNG in the same
	// sequence as a single-worker run (training itself draws nothing).
	for ci := 0; ci < n; ci++ {
		led := clientLeds[ci]
		led.Add(simnet.Downlink,
			env.Channel.TransferSeconds(ci, t.locals[ci].TotalParamBytes(), downAlloc[ci], false))
		led.Add(simnet.Uplink,
			env.Channel.TransferSeconds(ci, t.locals[ci].TotalParamBytes(), upAlloc[ci], true))
	}

	round := simnet.MaxOf(clientLeds)
	rt.TailLane("ap", -1, round)

	for ci := 0; ci < n; ci++ {
		t.caps[ci].CaptureFrom(t.locals[ci].Client)
	}
	agg.FedAvgInto(&t.global, t.caps[:n], weights[:n])
	schemes.AggregationLatency(env, n, t.global.ParamCount(), round)
	rt.End(round)
	return round, nil
}

// Evaluate implements schemes.Trainer.
func (t *Trainer) Evaluate(ctx context.Context) (schemes.Eval, error) {
	t.global.Restore(t.evalModel.Client)
	return schemes.Evaluate(ctx, t.evalModel, t.env.Test, t.env.Arch.InShape)
}

// CaptureState implements schemes.Checkpointer. FL's persistent state
// is the aggregated global model (local replicas are rewritten from it
// every round), the per-client optimizers, the loaders, and the round
// counter (which keys the population sampling stream). In population
// mode the loaders carry no cross-round state — every round Resets
// them from the replayable sampled bindings — so zero-value states
// keep the checkpoint shape fixed.
func (t *Trainer) CaptureState() (*schemes.TrainerState, error) {
	st := &schemes.TrainerState{
		Round:   t.round,
		Channel: t.env.Channel.State(),
		Models:  []model.SnapshotState{t.global.State()},
	}
	for ci := range t.locals {
		st.Opts = append(st.Opts, t.opts[ci].State())
	}
	if t.env.Pop != nil {
		st.Loaders = make([]data.LoaderState, len(t.loaders))
	} else {
		for ci := range t.loaders {
			st.Loaders = append(st.Loaders, t.loaders[ci].State())
		}
	}
	return st, nil
}

// RestoreState implements schemes.Checkpointer.
func (t *Trainer) RestoreState(st *schemes.TrainerState) error {
	if err := st.CheckCounts("fl", 1, len(t.opts), len(t.loaders)); err != nil {
		return err
	}
	global, err := model.SnapshotFromState(st.Models[0])
	if err != nil {
		return fmt.Errorf("fl: restoring global model: %w", err)
	}
	// Structural validation against the eval scratch model.
	if err := schemes.RestoreSnapshots("fl",
		schemes.SnapshotTarget{Snap: global, Dst: t.evalModel.Client},
	); err != nil {
		return err
	}
	t.global = global.Clone()
	for ci := range t.opts {
		if err := t.opts[ci].Restore(st.Opts[ci]); err != nil {
			return fmt.Errorf("fl: client %d optimizer: %w", ci, err)
		}
		if t.env.Pop != nil {
			continue // loaders are Reset from replayed bindings each round
		}
		if err := t.loaders[ci].Restore(st.Loaders[ci]); err != nil {
			return fmt.Errorf("fl: client %d loader: %w", ci, err)
		}
	}
	if err := t.env.Channel.Restore(st.Channel); err != nil {
		return fmt.Errorf("fl: channel: %w", err)
	}
	t.round = st.Round
	return nil
}
