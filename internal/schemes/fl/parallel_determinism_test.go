package fl

import (
	"testing"

	"gsfl/internal/metrics"
	"gsfl/internal/parallel"
	"gsfl/internal/schemes/schemestest"
)

// FL's clients train on concurrent goroutines; curves (including the
// serially-priced transfer latencies) must be bit-identical to a
// single-worker run.
func TestFLBitIdenticalAcrossWorkers(t *testing.T) {
	defer parallel.SetWorkers(0)
	run := func(workers int) *metrics.Curve {
		parallel.SetWorkers(workers)
		tr, err := New(schemestest.NewEnv(31, 6, 40))
		if err != nil {
			t.Fatal(err)
		}
		return schemestest.RunCurve(t, tr, 5, 1)
	}
	base := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		for i := range base.Points {
			p, q := base.Points[i], got.Points[i]
			if p.Loss != q.Loss || p.Accuracy != q.Accuracy || p.LatencySeconds != q.LatencySeconds {
				t.Fatalf("workers=%d diverged from serial at point %d: %+v vs %+v", workers, i, q, p)
			}
		}
	}
}
