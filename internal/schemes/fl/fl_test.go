package fl

import (
	"testing"

	"gsfl/internal/device"
	"gsfl/internal/schemes/schemestest"
	"gsfl/internal/simnet"
	"gsfl/internal/wireless"
)

func newTrainer(t *testing.T, seed int64, n int) *Trainer {
	t.Helper()
	tr, err := New(schemestest.NewEnv(seed, n, 40))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestFLLearnsBlobs(t *testing.T) {
	tr := newTrainer(t, 1, 6)
	curve := schemestest.RunCurve(t, tr, 20, 4)
	if !curve.IsFinite() {
		t.Fatal("training diverged")
	}
	if acc := curve.FinalAccuracy(); acc < 0.6 {
		t.Fatalf("final accuracy %v; FL failed to learn", acc)
	}
}

func TestFLDeterministic(t *testing.T) {
	c1 := schemestest.RunCurve(t, newTrainer(t, 3, 5), 4, 1)
	c2 := schemestest.RunCurve(t, newTrainer(t, 3, 5), 4, 1)
	for i := range c1.Points {
		if c1.Points[i] != c2.Points[i] {
			t.Fatalf("point %d differs", i)
		}
	}
}

func TestFLRoundComponents(t *testing.T) {
	tr := newTrainer(t, 2, 4)
	led := schemestest.MustRound(t, tr)
	for _, c := range []simnet.Component{
		simnet.ClientCompute, simnet.Uplink, simnet.Downlink, simnet.Aggregation,
	} {
		if led.Get(c) <= 0 {
			t.Fatalf("component %v is zero", c)
		}
	}
	// FL has no split point: the server never computes activations, and
	// no client-model relays occur.
	if led.Get(simnet.ServerCompute) != 0 {
		t.Fatal("FL must not pay server forward/backward time")
	}
	if led.Get(simnet.Relay) != 0 {
		t.Fatal("FL must not pay relay time")
	}
}

func TestFLTransfersFullModel(t *testing.T) {
	// FL uplink time per round must exceed SL-style smashed-data uplink
	// cost scaled appropriately; here we simply verify the uplink
	// component reflects full-model bytes by checking it dwarfs the
	// aggregation time.
	tr := newTrainer(t, 5, 4)
	led := schemestest.MustRound(t, tr)
	if led.Get(simnet.Uplink) <= led.Get(simnet.Aggregation) {
		t.Fatalf("uplink %v should dominate aggregation %v",
			led.Get(simnet.Uplink), led.Get(simnet.Aggregation))
	}
}

func TestFLParallelRoundBeatsSequentialSum(t *testing.T) {
	// FL trains clients in parallel; its round latency (slowest client
	// under shared bandwidth, plus aggregation) must be well below the
	// cost of serving the clients one at a time, each with the full
	// bandwidth. Use a homogeneous fleet and disable fading so both sides
	// are exactly computable.
	env := schemestest.NewEnv(6, 8, 40)
	dcfg := device.DefaultConfig(8)
	dcfg.ClientSpread = 0
	env.Fleet = device.NewFleet(dcfg, 99)
	wcfg := wireless.DefaultConfig()
	wcfg.FadingJitter = 0
	env.Channel = wireless.NewChannel(wcfg, 8, 100)

	tr, err := New(env)
	if err != nil {
		t.Fatal(err)
	}
	parallel := schemestest.MustRound(t, tr).Total()

	// Sequential estimate: every client gets the full budget but they go
	// one after another.
	probe := env.Arch.NewSplit(env.Rng("probe", 1), len(env.Arch.Build(env.Rng("probe", 2))))
	bytes := probe.TotalParamBytes()
	perStep := 3 * probe.ClientFwdFLOPs() * int64(env.Hyper.Batch)
	sequential := 0.0
	for ci := 0; ci < 8; ci++ {
		sequential += env.Channel.TransferSeconds(ci, bytes, env.Channel.DownlinkHz(), false)
		sequential += env.Fleet.Clients[ci].ComputeSeconds(perStep) * float64(env.Hyper.StepsPerClient)
		sequential += env.Channel.TransferSeconds(ci, bytes, env.Channel.UplinkHz(), true)
	}
	if parallel >= sequential {
		t.Fatalf("parallel FL round (%v) not below sequential sum (%v)", parallel, sequential)
	}
}

func TestFLInvalidEnv(t *testing.T) {
	env := schemestest.NewEnv(1, 4, 30)
	env.Train = env.Train[:1]
	if _, err := New(env); err == nil {
		t.Fatal("expected error for invalid env")
	}
}
