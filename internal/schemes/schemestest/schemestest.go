// Package schemestest provides shared fixtures for testing the training
// schemes: a small, quickly learnable synthetic classification task and
// a fully assembled environment around it.
//
// The task is Gaussian blobs: class c's features cluster around a
// class-specific mean. An MLP separates them within a few dozen SGD
// steps, so end-to-end scheme tests can assert real learning (accuracy
// far above chance) in milliseconds.
package schemestest

import (
	"context"
	"math/rand"
	"testing"

	"gsfl/internal/data"
	"gsfl/internal/device"
	"gsfl/internal/metrics"
	"gsfl/internal/model"
	"gsfl/internal/partition"
	"gsfl/internal/schemes"
	"gsfl/internal/simnet"
	"gsfl/internal/wireless"
)

// RunCurve drives a trainer for the given number of rounds, evaluating
// every evalEvery rounds (and always after the final round), and fails
// the test on any error. It mirrors the sim.Runner loop without
// importing gsfl/sim, which scheme packages' in-package tests cannot
// (sim imports every scheme for registration).
func RunCurve(tb testing.TB, tr schemes.Trainer, rounds, evalEvery int) *metrics.Curve {
	tb.Helper()
	ctx := context.Background()
	curve := &metrics.Curve{Scheme: tr.Name()}
	elapsed := 0.0
	for r := 1; r <= rounds; r++ {
		led, err := tr.Round(ctx)
		if err != nil {
			tb.Fatalf("round %d: %v", r, err)
		}
		elapsed += led.Total()
		if r%evalEvery == 0 || r == rounds {
			ev, err := tr.Evaluate(ctx)
			if err != nil {
				tb.Fatalf("evaluating after round %d: %v", r, err)
			}
			curve.Append(metrics.Point{Round: r, LatencySeconds: elapsed, Loss: ev.Loss, Accuracy: ev.Accuracy})
		}
	}
	return curve
}

// MustRound runs one round, failing the test on error.
func MustRound(tb testing.TB, tr schemes.Trainer) *simnet.Ledger {
	tb.Helper()
	led, err := tr.Round(context.Background())
	if err != nil {
		tb.Fatalf("round: %v", err)
	}
	return led
}

// MustEval evaluates, failing the test on error.
func MustEval(tb testing.TB, tr schemes.Trainer) schemes.Eval {
	tb.Helper()
	ev, err := tr.Evaluate(context.Background())
	if err != nil {
		tb.Fatalf("evaluate: %v", err)
	}
	return ev
}

// BlobClasses is the number of classes in the toy task.
const BlobClasses = 4

// BlobDim is the feature dimensionality of the toy task.
const BlobDim = 8

// Blobs generates n samples of the Gaussian-blob task.
func Blobs(n int, noise float64, rng *rand.Rand) *data.InMemory {
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		c := rng.Intn(BlobClasses)
		f := make([]float64, BlobDim)
		for j := range f {
			f[j] = noise * rng.NormFloat64()
		}
		// Two coordinates carry the class signal.
		f[c*2%BlobDim] += 2
		f[(c*2+1)%BlobDim] += 1.5
		x[i] = f
		y[i] = c
	}
	return data.NewInMemory(x, y, BlobClasses)
}

// EnvOption mutates the default environment before validation.
type EnvOption func(*schemes.Env)

// WithHyper overrides the hyperparameters.
func WithHyper(h schemes.Hyper) EnvOption {
	return func(e *schemes.Env) { e.Hyper = h }
}

// WithCut overrides the split index.
func WithCut(cut int) EnvOption {
	return func(e *schemes.Env) { e.Cut = cut }
}

// NewEnv builds a complete toy environment: nClients clients with IID
// blob data, an MLP cut at its default index, a heterogeneous fleet, and
// a default wireless channel. Deterministic in seed.
func NewEnv(seed int64, nClients, samplesPerClient int, opts ...EnvOption) *schemes.Env {
	rng := rand.New(rand.NewSource(seed))
	pool := Blobs(nClients*samplesPerClient, 0.6, rng)
	test := Blobs(200, 0.6, rand.New(rand.NewSource(seed+1)))

	env := &schemes.Env{
		Arch:    model.MLP(BlobDim, 16, BlobClasses),
		Cut:     model.MLPDefaultCut,
		Fleet:   device.NewFleet(device.DefaultConfig(nClients), seed+2),
		Channel: wireless.NewChannel(wireless.DefaultConfig(), nClients, seed+3),
		Alloc:   wireless.Uniform{},
		Test:    test,
		Hyper: schemes.Hyper{
			Batch:          8,
			StepsPerClient: 4,
			LR:             0.05,
			Momentum:       0.9,
			ClipNorm:       10,
		},
		Seed: seed + 4,
	}
	subsets := partition.IID(pool, nClients, rand.New(rand.NewSource(seed+5)))
	env.Train = make([]data.Dataset, len(subsets))
	for i, s := range subsets {
		env.Train[i] = s
	}
	for _, o := range opts {
		o(env)
	}
	if err := env.Validate(); err != nil {
		panic("schemestest: invalid fixture env: " + err.Error())
	}
	return env
}
