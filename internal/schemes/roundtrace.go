package schemes

import (
	"strconv"

	"gsfl/internal/simnet"
	"gsfl/obs"
)

// RoundTrace adapts one training round onto the execution tracer's
// virtual clock. Each parallel ledger (a GSFL group, an FL/SFL client,
// the single SL/CL chain) gets its own lane starting at the round's
// virtual start time; the ledger's Add observer turns every latency
// contribution into a phase span on that lane, so the trace shows
// exactly what the latency model priced, in pricing order. End emits
// the round's critical-path span and advances the tracer's global
// virtual clock.
//
// A nil *RoundTrace (tracing disabled) is a no-op on every method; the
// schemes' hot paths pay only the nil checks. All formatting happens
// inside the methods, after the nil check, so disabled rounds never
// build span names.
type RoundTrace struct {
	tr     *obs.Tracer
	scheme string
	round  int
	start  float64
	lanes  map[*simnet.Ledger]*obs.Track
}

// BeginRoundTrace starts tracing one round for the named scheme.
// Returns nil — the universal no-op — when the env has no tracer.
func (e *Env) BeginRoundTrace(scheme string, round int) *RoundTrace {
	if e.Trace == nil {
		return nil
	}
	return &RoundTrace{
		tr:     e.Trace,
		scheme: scheme,
		round:  round,
		start:  e.Trace.Now(),
		lanes:  make(map[*simnet.Ledger]*obs.Track),
	}
}

// On reports whether the round is being traced.
func (rt *RoundTrace) On() bool { return rt != nil }

func laneName(kind string, id int) string {
	if id < 0 {
		return kind
	}
	return kind + " " + strconv.Itoa(id)
}

// Lane binds led to the lane named "<kind> <id>" ("<kind>" when id is
// negative), positioned at the round's virtual start. Every subsequent
// Add on led becomes a phase span advancing the lane's cursor. Lanes
// persist across rounds (same name, new cursor), so a group's timeline
// reads continuously in the viewer.
func (rt *RoundTrace) Lane(kind string, id int, led *simnet.Ledger) {
	if rt == nil {
		return
	}
	rt.attach(led, rt.start, kind, id)
}

// TailLane binds led to a lane positioned at the ledger's current
// critical-path end rather than the round start — the shape of
// post-parallel stages, like FedAvg aggregation pricing appended to the
// winning group's ledger after simnet.MaxOf.
func (rt *RoundTrace) TailLane(kind string, id int, led *simnet.Ledger) {
	if rt == nil {
		return
	}
	rt.attach(led, rt.start+led.Total(), kind, id)
}

func (rt *RoundTrace) attach(led *simnet.Ledger, at float64, kind string, id int) {
	tk := rt.tr.Lane(rt.scheme, laneName(kind, id))
	tk.Seek(at)
	rt.lanes[led] = tk
	led.Observe(func(c simnet.Component, dt float64) {
		tk.Span(c.String(), "phase", dt)
	})
}

// BeginSlot opens a container span "<kind> <id>" on led's lane — a
// client slot wrapping the phase spans its turn prices. Close with
// EndSlot.
func (rt *RoundTrace) BeginSlot(led *simnet.Ledger, kind string, id int) {
	if rt == nil {
		return
	}
	rt.lanes[led].Begin(laneName(kind, id), "slot")
}

// EndSlot closes the innermost BeginSlot on led's lane.
func (rt *RoundTrace) EndSlot(led *simnet.Ledger) {
	if rt == nil {
		return
	}
	rt.lanes[led].End()
}

// Instant drops a marker with a note on led's lane at its cursor.
func (rt *RoundTrace) Instant(led *simnet.Ledger, name, note string) {
	if rt == nil {
		return
	}
	rt.lanes[led].Instant(name, "mark", note)
}

// End detaches every lane, emits the round's critical-path span on the
// scheme's "rounds" lane, and advances the tracer's virtual clock by
// the round ledger's total. Call it with the ledger the Round method
// returns; a nil ledger (a no-op round) emits nothing but still keeps
// the clock consistent.
func (rt *RoundTrace) End(round *simnet.Ledger) {
	if rt == nil {
		return
	}
	for led := range rt.lanes {
		led.Observe(nil)
	}
	if round == nil {
		return
	}
	rounds := rt.tr.Lane(rt.scheme, "rounds")
	rounds.Seek(rt.start)
	rounds.Span("round "+strconv.Itoa(rt.round), "round", round.Total())
	rt.tr.Advance(round.Total())
}
