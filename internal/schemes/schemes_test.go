package schemes_test

import (
	"context"
	"math"
	"testing"

	"gsfl/internal/data"
	"gsfl/internal/schemes"
	"gsfl/internal/schemes/schemestest"
	"gsfl/internal/simnet"
	"gsfl/internal/tensor"
)

func TestHyperValidate(t *testing.T) {
	good := schemes.Hyper{Batch: 8, StepsPerClient: 2, LR: 0.1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid hyper rejected: %v", err)
	}
	cases := []schemes.Hyper{
		{Batch: 0, StepsPerClient: 2, LR: 0.1},
		{Batch: 8, StepsPerClient: 0, LR: 0.1},
		{Batch: 8, StepsPerClient: 2, LR: 0},
		{Batch: 8, StepsPerClient: 2, LR: 0.1, Momentum: 1},
	}
	for i, h := range cases {
		if err := h.Validate(); err == nil {
			t.Fatalf("case %d: invalid hyper accepted", i)
		}
	}
}

func TestEnvValidate(t *testing.T) {
	env := schemestest.NewEnv(1, 4, 30)
	if err := env.Validate(); err != nil {
		t.Fatalf("fixture env invalid: %v", err)
	}
	broken := schemestest.NewEnv(1, 4, 30)
	broken.Fleet = nil
	if err := broken.Validate(); err == nil {
		t.Fatal("nil fleet accepted")
	}
	broken2 := schemestest.NewEnv(1, 4, 30)
	broken2.Train[2] = nil
	if err := broken2.Validate(); err == nil {
		t.Fatal("nil client dataset accepted")
	}
}

func TestRngStreamsIndependent(t *testing.T) {
	env := schemestest.NewEnv(1, 4, 30)
	a1 := env.Rng("alpha", 0).Float64()
	a2 := env.Rng("alpha", 0).Float64()
	if a1 != a2 {
		t.Fatal("same purpose must give the same stream")
	}
	b := env.Rng("beta", 0).Float64()
	c := env.Rng("alpha", 1).Float64()
	if a1 == b || a1 == c {
		t.Fatal("different purposes/keys must give different streams")
	}
}

func TestEvaluateMatchesDirectComputation(t *testing.T) {
	env := schemestest.NewEnv(2, 4, 30)
	m := env.Arch.NewSplit(env.Rng("init", 0), env.Cut)
	e1, err := schemes.Evaluate(context.Background(), m, env.Test, env.Arch.InShape)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(e1.Loss) || e1.Accuracy < 0 || e1.Accuracy > 1 {
		t.Fatalf("Evaluate returned %+v", e1)
	}
	// Chunked evaluation must be invariant to chunk boundaries: evaluate
	// twice; identical results (pure function).
	e2, err := schemes.Evaluate(context.Background(), m, env.Test, env.Arch.InShape)
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Fatal("Evaluate is not deterministic")
	}
}

func TestSplitStepReducesLoss(t *testing.T) {
	env := schemestest.NewEnv(3, 4, 50)
	m := env.Arch.NewSplit(env.Rng("init", 0), env.Cut)
	cOpt, sOpt := env.NewOptimizer(), env.NewOptimizer()

	// Train on a fixed batch; the loss on that batch must fall.
	batch := data.All(env.Train[0], env.Arch.InShape)
	first := schemes.SplitStep(m, cOpt, sOpt, batch, false)
	var last float64
	for i := 0; i < 30; i++ {
		last = schemes.SplitStep(m, cOpt, sOpt, batch, false)
	}
	if last >= first {
		t.Fatalf("loss did not fall on a fixed batch: %v -> %v", first, last)
	}
}

func TestStepLatencyComponents(t *testing.T) {
	env := schemestest.NewEnv(4, 4, 30)
	m := env.Arch.NewSplit(env.Rng("init", 0), env.Cut)
	led := &simnet.Ledger{}
	schemes.StepLatency(env, m, 0, env.Hyper.Batch, 1e6, 1e6, led)
	for _, c := range []simnet.Component{
		simnet.ClientCompute, simnet.Uplink, simnet.ServerCompute, simnet.Downlink,
	} {
		if led.Get(c) <= 0 {
			t.Fatalf("component %v not priced", c)
		}
	}
	if led.Get(simnet.Relay) != 0 || led.Get(simnet.Aggregation) != 0 {
		t.Fatal("step must not price relay/aggregation")
	}
}

func TestRelayLatency(t *testing.T) {
	env := schemestest.NewEnv(5, 4, 30)
	m := env.Arch.NewSplit(env.Rng("init", 0), env.Cut)
	led := &simnet.Ledger{}
	schemes.RelayLatency(env, m, 0, 1, 1e6, 1e6, led)
	if led.Get(simnet.Relay) <= 0 {
		t.Fatal("relay must cost time")
	}
}

func TestAggregationLatencyScales(t *testing.T) {
	env := schemestest.NewEnv(6, 4, 30)
	l1, l2 := &simnet.Ledger{}, &simnet.Ledger{}
	schemes.AggregationLatency(env, 2, 1000, l1)
	schemes.AggregationLatency(env, 4, 1000, l2)
	if l2.Get(simnet.Aggregation) != 2*l1.Get(simnet.Aggregation) {
		t.Fatal("aggregation time must scale with model count")
	}
}

func TestEvaluateHonoursCancellation(t *testing.T) {
	env := schemestest.NewEnv(7, 4, 30)
	m := env.Arch.NewSplit(env.Rng("init", 0), env.Cut)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := schemes.Evaluate(ctx, m, env.Test, env.Arch.InShape); err != context.Canceled {
		t.Fatalf("cancelled Evaluate returned %v, want context.Canceled", err)
	}
}

func TestEvaluateConfusionConsistentWithEvaluate(t *testing.T) {
	env := schemestest.NewEnv(9, 4, 30)
	m := env.Arch.NewSplit(env.Rng("init", 0), env.Cut)
	ev, err := schemes.Evaluate(context.Background(), m, env.Test, env.Arch.InShape)
	if err != nil {
		t.Fatal(err)
	}
	cm := schemes.EvaluateConfusion(m, env.Test, env.Arch.InShape)
	if cm.Accuracy() != ev.Accuracy {
		t.Fatalf("confusion accuracy %v != scalar accuracy %v", cm.Accuracy(), ev.Accuracy)
	}
	total := 0
	for c := 0; c < schemestest.BlobClasses; c++ {
		for p := 0; p < schemestest.BlobClasses; p++ {
			total += cm.Count(c, p)
		}
	}
	if total != env.Test.Len() {
		t.Fatalf("confusion matrix covers %d samples, want %d", total, env.Test.Len())
	}
}

func TestLRDecayValidation(t *testing.T) {
	h := schemes.Hyper{Batch: 8, StepsPerClient: 2, LR: 0.1, LRDecayFactor: 0.5}
	if err := h.Validate(); err == nil {
		t.Fatal("factor without interval accepted")
	}
	h = schemes.Hyper{Batch: 8, StepsPerClient: 2, LR: 0.1, LRDecayFactor: 0.5, LRDecayEvery: 10}
	if err := h.Validate(); err != nil {
		t.Fatalf("valid decay config rejected: %v", err)
	}
	h.LRDecayFactor = 1.5
	if err := h.Validate(); err == nil {
		t.Fatal("factor > 1 accepted")
	}
}

func TestLRDecayScheduleApplied(t *testing.T) {
	env := schemestest.NewEnv(30, 4, 30)
	env.Hyper.LRDecayFactor = 0.5
	env.Hyper.LRDecayEvery = 1
	opt := env.NewOptimizer()
	// Two steps on a unit gradient: first at LR, second at LR/2.
	p := tensorOf(0)
	g := tensorOf(1)
	opt.Step(p, g, nil)
	after1 := -p[0].Data[0]
	opt.Step(p, g, nil)
	after2 := -p[0].Data[0] - after1
	if after2 >= after1 {
		t.Fatalf("LR did not decay: step1 %v, step2 %v", after1, after2)
	}
}

func tensorOf(v float64) []*tensor.Tensor {
	t := tensor.New(1)
	t.Data[0] = v
	return []*tensor.Tensor{t}
}
