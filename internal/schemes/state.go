package schemes

import (
	"fmt"

	"gsfl/internal/data"
	"gsfl/internal/model"
	"gsfl/internal/nn"
	"gsfl/internal/optim"
	"gsfl/internal/wireless"
)

// TrainerState is a trainer's complete mutable state at a round
// boundary, in a gob-serializable form. Each scheme defines its own
// ordering for the Models/Opts/Loaders slices; a state captured from one
// scheme restores only into a freshly constructed trainer of the same
// scheme over an identical Env.
//
// Combined with the deterministic construction path (everything a
// trainer derives at New time is a pure function of the Env), restoring
// a TrainerState makes continued training bit-identical to the
// uninterrupted run: model parameters, optimizer momentum and step
// counts, data-loader shuffle positions, and the wireless channel's
// per-round RNG cursor are all part of the state.
type TrainerState struct {
	// Round is the number of completed training rounds.
	Round int
	// Channel is the shared wireless channel's state (round cursor,
	// client positions, shadowing).
	Channel wireless.ChannelState
	// Models holds the scheme's persistent model halves.
	Models []model.SnapshotState
	// Opts holds the scheme's optimizer states.
	Opts []optim.SGDState
	// Loaders holds the per-client data-loader states.
	Loaders []data.LoaderState
}

// Checkpointer is the optional interface a Trainer implements to support
// checkpoint/resume through the run API. All five built-in schemes
// implement it.
type Checkpointer interface {
	// CaptureState deep-copies the trainer's complete mutable state.
	// Only valid at a round boundary (between Round calls).
	CaptureState() (*TrainerState, error)
	// RestoreState resets a freshly constructed trainer to a captured
	// state. The trainer must have been built over an Env identical to
	// the one the state was captured from.
	RestoreState(*TrainerState) error
}

// SnapshotTarget pairs a restored snapshot with the model half it is
// destined for.
type SnapshotTarget struct {
	Snap model.Snapshot
	Dst  *nn.Sequential
}

// RestoreSnapshots validates every snapshot structurally against its
// destination, then commits them all. On mismatch it returns an error
// before mutating anything, so a failed restore never leaves a model
// half-updated.
func RestoreSnapshots(scheme string, targets ...SnapshotTarget) error {
	for i, tgt := range targets {
		ps := tgt.Dst.Params()
		if len(ps) != len(tgt.Snap.Tensors) {
			return fmt.Errorf("schemes: %s snapshot %d has %d tensors, model half has %d params",
				scheme, i, len(tgt.Snap.Tensors), len(ps))
		}
		for j, p := range ps {
			if p.Size() != tgt.Snap.Tensors[j].Size() {
				return fmt.Errorf("schemes: %s snapshot %d tensor %d has %d values, param has %d",
					scheme, i, j, tgt.Snap.Tensors[j].Size(), p.Size())
			}
		}
	}
	for _, tgt := range targets {
		tgt.Snap.Restore(tgt.Dst)
	}
	return nil
}

// CheckCounts validates the slice arities of a TrainerState against what
// the restoring scheme expects — the first line of defence against
// restoring a checkpoint into the wrong scheme or population size.
func (st *TrainerState) CheckCounts(scheme string, models, opts, loaders int) error {
	if len(st.Models) != models || len(st.Opts) != opts || len(st.Loaders) != loaders {
		return fmt.Errorf("schemes: %s state has %d models/%d opts/%d loaders, trainer needs %d/%d/%d",
			scheme, len(st.Models), len(st.Opts), len(st.Loaders), models, opts, loaders)
	}
	if st.Round < 0 {
		return fmt.Errorf("schemes: %s state has negative round %d", scheme, st.Round)
	}
	return nil
}
