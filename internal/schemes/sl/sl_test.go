package sl

import (
	"testing"

	"gsfl/internal/schemes/schemestest"
	"gsfl/internal/simnet"
)

func newTrainer(t *testing.T, seed int64, n int) *Trainer {
	t.Helper()
	tr, err := New(schemestest.NewEnv(seed, n, 40))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSLLearnsBlobs(t *testing.T) {
	tr := newTrainer(t, 1, 6)
	curve := schemestest.RunCurve(t, tr, 10, 2)
	if !curve.IsFinite() {
		t.Fatal("training diverged")
	}
	if acc := curve.FinalAccuracy(); acc < 0.7 {
		t.Fatalf("final accuracy %v; SL failed to learn", acc)
	}
}

func TestSLDeterministic(t *testing.T) {
	c1 := schemestest.RunCurve(t, newTrainer(t, 3, 5), 4, 1)
	c2 := schemestest.RunCurve(t, newTrainer(t, 3, 5), 4, 1)
	for i := range c1.Points {
		if c1.Points[i] != c2.Points[i] {
			t.Fatalf("point %d differs: %+v vs %+v", i, c1.Points[i], c2.Points[i])
		}
	}
}

func TestSLRoundComponents(t *testing.T) {
	tr := newTrainer(t, 2, 4)
	led := schemestest.MustRound(t, tr)
	for _, c := range []simnet.Component{
		simnet.ClientCompute, simnet.Uplink, simnet.ServerCompute,
		simnet.Downlink, simnet.Relay,
	} {
		if led.Get(c) <= 0 {
			t.Fatalf("component %v is zero", c)
		}
	}
	// Vanilla SL never aggregates.
	if led.Get(simnet.Aggregation) != 0 {
		t.Fatal("SL must not pay aggregation time")
	}
}

func TestSLLatencyScalesWithClients(t *testing.T) {
	// Sequential training: doubling the client count should roughly
	// double the round latency (modulo heterogeneity noise).
	small := schemestest.MustRound(t, newTrainer(t, 4, 4)).Total()
	large := schemestest.MustRound(t, newTrainer(t, 4, 8)).Total()
	if large < 1.5*small {
		t.Fatalf("8-client round (%v) should be much longer than 4-client (%v)", large, small)
	}
}

func TestSLInvalidEnv(t *testing.T) {
	env := schemestest.NewEnv(1, 4, 30)
	env.Test = nil
	if _, err := New(env); err == nil {
		t.Fatal("expected error for invalid env")
	}
}
