// Package sl implements vanilla split learning, the paper's first
// benchmark scheme.
//
// One client-side model and one server-side model exist. Clients train
// strictly sequentially: client i runs its local split steps against the
// shared server-side model, then the client-side model is relayed
// through the AP to client i+1. One round visits every client once.
// Because only one client is ever active, each transfer enjoys the full
// uplink/downlink budget — but nothing happens in parallel, which is
// exactly the long-training-latency weakness GSFL attacks.
package sl

import (
	"context"
	"fmt"

	"gsfl/internal/data"
	"gsfl/internal/model"
	"gsfl/internal/optim"
	"gsfl/internal/schemes"
	"gsfl/internal/simnet"
)

func init() {
	schemes.Register("sl", func(env *schemes.Env, _ schemes.FactoryOpts) (schemes.Trainer, error) {
		return New(env)
	})
}

// Trainer is the vanilla-SL scheme mid-training.
type Trainer struct {
	env *schemes.Env

	m         *model.SplitModel
	clientOpt *optim.SGD
	serverOpt *optim.SGD
	loaders   []*data.Loader

	// ws is the single training-step workspace — SL trains one client at
	// a time, so one replica's worth of scratch suffices.
	ws schemes.StepWorkspace

	// round counts completed rounds (trace labels only; SL has no
	// round-keyed RNG streams).
	round int
}

// New validates the environment and assembles an SL trainer.
func New(env *schemes.Env) (*Trainer, error) {
	if err := env.Validate(); err != nil {
		return nil, err
	}
	if env.Pop != nil {
		return nil, fmt.Errorf("sl: population sampling is not supported (sequential schemes train the full client list; use gsfl, fl, or sfl)")
	}
	t := &Trainer{
		env:       env,
		m:         env.Arch.NewSplit(env.Rng("init", 0), env.Cut),
		clientOpt: env.NewOptimizer(),
		serverOpt: env.NewOptimizer(),
	}
	t.loaders = make([]*data.Loader, env.Fleet.N())
	for ci, ds := range env.Train {
		t.loaders[ci] = data.NewLoader(ds, env.Hyper.Batch, env.Arch.InShape, env.Rng("loader", ci))
	}
	return t, nil
}

// Name implements schemes.Trainer.
func (t *Trainer) Name() string { return "sl" }

// Round implements schemes.Trainer: every client trains once, in order,
// with the client model relayed between consecutive clients.
// Cancellation is honoured between client turns.
func (t *Trainer) Round(ctx context.Context) (*simnet.Ledger, error) {
	env := t.env
	env.Channel.AdvanceRound() // new fading stream + client mobility
	t.round++
	rt := env.BeginRoundTrace("sl", t.round)
	led := &simnet.Ledger{}
	rt.Lane("chain", -1, led) // one strictly sequential lane
	n := env.Fleet.N()
	up := env.Channel.UplinkHz() // sole active client: full budget
	down := env.Channel.DownlinkHz()
	for ci := 0; ci < n; ci++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rt.BeginSlot(led, "client", ci)
		for s := 0; s < env.Hyper.StepsPerClient; s++ {
			t.loaders[ci].NextInto(&t.ws.Batch)
			t.ws.SplitStep(t.m, t.clientOpt, t.serverOpt, t.ws.Batch, env.Hyper.QuantizeTransfers)
			schemes.StepLatency(env, t.m, ci, len(t.ws.Batch.Y), up, down, led)
		}
		// Hand the client model to the next client (wrapping to next
		// round's first client), always through the AP.
		next := (ci + 1) % n
		schemes.RelayLatency(env, t.m, ci, next, up, down, led)
		rt.EndSlot(led)
	}
	rt.End(led)
	return led, nil
}

// Evaluate implements schemes.Trainer.
func (t *Trainer) Evaluate(ctx context.Context) (schemes.Eval, error) {
	return schemes.Evaluate(ctx, t.m, t.env.Test, t.env.Arch.InShape)
}

// CaptureState implements schemes.Checkpointer. SL's persistent state
// is the single shared split model (it is never rebuilt from snapshots),
// its optimizer pair, and the per-client loaders.
func (t *Trainer) CaptureState() (*schemes.TrainerState, error) {
	st := &schemes.TrainerState{
		Channel: t.env.Channel.State(),
		Models: []model.SnapshotState{
			model.StateOf(t.m.Client),
			model.StateOf(t.m.Server),
		},
		Opts: []optim.SGDState{t.clientOpt.State(), t.serverOpt.State()},
	}
	for _, l := range t.loaders {
		st.Loaders = append(st.Loaders, l.State())
	}
	return st, nil
}

// RestoreState implements schemes.Checkpointer.
func (t *Trainer) RestoreState(st *schemes.TrainerState) error {
	if err := st.CheckCounts("sl", 2, 2, len(t.loaders)); err != nil {
		return err
	}
	client, err := model.SnapshotFromState(st.Models[0])
	if err != nil {
		return fmt.Errorf("sl: restoring client half: %w", err)
	}
	server, err := model.SnapshotFromState(st.Models[1])
	if err != nil {
		return fmt.Errorf("sl: restoring server half: %w", err)
	}
	if err := schemes.RestoreSnapshots("sl",
		schemes.SnapshotTarget{Snap: client, Dst: t.m.Client},
		schemes.SnapshotTarget{Snap: server, Dst: t.m.Server},
	); err != nil {
		return err
	}
	if err := t.clientOpt.Restore(st.Opts[0]); err != nil {
		return fmt.Errorf("sl: client optimizer: %w", err)
	}
	if err := t.serverOpt.Restore(st.Opts[1]); err != nil {
		return fmt.Errorf("sl: server optimizer: %w", err)
	}
	for ci, l := range t.loaders {
		if err := l.Restore(st.Loaders[ci]); err != nil {
			return fmt.Errorf("sl: client %d loader: %w", ci, err)
		}
	}
	if err := t.env.Channel.Restore(st.Channel); err != nil {
		return fmt.Errorf("sl: channel: %w", err)
	}
	return nil
}
