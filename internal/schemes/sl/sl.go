// Package sl implements vanilla split learning, the paper's first
// benchmark scheme.
//
// One client-side model and one server-side model exist. Clients train
// strictly sequentially: client i runs its local split steps against the
// shared server-side model, then the client-side model is relayed
// through the AP to client i+1. One round visits every client once.
// Because only one client is ever active, each transfer enjoys the full
// uplink/downlink budget — but nothing happens in parallel, which is
// exactly the long-training-latency weakness GSFL attacks.
package sl

import (
	"gsfl/internal/data"
	"gsfl/internal/model"
	"gsfl/internal/optim"
	"gsfl/internal/schemes"
	"gsfl/internal/simnet"
)

// Trainer is the vanilla-SL scheme mid-training.
type Trainer struct {
	env *schemes.Env

	m         *model.SplitModel
	clientOpt *optim.SGD
	serverOpt *optim.SGD
	loaders   []*data.Loader
}

// New validates the environment and assembles an SL trainer.
func New(env *schemes.Env) (*Trainer, error) {
	if err := env.Validate(); err != nil {
		return nil, err
	}
	t := &Trainer{
		env:       env,
		m:         env.Arch.NewSplit(env.Rng("init", 0), env.Cut),
		clientOpt: env.NewOptimizer(),
		serverOpt: env.NewOptimizer(),
	}
	t.loaders = make([]*data.Loader, env.Fleet.N())
	for ci, ds := range env.Train {
		t.loaders[ci] = data.NewLoader(ds, env.Hyper.Batch, env.Arch.InShape, env.Rng("loader", ci))
	}
	return t, nil
}

// Name implements schemes.Trainer.
func (t *Trainer) Name() string { return "sl" }

// Round implements schemes.Trainer: every client trains once, in order,
// with the client model relayed between consecutive clients.
func (t *Trainer) Round() *simnet.Ledger {
	env := t.env
	env.Channel.AdvanceRound() // client mobility (no-op when static)
	led := &simnet.Ledger{}
	n := env.Fleet.N()
	up := env.Channel.UplinkHz() // sole active client: full budget
	down := env.Channel.DownlinkHz()
	for ci := 0; ci < n; ci++ {
		for s := 0; s < env.Hyper.StepsPerClient; s++ {
			batch := t.loaders[ci].Next()
			schemes.SplitStep(t.m, t.clientOpt, t.serverOpt, batch, env.Hyper.QuantizeTransfers)
			schemes.StepLatency(env, t.m, ci, len(batch.Y), up, down, led)
		}
		// Hand the client model to the next client (wrapping to next
		// round's first client), always through the AP.
		next := (ci + 1) % n
		schemes.RelayLatency(env, t.m, ci, next, up, down, led)
	}
	return led
}

// Evaluate implements schemes.Trainer.
func (t *Trainer) Evaluate() (float64, float64) {
	return schemes.Evaluate(t.m, t.env.Test, t.env.Arch.InShape)
}
