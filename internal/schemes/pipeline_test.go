package schemes_test

import (
	"math"
	"testing"

	"gsfl/internal/data"
	"gsfl/internal/schemes"
	"gsfl/internal/schemes/schemestest"
	"gsfl/internal/simnet"
)

func TestTurnLatencyPipelinedNeverSlower(t *testing.T) {
	env := schemestest.NewEnv(20, 4, 30)
	m := env.Arch.NewSplit(env.Rng("init", 0), env.Cut)
	var plain, piped simnet.Ledger
	// Use generous bandwidth so transfer jitter cannot flip the ordering.
	schemes.TurnLatency(env, m, 0, 8, 6, 5e6, 5e6, false, &plain)
	schemes.TurnLatency(env, m, 0, 8, 6, 5e6, 5e6, true, &piped)
	if piped.Total() > plain.Total()*1.05 {
		t.Fatalf("pipelined turn %v slower than sequential %v", piped.Total(), plain.Total())
	}
}

func TestTurnLatencySingleStepEquivalent(t *testing.T) {
	// With one step there is nothing to overlap: pipelined and plain
	// pricing must agree up to fading jitter. Disable fading by comparing
	// component structure instead: both must charge all four components.
	env := schemestest.NewEnv(21, 4, 30)
	m := env.Arch.NewSplit(env.Rng("init", 0), env.Cut)
	var led simnet.Ledger
	schemes.TurnLatency(env, m, 0, 8, 1, 5e6, 5e6, true, &led)
	for _, c := range []simnet.Component{
		simnet.ClientCompute, simnet.Uplink, simnet.ServerCompute, simnet.Downlink,
	} {
		if led.Get(c) <= 0 {
			t.Fatalf("pipelined single-step turn missing component %v", c)
		}
	}
}

func TestTurnLatencyValidation(t *testing.T) {
	env := schemestest.NewEnv(22, 4, 30)
	m := env.Arch.NewSplit(env.Rng("init", 0), env.Cut)
	if err := schemes.TurnLatency(env, m, 0, 8, 0, 1e6, 1e6, true, &simnet.Ledger{}); err == nil {
		t.Fatal("expected error for zero steps")
	}
}

func TestQuantizedSplitStepStillLearns(t *testing.T) {
	env := schemestest.NewEnv(23, 4, 60)
	env.Hyper.QuantizeTransfers = true
	m := env.Arch.NewSplit(env.Rng("init", 0), env.Cut)
	cOpt, sOpt := env.NewOptimizer(), env.NewOptimizer()
	batch := data.All(env.Train[0], env.Arch.InShape)
	var last float64
	first := math.Inf(1)
	for i := 0; i < 60; i++ {
		l := schemes.SplitStep(m, cOpt, sOpt, batch, true)
		if i == 0 {
			first = l
		}
		last = l
	}
	if last >= first*0.8 {
		t.Fatalf("quantized training barely progressed: %v -> %v", first, last)
	}
}

func TestQuantizationShrinksTransferPricing(t *testing.T) {
	env := schemestest.NewEnv(24, 4, 30)
	m := env.Arch.NewSplit(env.Rng("init", 0), env.Cut)

	var full simnet.Ledger
	schemes.StepLatency(env, m, 0, 8, 1e6, 1e6, &full)

	env.Hyper.QuantizeTransfers = true
	var quant simnet.Ledger
	schemes.StepLatency(env, m, 0, 8, 1e6, 1e6, &quant)

	// 8-bit transfers are 4x smaller; with fading jitter allow a wide
	// margin but require a clear reduction.
	if quant.Get(simnet.Uplink) > full.Get(simnet.Uplink)*0.5 {
		t.Fatalf("quantized uplink %v not well below full-precision %v",
			quant.Get(simnet.Uplink), full.Get(simnet.Uplink))
	}
	if quant.Get(simnet.Downlink) > full.Get(simnet.Downlink)*0.5 {
		t.Fatalf("quantized downlink %v not well below full-precision %v",
			quant.Get(simnet.Downlink), full.Get(simnet.Downlink))
	}
	// Compute is precision-independent in this model.
	if quant.Get(simnet.ClientCompute) != full.Get(simnet.ClientCompute) {
		t.Fatal("quantization must not change compute pricing")
	}
}
