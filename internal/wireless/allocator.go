package wireless

import (
	"fmt"
)

// Allocator splits a bandwidth budget among a set of concurrently
// transmitting clients. It returns one allocation per requested client,
// in the same order, summing to at most the budget.
//
// This is the resource-allocation knob the paper's future work targets
// (experiment A3): GSFL runs up to M uplink transfers at once (one per
// group), and how the shared spectrum is divided among them moves the
// round latency.
type Allocator interface {
	// Name identifies the policy in traces and benchmark output.
	Name() string
	// Allocate splits budgetHz among the clients. ch supplies channel
	// state (distances, SNR) for channel-aware policies.
	Allocate(ch *Channel, clients []int, budgetHz float64, uplink bool) []float64
}

// Uniform divides the budget equally — the baseline policy.
type Uniform struct{}

// Name implements Allocator.
func (Uniform) Name() string { return "uniform" }

// Allocate implements Allocator.
func (Uniform) Allocate(ch *Channel, clients []int, budgetHz float64, uplink bool) []float64 {
	checkAlloc(ch, clients, budgetHz)
	out := make([]float64, len(clients))
	per := budgetHz / float64(len(clients))
	for i := range out {
		out[i] = per
	}
	return out
}

// ProportionalFair grants bandwidth proportional to each client's
// spectral efficiency, maximizing sum throughput (good channels get
// more spectrum).
type ProportionalFair struct{}

// Name implements Allocator.
func (ProportionalFair) Name() string { return "proportional-fair" }

// Allocate implements Allocator.
func (ProportionalFair) Allocate(ch *Channel, clients []int, budgetHz float64, uplink bool) []float64 {
	checkAlloc(ch, clients, budgetHz)
	probe := budgetHz / float64(len(clients))
	eff := make([]float64, len(clients))
	total := 0.0
	for i, cl := range clients {
		eff[i] = ch.MeanRate(cl, probe, uplink) / probe // bits/s/Hz
		total += eff[i]
	}
	out := make([]float64, len(clients))
	for i := range out {
		out[i] = budgetHz * eff[i] / total
	}
	return out
}

// LatencyMin equalizes expected completion time for equal-sized
// transfers: bandwidth inversely proportional to spectral efficiency, so
// weak-channel clients finish together with strong ones. This minimizes
// the max completion time of a synchronized batch of transfers — the
// quantity GSFL's parallel groups actually wait on.
type LatencyMin struct{}

// Name implements Allocator.
func (LatencyMin) Name() string { return "latency-min" }

// Allocate implements Allocator.
func (LatencyMin) Allocate(ch *Channel, clients []int, budgetHz float64, uplink bool) []float64 {
	checkAlloc(ch, clients, budgetHz)
	probe := budgetHz / float64(len(clients))
	inv := make([]float64, len(clients))
	total := 0.0
	for i, cl := range clients {
		eff := ch.MeanRate(cl, probe, uplink) / probe
		inv[i] = 1 / eff
		total += inv[i]
	}
	out := make([]float64, len(clients))
	for i := range out {
		out[i] = budgetHz * inv[i] / total
	}
	return out
}

// ParseAllocator resolves an allocator policy from its CLI token or its
// Name(): "uniform", "propfair"/"proportional-fair", or
// "latmin"/"latency-min". It is the single flag-parsing path shared by
// gsfl-sim, gsfl-bench, and the examples.
func ParseAllocator(name string) (Allocator, error) {
	switch name {
	case "uniform":
		return Uniform{}, nil
	case "propfair", "proportional-fair":
		return ProportionalFair{}, nil
	case "latmin", "latency-min":
		return LatencyMin{}, nil
	default:
		return nil, fmt.Errorf("wireless: unknown allocator %q (want uniform|propfair|latmin)", name)
	}
}

func checkAlloc(ch *Channel, clients []int, budgetHz float64) {
	if len(clients) == 0 {
		panic("wireless: allocation for zero clients")
	}
	if budgetHz <= 0 {
		panic(fmt.Sprintf("wireless: budget %v must be positive", budgetHz))
	}
	for _, c := range clients {
		if c < 0 || c >= ch.N() {
			panic(fmt.Sprintf("wireless: client %d outside fleet of %d", c, ch.N()))
		}
	}
}
