package wireless

import (
	"fmt"
	"sort"
	"sync"
)

// Allocator splits a bandwidth budget among a set of concurrently
// transmitting clients. It returns one allocation per requested client,
// in the same order, summing to at most the budget.
//
// This is the resource-allocation knob the paper's future work targets
// (experiment A3): GSFL runs up to M uplink transfers at once (one per
// group), and how the shared spectrum is divided among them moves the
// round latency.
type Allocator interface {
	// Name identifies the policy in traces and benchmark output.
	Name() string
	// Allocate splits budgetHz among the clients. ch supplies channel
	// state (distances, SNR) for channel-aware policies.
	Allocate(ch *Channel, clients []int, budgetHz float64, uplink bool) []float64
}

// Uniform divides the budget equally — the baseline policy.
type Uniform struct{}

// Name implements Allocator.
func (Uniform) Name() string { return "uniform" }

// Allocate implements Allocator.
func (Uniform) Allocate(ch *Channel, clients []int, budgetHz float64, uplink bool) []float64 {
	checkAlloc(ch, clients, budgetHz)
	out := make([]float64, len(clients))
	per := budgetHz / float64(len(clients))
	for i := range out {
		out[i] = per
	}
	return out
}

// ProportionalFair grants bandwidth proportional to each client's
// spectral efficiency, maximizing sum throughput (good channels get
// more spectrum).
type ProportionalFair struct{}

// Name implements Allocator.
func (ProportionalFair) Name() string { return "proportional-fair" }

// Allocate implements Allocator.
func (ProportionalFair) Allocate(ch *Channel, clients []int, budgetHz float64, uplink bool) []float64 {
	checkAlloc(ch, clients, budgetHz)
	probe := budgetHz / float64(len(clients))
	eff := make([]float64, len(clients))
	total := 0.0
	for i, cl := range clients {
		eff[i] = ch.MeanRate(cl, probe, uplink) / probe // bits/s/Hz
		total += eff[i]
	}
	out := make([]float64, len(clients))
	for i := range out {
		out[i] = budgetHz * eff[i] / total
	}
	return out
}

// LatencyMin equalizes expected completion time for equal-sized
// transfers: bandwidth inversely proportional to spectral efficiency, so
// weak-channel clients finish together with strong ones. This minimizes
// the max completion time of a synchronized batch of transfers — the
// quantity GSFL's parallel groups actually wait on.
type LatencyMin struct{}

// Name implements Allocator.
func (LatencyMin) Name() string { return "latency-min" }

// Allocate implements Allocator.
func (LatencyMin) Allocate(ch *Channel, clients []int, budgetHz float64, uplink bool) []float64 {
	checkAlloc(ch, clients, budgetHz)
	probe := budgetHz / float64(len(clients))
	inv := make([]float64, len(clients))
	total := 0.0
	for i, cl := range clients {
		eff := ch.MeanRate(cl, probe, uplink) / probe
		inv[i] = 1 / eff
		total += inv[i]
	}
	out := make([]float64, len(clients))
	for i := range out {
		out[i] = budgetHz * inv[i] / total
	}
	return out
}

var (
	allocatorMu     sync.RWMutex
	allocatorByName = map[string]Allocator{}
	allocatorNames  []string // canonical names, registration order
)

// RegisterAllocator adds a bandwidth-allocation policy to the registry
// under its Name() plus any extra aliases (CLI shorthands). Registered
// allocators are resolvable by ParseAllocator, listed by
// AllocatorNames, and usable by name in experiment specs and grid
// files. It panics on a nil allocator, an empty name, or a duplicate
// name — programmer errors at init time. The built-in policies register
// themselves; call this only for out-of-tree allocators.
func RegisterAllocator(a Allocator, aliases ...string) {
	if a == nil {
		panic("wireless: RegisterAllocator with nil allocator")
	}
	name := a.Name()
	if name == "" {
		panic("wireless: RegisterAllocator with empty Name()")
	}
	allocatorMu.Lock()
	defer allocatorMu.Unlock()
	if _, dup := allocatorByName[name]; dup {
		panic(fmt.Sprintf("wireless: allocator %q registered twice", name))
	}
	allocatorByName[name] = a
	allocatorNames = append(allocatorNames, name)
	for _, alias := range aliases {
		if _, dup := allocatorByName[alias]; dup {
			panic(fmt.Sprintf("wireless: allocator alias %q registered twice", alias))
		}
		allocatorByName[alias] = a
	}
}

// AllocatorNames returns the canonical names of every registered
// allocator in sorted order.
func AllocatorNames() []string {
	allocatorMu.RLock()
	defer allocatorMu.RUnlock()
	out := append([]string(nil), allocatorNames...)
	sort.Strings(out)
	return out
}

// ParseAllocator resolves an allocator policy from its canonical Name()
// or a registered alias. The built-ins answer to "uniform",
// "propfair"/"proportional-fair", and "latmin"/"latency-min". It is the
// single name-to-allocator resolution path shared by the CLIs, grid
// files, and the env registry.
func ParseAllocator(name string) (Allocator, error) {
	allocatorMu.RLock()
	a, ok := allocatorByName[name]
	allocatorMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("wireless: unknown allocator %q (registered: %v)", name, AllocatorNames())
	}
	return a, nil
}

// The built-in policies register like out-of-tree ones, so name
// resolution, listing, and dispatch have exactly one path.
func init() {
	RegisterAllocator(Uniform{})
	RegisterAllocator(ProportionalFair{}, "propfair")
	RegisterAllocator(LatencyMin{}, "latmin")
}

func checkAlloc(ch *Channel, clients []int, budgetHz float64) {
	if len(clients) == 0 {
		panic("wireless: allocation for zero clients")
	}
	if budgetHz <= 0 {
		panic(fmt.Sprintf("wireless: budget %v must be positive", budgetHz))
	}
	for _, c := range clients {
		if c < 0 || c >= ch.N() {
			panic(fmt.Sprintf("wireless: client %d outside fleet of %d", c, ch.N()))
		}
	}
}
