// Package wireless models the resource-limited wireless network between
// the clients and the AP: path loss, shadowing, fast-fading jitter, and
// Shannon-capacity link rates under a shared bandwidth budget.
//
// The model follows the standard cellular abstraction used by the
// paper's delay evaluation (and by its reference [2]): client n at
// distance d_n from the AP experiences 3GPP urban path loss, and a
// transfer of B bytes over an allocated bandwidth W takes
// 8B / (W log2(1 + SNR)) seconds. Uplink and downlink budgets are
// separate, and concurrent transmissions share the budget through an
// Allocator policy — which is exactly why GSFL's parallel groups pay a
// per-transfer rate penalty that its parallelism must (and does)
// overcome.
package wireless

import (
	"fmt"
	"math"
	"math/rand"
)

// Config describes the radio environment.
type Config struct {
	// UplinkHz / DownlinkHz are the total shared bandwidth budgets.
	UplinkHz   float64
	DownlinkHz float64
	// ClientTxPowerDBm is the client transmit power (uplink).
	ClientTxPowerDBm float64
	// APTxPowerDBm is the AP transmit power (downlink).
	APTxPowerDBm float64
	// NoiseDBmPerHz is the noise power spectral density.
	NoiseDBmPerHz float64
	// ShadowingSigmaDB is the log-normal shadowing std-dev, sampled once
	// per client (slow fading).
	ShadowingSigmaDB float64
	// FadingJitter is the relative std-dev of per-transfer rate jitter
	// (fast fading around the mean rate); 0 disables it.
	FadingJitter float64
	// OutageProb is the probability that a transfer attempt fails and
	// must be retried from scratch (deep fade / collision). Each retry
	// costs one full transfer duration; retries are independent, so the
	// expected cost multiplier is 1/(1-p). 0 disables outages.
	OutageProb float64
	// MinDistanceM / MaxDistanceM bound client placement.
	MinDistanceM float64
	MaxDistanceM float64
	// MobilitySigmaM is the per-round random-walk standard deviation of
	// each client's distance from the AP (meters), reflecting at the
	// distance bounds. Shadowing decorrelates alongside movement via an
	// AR(1) process. 0 keeps clients static.
	MobilitySigmaM float64
}

// DefaultConfig is a small-cell deployment: 20 MHz up / 20 MHz down,
// 23 dBm clients, 30 dBm AP, thermal noise floor, clients 10-250 m out.
func DefaultConfig() Config {
	return Config{
		UplinkHz:         20e6,
		DownlinkHz:       20e6,
		ClientTxPowerDBm: 23,
		APTxPowerDBm:     30,
		NoiseDBmPerHz:    -174,
		ShadowingSigmaDB: 6,
		FadingJitter:     0.1,
		MinDistanceM:     10,
		MaxDistanceM:     250,
	}
}

// Channel is the instantiated radio environment for a fleet of N
// clients. Construction samples static client positions and shadowing;
// per-transfer fading is drawn from the channel's RNG at transfer time.
//
// The fading/outage/mobility RNG is re-derived from (seed, round) at
// every AdvanceRound, so the channel's complete mutable state at a round
// boundary is just its round counter plus the client positions and
// shadowing — the ChannelState a checkpoint captures. Within a round the
// draws are strictly sequential, which is why the schemes price all
// transfers serially in a fixed order.
type Channel struct {
	cfg  Config
	seed int64
	// round counts AdvanceRound calls; it keys the per-round RNG stream.
	round int64
	// distM and shadowDB are per-client placement and slow fading.
	distM    []float64
	shadowDB []float64
	rng      *rand.Rand
}

// NewChannel places n clients uniformly in the configured annulus and
// samples their shadowing. Deterministic in seed.
func NewChannel(cfg Config, n int, seed int64) *Channel {
	if n <= 0 {
		panic(fmt.Sprintf("wireless: client count %d must be positive", n))
	}
	if cfg.UplinkHz <= 0 || cfg.DownlinkHz <= 0 {
		panic(fmt.Sprintf("wireless: bandwidth must be positive (up %v, down %v)", cfg.UplinkHz, cfg.DownlinkHz))
	}
	if cfg.MinDistanceM <= 0 || cfg.MaxDistanceM < cfg.MinDistanceM {
		panic(fmt.Sprintf("wireless: bad distance bounds [%v, %v]", cfg.MinDistanceM, cfg.MaxDistanceM))
	}
	if cfg.FadingJitter < 0 || cfg.FadingJitter >= 1 {
		panic(fmt.Sprintf("wireless: fading jitter %v outside [0,1)", cfg.FadingJitter))
	}
	if cfg.OutageProb < 0 || cfg.OutageProb >= 1 {
		panic(fmt.Sprintf("wireless: outage probability %v outside [0,1)", cfg.OutageProb))
	}
	placeRng := rand.New(rand.NewSource(seed))
	ch := &Channel{
		cfg:      cfg,
		seed:     seed,
		distM:    make([]float64, n),
		shadowDB: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		// Uniform over the annulus area (sqrt for radial density).
		u := placeRng.Float64()
		r2min := cfg.MinDistanceM * cfg.MinDistanceM
		r2max := cfg.MaxDistanceM * cfg.MaxDistanceM
		ch.distM[i] = math.Sqrt(r2min + u*(r2max-r2min))
		ch.shadowDB[i] = placeRng.NormFloat64() * cfg.ShadowingSigmaDB
	}
	ch.rng = roundRng(seed, 0)
	return ch
}

// roundRng derives the fading/outage/mobility stream for one round.
// Distinct (seed, round) pairs get independent streams, so a channel
// restored at a round boundary continues with exactly the draws an
// uninterrupted run would have made.
func roundRng(seed, round int64) *rand.Rand {
	h := seed
	h = h*1_000_003 + round
	h ^= h >> 17
	h *= 0x2545F4914F6CDD1D
	return rand.New(rand.NewSource(h))
}

// N returns the number of clients the channel was built for.
func (c *Channel) N() int { return len(c.distM) }

// Distance returns client i's distance from the AP in meters.
func (c *Channel) Distance(i int) float64 { return c.distM[i] }

// pathLossDB is the 3GPP UMa-style path loss at distance d meters:
// 128.1 + 37.6 log10(d/1000).
func pathLossDB(dM float64) float64 {
	return 128.1 + 37.6*math.Log10(dM/1000)
}

// snr returns the linear SNR for client i over bandwidth wHz in the
// given direction.
func (c *Channel) snr(i int, wHz float64, uplink bool) float64 {
	tx := c.cfg.ClientTxPowerDBm
	if !uplink {
		tx = c.cfg.APTxPowerDBm
	}
	noiseDBm := c.cfg.NoiseDBmPerHz + 10*math.Log10(wHz)
	rxDBm := tx - pathLossDB(c.distM[i]) - c.shadowDB[i]
	return math.Pow(10, (rxDBm-noiseDBm)/10)
}

// MeanRate returns the Shannon rate in bits/s for client i when granted
// wHz of bandwidth, before fast fading.
func (c *Channel) MeanRate(i int, wHz float64, uplink bool) float64 {
	if wHz <= 0 {
		panic(fmt.Sprintf("wireless: allocated bandwidth %v must be positive", wHz))
	}
	return wHz * math.Log2(1+c.snr(i, wHz, uplink))
}

// TransferSeconds returns the time to move `bytes` for client i over an
// allocation of wHz, applying one fast-fading draw. Deterministic given
// the channel's RNG stream position.
func (c *Channel) TransferSeconds(i int, bytes int64, wHz float64, uplink bool) float64 {
	if bytes < 0 {
		panic(fmt.Sprintf("wireless: negative transfer size %d", bytes))
	}
	if bytes == 0 {
		return 0
	}
	rate := c.MeanRate(i, wHz, uplink)
	if c.cfg.FadingJitter > 0 {
		f := 1 + c.rng.NormFloat64()*c.cfg.FadingJitter
		// Truncate so a fade can slow a transfer but never produce a
		// non-positive rate.
		if f < 0.2 {
			f = 0.2
		}
		rate *= f
	}
	t := float64(bytes) * 8 / rate
	if c.cfg.OutageProb > 0 {
		// Each failed attempt costs one full transfer duration before the
		// retry; attempts are independent Bernoulli trials.
		attempts := 1
		for c.rng.Float64() < c.cfg.OutageProb {
			attempts++
			if attempts > 100 { // safety valve against pathological configs
				break
			}
		}
		t *= float64(attempts)
	}
	return t
}

// UplinkHz and DownlinkHz expose the configured budgets for allocators.
func (c *Channel) UplinkHz() float64   { return c.cfg.UplinkHz }
func (c *Channel) DownlinkHz() float64 { return c.cfg.DownlinkHz }

// Config returns the radio environment the channel was built with;
// checkpoints fingerprint it so a run cannot silently resume under
// different physics.
func (c *Channel) Config() Config { return c.cfg }

// AdvanceRound starts a new channel round: it re-derives the per-round
// fading/outage RNG stream and, when MobilitySigmaM is positive, applies
// one round of client mobility — each client's distance random-walks
// with the configured sigma (reflecting at the bounds) and its shadowing
// decorrelates via an AR(1) update. Static deployments pay only the
// reseed, and every configuration stays bit-for-bit reproducible.
func (c *Channel) AdvanceRound() {
	c.round++
	c.rng = roundRng(c.seed, c.round)
	if c.cfg.MobilitySigmaM == 0 {
		return
	}
	const shadowRho = 0.9
	for i := range c.distM {
		d := c.distM[i] + c.rng.NormFloat64()*c.cfg.MobilitySigmaM
		// Reflect into [min, max].
		for d < c.cfg.MinDistanceM || d > c.cfg.MaxDistanceM {
			if d < c.cfg.MinDistanceM {
				d = 2*c.cfg.MinDistanceM - d
			}
			if d > c.cfg.MaxDistanceM {
				d = 2*c.cfg.MaxDistanceM - d
			}
		}
		c.distM[i] = d
		c.shadowDB[i] = shadowRho*c.shadowDB[i] +
			math.Sqrt(1-shadowRho*shadowRho)*c.rng.NormFloat64()*c.cfg.ShadowingSigmaDB
	}
}

// ChannelState is the channel's complete mutable state at a round
// boundary, as captured into a training checkpoint. Plain exported
// fields keep it gob-serializable.
type ChannelState struct {
	// Round is the AdvanceRound count.
	Round int64
	// DistM and ShadowDB are the per-client positions and slow fading
	// (they drift only under mobility).
	DistM    []float64
	ShadowDB []float64
}

// State captures the channel for checkpointing. Valid at a round
// boundary: mid-round fading-stream positions are not represented.
func (c *Channel) State() ChannelState {
	return ChannelState{
		Round:    c.round,
		DistM:    append([]float64(nil), c.distM...),
		ShadowDB: append([]float64(nil), c.shadowDB...),
	}
}

// Restore resets the channel to a state captured by State on a channel
// built with the same config, client count, and seed. The next
// AdvanceRound continues the exact RNG draw sequence of the original
// run.
func (c *Channel) Restore(st ChannelState) error {
	if len(st.DistM) != len(c.distM) || len(st.ShadowDB) != len(c.shadowDB) {
		return fmt.Errorf("wireless: state for %d clients, channel has %d", len(st.DistM), len(c.distM))
	}
	if st.Round < 0 {
		return fmt.Errorf("wireless: negative round %d in channel state", st.Round)
	}
	c.round = st.Round
	copy(c.distM, st.DistM)
	copy(c.shadowDB, st.ShadowDB)
	c.rng = roundRng(c.seed, c.round)
	return nil
}
