// Package wireless models the resource-limited wireless network between
// the clients and the AP: path loss, shadowing, fast-fading jitter, and
// Shannon-capacity link rates under a shared bandwidth budget.
//
// The model follows the standard cellular abstraction used by the
// paper's delay evaluation (and by its reference [2]): client n at
// distance d_n from the AP experiences 3GPP urban path loss, and a
// transfer of B bytes over an allocated bandwidth W takes
// 8B / (W log2(1 + SNR)) seconds. Uplink and downlink budgets are
// separate, and concurrent transmissions share the budget through an
// Allocator policy — which is exactly why GSFL's parallel groups pay a
// per-transfer rate penalty that its parallelism must (and does)
// overcome.
package wireless

import (
	"fmt"
	"math"
	"math/rand"
)

// Config describes the radio environment.
type Config struct {
	// UplinkHz / DownlinkHz are the total shared bandwidth budgets.
	UplinkHz   float64
	DownlinkHz float64
	// ClientTxPowerDBm is the client transmit power (uplink).
	ClientTxPowerDBm float64
	// APTxPowerDBm is the AP transmit power (downlink).
	APTxPowerDBm float64
	// NoiseDBmPerHz is the noise power spectral density.
	NoiseDBmPerHz float64
	// ShadowingSigmaDB is the log-normal shadowing std-dev, sampled once
	// per client (slow fading).
	ShadowingSigmaDB float64
	// FadingJitter is the relative std-dev of per-transfer rate jitter
	// (fast fading around the mean rate); 0 disables it.
	FadingJitter float64
	// OutageProb is the probability that a transfer attempt fails and
	// must be retried from scratch (deep fade / collision). Each retry
	// costs one full transfer duration; retries are independent, so the
	// expected cost multiplier is 1/(1-p). 0 disables outages.
	OutageProb float64
	// MinDistanceM / MaxDistanceM bound client placement.
	MinDistanceM float64
	MaxDistanceM float64
	// MobilitySigmaM is the per-round random-walk standard deviation of
	// each client's distance from the AP (meters), reflecting at the
	// distance bounds. Shadowing decorrelates alongside movement via an
	// AR(1) process. 0 keeps clients static.
	MobilitySigmaM float64
}

// DefaultConfig is a small-cell deployment: 20 MHz up / 20 MHz down,
// 23 dBm clients, 30 dBm AP, thermal noise floor, clients 10-250 m out.
func DefaultConfig() Config {
	return Config{
		UplinkHz:         20e6,
		DownlinkHz:       20e6,
		ClientTxPowerDBm: 23,
		APTxPowerDBm:     30,
		NoiseDBmPerHz:    -174,
		ShadowingSigmaDB: 6,
		FadingJitter:     0.1,
		MinDistanceM:     10,
		MaxDistanceM:     250,
	}
}

// Channel is the instantiated radio environment for a fleet of N
// clients. Construction samples static client positions and shadowing;
// per-transfer fading is drawn from the channel's RNG at transfer time.
type Channel struct {
	cfg Config
	// distM and shadowDB are per-client placement and slow fading.
	distM    []float64
	shadowDB []float64
	rng      *rand.Rand
}

// NewChannel places n clients uniformly in the configured annulus and
// samples their shadowing. Deterministic in seed.
func NewChannel(cfg Config, n int, seed int64) *Channel {
	if n <= 0 {
		panic(fmt.Sprintf("wireless: client count %d must be positive", n))
	}
	if cfg.UplinkHz <= 0 || cfg.DownlinkHz <= 0 {
		panic(fmt.Sprintf("wireless: bandwidth must be positive (up %v, down %v)", cfg.UplinkHz, cfg.DownlinkHz))
	}
	if cfg.MinDistanceM <= 0 || cfg.MaxDistanceM < cfg.MinDistanceM {
		panic(fmt.Sprintf("wireless: bad distance bounds [%v, %v]", cfg.MinDistanceM, cfg.MaxDistanceM))
	}
	if cfg.FadingJitter < 0 || cfg.FadingJitter >= 1 {
		panic(fmt.Sprintf("wireless: fading jitter %v outside [0,1)", cfg.FadingJitter))
	}
	if cfg.OutageProb < 0 || cfg.OutageProb >= 1 {
		panic(fmt.Sprintf("wireless: outage probability %v outside [0,1)", cfg.OutageProb))
	}
	rng := rand.New(rand.NewSource(seed))
	ch := &Channel{
		cfg:      cfg,
		distM:    make([]float64, n),
		shadowDB: make([]float64, n),
		rng:      rng,
	}
	for i := 0; i < n; i++ {
		// Uniform over the annulus area (sqrt for radial density).
		u := rng.Float64()
		r2min := cfg.MinDistanceM * cfg.MinDistanceM
		r2max := cfg.MaxDistanceM * cfg.MaxDistanceM
		ch.distM[i] = math.Sqrt(r2min + u*(r2max-r2min))
		ch.shadowDB[i] = rng.NormFloat64() * cfg.ShadowingSigmaDB
	}
	return ch
}

// N returns the number of clients the channel was built for.
func (c *Channel) N() int { return len(c.distM) }

// Distance returns client i's distance from the AP in meters.
func (c *Channel) Distance(i int) float64 { return c.distM[i] }

// pathLossDB is the 3GPP UMa-style path loss at distance d meters:
// 128.1 + 37.6 log10(d/1000).
func pathLossDB(dM float64) float64 {
	return 128.1 + 37.6*math.Log10(dM/1000)
}

// snr returns the linear SNR for client i over bandwidth wHz in the
// given direction.
func (c *Channel) snr(i int, wHz float64, uplink bool) float64 {
	tx := c.cfg.ClientTxPowerDBm
	if !uplink {
		tx = c.cfg.APTxPowerDBm
	}
	noiseDBm := c.cfg.NoiseDBmPerHz + 10*math.Log10(wHz)
	rxDBm := tx - pathLossDB(c.distM[i]) - c.shadowDB[i]
	return math.Pow(10, (rxDBm-noiseDBm)/10)
}

// MeanRate returns the Shannon rate in bits/s for client i when granted
// wHz of bandwidth, before fast fading.
func (c *Channel) MeanRate(i int, wHz float64, uplink bool) float64 {
	if wHz <= 0 {
		panic(fmt.Sprintf("wireless: allocated bandwidth %v must be positive", wHz))
	}
	return wHz * math.Log2(1+c.snr(i, wHz, uplink))
}

// TransferSeconds returns the time to move `bytes` for client i over an
// allocation of wHz, applying one fast-fading draw. Deterministic given
// the channel's RNG stream position.
func (c *Channel) TransferSeconds(i int, bytes int64, wHz float64, uplink bool) float64 {
	if bytes < 0 {
		panic(fmt.Sprintf("wireless: negative transfer size %d", bytes))
	}
	if bytes == 0 {
		return 0
	}
	rate := c.MeanRate(i, wHz, uplink)
	if c.cfg.FadingJitter > 0 {
		f := 1 + c.rng.NormFloat64()*c.cfg.FadingJitter
		// Truncate so a fade can slow a transfer but never produce a
		// non-positive rate.
		if f < 0.2 {
			f = 0.2
		}
		rate *= f
	}
	t := float64(bytes) * 8 / rate
	if c.cfg.OutageProb > 0 {
		// Each failed attempt costs one full transfer duration before the
		// retry; attempts are independent Bernoulli trials.
		attempts := 1
		for c.rng.Float64() < c.cfg.OutageProb {
			attempts++
			if attempts > 100 { // safety valve against pathological configs
				break
			}
		}
		t *= float64(attempts)
	}
	return t
}

// UplinkHz and DownlinkHz expose the configured budgets for allocators.
func (c *Channel) UplinkHz() float64   { return c.cfg.UplinkHz }
func (c *Channel) DownlinkHz() float64 { return c.cfg.DownlinkHz }

// AdvanceRound applies one round of client mobility: each client's
// distance random-walks with the configured sigma (reflecting at the
// bounds) and its shadowing decorrelates via an AR(1) update. A no-op
// when MobilitySigmaM is 0, so static deployments pay nothing and stay
// bit-for-bit reproducible.
func (c *Channel) AdvanceRound() {
	if c.cfg.MobilitySigmaM == 0 {
		return
	}
	const shadowRho = 0.9
	for i := range c.distM {
		d := c.distM[i] + c.rng.NormFloat64()*c.cfg.MobilitySigmaM
		// Reflect into [min, max].
		for d < c.cfg.MinDistanceM || d > c.cfg.MaxDistanceM {
			if d < c.cfg.MinDistanceM {
				d = 2*c.cfg.MinDistanceM - d
			}
			if d > c.cfg.MaxDistanceM {
				d = 2*c.cfg.MaxDistanceM - d
			}
		}
		c.distM[i] = d
		c.shadowDB[i] = shadowRho*c.shadowDB[i] +
			math.Sqrt(1-shadowRho*shadowRho)*c.rng.NormFloat64()*c.cfg.ShadowingSigmaDB
	}
}
