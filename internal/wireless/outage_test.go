package wireless

import (
	"testing"
)

func TestOutageInflatesTransfers(t *testing.T) {
	base := DefaultConfig()
	base.FadingJitter = 0
	base.OutageProb = 0
	clean := NewChannel(base, 1, 42)

	lossy := base
	lossy.OutageProb = 0.5
	flaky := NewChannel(lossy, 1, 42)

	const bytes = 1 << 20
	var cleanTotal, flakyTotal float64
	for i := 0; i < 300; i++ {
		cleanTotal += clean.TransferSeconds(0, bytes, 1e6, true)
		flakyTotal += flaky.TransferSeconds(0, bytes, 1e6, true)
	}
	// Expected multiplier at p=0.5 is 1/(1-p) = 2.
	ratio := flakyTotal / cleanTotal
	if ratio < 1.5 || ratio > 2.6 {
		t.Fatalf("outage cost ratio = %v, want ≈2", ratio)
	}
}

func TestOutageZeroIsExactlyClean(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FadingJitter = 0
	a := NewChannel(cfg, 1, 7)
	b := NewChannel(cfg, 1, 7)
	for i := 0; i < 10; i++ {
		if a.TransferSeconds(0, 1000, 1e6, true) != b.TransferSeconds(0, 1000, 1e6, true) {
			t.Fatal("outage-free transfers must be deterministic")
		}
	}
}

func TestOutageValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.OutageProb = 1.0
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for outage prob 1.0")
		}
	}()
	NewChannel(cfg, 1, 1)
}
