package wireless

import (
	"math"
	"testing"
	"testing/quick"
)

func testChannel(n int, seed int64) *Channel {
	return NewChannel(DefaultConfig(), n, seed)
}

func TestChannelDeterminism(t *testing.T) {
	a, b := testChannel(10, 1), testChannel(10, 1)
	for i := 0; i < 10; i++ {
		if a.Distance(i) != b.Distance(i) {
			t.Fatal("same seed must place clients identically")
		}
	}
}

func TestDistancesWithinBounds(t *testing.T) {
	cfg := DefaultConfig()
	ch := NewChannel(cfg, 100, 2)
	for i := 0; i < 100; i++ {
		d := ch.Distance(i)
		if d < cfg.MinDistanceM || d > cfg.MaxDistanceM {
			t.Fatalf("client %d at %vm outside [%v, %v]", i, d, cfg.MinDistanceM, cfg.MaxDistanceM)
		}
	}
}

func TestPathLossMonotone(t *testing.T) {
	if pathLossDB(100) >= pathLossDB(200) {
		t.Fatal("path loss must grow with distance")
	}
}

func TestMeanRatePositiveAndBandwidthMonotone(t *testing.T) {
	ch := testChannel(5, 3)
	for i := 0; i < 5; i++ {
		r1 := ch.MeanRate(i, 1e6, true)
		r2 := ch.MeanRate(i, 2e6, true)
		if r1 <= 0 {
			t.Fatalf("client %d rate %v", i, r1)
		}
		if r2 <= r1 {
			t.Fatalf("client %d: rate must grow with bandwidth (%v vs %v)", i, r1, r2)
		}
	}
}

func TestDownlinkFasterThanUplink(t *testing.T) {
	// AP transmits at higher power, so with the same bandwidth the
	// downlink rate must exceed the uplink rate for every client.
	ch := testChannel(20, 4)
	for i := 0; i < 20; i++ {
		up := ch.MeanRate(i, 1e6, true)
		down := ch.MeanRate(i, 1e6, false)
		if down <= up {
			t.Fatalf("client %d: downlink %v not faster than uplink %v", i, down, up)
		}
	}
}

func TestTransferSecondsScalesWithBytes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FadingJitter = 0 // exact proportionality without fading
	ch := NewChannel(cfg, 1, 5)
	t1 := ch.TransferSeconds(0, 1000, 1e6, true)
	t2 := ch.TransferSeconds(0, 2000, 1e6, true)
	if math.Abs(t2-2*t1) > 1e-12 {
		t.Fatalf("transfer time not linear in bytes: %v vs %v", t1, t2)
	}
	if ch.TransferSeconds(0, 0, 1e6, true) != 0 {
		t.Fatal("zero bytes must take zero time")
	}
}

func TestFadingJitterVariesTransfers(t *testing.T) {
	ch := testChannel(1, 6)
	a := ch.TransferSeconds(0, 1<<20, 1e6, true)
	b := ch.TransferSeconds(0, 1<<20, 1e6, true)
	if a == b {
		t.Fatal("fading jitter enabled but two transfers took identical time")
	}
}

func TestTransferAlwaysPositive(t *testing.T) {
	f := func(seed int64) bool {
		ch := testChannel(4, seed)
		for i := 0; i < 4; i++ {
			if ch.TransferSeconds(i, 1234, 2e6, i%2 == 0) <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestChannelValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("zero clients", func() { NewChannel(DefaultConfig(), 0, 1) })
	mustPanic("zero bandwidth", func() {
		cfg := DefaultConfig()
		cfg.UplinkHz = 0
		NewChannel(cfg, 1, 1)
	})
	mustPanic("bad distances", func() {
		cfg := DefaultConfig()
		cfg.MaxDistanceM = 1
		NewChannel(cfg, 1, 1)
	})
	mustPanic("neg bytes", func() { testChannel(1, 1).TransferSeconds(0, -1, 1e6, true) })
	mustPanic("zero alloc", func() { testChannel(1, 1).MeanRate(0, 0, true) })
}

func TestUniformAllocator(t *testing.T) {
	ch := testChannel(4, 7)
	got := Uniform{}.Allocate(ch, []int{0, 1, 2, 3}, 20e6, true)
	for _, w := range got {
		if math.Abs(w-5e6) > 1e-6 {
			t.Fatalf("uniform allocation = %v", got)
		}
	}
}

func TestAllocatorsConserveBudget(t *testing.T) {
	ch := testChannel(8, 8)
	clients := []int{0, 2, 4, 6}
	for _, a := range []Allocator{Uniform{}, ProportionalFair{}, LatencyMin{}} {
		got := a.Allocate(ch, clients, 20e6, true)
		if len(got) != len(clients) {
			t.Fatalf("%s: %d allocations for %d clients", a.Name(), len(got), len(clients))
		}
		sum := 0.0
		for _, w := range got {
			if w <= 0 {
				t.Fatalf("%s: non-positive allocation %v", a.Name(), w)
			}
			sum += w
		}
		if math.Abs(sum-20e6) > 1 {
			t.Fatalf("%s: allocations sum to %v, want 20e6", a.Name(), sum)
		}
	}
}

func TestProportionalFairFavorsGoodChannels(t *testing.T) {
	ch := testChannel(30, 9)
	// Find the nearest and farthest clients.
	near, far := 0, 0
	for i := 1; i < 30; i++ {
		if ch.Distance(i) < ch.Distance(near) {
			near = i
		}
		if ch.Distance(i) > ch.Distance(far) {
			far = i
		}
	}
	got := ProportionalFair{}.Allocate(ch, []int{near, far}, 20e6, true)
	if got[0] <= got[1] {
		t.Fatalf("proportional-fair gave near client %v ≤ far client %v", got[0], got[1])
	}
}

func TestLatencyMinEqualizesCompletionTimes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FadingJitter = 0
	ch := NewChannel(cfg, 30, 10)
	near, far := 0, 0
	for i := 1; i < 30; i++ {
		if ch.Distance(i) < ch.Distance(near) {
			near = i
		}
		if ch.Distance(i) > ch.Distance(far) {
			far = i
		}
	}
	clients := []int{near, far}
	const bytes = 1 << 20

	finish := func(a Allocator) (float64, float64) {
		w := a.Allocate(ch, clients, 20e6, true)
		return ch.TransferSeconds(clients[0], bytes, w[0], true),
			ch.TransferSeconds(clients[1], bytes, w[1], true)
	}
	un1, un2 := finish(Uniform{})
	lm1, lm2 := finish(LatencyMin{})
	spreadUniform := math.Abs(un1-un2) / math.Max(un1, un2)
	spreadLM := math.Abs(lm1-lm2) / math.Max(lm1, lm2)
	if spreadLM >= spreadUniform {
		t.Fatalf("latency-min spread %v not tighter than uniform %v", spreadLM, spreadUniform)
	}
	if math.Max(lm1, lm2) >= math.Max(un1, un2) {
		t.Fatalf("latency-min max completion %v not better than uniform %v",
			math.Max(lm1, lm2), math.Max(un1, un2))
	}
}

func TestAllocatorValidation(t *testing.T) {
	ch := testChannel(2, 11)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("no clients", func() { Uniform{}.Allocate(ch, nil, 1e6, true) })
	mustPanic("zero budget", func() { Uniform{}.Allocate(ch, []int{0}, 0, true) })
	mustPanic("bad client", func() { Uniform{}.Allocate(ch, []int{5}, 1e6, true) })
}

func TestMobilityMovesClients(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MobilitySigmaM = 20
	ch := NewChannel(cfg, 10, 12)
	before := make([]float64, 10)
	for i := range before {
		before[i] = ch.Distance(i)
	}
	ch.AdvanceRound()
	moved := 0
	for i := range before {
		d := ch.Distance(i)
		if d < cfg.MinDistanceM || d > cfg.MaxDistanceM {
			t.Fatalf("client %d escaped bounds: %v", i, d)
		}
		if d != before[i] {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("mobility enabled but nobody moved")
	}
}

func TestMobilityZeroIsNoOp(t *testing.T) {
	ch := testChannel(5, 13)
	before := make([]float64, 5)
	for i := range before {
		before[i] = ch.Distance(i)
	}
	ch.AdvanceRound()
	for i := range before {
		if ch.Distance(i) != before[i] {
			t.Fatal("static channel moved a client")
		}
	}
	// Determinism: the fading stream is a pure function of (seed, round),
	// so two identically seeded channels that advanced the same number of
	// rounds must price transfers identically.
	a, b := testChannel(5, 14), testChannel(5, 14)
	a.AdvanceRound()
	b.AdvanceRound()
	if a.TransferSeconds(0, 1000, 1e6, true) != b.TransferSeconds(0, 1000, 1e6, true) {
		t.Fatal("same (seed, round) produced different fading draws")
	}
	// And distinct rounds get independent streams.
	c, d := testChannel(5, 14), testChannel(5, 14)
	c.AdvanceRound()
	c.AdvanceRound()
	d.AdvanceRound()
	if c.TransferSeconds(0, 1000, 1e6, true) == d.TransferSeconds(0, 1000, 1e6, true) {
		t.Fatal("round 2 reused round 1's fading stream")
	}
}

func TestMobilityStaysInBoundsLongRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MobilitySigmaM = 50
	ch := NewChannel(cfg, 4, 15)
	for r := 0; r < 200; r++ {
		ch.AdvanceRound()
		for i := 0; i < 4; i++ {
			d := ch.Distance(i)
			if d < cfg.MinDistanceM || d > cfg.MaxDistanceM {
				t.Fatalf("round %d client %d out of bounds: %v", r, i, d)
			}
		}
	}
}

func TestChannelStateRestoreContinuesBitIdentically(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MobilitySigmaM = 20
	cfg.OutageProb = 0.05
	mk := func() *Channel { return NewChannel(cfg, 4, 6) }

	// Drive the reference channel through rounds with mid-round draws.
	ref := mk()
	for r := 0; r < 3; r++ {
		ref.AdvanceRound()
		for i := 0; i < 4; i++ {
			ref.TransferSeconds(i, 1000, 1e6, true)
		}
	}
	st := ref.State()

	restored := mk()
	if err := restored.Restore(st); err != nil {
		t.Fatal(err)
	}
	// Continue both for two more rounds: positions and draws must agree.
	for r := 0; r < 2; r++ {
		ref.AdvanceRound()
		restored.AdvanceRound()
		for i := 0; i < 4; i++ {
			if ref.Distance(i) != restored.Distance(i) {
				t.Fatalf("round %d: client %d at %v vs %v", r, i, ref.Distance(i), restored.Distance(i))
			}
			a := ref.TransferSeconds(i, 1000, 1e6, true)
			b := restored.TransferSeconds(i, 1000, 1e6, true)
			if a != b {
				t.Fatalf("round %d client %d: transfer %v vs %v after restore", r, i, a, b)
			}
		}
	}
}

func TestChannelRestoreValidation(t *testing.T) {
	ch := testChannel(4, 1)
	if err := ch.Restore(ChannelState{Round: 1, DistM: make([]float64, 2), ShadowDB: make([]float64, 2)}); err == nil {
		t.Fatal("client-count mismatch must error")
	}
	if err := ch.Restore(ChannelState{Round: -1, DistM: make([]float64, 4), ShadowDB: make([]float64, 4)}); err == nil {
		t.Fatal("negative round must error")
	}
}

func TestParseAllocator(t *testing.T) {
	for name, want := range map[string]string{
		"uniform":           "uniform",
		"propfair":          "proportional-fair",
		"proportional-fair": "proportional-fair",
		"latmin":            "latency-min",
		"latency-min":       "latency-min",
	} {
		a, err := ParseAllocator(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.Name() != want {
			t.Fatalf("ParseAllocator(%q).Name() = %q, want %q", name, a.Name(), want)
		}
	}
	if _, err := ParseAllocator("bogus"); err == nil {
		t.Fatal("expected error for unknown allocator")
	}
}
