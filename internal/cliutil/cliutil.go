// Package cliutil holds the flag vocabulary shared by the harness CLIs
// (gsfl-sim, gsfl-bench, gsfl-sweep): the environment knobs every
// command exposes (-alloc, -strategy, -workers) and the -scale presets
// mapping to experiment specs. Centralizing them keeps the commands'
// help text, accepted tokens, and defaults identical.
package cliutil

import (
	"flag"
	"fmt"

	"gsfl/internal/experiment"
	"gsfl/internal/partition"
	"gsfl/internal/wireless"
)

// EnvFlags are the CLI knobs shared by every harness command. Register
// them on a FlagSet, parse, then Apply onto a Spec.
type EnvFlags struct {
	// Alloc and Strategy are the flag tokens (resolved by Apply).
	Alloc    string
	Strategy string
	// Workers is the worker-goroutine budget flag value.
	Workers int
}

// Register declares the shared flags on fs with the harness's canonical
// names, defaults, and help strings.
func (e *EnvFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&e.Alloc, "alloc", "uniform", "bandwidth allocator: uniform|propfair|latmin")
	fs.StringVar(&e.Strategy, "strategy", "roundrobin", "grouping: roundrobin|random|balanced")
	fs.IntVar(&e.Workers, "workers", 0, "worker goroutines for parallel execution (0 = GOMAXPROCS, 1 = serial)")
}

// Apply resolves the allocator and strategy tokens onto spec.
func (e *EnvFlags) Apply(spec *experiment.Spec) error {
	var err error
	if spec.Alloc, err = wireless.ParseAllocator(e.Alloc); err != nil {
		return err
	}
	if spec.Strategy, err = partition.ParseStrategy(e.Strategy); err != nil {
		return err
	}
	return nil
}

// Scale is one -scale preset: the base spec plus the round budget,
// evaluation cadence, and table-1 target accuracy the harness uses at
// that size.
type Scale struct {
	Spec      experiment.Spec
	Rounds    int
	EvalEvery int
	Target    float64
}

// ParseScale maps a -scale token to its preset.
func ParseScale(name string) (Scale, error) {
	switch name {
	case "test":
		return Scale{Spec: experiment.TestSpec(), Rounds: 6, EvalEvery: 2, Target: 0.3}, nil
	case "medium":
		spec := experiment.PaperSpec()
		spec.Clients = 30
		spec.Groups = 6
		spec.ImageSize = 16
		spec.TrainPerClient = 80
		spec.TestPerClass = 5
		spec.Hyper.Batch = 16
		spec.Hyper.StepsPerClient = 2
		spec.Device.N = spec.Clients
		return Scale{Spec: spec, Rounds: 40, EvalEvery: 4, Target: 0.6}, nil
	case "paper":
		return Scale{Spec: experiment.PaperSpec(), Rounds: 200, EvalEvery: 10, Target: 0.85}, nil
	default:
		return Scale{}, fmt.Errorf("unknown scale %q (want test|medium|paper)", name)
	}
}
