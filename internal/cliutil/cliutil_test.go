package cliutil

import (
	"flag"
	"testing"

	"gsfl/internal/experiment"
)

func TestParseScale(t *testing.T) {
	for _, name := range []string{"test", "medium", "paper"} {
		sc, err := ParseScale(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sc.Spec.Clients <= 0 || sc.Rounds <= 0 || sc.EvalEvery <= 0 || sc.Target <= 0 {
			t.Fatalf("%s: nonsense scale %+v", name, sc)
		}
	}
	if _, err := ParseScale("bogus"); err != nil {
		// expected
	} else {
		t.Fatal("expected error for unknown scale")
	}
}

func TestEnvFlags(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	var e EnvFlags
	e.Register(fs)
	if err := fs.Parse([]string{"-alloc", "latmin", "-strategy", "balanced", "-workers", "3"}); err != nil {
		t.Fatal(err)
	}
	spec := experiment.TestSpec()
	if err := e.Apply(&spec); err != nil {
		t.Fatal(err)
	}
	if spec.Alloc.Name() != "latency-min" || spec.Strategy.String() != "compute-balanced" || e.Workers != 3 {
		t.Fatalf("flags not applied: alloc=%s strategy=%s workers=%d", spec.Alloc.Name(), spec.Strategy, e.Workers)
	}
	if err := e.Apply(&spec); err != nil {
		t.Fatal(err)
	}
	bad := EnvFlags{Alloc: "nope", Strategy: "roundrobin"}
	if err := bad.Apply(&spec); err == nil {
		t.Fatal("expected allocator error")
	}
	bad = EnvFlags{Alloc: "uniform", Strategy: "nope"}
	if err := bad.Apply(&spec); err == nil {
		t.Fatal("expected strategy error")
	}
}
