// Package loss implements the loss functions used by the GSFL training
// schemes. Each loss returns both the scalar loss value and the gradient
// with respect to the logits, which the server-side model's backward pass
// consumes directly.
package loss

import (
	"fmt"
	"math"

	"gsfl/internal/tensor"
)

// Loss maps a batch of predictions and integer labels to a scalar loss
// and the gradient of the mean loss with respect to the predictions.
type Loss interface {
	// Name identifies the loss in traces.
	Name() string
	// Eval returns (mean loss over the batch, dL/dlogits).
	Eval(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor)
	// EvalInto is the destination-passing form of Eval: the gradient is
	// written into grad (shaped to (batch, classes), reusing its
	// storage), and the mean loss is returned. Training loops pass a
	// per-replica workspace tensor so steady-state steps allocate
	// nothing; every element of grad is overwritten, so results are
	// bit-identical to Eval.
	EvalInto(logits *tensor.Tensor, labels []int, grad *tensor.Tensor) float64
}

// SoftmaxCrossEntropy is the fused softmax + cross-entropy loss for
// multi-class classification. Fusing keeps the gradient numerically exact:
// dL/dlogit = (softmax - onehot)/batch.
type SoftmaxCrossEntropy struct{}

// Name implements Loss.
func (SoftmaxCrossEntropy) Name() string { return "softmax-xent" }

// Eval implements Loss. logits must be (batch, classes); labels holds one
// class index per row.
func (l SoftmaxCrossEntropy) Eval(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	grad := &tensor.Tensor{}
	return l.EvalInto(logits, labels, grad), grad
}

// EvalInto implements Loss.
func (SoftmaxCrossEntropy) EvalInto(logits *tensor.Tensor, labels []int, grad *tensor.Tensor) float64 {
	checkBatch(logits, labels)
	n, c := logits.Dim(0), logits.Dim(1)
	grad.Ensure(n, c)
	total := 0.0
	inv := 1 / float64(n)
	for i := 0; i < n; i++ {
		row := logits.Row(i)
		y := labels[i]
		if y < 0 || y >= c {
			panic(fmt.Sprintf("loss: label %d outside [0,%d)", y, c))
		}
		// Numerically stable log-sum-exp.
		m := row[0]
		for _, v := range row[1:] {
			if v > m {
				m = v
			}
		}
		sum := 0.0
		for _, v := range row {
			sum += math.Exp(v - m)
		}
		logSum := math.Log(sum) + m
		total += logSum - row[y]
		g := grad.Row(i)
		for j, v := range row {
			g[j] = math.Exp(v-logSum) * inv
		}
		g[y] -= inv
	}
	return total * inv
}

// MSE is mean squared error against one-hot targets; provided as a
// secondary loss for regression-style experiments and ablations.
type MSE struct{}

// Name implements Loss.
func (MSE) Name() string { return "mse" }

// Eval implements Loss, treating labels as one-hot targets.
func (l MSE) Eval(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	grad := &tensor.Tensor{}
	return l.EvalInto(logits, labels, grad), grad
}

// EvalInto implements Loss.
func (MSE) EvalInto(logits *tensor.Tensor, labels []int, grad *tensor.Tensor) float64 {
	checkBatch(logits, labels)
	n, c := logits.Dim(0), logits.Dim(1)
	grad.Ensure(n, c)
	total := 0.0
	inv := 1 / float64(n*c)
	for i := 0; i < n; i++ {
		row := logits.Row(i)
		g := grad.Row(i)
		for j, v := range row {
			target := 0.0
			if j == labels[i] {
				target = 1
			}
			d := v - target
			total += d * d
			g[j] = 2 * d * inv
		}
	}
	return total * inv
}

// Accuracy returns the fraction of rows whose argmax matches the label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	checkBatch(logits, labels)
	pred := logits.ArgMaxRows()
	correct := 0
	for i, p := range pred {
		if p == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}

func checkBatch(logits *tensor.Tensor, labels []int) {
	if logits.Dims() != 2 {
		panic(fmt.Sprintf("loss: logits must be 2-D, got %v", logits.Shape()))
	}
	if logits.Dim(0) != len(labels) {
		panic(fmt.Sprintf("loss: %d logit rows vs %d labels", logits.Dim(0), len(labels)))
	}
	if logits.Dim(0) == 0 {
		panic("loss: empty batch")
	}
}
