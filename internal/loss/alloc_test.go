package loss

import (
	"math/rand"
	"testing"

	"gsfl/internal/tensor"
	"gsfl/internal/testutil"
)

// TestEvalIntoMatchesEval pins the destination-passing loss contract:
// EvalInto with a reused gradient workspace returns bit-identical losses
// and gradients to the allocating Eval.
func TestEvalIntoMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, l := range []Loss{SoftmaxCrossEntropy{}, MSE{}} {
		var grad tensor.Tensor
		for trial := 0; trial < 5; trial++ {
			n := 1 + rng.Intn(6)
			c := 2 + rng.Intn(5)
			logits := tensor.New(n, c).RandNormal(rng, 0, 2)
			labels := make([]int, n)
			for i := range labels {
				labels[i] = rng.Intn(c)
			}
			wantLoss, wantGrad := l.Eval(logits, labels)
			gotLoss := l.EvalInto(logits, labels, &grad)
			if gotLoss != wantLoss {
				t.Fatalf("%s: EvalInto loss %v != Eval loss %v", l.Name(), gotLoss, wantLoss)
			}
			if !tensor.AllClose(&grad, wantGrad, 0) {
				t.Fatalf("%s: EvalInto gradient differs from Eval", l.Name())
			}
		}
	}
}

func TestEvalIntoAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	logits := tensor.New(8, 10).RandNormal(rng, 0, 2)
	labels := make([]int, 8)
	for i := range labels {
		labels[i] = rng.Intn(10)
	}
	var grad tensor.Tensor
	testutil.MaxAllocs(t, "softmax-xent EvalInto", 0, func() {
		SoftmaxCrossEntropy{}.EvalInto(logits, labels, &grad)
	})
	testutil.MaxAllocs(t, "mse EvalInto", 0, func() {
		MSE{}.EvalInto(logits, labels, &grad)
	})
}
