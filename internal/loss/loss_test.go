package loss

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gsfl/internal/tensor"
)

func TestSoftmaxXentUniformLogits(t *testing.T) {
	// All-zero logits => uniform softmax => loss = ln(C).
	logits := tensor.New(4, 10)
	l, grad := SoftmaxCrossEntropy{}.Eval(logits, []int{0, 1, 2, 3})
	if math.Abs(l-math.Log(10)) > 1e-12 {
		t.Fatalf("loss = %v, want ln(10) = %v", l, math.Log(10))
	}
	// Gradient rows must sum to zero (softmax sums to 1, minus the one-hot).
	for i := 0; i < 4; i++ {
		s := 0.0
		for _, v := range grad.Row(i) {
			s += v
		}
		if math.Abs(s) > 1e-12 {
			t.Fatalf("grad row %d sums to %v, want 0", i, s)
		}
	}
}

func TestSoftmaxXentPerfectPrediction(t *testing.T) {
	logits := tensor.New(1, 3)
	logits.Set(100, 0, 2) // overwhelming confidence in the true class
	l, _ := SoftmaxCrossEntropy{}.Eval(logits, []int{2})
	if l > 1e-9 {
		t.Fatalf("confident correct prediction loss = %v, want ≈0", l)
	}
}

func TestSoftmaxXentNumericalStability(t *testing.T) {
	logits := tensor.FromSlice([]float64{1e4, -1e4, 0}, 1, 3)
	l, grad := SoftmaxCrossEntropy{}.Eval(logits, []int{0})
	if math.IsNaN(l) || math.IsInf(l, 0) {
		t.Fatalf("loss = %v with extreme logits", l)
	}
	for _, v := range grad.Data {
		if math.IsNaN(v) {
			t.Fatal("NaN in gradient with extreme logits")
		}
	}
}

func TestSoftmaxXentGradientNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	logits := tensor.New(3, 5).RandNormal(rng, 0, 2)
	labels := []int{4, 0, 2}
	_, grad := SoftmaxCrossEntropy{}.Eval(logits, labels)
	const h = 1e-6
	for i := range logits.Data {
		orig := logits.Data[i]
		logits.Data[i] = orig + h
		lp, _ := SoftmaxCrossEntropy{}.Eval(logits, labels)
		logits.Data[i] = orig - h
		lm, _ := SoftmaxCrossEntropy{}.Eval(logits, labels)
		logits.Data[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-grad.Data[i]) > 1e-6 {
			t.Fatalf("grad[%d] = %v, numeric %v", i, grad.Data[i], num)
		}
	}
}

func TestMSEGradientNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	logits := tensor.New(2, 4).RandNormal(rng, 0, 1)
	labels := []int{1, 3}
	_, grad := MSE{}.Eval(logits, labels)
	const h = 1e-6
	for i := range logits.Data {
		orig := logits.Data[i]
		logits.Data[i] = orig + h
		lp, _ := MSE{}.Eval(logits, labels)
		logits.Data[i] = orig - h
		lm, _ := MSE{}.Eval(logits, labels)
		logits.Data[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-grad.Data[i]) > 1e-6 {
			t.Fatalf("grad[%d] = %v, numeric %v", i, grad.Data[i], num)
		}
	}
}

func TestMSEPerfect(t *testing.T) {
	logits := tensor.FromSlice([]float64{0, 1, 0}, 1, 3)
	l, _ := MSE{}.Eval(logits, []int{1})
	if l != 0 {
		t.Fatalf("perfect MSE = %v, want 0", l)
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float64{
		0.9, 0.1,
		0.2, 0.8,
		0.6, 0.4,
	}, 3, 2)
	if a := Accuracy(logits, []int{0, 1, 1}); math.Abs(a-2.0/3) > 1e-12 {
		t.Fatalf("accuracy = %v, want 2/3", a)
	}
}

func TestBadLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range label")
		}
	}()
	SoftmaxCrossEntropy{}.Eval(tensor.New(1, 3), []int{3})
}

func TestEmptyBatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty batch")
		}
	}()
	SoftmaxCrossEntropy{}.Eval(tensor.New(0, 3), nil)
}

func TestLabelCountMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on label count mismatch")
		}
	}()
	SoftmaxCrossEntropy{}.Eval(tensor.New(2, 3), []int{0})
}

// prop: softmax cross-entropy is invariant to shifting all logits in a row
// by a constant, and its gradient rows always sum to ~0.
func TestPropXentShiftInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, c := 1+rng.Intn(4), 2+rng.Intn(6)
		logits := tensor.New(n, c).RandNormal(rng, 0, 3)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = rng.Intn(c)
		}
		l1, g1 := SoftmaxCrossEntropy{}.Eval(logits, labels)
		shift := rng.NormFloat64() * 5
		shifted := logits.Clone().Apply(func(v float64) float64 { return v + shift })
		l2, _ := SoftmaxCrossEntropy{}.Eval(shifted, labels)
		if math.Abs(l1-l2) > 1e-8*(1+math.Abs(l1)) {
			return false
		}
		for i := 0; i < n; i++ {
			s := 0.0
			for _, v := range g1.Row(i) {
				s += v
			}
			if math.Abs(s) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// prop: loss is always ≥ 0 and decreases when the true-class logit grows.
func TestPropXentMonotoneInTrueLogit(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := 2 + rng.Intn(6)
		logits := tensor.New(1, c).RandNormal(rng, 0, 2)
		label := []int{rng.Intn(c)}
		l1, _ := SoftmaxCrossEntropy{}.Eval(logits, label)
		logits.Row(0)[label[0]] += 1.0
		l2, _ := SoftmaxCrossEntropy{}.Eval(logits, label)
		return l1 >= 0 && l2 < l1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
