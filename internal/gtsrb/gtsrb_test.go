package gtsrb

import (
	"math"
	"testing"

	"gsfl/internal/data"
)

func TestSampleShapeAndRange(t *testing.T) {
	g := NewGenerator(DefaultConfig(16), 1)
	f, y := g.Sample(7)
	if len(f) != 3*16*16 {
		t.Fatalf("feature length = %d, want %d", len(f), 3*16*16)
	}
	if y != 7 {
		t.Fatalf("label = %d, want 7", y)
	}
	for i, v := range f {
		if v < 0 || v > 1 {
			t.Fatalf("pixel %d = %v outside [0,1]", i, v)
		}
	}
}

func TestDeterminismAcrossGenerators(t *testing.T) {
	a := NewGenerator(DefaultConfig(16), 42)
	b := NewGenerator(DefaultConfig(16), 42)
	fa, _ := a.Sample(3)
	fb, _ := b.Sample(3)
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatal("same seed must generate identical samples")
		}
	}
}

func TestSamplesVaryWithinClass(t *testing.T) {
	g := NewGenerator(DefaultConfig(16), 1)
	fa, _ := g.Sample(5)
	fb, _ := g.Sample(5)
	diff := 0.0
	for i := range fa {
		diff += math.Abs(fa[i] - fb[i])
	}
	if diff < 1 {
		t.Fatalf("two samples of one class nearly identical (L1 diff %v); no augmentation?", diff)
	}
}

func TestClassesAreDistinguishable(t *testing.T) {
	// Mean images of different classes must differ far more than two mean
	// images of the same class — the signal a classifier learns.
	cfg := DefaultConfig(16)
	mean := func(seed int64, class int) []float64 {
		g := NewGenerator(cfg, seed)
		acc := make([]float64, 3*16*16)
		const n = 24
		for i := 0; i < n; i++ {
			f, _ := g.Sample(class)
			for j, v := range f {
				acc[j] += v / n
			}
		}
		return acc
	}
	l2 := func(a, b []float64) float64 {
		s := 0.0
		for i := range a {
			d := a[i] - b[i]
			s += d * d
		}
		return math.Sqrt(s)
	}
	sameClass := l2(mean(1, 0), mean(2, 0))
	for _, other := range []int{1, 7, 21, 42} {
		cross := l2(mean(1, 0), mean(1, other))
		if cross < 2*sameClass {
			t.Fatalf("class 0 vs %d separation %v not ≫ intra-class %v", other, cross, sameClass)
		}
	}
}

func TestAllClassSpecsDistinct(t *testing.T) {
	type key struct {
		shape shapeKind
		angle float64
		freq  float64
		r, g  float64
	}
	seen := map[key]int{}
	for c := 0; c < NumClasses; c++ {
		s := specFor(c)
		k := key{s.shape, s.stripeAngle, s.stripeFreq, s.borderR, s.borderG}
		if prev, dup := seen[k]; dup {
			t.Fatalf("classes %d and %d share a visual identity", prev, c)
		}
		seen[k] = c
	}
}

func TestDatasetUniform(t *testing.T) {
	g := NewGenerator(DefaultConfig(16), 3)
	ds := g.Dataset(430, nil)
	if ds.Len() != 430 || ds.Classes() != NumClasses {
		t.Fatalf("Len=%d Classes=%d", ds.Len(), ds.Classes())
	}
	h := data.ClassHistogram(ds)
	for c, n := range h {
		if n == 0 {
			t.Fatalf("class %d absent from 430 uniform draws", c)
		}
	}
}

func TestDatasetWeighted(t *testing.T) {
	g := NewGenerator(DefaultConfig(16), 4)
	w := make([]float64, NumClasses)
	w[10] = 1 // only class 10
	ds := g.Dataset(50, w)
	h := data.ClassHistogram(ds)
	if h[10] != 50 {
		t.Fatalf("degenerate weights: histogram = %v", h)
	}
}

func TestBalanced(t *testing.T) {
	g := NewGenerator(DefaultConfig(16), 5)
	ds := g.Balanced(2)
	if ds.Len() != NumClasses*2 {
		t.Fatalf("balanced Len = %d", ds.Len())
	}
	h := data.ClassHistogram(ds)
	for c, n := range h {
		if n != 2 {
			t.Fatalf("class %d count = %d, want 2", c, n)
		}
	}
}

func TestLabelNoise(t *testing.T) {
	cfg := DefaultConfig(16)
	cfg.LabelNoise = 0.5
	g := NewGenerator(cfg, 6)
	flips := 0
	const n = 400
	for i := 0; i < n; i++ {
		_, y := g.Sample(0)
		if y != 0 {
			flips++
		}
	}
	// Expect ≈ n * 0.5 * (42/43) flips.
	want := float64(n) * 0.5 * 42 / 43
	if math.Abs(float64(flips)-want) > 60 {
		t.Fatalf("flips = %d, want ≈%.0f", flips, want)
	}
}

func TestInShape(t *testing.T) {
	g := NewGenerator(DefaultConfig(24), 1)
	s := g.InShape()
	if len(s) != 3 || s[0] != 3 || s[1] != 24 || s[2] != 24 {
		t.Fatalf("InShape = %v", s)
	}
}

func TestValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("tiny size", func() { NewGenerator(DefaultConfig(4), 1) })
	mustPanic("label noise", func() {
		cfg := DefaultConfig(16)
		cfg.LabelNoise = 1
		NewGenerator(cfg, 1)
	})
	mustPanic("bad class", func() { specFor(NumClasses) })
	mustPanic("zero dataset", func() { NewGenerator(DefaultConfig(16), 1).Dataset(0, nil) })
	mustPanic("weights length", func() { NewGenerator(DefaultConfig(16), 1).Dataset(5, []float64{1}) })
	mustPanic("zero weights", func() {
		NewGenerator(DefaultConfig(16), 1).Dataset(5, make([]float64, NumClasses))
	})
}

func TestRotationJitterChangesSamples(t *testing.T) {
	base := DefaultConfig(16)
	rot := base
	rot.RotationJitter = 0.5
	// Same seed; the rotated generator consumes one extra RNG draw per
	// sample, so compare variance structure instead of exact pixels:
	// rotation must still keep pixels in range and produce valid images.
	g := NewGenerator(rot, 9)
	f, y := g.Sample(2)
	if y != 2 {
		t.Fatalf("label = %d", y)
	}
	for i, v := range f {
		if v < 0 || v > 1 {
			t.Fatalf("rotated pixel %d = %v outside [0,1]", i, v)
		}
	}
}

func TestRotationZeroMatchesLegacy(t *testing.T) {
	// RotationJitter 0 must not consume RNG, preserving all recorded
	// experiment results bit-for-bit.
	a := NewGenerator(DefaultConfig(16), 4)
	cfg := DefaultConfig(16)
	cfg.RotationJitter = 0
	b := NewGenerator(cfg, 4)
	fa, _ := a.Sample(7)
	fb, _ := b.Sample(7)
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatal("zero rotation changed generation")
		}
	}
}
