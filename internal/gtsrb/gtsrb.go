// Package gtsrb generates a synthetic stand-in for the German Traffic
// Sign Recognition Benchmark (GTSRB), the dataset the paper evaluates on.
//
// The real GTSRB (50k photographs, 43 classes) is not redistributable in
// this offline environment, so we substitute a procedural generator that
// preserves what the experiments actually exercise: a 43-class image
// classification task over small RGB images, with enough intra-class
// variation (pose/lighting/noise jitter) that models must generalize and
// enough inter-class structure (shape, colour, glyph) that a small CNN
// can learn it. Each class is a parametric "sign": a coloured border
// shape, a fill colour, and an oriented stripe glyph, all derived
// deterministically from the class index; each sample perturbs position,
// scale, brightness, background, and pixel noise.
package gtsrb

import (
	"fmt"
	"math"
	"math/rand"

	"gsfl/internal/data"
)

// NumClasses matches the real GTSRB.
const NumClasses = 43

// shapeKind enumerates sign silhouettes.
type shapeKind int

const (
	shapeCircle shapeKind = iota
	shapeTriangle
	shapeSquare
	shapeDiamond
	shapeOctagon
	numShapes
)

// classSpec is the deterministic visual identity of one class.
type classSpec struct {
	shape       shapeKind
	borderR     float64 // border colour
	borderG     float64
	borderB     float64
	fillR       float64 // interior colour
	fillG       float64
	fillB       float64
	stripeAngle float64 // glyph stripe orientation (radians)
	stripeFreq  float64 // glyph stripe spatial frequency
	stripeDark  float64 // glyph stripe intensity multiplier
}

// specFor derives the visual identity of class c. Distinct classes get
// distinct (shape, colours, glyph) combinations: 5 shapes × colour wheel
// positions × 4 stripe angles × 3 frequencies cover 43 classes with a
// minimum pairwise difference a CNN can separate.
func specFor(c int) classSpec {
	if c < 0 || c >= NumClasses {
		panic(fmt.Sprintf("gtsrb: class %d outside [0,%d)", c, NumClasses))
	}
	borderHue := float64((c*83)%360) / 360
	fillHue := float64((c*151+120)%360) / 360
	br, bg, bb := hsvToRGB(borderHue, 0.9, 0.9)
	fr, fg, fb := hsvToRGB(fillHue, 0.35, 0.95)
	return classSpec{
		shape:   shapeKind(c % int(numShapes)),
		borderR: br, borderG: bg, borderB: bb,
		fillR: fr, fillG: fg, fillB: fb,
		stripeAngle: float64((c/int(numShapes))%4) * math.Pi / 4,
		stripeFreq:  2 + float64((c/(int(numShapes)*4))%3),
		stripeDark:  0.45,
	}
}

// hsvToRGB converts h,s,v in [0,1] to r,g,b in [0,1].
func hsvToRGB(h, s, v float64) (r, g, b float64) {
	i := int(h*6) % 6
	f := h*6 - math.Floor(h*6)
	p := v * (1 - s)
	q := v * (1 - f*s)
	t := v * (1 - (1-f)*s)
	switch i {
	case 0:
		return v, t, p
	case 1:
		return q, v, p
	case 2:
		return p, v, t
	case 3:
		return p, q, v
	case 4:
		return t, p, v
	default:
		return v, p, q
	}
}

// inside reports whether the point (x,y) in sign-local coordinates
// ([-1,1]²) lies inside the silhouette, and whether it lies in the border
// band (outer 25% of the silhouette).
func (s classSpec) inside(x, y float64) (in, border bool) {
	var d float64 // 0 at center, 1 at silhouette boundary
	switch s.shape {
	case shapeCircle:
		d = math.Hypot(x, y)
	case shapeTriangle:
		// Upward triangle: barycentric-style bound.
		if y > 0.8 || y < -0.8 {
			return false, false
		}
		half := (0.8 - y) / 1.6 * 1.1 // width shrinks toward the top
		if math.Abs(x) > half {
			return false, false
		}
		d = math.Max(math.Abs(x)/math.Max(half, 1e-9), (y+0.8)/1.6)
	case shapeSquare:
		d = math.Max(math.Abs(x), math.Abs(y)) / 0.85
	case shapeDiamond:
		d = (math.Abs(x) + math.Abs(y)) / 1.1
	case shapeOctagon:
		ax, ay := math.Abs(x), math.Abs(y)
		d = math.Max(math.Max(ax, ay), (ax+ay)/1.3) / 0.9
	}
	if d > 1 {
		return false, false
	}
	return true, d > 0.75
}

// Config controls sample generation.
type Config struct {
	// Size is the square image edge in pixels (paper-scale default 32;
	// tests use 16 for speed).
	Size int
	// NoiseStd is the per-pixel Gaussian noise standard deviation.
	NoiseStd float64
	// Jitter is the maximum translation as a fraction of image size.
	Jitter float64
	// ScaleJitter is the relative size variation of the sign.
	ScaleJitter float64
	// BrightnessJitter is the multiplicative brightness variation.
	BrightnessJitter float64
	// RotationJitter is the maximum per-sample sign rotation in radians
	// (uniform in [-r, r]). 0 keeps signs axis-aligned.
	RotationJitter float64
	// LabelNoise is the probability a sample's label is replaced with a
	// uniformly random class (failure-injection knob; default 0).
	LabelNoise float64
}

// DefaultConfig mirrors the difficulty of photographic data closely
// enough that convergence curves have realistic shape.
func DefaultConfig(size int) Config {
	return Config{
		Size:             size,
		NoiseStd:         0.08,
		Jitter:           0.12,
		ScaleJitter:      0.2,
		BrightnessJitter: 0.25,
	}
}

// Generator produces synthetic GTSRB samples. It is deterministic given
// its seed and safe for concurrent use via independent instances (each
// client's data is generated from its own derived seed).
type Generator struct {
	cfg Config
	rng *rand.Rand
}

// NewGenerator constructs a Generator with the given config and seed.
func NewGenerator(cfg Config, seed int64) *Generator {
	if cfg.Size < 8 {
		panic(fmt.Sprintf("gtsrb: image size %d too small (min 8)", cfg.Size))
	}
	if cfg.LabelNoise < 0 || cfg.LabelNoise >= 1 {
		panic(fmt.Sprintf("gtsrb: label noise %v outside [0,1)", cfg.LabelNoise))
	}
	return &Generator{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Sample renders one image of the given class, returning CHW-flattened
// features (3*Size*Size) and the (possibly noise-corrupted) label.
func (g *Generator) Sample(class int) ([]float64, int) {
	spec := specFor(class)
	s := g.cfg.Size
	img := make([]float64, 3*s*s)

	// Per-sample perturbations.
	cx := (g.rng.Float64()*2 - 1) * g.cfg.Jitter
	cy := (g.rng.Float64()*2 - 1) * g.cfg.Jitter
	scale := 1 + (g.rng.Float64()*2-1)*g.cfg.ScaleJitter
	bright := 1 + (g.rng.Float64()*2-1)*g.cfg.BrightnessJitter
	bgR := 0.2 + 0.3*g.rng.Float64()
	bgG := 0.2 + 0.3*g.rng.Float64()
	bgB := 0.2 + 0.3*g.rng.Float64()
	phase := g.rng.Float64() * 2 * math.Pi
	var sinR, cosR float64 = 0, 1
	if g.cfg.RotationJitter > 0 {
		theta := (g.rng.Float64()*2 - 1) * g.cfg.RotationJitter
		sinR, cosR = math.Sin(theta), math.Cos(theta)
	}

	plane := s * s
	for py := 0; py < s; py++ {
		for px := 0; px < s; px++ {
			// Map pixel to sign-local coordinates.
			x := ((float64(px)+0.5)/float64(s)*2 - 1 - cx) / (0.9 * scale)
			y := ((float64(py)+0.5)/float64(s)*2 - 1 - cy) / (0.9 * scale)
			// Rotate sign-local coordinates (inverse rotation of the sign).
			x, y = x*cosR+y*sinR, -x*sinR+y*cosR
			r, gg, b := bgR, bgG, bgB
			if in, border := spec.inside(x, y); in {
				if border {
					r, gg, b = spec.borderR, spec.borderG, spec.borderB
				} else {
					r, gg, b = spec.fillR, spec.fillG, spec.fillB
					// Oriented stripe glyph in the interior.
					u := x*math.Cos(spec.stripeAngle) + y*math.Sin(spec.stripeAngle)
					if math.Sin(u*spec.stripeFreq*math.Pi+phase) > 0.3 {
						r *= spec.stripeDark
						gg *= spec.stripeDark
						b *= spec.stripeDark
					}
				}
			}
			i := py*s + px
			img[i] = clamp01(r*bright + g.rng.NormFloat64()*g.cfg.NoiseStd)
			img[plane+i] = clamp01(gg*bright + g.rng.NormFloat64()*g.cfg.NoiseStd)
			img[2*plane+i] = clamp01(b*bright + g.rng.NormFloat64()*g.cfg.NoiseStd)
		}
	}

	label := class
	if g.cfg.LabelNoise > 0 && g.rng.Float64() < g.cfg.LabelNoise {
		label = g.rng.Intn(NumClasses)
	}
	return img, label
}

// Dataset generates n samples with classes drawn from classWeights
// (uniform over all 43 when nil). The result is an in-memory dataset with
// CHW-flattened features.
func (g *Generator) Dataset(n int, classWeights []float64) *data.InMemory {
	if n <= 0 {
		panic(fmt.Sprintf("gtsrb: dataset size %d must be positive", n))
	}
	cum := cumulative(classWeights)
	x := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := drawClass(g.rng, cum)
		x[i], y[i] = g.Sample(c)
	}
	return data.NewInMemory(x, y, NumClasses)
}

// Balanced generates perClass samples of every class (size 43*perClass),
// suitable for test sets.
func (g *Generator) Balanced(perClass int) *data.InMemory {
	if perClass <= 0 {
		panic(fmt.Sprintf("gtsrb: perClass %d must be positive", perClass))
	}
	n := NumClasses * perClass
	x := make([][]float64, 0, n)
	y := make([]int, 0, n)
	for c := 0; c < NumClasses; c++ {
		for i := 0; i < perClass; i++ {
			f, label := g.Sample(c)
			x = append(x, f)
			y = append(y, label)
		}
	}
	return data.NewInMemory(x, y, NumClasses)
}

// InShape returns the per-sample tensor shape for the configured size.
func (g *Generator) InShape() []int { return []int{3, g.cfg.Size, g.cfg.Size} }

func cumulative(w []float64) []float64 {
	if w == nil {
		w = make([]float64, NumClasses)
		for i := range w {
			w[i] = 1
		}
	}
	if len(w) != NumClasses {
		panic(fmt.Sprintf("gtsrb: %d class weights, want %d", len(w), NumClasses))
	}
	cum := make([]float64, len(w))
	total := 0.0
	for i, v := range w {
		if v < 0 {
			panic(fmt.Sprintf("gtsrb: negative class weight %v", v))
		}
		total += v
		cum[i] = total
	}
	if total == 0 {
		panic("gtsrb: all class weights zero")
	}
	for i := range cum {
		cum[i] /= total
	}
	return cum
}

func drawClass(rng *rand.Rand, cum []float64) int {
	u := rng.Float64()
	for i, c := range cum {
		if u <= c {
			return i
		}
	}
	return len(cum) - 1
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
