package gtsrb

import (
	"fmt"

	"gsfl/internal/data"
)

// SourceName is the registry name of the synthetic-GTSRB generator —
// the default dataset of every experiment spec.
const SourceName = "gtsrb-synth"

// source adapts a Generator to the data.Source interface so the
// environment builder (and out-of-tree tooling) can construct it by
// name.
type source struct{ gen *Generator }

func (s source) InShape() []int                    { return s.gen.InShape() }
func (s source) Classes() int                      { return NumClasses }
func (s source) Sample(class int) ([]float64, int) { return s.gen.Sample(class) }
func (s source) Pool(n int) *data.InMemory         { return s.gen.Dataset(n, nil) }
func (s source) Balanced(perClass int) *data.InMemory {
	return s.gen.Balanced(perClass)
}

// init registers the generator into the dataset registry. Config
// options map onto the generator's jitter knobs by name; absent keys
// keep the photographic-difficulty defaults.
func init() {
	data.RegisterSource(SourceName, func(cfg data.SourceConfig) (data.Source, error) {
		if cfg.ImageSize < 8 {
			return nil, fmt.Errorf("gtsrb: image size %d too small (min 8)", cfg.ImageSize)
		}
		c := DefaultConfig(cfg.ImageSize)
		for key, v := range cfg.Options {
			switch key {
			case "noise_std":
				c.NoiseStd = v
			case "jitter":
				c.Jitter = v
			case "scale_jitter":
				c.ScaleJitter = v
			case "brightness_jitter":
				c.BrightnessJitter = v
			case "rotation_jitter":
				c.RotationJitter = v
			case "label_noise":
				if v < 0 || v >= 1 {
					return nil, fmt.Errorf("gtsrb: label noise %v outside [0,1)", v)
				}
				c.LabelNoise = v
			}
		}
		return source{gen: NewGenerator(c, cfg.Seed)}, nil
	})
}
