// Package device models the compute side of the paper's wireless
// network: N resource-limited mobile clients and one well-provisioned
// edge server co-located with the AP.
//
// A Device turns FLOP counts into seconds; the simnet ledger sums those
// seconds into per-round latency. Capacities are heterogeneous (drawn
// from a log-normal spread around a class median), which is what makes
// straggler effects, compute-balanced grouping, and the FL-vs-GSFL
// latency gap realistic.
package device

import (
	"fmt"
	"math"
	"math/rand"
)

// Device is one compute node.
type Device struct {
	// ID is the fleet-wide index (server = -1).
	ID int
	// Name is a human-readable label for traces.
	Name string
	// FLOPS is the sustained compute capacity in FLOP/s.
	FLOPS float64
}

// ComputeSeconds returns the wall-clock seconds to execute the given
// number of floating-point operations.
func (d Device) ComputeSeconds(flops int64) float64 {
	if flops < 0 {
		panic(fmt.Sprintf("device: negative FLOPs %d", flops))
	}
	return float64(flops) / d.FLOPS
}

// Fleet is the full population: one edge server and N clients.
type Fleet struct {
	Server  Device
	Clients []Device
}

// Config controls fleet synthesis.
type Config struct {
	// N is the number of clients.
	N int
	// ClientMedianFLOPS is the median client capacity (defaults represent
	// mobile-class SoCs, ~5 GFLOPS sustained for f64 CNN workloads).
	ClientMedianFLOPS float64
	// ClientSpread is the log-normal sigma of client capacities
	// (0 = homogeneous).
	ClientSpread float64
	// ServerFLOPS is the edge-server capacity (defaults to a GPU-class
	// 100x the client median).
	ServerFLOPS float64
}

// DefaultConfig returns a paper-scale fleet configuration for n clients.
func DefaultConfig(n int) Config {
	return Config{
		N:                 n,
		ClientMedianFLOPS: 5e9,
		ClientSpread:      0.35,
		ServerFLOPS:       5e11,
	}
}

// NewFleet synthesizes a fleet from cfg, deterministic in seed.
func NewFleet(cfg Config, seed int64) *Fleet {
	if cfg.N <= 0 {
		panic(fmt.Sprintf("device: fleet size %d must be positive", cfg.N))
	}
	if cfg.ClientMedianFLOPS <= 0 || cfg.ServerFLOPS <= 0 {
		panic(fmt.Sprintf("device: FLOPS must be positive (client %v, server %v)",
			cfg.ClientMedianFLOPS, cfg.ServerFLOPS))
	}
	if cfg.ClientSpread < 0 {
		panic(fmt.Sprintf("device: negative spread %v", cfg.ClientSpread))
	}
	rng := rand.New(rand.NewSource(seed))
	f := &Fleet{
		Server:  Device{ID: -1, Name: "edge-server", FLOPS: cfg.ServerFLOPS},
		Clients: make([]Device, cfg.N),
	}
	for i := range f.Clients {
		factor := math.Exp(rng.NormFloat64() * cfg.ClientSpread)
		f.Clients[i] = Device{
			ID:    i,
			Name:  fmt.Sprintf("client-%02d", i),
			FLOPS: cfg.ClientMedianFLOPS * factor,
		}
	}
	return f
}

// N returns the client count.
func (f *Fleet) N() int { return len(f.Clients) }

// Capacities returns the per-client FLOPS slice (a copy), the input the
// compute-balanced grouping strategy consumes.
func (f *Fleet) Capacities() []float64 {
	out := make([]float64, len(f.Clients))
	for i, c := range f.Clients {
		out[i] = c.FLOPS
	}
	return out
}

// SlowestClient returns the index of the lowest-capacity client.
func (f *Fleet) SlowestClient() int {
	slowest := 0
	for i, c := range f.Clients {
		if c.FLOPS < f.Clients[slowest].FLOPS {
			slowest = i
		}
	}
	return slowest
}
