package device

import (
	"math"
	"testing"
)

func TestComputeSeconds(t *testing.T) {
	d := Device{FLOPS: 1e9}
	if got := d.ComputeSeconds(2e9); math.Abs(got-2) > 1e-12 {
		t.Fatalf("ComputeSeconds = %v, want 2", got)
	}
	if got := d.ComputeSeconds(0); got != 0 {
		t.Fatalf("zero FLOPs = %v", got)
	}
}

func TestComputeSecondsNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Device{FLOPS: 1}.ComputeSeconds(-1)
}

func TestNewFleetShape(t *testing.T) {
	f := NewFleet(DefaultConfig(30), 1)
	if f.N() != 30 {
		t.Fatalf("N = %d", f.N())
	}
	if f.Server.FLOPS <= f.Clients[0].FLOPS {
		t.Fatal("server must be faster than clients")
	}
	for i, c := range f.Clients {
		if c.FLOPS <= 0 {
			t.Fatalf("client %d FLOPS %v", i, c.FLOPS)
		}
		if c.ID != i {
			t.Fatalf("client %d has ID %d", i, c.ID)
		}
	}
}

func TestFleetDeterminism(t *testing.T) {
	a := NewFleet(DefaultConfig(10), 7)
	b := NewFleet(DefaultConfig(10), 7)
	for i := range a.Clients {
		if a.Clients[i].FLOPS != b.Clients[i].FLOPS {
			t.Fatal("same seed must give identical fleets")
		}
	}
	c := NewFleet(DefaultConfig(10), 8)
	same := true
	for i := range a.Clients {
		if a.Clients[i].FLOPS != c.Clients[i].FLOPS {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical fleets")
	}
}

func TestFleetHeterogeneity(t *testing.T) {
	cfg := DefaultConfig(50)
	f := NewFleet(cfg, 3)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, c := range f.Clients {
		lo = math.Min(lo, c.FLOPS)
		hi = math.Max(hi, c.FLOPS)
	}
	if hi/lo < 1.5 {
		t.Fatalf("spread %v too small for sigma=%v", hi/lo, cfg.ClientSpread)
	}
	// Homogeneous fleet.
	cfg.ClientSpread = 0
	g := NewFleet(cfg, 3)
	for _, c := range g.Clients {
		if c.FLOPS != cfg.ClientMedianFLOPS {
			t.Fatal("zero spread must give identical clients")
		}
	}
}

func TestCapacities(t *testing.T) {
	f := NewFleet(DefaultConfig(5), 1)
	caps := f.Capacities()
	if len(caps) != 5 {
		t.Fatalf("capacities length %d", len(caps))
	}
	caps[0] = -1 // must be a copy
	if f.Clients[0].FLOPS == -1 {
		t.Fatal("Capacities must return a copy")
	}
}

func TestSlowestClient(t *testing.T) {
	f := &Fleet{Clients: []Device{{FLOPS: 5}, {FLOPS: 1}, {FLOPS: 3}}}
	if got := f.SlowestClient(); got != 1 {
		t.Fatalf("SlowestClient = %d, want 1", got)
	}
}

func TestNewFleetValidation(t *testing.T) {
	mustPanic := func(name string, cfg Config) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		NewFleet(cfg, 1)
	}
	mustPanic("zero n", Config{N: 0, ClientMedianFLOPS: 1, ServerFLOPS: 1})
	mustPanic("zero flops", Config{N: 1, ClientMedianFLOPS: 0, ServerFLOPS: 1})
	mustPanic("neg spread", Config{N: 1, ClientMedianFLOPS: 1, ServerFLOPS: 1, ClientSpread: -1})
}
