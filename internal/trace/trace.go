// Package trace writes experiment results as CSV and JSON so figure
// series can be regenerated, diffed, and plotted outside Go.
//
// Despite the name, this package is about figure data — accuracy and
// latency curves — not execution tracing. Round-lifecycle execution
// traces (spans, phase timings, Chrome trace_event JSON for Perfetto)
// live in the public gsfl/obs package.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"gsfl/internal/metrics"
)

// WriteCurveCSV writes one curve as CSV with a header row:
// round,latency_seconds,loss,accuracy.
func WriteCurveCSV(w io.Writer, c *metrics.Curve) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"round", "latency_seconds", "loss", "accuracy"}); err != nil {
		return fmt.Errorf("trace: writing header: %w", err)
	}
	for _, p := range c.Points {
		rec := []string{
			strconv.Itoa(p.Round),
			strconv.FormatFloat(p.LatencySeconds, 'g', -1, 64),
			strconv.FormatFloat(p.Loss, 'g', -1, 64),
			strconv.FormatFloat(p.Accuracy, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: writing point: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCurvesCSV writes several curves in long format:
// scheme,round,latency_seconds,loss,accuracy — the layout plotting tools
// expect for multi-series figures.
func WriteCurvesCSV(w io.Writer, curves []*metrics.Curve) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"scheme", "round", "latency_seconds", "loss", "accuracy"}); err != nil {
		return fmt.Errorf("trace: writing header: %w", err)
	}
	for _, c := range curves {
		for _, p := range c.Points {
			rec := []string{
				c.Scheme,
				strconv.Itoa(p.Round),
				strconv.FormatFloat(p.LatencySeconds, 'g', -1, 64),
				strconv.FormatFloat(p.Loss, 'g', -1, 64),
				strconv.FormatFloat(p.Accuracy, 'g', -1, 64),
			}
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("trace: writing point: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveCurvesCSV writes curves to path, creating parent directories.
func SaveCurvesCSV(path string, curves []*metrics.Curve) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("trace: creating directory: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: creating %s: %w", path, err)
	}
	defer f.Close()
	if err := WriteCurvesCSV(f, curves); err != nil {
		return err
	}
	return f.Close()
}

// Row is one generic result record (ablation tables, breakdowns).
type Row map[string]any

// Table is an ordered collection of rows sharing a column set.
type Table struct {
	Name    string   `json:"name"`
	Columns []string `json:"columns"`
	Rows    []Row    `json:"rows"`
}

// NewTable creates a table with a fixed column order.
func NewTable(name string, columns ...string) *Table {
	return &Table{Name: name, Columns: columns}
}

// Add appends a row; missing columns render as empty cells.
func (t *Table) Add(r Row) { t.Rows = append(t.Rows, r) }

// WriteCSV renders the table with its declared column order.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return fmt.Errorf("trace: writing table header: %w", err)
	}
	for _, r := range t.Rows {
		rec := make([]string, len(t.Columns))
		for i, col := range t.Columns {
			if v, ok := r[col]; ok {
				rec[i] = fmt.Sprint(v)
			}
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: writing table row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveCSV writes the table to path, creating parent directories.
func (t *Table) SaveCSV(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("trace: creating directory: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: creating %s: %w", path, err)
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}

// WriteJSON renders the table as indented JSON.
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(t); err != nil {
		return fmt.Errorf("trace: encoding table: %w", err)
	}
	return nil
}
