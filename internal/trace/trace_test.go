package trace

import (
	"bytes"
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gsfl/internal/metrics"
)

func sampleCurve() *metrics.Curve {
	c := &metrics.Curve{Scheme: "gsfl"}
	c.Append(metrics.Point{Round: 1, LatencySeconds: 1.5, Loss: 2.1, Accuracy: 0.2})
	c.Append(metrics.Point{Round: 2, LatencySeconds: 3.0, Loss: 1.4, Accuracy: 0.5})
	return c
}

func TestWriteCurveCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCurveCSV(&buf, sampleCurve()); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want header + 2", len(recs))
	}
	if recs[0][0] != "round" || recs[1][0] != "1" || recs[2][3] != "0.5" {
		t.Fatalf("unexpected CSV contents: %v", recs)
	}
}

func TestWriteCurvesCSVLongFormat(t *testing.T) {
	var buf bytes.Buffer
	c2 := &metrics.Curve{Scheme: "sl"}
	c2.Append(metrics.Point{Round: 1, Accuracy: 0.1})
	if err := WriteCurvesCSV(&buf, []*metrics.Curve{sampleCurve(), c2}); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[1][0] != "gsfl" || recs[3][0] != "sl" {
		t.Fatalf("scheme column wrong: %v", recs)
	}
}

func TestSaveCurvesCSVCreatesDirs(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "nested", "deep", "fig2a.csv")
	if err := SaveCurvesCSV(path, []*metrics.Curve{sampleCurve()}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(b), "scheme,round") {
		t.Fatalf("file contents: %q", string(b)[:40])
	}
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("latency", "scheme", "seconds")
	tbl.Add(Row{"scheme": "gsfl", "seconds": 686.4})
	tbl.Add(Row{"scheme": "sl", "seconds": 1001.2})
	tbl.Add(Row{"scheme": "mystery"}) // missing column -> empty cell
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[1][1] != "686.4" {
		t.Fatalf("cell = %q", recs[1][1])
	}
	if recs[3][1] != "" {
		t.Fatalf("missing column should be empty, got %q", recs[3][1])
	}
}

func TestTableJSON(t *testing.T) {
	tbl := NewTable("t", "a")
	tbl.Add(Row{"a": 1})
	var buf bytes.Buffer
	if err := tbl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, `"name": "t"`) || !strings.Contains(s, `"a": 1`) {
		t.Fatalf("JSON output: %s", s)
	}
}

func TestTableSaveCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out", "table.csv")
	tbl := NewTable("x", "col")
	tbl.Add(Row{"col": "v"})
	if err := tbl.SaveCSV(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

// failWriter errors after n bytes, exercising error propagation.
type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, os.ErrClosed
	}
	if len(p) > f.n {
		p = p[:f.n]
	}
	f.n -= len(p)
	return len(p), nil
}

func TestWriteCurveCSVPropagatesErrors(t *testing.T) {
	if err := WriteCurveCSV(&failWriter{n: 0}, sampleCurve()); err == nil {
		t.Fatal("expected write error")
	}
	if err := WriteCurvesCSV(&failWriter{n: 0}, []*metrics.Curve{sampleCurve()}); err == nil {
		t.Fatal("expected write error")
	}
}

func TestTableWriteErrorsPropagate(t *testing.T) {
	tbl := NewTable("t", "a")
	tbl.Add(Row{"a": 1})
	if err := tbl.WriteCSV(&failWriter{n: 0}); err == nil {
		t.Fatal("expected CSV write error")
	}
	if err := tbl.WriteJSON(&failWriter{n: 0}); err == nil {
		t.Fatal("expected JSON write error")
	}
}

func TestSaveCurvesCSVBadPath(t *testing.T) {
	// A path whose parent is a file cannot be created.
	dir := t.TempDir()
	blocker := filepath.Join(dir, "file")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(blocker, "sub", "out.csv")
	if err := SaveCurvesCSV(bad, []*metrics.Curve{sampleCurve()}); err == nil {
		t.Fatal("expected path error")
	}
	tbl := NewTable("t", "a")
	if err := tbl.SaveCSV(bad); err == nil {
		t.Fatal("expected path error")
	}
}
