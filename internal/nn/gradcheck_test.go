package nn

import (
	"math"
	"math/rand"
	"testing"

	"gsfl/internal/tensor"
)

// scalarLoss reduces a layer output to a scalar with fixed random weights,
// so that dL/d(output) is a known constant tensor. Using a weighted sum
// (rather than a plain sum) exercises every output element with a
// distinct gradient.
type scalarLoss struct {
	w *tensor.Tensor
}

func newScalarLoss(rng *rand.Rand, shape []int) *scalarLoss {
	return &scalarLoss{w: tensor.New(shape...).RandNormal(rng, 0, 1)}
}

func (s *scalarLoss) value(y *tensor.Tensor) float64 { return tensor.Dot(y, s.w) }
func (s *scalarLoss) grad() *tensor.Tensor           { return s.w.Clone() }

// checkLayerGradients verifies Backward against central finite differences
// for both the input and every parameter of the layer.
//
// Stochastic layers (Dropout) cannot be checked this way; the test file
// handles them separately with deterministic configurations.
func checkLayerGradients(t *testing.T, layer Layer, x *tensor.Tensor, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))

	// Analytic pass.
	y := layer.Forward(x, true)
	loss := newScalarLoss(rng, y.Shape())
	ZeroGrads([]Layer{layer})
	dx := layer.Backward(loss.grad())

	eval := func() float64 {
		return loss.value(layer.Forward(x, false))
	}
	// BatchNorm in eval mode uses running stats, not batch stats, so the
	// finite-difference probe must rerun the training-mode forward. That
	// mutates running stats, which is fine: they do not affect the
	// training-mode output.
	if _, isBN := layer.(*BatchNorm); isBN {
		eval = func() float64 { return loss.value(layer.Forward(x, true)) }
	}

	const h = 1e-5
	checkTensor := func(name string, val *tensor.Tensor, analytic *tensor.Tensor) {
		t.Helper()
		for i := range val.Data {
			orig := val.Data[i]
			val.Data[i] = orig + h
			lp := eval()
			val.Data[i] = orig - h
			lm := eval()
			val.Data[i] = orig
			num := (lp - lm) / (2 * h)
			got := analytic.Data[i]
			denom := math.Max(1, math.Max(math.Abs(num), math.Abs(got)))
			if math.Abs(num-got)/denom > tol {
				t.Fatalf("%s[%d]: analytic %v vs numeric %v", name, i, got, num)
			}
		}
	}

	checkTensor("dx", x, dx)
	params, grads := layer.Params(), layer.Grads()
	for pi := range params {
		checkTensor(layer.Name()+" param", params[pi], grads[pi])
	}
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	layer := NewDense(rng, 5, 4)
	x := tensor.New(3, 5).RandNormal(rng, 0, 1)
	checkLayerGradients(t, layer, x, 1e-5)
}

func TestConv2DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	layer := NewConv2D(rng, 2, 3, 3, 1, 1)
	x := tensor.New(2, 2, 5, 5).RandNormal(rng, 0, 1)
	checkLayerGradients(t, layer, x, 1e-4)
}

func TestConv2DStridedGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	layer := NewConv2D(rng, 1, 2, 3, 2, 0)
	x := tensor.New(2, 1, 7, 7).RandNormal(rng, 0, 1)
	checkLayerGradients(t, layer, x, 1e-4)
}

func TestMaxPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	layer := NewMaxPool2D(2)
	// Spread values so no two window elements tie (ties make the argmax
	// subgradient ambiguous and the check invalid).
	x := tensor.New(2, 2, 4, 4)
	perm := rng.Perm(x.Size())
	for i, p := range perm {
		x.Data[i] = float64(p) * 0.37
	}
	checkLayerGradients(t, layer, x, 1e-5)
}

func TestReLUGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	layer := NewReLU()
	x := tensor.New(4, 6).RandNormal(rng, 0, 1)
	// Push values away from the kink at 0 where the subgradient check fails.
	x.Apply(func(v float64) float64 {
		if math.Abs(v) < 0.1 {
			return v + 0.2
		}
		return v
	})
	checkLayerGradients(t, layer, x, 1e-6)
}

func TestLeakyReLUGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	layer := NewLeakyReLU(0.1)
	x := tensor.New(4, 6).RandNormal(rng, 0, 1)
	x.Apply(func(v float64) float64 {
		if math.Abs(v) < 0.1 {
			return v + 0.2
		}
		return v
	})
	checkLayerGradients(t, layer, x, 1e-6)
}

func TestTanhGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	layer := NewTanh()
	x := tensor.New(3, 5).RandNormal(rng, 0, 1)
	checkLayerGradients(t, layer, x, 1e-6)
}

func TestSigmoidGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	layer := NewSigmoid()
	x := tensor.New(3, 5).RandNormal(rng, 0, 1)
	checkLayerGradients(t, layer, x, 1e-6)
}

func TestBatchNorm2DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	layer := NewBatchNorm(4)
	x := tensor.New(6, 4).RandNormal(rng, 1, 2)
	checkLayerGradients(t, layer, x, 1e-4)
}

func TestBatchNorm4DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	layer := NewBatchNorm(3)
	x := tensor.New(2, 3, 3, 3).RandNormal(rng, -1, 1.5)
	checkLayerGradients(t, layer, x, 1e-4)
}

func TestFlattenGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	layer := NewFlatten()
	x := tensor.New(2, 3, 2, 2).RandNormal(rng, 0, 1)
	checkLayerGradients(t, layer, x, 1e-6)
}

// TestSequentialCNNGradients runs the finite-difference check through a
// small but complete CNN stack — the same layer sequence the GSFL model
// uses — catching any error in cross-layer gradient plumbing.
func TestSequentialCNNGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	net := NewSequential(
		NewConv2D(rng, 1, 2, 3, 1, 1),
		NewReLU(),
		NewMaxPool2D(2),
		NewFlatten(),
		NewDense(rng, 2*3*3, 5),
	)
	x := tensor.New(2, 1, 6, 6)
	perm := rng.Perm(x.Size())
	for i, p := range perm {
		x.Data[i] = float64(p)*0.11 - 3
	}

	lossRng := rand.New(rand.NewSource(13))
	y := net.Forward(x, true)
	loss := newScalarLoss(lossRng, y.Shape())
	net.ZeroGrads()
	dx := net.Backward(loss.grad())

	const h = 1e-5
	const tol = 1e-4
	eval := func() float64 { return loss.value(net.Forward(x, false)) }
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + h
		lp := eval()
		x.Data[i] = orig - h
		lm := eval()
		x.Data[i] = orig
		num := (lp - lm) / (2 * h)
		denom := math.Max(1, math.Max(math.Abs(num), math.Abs(dx.Data[i])))
		if math.Abs(num-dx.Data[i])/denom > tol {
			t.Fatalf("dx[%d]: analytic %v vs numeric %v", i, dx.Data[i], num)
		}
	}
	params, grads := net.Params(), net.Grads()
	for pi := range params {
		for i := range params[pi].Data {
			orig := params[pi].Data[i]
			params[pi].Data[i] = orig + h
			lp := eval()
			params[pi].Data[i] = orig - h
			lm := eval()
			params[pi].Data[i] = orig
			num := (lp - lm) / (2 * h)
			got := grads[pi].Data[i]
			denom := math.Max(1, math.Max(math.Abs(num), math.Abs(got)))
			if math.Abs(num-got)/denom > tol {
				t.Fatalf("param %d[%d]: analytic %v vs numeric %v", pi, i, got, num)
			}
		}
	}
}

func TestAvgPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	layer := NewAvgPool2D(2)
	x := tensor.New(2, 2, 4, 4).RandNormal(rng, 0, 1)
	checkLayerGradients(t, layer, x, 1e-6)
}
