package nn

import (
	"math/rand"
	"testing"

	"gsfl/internal/parallel"
	"gsfl/internal/tensor"
	"gsfl/internal/testutil"
)

// Steady-state allocation regression tests for the layer workspaces:
// after a warm-up call, every layer's Forward and Backward must be
// allocation-free while the batch shape is stable. Run serially —
// fork-join helpers necessarily allocate goroutine state, which is not
// what these tests guard.

func serialWorkers(t *testing.T) {
	t.Helper()
	parallel.SetWorkers(1)
	t.Cleanup(func() { parallel.SetWorkers(0) })
}

// layerAllocCase drives one layer with a fixed input and asserts zero
// steady-state allocations for train-mode Forward and for Backward.
func layerAllocCase(t *testing.T, l Layer, x *tensor.Tensor) {
	t.Helper()
	serialWorkers(t)
	y := l.Forward(x, true)
	dy := y.Clone() // gradient with the output's shape, owned by the test
	testutil.MaxAllocs(t, l.Name()+" forward", 0, func() { l.Forward(x, true) })
	testutil.MaxAllocs(t, l.Name()+" backward", 0, func() { l.Backward(dy) })
	testutil.MaxAllocs(t, l.Name()+" eval forward", 0, func() { l.Forward(x, false) })
}

func TestDenseAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	layerAllocCase(t, NewDense(rng, 64, 32), tensor.New(8, 64).RandNormal(rng, 0, 1))
}

func TestConv2DAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	layerAllocCase(t, NewConv2D(rng, 3, 8, 3, 1, 1), tensor.New(4, 3, 12, 12).RandNormal(rng, 0, 1))
}

func TestMaxPoolAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	layerAllocCase(t, NewMaxPool2D(2), tensor.New(4, 3, 8, 8).RandNormal(rng, 0, 1))
}

func TestAvgPoolAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	layerAllocCase(t, NewAvgPool2D(2), tensor.New(4, 3, 8, 8).RandNormal(rng, 0, 1))
}

func TestActivationsAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, l := range []Layer{NewReLU(), NewLeakyReLU(0.1), NewTanh(), NewSigmoid()} {
		layerAllocCase(t, l, tensor.New(8, 32).RandNormal(rng, 0, 1))
	}
}

func TestBatchNormAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	layerAllocCase(t, NewBatchNorm(16), tensor.New(8, 16).RandNormal(rng, 0, 1))
	layerAllocCase(t, NewBatchNorm(3), tensor.New(4, 3, 6, 6).RandNormal(rng, 0, 1))
}

func TestDropoutAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	layerAllocCase(t, NewDropout(rand.New(rand.NewSource(8)), 0.3), tensor.New(8, 32).RandNormal(rng, 0, 1))
}

func TestFlattenAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	layerAllocCase(t, NewFlatten(), tensor.New(4, 3, 4, 4).RandNormal(rng, 0, 1))
}

// TestSequentialStepAllocFree drives a full CNN training step — forward,
// zero-grads, backward — and asserts it is allocation-free after warmup,
// which is what the per-round numbers in BENCH_hotpath.json rely on.
func TestSequentialStepAllocFree(t *testing.T) {
	serialWorkers(t)
	rng := rand.New(rand.NewSource(10))
	net := NewSequential(
		NewConv2D(rng, 3, 8, 3, 1, 1),
		NewReLU(),
		NewMaxPool2D(2),
		NewFlatten(),
		NewDense(rng, 8*6*6, 16),
		NewReLU(),
		NewDense(rng, 16, 4),
	)
	x := tensor.New(4, 3, 12, 12).RandNormal(rng, 0, 1)
	y := net.Forward(x, true)
	dy := y.Clone()
	testutil.MaxAllocs(t, "sequential step", 0, func() {
		net.Forward(x, true)
		net.ZeroGrads()
		net.Backward(dy)
	})
}

// TestWorkspaceReuseMatchesFreshLayer verifies the core refactor claim:
// a layer whose workspace has been warmed by unrelated batches computes
// bit-identical results to a freshly constructed twin.
func TestWorkspaceReuseMatchesFreshLayer(t *testing.T) {
	serialWorkers(t)
	mk := func() *Conv2D { return NewConv2D(rand.New(rand.NewSource(42)), 2, 4, 3, 1, 1) }
	warm, fresh := mk(), mk()

	rng := rand.New(rand.NewSource(11))
	// Warm with batches of a different size (and one eval pass) first.
	for i := 0; i < 3; i++ {
		w := warm.Forward(tensor.New(6, 2, 8, 8).RandNormal(rng, 0, 1), true)
		warm.Backward(w)
	}
	warm.Forward(tensor.New(2, 2, 8, 8).RandNormal(rng, 0, 1), false)
	ZeroGrads([]Layer{warm})

	x := tensor.New(4, 2, 8, 8).RandNormal(rng, 0, 1)
	dy := tensor.New(4, 4, 8, 8).RandNormal(rng, 0, 1)
	yw := warm.Forward(x, true)
	yf := fresh.Forward(x, true)
	if !tensor.AllClose(yw, yf, 0) {
		t.Fatal("warmed workspace changed forward results")
	}
	dxw := warm.Backward(dy)
	dxf := fresh.Backward(dy)
	if !tensor.AllClose(dxw, dxf, 0) {
		t.Fatal("warmed workspace changed input gradients")
	}
	gw, gf := warm.Grads(), fresh.Grads()
	for i := range gw {
		if !tensor.AllClose(gw[i], gf[i], 0) {
			t.Fatalf("warmed workspace changed parameter gradient %d", i)
		}
	}
}
