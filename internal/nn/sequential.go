package nn

import (
	"fmt"
	"strings"

	"gsfl/internal/tensor"
)

// NoDecay is an optional interface a Layer can implement to exempt some
// or all of its parameters from L2 weight decay. The returned slice is
// aligned with Params(); true means "do not decay". BatchNorm uses this
// to protect its affine parameters and running statistics, which standard
// practice never decays.
type NoDecay interface {
	NoDecayParams() []bool
}

// NoDecayParams implements NoDecay for BatchNorm: nothing is decayed.
func (b *BatchNorm) NoDecayParams() []bool { return []bool{true, true, true, true} }

// Sequential chains layers into a network. It is the unit both the whole
// model and each side of a split model are built from.
//
// The flattened Params/Grads/DecayMask views are cached after first use
// (they are consulted on every optimizer step, so rebuilding them would
// put slice allocations in the training hot path). The Layers slice must
// therefore not be mutated after the Sequential is first used, and
// callers must treat the returned slices as read-only.
type Sequential struct {
	Layers []Layer

	cacheBuilt bool
	params     []*tensor.Tensor
	grads      []*tensor.Tensor
	decay      []bool
}

// buildCache assembles the flattened parameter views once.
func (s *Sequential) buildCache() {
	s.params = nil
	s.grads = nil
	s.decay = nil
	for _, l := range s.Layers {
		ps := l.Params()
		s.params = append(s.params, ps...)
		s.grads = append(s.grads, l.Grads()...)
		if nd, ok := l.(NoDecay); ok {
			skip := nd.NoDecayParams()
			if len(skip) != len(ps) {
				panic(fmt.Sprintf("nn: %s NoDecayParams length %d, want %d", l.Name(), len(skip), len(ps)))
			}
			for _, sk := range skip {
				s.decay = append(s.decay, !sk)
			}
			continue
		}
		for range ps {
			s.decay = append(s.decay, true)
		}
	}
	s.cacheBuilt = true
}

// NewSequential constructs a Sequential from the given layers.
func NewSequential(layers ...Layer) *Sequential {
	return &Sequential{Layers: layers}
}

// Forward runs the full forward pass.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward runs the full backward pass, returning the gradient with
// respect to the network input (the "smashed-data gradient" when this
// Sequential is a server-side model half).
func (s *Sequential) Backward(dy *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		dy = s.Layers[i].Backward(dy)
	}
	return dy
}

// ZeroGrads zeroes all parameter gradients. It walks the cached gradient
// views, so per-step calls allocate nothing (layer Grads() builds a
// fresh slice per call).
func (s *Sequential) ZeroGrads() {
	for _, g := range s.Grads() {
		g.Zero()
	}
}

// Params returns all parameter tensors in layer order. The slice is
// cached and shared — treat it as read-only.
func (s *Sequential) Params() []*tensor.Tensor {
	if !s.cacheBuilt {
		s.buildCache()
	}
	return s.params
}

// Grads returns all gradient tensors aligned with Params. The slice is
// cached and shared — treat it as read-only.
func (s *Sequential) Grads() []*tensor.Tensor {
	if !s.cacheBuilt {
		s.buildCache()
	}
	return s.grads
}

// DecayMask returns, aligned with Params, whether each parameter should
// receive L2 weight decay (true = decay). The slice is cached and
// shared — treat it as read-only.
func (s *Sequential) DecayMask() []bool {
	if !s.cacheBuilt {
		s.buildCache()
	}
	return s.decay
}

// ParamCount returns the total number of scalar parameters.
func (s *Sequential) ParamCount() int { return ParamCount(s.Layers) }

// OutShape propagates a per-sample input shape through every layer,
// returning the final per-sample output shape. It panics on any
// incompatibility, which makes model construction self-checking.
func (s *Sequential) OutShape(in []int) []int {
	for _, l := range s.Layers {
		in = l.OutShape(in)
	}
	return in
}

// ShapeAt returns the per-sample activation shape after layer k (k layers
// applied), so ShapeAt(in, 0) == in and ShapeAt(in, len(Layers)) is the
// output shape. This is the quantity the split-learning latency model
// prices as "smashed data".
func (s *Sequential) ShapeAt(in []int, k int) []int {
	if k < 0 || k > len(s.Layers) {
		panic(fmt.Sprintf("nn: ShapeAt index %d outside [0,%d]", k, len(s.Layers)))
	}
	out := append([]int(nil), in...)
	for _, l := range s.Layers[:k] {
		out = l.OutShape(out)
	}
	return out
}

// FwdFLOPs sums per-sample forward FLOPs over all layers for the given
// per-sample input shape.
func (s *Sequential) FwdFLOPs(in []int) int64 {
	var total int64
	for _, l := range s.Layers {
		total += l.FwdFLOPs(in)
		in = l.OutShape(in)
	}
	return total
}

// Summary renders a layer-by-layer description with activation shapes and
// parameter counts, similar to Keras's model.summary().
func (s *Sequential) Summary(in []int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-28s %-16s %10s\n", "layer", "output", "params")
	shape := append([]int(nil), in...)
	total := 0
	for _, l := range s.Layers {
		shape = l.OutShape(shape)
		n := 0
		for _, p := range l.Params() {
			n += p.Size()
		}
		total += n
		fmt.Fprintf(&sb, "%-28s %-16v %10d\n", l.Name(), shape, n)
	}
	fmt.Fprintf(&sb, "total params: %d\n", total)
	return sb.String()
}
