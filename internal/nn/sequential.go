package nn

import (
	"fmt"
	"strings"

	"gsfl/internal/tensor"
)

// NoDecay is an optional interface a Layer can implement to exempt some
// or all of its parameters from L2 weight decay. The returned slice is
// aligned with Params(); true means "do not decay". BatchNorm uses this
// to protect its affine parameters and running statistics, which standard
// practice never decays.
type NoDecay interface {
	NoDecayParams() []bool
}

// NoDecayParams implements NoDecay for BatchNorm: nothing is decayed.
func (b *BatchNorm) NoDecayParams() []bool { return []bool{true, true, true, true} }

// Sequential chains layers into a network. It is the unit both the whole
// model and each side of a split model are built from.
type Sequential struct {
	Layers []Layer
}

// NewSequential constructs a Sequential from the given layers.
func NewSequential(layers ...Layer) *Sequential {
	return &Sequential{Layers: layers}
}

// Forward runs the full forward pass.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward runs the full backward pass, returning the gradient with
// respect to the network input (the "smashed-data gradient" when this
// Sequential is a server-side model half).
func (s *Sequential) Backward(dy *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		dy = s.Layers[i].Backward(dy)
	}
	return dy
}

// ZeroGrads zeroes all parameter gradients.
func (s *Sequential) ZeroGrads() { ZeroGrads(s.Layers) }

// Params returns all parameter tensors in layer order.
func (s *Sequential) Params() []*tensor.Tensor {
	var ps []*tensor.Tensor
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Grads returns all gradient tensors aligned with Params.
func (s *Sequential) Grads() []*tensor.Tensor {
	var gs []*tensor.Tensor
	for _, l := range s.Layers {
		gs = append(gs, l.Grads()...)
	}
	return gs
}

// DecayMask returns, aligned with Params, whether each parameter should
// receive L2 weight decay (true = decay).
func (s *Sequential) DecayMask() []bool {
	var mask []bool
	for _, l := range s.Layers {
		n := len(l.Params())
		if nd, ok := l.(NoDecay); ok {
			skip := nd.NoDecayParams()
			if len(skip) != n {
				panic(fmt.Sprintf("nn: %s NoDecayParams length %d, want %d", l.Name(), len(skip), n))
			}
			for _, sk := range skip {
				mask = append(mask, !sk)
			}
			continue
		}
		for i := 0; i < n; i++ {
			mask = append(mask, true)
		}
	}
	return mask
}

// ParamCount returns the total number of scalar parameters.
func (s *Sequential) ParamCount() int { return ParamCount(s.Layers) }

// OutShape propagates a per-sample input shape through every layer,
// returning the final per-sample output shape. It panics on any
// incompatibility, which makes model construction self-checking.
func (s *Sequential) OutShape(in []int) []int {
	for _, l := range s.Layers {
		in = l.OutShape(in)
	}
	return in
}

// ShapeAt returns the per-sample activation shape after layer k (k layers
// applied), so ShapeAt(in, 0) == in and ShapeAt(in, len(Layers)) is the
// output shape. This is the quantity the split-learning latency model
// prices as "smashed data".
func (s *Sequential) ShapeAt(in []int, k int) []int {
	if k < 0 || k > len(s.Layers) {
		panic(fmt.Sprintf("nn: ShapeAt index %d outside [0,%d]", k, len(s.Layers)))
	}
	out := append([]int(nil), in...)
	for _, l := range s.Layers[:k] {
		out = l.OutShape(out)
	}
	return out
}

// FwdFLOPs sums per-sample forward FLOPs over all layers for the given
// per-sample input shape.
func (s *Sequential) FwdFLOPs(in []int) int64 {
	var total int64
	for _, l := range s.Layers {
		total += l.FwdFLOPs(in)
		in = l.OutShape(in)
	}
	return total
}

// Summary renders a layer-by-layer description with activation shapes and
// parameter counts, similar to Keras's model.summary().
func (s *Sequential) Summary(in []int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-28s %-16s %10s\n", "layer", "output", "params")
	shape := append([]int(nil), in...)
	total := 0
	for _, l := range s.Layers {
		shape = l.OutShape(shape)
		n := 0
		for _, p := range l.Params() {
			n += p.Size()
		}
		total += n
		fmt.Fprintf(&sb, "%-28s %-16v %10d\n", l.Name(), shape, n)
	}
	fmt.Fprintf(&sb, "total params: %d\n", total)
	return sb.String()
}
