package nn

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"gsfl/internal/tensor"
)

func TestDenseShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(rng, 8, 3)
	y := d.Forward(tensor.New(5, 8), false)
	if y.Dim(0) != 5 || y.Dim(1) != 3 {
		t.Fatalf("output shape = %v", y.Shape())
	}
	out := d.OutShape([]int{8})
	if len(out) != 1 || out[0] != 3 {
		t.Fatalf("OutShape = %v", out)
	}
}

func TestDenseBadInputPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(rng, 8, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong input width")
		}
	}()
	d.Forward(tensor.New(5, 7), false)
}

func TestDenseBackwardBeforeForwardPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(rng, 4, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on Backward before Forward")
		}
	}()
	d.Backward(tensor.New(1, 2))
}

func TestDenseKnownValues(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(rng, 2, 2)
	// Overwrite the random init with known weights.
	copy(d.w.Data, []float64{1, 2, 3, 4}) // W = [[1,2],[3,4]]
	copy(d.b.Data, []float64{10, 20})
	x := tensor.FromSlice([]float64{1, 1}, 1, 2)
	y := d.Forward(x, false)
	// y = [1+3+10, 2+4+20] = [14, 26]
	want := tensor.FromSlice([]float64{14, 26}, 1, 2)
	if !tensor.AllClose(y, want, 1e-12) {
		t.Fatalf("y = %v, want %v", y, want)
	}
}

func TestConv2DShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := NewConv2D(rng, 3, 8, 3, 1, 1) // same-padding
	y := c.Forward(tensor.New(2, 3, 16, 16), false)
	wantShape := []int{2, 8, 16, 16}
	for i, d := range wantShape {
		if y.Dim(i) != d {
			t.Fatalf("conv output shape = %v, want %v", y.Shape(), wantShape)
		}
	}
}

func TestConv2DKnownValues(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := NewConv2D(rng, 1, 1, 2, 1, 0)
	copy(c.w.Data, []float64{1, 0, 0, 1}) // identity-ish: top-left + bottom-right
	c.b.Data[0] = 0.5
	x := tensor.FromSlice([]float64{
		1, 2,
		3, 4,
	}, 1, 1, 2, 2)
	y := c.Forward(x, false)
	// 1*1 + 4*1 + 0.5 = 5.5
	if y.Size() != 1 || math.Abs(y.Data[0]-5.5) > 1e-12 {
		t.Fatalf("conv value = %v, want 5.5", y.Data)
	}
}

func TestMaxPoolKnownValues(t *testing.T) {
	p := NewMaxPool2D(2)
	x := tensor.FromSlice([]float64{
		1, 2, 5, 6,
		3, 4, 7, 8,
		9, 1, 2, 3,
		1, 1, 4, 0,
	}, 1, 1, 4, 4)
	y := p.Forward(x, false)
	want := tensor.FromSlice([]float64{4, 8, 9, 4}, 1, 1, 2, 2)
	if !tensor.AllClose(y, want, 0) {
		t.Fatalf("maxpool = %v, want %v", y, want)
	}
}

func TestMaxPoolTruncatesOddDims(t *testing.T) {
	p := NewMaxPool2D(2)
	y := p.Forward(tensor.New(1, 1, 5, 5), false)
	if y.Dim(2) != 2 || y.Dim(3) != 2 {
		t.Fatalf("odd-dim pooling shape = %v, want trailing row/col dropped", y.Shape())
	}
}

func TestReLUForward(t *testing.T) {
	r := NewReLU()
	x := tensor.FromSlice([]float64{-1, 0, 2}, 3)
	y := r.Forward(x, false)
	want := tensor.FromSlice([]float64{0, 0, 2}, 3)
	if !tensor.AllClose(y, want, 0) {
		t.Fatalf("relu = %v", y)
	}
}

func TestDropoutEvalIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := NewDropout(rng, 0.5)
	x := tensor.New(10).RandNormal(rng, 0, 1)
	y := d.Forward(x, false)
	if !tensor.AllClose(x, y, 0) {
		t.Fatal("eval-mode dropout must be identity")
	}
}

func TestDropoutTrainStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := NewDropout(rng, 0.3)
	x := tensor.Ones(100000)
	y := d.Forward(x, true)
	// Inverted dropout keeps E[y] == E[x].
	if m := y.Mean(); math.Abs(m-1) > 0.02 {
		t.Fatalf("dropout mean = %v, want ≈1", m)
	}
	zeros := 0
	for _, v := range y.Data {
		if v == 0 {
			zeros++
		}
	}
	frac := float64(zeros) / float64(y.Size())
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("dropout zero fraction = %v, want ≈0.3", frac)
	}
}

func TestDropoutBackwardMatchesMask(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := NewDropout(rng, 0.5)
	x := tensor.Ones(64)
	y := d.Forward(x, true)
	dy := tensor.Ones(64)
	dx := d.Backward(dy)
	// Gradient must flow exactly where the forward pass kept the value.
	for i := range y.Data {
		if (y.Data[i] == 0) != (dx.Data[i] == 0) {
			t.Fatalf("mask mismatch at %d: y=%v dx=%v", i, y.Data[i], dx.Data[i])
		}
	}
}

func TestBatchNormNormalizes(t *testing.T) {
	bn := NewBatchNorm(2)
	rng := rand.New(rand.NewSource(7))
	x := tensor.New(64, 2)
	for i := 0; i < 64; i++ {
		x.Set(5+2*rng.NormFloat64(), i, 0)
		x.Set(-3+0.5*rng.NormFloat64(), i, 1)
	}
	y := bn.Forward(x, true)
	for f := 0; f < 2; f++ {
		var s, ss float64
		for i := 0; i < 64; i++ {
			v := y.At(i, f)
			s += v
			ss += v * v
		}
		mean := s / 64
		variance := ss/64 - mean*mean
		if math.Abs(mean) > 1e-9 || math.Abs(variance-1) > 1e-2 {
			t.Fatalf("feature %d: mean=%v var=%v, want 0/1", f, mean, variance)
		}
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	bn := NewBatchNorm(1)
	rng := rand.New(rand.NewSource(8))
	// Train on shifted data for a while so running stats settle.
	for i := 0; i < 200; i++ {
		x := tensor.New(32, 1).RandNormal(rng, 10, 2)
		bn.Forward(x, true)
	}
	// In eval mode, feeding the training distribution should give ≈N(0,1).
	x := tensor.New(1024, 1).RandNormal(rng, 10, 2)
	y := bn.Forward(x, false)
	if m := y.Mean(); math.Abs(m) > 0.2 {
		t.Fatalf("eval mean = %v, want ≈0", m)
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	f := NewFlatten()
	x := tensor.New(2, 3, 4, 4)
	y := f.Forward(x, true)
	if y.Dim(0) != 2 || y.Dim(1) != 48 {
		t.Fatalf("flatten shape = %v", y.Shape())
	}
	dx := f.Backward(tensor.New(2, 48))
	if dx.Dims() != 4 || dx.Dim(1) != 3 {
		t.Fatalf("flatten backward shape = %v", dx.Shape())
	}
}

func TestSequentialOutShapeAndFLOPs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net := NewSequential(
		NewConv2D(rng, 3, 8, 3, 1, 1),
		NewReLU(),
		NewMaxPool2D(2),
		NewFlatten(),
		NewDense(rng, 8*16*16, 43),
	)
	out := net.OutShape([]int{3, 32, 32})
	if len(out) != 1 || out[0] != 43 {
		t.Fatalf("OutShape = %v, want [43]", out)
	}
	if f := net.FwdFLOPs([]int{3, 32, 32}); f <= 0 {
		t.Fatalf("FwdFLOPs = %d, want positive", f)
	}
}

func TestSequentialShapeAt(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	net := NewSequential(
		NewConv2D(rng, 3, 8, 3, 1, 1),
		NewMaxPool2D(2),
		NewFlatten(),
		NewDense(rng, 8*16*16, 10),
	)
	in := []int{3, 32, 32}
	cases := []struct {
		k    int
		want []int
	}{
		{0, []int{3, 32, 32}},
		{1, []int{8, 32, 32}},
		{2, []int{8, 16, 16}},
		{3, []int{8 * 16 * 16}},
		{4, []int{10}},
	}
	for _, tc := range cases {
		got := net.ShapeAt(in, tc.k)
		if !shapeEq(got, tc.want) {
			t.Fatalf("ShapeAt(%d) = %v, want %v", tc.k, got, tc.want)
		}
	}
}

func TestSequentialSummary(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	net := NewSequential(NewDense(rng, 4, 2), NewReLU())
	s := net.Summary([]int{4})
	if !strings.Contains(s, "dense(4->2)") || !strings.Contains(s, "total params: 10") {
		t.Fatalf("summary missing expected content:\n%s", s)
	}
}

func TestZeroGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	net := NewSequential(NewDense(rng, 3, 3), NewReLU(), NewDense(rng, 3, 2))
	x := tensor.New(4, 3).RandNormal(rng, 0, 1)
	y := net.Forward(x, true)
	net.Backward(tensor.Ones(y.Shape()...))
	nonzero := false
	for _, g := range net.Grads() {
		if g.L2Norm() > 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("expected some nonzero grads after Backward")
	}
	net.ZeroGrads()
	for i, g := range net.Grads() {
		if g.L2Norm() != 0 {
			t.Fatalf("grad %d not zeroed", i)
		}
	}
}

func TestDecayMask(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	net := NewSequential(NewDense(rng, 3, 3), NewBatchNorm(3))
	mask := net.DecayMask()
	want := []bool{true, true, false, false, false, false} // dense W,b then BN gamma,beta,runMean,runVar
	if len(mask) != len(want) {
		t.Fatalf("mask length = %d, want %d", len(mask), len(want))
	}
	for i := range want {
		if mask[i] != want[i] {
			t.Fatalf("mask = %v, want %v", mask, want)
		}
	}
}

func TestParamCount(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	net := NewSequential(NewDense(rng, 10, 5)) // 50 weights + 5 biases
	if n := net.ParamCount(); n != 55 {
		t.Fatalf("ParamCount = %d, want 55", n)
	}
}

func TestConstructorValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("dense", func() { NewDense(rng, 0, 3) })
	mustPanic("conv", func() { NewConv2D(rng, 1, 1, 0, 1, 0) })
	mustPanic("pool", func() { NewMaxPool2D(0) })
	mustPanic("dropout", func() { NewDropout(rng, 1.0) })
	mustPanic("leakyrelu", func() { NewLeakyReLU(1.5) })
	mustPanic("batchnorm", func() { NewBatchNorm(0) })
}

func TestAvgPoolKnownValues(t *testing.T) {
	p := NewAvgPool2D(2)
	x := tensor.FromSlice([]float64{
		1, 2, 5, 6,
		3, 4, 7, 8,
		8, 0, 2, 2,
		0, 0, 2, 2,
	}, 1, 1, 4, 4)
	y := p.Forward(x, false)
	want := tensor.FromSlice([]float64{2.5, 6.5, 2, 2}, 1, 1, 2, 2)
	if !tensor.AllClose(y, want, 1e-12) {
		t.Fatalf("avgpool = %v, want %v", y, want)
	}
}

func TestAvgPoolBackwardSpreadsGradient(t *testing.T) {
	p := NewAvgPool2D(2)
	x := tensor.New(1, 1, 2, 2)
	p.Forward(x, true)
	dy := tensor.FromSlice([]float64{4}, 1, 1, 1, 1)
	dx := p.Backward(dy)
	for _, v := range dx.Data {
		if v != 1 {
			t.Fatalf("gradient not spread evenly: %v", dx.Data)
		}
	}
}

func TestAvgPoolValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero window")
		}
	}()
	NewAvgPool2D(0)
}
