// Package nn implements a from-scratch neural-network layer framework with
// manual backpropagation.
//
// It exists because the GSFL reproduction needs, in pure Go, the exact
// operations split learning relies on: run the forward pass of a *prefix*
// of a model (the client side), ship the cut-layer activations ("smashed
// data"), resume the forward pass on another machine (the server side),
// and propagate gradients back across the same cut. Every layer therefore
// exposes Forward/Backward explicitly rather than hiding them behind an
// autodiff tape, and reports its parameter and activation sizes so the
// wireless latency model (internal/wireless, internal/simnet) can price
// each transfer in bytes and each pass in FLOPs.
//
// All layers are deterministic given their RNG and inputs, and none share
// mutable state, so group replicas can train concurrently.
//
// # Buffer ownership
//
// Forward and Backward are destination-passing under the hood: every
// layer owns a lazily-sized workspace (output, input-gradient, and
// per-layer scratch buffers) that is allocated on first use and reused
// while the batch shape is stable, so steady-state training performs no
// heap allocations. The tensors they return therefore alias layer-owned
// memory, with the following contract:
//
//   - The tensor returned by Forward is valid until the layer's next
//     Forward call; the tensor returned by Backward is valid until the
//     layer's next Backward call. Callers that need the values longer
//     must copy (Clone or CopyFrom).
//   - A training-mode Forward and its matching Backward form one unit:
//     no other Forward may run on the same layer between them (an eval
//     pass would overwrite the cached activations Backward reads).
//     Within a Sequential this holds automatically for the usual
//     forward → backward → optimizer step loop.
//   - Buffer reuse never changes operation order: each reused buffer is
//     written with exactly the per-element schedule the allocate-fresh
//     implementation used, so results are bit-identical, at any worker
//     count, to the pre-workspace code.
package nn

import (
	"fmt"

	"gsfl/internal/tensor"
)

// Layer is one differentiable stage of a network.
//
// The contract mirrors classic layer-wise backprop:
//
//   - Forward consumes the previous activation and returns the next. When
//     train is true the layer may cache whatever it needs for Backward and
//     may behave stochastically (Dropout) or update running statistics
//     (BatchNorm).
//   - Backward consumes dL/d(output) and returns dL/d(input), accumulating
//     dL/d(param) into Grads. It must be called after a training-mode
//     Forward with the matching batch.
//
// Params and Grads return aligned slices: Grads()[i] is the gradient of
// Params()[i]. Layers without parameters return nil for both.
type Layer interface {
	// Name identifies the layer type and salient hyperparameters,
	// e.g. "dense(128->43)". Used in model summaries and traces.
	Name() string
	// Forward computes the layer output for a batch.
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward computes the input gradient from the output gradient and
	// accumulates parameter gradients.
	Backward(dy *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's trainable parameter tensors (may be nil).
	Params() []*tensor.Tensor
	// Grads returns gradient tensors aligned with Params (may be nil).
	Grads() []*tensor.Tensor
	// OutShape maps a per-sample input shape (no batch dimension) to the
	// per-sample output shape. It panics on incompatible shapes so that
	// model mis-assembly fails fast at construction time.
	OutShape(in []int) []int
	// FwdFLOPs estimates the floating-point operations of one sample's
	// forward pass given the per-sample input shape. The backward pass is
	// priced at 2x forward, the standard estimate used by training-cost
	// models.
	FwdFLOPs(in []int) int64
}

// ZeroGrads zeroes every gradient tensor of every layer in ls.
// Call between mini-batches; Backward accumulates.
func ZeroGrads(ls []Layer) {
	for _, l := range ls {
		for _, g := range l.Grads() {
			g.Zero()
		}
	}
}

// ParamCount returns the total number of scalar parameters in ls.
func ParamCount(ls []Layer) int {
	n := 0
	for _, l := range ls {
		for _, p := range l.Params() {
			n += p.Size()
		}
	}
	return n
}

// prod multiplies shape dimensions (the per-sample element count).
func prod(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}

func shapeEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// mustRank takes the layer rather than its name so the Name() fmt call
// — an allocation — only happens on the panic path, not on every
// Forward.
func mustRank(l Layer, x *tensor.Tensor, rank int) {
	if x.Dims() != rank {
		panic(fmt.Sprintf("nn: %s expects rank-%d input, got shape %v", l.Name(), rank, x.Shape()))
	}
}
