package nn

import (
	"gsfl/internal/tensor"
)

// Flatten reshapes (N, ...) to (N, prod(...)), bridging convolutional and
// dense stages. It is a pure view change; no data moves. The returned
// tensors are reusable layer-owned headers aliasing the input's data, so
// steady-state calls allocate nothing.
type Flatten struct {
	inShape []int // cached full input shape for Backward

	ws struct {
		out, dx tensor.Tensor
	}
}

// NewFlatten constructs a Flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Name implements Layer.
func (f *Flatten) Name() string { return "flatten" }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		f.inShape = x.AppendShape(f.inShape[:0])
	}
	n := x.Dim(0)
	per := 0
	if n > 0 {
		per = x.Size() / n
	}
	return f.ws.out.ViewOf(x, n, per)
}

// Backward implements Layer.
func (f *Flatten) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if f.inShape == nil {
		panic("nn: Flatten.Backward called before training-mode Forward")
	}
	return f.ws.dx.ViewOf(dy, f.inShape...)
}

// Params implements Layer (none).
func (f *Flatten) Params() []*tensor.Tensor { return nil }

// Grads implements Layer (none).
func (f *Flatten) Grads() []*tensor.Tensor { return nil }

// OutShape implements Layer.
func (f *Flatten) OutShape(in []int) []int { return []int{prod(in)} }

// FwdFLOPs implements Layer (free).
func (f *Flatten) FwdFLOPs(in []int) int64 { return 0 }
