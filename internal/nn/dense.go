package nn

import (
	"fmt"
	"math/rand"

	"gsfl/internal/tensor"
)

// Dense is a fully connected layer: y = x@W + b, with x of shape
// (batch, in) and y of shape (batch, out).
type Dense struct {
	In, Out int

	w, b   *tensor.Tensor // W is (in×out); b is (out)
	dw, db *tensor.Tensor

	x *tensor.Tensor // cached input for Backward

	// ws is the reusable forward/backward workspace (see the package
	// comment's buffer-ownership rule): out and dx back the returned
	// tensors; dwT/dbT stage this batch's parameter gradients before the
	// single AddInPlace that keeps accumulation order identical to the
	// allocate-fresh implementation.
	ws struct {
		out, dx, dwT, dbT tensor.Tensor
	}
}

// NewDense constructs a Dense layer with He-normal weight initialization
// (the network uses ReLU activations throughout) and zero bias.
func NewDense(rng *rand.Rand, in, out int) *Dense {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: Dense dims must be positive, got %d->%d", in, out))
	}
	return &Dense{
		In:  in,
		Out: out,
		w:   tensor.New(in, out).HeInit(rng, in),
		b:   tensor.New(out),
		dw:  tensor.New(in, out),
		db:  tensor.New(out),
	}
}

// Name implements Layer.
func (d *Dense) Name() string { return fmt.Sprintf("dense(%d->%d)", d.In, d.Out) }

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	mustRank(d, x, 2)
	if x.Dim(1) != d.In {
		panic(fmt.Sprintf("nn: %s got input width %d", d.Name(), x.Dim(1)))
	}
	if train {
		d.x = x
	}
	y := d.ws.out.Ensure(x.Dim(0), d.Out)
	tensor.MatMulIntoOp("Dense forward y=x@W", y, x, d.w)
	y.AddRowVector(d.b)
	return y
}

// Backward implements Layer.
func (d *Dense) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if d.x == nil {
		panic("nn: Dense.Backward called before training-mode Forward")
	}
	// dW += xᵀ @ dy ; db += column sums of dy ; dx = dy @ Wᵀ.
	d.dw.AddInPlace(tensor.MatMulTransAIntoOp("Dense backward dW=xᵀ@dy", d.ws.dwT.Ensure(d.In, d.Out), d.x, dy))
	d.db.AddInPlace(dy.SumRowsInto(&d.ws.dbT))
	return tensor.MatMulTransBIntoOp("Dense backward dx=dy@Wᵀ", d.ws.dx.Ensure(dy.Dim(0), d.In), dy, d.w)
}

// Params implements Layer.
func (d *Dense) Params() []*tensor.Tensor { return []*tensor.Tensor{d.w, d.b} }

// Grads implements Layer.
func (d *Dense) Grads() []*tensor.Tensor { return []*tensor.Tensor{d.dw, d.db} }

// OutShape implements Layer.
func (d *Dense) OutShape(in []int) []int {
	if len(in) != 1 || in[0] != d.In {
		panic(fmt.Sprintf("nn: %s cannot follow per-sample shape %v", d.Name(), in))
	}
	return []int{d.Out}
}

// FwdFLOPs implements Layer: one multiply-add per weight plus the bias add.
func (d *Dense) FwdFLOPs(in []int) int64 {
	return 2*int64(d.In)*int64(d.Out) + int64(d.Out)
}
