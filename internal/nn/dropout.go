package nn

import (
	"fmt"
	"math/rand"

	"gsfl/internal/tensor"
)

// Dropout implements inverted dropout: during training each element is
// zeroed with probability P and survivors are scaled by 1/(1-P), so
// evaluation-mode forward passes need no rescaling.
type Dropout struct {
	P   float64
	rng *rand.Rand

	scale []float64 // per-element multiplier used in the last forward
	// active records whether the last forward applied dropout (training
	// mode with P > 0); when false, Backward is the identity.
	active bool

	ws struct {
		out, dx tensor.Tensor
	}
}

// NewDropout constructs a Dropout layer with drop probability p in [0,1).
// The layer owns its RNG stream so concurrent models never share state.
func NewDropout(rng *rand.Rand, p float64) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: Dropout probability %v outside [0,1)", p))
	}
	return &Dropout{P: p, rng: rng}
}

// Name implements Layer.
func (d *Dropout) Name() string { return fmt.Sprintf("dropout(%g)", d.P) }

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.P == 0 {
		d.active = false
		return x
	}
	keep := 1 - d.P
	inv := 1 / keep
	y := d.ws.out.EnsureShapeOf(x)
	if cap(d.scale) < x.Size() {
		d.scale = make([]float64, x.Size())
	} else {
		d.scale = d.scale[:x.Size()]
	}
	for i, v := range x.Data {
		if d.rng.Float64() < keep {
			d.scale[i] = inv
			y.Data[i] = v * inv
		} else {
			d.scale[i] = 0
			y.Data[i] = 0
		}
	}
	d.active = true
	return y
}

// Backward implements Layer.
func (d *Dropout) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if !d.active {
		// Forward ran in eval mode or with P==0: identity gradient.
		return dy
	}
	dx := d.ws.dx.EnsureShapeOf(dy)
	for i, s := range d.scale {
		dx.Data[i] = dy.Data[i] * s
	}
	return dx
}

// Params implements Layer (none).
func (d *Dropout) Params() []*tensor.Tensor { return nil }

// Grads implements Layer (none).
func (d *Dropout) Grads() []*tensor.Tensor { return nil }

// OutShape implements Layer (shape-preserving).
func (d *Dropout) OutShape(in []int) []int { return append([]int(nil), in...) }

// FwdFLOPs implements Layer.
func (d *Dropout) FwdFLOPs(in []int) int64 { return int64(prod(in)) }
