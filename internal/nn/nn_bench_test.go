package nn

import (
	"math/rand"
	"testing"

	"gsfl/internal/tensor"
)

// Micro-benchmarks for layer forward/backward passes (simulation
// wall-clock cost, not paper figures).

func BenchmarkConv2DForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	layer := NewConv2D(rng, 3, 8, 3, 1, 1)
	x := tensor.New(16, 3, 32, 32).RandNormal(rng, 0, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		layer.Forward(x, false)
	}
}

func BenchmarkConv2DForwardBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	layer := NewConv2D(rng, 3, 8, 3, 1, 1)
	x := tensor.New(16, 3, 32, 32).RandNormal(rng, 0, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		y := layer.Forward(x, true)
		ZeroGrads([]Layer{layer})
		layer.Backward(y)
	}
}

func BenchmarkDenseForwardBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	layer := NewDense(rng, 1024, 64)
	x := tensor.New(16, 1024).RandNormal(rng, 0, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		y := layer.Forward(x, true)
		ZeroGrads([]Layer{layer})
		layer.Backward(y)
	}
}

func BenchmarkGTSRBNetForward(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	net := NewSequential(
		NewConv2D(rng, 3, 8, 3, 1, 1),
		NewReLU(),
		NewMaxPool2D(2),
		NewConv2D(rng, 8, 16, 3, 1, 1),
		NewReLU(),
		NewMaxPool2D(2),
		NewFlatten(),
		NewDense(rng, 16*8*8, 64),
		NewReLU(),
		NewDense(rng, 64, 43),
	)
	x := tensor.New(16, 3, 32, 32).RandNormal(rng, 0, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		net.Forward(x, false)
	}
}
