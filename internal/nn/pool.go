package nn

import (
	"fmt"
	"math"

	"gsfl/internal/tensor"
)

// MaxPool2D is a max-pooling layer over NCHW inputs with a square window
// and matching stride (the common non-overlapping configuration).
type MaxPool2D struct {
	K int // window size == stride

	// Cached from the training-mode forward pass: for each output element,
	// the flat input index that supplied the max (argmax routing).
	argmax  []int
	inShape []int

	ws struct {
		out, dx tensor.Tensor
	}
}

// NewMaxPool2D constructs a max-pooling layer with window and stride k.
func NewMaxPool2D(k int) *MaxPool2D {
	if k <= 0 {
		panic(fmt.Sprintf("nn: MaxPool2D window must be positive, got %d", k))
	}
	return &MaxPool2D{K: k}
}

// Name implements Layer.
func (p *MaxPool2D) Name() string { return fmt.Sprintf("maxpool2d(%d)", p.K) }

// growInts returns xs with exactly n elements, reusing capacity.
func growInts(xs []int, n int) []int {
	if cap(xs) < n {
		return make([]int, n)
	}
	return xs[:n]
}

// Forward implements Layer.
func (p *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	mustRank(p, x, 4)
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	if h < p.K || w < p.K {
		panic(fmt.Sprintf("nn: %s input %dx%d smaller than window", p.Name(), h, w))
	}
	outH, outW := h/p.K, w/p.K
	y := p.ws.out.Ensure(n, c, outH, outW)
	var arg []int
	if train {
		arg = growInts(p.argmax, y.Size())
	}
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			inBase := (i*c + ch) * h * w
			outBase := (i*c + ch) * outH * outW
			for oh := 0; oh < outH; oh++ {
				for ow := 0; ow < outW; ow++ {
					best := math.Inf(-1)
					bi := -1
					for kh := 0; kh < p.K; kh++ {
						rowBase := inBase + (oh*p.K+kh)*w + ow*p.K
						for kw := 0; kw < p.K; kw++ {
							if v := x.Data[rowBase+kw]; v > best {
								best = v
								bi = rowBase + kw
							}
						}
					}
					oi := outBase + oh*outW + ow
					y.Data[oi] = best
					if train {
						arg[oi] = bi
					}
				}
			}
		}
	}
	if train {
		p.argmax = arg
		p.inShape = x.AppendShape(p.inShape[:0])
	}
	return y
}

// Backward implements Layer: gradients route to the argmax positions.
func (p *MaxPool2D) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if p.argmax == nil {
		panic("nn: MaxPool2D.Backward called before training-mode Forward")
	}
	dx := p.ws.dx.Ensure(p.inShape...)
	dx.Zero()
	for oi, ii := range p.argmax {
		dx.Data[ii] += dy.Data[oi]
	}
	return dx
}

// Params implements Layer (none).
func (p *MaxPool2D) Params() []*tensor.Tensor { return nil }

// Grads implements Layer (none).
func (p *MaxPool2D) Grads() []*tensor.Tensor { return nil }

// OutShape implements Layer.
func (p *MaxPool2D) OutShape(in []int) []int {
	if len(in) != 3 || in[1] < p.K || in[2] < p.K {
		panic(fmt.Sprintf("nn: %s cannot follow per-sample shape %v", p.Name(), in))
	}
	return []int{in[0], in[1] / p.K, in[2] / p.K}
}

// FwdFLOPs implements Layer: one comparison per window element.
func (p *MaxPool2D) FwdFLOPs(in []int) int64 {
	out := p.OutShape(in)
	return int64(prod(out)) * int64(p.K) * int64(p.K)
}
