package nn

import (
	"fmt"
	"math"

	"gsfl/internal/tensor"
)

// BatchNorm normalizes activations to zero mean / unit variance per
// feature, then applies a learned affine transform (gamma, beta).
//
// It accepts both layouts the network produces:
//   - rank-2 (N, F): each of the F features is normalized over the batch;
//   - rank-4 (N, C, H, W): each of the C channels is normalized over
//     N*H*W (spatial batch norm).
//
// Running statistics are tracked with exponential moving averages and
// used in evaluation mode, so inference is deterministic. The running
// buffers are exposed through Params so that FedAvg aggregation merges
// them across groups exactly like learned parameters — without this,
// aggregated models would evaluate with stale statistics.
type BatchNorm struct {
	F        int     // features (rank-2) or channels (rank-4)
	Momentum float64 // EMA factor for running statistics
	Eps      float64

	gamma, beta   *tensor.Tensor
	dgamma, dbeta *tensor.Tensor
	runMean       *tensor.Tensor
	runVar        *tensor.Tensor
	// zeroA/zeroB are the permanently-zero gradient slots for the running
	// statistics; optimizers add zero, leaving the buffers untouched.
	zeroA, zeroB *tensor.Tensor

	// Cached from the training-mode forward pass.
	xhat    *tensor.Tensor
	invStd  []float64
	inShape []int

	// ws holds the reusable output/xhat/input-gradient buffers plus the
	// per-feature scratch (mean, variance, Σdy, Σdy·x̂, eval-mode inverse
	// stddev). The scratch slices are length F, fixed at construction, so
	// they are allocated exactly once.
	ws struct {
		out, xhat, dx             tensor.Tensor
		mean, variance            []float64
		sumDy, sumDyXhat, evalInv []float64
	}
}

// NewBatchNorm constructs a BatchNorm layer for f features/channels.
func NewBatchNorm(f int) *BatchNorm {
	if f <= 0 {
		panic(fmt.Sprintf("nn: BatchNorm features must be positive, got %d", f))
	}
	b := &BatchNorm{
		F:        f,
		Momentum: 0.9,
		Eps:      1e-5,
		gamma:    tensor.Ones(f),
		beta:     tensor.New(f),
		dgamma:   tensor.New(f),
		dbeta:    tensor.New(f),
		runMean:  tensor.New(f),
		runVar:   tensor.Ones(f),
		zeroA:    tensor.New(f),
		zeroB:    tensor.New(f),
		invStd:   make([]float64, f),
	}
	b.ws.mean = make([]float64, f)
	b.ws.variance = make([]float64, f)
	b.ws.sumDy = make([]float64, f)
	b.ws.sumDyXhat = make([]float64, f)
	b.ws.evalInv = make([]float64, f)
	return b
}

// Name implements Layer.
func (b *BatchNorm) Name() string { return fmt.Sprintf("batchnorm(%d)", b.F) }

// checkInput validates the layout and returns the spatial extent (1 for
// rank-2 inputs, H*W for rank-4).
func (b *BatchNorm) checkInput(x *tensor.Tensor) (spatial int) {
	switch x.Dims() {
	case 2:
		if x.Dim(1) != b.F {
			panic(fmt.Sprintf("nn: %s got %d features", b.Name(), x.Dim(1)))
		}
		return 1
	case 4:
		if x.Dim(1) != b.F {
			panic(fmt.Sprintf("nn: %s got %d channels", b.Name(), x.Dim(1)))
		}
		return x.Dim(2) * x.Dim(3)
	default:
		panic(fmt.Sprintf("nn: %s expects rank-2 or rank-4 input, got %v", b.Name(), x.Shape()))
	}
}

// forEach calls fn(featureIndex, flatIndex) for every element of x. The
// closures passed in capture only locals and never escape, so they cost
// no allocations.
func (b *BatchNorm) forEach(x *tensor.Tensor, spatial int, fn func(f, i int)) {
	n := x.Dim(0)
	per := b.F * spatial
	for s := 0; s < n; s++ {
		base := s * per
		for f := 0; f < b.F; f++ {
			fb := base + f*spatial
			for j := 0; j < spatial; j++ {
				fn(f, fb+j)
			}
		}
	}
}

// Forward implements Layer.
func (b *BatchNorm) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	spatial := b.checkInput(x)
	n := x.Dim(0)
	count := float64(n * spatial)
	y := b.ws.out.EnsureShapeOf(x)

	if !train {
		// Evaluation mode: use running statistics.
		inv := b.ws.evalInv
		for f := 0; f < b.F; f++ {
			inv[f] = 1 / math.Sqrt(b.runVar.Data[f]+b.Eps)
		}
		b.forEach(x, spatial, func(f, i int) {
			y.Data[i] = b.gamma.Data[f]*(x.Data[i]-b.runMean.Data[f])*inv[f] + b.beta.Data[f]
		})
		return y
	}

	mean := b.ws.mean
	for f := range mean {
		mean[f] = 0
	}
	b.forEach(x, spatial, func(f, i int) { mean[f] += x.Data[i] })
	for f := range mean {
		mean[f] /= count
	}
	variance := b.ws.variance
	for f := range variance {
		variance[f] = 0
	}
	b.forEach(x, spatial, func(f, i int) {
		d := x.Data[i] - mean[f]
		variance[f] += d * d
	})
	for f := range variance {
		variance[f] /= count
	}

	invStd := b.invStd
	for f := range invStd {
		invStd[f] = 1 / math.Sqrt(variance[f]+b.Eps)
	}
	xhat := b.ws.xhat.EnsureShapeOf(x)
	b.forEach(x, spatial, func(f, i int) {
		xhat.Data[i] = (x.Data[i] - mean[f]) * invStd[f]
		y.Data[i] = b.gamma.Data[f]*xhat.Data[i] + b.beta.Data[f]
	})

	for f := 0; f < b.F; f++ {
		b.runMean.Data[f] = b.Momentum*b.runMean.Data[f] + (1-b.Momentum)*mean[f]
		b.runVar.Data[f] = b.Momentum*b.runVar.Data[f] + (1-b.Momentum)*variance[f]
	}

	b.xhat = xhat
	b.inShape = x.AppendShape(b.inShape[:0])
	return y
}

// Backward implements Layer, using the standard batch-norm gradient:
//
//	dx = gamma*invStd/count * (count*dy - Σdy - xhat*Σ(dy*xhat))
func (b *BatchNorm) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if b.xhat == nil {
		panic("nn: BatchNorm.Backward called before training-mode Forward")
	}
	spatial := 1
	if len(b.inShape) == 4 {
		spatial = b.inShape[2] * b.inShape[3]
	}
	n := b.inShape[0]
	count := float64(n * spatial)

	sumDy := b.ws.sumDy
	sumDyXhat := b.ws.sumDyXhat
	for f := 0; f < b.F; f++ {
		sumDy[f] = 0
		sumDyXhat[f] = 0
	}
	b.forEach(dy, spatial, func(f, i int) {
		sumDy[f] += dy.Data[i]
		sumDyXhat[f] += dy.Data[i] * b.xhat.Data[i]
	})
	for f := 0; f < b.F; f++ {
		b.dbeta.Data[f] += sumDy[f]
		b.dgamma.Data[f] += sumDyXhat[f]
	}

	dx := b.ws.dx.Ensure(b.inShape...)
	b.forEach(dy, spatial, func(f, i int) {
		dx.Data[i] = b.gamma.Data[f] * b.invStd[f] / count *
			(count*dy.Data[i] - sumDy[f] - b.xhat.Data[i]*sumDyXhat[f])
	})
	return dx
}

// Params implements Layer. The running statistics are included (with zero
// gradients) so model snapshots and FedAvg aggregation carry them.
func (b *BatchNorm) Params() []*tensor.Tensor {
	return []*tensor.Tensor{b.gamma, b.beta, b.runMean, b.runVar}
}

// Grads implements Layer. Running-statistic "gradients" are permanently
// zero tensors, so optimizers leave the buffers untouched.
func (b *BatchNorm) Grads() []*tensor.Tensor {
	return []*tensor.Tensor{b.dgamma, b.dbeta, b.zeroA, b.zeroB}
}

// OutShape implements Layer (shape-preserving).
func (b *BatchNorm) OutShape(in []int) []int {
	want := b.F
	if !(len(in) == 1 && in[0] == want) && !(len(in) == 3 && in[0] == want) {
		panic(fmt.Sprintf("nn: %s cannot follow per-sample shape %v", b.Name(), in))
	}
	return append([]int(nil), in...)
}

// FwdFLOPs implements Layer: ~8 ops per element (normalize + affine).
func (b *BatchNorm) FwdFLOPs(in []int) int64 { return 8 * int64(prod(in)) }
