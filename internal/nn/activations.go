package nn

import (
	"fmt"
	"math"

	"gsfl/internal/tensor"
)

// ReLU applies max(0, x) elementwise.
type ReLU struct {
	mask []bool // true where the input was positive

	ws struct {
		out, dx tensor.Tensor
	}
}

// NewReLU constructs a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Name implements Layer.
func (r *ReLU) Name() string { return "relu" }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := r.ws.out.EnsureShapeOf(x)
	if train {
		if cap(r.mask) < x.Size() {
			r.mask = make([]bool, x.Size())
		} else {
			r.mask = r.mask[:x.Size()]
		}
		for i, v := range x.Data {
			if v > 0 {
				y.Data[i] = v
				r.mask[i] = true
			} else {
				y.Data[i] = 0
				r.mask[i] = false
			}
		}
		return y
	}
	for i, v := range x.Data {
		if v > 0 {
			y.Data[i] = v
		} else {
			y.Data[i] = 0
		}
	}
	return y
}

// Backward implements Layer.
func (r *ReLU) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if r.mask == nil {
		panic("nn: ReLU.Backward called before training-mode Forward")
	}
	dx := r.ws.dx.EnsureShapeOf(dy)
	for i, m := range r.mask {
		if m {
			dx.Data[i] = dy.Data[i]
		} else {
			dx.Data[i] = 0
		}
	}
	return dx
}

// Params implements Layer (none).
func (r *ReLU) Params() []*tensor.Tensor { return nil }

// Grads implements Layer (none).
func (r *ReLU) Grads() []*tensor.Tensor { return nil }

// OutShape implements Layer (shape-preserving).
func (r *ReLU) OutShape(in []int) []int { return append([]int(nil), in...) }

// FwdFLOPs implements Layer.
func (r *ReLU) FwdFLOPs(in []int) int64 { return int64(prod(in)) }

// LeakyReLU applies x for x>0 and alpha*x otherwise.
type LeakyReLU struct {
	Alpha float64
	x     *tensor.Tensor

	ws struct {
		out, dx tensor.Tensor
	}
}

// NewLeakyReLU constructs a LeakyReLU with the given negative slope.
func NewLeakyReLU(alpha float64) *LeakyReLU {
	if alpha < 0 || alpha >= 1 {
		panic(fmt.Sprintf("nn: LeakyReLU alpha %v outside [0,1)", alpha))
	}
	return &LeakyReLU{Alpha: alpha}
}

// Name implements Layer.
func (l *LeakyReLU) Name() string { return fmt.Sprintf("leakyrelu(%g)", l.Alpha) }

// Forward implements Layer.
func (l *LeakyReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		l.x = x
	}
	a := l.Alpha
	y := l.ws.out.EnsureShapeOf(x)
	for i, v := range x.Data {
		if v > 0 {
			y.Data[i] = v
		} else {
			y.Data[i] = a * v
		}
	}
	return y
}

// Backward implements Layer.
func (l *LeakyReLU) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if l.x == nil {
		panic("nn: LeakyReLU.Backward called before training-mode Forward")
	}
	dx := l.ws.dx.EnsureShapeOf(dy)
	for i, v := range l.x.Data {
		if v > 0 {
			dx.Data[i] = dy.Data[i]
		} else {
			dx.Data[i] = l.Alpha * dy.Data[i]
		}
	}
	return dx
}

// Params implements Layer (none).
func (l *LeakyReLU) Params() []*tensor.Tensor { return nil }

// Grads implements Layer (none).
func (l *LeakyReLU) Grads() []*tensor.Tensor { return nil }

// OutShape implements Layer (shape-preserving).
func (l *LeakyReLU) OutShape(in []int) []int { return append([]int(nil), in...) }

// FwdFLOPs implements Layer.
func (l *LeakyReLU) FwdFLOPs(in []int) int64 { return int64(prod(in)) }

// Tanh applies the hyperbolic tangent elementwise.
type Tanh struct {
	y *tensor.Tensor

	ws struct {
		out, dx tensor.Tensor
	}
}

// NewTanh constructs a Tanh activation layer.
func NewTanh() *Tanh { return &Tanh{} }

// Name implements Layer.
func (t *Tanh) Name() string { return "tanh" }

// Forward implements Layer.
func (t *Tanh) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := t.ws.out.EnsureShapeOf(x)
	for i, v := range x.Data {
		y.Data[i] = math.Tanh(v)
	}
	if train {
		t.y = y
	}
	return y
}

// Backward implements Layer: d tanh = 1 - tanh².
func (t *Tanh) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if t.y == nil {
		panic("nn: Tanh.Backward called before training-mode Forward")
	}
	dx := t.ws.dx.EnsureShapeOf(dy)
	for i, v := range t.y.Data {
		dx.Data[i] = dy.Data[i] * (1 - v*v)
	}
	return dx
}

// Params implements Layer (none).
func (t *Tanh) Params() []*tensor.Tensor { return nil }

// Grads implements Layer (none).
func (t *Tanh) Grads() []*tensor.Tensor { return nil }

// OutShape implements Layer (shape-preserving).
func (t *Tanh) OutShape(in []int) []int { return append([]int(nil), in...) }

// FwdFLOPs implements Layer. tanh is priced at ~8 FLOPs per element.
func (t *Tanh) FwdFLOPs(in []int) int64 { return 8 * int64(prod(in)) }

// Sigmoid applies 1/(1+e^-x) elementwise.
type Sigmoid struct {
	y *tensor.Tensor

	ws struct {
		out, dx tensor.Tensor
	}
}

// NewSigmoid constructs a Sigmoid activation layer.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// Name implements Layer.
func (s *Sigmoid) Name() string { return "sigmoid" }

// Forward implements Layer.
func (s *Sigmoid) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := s.ws.out.EnsureShapeOf(x)
	for i, v := range x.Data {
		y.Data[i] = 1 / (1 + math.Exp(-v))
	}
	if train {
		s.y = y
	}
	return y
}

// Backward implements Layer: dσ = σ(1-σ).
func (s *Sigmoid) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if s.y == nil {
		panic("nn: Sigmoid.Backward called before training-mode Forward")
	}
	dx := s.ws.dx.EnsureShapeOf(dy)
	for i, v := range s.y.Data {
		dx.Data[i] = dy.Data[i] * v * (1 - v)
	}
	return dx
}

// Params implements Layer (none).
func (s *Sigmoid) Params() []*tensor.Tensor { return nil }

// Grads implements Layer (none).
func (s *Sigmoid) Grads() []*tensor.Tensor { return nil }

// OutShape implements Layer (shape-preserving).
func (s *Sigmoid) OutShape(in []int) []int { return append([]int(nil), in...) }

// FwdFLOPs implements Layer. The exponential is priced at ~8 FLOPs.
func (s *Sigmoid) FwdFLOPs(in []int) int64 { return 8 * int64(prod(in)) }
