package nn

import (
	"fmt"

	"gsfl/internal/tensor"
)

// AvgPool2D is average pooling over NCHW inputs with a square window and
// matching stride. Compared with MaxPool2D it produces smoother smashed
// data, which some split-learning deployments prefer for privacy (less
// structure leaks through the cut); the cut-layer ablations can swap it
// in via a custom Arch.
type AvgPool2D struct {
	K int // window size == stride

	inShape []int

	ws struct {
		out, dx tensor.Tensor
	}
}

// NewAvgPool2D constructs an average-pooling layer with window and
// stride k.
func NewAvgPool2D(k int) *AvgPool2D {
	if k <= 0 {
		panic(fmt.Sprintf("nn: AvgPool2D window must be positive, got %d", k))
	}
	return &AvgPool2D{K: k}
}

// Name implements Layer.
func (p *AvgPool2D) Name() string { return fmt.Sprintf("avgpool2d(%d)", p.K) }

// Forward implements Layer.
func (p *AvgPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	mustRank(p, x, 4)
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	if h < p.K || w < p.K {
		panic(fmt.Sprintf("nn: %s input %dx%d smaller than window", p.Name(), h, w))
	}
	outH, outW := h/p.K, w/p.K
	y := p.ws.out.Ensure(n, c, outH, outW)
	inv := 1 / float64(p.K*p.K)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			inBase := (i*c + ch) * h * w
			outBase := (i*c + ch) * outH * outW
			for oh := 0; oh < outH; oh++ {
				for ow := 0; ow < outW; ow++ {
					s := 0.0
					for kh := 0; kh < p.K; kh++ {
						rowBase := inBase + (oh*p.K+kh)*w + ow*p.K
						for kw := 0; kw < p.K; kw++ {
							s += x.Data[rowBase+kw]
						}
					}
					y.Data[outBase+oh*outW+ow] = s * inv
				}
			}
		}
	}
	if train {
		p.inShape = x.AppendShape(p.inShape[:0])
	}
	return y
}

// Backward implements Layer: each input in a window receives 1/K² of the
// window's output gradient.
func (p *AvgPool2D) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if p.inShape == nil {
		panic("nn: AvgPool2D.Backward called before training-mode Forward")
	}
	n, c, h, w := p.inShape[0], p.inShape[1], p.inShape[2], p.inShape[3]
	outH, outW := h/p.K, w/p.K
	dx := p.ws.dx.Ensure(p.inShape...)
	dx.Zero()
	inv := 1 / float64(p.K*p.K)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			inBase := (i*c + ch) * h * w
			outBase := (i*c + ch) * outH * outW
			for oh := 0; oh < outH; oh++ {
				for ow := 0; ow < outW; ow++ {
					g := dy.Data[outBase+oh*outW+ow] * inv
					for kh := 0; kh < p.K; kh++ {
						rowBase := inBase + (oh*p.K+kh)*w + ow*p.K
						for kw := 0; kw < p.K; kw++ {
							dx.Data[rowBase+kw] += g
						}
					}
				}
			}
		}
	}
	return dx
}

// Params implements Layer (none).
func (p *AvgPool2D) Params() []*tensor.Tensor { return nil }

// Grads implements Layer (none).
func (p *AvgPool2D) Grads() []*tensor.Tensor { return nil }

// OutShape implements Layer.
func (p *AvgPool2D) OutShape(in []int) []int {
	if len(in) != 3 || in[1] < p.K || in[2] < p.K {
		panic(fmt.Sprintf("nn: %s cannot follow per-sample shape %v", p.Name(), in))
	}
	return []int{in[0], in[1] / p.K, in[2] / p.K}
}

// FwdFLOPs implements Layer: one add per window element plus the scale.
func (p *AvgPool2D) FwdFLOPs(in []int) int64 {
	out := p.OutShape(in)
	return int64(prod(out)) * (int64(p.K)*int64(p.K) + 1)
}
