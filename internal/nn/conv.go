package nn

import (
	"fmt"
	"math/rand"

	"gsfl/internal/parallel"
	"gsfl/internal/tensor"
)

// Conv2D is a 2-D convolution over NCHW inputs, implemented as implicit
// GEMM: the forward product W @ im2col(x) and the weight-gradient
// product dy @ im2col(x)ᵀ run on tensor's fused convolution kernels,
// whose packing routines read the image directly through the im2col
// index map — the column matrix is never materialized. Weights have
// shape (outC, inC*KH*KW); bias is (outC).
//
// The forward pass runs one fused kernel per sample with samples
// partitioned across the parallel worker pool; each sample writes a
// disjoint slice of the output, so results are bit-identical to the
// serial loop. The backward pass parallelizes the per-sample
// column-gradient matmuls (dcol = Wᵀ @ dy, still materialized because
// tensor.Col2ImBatch scatters it back to image space) the same way, but
// accumulates dW and db serially in sample order to keep gradient
// summation order — and hence training numerics — exactly equal to a
// single-worker run.
//
// All batch-shaped buffers (output, gradients) live in a lazily-sized
// workspace, as do the per-sample tensor headers the parallel kernels
// address them through and the two loop bodies handed to parallel.For,
// so steady-state Forward/Backward calls allocate nothing.
type Conv2D struct {
	InC, OutC int
	KH, KW    int
	Stride    int
	Pad       int

	w, b   *tensor.Tensor
	dw, db *tensor.Tensor

	// Cached from the training-mode forward pass.
	x    *tensor.Tensor // input batch (N,C,H,W)
	geom tensor.ConvGeom

	ws convWorkspace
}

// convWorkspace is Conv2D's reusable buffer set plus the per-call
// geometry the stored parallel-loop bodies read.
type convWorkspace struct {
	out   tensor.Tensor // forward output (N, outC, outH, outW)
	dcols tensor.Tensor // batched column gradients
	dx    tensor.Tensor // input gradient (N, C, H, W)
	dwT   tensor.Tensor // one sample's weight-gradient staging buffer

	// Per-sample headers aliasing slices of the batched buffers; sample i
	// only ever touches index i, so the parallel loops stay disjoint.
	outV, dyV, dcolV []tensor.Tensor

	// Loop bodies handed to parallel.For, built once so the hot path does
	// not re-create (and so re-allocate) closures every call.
	fwdBody, bwdBody func(lo, hi int)

	// Per-call parameters for the stored bodies.
	spatial, colRows, colSize, imgSize int
	geom                               tensor.ConvGeom
	x, dy                              *tensor.Tensor
}

// growHeaders returns hs with at least n zero-value tensor headers.
func growHeaders(hs []tensor.Tensor, n int) []tensor.Tensor {
	if cap(hs) < n {
		return make([]tensor.Tensor, n)
	}
	return hs[:n]
}

// NewConv2D constructs a Conv2D layer with He initialization. Stride and
// padding apply symmetrically to both spatial dimensions.
func NewConv2D(rng *rand.Rand, inC, outC, k, stride, pad int) *Conv2D {
	if inC <= 0 || outC <= 0 || k <= 0 || stride <= 0 || pad < 0 {
		panic(fmt.Sprintf("nn: bad Conv2D config inC=%d outC=%d k=%d stride=%d pad=%d", inC, outC, k, stride, pad))
	}
	fanIn := inC * k * k
	c := &Conv2D{
		InC: inC, OutC: outC, KH: k, KW: k, Stride: stride, Pad: pad,
		w:  tensor.New(outC, fanIn).HeInit(rng, fanIn),
		b:  tensor.New(outC),
		dw: tensor.New(outC, fanIn),
		db: tensor.New(outC),
	}
	c.ws.fwdBody = c.forwardSamples
	c.ws.bwdBody = c.backwardSamples
	return c
}

// Name implements Layer.
func (c *Conv2D) Name() string {
	return fmt.Sprintf("conv2d(%d->%d,k%d,s%d,p%d)", c.InC, c.OutC, c.KH, c.Stride, c.Pad)
}

func (c *Conv2D) geomFor(x *tensor.Tensor) tensor.ConvGeom {
	g := tensor.ConvGeom{
		InC: c.InC, InH: x.Dim(2), InW: x.Dim(3),
		KH: c.KH, KW: c.KW,
		StrideH: c.Stride, StrideW: c.Stride,
		PadH: c.Pad, PadW: c.Pad,
	}
	if err := g.Validate(); err != nil {
		panic(err)
	}
	return g
}

// forwardSamples computes output samples [lo, hi): one fused
// W @ im2col(x_i) kernel per sample, written straight into the batched
// output, plus the bias add.
func (c *Conv2D) forwardSamples(lo, hi int) {
	ws := &c.ws
	spatial, imgSize := ws.spatial, ws.imgSize
	outSize := c.OutC * spatial
	for i := lo; i < hi; i++ {
		img := ws.x.Data[i*imgSize : (i+1)*imgSize]
		// (outC × colRows) @ im2col -> (outC × spatial), column matrix
		// read implicitly from the image.
		out := ws.outV[i].SliceViewOf(&ws.out, i*outSize, (i+1)*outSize, c.OutC, spatial)
		tensor.ConvMatMulInto(out, c.w, img, ws.geom)
		for oc := 0; oc < c.OutC; oc++ {
			bias := c.b.Data[oc]
			row := out.Data[oc*spatial : (oc+1)*spatial]
			for j := range row {
				row[j] += bias
			}
		}
	}
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	mustRank(c, x, 4)
	if x.Dim(1) != c.InC {
		panic(fmt.Sprintf("nn: %s got %d input channels", c.Name(), x.Dim(1)))
	}
	g := c.geomFor(x)
	n, outH, outW := x.Dim(0), g.OutH(), g.OutW()
	ws := &c.ws
	ws.spatial = outH * outW
	ws.colRows = c.InC * c.KH * c.KW
	ws.colSize = g.ColSize()
	ws.imgSize = g.ImageSize()
	ws.geom = g
	ws.x = x

	y := ws.out.Ensure(n, c.OutC, outH, outW)
	if train {
		c.x = x
		c.geom = g
	}
	ws.outV = growHeaders(ws.outV, n)
	parallel.For(n, 1, ws.fwdBody)
	ws.x = nil
	return y
}

// backwardSamples computes the column gradients of samples [lo, hi):
// dcol_i = Wᵀ @ dy_i, written straight into the batched buffer.
func (c *Conv2D) backwardSamples(lo, hi int) {
	ws := &c.ws
	spatial, colRows, colSize := ws.spatial, ws.colRows, ws.colSize
	outSize := c.OutC * spatial
	for i := lo; i < hi; i++ {
		dyMat := ws.dyV[i].SliceViewOf(ws.dy, i*outSize, (i+1)*outSize, c.OutC, spatial)
		dcol := ws.dcolV[i].SliceViewOf(&ws.dcols, i*colSize, (i+1)*colSize, colRows, spatial)
		tensor.MatMulTransAIntoOp("Conv2D backward dcol=Wᵀ@dy", dcol, c.w, dyMat)
	}
}

// Backward implements Layer.
func (c *Conv2D) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if c.x == nil {
		panic("nn: Conv2D.Backward called before training-mode Forward")
	}
	g := c.geom
	n := c.x.Dim(0)
	ws := &c.ws
	// Sizes come from the cached training geometry, not from whatever the
	// last Forward left behind. (The column *contents* still require that
	// no other Forward ran since the matching training pass — the
	// package-level buffer-ownership rule.)
	ws.spatial = g.OutH() * g.OutW()
	ws.colRows = c.InC * c.KH * c.KW
	ws.colSize = g.ColSize()
	ws.imgSize = g.ImageSize()
	spatial, colRows, imgSize := ws.spatial, ws.colRows, ws.imgSize
	outSize := c.OutC * spatial

	// dcol_i = Wᵀ @ dy_i for every sample, then one batched scatter back
	// to image space. Both phases write disjoint per-sample regions.
	ws.dcols.Ensure(n, colRows, spatial)
	ws.dyV = growHeaders(ws.dyV, n)
	ws.dcolV = growHeaders(ws.dcolV, n)
	ws.dy = dy
	parallel.For(n, 1, ws.bwdBody)
	ws.dy = nil
	dx := ws.dx.Ensure(n, c.InC, g.InH, g.InW)
	dx.Zero()
	tensor.Col2ImBatch(dx.Data, ws.dcols.Data, n, g)

	// Weight/bias gradients accumulate serially in sample order (the
	// per-sample matmul itself is row-parallel) so the floating-point
	// summation order matches the serial implementation bit for bit.
	dwT := ws.dwT.Ensure(c.OutC, colRows)
	for i := 0; i < n; i++ {
		dyMat := ws.dyV[i].SliceViewOf(dy, i*outSize, (i+1)*outSize, c.OutC, spatial)
		img := c.x.Data[i*imgSize : (i+1)*imgSize]
		// dW += dy_mat @ im2col(x_i)ᵀ (columns read implicitly from the
		// cached input); db += row sums of dy_mat.
		c.dw.AddInPlace(tensor.ConvMatMulTransBInto(dwT, dyMat, img, g))
		for oc := 0; oc < c.OutC; oc++ {
			s := 0.0
			for _, v := range dyMat.Row(oc) {
				s += v
			}
			c.db.Data[oc] += s
		}
	}
	return dx
}

// Params implements Layer.
func (c *Conv2D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.w, c.b} }

// Grads implements Layer.
func (c *Conv2D) Grads() []*tensor.Tensor { return []*tensor.Tensor{c.dw, c.db} }

// OutShape implements Layer.
func (c *Conv2D) OutShape(in []int) []int {
	if len(in) != 3 || in[0] != c.InC {
		panic(fmt.Sprintf("nn: %s cannot follow per-sample shape %v", c.Name(), in))
	}
	g := tensor.ConvGeom{
		InC: c.InC, InH: in[1], InW: in[2],
		KH: c.KH, KW: c.KW, StrideH: c.Stride, StrideW: c.Stride,
		PadH: c.Pad, PadW: c.Pad,
	}
	if err := g.Validate(); err != nil {
		panic(err)
	}
	return []int{c.OutC, g.OutH(), g.OutW()}
}

// FwdFLOPs implements Layer: 2*K²*inC multiply-adds per output element.
func (c *Conv2D) FwdFLOPs(in []int) int64 {
	out := c.OutShape(in)
	perOut := 2 * int64(c.InC) * int64(c.KH) * int64(c.KW)
	return perOut * int64(prod(out))
}
