package nn

import (
	"fmt"
	"math/rand"

	"gsfl/internal/parallel"
	"gsfl/internal/tensor"
)

// Conv2D is a 2-D convolution over NCHW inputs, implemented as im2col +
// matrix multiply. Weights have shape (outC, inC*KH*KW); bias is (outC).
//
// The forward pass unrolls the whole batch with tensor.Im2ColBatch and
// then runs the per-sample weight matmuls with samples partitioned across
// the parallel worker pool; each sample writes a disjoint slice of the
// output, so results are bit-identical to the serial loop. The backward
// pass parallelizes the per-sample column-gradient matmuls and the
// tensor.Col2ImBatch scatter the same way, but accumulates dW and db
// serially in sample order to keep gradient summation order — and hence
// training numerics — exactly equal to a single-worker run.
type Conv2D struct {
	InC, OutC int
	KH, KW    int
	Stride    int
	Pad       int

	w, b   *tensor.Tensor
	dw, db *tensor.Tensor

	// Cached from the training-mode forward pass.
	x    *tensor.Tensor // input batch (N,C,H,W)
	cols *tensor.Tensor // batched im2col matrices (N, colRows, outH*outW)
	geom tensor.ConvGeom
}

// NewConv2D constructs a Conv2D layer with He initialization. Stride and
// padding apply symmetrically to both spatial dimensions.
func NewConv2D(rng *rand.Rand, inC, outC, k, stride, pad int) *Conv2D {
	if inC <= 0 || outC <= 0 || k <= 0 || stride <= 0 || pad < 0 {
		panic(fmt.Sprintf("nn: bad Conv2D config inC=%d outC=%d k=%d stride=%d pad=%d", inC, outC, k, stride, pad))
	}
	fanIn := inC * k * k
	return &Conv2D{
		InC: inC, OutC: outC, KH: k, KW: k, Stride: stride, Pad: pad,
		w:  tensor.New(outC, fanIn).HeInit(rng, fanIn),
		b:  tensor.New(outC),
		dw: tensor.New(outC, fanIn),
		db: tensor.New(outC),
	}
}

// Name implements Layer.
func (c *Conv2D) Name() string {
	return fmt.Sprintf("conv2d(%d->%d,k%d,s%d,p%d)", c.InC, c.OutC, c.KH, c.Stride, c.Pad)
}

func (c *Conv2D) geomFor(x *tensor.Tensor) tensor.ConvGeom {
	g := tensor.ConvGeom{
		InC: c.InC, InH: x.Dim(2), InW: x.Dim(3),
		KH: c.KH, KW: c.KW,
		StrideH: c.Stride, StrideW: c.Stride,
		PadH: c.Pad, PadW: c.Pad,
	}
	if err := g.Validate(); err != nil {
		panic(err)
	}
	return g
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	mustRank(c.Name(), x, 4)
	if x.Dim(1) != c.InC {
		panic(fmt.Sprintf("nn: %s got %d input channels", c.Name(), x.Dim(1)))
	}
	g := c.geomFor(x)
	n, outH, outW := x.Dim(0), g.OutH(), g.OutW()
	cols := outH * outW
	colRows := c.InC * c.KH * c.KW
	colSize := g.ColSize()

	colT := tensor.New(n, colRows, cols)
	tensor.Im2ColBatch(colT.Data, x.Data, n, g)

	y := tensor.New(n, c.OutC, outH, outW)
	if train {
		c.x = x
		c.geom = g
		c.cols = colT
	}
	parallel.For(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			col := tensor.FromSlice(colT.Data[i*colSize:(i+1)*colSize], colRows, cols)
			// (outC × colRows) @ (colRows × cols) -> (outC × cols)
			out := tensor.MatMul(c.w, col)
			base := i * c.OutC * cols
			for oc := 0; oc < c.OutC; oc++ {
				bias := c.b.Data[oc]
				dst := y.Data[base+oc*cols : base+(oc+1)*cols]
				src := out.Data[oc*cols : (oc+1)*cols]
				for j, v := range src {
					dst[j] = v + bias
				}
			}
		}
	})
	return y
}

// Backward implements Layer.
func (c *Conv2D) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if c.x == nil {
		panic("nn: Conv2D.Backward called before training-mode Forward")
	}
	g := c.geom
	n, outH, outW := c.x.Dim(0), g.OutH(), g.OutW()
	cols := outH * outW
	colRows := c.InC * c.KH * c.KW
	colSize := g.ColSize()

	// dcol_i = Wᵀ @ dy_i for every sample, then one batched scatter back
	// to image space. Both phases write disjoint per-sample regions.
	dcolT := tensor.New(n, colRows, cols)
	parallel.For(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			base := i * c.OutC * cols
			dyMat := tensor.FromSlice(dy.Data[base:base+c.OutC*cols], c.OutC, cols)
			dcol := tensor.FromSlice(dcolT.Data[i*colSize:(i+1)*colSize], colRows, cols)
			tensor.MatMulTransAInto(dcol, c.w, dyMat)
		}
	})
	dx := tensor.New(n, c.InC, g.InH, g.InW)
	tensor.Col2ImBatch(dx.Data, dcolT.Data, n, g)

	// Weight/bias gradients accumulate serially in sample order (the
	// per-sample matmul itself is row-parallel) so the floating-point
	// summation order matches the serial implementation bit for bit.
	for i := 0; i < n; i++ {
		base := i * c.OutC * cols
		dyMat := tensor.FromSlice(dy.Data[base:base+c.OutC*cols], c.OutC, cols)
		colMat := tensor.FromSlice(c.cols.Data[i*colSize:(i+1)*colSize], colRows, cols)
		// dW += dy_mat @ colᵀ ; db += row sums of dy_mat.
		c.dw.AddInPlace(tensor.MatMulTransB(dyMat, colMat))
		for oc := 0; oc < c.OutC; oc++ {
			s := 0.0
			for _, v := range dyMat.Row(oc) {
				s += v
			}
			c.db.Data[oc] += s
		}
	}
	return dx
}

// Params implements Layer.
func (c *Conv2D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.w, c.b} }

// Grads implements Layer.
func (c *Conv2D) Grads() []*tensor.Tensor { return []*tensor.Tensor{c.dw, c.db} }

// OutShape implements Layer.
func (c *Conv2D) OutShape(in []int) []int {
	if len(in) != 3 || in[0] != c.InC {
		panic(fmt.Sprintf("nn: %s cannot follow per-sample shape %v", c.Name(), in))
	}
	g := tensor.ConvGeom{
		InC: c.InC, InH: in[1], InW: in[2],
		KH: c.KH, KW: c.KW, StrideH: c.Stride, StrideW: c.Stride,
		PadH: c.Pad, PadW: c.Pad,
	}
	if err := g.Validate(); err != nil {
		panic(err)
	}
	return []int{c.OutC, g.OutH(), g.OutW()}
}

// FwdFLOPs implements Layer: 2*K²*inC multiply-adds per output element.
func (c *Conv2D) FwdFLOPs(in []int) int64 {
	out := c.OutShape(in)
	perOut := 2 * int64(c.InC) * int64(c.KH) * int64(c.KW)
	return perOut * int64(prod(out))
}
