// Package popbench measures the population engine at deployment scale —
// a 1,000,000-member population sampled a few hundred members per
// round — and writes the memory footprint and per-round costs to a JSON
// file (BENCH_pop.json at the repo root). The report is the bounded-
// memory proof for the record-array design: the population's resident
// storage is a few dozen bytes per member regardless of how many rounds
// run, and the steady-state sampling path allocates nothing. The public
// entry point is sweep.WritePopulationBench (what gsfl-bench -benchpop
// calls).
package popbench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"gsfl/internal/experiment"
	"gsfl/internal/parallel"
	"gsfl/internal/schemes"
)

// Budget bounds the population's resident record storage at the
// benchmark scale. 1M members at the ~30 B/member record layout plus
// the event queue lands near 46 MiB; the budget leaves headroom without
// tolerating a per-member pointer (8 more bytes per member would blow
// it).
const (
	BudgetBytes     = 64 << 20
	BudgetPerMember = 64.0
)

// Measurement is one measured operation (hotbench's shape, so the two
// bench artifacts read alike).
type Measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Iters       int     `json:"iters"`
}

// Report is the full -benchpop artifact.
type Report struct {
	Label     string `json:"label,omitempty"`
	Generated string `json:"generated"`
	Spec      string `json:"spec"`
	// Members/Slots/Cohort are the population geometry under test.
	Members int `json:"members"`
	Slots   int `json:"slots"`
	Cohort  int `json:"cohort"`
	// BuildSeconds is the one-time cost of materializing the world,
	// population records and availability event queue included.
	BuildSeconds float64 `json:"build_seconds"`
	// PopMemoryBytes is the population's resident record storage (the
	// quantity BudgetBytes bounds); BytesPerMember divides it out.
	PopMemoryBytes int64   `json:"pop_memory_bytes"`
	BytesPerMember float64 `json:"bytes_per_member"`
	// HeapAllocMB is the process heap after the build, for context.
	HeapAllocMB float64                `json:"heap_alloc_mb"`
	Results     map[string]Measurement `json:"results"`
}

// measureOp times f over iters iterations after warmup warm-up calls
// and reports per-iteration wall time and heap traffic.
func measureOp(warmup, iters int, f func()) Measurement {
	for i := 0; i < warmup; i++ {
		f()
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < iters; i++ {
		f()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	n := float64(iters)
	return Measurement{
		NsPerOp:     float64(elapsed.Nanoseconds()) / n,
		BytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / n,
		AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / n,
		Iters:       iters,
	}
}

// benchSpec is the deployment-scale configuration: a million-member
// churning, profile-mixed population feeding 200 client slots, with a
// deliberately small model so the measurement isolates the population
// engine rather than the tensor kernels.
func benchSpec() experiment.Spec {
	spec := experiment.TestSpec()
	spec.Clients = 200
	spec.Groups = 20
	spec.Arch = "mlp"
	spec.ImageSize = 8
	spec.TrainPerClient = 32
	spec.TestPerClass = 2
	spec.Hyper.Batch = 8
	spec.Hyper.StepsPerClient = 1
	spec.Device.N = spec.Clients
	spec.Population = 1_000_000
	spec.SampleFraction = 0.0002 // cohort 200 = every slot
	spec.AvailTrace = "onoff"
	spec.DeviceProfileMix = "low-end:0.25,baseline:0.5,high-end:0.25"
	return spec
}

// popView is the introspection surface the benchmark needs from the
// cohort attached to the world (implemented by pop.Population).
type popView interface {
	BeginRound(round int) ([]schemes.SlotBinding, error)
	MemoryBytes() int64
	Members() int
	CohortTarget() int
}

// Write produces the population-scale report and writes it to path. It
// fails — rather than recording a regression — when the population's
// resident storage exceeds the byte budgets, so CI can gate on the
// exit code alone.
func Write(path, label string) error {
	parallel.SetWorkers(1)
	defer parallel.SetWorkers(0)

	spec := benchSpec()
	report := &Report{
		Label:     label,
		Generated: time.Now().UTC().Format(time.RFC3339),
		Spec: fmt.Sprintf("gsfl population: %d members, %d slots, cohort %d, onoff trace, mixed profiles, mlp %dpx",
			spec.Population, spec.Clients, spec.CohortSize(), spec.ImageSize),
		Results: map[string]Measurement{},
	}

	// One-time build: dataset shards, fleet, channel, and the population
	// records plus their availability event queue.
	start := time.Now()
	world, err := experiment.Build(spec)
	if err != nil {
		return err
	}
	report.BuildSeconds = time.Since(start).Seconds()
	pv, ok := world.Pop.(popView)
	if !ok {
		return fmt.Errorf("popbench: the bench spec did not attach a population")
	}
	report.Members = pv.Members()
	report.Slots = spec.Clients
	report.Cohort = pv.CohortTarget()
	report.PopMemoryBytes = pv.MemoryBytes()
	report.BytesPerMember = float64(report.PopMemoryBytes) / float64(report.Members)
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	report.HeapAllocMB = float64(ms.HeapAlloc) / (1 << 20)

	// Steady-state sampling: advance the availability clock and draw one
	// cohort per round. This consumes the world's round counter, so the
	// trainer below gets a fresh build. The record-array contract is
	// allocs/op ≈ 0 here.
	round := 0
	report.Results["begin_round"] = measureOp(20, 200, func() {
		round++
		if _, err := pv.BeginRound(round); err != nil {
			panic(err)
		}
	})

	// Full GSFL rounds over a fresh million-member world: sampling,
	// loader re-pointing, grouping, split training, aggregation.
	tr, err := experiment.NewTrainer(spec, "gsfl")
	if err != nil {
		return err
	}
	ctx := context.Background()
	report.Results["gsfl_round"] = measureOp(1, 4, func() {
		if _, err := tr.Round(ctx); err != nil {
			panic(err)
		}
	})

	// The memory bound is the artifact's reason to exist; enforce it.
	if report.PopMemoryBytes > BudgetBytes {
		return fmt.Errorf("popbench: population storage %d bytes exceeds the %d-byte budget", report.PopMemoryBytes, int64(BudgetBytes))
	}
	if report.BytesPerMember > BudgetPerMember {
		return fmt.Errorf("popbench: %.1f bytes/member exceeds the %.0f-byte budget", report.BytesPerMember, BudgetPerMember)
	}

	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("benchpop: wrote %s\n", path)
	fmt.Printf("  members=%d cohort=%d storage=%.1fMiB (%.1f B/member) build=%.2fs\n",
		report.Members, report.Cohort, float64(report.PopMemoryBytes)/(1<<20),
		report.BytesPerMember, report.BuildSeconds)
	for _, name := range []string{"begin_round", "gsfl_round"} {
		m := report.Results[name]
		fmt.Printf("  %-12s %12.0f ns/op %12.0f B/op %10.1f allocs/op\n",
			name, m.NsPerOp, m.BytesPerOp, m.AllocsPerOp)
	}
	return nil
}
