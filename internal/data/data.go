// Package data defines the dataset and mini-batch loading abstractions
// shared by every training scheme and dataset generator.
package data

import (
	"fmt"
	"math/rand"

	"gsfl/internal/tensor"
)

// Dataset is an indexable collection of labelled samples. Sample returns
// the flattened feature vector (the caller shapes it per the model's
// input shape) and the class label.
type Dataset interface {
	// Len returns the number of samples.
	Len() int
	// Sample returns the features and label of sample i. The returned
	// slice must not be mutated by the caller.
	Sample(i int) (features []float64, label int)
	// Classes returns the number of distinct labels.
	Classes() int
}

// InMemory is a Dataset backed by slices; the workhorse implementation
// that generators and Subset produce.
type InMemory struct {
	X      [][]float64
	Y      []int
	NumCls int
}

// NewInMemory validates and wraps the given samples.
func NewInMemory(x [][]float64, y []int, classes int) *InMemory {
	if len(x) != len(y) {
		panic(fmt.Sprintf("data: %d feature rows vs %d labels", len(x), len(y)))
	}
	if classes <= 0 {
		panic(fmt.Sprintf("data: classes must be positive, got %d", classes))
	}
	for i, label := range y {
		if label < 0 || label >= classes {
			panic(fmt.Sprintf("data: label %d at index %d outside [0,%d)", label, i, classes))
		}
	}
	return &InMemory{X: x, Y: y, NumCls: classes}
}

// Len implements Dataset.
func (d *InMemory) Len() int { return len(d.X) }

// Sample implements Dataset.
func (d *InMemory) Sample(i int) ([]float64, int) { return d.X[i], d.Y[i] }

// Classes implements Dataset.
func (d *InMemory) Classes() int { return d.NumCls }

// Subset is a view of a Dataset through an index list; partitioning
// produces one per client without copying features.
type Subset struct {
	Base    Dataset
	Indices []int
}

// NewSubset wraps base restricted to the given indices.
func NewSubset(base Dataset, indices []int) *Subset {
	for _, ix := range indices {
		if ix < 0 || ix >= base.Len() {
			panic(fmt.Sprintf("data: subset index %d outside [0,%d)", ix, base.Len()))
		}
	}
	return &Subset{Base: base, Indices: indices}
}

// Len implements Dataset.
func (s *Subset) Len() int { return len(s.Indices) }

// Sample implements Dataset.
func (s *Subset) Sample(i int) ([]float64, int) { return s.Base.Sample(s.Indices[i]) }

// Classes implements Dataset.
func (s *Subset) Classes() int { return s.Base.Classes() }

// Batch is one mini-batch: features stacked into a tensor of shape
// (n, inShape...) plus the label slice.
type Batch struct {
	X *tensor.Tensor
	Y []int
}

// Loader draws mini-batches from a Dataset, reshuffling each epoch.
// It is deterministic given its RNG and single-goroutine by design; each
// client owns its own Loader.
type Loader struct {
	ds      Dataset
	batch   int
	inShape []int
	rng     *rand.Rand
	order   []int
	pos     int
	// epoch counts reshuffles; together with pos it is the loader's
	// complete checkpointable state (see LoaderState).
	epoch int
	// shapeScratch is the reusable (batch, inShape...) shape buffer
	// NextInto sizes destination tensors with.
	shapeScratch []int
	// src is the reseedable source behind rng for loaders that go
	// through Reset; nil for loaders constructed around a caller-owned
	// RNG that never reset.
	src rand.Source
}

// NewLoader constructs a Loader producing batches of the given size with
// per-sample shape inShape. A final short batch is emitted at epoch end
// if the dataset size is not divisible by the batch size.
func NewLoader(ds Dataset, batch int, inShape []int, rng *rand.Rand) *Loader {
	if batch <= 0 {
		panic(fmt.Sprintf("data: batch size must be positive, got %d", batch))
	}
	if ds.Len() == 0 {
		panic("data: empty dataset")
	}
	per := 1
	for _, d := range inShape {
		per *= d
	}
	if f, _ := ds.Sample(0); len(f) != per {
		panic(fmt.Sprintf("data: sample has %d features, shape %v needs %d", len(f), inShape, per))
	}
	l := &Loader{ds: ds, batch: batch, inShape: inShape, rng: rng}
	l.reshuffle()
	return l
}

// Reset re-points the loader at ds and restarts it on a fresh RNG
// stream seeded with seed, as if newly constructed. The population
// layer calls it once per sampled slot per round to mount a member's
// data shard, so it reuses the loader's order buffer and (after the
// first call) its RNG allocation: steady-state resets are
// allocation-free as long as ds.Len() never exceeds a previously seen
// length. The per-sample feature width must match the loader's shape.
func (l *Loader) Reset(ds Dataset, seed int64) {
	if ds.Len() == 0 {
		panic("data: empty dataset")
	}
	per := 1
	for _, d := range l.inShape {
		per *= d
	}
	if f, _ := ds.Sample(0); len(f) != per {
		panic(fmt.Sprintf("data: sample has %d features, shape %v needs %d", len(f), l.inShape, per))
	}
	l.ds = ds
	if l.src == nil {
		l.src = rand.NewSource(seed)
		l.rng = rand.New(l.src)
	} else {
		l.src.Seed(seed)
	}
	n := ds.Len()
	if cap(l.order) < n {
		l.order = make([]int, n)
	} else {
		l.order = l.order[:n]
	}
	for i := range l.order {
		l.order[i] = i
	}
	l.epoch = 0
	l.reshuffle()
}

func (l *Loader) reshuffle() {
	if l.order == nil {
		l.order = make([]int, l.ds.Len())
		for i := range l.order {
			l.order[i] = i
		}
	}
	l.rng.Shuffle(len(l.order), func(i, j int) { l.order[i], l.order[j] = l.order[j], l.order[i] })
	l.pos = 0
	l.epoch++
}

// LoaderState is a Loader's complete mutable state: because the shuffle
// order of epoch k is a pure function of the loader's RNG seed and k,
// (epoch, position) fully determine both the current order and the RNG
// stream position. Plain exported fields keep it gob-serializable.
type LoaderState struct {
	Epoch int
	Pos   int
}

// State captures the loader for checkpointing.
func (l *Loader) State() LoaderState {
	return LoaderState{Epoch: l.epoch, Pos: l.pos}
}

// Restore fast-forwards a freshly constructed loader (same dataset,
// batch size, and RNG seed) to a state captured by State, replaying the
// intermediate reshuffles so the permutation and the RNG stream land
// exactly where the original run left them.
func (l *Loader) Restore(st LoaderState) error {
	if st.Epoch < l.epoch {
		return fmt.Errorf("data: cannot rewind loader from epoch %d to %d", l.epoch, st.Epoch)
	}
	if st.Pos < 0 || st.Pos > len(l.order) {
		return fmt.Errorf("data: loader position %d outside [0,%d]", st.Pos, len(l.order))
	}
	for l.epoch < st.Epoch {
		l.reshuffle()
	}
	l.pos = st.Pos
	return nil
}

// Next returns the next mini-batch as freshly allocated buffers,
// starting a new shuffled epoch when the current one is exhausted.
// Training hot loops use NextInto instead.
func (l *Loader) Next() Batch {
	var b Batch
	l.NextInto(&b)
	return b
}

// NextInto fills b with the next mini-batch, reusing b's feature tensor
// and label slice (they are allocated on first use and grown as needed).
// The batch contents are valid until the next NextInto call with the
// same b; training loops that fully consume each batch before drawing
// the next — every scheme in this repository — therefore draw batches
// allocation-free after warmup. The sample draw order is identical to
// Next, so training numerics do not depend on which variant is used.
func (l *Loader) NextInto(b *Batch) {
	if l.pos >= len(l.order) {
		l.reshuffle()
	}
	end := l.pos + l.batch
	if end > len(l.order) {
		end = len(l.order)
	}
	idx := l.order[l.pos:end]
	l.pos = end

	n := len(idx)
	l.shapeScratch = append(append(l.shapeScratch[:0], n), l.inShape...)
	if b.X == nil {
		b.X = &tensor.Tensor{}
	}
	x := b.X.Ensure(l.shapeScratch...)
	if cap(b.Y) < n {
		b.Y = make([]int, n)
	} else {
		b.Y = b.Y[:n]
	}
	per := x.Size() / n
	for bi, si := range idx {
		f, label := l.ds.Sample(si)
		if len(f) != per {
			// Fail fast: the reused batch tensor is not zero-filled, so a
			// short row would otherwise silently expose the previous
			// batch's values. (NewLoader validates only Sample(0).)
			panic(fmt.Sprintf("data: sample %d has %d features, want %d", si, len(f), per))
		}
		copy(x.Data[bi*per:(bi+1)*per], f)
		b.Y[bi] = label
	}
}

// StepsPerEpoch returns how many batches one epoch yields.
func (l *Loader) StepsPerEpoch() int {
	return (l.ds.Len() + l.batch - 1) / l.batch
}

// All materializes the entire dataset as one batch, in index order.
// Used for evaluation.
func All(ds Dataset, inShape []int) Batch {
	n := ds.Len()
	shape := append([]int{n}, inShape...)
	x := tensor.New(shape...)
	y := make([]int, n)
	per := x.Size() / n
	for i := 0; i < n; i++ {
		f, label := ds.Sample(i)
		copy(x.Data[i*per:(i+1)*per], f)
		y[i] = label
	}
	return Batch{X: x, Y: y}
}

// ClassHistogram counts samples per class.
func ClassHistogram(ds Dataset) []int {
	h := make([]int, ds.Classes())
	for i := 0; i < ds.Len(); i++ {
		_, y := ds.Sample(i)
		h[y]++
	}
	return h
}
