package data

import (
	"fmt"
	"sort"
	"sync"
)

// SourceConfig parameterizes a registered dataset generator.
type SourceConfig struct {
	// ImageSize is the square image edge length in pixels (generator
	// interpretation for non-image sources).
	ImageSize int
	// Seed derives all of the source's randomness; equal configs produce
	// bit-identical samples.
	Seed int64
	// Options carries generator-specific knobs by name (e.g. the
	// synthetic-GTSRB "noise_std"); generators ignore unknown keys. Nil
	// means all defaults.
	Options map[string]float64
}

// Source is one instantiated dataset generator: a deterministic,
// class-conditional sample stream plus the bulk constructors the
// environment builder uses. Sources are cheap to construct; Build makes
// a fresh one per use so derived seeds stay independent.
type Source interface {
	// InShape is the per-sample feature tensor shape.
	InShape() []int
	// Classes is the number of distinct labels.
	Classes() int
	// Sample draws one sample of the given class (features, label).
	Sample(class int) ([]float64, int)
	// Pool draws n samples with the generator's natural class mix.
	Pool(n int) *InMemory
	// Balanced draws perClass samples of every class, in class order.
	Balanced(perClass int) *InMemory
}

// SourceFactory instantiates a generator from a configuration,
// validating it eagerly (bad sizes return errors, not panics).
type SourceFactory func(cfg SourceConfig) (Source, error)

var (
	sourceMu     sync.RWMutex
	sourceByName = map[string]SourceFactory{}
)

// RegisterSource adds a dataset generator factory under its name,
// making it resolvable by NewSource and usable by name in experiment
// specs and grid files. It panics on an empty name, a nil factory, or a
// duplicate name — programmer errors at init time. The built-in
// generator (synthetic GTSRB) registers itself; call this only for
// out-of-tree datasets.
func RegisterSource(name string, f SourceFactory) {
	if name == "" {
		panic("data: RegisterSource with empty name")
	}
	if f == nil {
		panic(fmt.Sprintf("data: RegisterSource(%q) with nil factory", name))
	}
	sourceMu.Lock()
	defer sourceMu.Unlock()
	if _, dup := sourceByName[name]; dup {
		panic(fmt.Sprintf("data: dataset %q registered twice", name))
	}
	sourceByName[name] = f
}

// SourceNames returns the registered dataset names in sorted order.
func SourceNames() []string {
	sourceMu.RLock()
	defer sourceMu.RUnlock()
	out := make([]string, 0, len(sourceByName))
	for name := range sourceByName {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// NewSource instantiates the named dataset generator — the single
// name-to-dataset resolution path.
func NewSource(name string, cfg SourceConfig) (Source, error) {
	sourceMu.RLock()
	f, ok := sourceByName[name]
	sourceMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("data: unknown dataset %q (registered: %v)", name, SourceNames())
	}
	return f(cfg)
}
