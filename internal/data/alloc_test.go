package data

import (
	"math/rand"
	"testing"

	"gsfl/internal/testutil"
)

// TestNextIntoMatchesNext pins the reusable-batch loader variant to the
// allocating one: two loaders with identical seeds must produce the same
// sample sequence whichever drawing method is used, including across
// epoch boundaries and the short final batch.
func TestNextIntoMatchesNext(t *testing.T) {
	ds := tinyDataset(10, 3)
	a := NewLoader(ds, 4, []int{2}, rand.New(rand.NewSource(5)))
	b := NewLoader(ds, 4, []int{2}, rand.New(rand.NewSource(5)))
	var reused Batch
	for i := 0; i < 9; i++ { // 3 epochs of 3 batches
		want := a.Next()
		b.NextInto(&reused)
		if len(want.Y) != len(reused.Y) {
			t.Fatalf("batch %d: sizes %d vs %d", i, len(want.Y), len(reused.Y))
		}
		for j := range want.Y {
			if want.Y[j] != reused.Y[j] || want.X.Data[j*2] != reused.X.Data[j*2] {
				t.Fatalf("batch %d diverged between Next and NextInto", i)
			}
		}
	}
}

func TestNextIntoAllocFree(t *testing.T) {
	ds := tinyDataset(64, 4)
	l := NewLoader(ds, 16, []int{2}, rand.New(rand.NewSource(9)))
	var b Batch
	testutil.MaxAllocs(t, "Loader.NextInto", 0, func() { l.NextInto(&b) })
}
