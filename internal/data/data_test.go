package data

import (
	"math/rand"
	"testing"

	"gsfl/internal/tensor"
)

func tinyDataset(n, classes int) *InMemory {
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		x[i] = []float64{float64(i), float64(i) * 2}
		y[i] = i % classes
	}
	return NewInMemory(x, y, classes)
}

func TestInMemoryBasics(t *testing.T) {
	ds := tinyDataset(10, 3)
	if ds.Len() != 10 || ds.Classes() != 3 {
		t.Fatalf("Len=%d Classes=%d", ds.Len(), ds.Classes())
	}
	f, y := ds.Sample(4)
	if f[0] != 4 || y != 1 {
		t.Fatalf("Sample(4) = %v, %d", f, y)
	}
}

func TestInMemoryValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("len mismatch", func() { NewInMemory([][]float64{{1}}, []int{0, 1}, 2) })
	mustPanic("bad label", func() { NewInMemory([][]float64{{1}}, []int{5}, 2) })
	mustPanic("zero classes", func() { NewInMemory(nil, nil, 0) })
}

func TestSubsetView(t *testing.T) {
	ds := tinyDataset(10, 2)
	sub := NewSubset(ds, []int{9, 0, 5})
	if sub.Len() != 3 {
		t.Fatalf("subset Len = %d", sub.Len())
	}
	f, _ := sub.Sample(0)
	if f[0] != 9 {
		t.Fatalf("subset Sample(0) = %v, want base sample 9", f)
	}
	if sub.Classes() != 2 {
		t.Fatalf("subset Classes = %d", sub.Classes())
	}
}

func TestSubsetOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSubset(tinyDataset(3, 2), []int{3})
}

func TestLoaderCoversEpochExactlyOnce(t *testing.T) {
	ds := tinyDataset(10, 2)
	l := NewLoader(ds, 3, []int{2}, rand.New(rand.NewSource(1)))
	if l.StepsPerEpoch() != 4 { // 3+3+3+1
		t.Fatalf("StepsPerEpoch = %d, want 4", l.StepsPerEpoch())
	}
	seen := map[float64]int{}
	total := 0
	for i := 0; i < 4; i++ {
		b := l.Next()
		total += len(b.Y)
		for r := 0; r < len(b.Y); r++ {
			seen[b.X.At(r, 0)]++
		}
	}
	if total != 10 {
		t.Fatalf("epoch yielded %d samples, want 10", total)
	}
	for k, c := range seen {
		if c != 1 {
			t.Fatalf("sample %v seen %d times in one epoch", k, c)
		}
	}
}

func TestLoaderReshufflesBetweenEpochs(t *testing.T) {
	ds := tinyDataset(64, 2)
	l := NewLoader(ds, 64, []int{2}, rand.New(rand.NewSource(2)))
	e1 := l.Next()
	e2 := l.Next()
	same := true
	for i := range e1.Y {
		if e1.X.At(i, 0) != e2.X.At(i, 0) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two epochs had identical order; loader is not reshuffling")
	}
}

func TestLoaderDeterministicAcrossSeeds(t *testing.T) {
	mk := func() Batch {
		return NewLoader(tinyDataset(20, 2), 5, []int{2}, rand.New(rand.NewSource(7))).Next()
	}
	a, b := mk(), mk()
	if !tensor.AllClose(a.X, b.X, 0) {
		t.Fatal("same seed must give identical batches")
	}
}

func TestLoaderBatchShape(t *testing.T) {
	ds := tinyDataset(8, 2)
	l := NewLoader(ds, 4, []int{2}, rand.New(rand.NewSource(3)))
	b := l.Next()
	if b.X.Dim(0) != 4 || b.X.Dim(1) != 2 {
		t.Fatalf("batch shape = %v", b.X.Shape())
	}
	if len(b.Y) != 4 {
		t.Fatalf("batch labels = %d", len(b.Y))
	}
}

func TestLoaderValidation(t *testing.T) {
	ds := tinyDataset(4, 2)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("batch 0", func() { NewLoader(ds, 0, []int{2}, rand.New(rand.NewSource(1))) })
	mustPanic("shape mismatch", func() { NewLoader(ds, 2, []int{3}, rand.New(rand.NewSource(1))) })
	mustPanic("empty dataset", func() {
		NewLoader(NewInMemory(nil, nil, 2), 2, []int{2}, rand.New(rand.NewSource(1)))
	})
}

func TestAllMaterializesInOrder(t *testing.T) {
	ds := tinyDataset(5, 2)
	b := All(ds, []int{2})
	if b.X.Dim(0) != 5 {
		t.Fatalf("All batch size = %d", b.X.Dim(0))
	}
	for i := 0; i < 5; i++ {
		if b.X.At(i, 0) != float64(i) {
			t.Fatal("All must preserve index order")
		}
	}
}

func TestClassHistogram(t *testing.T) {
	ds := tinyDataset(10, 3) // labels 0,1,2,0,1,2,...
	h := ClassHistogram(ds)
	if h[0] != 4 || h[1] != 3 || h[2] != 3 {
		t.Fatalf("histogram = %v", h)
	}
}

func TestLoaderStateRestoreContinuesBitIdentically(t *testing.T) {
	ds := tinyDataset(10, 3)
	mk := func() *Loader {
		return NewLoader(ds, 4, []int{2}, rand.New(rand.NewSource(9)))
	}
	// Drive the reference loader across an epoch boundary (10 samples /
	// batch 4 = 3 batches per epoch), then capture.
	ref := mk()
	for i := 0; i < 5; i++ {
		ref.Next()
	}
	st := ref.State()

	restored := mk()
	if err := restored.Restore(st); err != nil {
		t.Fatal(err)
	}
	// Both loaders must now produce identical batches, including across
	// the next reshuffle.
	for i := 0; i < 7; i++ {
		a, b := ref.Next(), restored.Next()
		if len(a.Y) != len(b.Y) {
			t.Fatalf("batch %d: sizes %d vs %d", i, len(a.Y), len(b.Y))
		}
		for j := range a.Y {
			if a.Y[j] != b.Y[j] || a.X.Data[j*2] != b.X.Data[j*2] {
				t.Fatalf("batch %d diverged after restore", i)
			}
		}
	}
}

func TestLoaderRestoreValidation(t *testing.T) {
	ds := tinyDataset(10, 3)
	l := NewLoader(ds, 4, []int{2}, rand.New(rand.NewSource(9)))
	for i := 0; i < 4; i++ {
		l.Next() // epoch 2
	}
	fresh := NewLoader(ds, 4, []int{2}, rand.New(rand.NewSource(9)))
	if err := fresh.Restore(LoaderState{Epoch: 0, Pos: 0}); err == nil {
		t.Fatal("rewinding below the fresh epoch must error")
	}
	if err := fresh.Restore(LoaderState{Epoch: 2, Pos: 99}); err == nil {
		t.Fatal("out-of-range position must error")
	}
}
