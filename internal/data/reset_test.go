package data

import (
	"math/rand"
	"testing"
)

func synthDataset(n, width, classes int, seed int64) *InMemory {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		row := make([]float64, width)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		x[i] = row
		y[i] = rng.Intn(classes)
	}
	return NewInMemory(x, y, classes)
}

// drainEpoch returns the label sequence of one full epoch.
func drainEpoch(l *Loader) []int {
	var labels []int
	var b Batch
	for i := 0; i < l.StepsPerEpoch(); i++ {
		l.NextInto(&b)
		labels = append(labels, b.Y...)
	}
	return labels
}

// TestLoaderResetMatchesFreshLoader pins the Reset contract: a reset
// loader draws exactly the batches a newly constructed loader with the
// same dataset and seed would.
func TestLoaderResetMatchesFreshLoader(t *testing.T) {
	a := synthDataset(23, 4, 3, 1)
	b := synthDataset(17, 4, 3, 2)

	l := NewLoader(a, 5, []int{4}, rand.New(rand.NewSource(99)))
	drainEpoch(l) // advance arbitrary state before the reset

	for round, ds := range []*InMemory{b, a, b} {
		seed := int64(1000 + round)
		l.Reset(ds, seed)
		fresh := NewLoader(ds, 5, []int{4}, rand.New(rand.NewSource(seed)))
		got, want := drainEpoch(l), drainEpoch(fresh)
		if len(got) != len(want) {
			t.Fatalf("round %d: epoch lengths differ: %d vs %d", round, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("round %d: draw %d: got label %d, want %d", round, i, got[i], want[i])
			}
		}
	}
}

// TestLoaderResetAllocFree pins the steady-state path: once the order
// buffer and RNG exist, resets do not allocate.
func TestLoaderResetAllocFree(t *testing.T) {
	big := synthDataset(40, 4, 3, 1)
	small := synthDataset(20, 4, 3, 2)
	l := NewLoader(big, 8, []int{4}, rand.New(rand.NewSource(5)))
	l.Reset(big, 7) // first reset allocates the reseedable source
	var batch Batch
	l.NextInto(&batch) // warm the batch buffers
	i := 0
	allocs := testing.AllocsPerRun(50, func() {
		ds := small
		if i%2 == 0 {
			ds = big
		}
		i++
		l.Reset(ds, int64(i))
		l.NextInto(&batch)
	})
	if allocs > 0 {
		t.Fatalf("steady-state Reset allocated %v times per call", allocs)
	}
}

// TestLoaderResetRejectsShapeMismatch pins the eager width check.
func TestLoaderResetRejectsShapeMismatch(t *testing.T) {
	l := NewLoader(synthDataset(10, 4, 3, 1), 2, []int{4}, rand.New(rand.NewSource(1)))
	defer func() {
		if recover() == nil {
			t.Fatal("Reset accepted a dataset with the wrong feature width")
		}
	}()
	l.Reset(synthDataset(10, 5, 3, 2), 3)
}
