package model

import (
	"fmt"
	"math"

	"gsfl/internal/nn"
	"gsfl/internal/tensor"
)

// Snapshot is a deep copy of a model half's parameters: the unit of
// transfer for model distribution, intra-group sharing, and FedAvg
// aggregation. Snapshots are immutable by convention — every consumer
// copies data out rather than aliasing in.
type Snapshot struct {
	Tensors []*tensor.Tensor
}

// TakeSnapshot deep-copies the parameters of a Sequential.
func TakeSnapshot(s *nn.Sequential) Snapshot {
	var sn Snapshot
	sn.CaptureFrom(s)
	return sn
}

// CaptureFrom re-captures the parameters of s into the snapshot in
// place, reusing its tensors (they are allocated on first use). It is
// the destination-passing form of TakeSnapshot: trainers keep one
// snapshot per replica and re-capture every round without allocating.
// The Sequential must have the same parameter structure as the previous
// capture.
func (sn *Snapshot) CaptureFrom(s *nn.Sequential) {
	ps := s.Params()
	if sn.Tensors == nil {
		sn.Tensors = make([]*tensor.Tensor, len(ps))
		for i, p := range ps {
			sn.Tensors[i] = p.Clone()
		}
		return
	}
	if len(sn.Tensors) != len(ps) {
		panic(fmt.Sprintf("model: capturing %d params into snapshot of %d tensors", len(ps), len(sn.Tensors)))
	}
	for i, p := range ps {
		sn.Tensors[i].CopyFrom(p)
	}
}

// Restore copies the snapshot's parameters into the Sequential, which
// must have the identical parameter structure.
func (sn Snapshot) Restore(s *nn.Sequential) {
	ps := s.Params()
	if len(ps) != len(sn.Tensors) {
		panic(fmt.Sprintf("model: snapshot has %d tensors, target has %d params", len(sn.Tensors), len(ps)))
	}
	for i, p := range ps {
		p.CopyFrom(sn.Tensors[i])
	}
}

// Clone deep-copies the snapshot.
func (sn Snapshot) Clone() Snapshot {
	out := make([]*tensor.Tensor, len(sn.Tensors))
	for i, t := range sn.Tensors {
		out[i] = t.Clone()
	}
	return Snapshot{Tensors: out}
}

// ParamCount returns the number of scalar parameters in the snapshot.
func (sn Snapshot) ParamCount() int {
	n := 0
	for _, t := range sn.Tensors {
		n += t.Size()
	}
	return n
}

// WireBytes returns the transfer size of the snapshot.
func (sn Snapshot) WireBytes() int64 {
	return int64(sn.ParamCount()) * WireBytesPerScalar
}

// L2Distance returns the Euclidean distance between two snapshots viewed
// as flat vectors; used by convergence diagnostics and tests.
func (sn Snapshot) L2Distance(other Snapshot) float64 {
	if len(sn.Tensors) != len(other.Tensors) {
		panic("model: L2Distance between structurally different snapshots")
	}
	ss := 0.0
	for i, t := range sn.Tensors {
		o := other.Tensors[i]
		if t.Size() != o.Size() {
			panic(fmt.Sprintf("model: snapshot tensor %d size mismatch", i))
		}
		for j, v := range t.Data {
			d := v - o.Data[j]
			ss += d * d
		}
	}
	return math.Sqrt(ss)
}
