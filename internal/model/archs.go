package model

import (
	"fmt"
	"math/rand"

	"gsfl/internal/nn"
)

// GTSRBCNN returns the reference CNN for the synthetic GTSRB task: a
// DeepThin-style lightweight architecture (the paper cites DeepThin [4]
// as its GTSRB model family) over inSize×inSize×3 images with the given
// number of classes.
//
// Layer indices, for choosing cut points (cut k means layers [0,k) run on
// the client):
//
//	0 conv2d(3->8)    1 relu   2 maxpool2
//	3 conv2d(8->16)   4 relu   5 maxpool2
//	6 flatten         7 dense(16*(s/4)²->64)  8 relu  9 dense(64->classes)
//
// The paper's default configuration cuts after the first conv block
// (cut=3): the client holds one cheap conv layer and the smashed data is
// 8×(s/2)² per sample.
func GTSRBCNN(inSize, classes int) Arch {
	if inSize%4 != 0 {
		panic(fmt.Sprintf("model: GTSRBCNN input size %d must be divisible by 4", inSize))
	}
	if classes <= 1 {
		panic(fmt.Sprintf("model: GTSRBCNN needs ≥2 classes, got %d", classes))
	}
	flat := 16 * (inSize / 4) * (inSize / 4)
	return Arch{
		Name:    fmt.Sprintf("gtsrb-cnn-%d", inSize),
		InShape: []int{3, inSize, inSize},
		Classes: classes,
		Build: func(rng *rand.Rand) []nn.Layer {
			return []nn.Layer{
				nn.NewConv2D(rng, 3, 8, 3, 1, 1),
				nn.NewReLU(),
				nn.NewMaxPool2D(2),
				nn.NewConv2D(rng, 8, 16, 3, 1, 1),
				nn.NewReLU(),
				nn.NewMaxPool2D(2),
				nn.NewFlatten(),
				nn.NewDense(rng, flat, 64),
				nn.NewReLU(),
				nn.NewDense(rng, 64, classes),
			}
		},
	}
}

// GTSRBCNNDefaultCut is the layer index after the first conv block of
// GTSRBCNN — the paper's client/server boundary.
const GTSRBCNNDefaultCut = 3

// MLP returns a small fully connected architecture for flat feature
// vectors; used by fast tests and the quickstart example.
//
// Layer indices: 0 dense(in->hidden), 1 relu, 2 dense(hidden->classes).
func MLP(in, hidden, classes int) Arch {
	if in <= 0 || hidden <= 0 || classes <= 1 {
		panic(fmt.Sprintf("model: bad MLP config in=%d hidden=%d classes=%d", in, hidden, classes))
	}
	return Arch{
		Name:    fmt.Sprintf("mlp-%d-%d-%d", in, hidden, classes),
		InShape: []int{in},
		Classes: classes,
		Build: func(rng *rand.Rand) []nn.Layer {
			return []nn.Layer{
				nn.NewDense(rng, in, hidden),
				nn.NewReLU(),
				nn.NewDense(rng, hidden, classes),
			}
		},
	}
}

// MLPDefaultCut splits the MLP after its hidden activation.
const MLPDefaultCut = 2

// DeepThinCNN is a deeper variant with batch norm and dropout, closer to
// the full DeepThin architecture; used by the extended experiments.
//
// Layer indices:
//
//	0 conv(3->16)  1 bn  2 relu  3 maxpool2
//	4 conv(16->32) 5 bn  6 relu  7 maxpool2
//	8 conv(32->32) 9 relu
//	10 flatten 11 dense(32*(s/4)²->128) 12 relu 13 dropout 14 dense(128->classes)
func DeepThinCNN(rngSeed int64, inSize, classes int) Arch {
	if inSize%4 != 0 {
		panic(fmt.Sprintf("model: DeepThinCNN input size %d must be divisible by 4", inSize))
	}
	flat := 32 * (inSize / 4) * (inSize / 4)
	return Arch{
		Name:    fmt.Sprintf("deepthin-cnn-%d", inSize),
		InShape: []int{3, inSize, inSize},
		Classes: classes,
		Build: func(rng *rand.Rand) []nn.Layer {
			dropRng := rand.New(rand.NewSource(rngSeed))
			return []nn.Layer{
				nn.NewConv2D(rng, 3, 16, 3, 1, 1),
				nn.NewBatchNorm(16),
				nn.NewReLU(),
				nn.NewMaxPool2D(2),
				nn.NewConv2D(rng, 16, 32, 3, 1, 1),
				nn.NewBatchNorm(32),
				nn.NewReLU(),
				nn.NewMaxPool2D(2),
				nn.NewConv2D(rng, 32, 32, 3, 1, 1),
				nn.NewReLU(),
				nn.NewFlatten(),
				nn.NewDense(rng, flat, 128),
				nn.NewReLU(),
				nn.NewDropout(dropRng, 0.3),
				nn.NewDense(rng, 128, classes),
			}
		},
	}
}
