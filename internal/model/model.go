// Package model implements the split-aware model container GSFL trains.
//
// A SplitModel is a layer stack cut at an index k: layers [0,k) form the
// client-side model, layers [k,len) the server-side model. The package
// also prices everything the wireless latency model needs: parameter
// bytes (what model distribution/sharing/aggregation transfers), smashed
// data bytes (what each forward step uploads), gradient bytes (what each
// backward step downloads), and FLOPs for each side.
package model

import (
	"fmt"
	"math/rand"

	"gsfl/internal/nn"
	"gsfl/internal/tensor"
)

// WireBytesPerScalar is the on-the-wire size of one model parameter or
// activation element. Models are trained in float64 but serialized as
// float32 for transfer, matching common federated-learning practice and
// the data volumes the paper's latency model implies.
const WireBytesPerScalar = 4

// Arch describes a network architecture: the per-sample input shape,
// the number of classes, and a builder that produces a fresh layer stack.
// Builders take an RNG so every initialization is reproducible.
type Arch struct {
	Name    string
	InShape []int
	Classes int
	Build   func(rng *rand.Rand) []nn.Layer
}

// NewSplit builds the architecture and cuts it at layer index cut:
// client = layers[:cut], server = layers[cut:]. It validates that the
// stack is assemblable (shape propagation panics otherwise).
func (a Arch) NewSplit(rng *rand.Rand, cut int) *SplitModel {
	layers := a.Build(rng)
	if cut < 0 || cut > len(layers) {
		panic(fmt.Sprintf("model: cut %d outside [0,%d]", cut, len(layers)))
	}
	full := nn.NewSequential(layers...)
	out := full.OutShape(a.InShape) // validates the whole stack
	if len(out) != 1 || out[0] != a.Classes {
		panic(fmt.Sprintf("model: arch %q outputs %v, want [%d]", a.Name, out, a.Classes))
	}
	return &SplitModel{
		Arch:   a,
		Cut:    cut,
		Client: nn.NewSequential(layers[:cut]...),
		Server: nn.NewSequential(layers[cut:]...),
	}
}

// SplitModel is a model cut into a client-side and a server-side half.
// Either half may be empty (cut 0 = fully server-side, which degenerates
// to centralized learning; cut = len(layers) degenerates to FL).
type SplitModel struct {
	Arch   Arch
	Cut    int
	Client *nn.Sequential
	Server *nn.Sequential
}

// Forward runs both halves, returning the logits. Used for evaluation and
// by the centralized baseline.
func (m *SplitModel) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	return m.Server.Forward(m.Client.Forward(x, train), train)
}

// SmashedShape returns the per-sample activation shape at the cut.
func (m *SplitModel) SmashedShape() []int {
	return m.Client.OutShape(m.Arch.InShape)
}

// SmashedBytes returns the wire size of the smashed data for a batch,
// including one label scalar per sample (the client ships labels with the
// activations so the server can compute the loss).
func (m *SplitModel) SmashedBytes(batch int) int64 {
	return m.SmashedBytesWith(batch, WireBytesPerScalar)
}

// SmashedBytesWith is SmashedBytes at an explicit per-scalar wire width
// (e.g. 1 for 8-bit quantized transfers).
func (m *SplitModel) SmashedBytesWith(batch, bytesPerScalar int) int64 {
	per := prodInt(m.SmashedShape()) + 1 // +1 label
	return int64(batch) * int64(per) * int64(bytesPerScalar)
}

// GradBytes returns the wire size of the cut-layer gradient for a batch.
func (m *SplitModel) GradBytes(batch int) int64 {
	return m.GradBytesWith(batch, WireBytesPerScalar)
}

// GradBytesWith is GradBytes at an explicit per-scalar wire width.
func (m *SplitModel) GradBytesWith(batch, bytesPerScalar int) int64 {
	return int64(batch) * int64(prodInt(m.SmashedShape())) * int64(bytesPerScalar)
}

// ClientParamBytes returns the wire size of the client-side model, the
// quantity transferred during model distribution and intra-group sharing.
func (m *SplitModel) ClientParamBytes() int64 {
	return int64(m.Client.ParamCount()) * WireBytesPerScalar
}

// ServerParamBytes returns the wire size of the server-side model.
func (m *SplitModel) ServerParamBytes() int64 {
	return int64(m.Server.ParamCount()) * WireBytesPerScalar
}

// TotalParamBytes returns the wire size of the full model (what FL
// uploads and downloads every round).
func (m *SplitModel) TotalParamBytes() int64 {
	return m.ClientParamBytes() + m.ServerParamBytes()
}

// ClientFwdFLOPs returns per-sample forward FLOPs of the client half.
func (m *SplitModel) ClientFwdFLOPs() int64 { return m.Client.FwdFLOPs(m.Arch.InShape) }

// ServerFwdFLOPs returns per-sample forward FLOPs of the server half.
func (m *SplitModel) ServerFwdFLOPs() int64 { return m.Server.FwdFLOPs(m.SmashedShape()) }

// prodInt multiplies the dimensions of a shape.
func prodInt(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}
