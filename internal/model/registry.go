package model

import (
	"fmt"
	"sort"
	"sync"
)

// ArchConfig parameterizes a registered architecture factory: the
// dataset's image edge length and class count plus the spec seed (for
// architectures with build-time randomness such as dropout masks).
type ArchConfig struct {
	// ImageSize is the square input edge length in pixels.
	ImageSize int
	// Classes is the output class count.
	Classes int
	// Seed derives any architecture-level randomness; factories for
	// deterministic architectures ignore it.
	Seed int64
}

// ArchFactory builds an architecture for a configuration, validating it
// eagerly (bad sizes return errors, not panics).
type ArchFactory func(cfg ArchConfig) (Arch, error)

var (
	archMu     sync.RWMutex
	archByName = map[string]ArchFactory{}
)

// RegisterArch adds a model architecture factory under its name, making
// it resolvable by NewArch and usable by name in experiment specs and
// grid files. It panics on an empty name, a nil factory, or a duplicate
// name — programmer errors at init time. The built-in architectures
// register themselves; call this only for out-of-tree archs.
func RegisterArch(name string, f ArchFactory) {
	if name == "" {
		panic("model: RegisterArch with empty name")
	}
	if f == nil {
		panic(fmt.Sprintf("model: RegisterArch(%q) with nil factory", name))
	}
	archMu.Lock()
	defer archMu.Unlock()
	if _, dup := archByName[name]; dup {
		panic(fmt.Sprintf("model: architecture %q registered twice", name))
	}
	archByName[name] = f
}

// ArchNames returns the registered architecture names in sorted order.
func ArchNames() []string {
	archMu.RLock()
	defer archMu.RUnlock()
	out := make([]string, 0, len(archByName))
	for name := range archByName {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// NewArch instantiates the named architecture — the single
// name-to-architecture resolution path.
func NewArch(name string, cfg ArchConfig) (Arch, error) {
	archMu.RLock()
	f, ok := archByName[name]
	archMu.RUnlock()
	if !ok {
		return Arch{}, fmt.Errorf("model: unknown architecture %q (registered: %v)", name, ArchNames())
	}
	return f(cfg)
}

// The built-in architectures register like out-of-tree ones, so name
// resolution, listing, and construction have exactly one path.
func init() {
	RegisterArch("gtsrb-cnn", func(cfg ArchConfig) (Arch, error) {
		if err := checkImageArch("gtsrb-cnn", cfg); err != nil {
			return Arch{}, err
		}
		return GTSRBCNN(cfg.ImageSize, cfg.Classes), nil
	})
	RegisterArch("deepthin-cnn", func(cfg ArchConfig) (Arch, error) {
		if err := checkImageArch("deepthin-cnn", cfg); err != nil {
			return Arch{}, err
		}
		return DeepThinCNN(cfg.Seed, cfg.ImageSize, cfg.Classes), nil
	})
	RegisterArch("mlp", func(cfg ArchConfig) (Arch, error) {
		if cfg.ImageSize <= 0 {
			return Arch{}, fmt.Errorf("model: mlp needs a positive image size, got %d", cfg.ImageSize)
		}
		if cfg.Classes <= 1 {
			return Arch{}, fmt.Errorf("model: mlp needs >=2 classes, got %d", cfg.Classes)
		}
		return MLP(3*cfg.ImageSize*cfg.ImageSize, 64, cfg.Classes), nil
	})
}

// checkImageArch validates the shared constraints of the two CNN
// factories with field-specific errors.
func checkImageArch(name string, cfg ArchConfig) error {
	if cfg.ImageSize <= 0 || cfg.ImageSize%4 != 0 {
		return fmt.Errorf("model: %s input size %d must be positive and divisible by 4", name, cfg.ImageSize)
	}
	if cfg.Classes <= 1 {
		return fmt.Errorf("model: %s needs >=2 classes, got %d", name, cfg.Classes)
	}
	return nil
}
