package model

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gsfl/internal/tensor"
)

func TestSplitEquivalenceAtEveryCut(t *testing.T) {
	// The split model's two-stage forward must equal the unsplit forward
	// for every possible cut index — the core split-learning invariant.
	arch := GTSRBCNN(16, 7)
	x := tensor.New(3, 3, 16, 16).RandNormal(rand.New(rand.NewSource(5)), 0, 1)

	ref := arch.NewSplit(rand.New(rand.NewSource(42)), 0)
	want := ref.Forward(x, false)

	nLayers := len(arch.Build(rand.New(rand.NewSource(0))))
	for cut := 0; cut <= nLayers; cut++ {
		m := arch.NewSplit(rand.New(rand.NewSource(42)), cut) // same init seed
		got := m.Forward(x, false)
		if !tensor.AllClose(got, want, 1e-9) {
			t.Fatalf("cut %d: split forward differs from unsplit", cut)
		}
	}
}

func TestSmashedShapeMatchesClientOutput(t *testing.T) {
	arch := GTSRBCNN(16, 5)
	m := arch.NewSplit(rand.New(rand.NewSource(1)), GTSRBCNNDefaultCut)
	x := tensor.New(2, 3, 16, 16)
	smashed := m.Client.Forward(x, false)
	want := m.SmashedShape()
	got := smashed.Shape()[1:]
	if len(got) != len(want) {
		t.Fatalf("smashed shape %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("smashed shape %v, want %v", got, want)
		}
	}
}

func TestByteAccounting(t *testing.T) {
	arch := MLP(10, 6, 3)
	m := arch.NewSplit(rand.New(rand.NewSource(1)), MLPDefaultCut)
	// Client: dense(10->6) = 66 params; server: dense(6->3) = 21 params.
	if got := m.ClientParamBytes(); got != 66*WireBytesPerScalar {
		t.Fatalf("ClientParamBytes = %d, want %d", got, 66*WireBytesPerScalar)
	}
	if got := m.ServerParamBytes(); got != 21*WireBytesPerScalar {
		t.Fatalf("ServerParamBytes = %d, want %d", got, 21*WireBytesPerScalar)
	}
	if got := m.TotalParamBytes(); got != 87*WireBytesPerScalar {
		t.Fatalf("TotalParamBytes = %d", got)
	}
	// Smashed data: 6 activations + 1 label per sample.
	if got := m.SmashedBytes(4); got != 4*7*WireBytesPerScalar {
		t.Fatalf("SmashedBytes(4) = %d", got)
	}
	if got := m.GradBytes(4); got != 4*6*WireBytesPerScalar {
		t.Fatalf("GradBytes(4) = %d", got)
	}
}

func TestCutMonotonicity(t *testing.T) {
	// Deeper cuts move parameters from server to client; totals constant.
	arch := GTSRBCNN(16, 43)
	layers := len(arch.Build(rand.New(rand.NewSource(0))))
	prevClient := int64(-1)
	var total int64
	for cut := 0; cut <= layers; cut++ {
		m := arch.NewSplit(rand.New(rand.NewSource(1)), cut)
		cb := m.ClientParamBytes()
		if cb < prevClient {
			t.Fatalf("client bytes decreased at cut %d", cut)
		}
		prevClient = cb
		tt := m.TotalParamBytes()
		if total == 0 {
			total = tt
		}
		if tt != total {
			t.Fatalf("total bytes changed with cut: %d vs %d", tt, total)
		}
	}
}

func TestFLOPsPositiveAndAdditive(t *testing.T) {
	arch := GTSRBCNN(16, 10)
	full := arch.NewSplit(rand.New(rand.NewSource(1)), 0)
	wholeFLOPs := full.ServerFwdFLOPs() // cut 0: everything server-side
	for cut := 0; cut <= 10; cut++ {
		m := arch.NewSplit(rand.New(rand.NewSource(1)), cut)
		c, s := m.ClientFwdFLOPs(), m.ServerFwdFLOPs()
		if c < 0 || s < 0 {
			t.Fatalf("negative FLOPs at cut %d", cut)
		}
		if c+s != wholeFLOPs {
			t.Fatalf("cut %d: client+server FLOPs %d != whole %d", cut, c+s, wholeFLOPs)
		}
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	arch := MLP(8, 5, 3)
	m1 := arch.NewSplit(rand.New(rand.NewSource(1)), MLPDefaultCut)
	m2 := arch.NewSplit(rand.New(rand.NewSource(2)), MLPDefaultCut)

	snap := TakeSnapshot(m1.Client)
	snap.Restore(m2.Client)

	x := tensor.New(4, 8).RandNormal(rand.New(rand.NewSource(3)), 0, 1)
	y1 := m1.Client.Forward(x, false)
	y2 := m2.Client.Forward(x, false)
	if !tensor.AllClose(y1, y2, 1e-12) {
		t.Fatal("restored client model behaves differently")
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	arch := MLP(4, 3, 2)
	m := arch.NewSplit(rand.New(rand.NewSource(1)), MLPDefaultCut)
	snap := TakeSnapshot(m.Client)
	// Mutate the live model; the snapshot must not change.
	m.Client.Params()[0].Fill(123)
	if snap.Tensors[0].Data[0] == 123 {
		t.Fatal("snapshot aliases live parameters")
	}
}

func TestSnapshotCloneIndependent(t *testing.T) {
	arch := MLP(4, 3, 2)
	m := arch.NewSplit(rand.New(rand.NewSource(1)), MLPDefaultCut)
	a := TakeSnapshot(m.Client)
	b := a.Clone()
	b.Tensors[0].Fill(7)
	if a.Tensors[0].Data[0] == 7 {
		t.Fatal("Clone aliases the original")
	}
}

func TestL2DistanceProperties(t *testing.T) {
	arch := MLP(6, 4, 2)
	m1 := arch.NewSplit(rand.New(rand.NewSource(1)), MLPDefaultCut)
	m2 := arch.NewSplit(rand.New(rand.NewSource(2)), MLPDefaultCut)
	a := TakeSnapshot(m1.Client)
	b := TakeSnapshot(m2.Client)
	if d := a.L2Distance(a); d != 0 {
		t.Fatalf("self distance = %v, want 0", d)
	}
	if d1, d2 := a.L2Distance(b), b.L2Distance(a); d1 != d2 {
		t.Fatalf("distance not symmetric: %v vs %v", d1, d2)
	}
	if a.L2Distance(b) <= 0 {
		t.Fatal("distinct snapshots at distance 0")
	}
}

func TestSnapshotWireBytes(t *testing.T) {
	arch := MLP(10, 6, 3)
	m := arch.NewSplit(rand.New(rand.NewSource(1)), MLPDefaultCut)
	snap := TakeSnapshot(m.Client)
	if got := snap.WireBytes(); got != m.ClientParamBytes() {
		t.Fatalf("snapshot wire bytes %d != client param bytes %d", got, m.ClientParamBytes())
	}
}

func TestInvalidCutPanics(t *testing.T) {
	arch := MLP(4, 3, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range cut")
		}
	}()
	arch.NewSplit(rand.New(rand.NewSource(1)), 99)
}

func TestArchValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("gtsrb size", func() { GTSRBCNN(15, 43) })
	mustPanic("gtsrb classes", func() { GTSRBCNN(16, 1) })
	mustPanic("mlp", func() { MLP(0, 4, 2) })
	mustPanic("deepthin", func() { DeepThinCNN(1, 10, 43) })
}

func TestDeepThinBuilds(t *testing.T) {
	arch := DeepThinCNN(7, 16, 43)
	m := arch.NewSplit(rand.New(rand.NewSource(1)), 4)
	x := tensor.New(2, 3, 16, 16).RandNormal(rand.New(rand.NewSource(2)), 0, 1)
	y := m.Forward(x, false)
	if y.Dim(0) != 2 || y.Dim(1) != 43 {
		t.Fatalf("deepthin output shape %v", y.Shape())
	}
}

// prop: snapshot restore is idempotent — restoring twice equals once.
func TestPropSnapshotRestoreIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		arch := MLP(5, 4, 3)
		src := arch.NewSplit(rand.New(rand.NewSource(seed)), MLPDefaultCut)
		dst := arch.NewSplit(rand.New(rand.NewSource(seed+1)), MLPDefaultCut)
		snap := TakeSnapshot(src.Client)
		snap.Restore(dst.Client)
		once := TakeSnapshot(dst.Client)
		snap.Restore(dst.Client)
		twice := TakeSnapshot(dst.Client)
		return once.L2Distance(twice) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
