package model

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"gsfl/internal/nn"
	"gsfl/internal/tensor"
)

// TensorState is the gob-serializable form of one tensor.
type TensorState struct {
	Shape []int
	Data  []float64
}

// SnapshotState is the gob-serializable form of a model-half Snapshot;
// trainer checkpoints embed these for every model they carry.
type SnapshotState struct {
	Tensors []TensorState
}

// State converts the snapshot into its serializable form (deep copy).
func (sn Snapshot) State() SnapshotState {
	return SnapshotState{Tensors: toCheckpoint(sn)}
}

// StateOf captures a Sequential's parameters directly into serializable
// form. It copies each tensor exactly once, where the older
// TakeSnapshot(s).State() pattern copied twice; trainer CaptureState
// implementations that do not already hold a Snapshot use it.
func StateOf(s *nn.Sequential) SnapshotState {
	ps := s.Params()
	out := make([]TensorState, len(ps))
	for i, p := range ps {
		out[i] = TensorState{Shape: p.Shape(), Data: append([]float64(nil), p.Data...)}
	}
	return SnapshotState{Tensors: out}
}

// SnapshotFromState validates a serialized snapshot and rebuilds it.
func SnapshotFromState(st SnapshotState) (Snapshot, error) {
	return fromCheckpoint(st.Tensors)
}

// checkpointFile is the on-disk layout: a format version plus the
// client- and server-half parameters.
type checkpointFile struct {
	Version int
	Cut     int
	Client  []TensorState
	Server  []TensorState
}

// checkpointVersion guards against reading incompatible files.
const checkpointVersion = 1

// SaveCheckpoint writes both halves of the model to w.
func SaveCheckpoint(w io.Writer, client, server Snapshot, cut int) error {
	cf := checkpointFile{
		Version: checkpointVersion,
		Cut:     cut,
		Client:  toCheckpoint(client),
		Server:  toCheckpoint(server),
	}
	if err := gob.NewEncoder(w).Encode(cf); err != nil {
		return fmt.Errorf("model: encoding checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads a checkpoint written by SaveCheckpoint.
func LoadCheckpoint(r io.Reader) (client, server Snapshot, cut int, err error) {
	var cf checkpointFile
	if err := gob.NewDecoder(r).Decode(&cf); err != nil {
		return Snapshot{}, Snapshot{}, 0, fmt.Errorf("model: decoding checkpoint: %w", err)
	}
	if cf.Version != checkpointVersion {
		return Snapshot{}, Snapshot{}, 0, fmt.Errorf("model: checkpoint version %d, want %d", cf.Version, checkpointVersion)
	}
	c, err := fromCheckpoint(cf.Client)
	if err != nil {
		return Snapshot{}, Snapshot{}, 0, err
	}
	s, err := fromCheckpoint(cf.Server)
	if err != nil {
		return Snapshot{}, Snapshot{}, 0, err
	}
	return c, s, cf.Cut, nil
}

// SaveCheckpointFile writes a checkpoint to path, creating parent
// directories.
func SaveCheckpointFile(path string, client, server Snapshot, cut int) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("model: creating checkpoint directory: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("model: creating checkpoint: %w", err)
	}
	defer f.Close()
	if err := SaveCheckpoint(f, client, server, cut); err != nil {
		return err
	}
	return f.Close()
}

// LoadCheckpointFile reads a checkpoint from path.
func LoadCheckpointFile(path string) (client, server Snapshot, cut int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return Snapshot{}, Snapshot{}, 0, fmt.Errorf("model: opening checkpoint: %w", err)
	}
	defer f.Close()
	return LoadCheckpoint(f)
}

func toCheckpoint(s Snapshot) []TensorState {
	out := make([]TensorState, len(s.Tensors))
	for i, t := range s.Tensors {
		out[i] = TensorState{Shape: t.Shape(), Data: append([]float64(nil), t.Data...)}
	}
	return out
}

func fromCheckpoint(cs []TensorState) (Snapshot, error) {
	ts := make([]*tensor.Tensor, len(cs))
	for i, c := range cs {
		n := 1
		for _, d := range c.Shape {
			if d < 0 {
				return Snapshot{}, fmt.Errorf("model: checkpoint tensor %d has negative dimension", i)
			}
			n *= d
		}
		if n != len(c.Data) {
			return Snapshot{}, fmt.Errorf("model: checkpoint tensor %d shape %v does not match %d values", i, c.Shape, len(c.Data))
		}
		ts[i] = tensor.FromSlice(append([]float64(nil), c.Data...), c.Shape...)
	}
	return Snapshot{Tensors: ts}, nil
}
