package model

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"

	"gsfl/internal/tensor"
)

func TestCheckpointRoundTrip(t *testing.T) {
	arch := MLP(6, 5, 3)
	m := arch.NewSplit(rand.New(rand.NewSource(1)), MLPDefaultCut)
	client := TakeSnapshot(m.Client)
	server := TakeSnapshot(m.Server)

	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, client, server, MLPDefaultCut); err != nil {
		t.Fatal(err)
	}
	c2, s2, cut, err := LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if cut != MLPDefaultCut {
		t.Fatalf("cut = %d, want %d", cut, MLPDefaultCut)
	}
	if client.L2Distance(c2) != 0 || server.L2Distance(s2) != 0 {
		t.Fatal("checkpoint round trip changed parameters")
	}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	arch := GTSRBCNN(16, 43)
	m := arch.NewSplit(rand.New(rand.NewSource(2)), GTSRBCNNDefaultCut)
	client := TakeSnapshot(m.Client)
	server := TakeSnapshot(m.Server)

	path := filepath.Join(t.TempDir(), "ckpt", "model.gob")
	if err := SaveCheckpointFile(path, client, server, GTSRBCNNDefaultCut); err != nil {
		t.Fatal(err)
	}
	c2, s2, cut, err := LoadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if cut != GTSRBCNNDefaultCut {
		t.Fatalf("cut = %d", cut)
	}
	// Restoring into a fresh model must reproduce identical behaviour.
	fresh := arch.NewSplit(rand.New(rand.NewSource(99)), GTSRBCNNDefaultCut)
	c2.Restore(fresh.Client)
	s2.Restore(fresh.Server)
	if TakeSnapshot(fresh.Client).L2Distance(client) != 0 {
		t.Fatal("restored client half differs")
	}
	if TakeSnapshot(fresh.Server).L2Distance(server) != 0 {
		t.Fatal("restored server half differs")
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	if _, _, _, err := LoadCheckpoint(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestCheckpointMissingFile(t *testing.T) {
	if _, _, _, err := LoadCheckpointFile(filepath.Join(t.TempDir(), "nope.gob")); err == nil {
		t.Fatal("expected open error")
	}
}

func TestSnapshotStateRoundTrip(t *testing.T) {
	sn := Snapshot{Tensors: []*tensor.Tensor{
		tensor.FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3),
		tensor.FromSlice([]float64{7, 8}, 2),
	}}
	back, err := SnapshotFromState(sn.State())
	if err != nil {
		t.Fatal(err)
	}
	if back.L2Distance(sn) != 0 {
		t.Fatal("state round trip changed values")
	}
	// The state is a deep copy: mutating it must not touch the source.
	st := sn.State()
	st.Tensors[0].Data[0] = 99
	if sn.Tensors[0].Data[0] == 99 {
		t.Fatal("State must deep-copy tensor data")
	}
}

func TestSnapshotFromStateValidation(t *testing.T) {
	if _, err := SnapshotFromState(SnapshotState{Tensors: []TensorState{
		{Shape: []int{2, 2}, Data: []float64{1}},
	}}); err == nil {
		t.Fatal("shape/data mismatch must error")
	}
	if _, err := SnapshotFromState(SnapshotState{Tensors: []TensorState{
		{Shape: []int{-1}, Data: []float64{}},
	}}); err == nil {
		t.Fatal("negative dimension must error")
	}
}
