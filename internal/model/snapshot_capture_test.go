package model

import (
	"math/rand"
	"testing"

	"gsfl/internal/nn"
	"gsfl/internal/testutil"
)

func testNet(seed int64) *nn.Sequential {
	rng := rand.New(rand.NewSource(seed))
	return nn.NewSequential(nn.NewDense(rng, 6, 5), nn.NewReLU(), nn.NewDense(rng, 5, 3))
}

// TestCaptureFromMatchesTakeSnapshot pins the in-place re-capture to the
// allocating snapshot, including after the source parameters change.
func TestCaptureFromMatchesTakeSnapshot(t *testing.T) {
	net := testNet(1)
	var sn Snapshot
	sn.CaptureFrom(net)
	if d := sn.L2Distance(TakeSnapshot(net)); d != 0 {
		t.Fatalf("initial capture differs by %v", d)
	}
	// Mutate the model, re-capture in place, compare again.
	for _, p := range net.Params() {
		p.Scale(1.5)
	}
	sn.CaptureFrom(net)
	if d := sn.L2Distance(TakeSnapshot(net)); d != 0 {
		t.Fatalf("re-capture differs by %v", d)
	}
}

func TestCaptureFromAllocFree(t *testing.T) {
	net := testNet(2)
	var sn Snapshot
	testutil.MaxAllocs(t, "Snapshot.CaptureFrom", 0, func() { sn.CaptureFrom(net) })
}

// TestStateOfMatchesSnapshotState pins the single-copy checkpoint
// capture to the older two-copy pattern.
func TestStateOfMatchesSnapshotState(t *testing.T) {
	net := testNet(3)
	want := TakeSnapshot(net).State()
	got := StateOf(net)
	if len(got.Tensors) != len(want.Tensors) {
		t.Fatalf("tensor count %d vs %d", len(got.Tensors), len(want.Tensors))
	}
	for i := range got.Tensors {
		if len(got.Tensors[i].Data) != len(want.Tensors[i].Data) {
			t.Fatalf("tensor %d length mismatch", i)
		}
		for j := range got.Tensors[i].Data {
			if got.Tensors[i].Data[j] != want.Tensors[i].Data[j] {
				t.Fatalf("tensor %d element %d mismatch", i, j)
			}
		}
	}
	// The state must be a copy, not an alias of the live parameters.
	net.Params()[0].Data[0] += 1
	if got.Tensors[0].Data[0] == net.Params()[0].Data[0] {
		t.Fatal("StateOf aliased live parameter memory")
	}
}
