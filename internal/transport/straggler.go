package transport

import (
	"fmt"
	"sort"
	"sync"
)

// StragglerPolicy decides how a group's relay chain proceeds when a
// client misses the round deadline (or dies mid-turn). It receives the
// state that was handed to the straggler this turn — the last state the
// chain produced, untouched by the straggler — and the state the same
// client returned on its most recent completed turn in any earlier
// round (nil if it never completed one). It returns the state the chain
// continues from and whether the straggler's sample count still enters
// the group's aggregation weight.
//
// Policies must not mutate either argument: returned states flow
// straight into the relay chain and, at round end, into FedAvg.
type StragglerPolicy func(handed, lastGood *TurnState) (next *TurnState, counted bool)

var (
	stragglerMu       sync.Mutex
	stragglerPolicies = map[string]StragglerPolicy{}
)

// RegisterStragglerPolicy adds a fallback policy under its name, making
// it selectable through APConfig.Straggler. It panics on an empty name,
// a nil policy, or a duplicate registration (programmer errors at init
// time).
func RegisterStragglerPolicy(name string, p StragglerPolicy) {
	if name == "" {
		panic("transport: straggler policy with empty name")
	}
	if p == nil {
		panic(fmt.Sprintf("transport: nil straggler policy %q", name))
	}
	stragglerMu.Lock()
	defer stragglerMu.Unlock()
	if _, dup := stragglerPolicies[name]; dup {
		panic(fmt.Sprintf("transport: straggler policy %q registered twice", name))
	}
	stragglerPolicies[name] = p
}

// StragglerPolicies returns the registered policy names in sorted order.
func StragglerPolicies() []string {
	stragglerMu.Lock()
	defer stragglerMu.Unlock()
	return stragglerNamesLocked()
}

// stragglerNamesLocked lists registered names; callers hold stragglerMu.
func stragglerNamesLocked() []string {
	names := make([]string, 0, len(stragglerPolicies))
	for n := range stragglerPolicies {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func stragglerPolicyByName(name string) (StragglerPolicy, error) {
	stragglerMu.Lock()
	defer stragglerMu.Unlock()
	p, ok := stragglerPolicies[name]
	if !ok {
		return nil, fmt.Errorf("transport: unknown straggler policy %q (have %v)", name, stragglerNamesLocked())
	}
	return p, nil
}

func init() {
	// drop: the straggler contributes nothing. The chain continues from
	// the state it was handed and the client's samples leave the weight —
	// the network analogue of the simulator's per-round dropout, where a
	// skipped client is simply absent from its group.
	RegisterStragglerPolicy("drop", func(handed, lastGood *TurnState) (*TurnState, bool) {
		return handed, false
	})
	// reuse-last: substitute the client's most recent completed
	// contribution (the classic stale-update mitigation from asynchronous
	// FL). Its samples stay in the weight since its — stale — training is
	// represented. Falls back to drop when the client never completed a
	// turn.
	RegisterStragglerPolicy("reuse-last", func(handed, lastGood *TurnState) (*TurnState, bool) {
		if lastGood == nil {
			return handed, false
		}
		return lastGood, true
	})
}
