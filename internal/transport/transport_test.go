package transport

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"gsfl/internal/data"
	"gsfl/internal/model"
	"gsfl/internal/partition"
	"gsfl/internal/quantize"
	"gsfl/internal/schemes/schemestest"
	"gsfl/internal/tensor"
)

// launchWorld starts an AP plus one goroutine per client on localhost
// and returns the AP, a shutdown func, and an error channel collecting
// client Run results.
func launchWorld(t *testing.T, nClients, nGroups, steps int) (*AP, func(), chan error) {
	t.Helper()
	arch := model.MLP(schemestest.BlobDim, 16, schemestest.BlobClasses)
	cut := model.MLPDefaultCut

	rng := rand.New(rand.NewSource(1))
	pool := schemestest.Blobs(nClients*40, 0.6, rng)
	parts := partition.IID(pool, nClients, rand.New(rand.NewSource(2)))
	test := schemestest.Blobs(200, 0.6, rand.New(rand.NewSource(3)))

	groups := partition.Groups(nClients, nGroups, partition.GroupRoundRobin, nil, nil)
	ap, err := NewAP("127.0.0.1:0", APConfig{
		Arch:           arch,
		Cut:            cut,
		Groups:         groups,
		StepsPerClient: steps,
		LR:             0.05,
		Momentum:       0.9,
		Test:           test,
		Seed:           7,
	})
	if err != nil {
		t.Fatal(err)
	}

	errs := make(chan error, nClients)
	var wg sync.WaitGroup
	for ci := 0; ci < nClients; ci++ {
		cl, err := Dial(ap.Addr(), ClientConfig{
			ID:       ci,
			Arch:     arch,
			Cut:      cut,
			Train:    parts[ci],
			Batch:    8,
			LR:       0.05,
			Momentum: 0.9,
			Seed:     int64(100 + ci),
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- cl.Run()
		}()
	}
	if err := ap.WaitForClients(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	stop := func() {
		if err := ap.Shutdown(); err != nil {
			t.Logf("shutdown: %v", err)
		}
		wg.Wait()
		close(errs)
	}
	return ap, stop, errs
}

func TestNetworkGSFLTrainsEndToEnd(t *testing.T) {
	ap, stop, errs := launchWorld(t, 6, 2, 4)
	_, before := ap.Evaluate()
	for r := 0; r < 10; r++ {
		if err := ap.Round(); err != nil {
			t.Fatal(err)
		}
	}
	_, after := ap.Evaluate()
	stop()
	for err := range errs {
		if err != nil {
			t.Fatalf("client error: %v", err)
		}
	}
	if after < 0.7 {
		t.Fatalf("network GSFL accuracy %v after 10 rounds (started at %v)", after, before)
	}
	if after <= before {
		t.Fatalf("accuracy did not improve: %v -> %v", before, after)
	}
}

func TestNetworkGroupsRunConcurrently(t *testing.T) {
	// Smoke test with more groups than CPUs would still pass; here we
	// just verify a multi-group round completes and aggregates.
	ap, stop, errs := launchWorld(t, 8, 4, 2)
	defer func() {
		stop()
		for err := range errs {
			if err != nil {
				t.Fatalf("client error: %v", err)
			}
		}
	}()
	if err := ap.Round(); err != nil {
		t.Fatal(err)
	}
	l, a := ap.Evaluate()
	if l <= 0 || a < 0 || a > 1 {
		t.Fatalf("evaluate returned loss=%v acc=%v", l, a)
	}
}

func TestShutdownIdempotent(t *testing.T) {
	ap, stop, errs := launchWorld(t, 2, 1, 1)
	stop()
	for err := range errs {
		if err != nil {
			t.Fatalf("client error: %v", err)
		}
	}
	if err := ap.Shutdown(); err != nil {
		t.Fatalf("second shutdown errored: %v", err)
	}
}

func TestWaitForClientsTimeout(t *testing.T) {
	arch := model.MLP(schemestest.BlobDim, 8, schemestest.BlobClasses)
	test := schemestest.Blobs(20, 0.6, rand.New(rand.NewSource(1)))
	ap, err := NewAP("127.0.0.1:0", APConfig{
		Arch:           arch,
		Cut:            model.MLPDefaultCut,
		Groups:         [][]int{{0}},
		StepsPerClient: 1,
		LR:             0.1,
		Test:           test,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ap.Shutdown()
	if err := ap.WaitForClients(50 * time.Millisecond); err == nil {
		t.Fatal("expected timeout with no clients")
	}
}

func TestNewAPValidation(t *testing.T) {
	arch := model.MLP(schemestest.BlobDim, 8, schemestest.BlobClasses)
	test := schemestest.Blobs(20, 0.6, rand.New(rand.NewSource(1)))
	base := APConfig{
		Arch: arch, Cut: model.MLPDefaultCut,
		Groups: [][]int{{0}}, StepsPerClient: 1, LR: 0.1, Test: test,
	}
	cases := []struct {
		name string
		mut  func(*APConfig)
	}{
		{"zero steps", func(c *APConfig) { c.StepsPerClient = 0 }},
		{"zero lr", func(c *APConfig) { c.LR = 0 }},
		{"no groups", func(c *APConfig) { c.Groups = nil }},
		{"empty group", func(c *APConfig) { c.Groups = [][]int{{}} }},
		{"duplicate client", func(c *APConfig) { c.Groups = [][]int{{0}, {0}} }},
		{"no test", func(c *APConfig) { c.Test = nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mut(&cfg)
			ap, err := NewAP("127.0.0.1:0", cfg)
			if err == nil {
				ap.Shutdown()
				t.Fatal("expected config error")
			}
		})
	}
}

func TestDialValidation(t *testing.T) {
	arch := model.MLP(schemestest.BlobDim, 8, schemestest.BlobClasses)
	ds := schemestest.Blobs(10, 0.6, rand.New(rand.NewSource(1)))
	cases := []struct {
		name string
		cfg  ClientConfig
	}{
		{"no data", ClientConfig{ID: 0, Arch: arch, Cut: 2, Batch: 4, LR: 0.1}},
		{"zero batch", ClientConfig{ID: 0, Arch: arch, Cut: 2, Train: ds, Batch: 0, LR: 0.1}},
		{"zero lr", ClientConfig{ID: 0, Arch: arch, Cut: 2, Train: ds, Batch: 4, LR: 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Dial("127.0.0.1:1", tc.cfg); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestWireTensorRoundTrip(t *testing.T) {
	x := tensor.New(2, 3, 4).RandNormal(rand.New(rand.NewSource(5)), 0, 1)
	w := toWire(x)
	// Mutating the original must not affect the wire copy.
	x.Fill(0)
	y, err := fromWire(w)
	if err != nil {
		t.Fatal(err)
	}
	if y.Dim(2) != 4 || y.L2Norm() == 0 {
		t.Fatal("wire round trip lost data or aliased the source")
	}
}

func TestFromWireRejectsCorrupt(t *testing.T) {
	if _, err := fromWire(WireTensor{Shape: []int{2, 2}, Data: []float64{1}}); err == nil {
		t.Fatal("expected size mismatch error")
	}
	if _, err := fromWire(WireTensor{Shape: []int{-1}, Data: nil}); err == nil {
		t.Fatal("expected negative dimension error")
	}
}

func TestSnapshotWireRoundTrip(t *testing.T) {
	arch := model.MLP(4, 3, 2)
	m := arch.NewSplit(rand.New(rand.NewSource(1)), 2)
	snap := model.TakeSnapshot(m.Client)
	back, err := snapshotFromWire(snapshotToWire(snap))
	if err != nil {
		t.Fatal(err)
	}
	if snap.L2Distance(back) != 0 {
		t.Fatal("snapshot wire round trip changed parameters")
	}
}

// Interface conformance: the network world reuses data.Dataset.
var _ data.Dataset = (*data.InMemory)(nil)

// launchQuantWorld is launchWorld with 8-bit frames enabled on both ends.
func TestNetworkGSFLQuantizedFramesTrain(t *testing.T) {
	arch := model.MLP(schemestest.BlobDim, 16, schemestest.BlobClasses)
	cut := model.MLPDefaultCut
	const nClients = 4

	rng := rand.New(rand.NewSource(21))
	pool := schemestest.Blobs(nClients*40, 0.6, rng)
	parts := partition.IID(pool, nClients, rand.New(rand.NewSource(22)))
	test := schemestest.Blobs(200, 0.6, rand.New(rand.NewSource(23)))
	groups := partition.Groups(nClients, 2, partition.GroupRoundRobin, nil, nil)

	ap, err := NewAP("127.0.0.1:0", APConfig{
		Arch: arch, Cut: cut, Groups: groups,
		StepsPerClient: 4, LR: 0.05, Momentum: 0.9,
		Test: test, Seed: 7, Quantize: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, nClients)
	var wg sync.WaitGroup
	for ci := 0; ci < nClients; ci++ {
		cl, err := Dial(ap.Addr(), ClientConfig{
			ID: ci, Arch: arch, Cut: cut, Train: parts[ci],
			Batch: 8, LR: 0.05, Momentum: 0.9, Seed: int64(300 + ci),
			Quantize: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- cl.Run()
		}()
	}
	if err := ap.WaitForClients(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 10; r++ {
		if err := ap.Round(); err != nil {
			t.Fatal(err)
		}
	}
	_, acc := ap.Evaluate()
	if err := ap.Shutdown(); err != nil {
		t.Logf("shutdown: %v", err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("client error: %v", err)
		}
	}
	// 8-bit transfers must still learn the toy task.
	if acc < 0.7 {
		t.Fatalf("quantized network GSFL accuracy %v", acc)
	}
}

func TestDecodeActsPrefersQuantized(t *testing.T) {
	x := tensor.New(6).RandNormal(rand.New(rand.NewSource(31)), 0, 1)
	msg := clientEnvelope{QActs: quantize.Quantize(x)}
	got, err := decodeActs(&msg)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(got, x, msg.QActs.MaxError()+1e-12) {
		t.Fatal("quantized decode outside error bound")
	}
}
