package transport

import (
	"io"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"gsfl/internal/data"
	"gsfl/internal/model"
	"gsfl/internal/partition"
	"gsfl/internal/schemes/schemestest"
	"gsfl/internal/testutil"
)

// launchWorld starts an AP plus one goroutine per client on localhost
// and returns the AP, a shutdown func, and an error channel collecting
// client Run results. tweak functions adjust the AP config before it
// launches.
func launchWorld(t *testing.T, nClients, nGroups, steps int, tweak ...func(*APConfig)) (*AP, func(), chan error) {
	t.Helper()
	arch := model.MLP(schemestest.BlobDim, 16, schemestest.BlobClasses)
	cut := model.MLPDefaultCut

	rng := rand.New(rand.NewSource(1))
	pool := schemestest.Blobs(nClients*40, 0.6, rng)
	parts := partition.IID(pool, nClients, rand.New(rand.NewSource(2)))
	test := schemestest.Blobs(200, 0.6, rand.New(rand.NewSource(3)))

	groups := partition.Groups(nClients, nGroups, partition.GroupRoundRobin, nil, nil)
	cfg := APConfig{
		Arch:           arch,
		Cut:            cut,
		Groups:         groups,
		StepsPerClient: steps,
		LR:             0.05,
		Momentum:       0.9,
		Test:           test,
		Seed:           7,
	}
	for _, f := range tweak {
		f(&cfg)
	}
	ap, err := NewAP("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}

	errs := make(chan error, nClients)
	var wg sync.WaitGroup
	for ci := 0; ci < nClients; ci++ {
		cl, err := Dial(ap.Addr(), ClientConfig{
			ID:       ci,
			Arch:     arch,
			Cut:      cut,
			Train:    parts[ci],
			Batch:    8,
			LR:       0.05,
			Momentum: 0.9,
			Seed:     7,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- cl.Run()
		}()
	}
	if err := ap.WaitForClients(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	stop := func() {
		if err := ap.Shutdown(); err != nil {
			t.Logf("shutdown: %v", err)
		}
		wg.Wait()
		close(errs)
	}
	return ap, stop, errs
}

func TestNetworkGSFLTrainsEndToEnd(t *testing.T) {
	ap, stop, errs := launchWorld(t, 6, 2, 4)
	_, before := ap.Evaluate()
	for r := 0; r < 10; r++ {
		stats, err := ap.Round()
		if err != nil {
			t.Fatal(err)
		}
		if stats.Participants != 6 || stats.Stragglers != 0 || stats.Groups != 2 {
			t.Fatalf("round %d stats %+v on a healthy fleet", r, stats)
		}
	}
	_, after := ap.Evaluate()
	stop()
	for err := range errs {
		if err != nil {
			t.Fatalf("client error: %v", err)
		}
	}
	if after < 0.7 {
		t.Fatalf("network GSFL accuracy %v after 10 rounds (started at %v)", after, before)
	}
	if after <= before {
		t.Fatalf("accuracy did not improve: %v -> %v", before, after)
	}
}

func TestNetworkGroupsRunConcurrently(t *testing.T) {
	// Smoke test with more groups than CPUs would still pass; here we
	// just verify a multi-group round completes and aggregates.
	ap, stop, errs := launchWorld(t, 8, 4, 2)
	defer func() {
		stop()
		for err := range errs {
			if err != nil {
				t.Fatalf("client error: %v", err)
			}
		}
	}()
	stats, err := ap.Round()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Groups != 4 {
		t.Fatalf("aggregated %d groups, want 4", stats.Groups)
	}
	l, a := ap.Evaluate()
	if l <= 0 || a < 0 || a > 1 {
		t.Fatalf("evaluate returned loss=%v acc=%v", l, a)
	}
}

// TestShutdownLeavesNoGoroutines is the shutdown leak regression test:
// after Shutdown returns, no transport goroutine — accept loop,
// registration, group, or metrics — may still be alive.
func TestShutdownLeavesNoGoroutines(t *testing.T) {
	ap, stop, errs := launchWorld(t, 4, 2, 1)
	if _, err := ap.Round(); err != nil {
		t.Fatal(err)
	}
	stop()
	for err := range errs {
		if err != nil {
			t.Fatalf("client error: %v", err)
		}
	}
	if err := ap.Shutdown(); err != nil {
		t.Fatalf("second shutdown errored: %v", err)
	}
	testutil.ExpectNoGoroutines(t, "gsfl/internal/transport")
}

// TestShutdownAbortsPendingRegistration pins the half-registered
// connection path: a connection that never sends hello must not block or
// outlive Shutdown.
func TestShutdownAbortsPendingRegistration(t *testing.T) {
	arch := model.MLP(schemestest.BlobDim, 8, schemestest.BlobClasses)
	test := schemestest.Blobs(20, 0.6, rand.New(rand.NewSource(1)))
	ap, err := NewAP("127.0.0.1:0", APConfig{
		Arch: arch, Cut: model.MLPDefaultCut,
		Groups: [][]int{{0}}, StepsPerClient: 1, LR: 0.1, Test: test,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Dial raw and send nothing: the connection sits in registration.
	conn, err := netDial(ap.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	time.Sleep(20 * time.Millisecond)
	done := make(chan error, 1)
	go func() { done <- ap.Shutdown() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("shutdown hung on a pending registration")
	}
	testutil.ExpectNoGoroutines(t, "gsfl/internal/transport.(*AP)")
}

func TestRoundAfterShutdownErrs(t *testing.T) {
	ap, stop, errs := launchWorld(t, 2, 1, 1)
	stop()
	for range errs {
	}
	if _, err := ap.Round(); err != ErrShutdown {
		t.Fatalf("Round after shutdown returned %v, want ErrShutdown", err)
	}
}

func TestWaitForClientsTimeout(t *testing.T) {
	arch := model.MLP(schemestest.BlobDim, 8, schemestest.BlobClasses)
	test := schemestest.Blobs(20, 0.6, rand.New(rand.NewSource(1)))
	ap, err := NewAP("127.0.0.1:0", APConfig{
		Arch:           arch,
		Cut:            model.MLPDefaultCut,
		Groups:         [][]int{{0}},
		StepsPerClient: 1,
		LR:             0.1,
		Test:           test,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ap.Shutdown()
	if err := ap.WaitForClients(50 * time.Millisecond); err == nil {
		t.Fatal("expected timeout with no clients")
	}
}

func TestNewAPValidation(t *testing.T) {
	arch := model.MLP(schemestest.BlobDim, 8, schemestest.BlobClasses)
	test := schemestest.Blobs(20, 0.6, rand.New(rand.NewSource(1)))
	base := APConfig{
		Arch: arch, Cut: model.MLPDefaultCut,
		Groups: [][]int{{0}}, StepsPerClient: 1, LR: 0.1, Test: test,
	}
	cases := []struct {
		name string
		mut  func(*APConfig)
	}{
		{"zero steps", func(c *APConfig) { c.StepsPerClient = 0 }},
		{"zero lr", func(c *APConfig) { c.LR = 0 }},
		{"no groups", func(c *APConfig) { c.Groups = nil }},
		{"empty group", func(c *APConfig) { c.Groups = [][]int{{}} }},
		{"duplicate client", func(c *APConfig) { c.Groups = [][]int{{0}, {0}} }},
		{"negative client id", func(c *APConfig) { c.Groups = [][]int{{-1}} }},
		{"no test", func(c *APConfig) { c.Test = nil }},
		{"unknown straggler policy", func(c *APConfig) { c.Straggler = "no-such-policy" }},
		{"cut out of range", func(c *APConfig) { c.Cut = 99 }},
		{"negative cut", func(c *APConfig) { c.Cut = -1 }},
		{"missing arch", func(c *APConfig) { c.Arch = model.Arch{} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mut(&cfg)
			ap, err := NewAP("127.0.0.1:0", cfg)
			if err == nil {
				ap.Shutdown()
				t.Fatal("expected config error")
			}
		})
	}
}

func TestDialValidation(t *testing.T) {
	arch := model.MLP(schemestest.BlobDim, 8, schemestest.BlobClasses)
	ds := schemestest.Blobs(10, 0.6, rand.New(rand.NewSource(1)))
	cases := []struct {
		name string
		cfg  ClientConfig
	}{
		{"negative id", ClientConfig{ID: -1, Arch: arch, Cut: 2, Train: ds, Batch: 4, LR: 0.1}},
		{"no data", ClientConfig{ID: 0, Arch: arch, Cut: 2, Batch: 4, LR: 0.1}},
		{"zero batch", ClientConfig{ID: 0, Arch: arch, Cut: 2, Train: ds, Batch: 0, LR: 0.1}},
		{"zero lr", ClientConfig{ID: 0, Arch: arch, Cut: 2, Train: ds, Batch: 4, LR: 0}},
		{"cut out of range", ClientConfig{ID: 0, Arch: arch, Cut: 99, Train: ds, Batch: 4, LR: 0.1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Through Dial the connect error would mask validation; feed
			// NewClientConn a pipe so the config check itself must fire.
			// Every case is invalid, so it returns before the hello write
			// (which would block on an unread synchronous pipe).
			c1, c2 := net.Pipe()
			defer c1.Close()
			defer c2.Close()
			if _, err := NewClientConn(c1, tc.cfg); err == nil {
				t.Fatal("expected error")
			}
			if _, err := Dial("127.0.0.1:1", tc.cfg); err == nil {
				t.Fatal("expected dial error")
			}
		})
	}
}

func TestQuantizeModeMismatchRejectsRegistration(t *testing.T) {
	arch := model.MLP(schemestest.BlobDim, 8, schemestest.BlobClasses)
	test := schemestest.Blobs(20, 0.6, rand.New(rand.NewSource(1)))
	ds := schemestest.Blobs(10, 0.6, rand.New(rand.NewSource(2)))
	ap, err := NewAP("127.0.0.1:0", APConfig{
		Arch: arch, Cut: model.MLPDefaultCut,
		Groups: [][]int{{0}}, StepsPerClient: 1, LR: 0.1, Test: test,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ap.Shutdown()
	// Quantizing client against a full-precision AP: the hello is
	// rejected, so the client never registers.
	cl, err := Dial(ap.Addr(), ClientConfig{
		ID: 0, Arch: arch, Cut: model.MLPDefaultCut, Train: ds,
		Batch: 4, LR: 0.1, Quantize: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	go cl.Run()
	if err := ap.WaitForClients(200 * time.Millisecond); err == nil {
		t.Fatal("mismatched client registered")
	}
}

func TestMetricsEndpointServesCounters(t *testing.T) {
	arch := model.MLP(schemestest.BlobDim, 16, schemestest.BlobClasses)
	cut := model.MLPDefaultCut
	ds := schemestest.Blobs(40, 0.6, rand.New(rand.NewSource(1)))
	test := schemestest.Blobs(40, 0.6, rand.New(rand.NewSource(2)))
	ap, err := NewAP("127.0.0.1:0", APConfig{
		Arch: arch, Cut: cut, Groups: [][]int{{0}},
		StepsPerClient: 1, LR: 0.05, Test: test, Seed: 3,
		MetricsAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ap.Shutdown()
	if ap.MetricsAddr() == "" {
		t.Fatal("metrics endpoint not listening")
	}

	cl, err := Dial(ap.Addr(), ClientConfig{
		ID: 0, Arch: arch, Cut: cut, Train: ds, Batch: 8, LR: 0.05, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cl.Run() }()
	if err := ap.WaitForClients(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := ap.Round(); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + ap.MetricsAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"gsfl_rounds_total 1",
		"gsfl_clients_active 1",
		"gsfl_bytes_read_total",
		"gsfl_bytes_written_total",
	} {
		if !containsLine(string(body), want) {
			t.Errorf("metrics output missing %q:\n%s", want, body)
		}
	}
	ap.Shutdown()
	if err := <-done; err != nil {
		t.Fatalf("client error: %v", err)
	}
}

func containsLine(body, prefix string) bool {
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, prefix) {
			return true
		}
	}
	return false
}

// Interface conformance: the network world reuses data.Dataset.
var _ data.Dataset = (*data.InMemory)(nil)

func TestNetworkGSFLQuantizedFramesTrain(t *testing.T) {
	arch := model.MLP(schemestest.BlobDim, 16, schemestest.BlobClasses)
	cut := model.MLPDefaultCut
	const nClients = 4

	rng := rand.New(rand.NewSource(21))
	pool := schemestest.Blobs(nClients*40, 0.6, rng)
	parts := partition.IID(pool, nClients, rand.New(rand.NewSource(22)))
	test := schemestest.Blobs(200, 0.6, rand.New(rand.NewSource(23)))
	groups := partition.Groups(nClients, 2, partition.GroupRoundRobin, nil, nil)

	ap, err := NewAP("127.0.0.1:0", APConfig{
		Arch: arch, Cut: cut, Groups: groups,
		StepsPerClient: 4, LR: 0.05, Momentum: 0.9,
		Test: test, Seed: 7, Quantize: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, nClients)
	var wg sync.WaitGroup
	for ci := 0; ci < nClients; ci++ {
		cl, err := Dial(ap.Addr(), ClientConfig{
			ID: ci, Arch: arch, Cut: cut, Train: parts[ci],
			Batch: 8, LR: 0.05, Momentum: 0.9, Seed: int64(300 + ci),
			Quantize: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- cl.Run()
		}()
	}
	if err := ap.WaitForClients(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 10; r++ {
		if _, err := ap.Round(); err != nil {
			t.Fatal(err)
		}
	}
	_, acc := ap.Evaluate()
	if err := ap.Shutdown(); err != nil {
		t.Logf("shutdown: %v", err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("client error: %v", err)
		}
	}
	// 8-bit transfers must still learn the toy task.
	if acc < 0.7 {
		t.Fatalf("quantized network GSFL accuracy %v", acc)
	}
}

// netDial opens a raw TCP connection to the AP, bypassing the client
// handshake — for tests that need a connection stuck in registration.
func netDial(addr string) (net.Conn, error) {
	return net.Dial("tcp", addr)
}
