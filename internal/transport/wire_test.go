package transport

import (
	"errors"
	"io"
	"math/rand"
	"net"
	"testing"

	"gsfl/internal/model"
	"gsfl/internal/optim"
	"gsfl/internal/quantize"
	"gsfl/internal/tensor"
)

// encodeFrame renders one frame through the production encoder and
// returns (kind, payload) — the exact bytes readFrame would hand a peer.
func encodeFrame(build func(e *wireEnc)) (byte, []byte) {
	var e wireEnc
	build(&e)
	frame := e.finish()
	return frame[4], append([]byte(nil), frame[frameHeaderLen:]...)
}

func testTurnState(seed int64) TurnState {
	rng := rand.New(rand.NewSource(seed))
	m := model.MLP(4, 3, 2).NewSplit(rng, 2)
	st := TurnState{
		Model: model.TakeSnapshot(m.Client),
		Opt: optim.SGDState{
			Step:           7,
			VelocityShapes: [][]int{{4, 3}, {3}},
			VelocityData:   [][]float64{make([]float64, 12), make([]float64, 3)},
		},
	}
	for _, buf := range st.Opt.VelocityData {
		for i := range buf {
			buf[i] = rng.NormFloat64()
		}
	}
	return st
}

func TestWireHelloRoundTrip(t *testing.T) {
	kind, payload := encodeFrame(func(e *wireEnc) {
		e.begin(frameHello)
		e.u32(wireMagic)
		e.u16(wireVersion)
		e.u32(42)
		e.u64(1234)
		e.u8(helloFlagQuantize)
	})
	if kind != frameHello {
		t.Fatalf("kind %d", kind)
	}
	msg, err := decodeHello(payload)
	if err != nil {
		t.Fatal(err)
	}
	if msg.ClientID != 42 || msg.Samples != 1234 || !msg.Quantize {
		t.Fatalf("decoded %+v", msg)
	}
}

func TestWireHelloRejectsBadMagicAndVersion(t *testing.T) {
	_, badMagic := encodeFrame(func(e *wireEnc) {
		e.begin(frameHello)
		e.u32(0xDEADBEEF)
		e.u16(wireVersion)
		e.u32(1)
		e.u64(1)
		e.u8(0)
	})
	if _, err := decodeHello(badMagic); err == nil {
		t.Fatal("bad magic accepted")
	}
	_, badVersion := encodeFrame(func(e *wireEnc) {
		e.begin(frameHello)
		e.u32(wireMagic)
		e.u16(wireVersion + 1)
		e.u32(1)
		e.u64(1)
		e.u8(0)
	})
	if _, err := decodeHello(badVersion); err == nil {
		t.Fatal("future version accepted")
	}
}

func TestWireTrainRoundTrip(t *testing.T) {
	want := testTurnState(5)
	_, payload := encodeFrame(func(e *wireEnc) {
		e.begin(frameTrain)
		e.u32(3)
		e.turnState(&want)
	})
	steps, got, err := decodeTrain(payload, nil)
	if err != nil {
		t.Fatal(err)
	}
	if steps != 3 {
		t.Fatalf("steps %d, want 3", steps)
	}
	if want.Model.L2Distance(got.Model) != 0 {
		t.Fatal("model changed in transit")
	}
	if got.Opt.Step != want.Opt.Step || len(got.Opt.VelocityData) != len(want.Opt.VelocityData) {
		t.Fatalf("optimizer state changed: %+v", got.Opt)
	}
	for i, buf := range got.Opt.VelocityData {
		for j, v := range buf {
			if v != want.Opt.VelocityData[i][j] {
				t.Fatalf("velocity[%d][%d] = %v, want %v", i, j, v, want.Opt.VelocityData[i][j])
			}
		}
	}
}

// TestWireTrainReturnPayloadAlignment pins the layout guarantee the
// loadgen echo depends on: a return payload is exactly a train payload
// minus its leading step-count word.
func TestWireTrainReturnPayloadAlignment(t *testing.T) {
	st := testTurnState(9)
	_, train := encodeFrame(func(e *wireEnc) {
		e.begin(frameTrain)
		e.u32(5)
		e.turnState(&st)
	})
	if _, err := decodeReturn(train[4:], nil); err != nil {
		t.Fatalf("train[4:] does not decode as a return payload: %v", err)
	}
}

func TestWireSmashedRoundTrip(t *testing.T) {
	acts := tensor.New(2, 3).RandNormal(rand.New(rand.NewSource(11)), 0, 1)
	ys := []int{1, 0}
	_, payload := encodeFrame(func(e *wireEnc) {
		e.begin(frameSmashed)
		e.u8(encFloat64)
		e.tensor(acts)
		e.labels(ys)
	})
	got, q, gotYs, err := decodeSmashed(payload, nil)
	if err != nil {
		t.Fatal(err)
	}
	if q != nil {
		t.Fatal("full-precision frame decoded as quantized")
	}
	if !got.SameShape(acts) || got.L2Norm() != acts.L2Norm() {
		t.Fatal("activations changed in transit")
	}
	if len(gotYs) != 2 || gotYs[0] != 1 || gotYs[1] != 0 {
		t.Fatalf("labels %v", gotYs)
	}
	// Mutating the source after encode must not affect the decode.
	acts.Fill(0)
	if got.L2Norm() == 0 {
		t.Fatal("decoded tensor aliases the source")
	}
}

func TestWireQuantizedSmashedRoundTrip(t *testing.T) {
	acts := tensor.New(4, 5).RandNormal(rand.New(rand.NewSource(13)), 0, 1)
	q := quantize.Quantize(acts)
	_, payload := encodeFrame(func(e *wireEnc) {
		e.begin(frameSmashed)
		e.u8(encQuant8)
		e.quantized(q)
		e.labels([]int{0, 1, 2, 3})
	})
	got, gotQ, ys, err := decodeSmashed(payload, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != nil || gotQ == nil {
		t.Fatal("quantized frame decoded as full precision")
	}
	if len(ys) != 4 {
		t.Fatalf("labels %v", ys)
	}
	// Dequantizing the wire copy must reproduce the sender's numerics
	// exactly — quantization error is paid once, at QuantizeInto.
	a, b := q.Dequantize(), gotQ.Dequantize()
	if !a.SameShape(b) {
		t.Fatal("shape changed in transit")
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("dequantized[%d] %v != %v", i, b.Data[i], a.Data[i])
		}
	}
}

func TestWireGradientRoundTrip(t *testing.T) {
	grad := tensor.New(2, 3).RandNormal(rand.New(rand.NewSource(17)), 0, 1)
	_, payload := encodeFrame(func(e *wireEnc) {
		e.begin(frameGradient)
		e.u8(encFloat64)
		e.tensor(grad)
	})
	got, q, err := decodeGradient(payload, nil)
	if err != nil {
		t.Fatal(err)
	}
	if q != nil || !got.SameShape(grad) || got.L2Norm() != grad.L2Norm() {
		t.Fatal("gradient changed in transit")
	}
}

func TestWireDecodersRejectHostileInput(t *testing.T) {
	st := testTurnState(19)
	_, ret := encodeFrame(func(e *wireEnc) {
		e.begin(frameReturn)
		e.turnState(&st)
	})
	cases := []struct {
		name string
		kind byte
		p    []byte
	}{
		{"truncated return", frameReturn, ret[:len(ret)/2]},
		{"trailing garbage", frameReturn, append(append([]byte(nil), ret...), 0xFF)},
		{"empty train", frameTrain, nil},
		{"smashed bad encoding", frameSmashed, []byte{9}},
		{"shutdown with payload", frameShutdown, []byte{1}},
		{"unknown kind", 99, nil},
		{"huge tensor rank", frameGradient, []byte{encFloat64, 200}},
		// Shape claims 2^32-ish elements backed by nothing: must error,
		// not allocate.
		{"oversized shape", frameGradient, []byte{encFloat64, 2, 0xFF, 0xFF, 0xFF, 0x7F, 0xFF, 0xFF, 0xFF, 0x7F}},
		{"label flood", frameSmashed, []byte{encFloat64, 1, 1, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 0xFF, 0xFF, 0xFF, 0x7F}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := decodeFrame(tc.kind, tc.p); err == nil {
				t.Fatal("hostile payload accepted")
			}
		})
	}
}

func TestFrameConnRejectsOversizeFrame(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	sender := newFrameConn(a, 0)
	receiver := newFrameConn(b, 64) // tiny cap on the receiving side

	errc := make(chan error, 1)
	go func() {
		st := testTurnState(23)
		errc <- sender.writeReturn(&st)
	}()
	_, _, err := receiver.readFrame()
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("read err %v, want ErrFrameTooLarge", err)
	}
	a.Close() // release the blocked writer
	<-errc

	// The cap also applies on the encode side.
	big := newFrameConn(a, 16)
	st := testTurnState(23)
	if err := big.writeReturn(&st); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("write err %v, want ErrFrameTooLarge", err)
	}
}

func TestFrameConnSurfacesShortWrite(t *testing.T) {
	short := &shortWriteConn{}
	fc := newFrameConn(short, 0)
	if err := fc.writeShutdown(); !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("err %v, want ErrShortWrite", err)
	}
}

// shortWriteConn delivers one byte fewer than asked, without error — the
// (contract-violating) behaviour faultconn's partial-write fault models.
type shortWriteConn struct{ net.Conn }

func (c *shortWriteConn) Write(p []byte) (int, error) { return len(p) - 1, nil }

// FuzzDecodeFrame drives the exact decoder stack the AP and clients run
// on untrusted bytes. The invariant: any input either decodes or
// errors — never panics, never allocates beyond what the payload length
// can back (enforced structurally by the decoders' pre-allocation
// bounds checks; a violation here shows up as OOM or runtime panic).
func FuzzDecodeFrame(f *testing.F) {
	// Seed corpus: one well-formed frame of every kind plus the classic
	// footguns (empty payload, truncation, trailing bytes).
	st := testTurnState(29)
	acts := tensor.New(2, 3).RandNormal(rand.New(rand.NewSource(31)), 0, 1)

	addFrame := func(build func(e *wireEnc)) {
		kind, payload := encodeFrame(build)
		f.Add(kind, payload)
		if len(payload) > 0 {
			f.Add(kind, payload[:len(payload)/2])
			f.Add(kind, append(append([]byte(nil), payload...), 0))
		}
	}
	addFrame(func(e *wireEnc) {
		e.begin(frameHello)
		e.u32(wireMagic)
		e.u16(wireVersion)
		e.u32(3)
		e.u64(100)
		e.u8(helloFlagQuantize)
	})
	addFrame(func(e *wireEnc) {
		e.begin(frameTrain)
		e.u32(2)
		e.turnState(&st)
	})
	addFrame(func(e *wireEnc) {
		e.begin(frameSmashed)
		e.u8(encFloat64)
		e.tensor(acts)
		e.labels([]int{0, 1})
	})
	addFrame(func(e *wireEnc) {
		e.begin(frameSmashed)
		e.u8(encQuant8)
		e.quantized(quantize.Quantize(acts))
		e.labels([]int{0, 1})
	})
	addFrame(func(e *wireEnc) {
		e.begin(frameGradient)
		e.u8(encFloat64)
		e.tensor(acts)
	})
	addFrame(func(e *wireEnc) {
		e.begin(frameReturn)
		e.turnState(&st)
	})
	f.Add(frameShutdown, []byte{})
	f.Add(byte(0), []byte{})
	f.Add(byte(255), []byte{0xFF, 0xFF, 0xFF, 0xFF})

	// The fleet job plane's frames (hello/lease/progress/result/heartbeat)
	// share this fuzz target; their seeds live next to their codecs.
	fleetFuzzSeeds(addFrame)

	f.Fuzz(func(t *testing.T, kind byte, payload []byte) {
		_ = decodeFrame(kind, payload)
	})
}
