package transport

import (
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"gsfl/internal/data"
	"gsfl/internal/model"
	"gsfl/internal/partition"
	"gsfl/internal/schemes/schemestest"
	"gsfl/internal/testutil/faultconn"
)

// The tests in this file run the full AP/client protocol over net.Pipe
// with faultconn-injected failures. net.Pipe is synchronous and
// unbuffered, and the protocol is strictly sequential per connection, so
// every run of a given (topology, seed, profile) triple replays the
// identical byte schedule — these are deterministic regression tests,
// not flaky chaos tests.

type pipeAddr struct{}

func (pipeAddr) Network() string { return "pipe" }
func (pipeAddr) String() string  { return "pipe" }

// pipeListener is a net.Listener whose connections are net.Pipe pairs
// handed in via dial. The client end of each pair is wrapped with the
// supplied fault profile.
type pipeListener struct {
	conns chan net.Conn
	done  chan struct{}
	once  sync.Once
}

func newPipeListener() *pipeListener {
	return &pipeListener{conns: make(chan net.Conn), done: make(chan struct{})}
}

func (l *pipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *pipeListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

func (l *pipeListener) Addr() net.Addr { return pipeAddr{} }

func (l *pipeListener) dial(p faultconn.Profile) (*faultconn.Conn, error) {
	server, client := net.Pipe()
	select {
	case l.conns <- server:
		return faultconn.Wrap(client, p), nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

// faultWorld is one AP over a pipeListener plus per-client fault
// profiles.
type faultWorld struct {
	t     *testing.T
	ap    *AP
	ln    *pipeListener
	arch  model.Arch
	cut   int
	parts []*data.Subset
	conns map[int]*faultconn.Conn
	wg    sync.WaitGroup
	mu    sync.Mutex
	errs  map[int]error
}

// newFaultWorld builds the AP (deadline + policy from cfg overrides) and
// starts the listed clients, each under its fault profile.
func newFaultWorld(t *testing.T, nClients int, groups [][]int, deadline time.Duration, policy string, profiles map[int]faultconn.Profile) *faultWorld {
	t.Helper()
	w := &faultWorld{
		t:     t,
		ln:    newPipeListener(),
		arch:  model.MLP(schemestest.BlobDim, 16, schemestest.BlobClasses),
		cut:   model.MLPDefaultCut,
		conns: map[int]*faultconn.Conn{},
		errs:  map[int]error{},
	}
	pool := schemestest.Blobs(nClients*40, 0.6, rand.New(rand.NewSource(1)))
	w.parts = partition.IID(pool, nClients, rand.New(rand.NewSource(2)))
	test := schemestest.Blobs(100, 0.6, rand.New(rand.NewSource(3)))

	ap, err := NewAPListener(w.ln, APConfig{
		Arch: w.arch, Cut: w.cut, Groups: groups,
		StepsPerClient: 1, LR: 0.05, Momentum: 0.9,
		Test: test, Seed: 7,
		RoundDeadline: deadline,
		Straggler:     policy,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.ap = ap
	for ci := 0; ci < nClients; ci++ {
		w.startClient(ci, profiles[ci])
	}
	if err := ap.WaitForClients(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	return w
}

// startClient dials through the pipe listener with the given profile and
// runs the client in a goroutine.
func (w *faultWorld) startClient(id int, p faultconn.Profile) {
	w.t.Helper()
	conn, err := w.ln.dial(p)
	if err != nil {
		w.t.Fatal(err)
	}
	cl, err := NewClientConn(conn, ClientConfig{
		ID: id, Arch: w.arch, Cut: w.cut, Train: w.parts[id%len(w.parts)],
		Batch: 8, LR: 0.05, Momentum: 0.9, Seed: 7,
	})
	if err != nil {
		w.t.Fatal(err)
	}
	w.conns[id] = conn
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		err := cl.Run()
		w.mu.Lock()
		w.errs[id] = err
		w.mu.Unlock()
	}()
}

// stop shuts the AP down and releases every client (closing their conns
// unblocks stalled fault operations).
func (w *faultWorld) stop() {
	w.ap.Shutdown()
	for _, c := range w.conns {
		c.Close()
	}
	w.wg.Wait()
}

func TestStragglerStallDropsClientAndRoundSurvives(t *testing.T) {
	// Client 1 stalls on its first post-hello write (the smashed upload),
	// so the AP's read deadline fires mid-turn.
	w := newFaultWorld(t, 2, [][]int{{0, 1}}, 300*time.Millisecond, "drop",
		map[int]faultconn.Profile{1: {StallAfterWrites: 2}})
	defer w.stop()

	stats, err := w.ap.Round()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Participants != 1 || stats.Stragglers != 1 || stats.Groups != 1 {
		t.Fatalf("round 1 stats %+v, want 1 participant, 1 straggler, 1 group", stats)
	}
	if w.ap.ClientCount() != 1 {
		t.Fatalf("straggler still registered: %d clients", w.ap.ClientCount())
	}

	// The vacated slot has no spare to refill it: round 2 skips it and
	// the surviving client keeps training on the patched chain.
	stats, err = w.ap.Round()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Participants != 1 || stats.Skipped != 1 || stats.Stragglers != 0 {
		t.Fatalf("round 2 stats %+v, want 1 participant, 1 skipped", stats)
	}
	if l, a := w.ap.Evaluate(); l <= 0 || a < 0 || a > 1 {
		t.Fatalf("model unusable after straggler rounds: loss=%v acc=%v", l, a)
	}
}

func TestDeadlineExhaustionSkipsButKeepsHealthyClients(t *testing.T) {
	// Client 0 — the HEAD of the chain — stalls and burns the whole
	// round budget. Client 1 behind it never gets a turn, but it did
	// nothing wrong: it must be skipped with its connection kept, not
	// dropped as a straggler. One stalled peer must not evict a group's
	// healthy fleet.
	w := newFaultWorld(t, 2, [][]int{{0, 1}}, 300*time.Millisecond, "drop",
		map[int]faultconn.Profile{0: {StallAfterWrites: 2}})
	defer w.stop()

	stats, err := w.ap.Round()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Participants != 0 || stats.Stragglers != 1 || stats.Skipped != 1 {
		t.Fatalf("round 1 stats %+v, want 0 participants, 1 straggler, 1 skipped", stats)
	}
	if w.ap.ClientCount() != 1 {
		t.Fatalf("healthy client was evicted with the straggler: %d clients", w.ap.ClientCount())
	}

	// Round 2 starts with a fresh budget: the kept client trains.
	stats, err = w.ap.Round()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Participants != 1 || stats.Stragglers != 0 || stats.Skipped != 1 {
		t.Fatalf("round 2 stats %+v, want the kept client participating", stats)
	}
}

func TestReuseLastPolicySubstitutesPreviousTurn(t *testing.T) {
	// Client 1 completes round 1 (writes: hello, smashed, return) and
	// stalls on round 2's smashed upload (write 4). Under reuse-last its
	// round-1 state re-enters the chain; under drop it does not — so the
	// two policies must aggregate different global models in round 2,
	// from identical seeds and an identical fault schedule.
	run := func(policy string) model.Snapshot {
		w := newFaultWorld(t, 2, [][]int{{0, 1}}, 300*time.Millisecond, policy,
			map[int]faultconn.Profile{1: {StallAfterWrites: 4}})
		defer w.stop()
		s1, err := w.ap.Round()
		if err != nil {
			t.Fatal(err)
		}
		if s1.Participants != 2 || s1.Stragglers != 0 {
			t.Fatalf("%s round 1 stats %+v, want clean round", policy, s1)
		}
		s2, err := w.ap.Round()
		if err != nil {
			t.Fatal(err)
		}
		if s2.Participants != 1 || s2.Stragglers != 1 || s2.Groups != 1 {
			t.Fatalf("%s round 2 stats %+v, want 1 participant, 1 straggler", policy, s2)
		}
		client, _ := w.ap.GlobalSnapshots()
		return client
	}
	dropModel := run("drop")
	reuseModel := run("reuse-last")
	if dropModel.L2Distance(reuseModel) == 0 {
		t.Fatal("reuse-last aggregated the same model as drop; the stale turn was not substituted")
	}
}

func TestMidFrameDropBecomesStraggler(t *testing.T) {
	// Client 1's connection dies after 200 written bytes: past its hello
	// (20 framed bytes) but inside its first smashed frame. The AP sees a
	// mid-frame EOF, not a deadline — still a straggler.
	w := newFaultWorld(t, 2, [][]int{{0, 1}}, time.Second, "drop",
		map[int]faultconn.Profile{1: {DropAfterBytes: 200}})
	defer w.stop()

	stats, err := w.ap.Round()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Participants != 1 || stats.Stragglers != 1 {
		t.Fatalf("stats %+v, want 1 participant and 1 straggler", stats)
	}
}

func TestPartialWriteKillsTurnNotAP(t *testing.T) {
	// Seed 7 at p=0.5 delivers the hello whole and truncates the first
	// smashed upload: the client detects the short write and aborts, the
	// AP sees the conn die mid-turn. Either way the round survives.
	w := newFaultWorld(t, 2, [][]int{{0, 1}}, 300*time.Millisecond, "drop",
		map[int]faultconn.Profile{1: {Seed: 7, PartialWriteProb: 0.5}})
	defer w.stop()

	stats, err := w.ap.Round()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Participants != 1 || stats.Stragglers != 1 {
		t.Fatalf("stats %+v, want 1 participant and 1 straggler", stats)
	}
}

func TestBackpressureStalledReaderTripsWriteDeadline(t *testing.T) {
	// The client never reads a single frame. net.Pipe is unbuffered, so
	// the AP's train write cannot complete — backpressure blocks the
	// group goroutine at the socket (one frame in flight, no queue)
	// until the round deadline converts the stall into a straggler.
	const deadline = 300 * time.Millisecond
	w := newFaultWorld(t, 1, [][]int{{0}}, deadline, "drop",
		map[int]faultconn.Profile{0: {StallAfterReads: 1}})
	defer w.stop()

	before, _ := w.ap.GlobalSnapshots()
	start := time.Now()
	stats, err := w.ap.Round()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Participants != 0 || stats.Stragglers != 1 || stats.Groups != 0 {
		t.Fatalf("stats %+v, want only a straggler", stats)
	}
	if el := time.Since(start); el < deadline-50*time.Millisecond || el > 5*time.Second {
		t.Fatalf("round took %v, want ~deadline (%v)", el, deadline)
	}
	// No group contributed: the global model must be untouched, exactly
	// like a fully-dropped simulator round.
	after, _ := w.ap.GlobalSnapshots()
	if before.L2Distance(after) != 0 {
		t.Fatal("global model changed in a round with no participants")
	}
}

func TestLeaveAndJoinRefillSlot(t *testing.T) {
	w := newFaultWorld(t, 2, [][]int{{0}, {1}}, time.Second, "drop", nil)
	defer w.stop()

	if stats, err := w.ap.Round(); err != nil || stats.Participants != 2 {
		t.Fatalf("round 1: %+v, %v", stats, err)
	}

	// Client 1 leaves between rounds; a spare (id 5) joins.
	w.conns[1].Close()
	w.startClient(5, faultconn.Profile{})
	if err := w.ap.WaitForCount(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// The AP only discovers the death when it touches the connection:
	// round 2 records the straggler, round 3 refills the slot from the
	// spare.
	stats, err := w.ap.Round()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Stragglers != 1 || stats.Participants != 1 {
		t.Fatalf("round 2 stats %+v, want the dead client surfaced as a straggler", stats)
	}
	stats, err = w.ap.Round()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Refilled != 1 || stats.Participants != 2 || stats.Skipped != 0 {
		t.Fatalf("round 3 stats %+v, want the spare refilled into the slot", stats)
	}
}

func TestFaultScheduleReplayIsByteIdentical(t *testing.T) {
	// Two full training runs under an identical seeded fault profile must
	// produce (a) identical injected-fault scripts and (b) bit-identical
	// global models — the replay guarantee every test above leans on.
	profile := faultconn.Profile{Seed: 99, WriteDelayProb: 0.5, WriteDelay: time.Millisecond}
	run := func() (string, model.Snapshot) {
		w := newFaultWorld(t, 2, [][]int{{0, 1}}, 0, "drop",
			map[int]faultconn.Profile{1: profile})
		defer w.stop()
		for r := 0; r < 3; r++ {
			if _, err := w.ap.Round(); err != nil {
				t.Fatal(err)
			}
		}
		client, _ := w.ap.GlobalSnapshots()
		return w.conns[1].Script(), client
	}
	script1, model1 := run()
	script2, model2 := run()
	if script1 != script2 {
		t.Fatalf("fault schedules diverged across runs:\n--- run 1\n%s--- run 2\n%s", script1, script2)
	}
	if script1 == "" {
		t.Fatal("profile injected no faults; the replay test is vacuous")
	}
	if model1.L2Distance(model2) != 0 {
		t.Fatal("global models diverged across identical fault runs")
	}
}

func TestStragglerPolicyRegistry(t *testing.T) {
	names := StragglerPolicies()
	has := map[string]bool{}
	for _, n := range names {
		has[n] = true
	}
	if !has["drop"] || !has["reuse-last"] {
		t.Fatalf("registry %v missing built-in policies", names)
	}
	if _, err := stragglerPolicyByName("no-such-policy"); err == nil {
		t.Fatal("unknown policy name resolved")
	}

	handed := &TurnState{}
	last := &TurnState{}
	drop, _ := stragglerPolicyByName("drop")
	if next, counted := drop(handed, last); next != handed || counted {
		t.Fatal("drop must hand back the pre-turn state, uncounted")
	}
	reuse, _ := stragglerPolicyByName("reuse-last")
	if next, counted := reuse(handed, last); next != last || !counted {
		t.Fatal("reuse-last must substitute the last good state, counted")
	}
	if next, counted := reuse(handed, nil); next != handed || counted {
		t.Fatal("reuse-last without history must degrade to drop")
	}

	for _, bad := range []struct {
		name string
		p    StragglerPolicy
	}{
		{"", drop},
		{"drop", drop},
		{"x", nil},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RegisterStragglerPolicy(%q, %v) did not panic", bad.name, bad.p == nil)
				}
			}()
			RegisterStragglerPolicy(bad.name, bad.p)
		}()
	}
}
