package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"gsfl/internal/agg"
	"gsfl/internal/data"
	"gsfl/internal/loss"
	"gsfl/internal/model"
	"gsfl/internal/nn"
	"gsfl/internal/optim"
	"gsfl/internal/quantize"
	"gsfl/internal/tensor"
)

// APConfig configures the access point / edge server.
type APConfig struct {
	// Arch and Cut define the model and split point.
	Arch model.Arch
	Cut  int
	// Groups assigns registered client IDs to groups; clients within a
	// group train sequentially, groups run concurrently.
	Groups [][]int
	// StepsPerClient is the number of mini-batches per client turn.
	StepsPerClient int
	// LR / Momentum configure the server-side optimizers (one per group).
	LR       float64
	Momentum float64
	// Test is the evaluation set held at the AP.
	Test data.Dataset
	// Seed derives model initialization.
	Seed int64
	// Quantize enables 8-bit quantization of the smashed-data and
	// gradient frames (the model halves still travel at full precision).
	// Clients must be configured identically.
	Quantize bool
}

// AP is the listening access point. It owns the global model halves, one
// server-side replica per group, and the client registry.
type AP struct {
	cfg APConfig
	ln  net.Listener

	globalClient model.Snapshot
	globalServer model.Snapshot
	replicas     []*nn.Sequential // server halves, one per group
	serverOpts   []*optim.SGD
	evalModel    *model.SplitModel

	mu      sync.Mutex
	conns   map[int]*clientConn
	arrived chan struct{} // signalled on each registration

	// accepting goroutine lifecycle
	acceptDone chan struct{}
	closed     bool
}

// clientConn is one registered client's connection with its codec pair.
// A connection is only ever used by the single group goroutine that owns
// the client, so no locking is needed around enc/dec during a round.
type clientConn struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// NewAP validates the config, builds the models, and starts listening on
// addr (e.g. "127.0.0.1:0" for an ephemeral test port).
func NewAP(addr string, cfg APConfig) (*AP, error) {
	if cfg.StepsPerClient <= 0 {
		return nil, fmt.Errorf("transport: steps per client %d must be positive", cfg.StepsPerClient)
	}
	if cfg.LR <= 0 {
		return nil, fmt.Errorf("transport: learning rate %v must be positive", cfg.LR)
	}
	if len(cfg.Groups) == 0 {
		return nil, errors.New("transport: no groups configured")
	}
	seen := map[int]bool{}
	for gi, g := range cfg.Groups {
		if len(g) == 0 {
			return nil, fmt.Errorf("transport: group %d is empty", gi)
		}
		for _, ci := range g {
			if seen[ci] {
				return nil, fmt.Errorf("transport: client %d appears in two groups", ci)
			}
			seen[ci] = true
		}
	}
	if cfg.Test == nil || cfg.Test.Len() == 0 {
		return nil, errors.New("transport: missing test set")
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	init := cfg.Arch.NewSplit(rand.New(rand.NewSource(cfg.Seed)), cfg.Cut)
	ap := &AP{
		cfg:          cfg,
		ln:           ln,
		globalClient: model.TakeSnapshot(init.Client),
		globalServer: model.TakeSnapshot(init.Server),
		evalModel:    init,
		conns:        make(map[int]*clientConn),
		arrived:      make(chan struct{}, 1024),
		acceptDone:   make(chan struct{}),
	}
	ap.replicas = make([]*nn.Sequential, len(cfg.Groups))
	ap.serverOpts = make([]*optim.SGD, len(cfg.Groups))
	for g := range cfg.Groups {
		rep := cfg.Arch.NewSplit(rand.New(rand.NewSource(cfg.Seed+int64(g)+1)), cfg.Cut)
		ap.replicas[g] = rep.Server
		ap.serverOpts[g] = optim.NewSGDMomentum(cfg.LR, cfg.Momentum)
	}
	go ap.acceptLoop()
	return ap, nil
}

// Addr returns the listening address clients should dial.
func (ap *AP) Addr() string { return ap.ln.Addr().String() }

// acceptLoop registers incoming clients until the listener closes.
func (ap *AP) acceptLoop() {
	defer close(ap.acceptDone)
	for {
		conn, err := ap.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go ap.register(conn)
	}
}

// register reads the hello frame and files the connection under its
// client ID. Bad registrations drop the connection.
func (ap *AP) register(conn net.Conn) {
	cc := &clientConn{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
	var hello clientEnvelope
	if err := cc.dec.Decode(&hello); err != nil || hello.Kind != kindHello {
		conn.Close()
		return
	}
	ap.mu.Lock()
	if _, dup := ap.conns[hello.ClientID]; dup {
		ap.mu.Unlock()
		conn.Close()
		return
	}
	ap.conns[hello.ClientID] = cc
	ap.mu.Unlock()
	select {
	case ap.arrived <- struct{}{}:
	default:
	}
}

// WaitForClients blocks until every client named in Groups has
// registered, or the timeout elapses.
func (ap *AP) WaitForClients(timeout time.Duration) error {
	deadline := time.After(timeout)
	for {
		if ap.allRegistered() {
			return nil
		}
		select {
		case <-ap.arrived:
		case <-deadline:
			return fmt.Errorf("transport: timed out waiting for clients (%d registered)", ap.clientCount())
		}
	}
}

func (ap *AP) allRegistered() bool {
	ap.mu.Lock()
	defer ap.mu.Unlock()
	for _, g := range ap.cfg.Groups {
		for _, ci := range g {
			if _, ok := ap.conns[ci]; !ok {
				return false
			}
		}
	}
	return true
}

func (ap *AP) clientCount() int {
	ap.mu.Lock()
	defer ap.mu.Unlock()
	return len(ap.conns)
}

// Round drives one full GSFL round over the network: distribution,
// concurrent per-group split training, and aggregation. It returns the
// first error any group encountered (the round is then unusable and the
// caller should Shutdown).
func (ap *AP) Round() error {
	type result struct {
		group  int
		client model.Snapshot
		err    error
	}
	results := make(chan result, len(ap.cfg.Groups))

	for g := range ap.cfg.Groups {
		// Step 1: every group replica starts from the global server half.
		ap.globalServer.Restore(ap.replicas[g])
		go func(g int) {
			snap, err := ap.runGroup(g)
			results <- result{group: g, client: snap, err: err}
		}(g)
	}

	clientSnaps := make([]model.Snapshot, 0, len(ap.cfg.Groups))
	serverSnaps := make([]model.Snapshot, 0, len(ap.cfg.Groups))
	weights := make([]float64, 0, len(ap.cfg.Groups))
	var firstErr error
	for range ap.cfg.Groups {
		r := <-results
		if r.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("transport: group %d: %w", r.group, r.err)
			}
			continue
		}
		clientSnaps = append(clientSnaps, r.client)
		serverSnaps = append(serverSnaps, model.TakeSnapshot(ap.replicas[r.group]))
		weights = append(weights, float64(len(ap.cfg.Groups[r.group])))
	}
	if firstErr != nil {
		return firstErr
	}
	// Step 3: aggregation among groups.
	ap.globalClient = agg.FedAvg(clientSnaps, weights)
	ap.globalServer = agg.FedAvg(serverSnaps, weights)
	return nil
}

// runGroup executes Step 2 for one group: sequential split training
// through its clients, relaying the client model via this AP. Returns
// the final client-side snapshot.
func (ap *AP) runGroup(g int) (model.Snapshot, error) {
	lossFn := loss.SoftmaxCrossEntropy{}
	server := ap.replicas[g]
	opt := ap.serverOpts[g]
	modelWire := snapshotToWire(ap.globalClient)

	for _, ci := range ap.cfg.Groups[g] {
		cc := ap.connFor(ci)
		if cc == nil {
			return model.Snapshot{}, fmt.Errorf("client %d not registered", ci)
		}
		// Hand the current client model to this client and start its turn.
		err := cc.enc.Encode(apEnvelope{
			Kind:  kindTrain,
			Model: modelWire,
			Steps: ap.cfg.StepsPerClient,
		})
		if err != nil {
			return model.Snapshot{}, fmt.Errorf("sending train to %d: %w", ci, err)
		}
		for s := 0; s < ap.cfg.StepsPerClient; s++ {
			var msg clientEnvelope
			if err := cc.dec.Decode(&msg); err != nil {
				return model.Snapshot{}, fmt.Errorf("reading smashed from %d: %w", ci, err)
			}
			if msg.Kind != kindSmashed {
				return model.Snapshot{}, fmt.Errorf("client %d sent %q, want smashed", ci, msg.Kind)
			}
			acts, err := decodeActs(&msg)
			if err != nil {
				return model.Snapshot{}, err
			}
			// Server-side forward + loss + backward, then return the cut
			// gradient.
			logits := server.Forward(acts, true)
			_, dLogits := lossFn.Eval(logits, msg.Labels)
			server.ZeroGrads()
			dSmashed := server.Backward(dLogits)
			opt.Step(server.Params(), server.Grads(), server.DecayMask())
			grad := apEnvelope{Kind: kindGradient}
			if ap.cfg.Quantize {
				grad.QGrad = quantize.Quantize(dSmashed)
			} else {
				grad.Grad = toWire(dSmashed)
			}
			if err := cc.enc.Encode(grad); err != nil {
				return model.Snapshot{}, fmt.Errorf("sending gradient to %d: %w", ci, err)
			}
		}
		var ret clientEnvelope
		if err := cc.dec.Decode(&ret); err != nil {
			return model.Snapshot{}, fmt.Errorf("reading model return from %d: %w", ci, err)
		}
		if ret.Kind != kindReturn {
			return model.Snapshot{}, fmt.Errorf("client %d sent %q, want return", ci, ret.Kind)
		}
		modelWire = ret.Model // relay to the next client (through this AP)
	}
	snap, err := snapshotFromWire(modelWire)
	if err != nil {
		return model.Snapshot{}, err
	}
	return snap, nil
}

func (ap *AP) connFor(ci int) *clientConn {
	ap.mu.Lock()
	defer ap.mu.Unlock()
	return ap.conns[ci]
}

// Evaluate runs the aggregated global model over the AP's test set.
func (ap *AP) Evaluate() (lossVal, acc float64) {
	ap.globalClient.Restore(ap.evalModel.Client)
	ap.globalServer.Restore(ap.evalModel.Server)
	lossFn := loss.SoftmaxCrossEntropy{}
	n := ap.cfg.Test.Len()
	const chunk = 256
	total, correct := 0.0, 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		cnt := hi - lo
		shape := append([]int{cnt}, ap.cfg.Arch.InShape...)
		x := tensor.New(shape...)
		y := make([]int, cnt)
		per := x.Size() / cnt
		for i := lo; i < hi; i++ {
			f, label := ap.cfg.Test.Sample(i)
			copy(x.Data[(i-lo)*per:(i-lo+1)*per], f)
			y[i-lo] = label
		}
		logits := ap.evalModel.Forward(x, false)
		l, _ := lossFn.Eval(logits, y)
		total += l * float64(cnt)
		for i, p := range logits.ArgMaxRows() {
			if p == y[i] {
				correct++
			}
		}
	}
	return total / float64(n), float64(correct) / float64(n)
}

// Shutdown tells every client to exit, closes all connections, and stops
// the listener. Safe to call once.
func (ap *AP) Shutdown() error {
	ap.mu.Lock()
	if ap.closed {
		ap.mu.Unlock()
		return nil
	}
	ap.closed = true
	conns := make([]*clientConn, 0, len(ap.conns))
	for _, cc := range ap.conns {
		conns = append(conns, cc)
	}
	ap.mu.Unlock()

	var firstErr error
	for _, cc := range conns {
		if err := cc.enc.Encode(apEnvelope{Kind: kindShutdown}); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := cc.conn.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := ap.ln.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	<-ap.acceptDone
	return firstErr
}
