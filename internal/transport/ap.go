package transport

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"gsfl/internal/agg"
	"gsfl/internal/data"
	"gsfl/internal/loss"
	"gsfl/internal/metrics"
	"gsfl/internal/model"
	"gsfl/internal/nn"
	"gsfl/internal/optim"
	"gsfl/internal/quantize"
	"gsfl/internal/schemes"
	"gsfl/internal/tensor"
	"gsfl/obs"
)

// registerTimeout bounds how long a fresh connection may take to present
// its hello frame before the AP drops it. Keeps half-open or silent
// connections from pinning registration goroutines.
const registerTimeout = 10 * time.Second

// ErrShutdown is returned by Round on an AP that has been shut down.
var ErrShutdown = errors.New("transport: ap is shut down")

// APConfig configures the access point / edge server.
type APConfig struct {
	// Arch and Cut define the model and split point.
	Arch model.Arch
	Cut  int
	// Groups assigns client IDs to group slots; clients within a group
	// train sequentially, groups run concurrently. The assignment is the
	// initial one — slots vacated by departed clients are refilled from
	// spare registrations at round boundaries.
	Groups [][]int
	// StepsPerClient is the number of mini-batches per client turn.
	StepsPerClient int
	// LR / Momentum / ClipNorm / LRDecay* configure the server-side
	// optimizers (one per group), mirroring the simulator's
	// hyperparameters so both substrates take identical optimizer steps.
	LR            float64
	Momentum      float64
	ClipNorm      float64
	LRDecayFactor float64
	LRDecayEvery  int
	// Test is the evaluation set held at the AP.
	Test data.Dataset
	// Seed derives model initialization — through the same
	// schemes.DeriveSeed streams the in-process trainer uses, so a
	// fault-free TCP round reproduces the simulator bit-for-bit at equal
	// seeds.
	Seed int64
	// Quantize enables 8-bit quantization of the smashed-data and
	// gradient frames (the model halves still travel at full precision).
	// Clients must be configured identically.
	Quantize bool
	// RoundDeadline bounds every network operation of one round: a
	// client that cannot complete its turn before roundStart+deadline is
	// a straggler — its connection is closed, the configured fallback
	// policy patches the relay chain, and the round continues. It doubles
	// as the backpressure bound: the AP keeps at most one frame in flight
	// per connection, so a stalled receiver blocks its group goroutine at
	// the socket until the deadline fires, never queues unbounded memory.
	// Zero disables deadlines (trusted-network mode).
	RoundDeadline time.Duration
	// Straggler names the registered fallback policy ("drop",
	// "reuse-last", or anything added via RegisterStragglerPolicy).
	// Empty selects "drop".
	Straggler string
	// MaxFrameBytes caps a frame payload (0 = DefaultMaxFrameBytes).
	MaxFrameBytes int
	// MetricsAddr, when non-empty, serves the AP's operational counters
	// in Prometheus text format at GET /metrics on this address.
	MetricsAddr string
	// Tracer, when non-nil, records wall-clock execution spans: one lane
	// per group (turn spans wrapping the per-step wire/compute phases),
	// one "rounds" lane, straggler markers. Nil leaves tracing disabled
	// at the cost of one pointer check per span site.
	Tracer *obs.Tracer
}

// Wire-phase names, shared by the trace spans and the latency
// histograms (dashes become underscores in metric names). Constants so
// the hot path never formats strings.
const (
	phaseWriteTrain    = "write-train"
	phaseReadSmashed   = "read-smashed"
	phaseServerCompute = "server-compute"
	phaseWriteGradient = "write-gradient"
	phaseReadReturn    = "read-return"
)

// phaseNames lists the turn phases in wire order — the iteration order
// for quantile summaries and reports.
var phaseNames = []string{
	phaseWriteTrain, phaseReadSmashed, phaseServerCompute,
	phaseWriteGradient, phaseReadReturn,
}

// newOptimizer mirrors schemes.Env.NewOptimizer for the transport
// configs: same constructor, same clipping, same decay schedule — the
// optimizer-step sequence is part of the byte-identity contract.
func newOptimizer(lr, momentum, clipNorm, decayFactor float64, decayEvery int) *optim.SGD {
	opt := optim.NewSGDMomentum(lr, momentum)
	opt.ClipNorm = clipNorm
	if decayEvery > 0 {
		opt.Schedule = optim.StepDecayLR(lr, decayFactor, decayEvery)
	}
	return opt
}

// RoundStats reports what one network round actually did — the
// load-bearing counterpart of the simulator's latency ledger.
type RoundStats struct {
	// Round is the 1-based round index.
	Round int
	// Participants is how many clients contributed a fresh update.
	Participants int
	// Stragglers is how many clients missed the deadline or died
	// mid-turn (their connections are closed).
	Stragglers int
	// Skipped is how many group slots got no turn: no live connection
	// when the turn came, or the round budget was already exhausted by
	// an earlier straggler in the chain (the connection stays open).
	Skipped int
	// Refilled is how many vacated slots were refilled from spare
	// registrations at the round boundary.
	Refilled int
	// Groups is how many groups contributed to aggregation.
	Groups int
	// Duration is the round's wall-clock time.
	Duration time.Duration
}

// clientConn is one registered client's framed connection. During a
// round it is owned exclusively by the goroutine of the group its
// client currently sits in; between rounds nothing touches it.
type clientConn struct {
	id      int
	samples int64
	conn    net.Conn
	fc      *frameConn
	// lastGood is the turn state this client returned on its most recent
	// completed turn — what the reuse-last straggler policy substitutes.
	lastGood *TurnState
}

// groupRT is one group's training runtime: its server-half replica and
// optimizer, the relayed client-side optimizer state between rounds, and
// the reusable per-step workspaces (loss gradient, activation pool,
// quantization buffers) that keep steady-state turns allocation-free.
type groupRT struct {
	server         *nn.Sequential
	opt            *optim.SGD
	clientOptState optim.SGDState

	lossGrad tensor.Tensor
	pool     tensor.Pool
	deq      tensor.Tensor
	qGrad    quantize.Quantized

	// track is the group's trace lane (nil when tracing is disabled),
	// bound at construction so round paths never format lane names.
	track *obs.Track
}

// AP is the listening access point. It owns the global model halves, one
// server-side replica per group, and the client roster.
type AP struct {
	cfg    APConfig
	ln     net.Listener
	policy StragglerPolicy

	globalClient model.Snapshot
	globalServer model.Snapshot
	groupRTs     []*groupRT
	capServer    []model.Snapshot
	evalModel    *model.SplitModel
	smashedShape []int

	reg         *metrics.Registry
	mRounds     *metrics.Counter
	mBytesIn    *metrics.Counter
	mBytesOut   *metrics.Counter
	mStragglers *metrics.Counter
	mJoined     *metrics.Counter
	mLeft       *metrics.Counter
	mActive     *metrics.Gauge
	mLastRound  *metrics.Gauge
	hRound      *metrics.Histogram
	hPhase      map[string]*metrics.Histogram // keyed by phaseNames
	hFrameIn    *metrics.Histogram
	hFrameOut   *metrics.Histogram

	// tracer/roundTrack record execution spans (nil-safe no-ops when
	// disabled); flight is the always-on post-mortem ring buffer.
	tracer     *obs.Tracer
	roundTrack *obs.Track
	flight     *obs.FlightRecorder

	mu       sync.Mutex
	members  [][]int // mutable copy of cfg.Groups, refilled over time
	slotted  map[int]bool
	joined   map[int]*clientConn
	everSeen map[int]bool
	pending  map[net.Conn]bool
	arrived  chan struct{} // signalled on each registration
	closed   bool
	round    int

	regWG      sync.WaitGroup
	acceptDone chan struct{}

	metricsLn   net.Listener
	metricsSrv  *http.Server
	metricsDone chan struct{}
}

// NewAP validates the config, builds the models, and starts listening on
// addr (e.g. "127.0.0.1:0" for an ephemeral test port).
func NewAP(addr string, cfg APConfig) (*AP, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	ap, err := NewAPListener(ln, cfg)
	if err != nil {
		ln.Close()
		return nil, err
	}
	return ap, nil
}

// validateCut rejects a missing architecture or out-of-range cut with
// an error instead of the panic Arch.NewSplit reserves for programmer
// errors: in the network processes the cut comes from a user flag and
// must fail gracefully.
func validateCut(arch model.Arch, cut int) error {
	if arch.Build == nil {
		return errors.New("transport: missing architecture")
	}
	if n := len(arch.Build(rand.New(rand.NewSource(0)))); cut < 0 || cut > n {
		return fmt.Errorf("transport: cut %d outside [0,%d] for arch %q", cut, n, arch.Name)
	}
	return nil
}

// NewAPListener builds an AP over an existing listener — the injection
// point the fault tests use to interpose faultconn wrappers between the
// AP and its clients.
func NewAPListener(ln net.Listener, cfg APConfig) (*AP, error) {
	if cfg.StepsPerClient <= 0 {
		return nil, fmt.Errorf("transport: steps per client %d must be positive", cfg.StepsPerClient)
	}
	if cfg.LR <= 0 {
		return nil, fmt.Errorf("transport: learning rate %v must be positive", cfg.LR)
	}
	if len(cfg.Groups) == 0 {
		return nil, errors.New("transport: no groups configured")
	}
	seen := map[int]bool{}
	for gi, g := range cfg.Groups {
		if len(g) == 0 {
			return nil, fmt.Errorf("transport: group %d is empty", gi)
		}
		for _, ci := range g {
			if ci < 0 {
				return nil, fmt.Errorf("transport: negative client id %d in group %d", ci, gi)
			}
			if seen[ci] {
				return nil, fmt.Errorf("transport: client %d appears in two groups", ci)
			}
			seen[ci] = true
		}
	}
	if cfg.Test == nil || cfg.Test.Len() == 0 {
		return nil, errors.New("transport: missing test set")
	}
	if err := validateCut(cfg.Arch, cfg.Cut); err != nil {
		return nil, err
	}
	if cfg.Straggler == "" {
		cfg.Straggler = "drop"
	}
	policy, err := stragglerPolicyByName(cfg.Straggler)
	if err != nil {
		return nil, err
	}

	// Model init draws from the same derived stream as the in-process
	// trainer's env.Rng("init", 0) — the root of the byte-identity
	// guarantee between the two substrates.
	init := cfg.Arch.NewSplit(rand.New(rand.NewSource(schemes.DeriveSeed(cfg.Seed, "init", 0))), cfg.Cut)
	ap := &AP{
		cfg:          cfg,
		ln:           ln,
		policy:       policy,
		globalClient: model.TakeSnapshot(init.Client),
		globalServer: model.TakeSnapshot(init.Server),
		evalModel:    init,
		smashedShape: init.SmashedShape(),
		reg:          metrics.NewRegistry(),
		slotted:      map[int]bool{},
		joined:       map[int]*clientConn{},
		everSeen:     map[int]bool{},
		pending:      map[net.Conn]bool{},
		arrived:      make(chan struct{}, 1),
		acceptDone:   make(chan struct{}),
	}
	ap.mRounds = ap.reg.Counter("gsfl_rounds_total", "Completed training rounds.")
	ap.mBytesIn = ap.reg.Counter("gsfl_bytes_read_total", "Framed bytes read from clients.")
	ap.mBytesOut = ap.reg.Counter("gsfl_bytes_written_total", "Framed bytes written to clients.")
	ap.mStragglers = ap.reg.Counter("gsfl_stragglers_total", "Clients dropped for missing the round deadline.")
	ap.mJoined = ap.reg.Counter("gsfl_clients_joined_total", "Successful client registrations.")
	ap.mLeft = ap.reg.Counter("gsfl_clients_left_total", "Registered clients whose connections closed.")
	ap.mActive = ap.reg.Gauge("gsfl_clients_active", "Currently registered clients.")
	ap.mLastRound = ap.reg.Gauge("gsfl_round_millis", "Wall-clock duration of the last round in milliseconds.")
	ap.hRound = ap.reg.Histogram("gsfl_round_seconds",
		"Wall-clock round latency.", metrics.DefSecondsBuckets)
	ap.hPhase = make(map[string]*metrics.Histogram, len(phaseNames))
	for _, ph := range phaseNames {
		name := "gsfl_phase_" + strings.ReplaceAll(ph, "-", "_") + "_seconds"
		ap.hPhase[ph] = ap.reg.Histogram(name,
			"Wall-clock latency of the "+ph+" turn phase.", metrics.DefSecondsBuckets)
	}
	ap.hFrameIn = ap.reg.Histogram("gsfl_frame_read_bytes",
		"Size of framed messages read from clients.", metrics.DefBytesBuckets)
	ap.hFrameOut = ap.reg.Histogram("gsfl_frame_write_bytes",
		"Size of framed messages written to clients.", metrics.DefBytesBuckets)
	ap.tracer = cfg.Tracer
	ap.roundTrack = cfg.Tracer.Lane("ap", "rounds")
	ap.flight = obs.NewFlightRecorder(0)

	ap.members = make([][]int, len(cfg.Groups))
	for g, mem := range cfg.Groups {
		ap.members[g] = append([]int(nil), mem...)
		for _, ci := range mem {
			ap.slotted[ci] = true
		}
	}
	ap.groupRTs = make([]*groupRT, len(cfg.Groups))
	ap.capServer = make([]model.Snapshot, len(cfg.Groups))
	for g := range cfg.Groups {
		rep := cfg.Arch.NewSplit(rand.New(rand.NewSource(schemes.DeriveSeed(cfg.Seed, "replica", g))), cfg.Cut)
		ap.groupRTs[g] = &groupRT{
			server: rep.Server,
			opt:    newOptimizer(cfg.LR, cfg.Momentum, cfg.ClipNorm, cfg.LRDecayFactor, cfg.LRDecayEvery),
			track:  cfg.Tracer.Lane("ap", fmt.Sprintf("group %d", g)),
		}
	}

	if cfg.MetricsAddr != "" {
		if err := ap.serveMetrics(cfg.MetricsAddr); err != nil {
			ln.Close()
			return nil, err
		}
	}
	go ap.acceptLoop()
	return ap, nil
}

// Addr returns the listening address clients should dial.
func (ap *AP) Addr() string { return ap.ln.Addr().String() }

// Metrics returns the AP's operational counter registry.
func (ap *AP) Metrics() *metrics.Registry { return ap.reg }

// Flight returns the AP's always-on flight recorder: a bounded ring of
// round summaries, straggler events, and refills, dumped post-mortem
// when a round errors or stragglers spike.
func (ap *AP) Flight() *obs.FlightRecorder { return ap.flight }

// PhaseQuantiles summarizes the per-phase wall-latency histograms,
// keyed by phase name ("write-train", "read-smashed", ...). Phases
// with no observations are omitted.
func (ap *AP) PhaseQuantiles() map[string]PhaseQuantiles {
	out := make(map[string]PhaseQuantiles, len(phaseNames))
	for _, ph := range phaseNames {
		h := ap.hPhase[ph]
		if h.Count() == 0 {
			continue
		}
		out[ph] = PhaseQuantiles{
			Count: h.Count(),
			P50MS: h.Quantile(0.50) * 1000,
			P95MS: h.Quantile(0.95) * 1000,
			P99MS: h.Quantile(0.99) * 1000,
		}
	}
	return out
}

// PhaseQuantiles is one wire phase's latency summary, estimated from
// its histogram (bucket-interpolated, Prometheus-style).
type PhaseQuantiles struct {
	Count int64   `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
}

// MetricsAddr returns the address the metrics endpoint listens on, or ""
// when disabled.
func (ap *AP) MetricsAddr() string {
	if ap.metricsLn == nil {
		return ""
	}
	return ap.metricsLn.Addr().String()
}

func (ap *AP) serveMetrics(addr string) error {
	mln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("transport: metrics listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		ap.reg.WriteText(w)
	})
	srv := &http.Server{Handler: mux}
	done := make(chan struct{})
	ap.metricsLn, ap.metricsSrv, ap.metricsDone = mln, srv, done
	go func() {
		defer close(done)
		srv.Serve(mln)
	}()
	return nil
}

// acceptLoop registers incoming clients until the listener closes. Every
// in-flight registration is tracked (pending set + regWG) so Shutdown
// can abort and await them — no half-registered connection outlives it.
func (ap *AP) acceptLoop() {
	defer close(ap.acceptDone)
	for {
		conn, err := ap.ln.Accept()
		if err != nil {
			return // listener closed
		}
		ap.mu.Lock()
		if ap.closed {
			ap.mu.Unlock()
			conn.Close()
			continue
		}
		ap.pending[conn] = true
		ap.regWG.Add(1)
		ap.mu.Unlock()
		go ap.register(conn)
	}
}

// register reads the hello frame and files the connection under its
// client ID: into its group slot if it has one, as a spare otherwise.
// Bad or duplicate registrations drop the connection.
func (ap *AP) register(conn net.Conn) {
	defer ap.regWG.Done()
	conn.SetReadDeadline(time.Now().Add(registerTimeout))
	fc := newFrameConn(conn, ap.cfg.MaxFrameBytes)
	fc.onRead = func(n int) {
		ap.mBytesIn.Add(int64(n))
		ap.hFrameIn.Observe(float64(n))
	}
	fc.onWrite = func(n int) {
		ap.mBytesOut.Add(int64(n))
		ap.hFrameOut.Observe(float64(n))
	}

	kind, payload, err := fc.readFrame()
	var hello helloMsg
	if err == nil && kind == frameHello {
		hello, err = decodeHello(payload)
	} else if err == nil {
		err = fmt.Errorf("transport: first frame kind %d, want hello", kind)
	}
	if err == nil && ap.cfg.Quantize != hello.Quantize {
		err = fmt.Errorf("transport: client %d quantize=%v, ap has %v", hello.ClientID, hello.Quantize, ap.cfg.Quantize)
	}
	conn.SetReadDeadline(time.Time{})

	ap.mu.Lock()
	delete(ap.pending, conn)
	if err != nil || ap.closed {
		ap.mu.Unlock()
		conn.Close()
		return
	}
	if _, dup := ap.joined[hello.ClientID]; dup {
		ap.mu.Unlock()
		conn.Close()
		return
	}
	ap.joined[hello.ClientID] = &clientConn{id: hello.ClientID, samples: hello.Samples, conn: conn, fc: fc}
	ap.everSeen[hello.ClientID] = true
	ap.mu.Unlock()

	ap.mJoined.Inc()
	ap.mActive.Add(1)
	select {
	case ap.arrived <- struct{}{}:
	default:
	}
}

// drop removes a connection from the roster and closes it. Its group
// slot stays assigned and is refilled from spares at the next round
// boundary.
func (ap *AP) drop(cc *clientConn) {
	cc.conn.Close()
	ap.mu.Lock()
	cur, ok := ap.joined[cc.id]
	if ok && cur == cc {
		delete(ap.joined, cc.id)
	}
	ap.mu.Unlock()
	if ok && cur == cc {
		ap.mLeft.Inc()
		ap.mActive.Add(-1)
	}
}

// WaitForClients blocks until every client named in Groups has
// registered, or the timeout elapses.
func (ap *AP) WaitForClients(timeout time.Duration) error {
	return ap.waitUntil(timeout, ap.allRegistered, "all group members")
}

// WaitForCount blocks until at least n clients are registered
// (members or spares), or the timeout elapses.
func (ap *AP) WaitForCount(n int, timeout time.Duration) error {
	return ap.waitUntil(timeout, func() bool { return ap.ClientCount() >= n }, fmt.Sprintf("%d clients", n))
}

func (ap *AP) waitUntil(timeout time.Duration, ready func() bool, what string) error {
	deadline := time.After(timeout)
	for {
		if ready() {
			return nil
		}
		select {
		case <-ap.arrived:
		case <-deadline:
			return fmt.Errorf("transport: timed out waiting for %s (%d registered)", what, ap.ClientCount())
		}
	}
}

func (ap *AP) allRegistered() bool {
	ap.mu.Lock()
	defer ap.mu.Unlock()
	for _, g := range ap.members {
		for _, ci := range g {
			if _, ok := ap.joined[ci]; !ok {
				return false
			}
		}
	}
	return true
}

// ClientCount returns the number of currently registered clients.
func (ap *AP) ClientCount() int {
	ap.mu.Lock()
	defer ap.mu.Unlock()
	return len(ap.joined)
}

// turnSlot is one position of a group's round plan. cc is nil when the
// slot's client has no live connection (never joined, or left and the
// slot could not be refilled).
type turnSlot struct {
	id int
	cc *clientConn
}

// refillLocked re-fills group slots whose clients have left with spare
// registrations (ascending client ID, groups in index order) and
// returns how many slots changed hands. Slots of clients that never
// registered are kept for them. Callers hold ap.mu.
func (ap *AP) refillLocked() int {
	var spares []int
	for id := range ap.joined {
		if !ap.slotted[id] {
			spares = append(spares, id)
		}
	}
	sort.Ints(spares)
	refilled := 0
	si := 0
	for g := range ap.members {
		for i, id := range ap.members[g] {
			if si >= len(spares) {
				return refilled
			}
			if ap.joined[id] == nil && ap.everSeen[id] {
				delete(ap.slotted, id)
				nid := spares[si]
				si++
				ap.members[g][i] = nid
				ap.slotted[nid] = true
				refilled++
			}
		}
	}
	return refilled
}

// groupResult is what one group's goroutine hands back to Round.
type groupResult struct {
	state        TurnState
	weight       int64
	participants int
	stragglers   int
	skipped      int
}

// Round drives one full GSFL round over the network: slot refill, model
// distribution, concurrent per-group split training under the round
// deadline, and sample-weighted aggregation. Client failures never fail
// the round — they become stragglers handled by the configured policy;
// a round in which no client contributed keeps the previous global
// model, like a fully-dropped simulator round. Round is not safe for
// concurrent calls.
func (ap *AP) Round() (RoundStats, error) {
	start := time.Now()
	ap.mu.Lock()
	if ap.closed {
		ap.mu.Unlock()
		return RoundStats{}, ErrShutdown
	}
	ap.round++
	stats := RoundStats{Round: ap.round}
	stats.Refilled = ap.refillLocked()
	plans := make([][]turnSlot, len(ap.members))
	for g, mem := range ap.members {
		plans[g] = make([]turnSlot, len(mem))
		for i, id := range mem {
			plans[g][i] = turnSlot{id: id, cc: ap.joined[id]}
		}
	}
	ap.mu.Unlock()

	var deadline time.Time
	if ap.cfg.RoundDeadline > 0 {
		deadline = start.Add(ap.cfg.RoundDeadline)
	}
	roundSpan := ap.roundTrack.BeginWall(ap.roundTrack.Labelf("round %d", stats.Round), "round")

	// Step 1 + 2: distribute and train, groups concurrent. Each group
	// goroutine touches only group-owned state; the chain starts from the
	// shared global snapshots, which are read-only until aggregation.
	// Trace-wise each goroutine owns its group's lane for the round.
	results := make([]groupResult, len(plans))
	var wg sync.WaitGroup
	for g := range plans {
		rt := ap.groupRTs[g]
		ap.globalServer.Restore(rt.server)
		results[g].state = TurnState{Model: ap.globalClient, Opt: rt.clientOptState}
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ap.runGroup(ap.groupRTs[g], plans[g], deadline, &results[g], stats.Round)
		}(g)
	}
	wg.Wait()

	// Step 3: aggregation, in ascending group order — float addition
	// order is part of the byte-identity contract with the simulator.
	var aggClient, aggServer []model.Snapshot
	var weights []float64
	for g := range results {
		r := &results[g]
		stats.Participants += r.participants
		stats.Stragglers += r.stragglers
		stats.Skipped += r.skipped
		ap.groupRTs[g].clientOptState = r.state.Opt
		if r.weight > 0 {
			ap.capServer[g].CaptureFrom(ap.groupRTs[g].server)
			aggClient = append(aggClient, r.state.Model)
			aggServer = append(aggServer, ap.capServer[g])
			weights = append(weights, float64(r.weight))
			stats.Groups++
		}
	}
	if len(weights) > 0 {
		agg.FedAvgInto(&ap.globalClient, aggClient, weights)
		agg.FedAvgInto(&ap.globalServer, aggServer, weights)
	}
	ap.mStragglers.Add(int64(stats.Stragglers))
	ap.mRounds.Inc()
	stats.Duration = time.Since(start)
	ap.mLastRound.Set(stats.Duration.Milliseconds())
	ap.hRound.Observe(stats.Duration.Seconds())
	if ap.roundTrack.On() {
		roundSpan.EndNote(ap.roundTrack.Labelf("%d participants, %d stragglers, %d skipped",
			stats.Participants, stats.Stragglers, stats.Skipped))
	}
	ap.flight.Notef("round %d: %d participants, %d stragglers, %d skipped, %d refilled, %s",
		stats.Round, stats.Participants, stats.Stragglers, stats.Skipped, stats.Refilled,
		stats.Duration.Round(time.Millisecond))
	return stats, nil
}

// runGroup executes Step 2 for one group: sequential split training
// through its slots, relaying the turn state via this AP. res.state
// holds the chain state on entry and the final chain state on return.
func (ap *AP) runGroup(rt *groupRT, plan []turnSlot, deadline time.Time, res *groupResult, round int) {
	tk := rt.track
	for _, slot := range plan {
		if slot.cc == nil {
			res.skipped++
			continue
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			// The round budget was exhausted (by a straggler earlier in
			// the chain) before this turn started. The client did nothing
			// wrong — skip the slot but keep its connection, so one
			// stalled peer cannot evict a whole group's healthy fleet.
			res.skipped++
			tk.WallInstant("skipped", "fault", tk.Labelf("client %d: round budget exhausted", slot.id))
			continue
		}
		turn := tk.BeginWall(tk.Labelf("client %d", slot.id), "turn")
		handed := res.state
		if err := ap.runTurn(rt, slot.cc, &res.state, deadline); err != nil {
			// Straggler: kill the connection, patch the chain, continue.
			res.stragglers++
			if tk.On() {
				turn.EndNote("straggler: " + err.Error())
			}
			ap.flight.Notef("round %d: client %d straggled: %v", round, slot.id, err)
			next, counted := ap.policy(&handed, slot.cc.lastGood)
			res.state = *next
			if counted {
				res.weight += slot.cc.samples
			}
			ap.drop(slot.cc)
			continue
		}
		turn.End()
		res.participants++
		res.weight += slot.cc.samples
	}
}

// phase closes one wire-phase interval: it feeds the phase's wall
// latency histogram and, when the group lane is live, records the span.
// Only successful phases are observed — a failed read or write becomes
// a straggler note, not a latency sample.
func (ap *AP) phase(tk *obs.Track, name string, start time.Time) {
	d := time.Since(start)
	ap.hPhase[name].Observe(d.Seconds())
	tk.WallSpanAt(name, "phase", start, d)
}

// runTurn drives one client's training turn. On success the chain state
// is replaced by what the client returned; any failure (deadline,
// disconnect, protocol violation, malformed tensor) leaves the chain
// untouched and reports the error for straggler handling.
func (ap *AP) runTurn(rt *groupRT, cc *clientConn, chain *TurnState, deadline time.Time) error {
	lossFn := loss.SoftmaxCrossEntropy{}
	tk := rt.track
	at := time.Now()
	cc.conn.SetWriteDeadline(deadline)
	if err := cc.fc.writeTrain(ap.cfg.StepsPerClient, chain); err != nil {
		return err
	}
	ap.phase(tk, phaseWriteTrain, at)
	for s := 0; s < ap.cfg.StepsPerClient; s++ {
		at = time.Now()
		cc.conn.SetReadDeadline(deadline)
		kind, payload, err := cc.fc.readFrame()
		if err != nil {
			return err
		}
		if kind != frameSmashed {
			return fmt.Errorf("transport: client %d sent kind %d, want smashed", cc.id, kind)
		}
		acts, q, ys, err := decodeSmashed(payload, &rt.pool)
		if err != nil {
			return err
		}
		serverIn := acts
		if q != nil {
			if !ap.cfg.Quantize {
				return fmt.Errorf("transport: client %d sent quantized frame to full-precision ap", cc.id)
			}
			serverIn = q.DequantizeInto(&rt.deq)
		} else if ap.cfg.Quantize {
			return fmt.Errorf("transport: client %d sent full-precision frame to quantizing ap", cc.id)
		}
		if err := ap.checkSmashed(serverIn, ys); err != nil {
			if acts != nil {
				rt.pool.Put(acts)
			}
			return fmt.Errorf("transport: client %d: %w", cc.id, err)
		}
		ap.phase(tk, phaseReadSmashed, at)

		// Server-side forward + loss + backward, then return the cut
		// gradient — the same op sequence as the simulator's SplitStep.
		at = time.Now()
		logits := rt.server.Forward(serverIn, true)
		lossFn.EvalInto(logits, ys, &rt.lossGrad)
		rt.server.ZeroGrads()
		dSmashed := rt.server.Backward(&rt.lossGrad)
		ap.phase(tk, phaseServerCompute, at)
		at = time.Now()
		cc.conn.SetWriteDeadline(deadline)
		var werr error
		if ap.cfg.Quantize {
			quantize.QuantizeInto(&rt.qGrad, dSmashed)
			werr = cc.fc.writeGradient(nil, &rt.qGrad)
		} else {
			werr = cc.fc.writeGradient(dSmashed, nil)
		}
		if werr == nil {
			ap.phase(tk, phaseWriteGradient, at)
		}
		// The optimizer step deliberately runs after the gradient is on
		// the wire (it overlaps the client's backward pass) and stays
		// unattributed in the phase breakdown — it is slack, not a leg of
		// the wire round trip.
		rt.opt.Step(rt.server.Params(), rt.server.Grads(), rt.server.DecayMask())
		if acts != nil {
			rt.pool.Put(acts)
		}
		if werr != nil {
			return werr
		}
	}
	at = time.Now()
	cc.conn.SetReadDeadline(deadline)
	kind, payload, err := cc.fc.readFrame()
	if err != nil {
		return err
	}
	if kind != frameReturn {
		return fmt.Errorf("transport: client %d sent kind %d, want return", cc.id, kind)
	}
	st, err := decodeReturn(payload, nil)
	if err != nil {
		return err
	}
	if err := ap.checkModel(st.Model); err != nil {
		return fmt.Errorf("transport: client %d returned %w", cc.id, err)
	}
	ap.phase(tk, phaseReadReturn, at)
	*chain = st
	cc.lastGood = &st
	return nil
}

// checkSmashed validates an incoming activation batch against the
// architecture before it can reach a layer (where a shape mismatch
// would panic). The AP treats every frame as hostile.
func (ap *AP) checkSmashed(acts *tensor.Tensor, ys []int) error {
	if acts.Dims() != 1+len(ap.smashedShape) {
		return fmt.Errorf("smashed rank %d, want %d", acts.Dims(), 1+len(ap.smashedShape))
	}
	n := acts.Dim(0)
	if n == 0 || n != len(ys) {
		return fmt.Errorf("batch of %d activations vs %d labels", n, len(ys))
	}
	for i, d := range ap.smashedShape {
		if acts.Dim(i+1) != d {
			return fmt.Errorf("smashed shape %v, want per-sample %v", acts.Shape(), ap.smashedShape)
		}
	}
	classes := ap.cfg.Test.Classes()
	for _, y := range ys {
		if y < 0 || y >= classes {
			return fmt.Errorf("label %d outside [0,%d)", y, classes)
		}
	}
	return nil
}

// checkModel validates a returned client-half snapshot against the
// global structure before it can reach Restore or FedAvg (which panic
// on mismatch).
func (ap *AP) checkModel(sn model.Snapshot) error {
	if len(sn.Tensors) != len(ap.globalClient.Tensors) {
		return fmt.Errorf("model with %d tensors, want %d", len(sn.Tensors), len(ap.globalClient.Tensors))
	}
	for i, t := range sn.Tensors {
		if t.Size() != ap.globalClient.Tensors[i].Size() {
			return fmt.Errorf("model tensor %d size %d, want %d", i, t.Size(), ap.globalClient.Tensors[i].Size())
		}
	}
	return nil
}

// Evaluate runs the aggregated global model over the AP's test set,
// through the same chunked evaluator the simulator uses.
func (ap *AP) Evaluate() (lossVal, acc float64) {
	ap.globalClient.Restore(ap.evalModel.Client)
	ap.globalServer.Restore(ap.evalModel.Server)
	ev, _ := schemes.Evaluate(context.Background(), ap.evalModel, ap.cfg.Test, ap.cfg.Arch.InShape)
	return ev.Loss, ev.Accuracy
}

// GlobalSnapshots returns copies of the current aggregated halves — the
// cross-substrate comparison hook the byte-identity test uses.
func (ap *AP) GlobalSnapshots() (client, server model.Snapshot) {
	return ap.globalClient.Clone(), ap.globalServer.Clone()
}

// Shutdown tells every client to exit, closes all connections (including
// half-registered ones), stops the listeners, and waits for every
// AP goroutine to finish. Safe to call more than once.
func (ap *AP) Shutdown() error {
	ap.mu.Lock()
	if ap.closed {
		ap.mu.Unlock()
		return nil
	}
	ap.closed = true
	conns := make([]*clientConn, 0, len(ap.joined))
	for _, cc := range ap.joined {
		conns = append(conns, cc)
	}
	ap.joined = map[int]*clientConn{}
	pend := make([]net.Conn, 0, len(ap.pending))
	for c := range ap.pending {
		pend = append(pend, c)
	}
	ap.mu.Unlock()

	// Listener first: no new connections can slip in behind the roster
	// sweep. Then abort in-flight registrations and drain their
	// goroutines, then dismiss registered clients.
	var firstErr error
	if err := ap.ln.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	for _, c := range pend {
		c.Close()
	}
	<-ap.acceptDone
	ap.regWG.Wait()

	for _, cc := range conns {
		cc.conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
		if err := cc.fc.writeShutdown(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := cc.conn.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	ap.mActive.Set(0)

	if ap.metricsSrv != nil {
		ap.metricsSrv.Close()
		<-ap.metricsDone
	}
	return firstErr
}
