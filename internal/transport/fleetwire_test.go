package transport

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
)

// testLeaseGrant is a representative grant with a checkpoint handoff.
func testLeaseGrant() FleetLease {
	return FleetLease{
		Status:   LeaseGrant,
		JobID:    "a1b2c3d4e5f60718",
		Job:      []byte(`{"name":"fig2a/gsfl-g4","rounds":6}`),
		Progress: []byte(`{"round":4,"total_seconds":12.5}`),
		Ckpt:     bytes.Repeat([]byte{0xAB, 0xCD}, 512),
	}
}

// fleetPipe returns two FleetConns joined by an in-memory pipe.
func fleetPipe(t *testing.T, maxFrame int) (*FleetConn, *FleetConn) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	return NewFleetConn(a, maxFrame), NewFleetConn(b, maxFrame)
}

// sendRecv runs write on one end and returns the frame the other reads.
func sendRecv(t *testing.T, w, r *FleetConn, write func() error) (byte, []byte) {
	t.Helper()
	errc := make(chan error, 1)
	go func() { errc <- write() }()
	kind, payload, err := r.ReadFrame()
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("write: %v", err)
	}
	// Copy: the buffer is only valid until the next ReadFrame.
	return kind, append([]byte(nil), payload...)
}

func TestFleetHelloRoundTrip(t *testing.T) {
	w, r := fleetPipe(t, 0)
	kind, p := sendRecv(t, w, r, func() error {
		return w.WriteHello(FleetHello{Worker: "worker-3", PID: 4321})
	})
	if kind != FrameFleetHello {
		t.Fatalf("kind %d", kind)
	}
	h, err := DecodeFleetHello(p)
	if err != nil {
		t.Fatal(err)
	}
	if h.Worker != "worker-3" || h.PID != 4321 {
		t.Fatalf("decoded %+v", h)
	}
}

func TestFleetWelcomeRoundTrip(t *testing.T) {
	w, r := fleetPipe(t, 0)
	want := FleetWelcome{Fingerprint: 0xDEADBEEFCAFE, Jobs: 65, LeaseMillis: 15000, RetryMillis: 250, CheckpointEvery: 2}
	kind, p := sendRecv(t, w, r, func() error { return w.WriteWelcome(want) })
	if kind != FrameFleetHello {
		t.Fatalf("kind %d", kind)
	}
	got, err := DecodeFleetWelcome(p)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("decoded %+v, want %+v", got, want)
	}
	// A welcome payload must not decode as a worker hello, and vice versa.
	if _, err := DecodeFleetHello(p); err == nil {
		t.Fatal("welcome decoded as worker hello")
	}
}

func TestFleetLeaseRoundTrip(t *testing.T) {
	w, r := fleetPipe(t, 0)

	// Request: empty payload.
	kind, p := sendRecv(t, w, r, w.WriteLeaseRequest)
	if kind != FrameFleetLease || len(p) != 0 {
		t.Fatalf("request kind %d payload %d bytes", kind, len(p))
	}
	if l, err := DecodeFleetLease(p); err != nil || l.Status != 0 {
		t.Fatalf("request decoded %+v, %v", l, err)
	}

	// Grant with checkpoint handoff.
	want := testLeaseGrant()
	_, p = sendRecv(t, r, w, func() error { return r.WriteLease(want) })
	got, err := DecodeFleetLease(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != LeaseGrant || got.JobID != want.JobID ||
		!bytes.Equal(got.Job, want.Job) || !bytes.Equal(got.Progress, want.Progress) ||
		!bytes.Equal(got.Ckpt, want.Ckpt) {
		t.Fatalf("grant changed in transit: %+v", got)
	}

	// Fresh-job grant: empty progress and checkpoint blobs survive.
	fresh := FleetLease{Status: LeaseGrant, JobID: "id", Job: []byte(`{}`)}
	_, p = sendRecv(t, r, w, func() error { return r.WriteLease(fresh) })
	if got, err = DecodeFleetLease(p); err != nil || len(got.Ckpt) != 0 || len(got.Progress) != 0 {
		t.Fatalf("fresh grant decoded %+v, %v", got, err)
	}

	// Wait and drain.
	_, p = sendRecv(t, r, w, func() error {
		return r.WriteLease(FleetLease{Status: LeaseWait, RetryMillis: 300})
	})
	if got, err = DecodeFleetLease(p); err != nil || got.Status != LeaseWait || got.RetryMillis != 300 {
		t.Fatalf("wait decoded %+v, %v", got, err)
	}
	_, p = sendRecv(t, r, w, func() error {
		return r.WriteLease(FleetLease{Status: LeaseDrain})
	})
	if got, err = DecodeFleetLease(p); err != nil || got.Status != LeaseDrain {
		t.Fatalf("drain decoded %+v, %v", got, err)
	}
}

func TestFleetProgressRoundTrip(t *testing.T) {
	w, r := fleetPipe(t, 0)
	want := FleetProgress{
		JobID:       "a1b2c3d4e5f60718",
		Round:       4,
		HostSeconds: 3.14159,
		Progress:    []byte(`{"round":4}`),
		Ckpt:        bytes.Repeat([]byte{7}, 100),
	}
	kind, p := sendRecv(t, w, r, func() error { return w.WriteProgress(want) })
	if kind != FrameFleetProgress {
		t.Fatalf("kind %d", kind)
	}
	got, err := DecodeFleetProgress(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.JobID != want.JobID || got.Round != want.Round || got.HostSeconds != want.HostSeconds ||
		!bytes.Equal(got.Progress, want.Progress) || !bytes.Equal(got.Ckpt, want.Ckpt) {
		t.Fatalf("progress changed in transit: %+v", got)
	}
}

func TestFleetResultRoundTrip(t *testing.T) {
	w, r := fleetPipe(t, 0)
	ok := FleetResult{JobID: "id1", HostSeconds: 2.5, Body: []byte(`{"total_seconds":9.75}`)}
	_, p := sendRecv(t, w, r, func() error { return w.WriteResult(ok) })
	got, err := DecodeFleetResult(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Failed || got.JobID != "id1" || got.HostSeconds != 2.5 || !bytes.Equal(got.Body, ok.Body) {
		t.Fatalf("result changed in transit: %+v", got)
	}
	failed := FleetResult{JobID: "id2", Failed: true, Body: []byte("env build: bad arch")}
	_, p = sendRecv(t, w, r, func() error { return w.WriteResult(failed) })
	if got, err = DecodeFleetResult(p); err != nil || !got.Failed || string(got.Body) != "env build: bad arch" {
		t.Fatalf("failed result decoded %+v, %v", got, err)
	}
}

func TestFleetHeartbeatAndAckRoundTrip(t *testing.T) {
	w, r := fleetPipe(t, 0)
	kind, p := sendRecv(t, w, r, func() error {
		return w.WriteHeartbeat(FleetHeartbeat{JobID: "id", Round: 3})
	})
	if kind != FrameFleetHeartbeat {
		t.Fatalf("kind %d", kind)
	}
	hb, err := DecodeFleetHeartbeat(p)
	if err != nil {
		t.Fatal(err)
	}
	if hb.JobID != "id" || hb.Round != 3 {
		t.Fatalf("heartbeat %+v", hb)
	}
	// A worker keepalive must not parse as a coordinator ack.
	if _, err := DecodeFleetAck(p); err == nil {
		t.Fatal("keepalive decoded as ack")
	}

	for _, okFlag := range []bool{true, false} {
		_, p = sendRecv(t, r, w, func() error { return r.WriteAck(FleetAck{OK: okFlag}) })
		ack, err := DecodeFleetAck(p)
		if err != nil {
			t.Fatal(err)
		}
		if ack.OK != okFlag {
			t.Fatalf("ack OK=%v, want %v", ack.OK, okFlag)
		}
	}
}

// TestFleetBlobsDoNotAliasReadBuffer pins the copy-out contract: decoded
// blobs must survive the connection's read-buffer reuse on the next
// frame.
func TestFleetBlobsDoNotAliasReadBuffer(t *testing.T) {
	w, r := fleetPipe(t, 0)
	first := testLeaseGrant()
	_, p := sendRecv(t, w, r, func() error { return w.WriteLease(first) })
	got, err := DecodeFleetLease(p)
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite the read buffer with a different frame of the same size.
	second := testLeaseGrant()
	for i := range second.Ckpt {
		second.Ckpt[i] = 0x11
	}
	sendRecv(t, w, r, func() error { return w.WriteLease(second) })
	if !bytes.Equal(got.Ckpt, first.Ckpt) {
		t.Fatal("decoded checkpoint blob aliases the connection read buffer")
	}
}

func TestFleetDecodersRejectHostileInput(t *testing.T) {
	grantPayload := func() []byte {
		var e wireEnc
		e.begin(FrameFleetLease)
		l := testLeaseGrant()
		e.u8(l.Status)
		e.str(l.JobID)
		e.blob(l.Job)
		e.blob(l.Progress)
		e.blob(l.Ckpt)
		return append([]byte(nil), e.finish()[frameHeaderLen:]...)
	}()
	cases := []struct {
		name string
		kind byte
		p    []byte
	}{
		{"hello empty", FrameFleetHello, nil},
		{"hello bad magic", FrameFleetHello, []byte{0xEF, 0xBE, 0xAD, 0xDE, 1, 0, 0}},
		{"hello bad version", FrameFleetHello, []byte{0x4C, 0x46, 0x53, 0x47, 99, 0, 0}},
		{"hello bad role", FrameFleetHello, []byte{0x4C, 0x46, 0x53, 0x47, 1, 0, 7}},
		{"hello empty worker name", FrameFleetHello, []byte{0x4C, 0x46, 0x53, 0x47, 1, 0, 0, 0, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8}},
		// str length claims 64 KiB in a near-empty payload: must error
		// before allocating.
		{"hello name flood", FrameFleetHello, []byte{0x4C, 0x46, 0x53, 0x47, 1, 0, 0, 0xFF, 0xFF, 0, 0}},
		{"welcome truncated", FrameFleetHello, []byte{0x4C, 0x46, 0x53, 0x47, 1, 0, 1, 9}},
		{"welcome zero cadence", FrameFleetHello, append([]byte{0x4C, 0x46, 0x53, 0x47, 1, 0, 1}, make([]byte, 24)...)},
		{"lease unknown status", FrameFleetLease, []byte{9}},
		{"lease truncated grant", FrameFleetLease, grantPayload[:len(grantPayload)/2]},
		{"lease trailing garbage", FrameFleetLease, append(append([]byte(nil), grantPayload...), 0xFF)},
		{"lease empty job id", FrameFleetLease, []byte{LeaseGrant, 0, 0, 0, 0, 1, 0, 0, 0, 'x', 0, 0, 0, 0, 0, 0, 0, 0}},
		{"lease wait zero retry", FrameFleetLease, []byte{LeaseWait, 0, 0, 0, 0}},
		{"lease drain trailing", FrameFleetLease, []byte{LeaseDrain, 1}},
		// blob length claims ~2 GiB backed by nothing: must error, not
		// allocate.
		{"lease ckpt flood", FrameFleetLease, []byte{LeaseGrant, 2, 0, 0, 0, 'i', 'd', 1, 0, 0, 0, 'x', 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0x7F}},
		{"progress empty", FrameFleetProgress, nil},
		{"progress zero round", FrameFleetProgress, []byte{2, 0, 0, 0, 'i', 'd', 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}},
		{"result empty", FrameFleetResult, nil},
		{"result bad flag", FrameFleetResult, []byte{2, 0, 0, 0, 'i', 'd', 9, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}},
		{"heartbeat empty", FrameFleetHeartbeat, nil},
		{"heartbeat bad role", FrameFleetHeartbeat, []byte{9, 0}},
		{"heartbeat empty job id", FrameFleetHeartbeat, []byte{0, 0, 0, 0, 0, 0, 0, 0, 0}},
		{"ack truncated", FrameFleetHeartbeat, []byte{1}},
		{"ack trailing", FrameFleetHeartbeat, []byte{1, 1, 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := decodeFrame(tc.kind, tc.p); err == nil {
				t.Fatal("hostile payload accepted")
			}
		})
	}
}

func TestFleetConnRejectsOversizePayload(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	sender := NewFleetConn(a, 0)
	receiver := NewFleetConn(b, 64) // tiny cap on the receiving side

	errc := make(chan error, 1)
	go func() {
		errc <- sender.WriteLease(testLeaseGrant())
	}()
	if _, _, err := receiver.ReadFrame(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("read err %v, want ErrFrameTooLarge", err)
	}
	a.Close() // release the blocked writer
	<-errc

	// The cap also applies on the encode side.
	big := NewFleetConn(a, 16)
	if err := big.WriteLease(testLeaseGrant()); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("write err %v, want ErrFrameTooLarge", err)
	}
}

func TestFleetConnSurfacesShortWrite(t *testing.T) {
	fc := NewFleetConn(&shortWriteConn{}, 0)
	if err := fc.WriteLeaseRequest(); !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("err %v, want ErrShortWrite", err)
	}
}

// fleetFuzzSeeds feeds one well-formed frame of every fleet message into
// FuzzDecodeFrame's corpus (the shared addFrame helper also seeds the
// half-truncated and trailing-byte variants).
func fleetFuzzSeeds(addFrame func(build func(e *wireEnc))) {
	addFrame(func(e *wireEnc) {
		e.begin(FrameFleetHello)
		e.u32(wireMagic)
		e.u16(fleetVersion)
		e.u8(fleetRoleWorker)
		e.str("worker-1")
		e.u64(99)
	})
	addFrame(func(e *wireEnc) {
		e.begin(FrameFleetHello)
		e.u32(wireMagic)
		e.u16(fleetVersion)
		e.u8(fleetRoleCoord)
		e.u64(0xFEEDFACE)
		e.u32(65)
		e.u32(15000)
		e.u32(250)
		e.u32(2)
	})
	addFrame(func(e *wireEnc) {
		e.begin(FrameFleetLease)
		l := testLeaseGrant()
		e.u8(l.Status)
		e.str(l.JobID)
		e.blob(l.Job)
		e.blob(l.Progress)
		e.blob(l.Ckpt)
	})
	addFrame(func(e *wireEnc) {
		e.begin(FrameFleetLease)
		e.u8(LeaseWait)
		e.u32(250)
	})
	addFrame(func(e *wireEnc) {
		e.begin(FrameFleetLease)
		e.u8(LeaseDrain)
	})
	addFrame(func(e *wireEnc) {
		e.begin(FrameFleetProgress)
		e.str("a1b2c3d4")
		e.u32(4)
		e.f64(3.25)
		e.blob([]byte(`{"round":4}`))
		e.blob([]byte{1, 2, 3, 4})
	})
	addFrame(func(e *wireEnc) {
		e.begin(FrameFleetResult)
		e.str("a1b2c3d4")
		e.u8(0)
		e.f64(9.5)
		e.blob([]byte(`{"total_seconds":1.5}`))
	})
	addFrame(func(e *wireEnc) {
		e.begin(FrameFleetHeartbeat)
		e.u8(fleetRoleWorker)
		e.str("a1b2c3d4")
		e.u32(3)
	})
	addFrame(func(e *wireEnc) {
		e.begin(FrameFleetHeartbeat)
		e.u8(fleetRoleCoord)
		e.u8(1)
	})
}
