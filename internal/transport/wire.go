// Package transport is a real message-passing implementation of the
// GSFL protocol over TCP.
//
// Where internal/gsfl *simulates* the wireless round to price latency,
// this package actually runs it as a distributed system: an AP process
// listens for client connections, orchestrates the M groups concurrently
// (one goroutine per group), executes the server-side halves against
// smashed data arriving over the network, relays client-side models (and
// the group's client-side optimizer state) between clients through the
// AP, and FedAvg-aggregates at round boundaries — the exact Step 1/2/3
// structure of the paper, with real sockets, real serialization, and
// real concurrency instead of a virtual clock.
//
// # Wire format
//
// Every frame is length-prefixed binary, little-endian throughout:
//
//	frame    := u32 payloadLen | u8 kind | payload
//	tensor   := u8 ndim | ndim × u32 dim | n × f64
//	tensors  := u16 count | count × tensor
//	quant    := f64 min | f64 scale | u8 ndim | ndim × u32 dim | n × u8
//	labels   := u32 count | count × u32
//	optstate := u64 step | tensors (momentum buffers)
//	state    := optstate | tensors (client-half parameters)
//
// Frame payloads by kind:
//
//	hello    := u32 magic | u16 version | u32 clientID | u64 samples | u8 flags
//	train    := u32 steps | state
//	smashed  := u8 enc | (tensor if enc=0 | quant if enc=1) | labels
//	gradient := u8 enc | (tensor if enc=0 | quant if enc=1)
//	return   := state
//	shutdown := (empty)
//
// The layout is deliberate: a train payload minus its leading u32 is
// exactly a return payload, so a protocol-conformant echo client (the
// loadgen's synthetic fleet) can answer a turn without parsing models.
//
// Encoding appends into one reusable buffer per connection and issues a
// single Write per frame; decoding reads into one reusable buffer and
// materializes tensors from a tensor.Pool. Steady-state rounds therefore
// run the framing layer allocation-free — the per-message buffer churn
// of the previous gob stream is gone. Every decoder validates claimed
// sizes against the actual payload length before allocating, so a
// hostile or corrupt peer can make a frame fail, never make the AP
// over-allocate or panic (FuzzDecodeFrame pins this).
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"

	"gsfl/internal/model"
	"gsfl/internal/optim"
	"gsfl/internal/quantize"
	"gsfl/internal/tensor"
)

const (
	frameHeaderLen = 5
	wireMagic      = 0x4753464C // "GSFL"
	wireVersion    = 1

	// DefaultMaxFrameBytes caps a single frame's payload unless the
	// config overrides it. Oversize length prefixes are rejected before
	// any allocation.
	DefaultMaxFrameBytes = 256 << 20

	// maxTensorDims bounds tensor rank on the wire; nothing this system
	// builds exceeds rank 4.
	maxTensorDims = 8
)

// Frame kinds. AP -> client: train, gradient, shutdown. Client -> AP:
// hello, smashed, return.
const (
	frameHello    byte = 1
	frameTrain    byte = 2
	frameSmashed  byte = 3
	frameGradient byte = 4
	frameReturn   byte = 5
	frameShutdown byte = 6
)

// Transfer encodings for smashed/gradient frames.
const (
	encFloat64 byte = 0
	encQuant8  byte = 1
)

// Hello flag bits.
const helloFlagQuantize byte = 1 << 0

// ErrFrameTooLarge reports a length prefix beyond the connection's
// frame cap.
var ErrFrameTooLarge = errors.New("transport: frame exceeds size limit")

// TurnState is the client-side training state a group relays from
// client to client through the AP: the client-half parameters plus the
// group's client-side optimizer state (momentum buffers and step
// counter). Relaying the optimizer alongside the model is what keeps a
// TCP group's update sequence identical to the in-process trainer,
// where one client-side optimizer per group persists across the whole
// relay chain.
type TurnState struct {
	Model model.Snapshot
	Opt   optim.SGDState
}

// helloMsg is the decoded registration frame.
type helloMsg struct {
	ClientID int
	Samples  int64
	Quantize bool
}

// --- encoding ----------------------------------------------------------

// wireEnc builds one frame in a reusable buffer.
type wireEnc struct {
	buf []byte
}

func (e *wireEnc) begin(kind byte) {
	e.buf = append(e.buf[:0], 0, 0, 0, 0, kind)
}

// finish patches the length prefix and returns the complete frame.
func (e *wireEnc) finish() []byte {
	binary.LittleEndian.PutUint32(e.buf[0:4], uint32(len(e.buf)-frameHeaderLen))
	return e.buf
}

func (e *wireEnc) u8(v byte)    { e.buf = append(e.buf, v) }
func (e *wireEnc) u16(v uint16) { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }
func (e *wireEnc) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *wireEnc) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *wireEnc) f64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}

func (e *wireEnc) f64s(xs []float64) {
	for _, x := range xs {
		e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(x))
	}
}

func (e *wireEnc) shape(dims []int) {
	e.u8(byte(len(dims)))
	for _, d := range dims {
		e.u32(uint32(d))
	}
}

func (e *wireEnc) tensor(t *tensor.Tensor) {
	e.shape(t.Shape())
	e.f64s(t.Data)
}

func (e *wireEnc) tensors(ts []*tensor.Tensor) {
	e.u16(uint16(len(ts)))
	for _, t := range ts {
		e.tensor(t)
	}
}

func (e *wireEnc) quantized(q *quantize.Quantized) {
	e.f64(q.Min)
	e.f64(q.Scale)
	e.shape(q.Shape)
	e.buf = append(e.buf, q.Codes...)
}

func (e *wireEnc) labels(ys []int) {
	e.u32(uint32(len(ys)))
	for _, y := range ys {
		e.u32(uint32(y))
	}
}

func (e *wireEnc) optState(st *optim.SGDState) {
	e.u64(uint64(st.Step))
	e.u16(uint16(len(st.VelocityData)))
	for i, data := range st.VelocityData {
		e.shape(st.VelocityShapes[i])
		e.f64s(data)
	}
}

func (e *wireEnc) turnState(st *TurnState) {
	e.optState(&st.Opt)
	e.tensors(st.Model.Tensors)
}

// --- decoding ----------------------------------------------------------

// wireDec is a cursor over one frame payload with a sticky error. Every
// read validates the remaining length first, so truncated or hostile
// payloads produce errors — never panics, never allocations sized from
// unvalidated input.
type wireDec struct {
	b   []byte
	off int
	err error
}

func (d *wireDec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("transport: "+format, args...)
	}
}

func (d *wireDec) need(n int) bool {
	if d.err != nil {
		return false
	}
	if len(d.b)-d.off < n {
		d.fail("truncated frame: need %d bytes at offset %d of %d", n, d.off, len(d.b))
		return false
	}
	return true
}

func (d *wireDec) u8() byte {
	if !d.need(1) {
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *wireDec) u16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v
}

func (d *wireDec) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *wireDec) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *wireDec) f64() float64 { return math.Float64frombits(d.u64()) }

// shape reads a dimension list and returns the element count. The
// product is bounded by what the remaining payload could possibly back
// (elemBytes per element), so a hostile shape cannot trigger a huge
// allocation downstream.
func (d *wireDec) shape(elemBytes int) (dims []int, n int) {
	nd := int(d.u8())
	if d.err != nil {
		return nil, 0
	}
	if nd > maxTensorDims {
		d.fail("tensor rank %d exceeds %d", nd, maxTensorDims)
		return nil, 0
	}
	dims = make([]int, nd)
	n = 1
	for i := range dims {
		v := d.u32()
		if d.err != nil {
			return nil, 0
		}
		dims[i] = int(v)
		n *= int(v)
		if n < 0 || n > (len(d.b)-d.off)/elemBytes+1 {
			d.fail("tensor shape %v claims more elements than the %d payload bytes hold", dims[:i+1], len(d.b)-d.off)
			return nil, 0
		}
	}
	if n*elemBytes > len(d.b)-d.off {
		d.fail("tensor shape %v needs %d bytes, payload has %d", dims, n*elemBytes, len(d.b)-d.off)
		return nil, 0
	}
	return dims, n
}

func (d *wireDec) f64sInto(dst []float64) {
	if !d.need(8 * len(dst)) {
		return
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
		d.off += 8
	}
}

// tensor decodes one tensor, drawing the backing buffer from pool when
// one is supplied.
func (d *wireDec) tensor(pool *tensor.Pool) *tensor.Tensor {
	dims, n := d.shape(8)
	if d.err != nil {
		return nil
	}
	_ = n
	var t *tensor.Tensor
	if pool != nil {
		t = pool.Get(dims...)
	} else {
		t = tensor.New(dims...)
	}
	d.f64sInto(t.Data)
	return t
}

func (d *wireDec) tensorList(pool *tensor.Pool) []*tensor.Tensor {
	count := int(d.u16())
	if d.err != nil {
		return nil
	}
	// Each tensor costs at least its 1-byte rank on the wire.
	if count > len(d.b)-d.off {
		d.fail("tensor list claims %d tensors in %d bytes", count, len(d.b)-d.off)
		return nil
	}
	ts := make([]*tensor.Tensor, count)
	for i := range ts {
		ts[i] = d.tensor(pool)
		if d.err != nil {
			return nil
		}
	}
	return ts
}

func (d *wireDec) quantized() *quantize.Quantized {
	q := &quantize.Quantized{Min: d.f64(), Scale: d.f64()}
	dims, n := d.shape(1)
	if d.err != nil {
		return nil
	}
	q.Shape = dims
	if !d.need(n) {
		return nil
	}
	q.Codes = append([]uint8(nil), d.b[d.off:d.off+n]...)
	d.off += n
	return q
}

func (d *wireDec) labels() []int {
	count := int(d.u32())
	if d.err != nil {
		return nil
	}
	if count > (len(d.b)-d.off)/4 {
		d.fail("label list claims %d entries in %d bytes", count, len(d.b)-d.off)
		return nil
	}
	ys := make([]int, count)
	for i := range ys {
		ys[i] = int(d.u32())
	}
	return ys
}

func (d *wireDec) optState() optim.SGDState {
	st := optim.SGDState{Step: int(d.u64())}
	if st.Step < 0 {
		d.fail("negative optimizer step count")
		return optim.SGDState{}
	}
	count := int(d.u16())
	if d.err != nil {
		return optim.SGDState{}
	}
	if count > len(d.b)-d.off {
		d.fail("optimizer state claims %d buffers in %d bytes", count, len(d.b)-d.off)
		return optim.SGDState{}
	}
	for i := 0; i < count; i++ {
		dims, n := d.shape(8)
		if d.err != nil {
			return optim.SGDState{}
		}
		data := make([]float64, n)
		d.f64sInto(data)
		if d.err != nil {
			return optim.SGDState{}
		}
		st.VelocityShapes = append(st.VelocityShapes, dims)
		st.VelocityData = append(st.VelocityData, data)
	}
	return st
}

func (d *wireDec) turnState(pool *tensor.Pool) TurnState {
	st := TurnState{Opt: d.optState()}
	st.Model = model.Snapshot{Tensors: d.tensorList(pool)}
	return st
}

// finish reports the decoder's sticky error, or a trailing-garbage error
// when the payload was longer than its message.
func (d *wireDec) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("transport: %d trailing bytes after message", len(d.b)-d.off)
	}
	return nil
}

// --- message codecs ----------------------------------------------------

func decodeHello(p []byte) (helloMsg, error) {
	d := wireDec{b: p}
	if magic := d.u32(); d.err == nil && magic != wireMagic {
		return helloMsg{}, fmt.Errorf("transport: bad hello magic %#x", magic)
	}
	if v := d.u16(); d.err == nil && v != wireVersion {
		return helloMsg{}, fmt.Errorf("transport: wire version %d, want %d", v, wireVersion)
	}
	msg := helloMsg{ClientID: int(int32(d.u32())), Samples: int64(d.u64())}
	flags := d.u8()
	msg.Quantize = flags&helloFlagQuantize != 0
	if err := d.finish(); err != nil {
		return helloMsg{}, err
	}
	if msg.ClientID < 0 {
		return helloMsg{}, fmt.Errorf("transport: negative client id %d", msg.ClientID)
	}
	if msg.Samples < 0 {
		return helloMsg{}, fmt.Errorf("transport: negative sample count %d", msg.Samples)
	}
	return msg, nil
}

func decodeTrain(p []byte, pool *tensor.Pool) (steps int, st TurnState, err error) {
	d := wireDec{b: p}
	steps = int(d.u32())
	st = d.turnState(pool)
	if err := d.finish(); err != nil {
		return 0, TurnState{}, err
	}
	if steps <= 0 {
		return 0, TurnState{}, fmt.Errorf("transport: train frame with %d steps", steps)
	}
	return steps, st, nil
}

func decodeSmashed(p []byte, pool *tensor.Pool) (acts *tensor.Tensor, q *quantize.Quantized, ys []int, err error) {
	d := wireDec{b: p}
	switch enc := d.u8(); {
	case d.err != nil:
	case enc == encFloat64:
		acts = d.tensor(pool)
	case enc == encQuant8:
		q = d.quantized()
	default:
		d.fail("unknown transfer encoding %d", enc)
	}
	ys = d.labels()
	if err := d.finish(); err != nil {
		return nil, nil, nil, err
	}
	return acts, q, ys, nil
}

func decodeGradient(p []byte, pool *tensor.Pool) (grad *tensor.Tensor, q *quantize.Quantized, err error) {
	d := wireDec{b: p}
	switch enc := d.u8(); {
	case d.err != nil:
	case enc == encFloat64:
		grad = d.tensor(pool)
	case enc == encQuant8:
		q = d.quantized()
	default:
		d.fail("unknown transfer encoding %d", enc)
	}
	if err := d.finish(); err != nil {
		return nil, nil, err
	}
	return grad, q, nil
}

func decodeReturn(p []byte, pool *tensor.Pool) (TurnState, error) {
	d := wireDec{b: p}
	st := d.turnState(pool)
	if err := d.finish(); err != nil {
		return TurnState{}, err
	}
	return st, nil
}

// decodeFrame dispatches a payload through the kind's decoder,
// discarding the result — the fuzz entry point, exercising exactly the
// code the AP and clients run on untrusted input.
func decodeFrame(kind byte, p []byte) error {
	switch kind {
	case frameHello:
		_, err := decodeHello(p)
		return err
	case frameTrain:
		_, _, err := decodeTrain(p, nil)
		return err
	case frameSmashed:
		_, _, _, err := decodeSmashed(p, nil)
		return err
	case frameGradient:
		_, _, err := decodeGradient(p, nil)
		return err
	case frameReturn:
		_, err := decodeReturn(p, nil)
		return err
	case frameShutdown:
		if len(p) != 0 {
			return fmt.Errorf("transport: shutdown frame carries %d payload bytes", len(p))
		}
		return nil
	case FrameFleetHello, FrameFleetLease, FrameFleetProgress, FrameFleetResult, FrameFleetHeartbeat:
		return decodeFleetFrame(kind, p)
	default:
		return fmt.Errorf("transport: unknown frame kind %d", kind)
	}
}

// --- framed connection -------------------------------------------------

// frameConn frames one net.Conn: single-buffer encode with one Write
// per frame, single-buffer reads, per-direction byte accounting, and a
// payload size cap. A frameConn is used by one goroutine at a time per
// direction (the protocol is strictly request/response). Reads go
// straight to the conn — no user-space buffering — so a read deadline
// that fires mid-frame never leaves hidden buffered state behind.
type frameConn struct {
	c        net.Conn
	enc      wireEnc
	rbuf     []byte
	maxFrame int
	// onRead/onWrite observe framed byte counts (nil = no accounting).
	onRead, onWrite func(n int)
}

func newFrameConn(c net.Conn, maxFrame int) *frameConn {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrameBytes
	}
	return &frameConn{c: c, maxFrame: maxFrame}
}

// readFrame returns the next frame's kind and payload. The payload is
// valid until the next readFrame call on this connection.
func (fc *frameConn) readFrame() (byte, []byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(fc.c, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[0:4]))
	kind := hdr[4]
	if n > fc.maxFrame {
		return 0, nil, fmt.Errorf("%w: %d bytes, cap %d", ErrFrameTooLarge, n, fc.maxFrame)
	}
	if cap(fc.rbuf) < n {
		fc.rbuf = make([]byte, n)
	}
	buf := fc.rbuf[:n]
	if _, err := io.ReadFull(fc.c, buf); err != nil {
		return 0, nil, fmt.Errorf("transport: mid-frame read: %w", err)
	}
	if fc.onRead != nil {
		fc.onRead(frameHeaderLen + n)
	}
	return kind, buf, nil
}

// flush writes the frame the encoder holds as a single Write.
func (fc *frameConn) flush() error {
	frame := fc.enc.finish()
	if len(frame)-frameHeaderLen > fc.maxFrame {
		return fmt.Errorf("%w: encoding %d bytes, cap %d", ErrFrameTooLarge, len(frame)-frameHeaderLen, fc.maxFrame)
	}
	n, err := fc.c.Write(frame)
	if err != nil {
		return err
	}
	if n != len(frame) {
		// A short write would desync the frame stream for the peer;
		// failing the turn here keeps the failure local and explicit.
		return io.ErrShortWrite
	}
	if fc.onWrite != nil {
		fc.onWrite(len(frame))
	}
	return nil
}

func (fc *frameConn) writeHello(id int, samples int64, quantized bool) error {
	fc.enc.begin(frameHello)
	fc.enc.u32(wireMagic)
	fc.enc.u16(wireVersion)
	fc.enc.u32(uint32(id))
	fc.enc.u64(uint64(samples))
	var flags byte
	if quantized {
		flags |= helloFlagQuantize
	}
	fc.enc.u8(flags)
	return fc.flush()
}

func (fc *frameConn) writeTrain(steps int, st *TurnState) error {
	fc.enc.begin(frameTrain)
	fc.enc.u32(uint32(steps))
	fc.enc.turnState(st)
	return fc.flush()
}

func (fc *frameConn) writeSmashed(acts *tensor.Tensor, q *quantize.Quantized, ys []int) error {
	fc.enc.begin(frameSmashed)
	if q != nil {
		fc.enc.u8(encQuant8)
		fc.enc.quantized(q)
	} else {
		fc.enc.u8(encFloat64)
		fc.enc.tensor(acts)
	}
	fc.enc.labels(ys)
	return fc.flush()
}

func (fc *frameConn) writeGradient(grad *tensor.Tensor, q *quantize.Quantized) error {
	fc.enc.begin(frameGradient)
	if q != nil {
		fc.enc.u8(encQuant8)
		fc.enc.quantized(q)
	} else {
		fc.enc.u8(encFloat64)
		fc.enc.tensor(grad)
	}
	return fc.flush()
}

func (fc *frameConn) writeReturn(st *TurnState) error {
	fc.enc.begin(frameReturn)
	fc.enc.turnState(st)
	return fc.flush()
}

func (fc *frameConn) writeShutdown() error {
	fc.enc.begin(frameShutdown)
	return fc.flush()
}

// writeRaw frames an already-encoded payload (the loadgen echo path).
func (fc *frameConn) writeRaw(kind byte, payload []byte) error {
	fc.enc.begin(kind)
	fc.enc.buf = append(fc.enc.buf, payload...)
	return fc.flush()
}
