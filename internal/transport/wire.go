// Package transport is a real message-passing implementation of the
// GSFL protocol over TCP.
//
// Where internal/gsfl *simulates* the wireless round to price latency,
// this package actually runs it as a distributed system: an AP process
// listens for client connections, orchestrates the M groups concurrently
// (one goroutine per group), executes the server-side halves against
// smashed data arriving over the network, relays client-side models
// between clients through the AP, and FedAvg-aggregates at round
// boundaries — the exact Step 1/2/3 structure of the paper, with real
// sockets, real serialization, and real concurrency instead of a
// virtual clock.
//
// The wire format is encoding/gob with an explicit message envelope (a
// tagged union), because both directions of the protocol carry more than
// one message type and gob streams are easiest to keep robust when every
// frame has the same static type.
package transport

import (
	"fmt"

	"gsfl/internal/model"
	"gsfl/internal/quantize"
	"gsfl/internal/tensor"
)

// WireTensor is the serialized form of one tensor.
type WireTensor struct {
	Shape []int
	Data  []float64
}

// toWire converts a tensor for transmission (copying, so later mutation
// of the live tensor cannot race the encoder).
func toWire(t *tensor.Tensor) WireTensor {
	return WireTensor{
		Shape: t.Shape(),
		Data:  append([]float64(nil), t.Data...),
	}
}

// fromWire reconstructs a tensor.
func fromWire(w WireTensor) (*tensor.Tensor, error) {
	n := 1
	for _, d := range w.Shape {
		if d < 0 {
			return nil, fmt.Errorf("transport: negative dimension in wire shape %v", w.Shape)
		}
		n *= d
	}
	if n != len(w.Data) {
		return nil, fmt.Errorf("transport: wire tensor shape %v does not match %d elements", w.Shape, len(w.Data))
	}
	return tensor.FromSlice(append([]float64(nil), w.Data...), w.Shape...), nil
}

// snapshotToWire serializes a model snapshot.
func snapshotToWire(s model.Snapshot) []WireTensor {
	out := make([]WireTensor, len(s.Tensors))
	for i, t := range s.Tensors {
		out[i] = toWire(t)
	}
	return out
}

// snapshotFromWire deserializes a model snapshot.
func snapshotFromWire(ws []WireTensor) (model.Snapshot, error) {
	ts := make([]*tensor.Tensor, len(ws))
	for i, w := range ws {
		t, err := fromWire(w)
		if err != nil {
			return model.Snapshot{}, err
		}
		ts[i] = t
	}
	return model.Snapshot{Tensors: ts}, nil
}

// Message kinds. Both directions use a tagged envelope so a single
// gob stream per direction carries the whole protocol.
const (
	// AP -> client
	kindTrain    = "train"    // begin a local training turn
	kindGradient = "gradient" // cut-layer gradient for the last batch
	kindShutdown = "shutdown" // training is over; close gracefully

	// client -> AP
	kindHello   = "hello"   // registration (first message on a conn)
	kindSmashed = "smashed" // cut-layer activations + labels
	kindReturn  = "return"  // trained client-side model
)

// apEnvelope is every AP->client frame.
type apEnvelope struct {
	Kind string
	// Train fields (Kind == kindTrain).
	Model []WireTensor // client-side parameters to load
	Steps int          // mini-batches to run this turn
	// Gradient field (Kind == kindGradient). Exactly one of Grad/QGrad is
	// populated, per the deployment's quantization setting.
	Grad  WireTensor
	QGrad *quantize.Quantized
}

// clientEnvelope is every client->AP frame.
type clientEnvelope struct {
	Kind string
	// Hello field (Kind == kindHello).
	ClientID int
	// Smashed fields (Kind == kindSmashed). Exactly one of Acts/QActs is
	// populated, per the deployment's quantization setting.
	Acts   WireTensor
	QActs  *quantize.Quantized
	Labels []int
	// Return field (Kind == kindReturn).
	Model []WireTensor
}

// decodeActs returns the activation tensor from a smashed frame,
// whichever encoding it used.
func decodeActs(msg *clientEnvelope) (*tensor.Tensor, error) {
	if msg.QActs != nil {
		return msg.QActs.Dequantize(), nil
	}
	return fromWire(msg.Acts)
}

// decodeGrad returns the gradient tensor from a gradient frame.
func decodeGrad(msg *apEnvelope) (*tensor.Tensor, error) {
	if msg.QGrad != nil {
		return msg.QGrad.Dequantize(), nil
	}
	return fromWire(msg.Grad)
}
