package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"net"

	"gsfl/internal/data"
	"gsfl/internal/model"
	"gsfl/internal/optim"
	"gsfl/internal/quantize"
	"gsfl/internal/schemes"
	"gsfl/internal/tensor"
)

// ClientConfig configures one client node.
type ClientConfig struct {
	// ID is the client's fleet index; it must match an entry in the AP's
	// Groups (or it registers as a spare, eligible for slot refill).
	ID int
	// Arch and Cut must match the AP's (the client builds the client-side
	// half structure; parameters arrive over the wire).
	Arch model.Arch
	Cut  int
	// Train is the client's private dataset.
	Train data.Dataset
	// Batch is the mini-batch size.
	Batch int
	// LR / Momentum / ClipNorm / LRDecay* configure the local client-side
	// optimizer; they must match the AP's hyperparameters (the optimizer
	// state relays through the AP between group members).
	LR            float64
	Momentum      float64
	ClipNorm      float64
	LRDecayFactor float64
	LRDecayEvery  int
	// Seed is the shared experiment seed; the loader stream derives from
	// it via schemes.DeriveSeed(Seed, "loader", ID) — the same stream the
	// in-process trainer gives client ID, which is what makes a TCP round
	// replay the simulator's batches exactly.
	Seed int64
	// Quantize must match the AP's setting: 8-bit smashed-data frames
	// out, 8-bit gradient frames expected back.
	Quantize bool
	// MaxFrameBytes caps a frame payload (0 = DefaultMaxFrameBytes).
	MaxFrameBytes int
}

// Client is one mobile device participating in GSFL over the network.
type Client struct {
	cfg    ClientConfig
	conn   net.Conn
	fc     *frameConn
	half   *model.SplitModel
	opt    *optim.SGD
	loader *data.Loader

	// Reusable turn state: the mini-batch destination, gradient decode
	// pool, dequantize/quantize buffers, and the return-snapshot capture
	// target. Steady-state turns allocate only the optimizer-state copy.
	batch data.Batch
	pool  tensor.Pool
	deq   tensor.Tensor
	qActs quantize.Quantized
	snap  model.Snapshot
}

// Dial connects to the AP and registers. The returned Client is ready
// for Run.
func Dial(addr string, cfg ClientConfig) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	c, err := NewClientConn(conn, cfg)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// NewClientConn builds a registered client over an existing connection —
// the injection point the fault tests use to interpose faultconn
// wrappers. It takes ownership of conn on success.
func NewClientConn(conn net.Conn, cfg ClientConfig) (*Client, error) {
	if cfg.ID < 0 {
		return nil, fmt.Errorf("transport: negative client id %d", cfg.ID)
	}
	if cfg.Train == nil || cfg.Train.Len() == 0 {
		return nil, errors.New("transport: client has no data")
	}
	if cfg.Batch <= 0 {
		return nil, fmt.Errorf("transport: batch %d must be positive", cfg.Batch)
	}
	if cfg.LR <= 0 {
		return nil, fmt.Errorf("transport: learning rate %v must be positive", cfg.LR)
	}
	if err := validateCut(cfg.Arch, cfg.Cut); err != nil {
		return nil, err
	}
	c := &Client{
		cfg:  cfg,
		conn: conn,
		fc:   newFrameConn(conn, cfg.MaxFrameBytes),
		// Structure only; parameters are overwritten by each train frame.
		half: cfg.Arch.NewSplit(rand.New(rand.NewSource(cfg.Seed)), cfg.Cut),
		opt:  newOptimizer(cfg.LR, cfg.Momentum, cfg.ClipNorm, cfg.LRDecayFactor, cfg.LRDecayEvery),
		loader: data.NewLoader(cfg.Train, cfg.Batch, cfg.Arch.InShape,
			rand.New(rand.NewSource(schemes.DeriveSeed(cfg.Seed, "loader", cfg.ID)))),
	}
	if err := c.fc.writeHello(cfg.ID, int64(cfg.Train.Len()), cfg.Quantize); err != nil {
		return nil, fmt.Errorf("transport: hello: %w", err)
	}
	return c, nil
}

// Run processes training turns until the AP sends shutdown or the
// connection drops. It always closes the connection before returning.
func (c *Client) Run() error {
	defer c.conn.Close()
	for {
		kind, payload, err := c.fc.readFrame()
		if err != nil {
			return fmt.Errorf("transport: client %d read: %w", c.cfg.ID, err)
		}
		switch kind {
		case frameShutdown:
			return nil
		case frameTrain:
			steps, st, err := decodeTrain(payload, &c.pool)
			if err == nil {
				err = c.trainTurn(steps, st)
			}
			if err != nil {
				return fmt.Errorf("transport: client %d: %w", c.cfg.ID, err)
			}
		default:
			return fmt.Errorf("transport: client %d got unexpected frame kind %d", c.cfg.ID, kind)
		}
	}
}

// trainTurn executes one local training turn: restore the relayed model
// and group optimizer state, run the requested split mini-batches
// against the AP, and return both. The op sequence per step matches the
// simulator's SplitStep exactly.
func (c *Client) trainTurn(steps int, st TurnState) error {
	if err := c.checkState(st); err != nil {
		return err
	}
	st.Model.Restore(c.half.Client)
	if err := c.opt.Restore(st.Opt); err != nil {
		return fmt.Errorf("restoring optimizer state: %w", err)
	}
	// Both restores copy, so the decoded tensors can go straight back to
	// the pool — the relay path then recycles its buffers across turns.
	for _, t := range st.Model.Tensors {
		c.pool.Put(t)
	}

	for s := 0; s < steps; s++ {
		c.loader.NextInto(&c.batch)
		smashed := c.half.Client.Forward(c.batch.X, true)
		var err error
		if c.cfg.Quantize {
			quantize.QuantizeInto(&c.qActs, smashed)
			err = c.fc.writeSmashed(nil, &c.qActs, c.batch.Y)
		} else {
			err = c.fc.writeSmashed(smashed, nil, c.batch.Y)
		}
		if err != nil {
			return fmt.Errorf("sending smashed: %w", err)
		}
		kind, payload, err := c.fc.readFrame()
		if err != nil {
			return fmt.Errorf("reading gradient: %w", err)
		}
		if kind != frameGradient {
			return fmt.Errorf("got frame kind %d, want gradient", kind)
		}
		grad, qg, err := decodeGradient(payload, &c.pool)
		if err != nil {
			return err
		}
		g := grad
		if qg != nil {
			g = qg.DequantizeInto(&c.deq)
		}
		if !g.SameShape(smashed) {
			if grad != nil {
				c.pool.Put(grad)
			}
			return fmt.Errorf("gradient shape %v, want %v", g.Shape(), smashed.Shape())
		}
		c.half.Client.ZeroGrads()
		c.half.Client.Backward(g)
		c.opt.Step(c.half.Client.Params(), c.half.Client.Grads(), c.half.Client.DecayMask())
		if grad != nil {
			c.pool.Put(grad)
		}
	}

	c.snap.CaptureFrom(c.half.Client)
	ret := TurnState{Model: c.snap, Opt: c.opt.State()}
	return c.fc.writeReturn(&ret)
}

// checkState validates a relayed model against the local structure
// before Restore (which panics on mismatch) can see it.
func (c *Client) checkState(st TurnState) error {
	params := c.half.Client.Params()
	if len(st.Model.Tensors) != len(params) {
		return fmt.Errorf("relayed model has %d tensors, want %d", len(st.Model.Tensors), len(params))
	}
	for i, t := range st.Model.Tensors {
		if t.Size() != params[i].Size() {
			return fmt.Errorf("relayed model tensor %d size %d, want %d", i, t.Size(), params[i].Size())
		}
	}
	return nil
}
