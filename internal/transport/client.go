package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"net"

	"gsfl/internal/data"
	"gsfl/internal/model"
	"gsfl/internal/optim"
	"gsfl/internal/quantize"
)

// ClientConfig configures one client node.
type ClientConfig struct {
	// ID is the client's fleet index; it must match an entry in the AP's
	// Groups.
	ID int
	// Arch and Cut must match the AP's (the client builds the client-side
	// half structure; parameters arrive over the wire).
	Arch model.Arch
	Cut  int
	// Train is the client's private dataset.
	Train data.Dataset
	// Batch is the mini-batch size.
	Batch int
	// LR / Momentum configure the local client-side optimizer.
	LR       float64
	Momentum float64
	// Seed derives the loader's shuffling stream.
	Seed int64
	// Quantize must match the AP's setting: 8-bit smashed-data frames
	// out, 8-bit gradient frames expected back.
	Quantize bool
}

// Client is one mobile device participating in GSFL over the network.
type Client struct {
	cfg    ClientConfig
	conn   net.Conn
	enc    *gob.Encoder
	dec    *gob.Decoder
	half   *model.SplitModel
	opt    *optim.SGD
	loader *data.Loader
}

// Dial connects to the AP and registers. The returned Client is ready
// for Run.
func Dial(addr string, cfg ClientConfig) (*Client, error) {
	if cfg.Train == nil || cfg.Train.Len() == 0 {
		return nil, errors.New("transport: client has no data")
	}
	if cfg.Batch <= 0 {
		return nil, fmt.Errorf("transport: batch %d must be positive", cfg.Batch)
	}
	if cfg.LR <= 0 {
		return nil, fmt.Errorf("transport: learning rate %v must be positive", cfg.LR)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	c := &Client{
		cfg:  cfg,
		conn: conn,
		enc:  gob.NewEncoder(conn),
		dec:  gob.NewDecoder(conn),
		// Structure only; parameters are overwritten by each TrainRequest.
		half:   cfg.Arch.NewSplit(rand.New(rand.NewSource(cfg.Seed)), cfg.Cut),
		opt:    optim.NewSGDMomentum(cfg.LR, cfg.Momentum),
		loader: data.NewLoader(cfg.Train, cfg.Batch, cfg.Arch.InShape, rand.New(rand.NewSource(cfg.Seed+1))),
	}
	if err := c.enc.Encode(clientEnvelope{Kind: kindHello, ClientID: cfg.ID}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: hello: %w", err)
	}
	return c, nil
}

// Run processes training turns until the AP sends shutdown or the
// connection drops. It always closes the connection before returning.
func (c *Client) Run() error {
	defer c.conn.Close()
	for {
		var msg apEnvelope
		if err := c.dec.Decode(&msg); err != nil {
			return fmt.Errorf("transport: client %d read: %w", c.cfg.ID, err)
		}
		switch msg.Kind {
		case kindShutdown:
			return nil
		case kindTrain:
			if err := c.trainTurn(msg); err != nil {
				return fmt.Errorf("transport: client %d: %w", c.cfg.ID, err)
			}
		default:
			return fmt.Errorf("transport: client %d got unexpected %q", c.cfg.ID, msg.Kind)
		}
	}
}

// trainTurn executes one local training turn: load the relayed model,
// run Steps split mini-batches against the AP, and return the model.
func (c *Client) trainTurn(req apEnvelope) error {
	snap, err := snapshotFromWire(req.Model)
	if err != nil {
		return err
	}
	snap.Restore(c.half.Client)

	for s := 0; s < req.Steps; s++ {
		batch := c.loader.Next()
		smashed := c.half.Client.Forward(batch.X, true)
		frame := clientEnvelope{Kind: kindSmashed, Labels: batch.Y}
		if c.cfg.Quantize {
			frame.QActs = quantize.Quantize(smashed)
		} else {
			frame.Acts = toWire(smashed)
		}
		if err := c.enc.Encode(frame); err != nil {
			return fmt.Errorf("sending smashed: %w", err)
		}
		var resp apEnvelope
		if err := c.dec.Decode(&resp); err != nil {
			return fmt.Errorf("reading gradient: %w", err)
		}
		if resp.Kind != kindGradient {
			return fmt.Errorf("got %q, want gradient", resp.Kind)
		}
		grad, err := decodeGrad(&resp)
		if err != nil {
			return err
		}
		c.half.Client.ZeroGrads()
		c.half.Client.Backward(grad)
		c.opt.Step(c.half.Client.Params(), c.half.Client.Grads(), c.half.Client.DecayMask())
	}

	return c.enc.Encode(clientEnvelope{
		Kind:  kindReturn,
		Model: snapshotToWire(model.TakeSnapshot(c.half.Client)),
	})
}
