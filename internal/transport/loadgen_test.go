package transport

import (
	"testing"
	"time"
)

func TestLoadGenValidation(t *testing.T) {
	cases := []LoadGenConfig{
		{Clients: 0, Groups: 1, Rounds: 1},
		{Clients: 4, Groups: 0, Rounds: 1},
		{Clients: 4, Groups: 2, Rounds: 0},
		{Clients: 2, Groups: 4, Rounds: 1}, // fewer clients than groups
	}
	for _, cfg := range cases {
		if _, err := RunLoadGen(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestLoadGenCleanFleet(t *testing.T) {
	var rounds []RoundStats
	rep, err := RunLoadGen(LoadGenConfig{
		Clients: 16, Groups: 4, Rounds: 3, Seed: 5,
		RoundDeadline: 5 * time.Second,
		OnRound:       func(s RoundStats) { rounds = append(rounds, s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 3 {
		t.Fatalf("observed %d rounds, want 3", len(rounds))
	}
	if rep.ParticipantsTotal != 48 || rep.StragglersTotal != 0 {
		t.Fatalf("report %+v, want 16 participants x 3 clean rounds", rep)
	}
	if rep.SustainedClientsPerRound != 16 || rep.MinClientsPerRound != 16 {
		t.Fatalf("sustained %v / min %d, want 16", rep.SustainedClientsPerRound, rep.MinClientsPerRound)
	}
	if rep.BytesRead == 0 || rep.BytesWritten == 0 || rep.WallSeconds <= 0 {
		t.Fatalf("report missing traffic accounting: %+v", rep)
	}
}

func TestLoadGenFaultedFleetExercisesStragglers(t *testing.T) {
	rep, err := RunLoadGen(LoadGenConfig{
		Clients: 20, Groups: 4, Rounds: 3, Seed: 11,
		StallFrac: 0.1, DropFrac: 0.1, SpareFrac: 0.2,
		RoundDeadline: 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FaultClients != 4 || rep.Spares != 4 {
		t.Fatalf("faults %d / spares %d, want 4 / 4 of 20", rep.FaultClients, rep.Spares)
	}
	// Every faulted client eventually dies mid-turn: the straggler path
	// must have fired, and the clean majority must keep participating.
	if rep.StragglersTotal == 0 {
		t.Fatalf("no stragglers despite %d faulted clients: %+v", rep.FaultClients, rep)
	}
	if rep.ParticipantsTotal == 0 || rep.MinClientsPerRound == 0 {
		t.Fatalf("fleet collapsed: %+v", rep)
	}
	// Spares (faulted clients were slotted round-robin) refill vacated
	// slots at round boundaries.
	if rep.RefilledTotal == 0 {
		t.Fatalf("no slot refill despite departures: %+v", rep)
	}
}

func TestLoadGenQuantizedFleet(t *testing.T) {
	rep, err := RunLoadGen(LoadGenConfig{
		Clients: 8, Groups: 2, Rounds: 2, Seed: 13, Quantize: true,
		RoundDeadline: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ParticipantsTotal != 16 || !rep.Quantize {
		t.Fatalf("quantized fleet report %+v", rep)
	}
}
