package transport

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"gsfl/obs"
)

// TestRoundTracing runs a healthy fleet with a wall-clock tracer and
// checks the trace holds round, turn, and per-phase spans on the
// expected lanes.
func TestRoundTracing(t *testing.T) {
	tr := obs.New(obs.ClockWall)
	ap, stop, errs := launchWorld(t, 4, 2, 2, func(cfg *APConfig) { cfg.Tracer = tr })
	for r := 0; r < 3; r++ {
		if _, err := ap.Round(); err != nil {
			t.Fatal(err)
		}
	}
	stop()
	for err := range errs {
		if err != nil {
			t.Fatalf("client error: %v", err)
		}
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
		OtherData map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if file.OtherData["clock"] != "wall" {
		t.Fatalf("clock metadata %q, want wall", file.OtherData["clock"])
	}
	byCat := map[string]int{}
	for _, e := range file.TraceEvents {
		byCat[e.Cat]++
	}
	if byCat["round"] != 3 {
		t.Fatalf("%d round spans, want 3", byCat["round"])
	}
	if byCat["turn"] != 3*4 {
		t.Fatalf("%d turn spans, want %d", byCat["turn"], 3*4)
	}
	// Every turn emits write-train + steps*(read-smashed, server-compute,
	// write-gradient) + read-return phase spans.
	wantPhases := 3 * 4 * (1 + 2*3 + 1)
	if byCat["phase"] != wantPhases {
		t.Fatalf("%d phase spans, want %d", byCat["phase"], wantPhases)
	}
	names := map[string]bool{}
	for _, e := range file.TraceEvents {
		if e.Cat == "phase" {
			names[e.Name] = true
		}
	}
	for _, ph := range phaseNames {
		if !names[ph] {
			t.Fatalf("no %q phase span in trace (saw %v)", ph, names)
		}
	}
}

// TestPhaseHistogramsAndFlight checks that phase histograms and the
// flight recorder populate on an untraced (tracer-less) run — both are
// always on.
func TestPhaseHistogramsAndFlight(t *testing.T) {
	ap, stop, errs := launchWorld(t, 4, 2, 2)
	for r := 0; r < 2; r++ {
		if _, err := ap.Round(); err != nil {
			t.Fatal(err)
		}
	}

	pq := ap.PhaseQuantiles()
	for _, ph := range phaseNames {
		q, ok := pq[ph]
		if !ok {
			t.Fatalf("phase %q missing from quantiles %v", ph, pq)
		}
		if q.Count == 0 || q.P50MS < 0 || q.P99MS < q.P50MS {
			t.Fatalf("phase %q has implausible quantiles %+v", ph, q)
		}
	}
	// The read-smashed phase fires steps times per turn, the return leg
	// once.
	if pq[phaseReadSmashed].Count != 2*pq[phaseReadReturn].Count {
		t.Fatalf("read-smashed count %d, want 2x read-return count %d",
			pq[phaseReadSmashed].Count, pq[phaseReadReturn].Count)
	}

	var fb bytes.Buffer
	if _, err := ap.Flight().WriteTo(&fb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fb.String(), "round 2: 4 participants") {
		t.Fatalf("flight recorder missing round summary:\n%s", fb.String())
	}

	// The exposition page renders the histograms.
	var mb bytes.Buffer
	if err := ap.Metrics().WriteText(&mb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"gsfl_phase_read_smashed_seconds_bucket{le=\"+Inf\"}",
		"gsfl_round_seconds_count 2",
		"gsfl_frame_read_bytes_sum",
	} {
		if !strings.Contains(mb.String(), want) {
			t.Fatalf("metrics page missing %q:\n%s", want, mb.String())
		}
	}

	stop()
	for err := range errs {
		if err != nil {
			t.Fatalf("client error: %v", err)
		}
	}
}
