package transport

// This file defines the fleet job plane's wire format — the frames a
// sweep coordinator and its pull-based workers exchange (gsfl/fleet) —
// layered on the same length-prefixed binary framing as the tensor
// frames above. The protocol is strictly request/response and always
// worker-initiated:
//
//	hello     worker -> coord   registration (role=worker)
//	hello     coord  -> worker  welcome: grid fingerprint, lease/ckpt config
//	lease     worker -> coord   empty payload: "give me a job"
//	lease     coord  -> worker  grant (job + optional checkpoint handoff),
//	                            wait (all jobs leased; poll again), or
//	                            drain (sweep complete; disconnect)
//	progress  worker -> coord   checkpoint upload at a round boundary
//	result    worker -> coord   completed (or failed) job
//	heartbeat worker -> coord   lease keepalive between checkpoints
//	heartbeat coord  -> worker  ack for progress/result/heartbeat; the
//	                            OK flag is the lease-validity signal
//
// Frame payloads (str := u32 len | bytes; blob := u32 len | bytes):
//
//	fleetHello(worker) := u32 magic | u16 fleetVersion | u8 role=0 |
//	                      str worker | u64 pid
//	fleetHello(coord)  := u32 magic | u16 fleetVersion | u8 role=1 |
//	                      u64 fingerprint | u32 jobs |
//	                      u32 leaseMillis | u32 retryMillis | u32 ckptEvery
//	lease(request)     := (empty)
//	lease(reply)       := u8 status | status=grant: str jobID | blob job |
//	                      blob progress | blob ckpt
//	                    | status=wait: u32 retryMillis
//	                    | status=drain: (nothing)
//	progress           := str jobID | u32 round | f64 hostSeconds |
//	                      blob progress | blob ckpt
//	result             := str jobID | u8 failed | f64 hostSeconds | blob body
//	heartbeat(worker)  := u8 role=0 | str jobID | u32 round
//	heartbeat(coord)   := u8 role=1 | u8 flags (bit0 = lease valid)
//
// Job, progress, and result bodies are JSON (Go's float64 encoding
// round-trips exactly, so the determinism contract survives the wire);
// checkpoint blobs are the sim checkpoint files verbatim. Every decoder
// validates claimed lengths against the remaining payload before
// allocating, exactly like the tensor decoders, and every fleet frame
// is seeded into FuzzDecodeFrame.

import (
	"fmt"
	"net"
)

// Fleet frame kinds, continuing the numbering after the tensor frames
// (a gap is left so future tensor-plane frames don't collide).
const (
	FrameFleetHello     byte = 16
	FrameFleetLease     byte = 17
	FrameFleetProgress  byte = 18
	FrameFleetResult    byte = 19
	FrameFleetHeartbeat byte = 20
)

// fleetVersion guards coordinator/worker protocol compatibility
// independently of the tensor-plane wireVersion.
const fleetVersion = 1

// Lease reply statuses.
const (
	// LeaseGrant carries a job (and possibly a checkpoint handoff).
	LeaseGrant byte = 1
	// LeaseWait means every remaining job is leased out; poll again.
	LeaseWait byte = 2
	// LeaseDrain means the sweep is complete; disconnect.
	LeaseDrain byte = 3
)

// Hello roles.
const (
	fleetRoleWorker byte = 0
	fleetRoleCoord  byte = 1
)

// maxFleetNameLen bounds worker names and job IDs on the wire.
const maxFleetNameLen = 1024

// FleetHello is a worker's registration frame.
type FleetHello struct {
	Worker string
	PID    uint64
}

// FleetWelcome is the coordinator's reply: the grid fingerprint (an
// FNV-64a over the unique job IDs, for logs and sanity checks), the
// total unique job count, and the lease/checkpoint cadences every
// worker must follow.
type FleetWelcome struct {
	Fingerprint     uint64
	Jobs            int
	LeaseMillis     int
	RetryMillis     int
	CheckpointEvery int
}

// FleetLease is a lease reply. Status is LeaseGrant, LeaseWait, or
// LeaseDrain; the job fields are set only on a grant. Progress and Ckpt
// carry a checkpoint handoff (both empty for a fresh job): the sweep
// progress sidecar JSON and the sim checkpoint file of a previous
// partial execution, which the worker resumes bit-identically.
type FleetLease struct {
	Status      byte
	JobID       string
	Job         []byte
	Progress    []byte
	Ckpt        []byte
	RetryMillis int
}

// FleetProgress is a worker's checkpoint upload after a round boundary:
// the progress sidecar JSON plus the sim checkpoint bytes, which the
// coordinator persists into the store so the job survives both worker
// and coordinator kills.
type FleetProgress struct {
	JobID       string
	Round       int
	HostSeconds float64
	Progress    []byte
	Ckpt        []byte
}

// FleetResult reports a finished job: the result parts JSON on success,
// or an error string when Failed.
type FleetResult struct {
	JobID       string
	Failed      bool
	HostSeconds float64
	Body        []byte
}

// FleetHeartbeat is a worker's lease keepalive.
type FleetHeartbeat struct {
	JobID string
	Round int
}

// FleetAck is the coordinator's reply to progress, result, and
// heartbeat frames. OK reports that the worker still holds the lease
// (respectively, that the result was accepted); on false the worker
// must abandon the job and request a new lease.
type FleetAck struct {
	OK bool
}

// --- encoding helpers ---------------------------------------------------

func (e *wireEnc) str(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *wireEnc) blob(b []byte) {
	e.u32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// --- decoding helpers ---------------------------------------------------

// str reads a length-prefixed string bounded by maxFleetNameLen.
func (d *wireDec) str() string {
	n := int(d.u32())
	if d.err != nil {
		return ""
	}
	if n > maxFleetNameLen {
		d.fail("string length %d exceeds %d", n, maxFleetNameLen)
		return ""
	}
	if !d.need(n) {
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

// blob reads a length-prefixed byte string. The returned slice is a
// copy, so it survives the connection's read-buffer reuse.
func (d *wireDec) blob() []byte {
	n := int(d.u32())
	if d.err != nil || !d.need(n) {
		return nil
	}
	b := append([]byte(nil), d.b[d.off:d.off+n]...)
	d.off += n
	return b
}

// --- message codecs -----------------------------------------------------

func decodeFleetRole(d *wireDec, want byte, what string) bool {
	if magic := d.u32(); d.err == nil && magic != wireMagic {
		d.fail("bad fleet hello magic %#x", magic)
	}
	if v := d.u16(); d.err == nil && v != fleetVersion {
		d.fail("fleet protocol version %d, want %d", v, fleetVersion)
	}
	if role := d.u8(); d.err == nil && role != want {
		d.fail("fleet hello role %d is not a %s", role, what)
	}
	return d.err == nil
}

// DecodeFleetHello decodes a worker registration frame.
func DecodeFleetHello(p []byte) (FleetHello, error) {
	d := wireDec{b: p}
	if !decodeFleetRole(&d, fleetRoleWorker, "worker hello") {
		return FleetHello{}, d.err
	}
	h := FleetHello{Worker: d.str(), PID: d.u64()}
	if err := d.finish(); err != nil {
		return FleetHello{}, err
	}
	if h.Worker == "" {
		return FleetHello{}, fmt.Errorf("transport: fleet hello with empty worker name")
	}
	return h, nil
}

// DecodeFleetWelcome decodes a coordinator welcome frame.
func DecodeFleetWelcome(p []byte) (FleetWelcome, error) {
	d := wireDec{b: p}
	if !decodeFleetRole(&d, fleetRoleCoord, "coordinator welcome") {
		return FleetWelcome{}, d.err
	}
	w := FleetWelcome{
		Fingerprint:     d.u64(),
		Jobs:            int(d.u32()),
		LeaseMillis:     int(d.u32()),
		RetryMillis:     int(d.u32()),
		CheckpointEvery: int(d.u32()),
	}
	if err := d.finish(); err != nil {
		return FleetWelcome{}, err
	}
	if w.LeaseMillis <= 0 || w.RetryMillis <= 0 {
		return FleetWelcome{}, fmt.Errorf("transport: fleet welcome with non-positive cadences (lease %dms, retry %dms)", w.LeaseMillis, w.RetryMillis)
	}
	return w, nil
}

// DecodeFleetLease decodes a lease frame. An empty payload is the
// worker's request; otherwise it is the coordinator's reply.
func DecodeFleetLease(p []byte) (FleetLease, error) {
	if len(p) == 0 {
		return FleetLease{}, nil // request
	}
	d := wireDec{b: p}
	l := FleetLease{Status: d.u8()}
	switch l.Status {
	case LeaseGrant:
		l.JobID = d.str()
		l.Job = d.blob()
		l.Progress = d.blob()
		l.Ckpt = d.blob()
	case LeaseWait:
		l.RetryMillis = int(d.u32())
		if d.err == nil && l.RetryMillis <= 0 {
			d.fail("lease wait with retry %dms", l.RetryMillis)
		}
	case LeaseDrain:
	default:
		d.fail("unknown lease status %d", l.Status)
	}
	if err := d.finish(); err != nil {
		return FleetLease{}, err
	}
	if l.Status == LeaseGrant {
		if l.JobID == "" {
			return FleetLease{}, fmt.Errorf("transport: lease grant with empty job id")
		}
		if len(l.Job) == 0 {
			return FleetLease{}, fmt.Errorf("transport: lease grant with empty job body")
		}
	}
	return l, nil
}

// DecodeFleetProgress decodes a checkpoint-upload frame.
func DecodeFleetProgress(p []byte) (FleetProgress, error) {
	d := wireDec{b: p}
	m := FleetProgress{JobID: d.str(), Round: int(d.u32()), HostSeconds: d.f64()}
	m.Progress = d.blob()
	m.Ckpt = d.blob()
	if err := d.finish(); err != nil {
		return FleetProgress{}, err
	}
	if m.JobID == "" {
		return FleetProgress{}, fmt.Errorf("transport: progress frame with empty job id")
	}
	if m.Round <= 0 {
		return FleetProgress{}, fmt.Errorf("transport: progress frame at round %d", m.Round)
	}
	return m, nil
}

// DecodeFleetResult decodes a job-completion frame.
func DecodeFleetResult(p []byte) (FleetResult, error) {
	d := wireDec{b: p}
	m := FleetResult{JobID: d.str()}
	switch f := d.u8(); f {
	case 0:
	case 1:
		m.Failed = true
	default:
		d.fail("result frame failure flag %d", f)
	}
	m.HostSeconds = d.f64()
	m.Body = d.blob()
	if err := d.finish(); err != nil {
		return FleetResult{}, err
	}
	if m.JobID == "" {
		return FleetResult{}, fmt.Errorf("transport: result frame with empty job id")
	}
	return m, nil
}

// DecodeFleetHeartbeat decodes a worker keepalive frame.
func DecodeFleetHeartbeat(p []byte) (FleetHeartbeat, error) {
	d := wireDec{b: p}
	if role := d.u8(); d.err == nil && role != fleetRoleWorker {
		d.fail("heartbeat role %d is not a worker keepalive", role)
	}
	m := FleetHeartbeat{JobID: d.str(), Round: int(d.u32())}
	if err := d.finish(); err != nil {
		return FleetHeartbeat{}, err
	}
	if m.JobID == "" {
		return FleetHeartbeat{}, fmt.Errorf("transport: heartbeat with empty job id")
	}
	return m, nil
}

// DecodeFleetAck decodes a coordinator ack (heartbeat kind, role=coord).
func DecodeFleetAck(p []byte) (FleetAck, error) {
	d := wireDec{b: p}
	if role := d.u8(); d.err == nil && role != fleetRoleCoord {
		d.fail("heartbeat role %d is not a coordinator ack", role)
	}
	flags := d.u8()
	if err := d.finish(); err != nil {
		return FleetAck{}, err
	}
	return FleetAck{OK: flags&1 != 0}, nil
}

// decodeFleetHeartbeatAny dispatches a heartbeat-kind payload by role —
// the fuzz entry point for both directions.
func decodeFleetHeartbeatAny(p []byte) error {
	if len(p) > 0 && p[0] == fleetRoleCoord {
		_, err := DecodeFleetAck(p)
		return err
	}
	_, err := DecodeFleetHeartbeat(p)
	return err
}

// decodeFleetHelloAny dispatches a hello-kind payload by role.
func decodeFleetHelloAny(p []byte) error {
	// The role byte sits after the u32 magic and u16 version.
	if len(p) > 6 && p[6] == fleetRoleCoord {
		_, err := DecodeFleetWelcome(p)
		return err
	}
	_, err := DecodeFleetHello(p)
	return err
}

// decodeFleetFrame dispatches a fleet payload through its kind's
// decoder, discarding the result — the fuzz surface for the job plane,
// exercising exactly what the coordinator and workers run on untrusted
// input.
func decodeFleetFrame(kind byte, p []byte) error {
	switch kind {
	case FrameFleetHello:
		return decodeFleetHelloAny(p)
	case FrameFleetLease:
		_, err := DecodeFleetLease(p)
		return err
	case FrameFleetProgress:
		_, err := DecodeFleetProgress(p)
		return err
	case FrameFleetResult:
		_, err := DecodeFleetResult(p)
		return err
	case FrameFleetHeartbeat:
		return decodeFleetHeartbeatAny(p)
	default:
		return fmt.Errorf("transport: unknown fleet frame kind %d", kind)
	}
}

// --- FleetConn ----------------------------------------------------------

// FleetConn frames one coordinator/worker connection. Like the tensor
// plane's frameConn it is single-buffer in each direction and strictly
// request/response; unlike it, both the frame kinds and the codec
// surface are exported, because the job plane lives in gsfl/fleet
// rather than in this package.
type FleetConn struct {
	fc *frameConn
}

// NewFleetConn frames c with the given payload cap (<= 0 uses
// DefaultMaxFrameBytes — checkpoint handoffs carry whole model states,
// so the cap stays generous).
func NewFleetConn(c net.Conn, maxFrame int) *FleetConn {
	return &FleetConn{fc: newFrameConn(c, maxFrame)}
}

// Conn returns the underlying connection (for deadlines and Close).
func (f *FleetConn) Conn() net.Conn { return f.fc.c }

// Close closes the underlying connection.
func (f *FleetConn) Close() error { return f.fc.c.Close() }

// ReadFrame returns the next frame's kind and payload. The payload is
// valid until the next ReadFrame call; the Decode* functions copy any
// byte strings they return.
func (f *FleetConn) ReadFrame() (byte, []byte, error) { return f.fc.readFrame() }

// WriteHello sends a worker registration.
func (f *FleetConn) WriteHello(h FleetHello) error {
	e := &f.fc.enc
	e.begin(FrameFleetHello)
	e.u32(wireMagic)
	e.u16(fleetVersion)
	e.u8(fleetRoleWorker)
	e.str(h.Worker)
	e.u64(h.PID)
	return f.fc.flush()
}

// WriteWelcome sends the coordinator's hello reply.
func (f *FleetConn) WriteWelcome(w FleetWelcome) error {
	e := &f.fc.enc
	e.begin(FrameFleetHello)
	e.u32(wireMagic)
	e.u16(fleetVersion)
	e.u8(fleetRoleCoord)
	e.u64(w.Fingerprint)
	e.u32(uint32(w.Jobs))
	e.u32(uint32(w.LeaseMillis))
	e.u32(uint32(w.RetryMillis))
	e.u32(uint32(w.CheckpointEvery))
	return f.fc.flush()
}

// WriteLeaseRequest sends the worker's empty-payload job request.
func (f *FleetConn) WriteLeaseRequest() error {
	f.fc.enc.begin(FrameFleetLease)
	return f.fc.flush()
}

// WriteLease sends a lease reply.
func (f *FleetConn) WriteLease(l FleetLease) error {
	e := &f.fc.enc
	e.begin(FrameFleetLease)
	e.u8(l.Status)
	switch l.Status {
	case LeaseGrant:
		e.str(l.JobID)
		e.blob(l.Job)
		e.blob(l.Progress)
		e.blob(l.Ckpt)
	case LeaseWait:
		e.u32(uint32(l.RetryMillis))
	}
	return f.fc.flush()
}

// WriteProgress sends a checkpoint upload.
func (f *FleetConn) WriteProgress(m FleetProgress) error {
	e := &f.fc.enc
	e.begin(FrameFleetProgress)
	e.str(m.JobID)
	e.u32(uint32(m.Round))
	e.f64(m.HostSeconds)
	e.blob(m.Progress)
	e.blob(m.Ckpt)
	return f.fc.flush()
}

// WriteResult sends a job completion.
func (f *FleetConn) WriteResult(m FleetResult) error {
	e := &f.fc.enc
	e.begin(FrameFleetResult)
	e.str(m.JobID)
	if m.Failed {
		e.u8(1)
	} else {
		e.u8(0)
	}
	e.f64(m.HostSeconds)
	e.blob(m.Body)
	return f.fc.flush()
}

// WriteHeartbeat sends a worker keepalive.
func (f *FleetConn) WriteHeartbeat(m FleetHeartbeat) error {
	e := &f.fc.enc
	e.begin(FrameFleetHeartbeat)
	e.u8(fleetRoleWorker)
	e.str(m.JobID)
	e.u32(uint32(m.Round))
	return f.fc.flush()
}

// WriteAck sends a coordinator ack.
func (f *FleetConn) WriteAck(a FleetAck) error {
	e := &f.fc.enc
	e.begin(FrameFleetHeartbeat)
	e.u8(fleetRoleCoord)
	var flags byte
	if a.OK {
		flags |= 1
	}
	e.u8(flags)
	return f.fc.flush()
}
