package transport

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"syscall"
	"time"

	"gsfl/internal/data"
	"gsfl/internal/model"
	"gsfl/internal/quantize"
	"gsfl/internal/tensor"
	"gsfl/internal/testutil/faultconn"
	"gsfl/obs"
)

// This file is the load generator: one AP plus thousands of synthetic
// clients in a single process, measuring what the transport sustains.
//
// A synthetic client is protocol-conformant but does no training — it
// answers a train frame with pre-encoded smashed frames and echoes the
// turn state back (the wire format guarantees a return payload is a
// train payload minus its leading step count, so the echo never parses
// a tensor). That keeps per-client cost near zero, so the measured
// ceiling is the AP and the transport itself: framing, scheduling,
// deadlines, straggler handling, aggregation.
//
// Fault profiles reuse the deterministic faultconn harness: a
// configurable fraction of clients stall mid-round, drop mid-frame, or
// delay every write, exercising the straggler and refill paths at scale.

// LoadGenConfig sizes a load run.
type LoadGenConfig struct {
	// Clients is the synthetic fleet size. All but the SpareFrac tail
	// are slotted into groups; the rest register as spares and back-fill
	// slots vacated by departed clients at round boundaries.
	Clients int
	// Groups is the number of concurrent relay chains (M).
	Groups int
	// Rounds is how many rounds to drive.
	Rounds int
	// StepsPerClient / Batch shape each turn's traffic.
	StepsPerClient int
	Batch          int
	// Seed makes the run (fault schedules included) reproducible.
	Seed int64
	// RoundDeadline bounds each round; zero disables (not recommended
	// with faults — stalled clients would hang their groups).
	RoundDeadline time.Duration
	// Straggler selects the fallback policy (default "drop").
	Straggler string
	// StallFrac / DropFrac / DelayFrac are the fleet fractions wrapped
	// with stalling, mid-frame-dropping, and write-delaying fault
	// profiles. The remainder run clean.
	StallFrac float64
	DropFrac  float64
	DelayFrac float64
	// SpareFrac is the fleet fraction held out of the initial group
	// assignment as refill spares.
	SpareFrac float64
	// Delay is the per-write latency for delay-profile clients.
	Delay time.Duration
	// Quantize runs the fleet with 8-bit transfer frames.
	Quantize bool
	// MetricsAddr, when non-empty, exposes the AP's metrics endpoint.
	MetricsAddr string
	// Tracer, when non-nil, records the AP's wall-clock execution spans
	// for the run (see APConfig.Tracer).
	Tracer *obs.Tracer
	// OnRound, when non-nil, observes each round's stats as it completes.
	OnRound func(RoundStats)
}

// LoadGenReport is the result of a load run — what BENCH_tcp.json holds.
type LoadGenReport struct {
	Clients         int     `json:"clients"`
	Groups          int     `json:"groups"`
	Rounds          int     `json:"rounds"`
	StepsPerClient  int     `json:"steps_per_client"`
	Batch           int     `json:"batch"`
	StragglerPolicy string  `json:"straggler_policy"`
	RoundDeadlineMS int64   `json:"round_deadline_ms"`
	FaultClients    int     `json:"fault_clients"`
	Spares          int     `json:"spares"`
	Quantize        bool    `json:"quantize"`
	WallSeconds     float64 `json:"wall_seconds"`
	RoundsPerSec    float64 `json:"rounds_per_sec"`
	// SustainedClientsPerRound is the mean number of clients that
	// completed a fresh turn per round; MinClientsPerRound is the worst
	// round.
	SustainedClientsPerRound float64 `json:"sustained_clients_per_round"`
	MinClientsPerRound       int     `json:"min_clients_per_round"`
	ParticipantsTotal        int     `json:"participants_total"`
	StragglersTotal          int     `json:"stragglers_total"`
	SkippedTotal             int     `json:"skipped_total"`
	RefilledTotal            int     `json:"refilled_total"`
	BytesRead                int64   `json:"bytes_read"`
	BytesWritten             int64   `json:"bytes_written"`
	// StragglerRate is stragglers over attempted turns
	// (participants + stragglers).
	StragglerRate float64 `json:"straggler_rate"`
	// Phases breaks the sustained turn latency down by wire phase,
	// estimated from the AP's per-phase histograms.
	Phases map[string]PhaseQuantiles `json:"phases"`
}

// loadgenArch is the synthetic task the load fleet trains: a small MLP
// over 16-dimensional blob features, big enough to make relay frames
// real, small enough that AP compute is not the bottleneck under test.
const (
	loadgenDim     = 16
	loadgenClasses = 4
	loadgenHidden  = 32
	loadgenTestN   = 64
)

func loadgenBlobs(n int, rng *rand.Rand) *data.InMemory {
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		c := rng.Intn(loadgenClasses)
		f := make([]float64, loadgenDim)
		for j := range f {
			f[j] = 0.6 * rng.NormFloat64()
		}
		f[c*2%loadgenDim] += 2
		f[(c*2+1)%loadgenDim] += 1.5
		x[i] = f
		y[i] = c
	}
	return data.NewInMemory(x, y, loadgenClasses)
}

// raiseFDLimit lifts the soft open-file limit to the hard limit,
// best-effort: a 1000-client in-process run holds 2000+ sockets.
func raiseFDLimit() {
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err == nil && rl.Cur < rl.Max {
		rl.Cur = rl.Max
		syscall.Setrlimit(syscall.RLIMIT_NOFILE, &rl)
	}
}

// faultProfileFor maps a client index to its faultconn profile (zero
// profile = clean). The first StallFrac·N clients stall, the next
// DropFrac·N drop mid-frame, the next DelayFrac·N delay writes —
// deterministic assignment, so a (config, seed) pair replays exactly.
func (cfg *LoadGenConfig) faultProfileFor(i int) faultconn.Profile {
	nStall := int(cfg.StallFrac * float64(cfg.Clients))
	nDrop := int(cfg.DropFrac * float64(cfg.Clients))
	nDelay := int(cfg.DelayFrac * float64(cfg.Clients))
	p := faultconn.Profile{Seed: cfg.Seed*1_000_003 + int64(i)}
	switch {
	case i < nStall:
		// Hang partway into the first turn (after hello + one smashed).
		p.StallAfterWrites = 3
	case i < nStall+nDrop:
		// Die mid-frame a little into the run.
		p.DropAfterBytes = 4096
	case i < nStall+nDrop+nDelay:
		p.WriteDelayProb = 0.5
		p.WriteDelay = cfg.Delay
	}
	return p
}

func (cfg *LoadGenConfig) faultCount() int {
	return int(cfg.StallFrac*float64(cfg.Clients)) +
		int(cfg.DropFrac*float64(cfg.Clients)) +
		int(cfg.DelayFrac*float64(cfg.Clients))
}

// RunLoadGen spins up one AP and cfg.Clients synthetic clients over real
// loopback TCP, drives cfg.Rounds rounds, and reports what was
// sustained.
func RunLoadGen(cfg LoadGenConfig) (*LoadGenReport, error) {
	if cfg.Clients <= 0 || cfg.Groups <= 0 || cfg.Rounds <= 0 {
		return nil, fmt.Errorf("transport: loadgen needs positive clients/groups/rounds, got %d/%d/%d",
			cfg.Clients, cfg.Groups, cfg.Rounds)
	}
	slotted := cfg.Clients - int(cfg.SpareFrac*float64(cfg.Clients))
	if slotted < cfg.Groups {
		return nil, fmt.Errorf("transport: %d slotted clients cannot fill %d groups", slotted, cfg.Groups)
	}
	if cfg.StepsPerClient <= 0 {
		cfg.StepsPerClient = 2
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 8
	}
	if cfg.Straggler == "" {
		cfg.Straggler = "drop"
	}
	raiseFDLimit()

	arch := model.MLP(loadgenDim, loadgenHidden, loadgenClasses)
	cut := model.MLPDefaultCut
	groups := make([][]int, cfg.Groups)
	for i := 0; i < slotted; i++ {
		g := i % cfg.Groups
		groups[g] = append(groups[g], i)
	}

	ap, err := NewAP("127.0.0.1:0", APConfig{
		Arch: arch, Cut: cut,
		Groups:         groups,
		StepsPerClient: cfg.StepsPerClient,
		LR:             0.05, Momentum: 0.9, ClipNorm: 10,
		Test:          loadgenBlobs(loadgenTestN, rand.New(rand.NewSource(cfg.Seed))),
		Seed:          cfg.Seed,
		Quantize:      cfg.Quantize,
		RoundDeadline: cfg.RoundDeadline,
		Straggler:     cfg.Straggler,
		MetricsAddr:   cfg.MetricsAddr,
		Tracer:        cfg.Tracer,
	})
	if err != nil {
		return nil, err
	}
	defer ap.Shutdown()

	// Pre-encode the one smashed payload every synthetic client replays:
	// a real client-half forward of a zero batch, so shapes and training
	// semantics are exactly what the AP expects.
	smashedPayload, err := syntheticSmashedPayload(arch, cut, cfg.Batch, cfg.Quantize, cfg.Seed)
	if err != nil {
		ap.Shutdown()
		return nil, err
	}

	var wg sync.WaitGroup
	conns := make([]net.Conn, cfg.Clients)
	var dialErr error
	for i := 0; i < cfg.Clients; i++ {
		raw, err := net.Dial("tcp", ap.Addr())
		if err != nil {
			dialErr = fmt.Errorf("transport: loadgen dial %d: %w", i, err)
			break
		}
		conn := net.Conn(raw)
		if p := cfg.faultProfileFor(i); p != (faultconn.Profile{}) {
			conn = faultconn.Wrap(raw, p)
		}
		conns[i] = conn
		wg.Add(1)
		go func(id int, conn net.Conn) {
			defer wg.Done()
			runSyntheticClient(id, conn, smashedPayload, cfg)
		}(i, conn)
	}
	closeAll := func() {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	}
	if dialErr != nil {
		closeAll()
		wg.Wait()
		return nil, dialErr
	}
	// Stalling clients may hang before completing registration, so wait
	// for the clean majority only.
	need := cfg.Clients - int(cfg.StallFrac*float64(cfg.Clients)) - int(cfg.DropFrac*float64(cfg.Clients))
	if err := ap.WaitForCount(need, 30*time.Second); err != nil {
		closeAll()
		wg.Wait()
		return nil, err
	}

	rep := &LoadGenReport{
		Clients: cfg.Clients, Groups: cfg.Groups, Rounds: cfg.Rounds,
		StepsPerClient: cfg.StepsPerClient, Batch: cfg.Batch,
		StragglerPolicy:    cfg.Straggler,
		RoundDeadlineMS:    cfg.RoundDeadline.Milliseconds(),
		FaultClients:       cfg.faultCount(),
		Spares:             cfg.Clients - slotted,
		Quantize:           cfg.Quantize,
		MinClientsPerRound: -1,
	}
	start := time.Now()
	for r := 0; r < cfg.Rounds; r++ {
		stats, err := ap.Round()
		if err != nil {
			closeAll()
			wg.Wait()
			return nil, err
		}
		rep.ParticipantsTotal += stats.Participants
		rep.StragglersTotal += stats.Stragglers
		rep.SkippedTotal += stats.Skipped
		rep.RefilledTotal += stats.Refilled
		if rep.MinClientsPerRound < 0 || stats.Participants < rep.MinClientsPerRound {
			rep.MinClientsPerRound = stats.Participants
		}
		if cfg.OnRound != nil {
			cfg.OnRound(stats)
		}
	}
	rep.WallSeconds = time.Since(start).Seconds()
	rep.RoundsPerSec = float64(cfg.Rounds) / rep.WallSeconds
	rep.SustainedClientsPerRound = float64(rep.ParticipantsTotal) / float64(cfg.Rounds)
	rep.BytesRead = ap.mBytesIn.Value()
	rep.BytesWritten = ap.mBytesOut.Value()
	if attempted := rep.ParticipantsTotal + rep.StragglersTotal; attempted > 0 {
		rep.StragglerRate = float64(rep.StragglersTotal) / float64(attempted)
	}
	rep.Phases = ap.PhaseQuantiles()

	err = ap.Shutdown()
	closeAll()
	wg.Wait()
	return rep, err
}

// syntheticSmashedPayload builds the one frame payload a synthetic
// client uploads per step: cut-layer activations of a zero input batch
// plus valid labels.
func syntheticSmashedPayload(arch model.Arch, cut, batch int, quantized bool, seed int64) ([]byte, error) {
	split := arch.NewSplit(rand.New(rand.NewSource(seed)), cut)
	shape := append([]int{batch}, arch.InShape...)
	x := tensor.New(shape...)
	acts := split.Client.Forward(x, false)
	ys := make([]int, batch)

	var e wireEnc
	e.begin(frameSmashed)
	if quantized {
		e.u8(encQuant8)
		e.quantized(quantize.Quantize(acts))
	} else {
		e.u8(encFloat64)
		e.tensor(acts)
	}
	e.labels(ys)
	frame := e.finish()
	return append([]byte(nil), frame[frameHeaderLen:]...), nil
}

// runSyntheticClient registers and then echoes turns until shutdown or
// connection loss. It never parses a tensor: the return payload is the
// train payload minus its leading step count, byte for byte.
func runSyntheticClient(id int, conn net.Conn, smashedPayload []byte, cfg LoadGenConfig) {
	defer conn.Close()
	fc := newFrameConn(conn, 0)
	if err := fc.writeHello(id, 64, cfg.Quantize); err != nil {
		return
	}
	var ret []byte
	for {
		kind, payload, err := fc.readFrame()
		if err != nil {
			return
		}
		switch kind {
		case frameShutdown:
			return
		case frameTrain:
			if len(payload) < 4 {
				return
			}
			steps := int(uint32(payload[0]) | uint32(payload[1])<<8 | uint32(payload[2])<<16 | uint32(payload[3])<<24)
			// payload lives in the read buffer; copy the echo before the
			// next readFrame overwrites it.
			ret = append(ret[:0], payload[4:]...)
			ok := true
			for s := 0; s < steps && ok; s++ {
				if err := fc.writeRaw(frameSmashed, smashedPayload); err != nil {
					return
				}
				k, _, err := fc.readFrame()
				if err != nil {
					return
				}
				ok = k == frameGradient
			}
			if !ok {
				return
			}
			if err := fc.writeRaw(frameReturn, ret); err != nil {
				return
			}
		default:
			return
		}
	}
}
