package partition

import (
	"fmt"
	"math/rand"
	"sort"
)

// GroupStrategy enumerates the client-grouping policies GSFL can use.
// The paper defers grouping policy to future work; these implement the
// obvious candidates for the grouping ablation (experiment A2).
type GroupStrategy int

const (
	// GroupRoundRobin assigns client i to group i mod M (the default).
	GroupRoundRobin GroupStrategy = iota
	// GroupRandom shuffles clients, then splits into contiguous chunks.
	GroupRandom
	// GroupComputeBalanced greedily balances the sum of client compute
	// capacities across groups, minimizing the slowest-group bottleneck
	// (groups run in parallel, so the round ends when the slowest group
	// finishes).
	GroupComputeBalanced
)

// String implements fmt.Stringer.
func (s GroupStrategy) String() string {
	switch s {
	case GroupRoundRobin:
		return "round-robin"
	case GroupRandom:
		return "random"
	case GroupComputeBalanced:
		return "compute-balanced"
	default:
		return fmt.Sprintf("GroupStrategy(%d)", int(s))
	}
}

// ParseStrategy resolves a grouping strategy from its CLI token or its
// String(): "roundrobin"/"round-robin", "random", or
// "balanced"/"compute-balanced". It is the single flag-parsing path
// shared by gsfl-sim, gsfl-bench, and the examples.
func ParseStrategy(name string) (GroupStrategy, error) {
	switch name {
	case "roundrobin", "round-robin":
		return GroupRoundRobin, nil
	case "random":
		return GroupRandom, nil
	case "balanced", "compute-balanced":
		return GroupComputeBalanced, nil
	default:
		return 0, fmt.Errorf("partition: unknown grouping strategy %q (want roundrobin|random|balanced)", name)
	}
}

// Groups assigns n clients (identified by index) to m groups using the
// given strategy. capacity is required by GroupComputeBalanced (client
// compute capability; lower = slower) and ignored otherwise. Every group
// receives at least one client when n >= m.
func Groups(n, m int, strategy GroupStrategy, capacity []float64, rng *rand.Rand) [][]int {
	if n <= 0 || m <= 0 {
		panic(fmt.Sprintf("partition: groups need positive n=%d m=%d", n, m))
	}
	if m > n {
		panic(fmt.Sprintf("partition: %d groups cannot be filled by %d clients", m, n))
	}
	switch strategy {
	case GroupRoundRobin:
		out := make([][]int, m)
		for i := 0; i < n; i++ {
			out[i%m] = append(out[i%m], i)
		}
		return out
	case GroupRandom:
		perm := rng.Perm(n)
		out := make([][]int, m)
		for gi := 0; gi < m; gi++ {
			lo := gi * n / m
			hi := (gi + 1) * n / m
			out[gi] = append([]int(nil), perm[lo:hi]...)
			sort.Ints(out[gi])
		}
		return out
	case GroupComputeBalanced:
		if len(capacity) != n {
			panic(fmt.Sprintf("partition: compute-balanced grouping needs %d capacities, got %d", n, len(capacity)))
		}
		return computeBalanced(n, m, capacity)
	default:
		panic(fmt.Sprintf("partition: unknown grouping strategy %d", strategy))
	}
}

// computeBalanced is the LPT (longest processing time) greedy: sort
// clients by per-step cost (1/capacity) descending and repeatedly give
// the costliest unassigned client to the group with the smallest load,
// subject to keeping group sizes within ±1 of n/m (a group's round time
// grows with its client count, so sizes must stay balanced too).
func computeBalanced(n, m int, capacity []float64) [][]int {
	type client struct {
		idx  int
		cost float64 // sequential time contribution ∝ 1/capacity
	}
	cs := make([]client, n)
	for i, c := range capacity {
		if c <= 0 {
			panic(fmt.Sprintf("partition: client %d capacity %v must be positive", i, c))
		}
		cs[i] = client{idx: i, cost: 1 / c}
	}
	sort.Slice(cs, func(a, b int) bool {
		if cs[a].cost != cs[b].cost {
			return cs[a].cost > cs[b].cost
		}
		return cs[a].idx < cs[b].idx // deterministic tie-break
	})
	maxSize := (n + m - 1) / m
	load := make([]float64, m)
	out := make([][]int, m)
	for _, c := range cs {
		best := -1
		for gi := 0; gi < m; gi++ {
			if len(out[gi]) >= maxSize {
				continue
			}
			if best == -1 || load[gi] < load[best] {
				best = gi
			}
		}
		out[best] = append(out[best], c.idx)
		load[best] += c.cost
	}
	for gi := range out {
		sort.Ints(out[gi])
	}
	return out
}
