package partition

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// GroupStrategy identifies a client-grouping policy. The paper defers
// grouping policy to future work; the built-in values implement the
// obvious candidates for the grouping ablation (experiment A2), and
// RegisterStrategy extends the set with out-of-tree policies resolved
// by name. The built-in constants' integer values are stable (they are
// gob-encoded into run checkpoints); dynamically registered strategies
// receive values in registration order.
type GroupStrategy int

const (
	// GroupRoundRobin assigns client i to group i mod M (the default).
	GroupRoundRobin GroupStrategy = iota
	// GroupRandom shuffles clients, then splits into contiguous chunks.
	GroupRandom
	// GroupComputeBalanced greedily balances the sum of client compute
	// capacities across groups, minimizing the slowest-group bottleneck
	// (groups run in parallel, so the round ends when the slowest group
	// finishes).
	GroupComputeBalanced

	// firstDynamicStrategy is where RegisterStrategy starts handing out
	// values.
	firstDynamicStrategy
)

// GroupFunc implements a grouping policy: assign n clients (identified
// by index 0..n-1) to m groups. capacity carries per-client compute
// capability (lower = slower) for capacity-aware policies and may be
// nil otherwise; rng drives randomized policies and may be nil for
// deterministic ones. Implementations must return every client exactly
// once and at least one client per group, and must be deterministic
// given (n, m, capacity, rng state).
type GroupFunc func(n, m int, capacity []float64, rng *rand.Rand) [][]int

// strategyEntry is one registered policy.
type strategyEntry struct {
	name string
	fn   GroupFunc
}

var (
	strategyMu      sync.RWMutex
	strategyByName  = map[string]GroupStrategy{}
	strategyEntries = map[GroupStrategy]strategyEntry{}
	nextStrategy    = firstDynamicStrategy
)

// registerStrategyAs installs fn under a fixed strategy value, its
// canonical name, and any aliases. Shared by the built-in init
// registrations (fixed values) and RegisterStrategy (dynamic values).
func registerStrategyAs(s GroupStrategy, name string, fn GroupFunc, aliases ...string) {
	if name == "" {
		panic("partition: RegisterStrategy with empty name")
	}
	if fn == nil {
		panic(fmt.Sprintf("partition: RegisterStrategy(%q) with nil GroupFunc", name))
	}
	strategyMu.Lock()
	defer strategyMu.Unlock()
	if _, dup := strategyByName[name]; dup {
		panic(fmt.Sprintf("partition: grouping strategy %q registered twice", name))
	}
	strategyByName[name] = s
	strategyEntries[s] = strategyEntry{name: name, fn: fn}
	for _, a := range aliases {
		if _, dup := strategyByName[a]; dup {
			panic(fmt.Sprintf("partition: grouping strategy alias %q registered twice", a))
		}
		strategyByName[a] = s
	}
}

// RegisterStrategy adds a grouping policy under its canonical name and
// returns the GroupStrategy value that now identifies it (usable in
// schemes.FactoryOpts and experiment specs). It panics on an empty
// name, a nil function, or a duplicate name — programmer errors at init
// time. Note that dynamic values are assigned in registration order, so
// checkpoints of runs using registered strategies resume correctly only
// under the same registration order.
func RegisterStrategy(name string, fn GroupFunc) GroupStrategy {
	strategyMu.Lock()
	s := nextStrategy
	nextStrategy++
	strategyMu.Unlock()
	registerStrategyAs(s, name, fn)
	return s
}

// StrategyNames returns the canonical names of every registered
// grouping strategy in sorted order.
func StrategyNames() []string {
	strategyMu.RLock()
	defer strategyMu.RUnlock()
	out := make([]string, 0, len(strategyEntries))
	for _, e := range strategyEntries {
		out = append(out, e.name)
	}
	sort.Strings(out)
	return out
}

// ParseStrategy resolves a grouping strategy from its canonical name or
// a registered alias. The built-ins answer to "roundrobin"/"round-robin",
// "random", and "balanced"/"compute-balanced". It is the single
// name-to-strategy resolution path shared by the CLIs, grid files, and
// the env registry.
func ParseStrategy(name string) (GroupStrategy, error) {
	strategyMu.RLock()
	s, ok := strategyByName[name]
	strategyMu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("partition: unknown grouping strategy %q (registered: %v)", name, StrategyNames())
	}
	return s, nil
}

// String implements fmt.Stringer, returning the canonical name.
func (s GroupStrategy) String() string {
	strategyMu.RLock()
	e, ok := strategyEntries[s]
	strategyMu.RUnlock()
	if !ok {
		return fmt.Sprintf("GroupStrategy(%d)", int(s))
	}
	return e.name
}

// Groups assigns n clients (identified by index) to m groups using the
// given strategy. capacity is required by GroupComputeBalanced (client
// compute capability; lower = slower) and ignored otherwise. Every group
// receives at least one client when n >= m.
func Groups(n, m int, strategy GroupStrategy, capacity []float64, rng *rand.Rand) [][]int {
	if n <= 0 || m <= 0 {
		panic(fmt.Sprintf("partition: groups need positive n=%d m=%d", n, m))
	}
	if m > n {
		panic(fmt.Sprintf("partition: %d groups cannot be filled by %d clients", m, n))
	}
	strategyMu.RLock()
	e, ok := strategyEntries[strategy]
	strategyMu.RUnlock()
	if !ok {
		panic(fmt.Sprintf("partition: unknown grouping strategy %d", strategy))
	}
	return e.fn(n, m, capacity, rng)
}

// The built-in policies register like out-of-tree ones, so name
// resolution, listing, and dispatch have exactly one path.
func init() {
	registerStrategyAs(GroupRoundRobin, "round-robin", roundRobin, "roundrobin")
	registerStrategyAs(GroupRandom, "random", randomChunks)
	registerStrategyAs(GroupComputeBalanced, "compute-balanced", func(n, m int, capacity []float64, _ *rand.Rand) [][]int {
		if len(capacity) != n {
			panic(fmt.Sprintf("partition: compute-balanced grouping needs %d capacities, got %d", n, len(capacity)))
		}
		return computeBalanced(n, m, capacity)
	}, "balanced")
}

// roundRobin assigns client i to group i mod m.
func roundRobin(n, m int, _ []float64, _ *rand.Rand) [][]int {
	out := make([][]int, m)
	for i := 0; i < n; i++ {
		out[i%m] = append(out[i%m], i)
	}
	return out
}

// randomChunks shuffles clients, then splits into contiguous chunks.
func randomChunks(n, m int, _ []float64, rng *rand.Rand) [][]int {
	perm := rng.Perm(n)
	out := make([][]int, m)
	for gi := 0; gi < m; gi++ {
		lo := gi * n / m
		hi := (gi + 1) * n / m
		out[gi] = append([]int(nil), perm[lo:hi]...)
		sort.Ints(out[gi])
	}
	return out
}

// computeBalanced is the LPT (longest processing time) greedy: sort
// clients by per-step cost (1/capacity) descending and repeatedly give
// the costliest unassigned client to the group with the smallest load,
// subject to keeping group sizes within ±1 of n/m (a group's round time
// grows with its client count, so sizes must stay balanced too).
func computeBalanced(n, m int, capacity []float64) [][]int {
	type client struct {
		idx  int
		cost float64 // sequential time contribution ∝ 1/capacity
	}
	cs := make([]client, n)
	for i, c := range capacity {
		if c <= 0 {
			panic(fmt.Sprintf("partition: client %d capacity %v must be positive", i, c))
		}
		cs[i] = client{idx: i, cost: 1 / c}
	}
	sort.Slice(cs, func(a, b int) bool {
		if cs[a].cost != cs[b].cost {
			return cs[a].cost > cs[b].cost
		}
		return cs[a].idx < cs[b].idx // deterministic tie-break
	})
	maxSize := (n + m - 1) / m
	load := make([]float64, m)
	out := make([][]int, m)
	for _, c := range cs {
		best := -1
		for gi := 0; gi < m; gi++ {
			if len(out[gi]) >= maxSize {
				continue
			}
			if best == -1 || load[gi] < load[best] {
				best = gi
			}
		}
		out[best] = append(out[best], c.idx)
		load[best] += c.cost
	}
	for gi := range out {
		sort.Ints(out[gi])
	}
	return out
}
