package partition

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gsfl/internal/data"
)

func makeDataset(n, classes int) *data.InMemory {
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		x[i] = []float64{float64(i)}
		y[i] = i % classes
	}
	return data.NewInMemory(x, y, classes)
}

// collectIndices flattens subsets back to base indices for coverage checks.
func collectIndices(subs []*data.Subset) []int {
	var all []int
	for _, s := range subs {
		all = append(all, s.Indices...)
	}
	return all
}

func assertExactCover(t *testing.T, subs []*data.Subset, total int) {
	t.Helper()
	all := collectIndices(subs)
	if len(all) != total {
		t.Fatalf("partition covers %d samples, want %d", len(all), total)
	}
	seen := make(map[int]bool, total)
	for _, ix := range all {
		if seen[ix] {
			t.Fatalf("sample %d assigned twice", ix)
		}
		seen[ix] = true
	}
}

func TestIIDExactCover(t *testing.T) {
	ds := makeDataset(103, 5)
	subs := IID(ds, 7, rand.New(rand.NewSource(1)))
	if len(subs) != 7 {
		t.Fatalf("got %d subsets", len(subs))
	}
	assertExactCover(t, subs, 103)
	for i, s := range subs {
		if s.Len() < 103/7 || s.Len() > 103/7+1 {
			t.Fatalf("client %d has %d samples; want near-equal split", i, s.Len())
		}
	}
}

func TestIIDBalancedClasses(t *testing.T) {
	// With many samples per client, each client's class mix ≈ global mix.
	ds := makeDataset(5000, 5)
	subs := IID(ds, 5, rand.New(rand.NewSource(2)))
	for ci, s := range subs {
		h := data.ClassHistogram(s)
		for cls, cnt := range h {
			frac := float64(cnt) / float64(s.Len())
			if math.Abs(frac-0.2) > 0.05 {
				t.Fatalf("client %d class %d fraction %v, want ≈0.2", ci, cls, frac)
			}
		}
	}
}

func TestDirichletExactCover(t *testing.T) {
	ds := makeDataset(500, 10)
	subs := Dirichlet(ds, 8, 0.5, rand.New(rand.NewSource(3)))
	assertExactCover(t, subs, 500)
	for i, s := range subs {
		if s.Len() == 0 {
			t.Fatalf("client %d empty after rebalance", i)
		}
	}
}

func TestDirichletSkewIncreasesAsAlphaShrinks(t *testing.T) {
	ds := makeDataset(4000, 8)
	skew := func(alpha float64) float64 {
		subs := Dirichlet(ds, 8, alpha, rand.New(rand.NewSource(4)))
		// Mean over clients of max class share — 1/C for perfectly IID,
		// → 1.0 for one-class clients.
		total := 0.0
		for _, s := range subs {
			h := data.ClassHistogram(s)
			maxShare := 0.0
			for _, c := range h {
				if share := float64(c) / float64(s.Len()); share > maxShare {
					maxShare = share
				}
			}
			total += maxShare
		}
		return total / float64(len(subs))
	}
	lo, hi := skew(100.0), skew(0.1)
	if hi <= lo {
		t.Fatalf("alpha 0.1 skew %v should exceed alpha 100 skew %v", hi, lo)
	}
}

func TestDirichletValidation(t *testing.T) {
	ds := makeDataset(10, 2)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("alpha", func() { Dirichlet(ds, 2, 0, rand.New(rand.NewSource(1))) })
	mustPanic("clients", func() { Dirichlet(ds, 0, 1, rand.New(rand.NewSource(1))) })
	mustPanic("too few samples", func() { Dirichlet(ds, 11, 1, rand.New(rand.NewSource(1))) })
	mustPanic("iid clients", func() { IID(ds, 0, rand.New(rand.NewSource(1))) })
	mustPanic("iid too few", func() { IID(ds, 11, rand.New(rand.NewSource(1))) })
}

// prop: both partitioners always produce an exact cover.
func TestPropPartitionExactCover(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(200)
		clients := 1 + rng.Intn(10)
		if clients > n {
			clients = n
		}
		ds := makeDataset(n, 1+rng.Intn(6))
		var subs []*data.Subset
		if seed%2 == 0 {
			subs = IID(ds, clients, rng)
		} else {
			subs = Dirichlet(ds, clients, 0.3+rng.Float64(), rng)
		}
		all := collectIndices(subs)
		if len(all) != n {
			return false
		}
		seen := map[int]bool{}
		for _, ix := range all {
			if seen[ix] {
				return false
			}
			seen[ix] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupsRoundRobin(t *testing.T) {
	g := Groups(7, 3, GroupRoundRobin, nil, nil)
	want := [][]int{{0, 3, 6}, {1, 4}, {2, 5}}
	for gi := range want {
		if len(g[gi]) != len(want[gi]) {
			t.Fatalf("group %d = %v, want %v", gi, g[gi], want[gi])
		}
		for i := range want[gi] {
			if g[gi][i] != want[gi][i] {
				t.Fatalf("group %d = %v, want %v", gi, g[gi], want[gi])
			}
		}
	}
}

func TestGroupsRandomCoverAndSize(t *testing.T) {
	g := Groups(30, 6, GroupRandom, nil, rand.New(rand.NewSource(5)))
	seen := map[int]bool{}
	for _, grp := range g {
		if len(grp) != 5 {
			t.Fatalf("group size %d, want 5", len(grp))
		}
		for _, c := range grp {
			if seen[c] {
				t.Fatalf("client %d in two groups", c)
			}
			seen[c] = true
		}
	}
	if len(seen) != 30 {
		t.Fatalf("covered %d clients, want 30", len(seen))
	}
}

func TestGroupsComputeBalanced(t *testing.T) {
	// Two fast and two slow clients into two groups: each group must get
	// one fast and one slow for balanced load.
	cap := []float64{10, 10, 1, 1}
	g := Groups(4, 2, GroupComputeBalanced, cap, nil)
	for gi, grp := range g {
		if len(grp) != 2 {
			t.Fatalf("group %d size %d", gi, len(grp))
		}
		slow := 0
		for _, c := range grp {
			if cap[c] == 1 {
				slow++
			}
		}
		if slow != 1 {
			t.Fatalf("group %d has %d slow clients, want 1 (groups: %v)", gi, slow, g)
		}
	}
}

func TestGroupsComputeBalancedBeatsRoundRobinOnSkew(t *testing.T) {
	// Capacities arranged so round-robin stacks all slow clients into one
	// group. The balanced strategy must achieve a lower max group load.
	n, m := 12, 3
	cap := make([]float64, n)
	for i := range cap {
		if i%m == 0 { // round-robin would put all of these in group 0
			cap[i] = 0.5
		} else {
			cap[i] = 8
		}
	}
	load := func(groups [][]int) float64 {
		worst := 0.0
		for _, grp := range groups {
			l := 0.0
			for _, c := range grp {
				l += 1 / cap[c]
			}
			if l > worst {
				worst = l
			}
		}
		return worst
	}
	rr := load(Groups(n, m, GroupRoundRobin, nil, nil))
	cb := load(Groups(n, m, GroupComputeBalanced, cap, nil))
	if cb >= rr {
		t.Fatalf("compute-balanced max load %v should beat round-robin %v", cb, rr)
	}
}

func TestGroupsValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("m>n", func() { Groups(2, 3, GroupRoundRobin, nil, nil) })
	mustPanic("zero", func() { Groups(0, 1, GroupRoundRobin, nil, nil) })
	mustPanic("caps", func() { Groups(4, 2, GroupComputeBalanced, []float64{1}, nil) })
	mustPanic("neg cap", func() { Groups(2, 1, GroupComputeBalanced, []float64{1, -1}, nil) })
	mustPanic("unknown", func() { Groups(2, 1, GroupStrategy(99), nil, nil) })
}

func TestGroupStrategyString(t *testing.T) {
	if GroupRoundRobin.String() != "round-robin" ||
		GroupRandom.String() != "random" ||
		GroupComputeBalanced.String() != "compute-balanced" {
		t.Fatal("GroupStrategy.String mismatch")
	}
}

// prop: every grouping strategy yields an exact cover with all groups
// non-empty.
func TestPropGroupsExactCover(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		m := 1 + rng.Intn(n)
		caps := make([]float64, n)
		for i := range caps {
			caps[i] = 0.5 + rng.Float64()*10
		}
		for _, st := range []GroupStrategy{GroupRoundRobin, GroupRandom, GroupComputeBalanced} {
			g := Groups(n, m, st, caps, rng)
			if len(g) != m {
				return false
			}
			seen := map[int]bool{}
			for _, grp := range g {
				if len(grp) == 0 {
					return false
				}
				for _, c := range grp {
					if c < 0 || c >= n || seen[c] {
						return false
					}
					seen[c] = true
				}
			}
			if len(seen) != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestParseStrategy(t *testing.T) {
	for name, want := range map[string]GroupStrategy{
		"roundrobin":       GroupRoundRobin,
		"round-robin":      GroupRoundRobin,
		"random":           GroupRandom,
		"balanced":         GroupComputeBalanced,
		"compute-balanced": GroupComputeBalanced,
	} {
		got, err := ParseStrategy(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got != want {
			t.Fatalf("ParseStrategy(%q) = %v, want %v", name, got, want)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Fatal("expected error for unknown strategy")
	}
}
