// Package partition distributes a dataset across clients and clients
// across groups — the "30 clients divided into 6 groups" structure of the
// paper's evaluation.
//
// Data partitioning supports IID splits and Dirichlet non-IID splits
// (the standard way federated-learning papers model heterogeneous client
// data). Grouping supports the strategies the paper's future work asks
// about: round-robin, random, and compute-balanced.
package partition

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"gsfl/internal/data"
)

// IID partitions ds uniformly at random into n near-equal subsets.
// Every sample lands in exactly one subset.
func IID(ds data.Dataset, n int, rng *rand.Rand) []*data.Subset {
	if n <= 0 {
		panic(fmt.Sprintf("partition: client count %d must be positive", n))
	}
	if ds.Len() < n {
		panic(fmt.Sprintf("partition: %d samples cannot cover %d clients", ds.Len(), n))
	}
	perm := rng.Perm(ds.Len())
	out := make([]*data.Subset, n)
	for i := 0; i < n; i++ {
		lo := i * len(perm) / n
		hi := (i + 1) * len(perm) / n
		idx := append([]int(nil), perm[lo:hi]...)
		sort.Ints(idx)
		out[i] = data.NewSubset(ds, idx)
	}
	return out
}

// Dirichlet partitions ds across n clients with class proportions drawn
// from Dir(alpha). Small alpha (e.g. 0.1) produces highly skewed non-IID
// clients; large alpha approaches IID. Every sample lands in exactly one
// subset, and every client receives at least one sample (rebalanced from
// the largest client when necessary, so degenerate draws cannot produce
// unusable empty clients).
func Dirichlet(ds data.Dataset, n int, alpha float64, rng *rand.Rand) []*data.Subset {
	if n <= 0 {
		panic(fmt.Sprintf("partition: client count %d must be positive", n))
	}
	if alpha <= 0 {
		panic(fmt.Sprintf("partition: Dirichlet alpha %v must be positive", alpha))
	}
	if ds.Len() < n {
		panic(fmt.Sprintf("partition: %d samples cannot cover %d clients", ds.Len(), n))
	}
	// Collect per-class sample indices.
	byClass := make([][]int, ds.Classes())
	for i := 0; i < ds.Len(); i++ {
		_, y := ds.Sample(i)
		byClass[y] = append(byClass[y], i)
	}
	assigned := make([][]int, n)
	for _, idxs := range byClass {
		if len(idxs) == 0 {
			continue
		}
		rng.Shuffle(len(idxs), func(i, j int) { idxs[i], idxs[j] = idxs[j], idxs[i] })
		// Draw client proportions for this class from Dir(alpha) via
		// normalized Gamma(alpha, 1) samples.
		props := make([]float64, n)
		total := 0.0
		for i := range props {
			props[i] = gammaSample(rng, alpha)
			total += props[i]
		}
		// Convert to cumulative sample counts.
		pos := 0
		cum := 0.0
		for ci := 0; ci < n; ci++ {
			cum += props[ci] / total
			end := int(cum*float64(len(idxs)) + 0.5)
			if ci == n-1 {
				end = len(idxs)
			}
			if end > len(idxs) {
				end = len(idxs)
			}
			assigned[ci] = append(assigned[ci], idxs[pos:end]...)
			pos = end
		}
	}
	rebalanceEmpty(assigned, rng)
	out := make([]*data.Subset, n)
	for i, idx := range assigned {
		sort.Ints(idx)
		out[i] = data.NewSubset(ds, idx)
	}
	return out
}

// rebalanceEmpty moves one sample from the largest client to each empty
// client so every client can train.
func rebalanceEmpty(assigned [][]int, rng *rand.Rand) {
	for ci := range assigned {
		if len(assigned[ci]) > 0 {
			continue
		}
		// Find the largest donor.
		donor := -1
		for di := range assigned {
			if donor == -1 || len(assigned[di]) > len(assigned[donor]) {
				donor = di
			}
		}
		if donor == -1 || len(assigned[donor]) < 2 {
			panic("partition: cannot rebalance, dataset too small")
		}
		take := rng.Intn(len(assigned[donor]))
		assigned[ci] = append(assigned[ci], assigned[donor][take])
		assigned[donor] = append(assigned[donor][:take], assigned[donor][take+1:]...)
	}
}

// gammaSample draws from Gamma(alpha, 1) using Marsaglia-Tsang, with the
// standard boost for alpha < 1.
func gammaSample(rng *rand.Rand, alpha float64) float64 {
	if alpha < 1 {
		// Gamma(a) = Gamma(a+1) * U^(1/a)
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaSample(rng, alpha+1) * math.Pow(u, 1/alpha)
	}
	d := alpha - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}
