package partition_test

import (
	"fmt"

	"gsfl/internal/partition"
)

// ExampleGroups shows the paper's default grouping: clients assigned to
// groups round-robin, as in "30 clients divided into 6 groups".
func ExampleGroups() {
	groups := partition.Groups(9, 3, partition.GroupRoundRobin, nil, nil)
	for g, members := range groups {
		fmt.Printf("group %d: %v\n", g, members)
	}
	// Output:
	// group 0: [0 3 6]
	// group 1: [1 4 7]
	// group 2: [2 5 8]
}

// ExampleGroups_computeBalanced balances heterogeneous clients so no
// group becomes the straggler: the slow client (capacity 1) is paired
// with the fastest ones.
func ExampleGroups_computeBalanced() {
	capacities := []float64{10, 10, 1, 10}
	groups := partition.Groups(4, 2, partition.GroupComputeBalanced, capacities, nil)
	fmt.Println(len(groups[0]), len(groups[1]))
	// Output: 2 2
}
