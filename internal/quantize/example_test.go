package quantize_test

import (
	"fmt"

	"gsfl/internal/quantize"
	"gsfl/internal/tensor"
)

// ExampleQuantize shows the 4x wire saving of 8-bit transfer encoding
// and its bounded round-trip error.
func ExampleQuantize() {
	smashed := tensor.FromSlice([]float64{-1, -0.5, 0, 0.5, 1}, 5)
	q := quantize.Quantize(smashed)

	fullBytes := int64(smashed.Size()) * 4 // float32 wire
	fmt.Printf("full %dB -> quantized %dB (payload %dB)\n",
		fullBytes, q.WireBytes(), len(q.Codes))
	fmt.Printf("max error %.4f\n", q.MaxError())
	// Output:
	// full 20B -> quantized 21B (payload 5B)
	// max error 0.0039
}
