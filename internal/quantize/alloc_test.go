package quantize

import (
	"math/rand"
	"testing"

	"gsfl/internal/tensor"
	"gsfl/internal/testutil"
)

// TestBufferMatchesRoundTrip pins the reusable round-trip workspace to
// the allocating composition bit for bit, including across shape changes
// and the constant-tensor special case.
func TestBufferMatchesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var buf Buffer
	cases := []*tensor.Tensor{
		tensor.New(4, 8).RandNormal(rng, 0, 1),
		tensor.New(2, 3).RandNormal(rng, -3, 5),
		tensor.Full(1.25, 6), // constant: zero scale path
		tensor.New(4, 8).RandNormal(rng, 0, 1),
	}
	for i, x := range cases {
		want := RoundTrip(x)
		got := buf.RoundTrip(x)
		if !tensor.AllClose(got, want, 0) {
			t.Fatalf("case %d: Buffer.RoundTrip differs from RoundTrip", i)
		}
	}
}

func TestBufferRoundTripAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := tensor.New(16, 8).RandNormal(rng, 0, 1)
	var buf Buffer
	testutil.MaxAllocs(t, "quantize Buffer.RoundTrip", 0, func() { buf.RoundTrip(x) })
}
