package quantize

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gsfl/internal/tensor"
)

func TestRoundTripErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.New(1000).RandNormal(rng, 0, 3)
	q := Quantize(x)
	back := q.Dequantize()
	bound := q.MaxError() + 1e-12
	for i := range x.Data {
		if err := math.Abs(x.Data[i] - back.Data[i]); err > bound {
			t.Fatalf("element %d error %v exceeds bound %v", i, err, bound)
		}
	}
}

func TestConstantTensorExact(t *testing.T) {
	x := tensor.Full(3.14, 64)
	back := RoundTrip(x)
	if !tensor.AllClose(x, back, 0) {
		t.Fatal("constant tensor must round-trip exactly")
	}
}

func TestEndpointsExact(t *testing.T) {
	// Min and max always map to codes 0 and 255 and decode exactly.
	x := tensor.FromSlice([]float64{-5, 0.3, 7}, 3)
	back := RoundTrip(x)
	if back.Data[0] != -5 || math.Abs(back.Data[2]-7) > 1e-12 {
		t.Fatalf("endpoints changed: %v", back.Data)
	}
}

func TestEmptyTensor(t *testing.T) {
	x := tensor.New(0)
	q := Quantize(x)
	back := q.Dequantize()
	if back.Size() != 0 {
		t.Fatalf("empty round trip size %d", back.Size())
	}
}

func TestWireBytes(t *testing.T) {
	x := tensor.New(100)
	q := Quantize(x)
	if got := q.WireBytes(); got != 100+headerBytes {
		t.Fatalf("WireBytes = %d, want %d", got, 100+headerBytes)
	}
}

func TestNonFinitePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on NaN input")
		}
	}()
	Quantize(tensor.FromSlice([]float64{math.NaN()}, 1))
}

func TestShapePreserved(t *testing.T) {
	x := tensor.New(2, 3, 4).RandNormal(rand.New(rand.NewSource(2)), 0, 1)
	back := RoundTrip(x)
	if back.Dims() != 3 || back.Dim(2) != 4 {
		t.Fatalf("shape lost: %v", back.Shape())
	}
}

// prop: round trip never increases the tensor's range and error stays
// within scale/2 for random tensors of random shapes.
func TestPropRoundTripBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		x := tensor.New(n).RandNormal(rng, rng.NormFloat64()*5, 0.1+rng.Float64()*4)
		q := Quantize(x)
		back := q.Dequantize()
		bound := q.MaxError() + 1e-9
		for i := range x.Data {
			if math.Abs(x.Data[i]-back.Data[i]) > bound {
				return false
			}
		}
		return back.Min() >= x.Min()-bound && back.Max() <= x.Max()+bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// prop: quantization is idempotent — re-quantizing a dequantized tensor
// reproduces it exactly (codes hit the same grid).
func TestPropIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := tensor.New(1+rng.Intn(64)).RandNormal(rng, 0, 2)
		once := RoundTrip(x)
		twice := RoundTrip(once)
		return tensor.AllClose(once, twice, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
