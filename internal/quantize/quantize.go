// Package quantize implements uniform affine 8-bit quantization for
// tensors in transit.
//
// Split learning's per-step uplink carries cut-layer activations and its
// downlink the matching gradients; at float32 wire precision these
// dominate GSFL's communication budget. Quantizing transfers to one byte
// per scalar cuts that traffic 4x at a small, measurable accuracy cost —
// the classic communication/precision trade-off this package lets the
// experiments explore (ablation Q in DESIGN.md).
//
// The scheme is standard uniform affine quantization: a tensor maps to
// uint8 codes via code = round((x - min) / scale), dequantizing to
// x' = min + code*scale, with scale = (max-min)/255. The worst-case
// round-trip error is scale/2 per element.
package quantize

import (
	"fmt"
	"math"

	"gsfl/internal/tensor"
)

// WireBytesPerScalar is the transfer cost of one quantized element.
const WireBytesPerScalar = 1

// headerBytes prices the (scale, min, shape) metadata per tensor.
const headerBytes = 16

// Quantized is an 8-bit encoded tensor.
type Quantized struct {
	Min   float64
	Scale float64
	Shape []int
	Codes []uint8
}

// Quantize encodes t with uniform affine quantization. Constant tensors
// (max == min) encode with zero scale and decode exactly.
func Quantize(t *tensor.Tensor) *Quantized {
	q := &Quantized{}
	QuantizeInto(q, t)
	return q
}

// QuantizeInto encodes t into q, reusing q's code and shape buffers —
// the destination-passing form of Quantize that the per-replica transfer
// workspaces use. Every field of q is overwritten, so results are
// identical to Quantize.
func QuantizeInto(q *Quantized, t *tensor.Tensor) {
	q.Shape = t.AppendShape(q.Shape[:0])
	if cap(q.Codes) < t.Size() {
		q.Codes = make([]uint8, t.Size())
	} else {
		q.Codes = q.Codes[:t.Size()]
	}
	q.Min, q.Scale = 0, 0
	if t.Size() == 0 {
		q.Codes = nil
		return
	}
	lo, hi := t.Min(), t.Max()
	if math.IsNaN(lo) || math.IsNaN(hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
		panic(fmt.Sprintf("quantize: non-finite tensor range [%v, %v]", lo, hi))
	}
	q.Min = lo
	q.Scale = (hi - lo) / 255
	if q.Scale == 0 {
		for i := range q.Codes {
			q.Codes[i] = 0 // all elements equal Min
		}
		return
	}
	inv := 1 / q.Scale
	for i, v := range t.Data {
		c := math.Round((v - lo) * inv)
		if c < 0 {
			c = 0
		} else if c > 255 {
			c = 255
		}
		q.Codes[i] = uint8(c)
	}
}

// Dequantize decodes back to a float tensor.
func (q *Quantized) Dequantize() *tensor.Tensor {
	return q.DequantizeInto(&tensor.Tensor{})
}

// DequantizeInto decodes into dst, shaping it to the encoded shape
// (reusing its storage) and returning dst. Every element is overwritten,
// so results are identical to Dequantize.
func (q *Quantized) DequantizeInto(dst *tensor.Tensor) *tensor.Tensor {
	dst.Ensure(q.Shape...)
	if q.Scale == 0 {
		dst.Fill(q.Min)
		return dst
	}
	for i, c := range q.Codes {
		dst.Data[i] = q.Min + float64(c)*q.Scale
	}
	return dst
}

// WireBytes returns the transfer size of the encoded tensor.
func (q *Quantized) WireBytes() int64 {
	return int64(len(q.Codes))*WireBytesPerScalar + headerBytes
}

// MaxError returns the worst-case absolute round-trip error (scale/2).
func (q *Quantized) MaxError() float64 { return q.Scale / 2 }

// RoundTrip is the convenience composition used inside training steps:
// quantize then immediately dequantize, returning the precision-lossy
// tensor the receiving side would see.
func RoundTrip(t *tensor.Tensor) *tensor.Tensor {
	return Quantize(t).Dequantize()
}

// Buffer is a reusable quantize→dequantize workspace. Each
// concurrently-training replica owns its own (one per transfer
// direction); steady-state round trips then allocate nothing.
type Buffer struct {
	q   Quantized
	out tensor.Tensor
}

// RoundTrip is the allocation-free form of the package-level RoundTrip:
// the returned tensor is the buffer's own and is valid until the next
// call on the same Buffer. Results are bit-identical to the allocating
// version.
func (b *Buffer) RoundTrip(t *tensor.Tensor) *tensor.Tensor {
	QuantizeInto(&b.q, t)
	return b.q.DequantizeInto(&b.out)
}
