package agg_test

import (
	"fmt"

	"gsfl/internal/agg"
	"gsfl/internal/model"
	"gsfl/internal/tensor"
)

// ExampleFedAvg shows the weighted average the AP computes in GSFL's
// Step 3: two group models merged with weights proportional to how much
// data each group saw.
func ExampleFedAvg() {
	groupA := model.Snapshot{Tensors: []*tensor.Tensor{tensor.FromSlice([]float64{1, 1}, 2)}}
	groupB := model.Snapshot{Tensors: []*tensor.Tensor{tensor.FromSlice([]float64{4, 0}, 2)}}

	// Group A trained on 300 samples, group B on 100.
	global := agg.FedAvg([]model.Snapshot{groupA, groupB}, []float64{300, 100})
	fmt.Println(global.Tensors[0].Data)
	// Output: [1.75 0.75]
}
