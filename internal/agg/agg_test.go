package agg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gsfl/internal/model"
	"gsfl/internal/tensor"
)

func snapOf(vals ...float64) model.Snapshot {
	return model.Snapshot{Tensors: []*tensor.Tensor{tensor.FromSlice(vals, len(vals))}}
}

func TestFedAvgUniform(t *testing.T) {
	got := FedAvg([]model.Snapshot{snapOf(1, 2), snapOf(3, 4)}, nil)
	want := snapOf(2, 3)
	if got.L2Distance(want) > 1e-12 {
		t.Fatalf("uniform FedAvg = %v", got.Tensors[0])
	}
}

func TestFedAvgWeighted(t *testing.T) {
	got := FedAvg([]model.Snapshot{snapOf(0), snapOf(10)}, []float64{1, 3})
	if math.Abs(got.Tensors[0].Data[0]-7.5) > 1e-12 {
		t.Fatalf("weighted FedAvg = %v, want 7.5", got.Tensors[0].Data[0])
	}
}

func TestFedAvgSingleIsIdentity(t *testing.T) {
	s := snapOf(1.5, -2.5, 3)
	got := FedAvg([]model.Snapshot{s}, []float64{7})
	if got.L2Distance(s) > 1e-12 {
		t.Fatal("FedAvg of one snapshot must be that snapshot")
	}
}

func TestFedAvgZeroWeightIgnored(t *testing.T) {
	got := FedAvg([]model.Snapshot{snapOf(5), snapOf(1000)}, []float64{1, 0})
	if math.Abs(got.Tensors[0].Data[0]-5) > 1e-12 {
		t.Fatalf("zero-weight snapshot leaked into average: %v", got.Tensors[0].Data[0])
	}
}

func TestFedAvgScaleInvariantWeights(t *testing.T) {
	snaps := []model.Snapshot{snapOf(1, 2), snapOf(5, 6), snapOf(-1, 0)}
	a := FedAvg(snaps, []float64{1, 2, 3})
	b := FedAvg(snaps, []float64{10, 20, 30})
	if a.L2Distance(b) > 1e-12 {
		t.Fatal("FedAvg must be invariant to weight scaling")
	}
}

func TestFedAvgPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func()
	}{
		{"empty", func() { FedAvg(nil, nil) }},
		{"weight count", func() { FedAvg([]model.Snapshot{snapOf(1)}, []float64{1, 2}) }},
		{"negative weight", func() { FedAvg([]model.Snapshot{snapOf(1)}, []float64{-1}) }},
		{"all zero weights", func() { FedAvg([]model.Snapshot{snapOf(1)}, []float64{0}) }},
		{"structure mismatch", func() { FedAvg([]model.Snapshot{snapOf(1), snapOf(1, 2)}, nil) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tc.f()
		})
	}
}

// prop: the average lies inside the convex hull — its coordinates are
// bounded by the min and max of the inputs.
func TestPropFedAvgConvexity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		dim := 1 + rng.Intn(6)
		snaps := make([]model.Snapshot, n)
		weights := make([]float64, n)
		for i := range snaps {
			vals := make([]float64, dim)
			for j := range vals {
				vals[j] = rng.NormFloat64() * 10
			}
			snaps[i] = snapOf(vals...)
			weights[i] = rng.Float64() + 0.01
		}
		avg := FedAvg(snaps, weights)
		for j := 0; j < dim; j++ {
			lo, hi := math.Inf(1), math.Inf(-1)
			for i := range snaps {
				v := snaps[i].Tensors[0].Data[j]
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
			v := avg.Tensors[0].Data[j]
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// prop: FedAvg of identical snapshots is that snapshot (idempotence).
func TestPropFedAvgIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 1 + rng.Intn(8)
		vals := make([]float64, dim)
		for j := range vals {
			vals[j] = rng.NormFloat64()
		}
		s := snapOf(vals...)
		n := 1 + rng.Intn(5)
		snaps := make([]model.Snapshot, n)
		for i := range snaps {
			snaps[i] = s.Clone()
		}
		return FedAvg(snaps, nil).L2Distance(s) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
