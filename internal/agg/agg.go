// Package agg implements model aggregation for the federation step of
// GSFL and the FL baseline.
//
// The paper's Step 3 aggregates the M group-level server-side models and
// the M client-side models with FedAVG; this package provides that
// weighted average over model.Snapshot values.
package agg

import (
	"fmt"

	"gsfl/internal/model"
	"gsfl/internal/tensor"
)

// FedAvg returns the weighted average of structurally identical
// snapshots. weights are typically per-group sample counts; they are
// normalized internally, so any positive scale works. Passing nil weights
// averages uniformly.
func FedAvg(snaps []model.Snapshot, weights []float64) model.Snapshot {
	var out model.Snapshot
	FedAvgInto(&out, snaps, weights)
	return out
}

// FedAvgInto computes the weighted average of structurally identical
// snapshots into dst, reusing dst's tensors (they are allocated on first
// use, when dst is the zero Snapshot). dst must not alias any of the
// input snapshots. Accumulation visits snapshots in slice order, exactly
// like FedAvg, so reusing dst round after round is bit-identical to
// allocating fresh.
func FedAvgInto(dst *model.Snapshot, snaps []model.Snapshot, weights []float64) {
	if len(snaps) == 0 {
		panic("agg: FedAvg of zero snapshots")
	}
	if weights == nil {
		weights = make([]float64, len(snaps))
		for i := range weights {
			weights[i] = 1
		}
	}
	if len(weights) != len(snaps) {
		panic(fmt.Sprintf("agg: %d snapshots vs %d weights", len(snaps), len(weights)))
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			panic(fmt.Sprintf("agg: negative weight %v at %d", w, i))
		}
		total += w
	}
	if total == 0 {
		panic("agg: all weights zero")
	}

	ref := snaps[0]
	if dst.Tensors == nil {
		dst.Tensors = make([]*tensor.Tensor, len(ref.Tensors))
		for ti, t := range ref.Tensors {
			dst.Tensors[ti] = tensor.New(t.Shape()...)
		}
	} else {
		if len(dst.Tensors) != len(ref.Tensors) {
			panic(fmt.Sprintf("agg: destination has %d tensors, want %d", len(dst.Tensors), len(ref.Tensors)))
		}
		for ti, t := range dst.Tensors {
			if t.Size() != ref.Tensors[ti].Size() {
				panic(fmt.Sprintf("agg: destination tensor %d size mismatch", ti))
			}
			t.Zero()
		}
	}
	for si, sn := range snaps {
		if len(sn.Tensors) != len(ref.Tensors) {
			panic(fmt.Sprintf("agg: snapshot %d has %d tensors, want %d", si, len(sn.Tensors), len(ref.Tensors)))
		}
		w := weights[si] / total
		if w == 0 {
			continue
		}
		for ti, t := range sn.Tensors {
			if t.Size() != ref.Tensors[ti].Size() {
				panic(fmt.Sprintf("agg: snapshot %d tensor %d size mismatch", si, ti))
			}
			dst.Tensors[ti].AddScaled(w, t)
		}
	}
}
