package agg

import (
	"math/rand"
	"testing"

	"gsfl/internal/model"
	"gsfl/internal/tensor"
	"gsfl/internal/testutil"
)

func randSnaps(rng *rand.Rand, k int) []model.Snapshot {
	out := make([]model.Snapshot, k)
	for i := range out {
		out[i] = model.Snapshot{Tensors: []*tensor.Tensor{
			tensor.New(4, 3).RandNormal(rng, 0, 1),
			tensor.New(3).RandNormal(rng, 0, 1),
		}}
	}
	return out
}

// TestFedAvgIntoMatchesFedAvg pins the reusable-destination aggregation
// to the allocating one bit for bit, including when the destination is
// reused across calls with different weights.
func TestFedAvgIntoMatchesFedAvg(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	snaps := randSnaps(rng, 3)
	var dst model.Snapshot
	for trial := 0; trial < 4; trial++ {
		weights := []float64{rng.Float64() + 0.1, rng.Float64() + 0.1, rng.Float64() + 0.1}
		want := FedAvg(snaps, weights)
		FedAvgInto(&dst, snaps, weights)
		if d := want.L2Distance(dst); d != 0 {
			t.Fatalf("trial %d: FedAvgInto differs from FedAvg by %v", trial, d)
		}
	}
}

func TestFedAvgIntoAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	snaps := randSnaps(rng, 4)
	weights := []float64{1, 2, 3, 4}
	var dst model.Snapshot
	testutil.MaxAllocs(t, "FedAvgInto", 0, func() { FedAvgInto(&dst, snaps, weights) })
}

func TestFedAvgIntoValidatesDestination(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	snaps := randSnaps(rng, 2)
	bad := model.Snapshot{Tensors: []*tensor.Tensor{tensor.New(1)}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for structurally different destination")
		}
	}()
	FedAvgInto(&bad, snaps, nil)
}
