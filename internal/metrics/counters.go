package metrics

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
)

// This file adds operational counters — the Prometheus-style side of the
// package, next to the training-curve statistics above. The real-TCP
// deployment (internal/transport) registers rounds/s, bytes in/out,
// straggler and membership counters here and serves them from the AP's
// -metrics endpoint in the standard text exposition format.

// Counter is a monotonically increasing int64 metric. Safe for
// concurrent use.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// Add increments the counter by n (n must be non-negative).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic(fmt.Sprintf("metrics: negative Add(%d) on counter %s", n, c.name))
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Name returns the metric name.
func (c *Counter) Name() string { return c.name }

// Gauge is a settable int64 metric. Safe for concurrent use.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add shifts the gauge by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Name returns the metric name.
func (g *Gauge) Name() string { return g.name }

// Registry holds a set of named counters and gauges and renders them in
// the Prometheus text exposition format. Metrics are emitted in
// registration order, so scrapes are byte-stable for a fixed value set.
type Registry struct {
	mu     sync.Mutex
	order  []string
	byName map[string]any // *Counter or *Gauge
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]any)}
}

// Counter returns the counter registered under name, creating it on
// first use. Registering the same name as a different metric type
// panics (a programmer error at wiring time).
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		c, ok := m.(*Counter)
		if !ok {
			panic(fmt.Sprintf("metrics: %s already registered as a gauge", name))
		}
		return c
	}
	c := &Counter{name: name, help: help}
	r.byName[name] = c
	r.order = append(r.order, name)
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. Registering the same name as a different metric type panics.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		g, ok := m.(*Gauge)
		if !ok {
			panic(fmt.Sprintf("metrics: %s already registered as a counter", name))
		}
		return g
	}
	g := &Gauge{name: name, help: help}
	r.byName[name] = g
	r.order = append(r.order, name)
	return g
}

// Handler returns an http.Handler serving the registry in the
// Prometheus text exposition format — the shared implementation behind
// every -metrics endpoint (the transport AP's and gsfl-sim's).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = r.WriteText(w)
	})
}

// WriteText renders every metric in the Prometheus text exposition
// format (HELP, TYPE, value), in registration order.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	metrics := make([]any, len(names))
	for i, n := range names {
		metrics[i] = r.byName[n]
	}
	r.mu.Unlock()

	for i, name := range names {
		var kind string
		var help string
		var val int64
		switch m := metrics[i].(type) {
		case *Counter:
			kind, help, val = "counter", m.help, m.Value()
		case *Gauge:
			kind, help, val = "gauge", m.help, m.Value()
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", name, help, name, kind, name, val); err != nil {
			return err
		}
	}
	return nil
}
