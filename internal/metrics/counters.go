package metrics

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// This file adds operational counters — the Prometheus-style side of the
// package, next to the training-curve statistics above. The real-TCP
// deployment (internal/transport) registers rounds/s, bytes in/out,
// straggler and membership counters here and serves them from the AP's
// -metrics endpoint in the standard text exposition format.

// Counter is a monotonically increasing int64 metric. Safe for
// concurrent use.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// Add increments the counter by n (n must be non-negative).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic(fmt.Sprintf("metrics: negative Add(%d) on counter %s", n, c.name))
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Name returns the metric name.
func (c *Counter) Name() string { return c.name }

// Gauge is a settable int64 metric. Safe for concurrent use.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add shifts the gauge by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Name returns the metric name.
func (g *Gauge) Name() string { return g.name }

// Registry holds a set of named counters, gauges, and histograms and
// renders them in the Prometheus text exposition format. Metrics are
// emitted sorted by name, so scrapes are byte-stable for a fixed value
// set regardless of registration order.
type Registry struct {
	mu     sync.Mutex
	byName map[string]any // *Counter, *Gauge, or *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]any)}
}

// Counter returns the counter registered under name, creating it on
// first use. Registering the same name as a different metric type
// panics (a programmer error at wiring time).
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		c, ok := m.(*Counter)
		if !ok {
			panic(fmt.Sprintf("metrics: %s already registered as a different metric type", name))
		}
		return c
	}
	c := &Counter{name: name, help: help}
	r.byName[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. Registering the same name as a different metric type panics.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		g, ok := m.(*Gauge)
		if !ok {
			panic(fmt.Sprintf("metrics: %s already registered as a different metric type", name))
		}
		return g
	}
	g := &Gauge{name: name, help: help}
	r.byName[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use with the given bucket upper bounds (see DefSecondsBuckets /
// DefBytesBuckets). The buckets argument is ignored when the histogram
// already exists; registering the same name as a different metric type
// panics.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		h, ok := m.(*Histogram)
		if !ok {
			panic(fmt.Sprintf("metrics: %s already registered as a different metric type", name))
		}
		return h
	}
	h := newHistogram(name, help, buckets)
	r.byName[name] = h
	return h
}

// Handler returns an http.Handler serving the registry in the
// Prometheus text exposition format — the shared implementation behind
// every -metrics endpoint (the transport AP's and gsfl-sim's).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = r.WriteText(w)
	})
}

// WriteText renders every metric in the Prometheus text exposition
// format (HELP, TYPE, then samples), sorted by metric name. HELP text
// is escaped per the format (backslash and newline).
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.byName))
	for n := range r.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	ms := make([]any, len(names))
	for i, n := range names {
		ms[i] = r.byName[n]
	}
	r.mu.Unlock()

	for i, name := range names {
		var err error
		switch m := ms[i].(type) {
		case *Counter:
			_, err = fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
				name, escapeHelp(m.help), name, name, m.Value())
		case *Gauge:
			_, err = fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n",
				name, escapeHelp(m.help), name, name, m.Value())
		case *Histogram:
			err = writeHistogramText(w, name, m)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writeHistogramText renders one histogram: cumulative buckets with le
// labels (ending in +Inf), then _sum and _count.
func writeHistogramText(w io.Writer, name string, h *Histogram) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n",
		name, escapeHelp(h.help), name); err != nil {
		return err
	}
	bounds, cum := h.Snapshot()
	for i, b := range bounds {
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n",
			name, strconv.FormatFloat(b, 'g', -1, 64), cum[i]); err != nil {
			return err
		}
	}
	total := cum[len(cum)-1]
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, total); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n",
		name, strconv.FormatFloat(h.Sum(), 'g', -1, 64), name, total)
	return err
}

// escapeHelp escapes a HELP string per the text exposition format:
// backslash to \\ and newline to \n.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
