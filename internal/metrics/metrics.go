// Package metrics tracks training curves and derives the summary
// statistics the paper reports: accuracy-vs-round curves (Fig. 2a),
// accuracy-vs-latency curves (Fig. 2b), and rounds/latency-to-target
// convergence numbers (the "500% faster than FL" and "31.45% less delay
// than SL" headlines).
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Point is one evaluation on a training curve.
type Point struct {
	// Round is the 1-based training round after which the evaluation ran.
	Round int
	// LatencySeconds is cumulative virtual training time at that round.
	LatencySeconds float64
	// Loss is the evaluation loss.
	Loss float64
	// Accuracy is the evaluation accuracy in [0,1].
	Accuracy float64
}

// Curve is a training trajectory for one scheme.
type Curve struct {
	// Scheme names the producer ("gsfl", "sl", "fl", "cl", "sfl").
	Scheme string
	Points []Point
}

// Append adds an evaluation point; rounds must be strictly increasing.
func (c *Curve) Append(p Point) {
	if n := len(c.Points); n > 0 {
		last := c.Points[n-1]
		if p.Round <= last.Round {
			panic(fmt.Sprintf("metrics: non-increasing round %d after %d", p.Round, last.Round))
		}
		if p.LatencySeconds < last.LatencySeconds {
			panic(fmt.Sprintf("metrics: latency moved backward (%v after %v)", p.LatencySeconds, last.LatencySeconds))
		}
	}
	c.Points = append(c.Points, p)
}

// FinalAccuracy returns the last point's accuracy (0 for empty curves).
func (c *Curve) FinalAccuracy() float64 {
	if len(c.Points) == 0 {
		return 0
	}
	return c.Points[len(c.Points)-1].Accuracy
}

// BestAccuracy returns the maximum accuracy on the curve.
func (c *Curve) BestAccuracy() float64 {
	best := 0.0
	for _, p := range c.Points {
		if p.Accuracy > best {
			best = p.Accuracy
		}
	}
	return best
}

// RoundsToAccuracy returns the first round at which the curve reaches
// target accuracy, or (0, false) if it never does.
func (c *Curve) RoundsToAccuracy(target float64) (int, bool) {
	for _, p := range c.Points {
		if p.Accuracy >= target {
			return p.Round, true
		}
	}
	return 0, false
}

// LatencyToAccuracy returns the cumulative latency at which the curve
// first reaches target accuracy, or (0, false) if it never does.
func (c *Curve) LatencyToAccuracy(target float64) (float64, bool) {
	for _, p := range c.Points {
		if p.Accuracy >= target {
			return p.LatencySeconds, true
		}
	}
	return 0, false
}

// MovingAverage returns a copy of the curve with accuracy smoothed over a
// trailing window — the standard presentation for noisy SGD curves.
func (c *Curve) MovingAverage(window int) *Curve {
	if window <= 0 {
		panic(fmt.Sprintf("metrics: window %d must be positive", window))
	}
	out := &Curve{Scheme: c.Scheme, Points: make([]Point, len(c.Points))}
	for i, p := range c.Points {
		lo := i - window + 1
		if lo < 0 {
			lo = 0
		}
		accSum, lossSum := 0.0, 0.0
		for _, q := range c.Points[lo : i+1] {
			accSum += q.Accuracy
			lossSum += q.Loss
		}
		n := float64(i - lo + 1)
		p.Accuracy = accSum / n
		p.Loss = lossSum / n
		out.Points[i] = p
	}
	return out
}

// AccuracyAtLatency interpolates the curve's accuracy at time t, clamping
// to the curve's endpoints. Used to compare schemes at a common latency
// budget.
func (c *Curve) AccuracyAtLatency(t float64) float64 {
	if len(c.Points) == 0 {
		return 0
	}
	pts := c.Points
	if t <= pts[0].LatencySeconds {
		return pts[0].Accuracy
	}
	if t >= pts[len(pts)-1].LatencySeconds {
		return pts[len(pts)-1].Accuracy
	}
	i := sort.Search(len(pts), func(i int) bool { return pts[i].LatencySeconds >= t })
	a, b := pts[i-1], pts[i]
	if b.LatencySeconds == a.LatencySeconds {
		return b.Accuracy
	}
	frac := (t - a.LatencySeconds) / (b.LatencySeconds - a.LatencySeconds)
	return a.Accuracy + frac*(b.Accuracy-a.Accuracy)
}

// SpeedupVsRounds returns how many times fewer rounds c needs than other
// to reach target (e.g. 5.0 = "500% improvement in convergence speed").
// ok is false when either curve never reaches the target.
func SpeedupVsRounds(c, other *Curve, target float64) (speedup float64, ok bool) {
	rc, ok1 := c.RoundsToAccuracy(target)
	ro, ok2 := other.RoundsToAccuracy(target)
	if !ok1 || !ok2 || rc == 0 {
		return 0, false
	}
	return float64(ro) / float64(rc), true
}

// DelayReduction returns the fractional latency saving of c versus other
// at the target accuracy (e.g. 0.3145 = "reduces the delay by 31.45%").
func DelayReduction(c, other *Curve, target float64) (reduction float64, ok bool) {
	lc, ok1 := c.LatencyToAccuracy(target)
	lo, ok2 := other.LatencyToAccuracy(target)
	if !ok1 || !ok2 || lo == 0 {
		return 0, false
	}
	return (lo - lc) / lo, true
}

// ConfusionMatrix accumulates per-class prediction counts.
type ConfusionMatrix struct {
	classes int
	counts  []int // row = truth, col = prediction
}

// NewConfusionMatrix creates a matrix for the given class count.
func NewConfusionMatrix(classes int) *ConfusionMatrix {
	if classes <= 0 {
		panic(fmt.Sprintf("metrics: classes %d must be positive", classes))
	}
	return &ConfusionMatrix{classes: classes, counts: make([]int, classes*classes)}
}

// Observe records one (truth, prediction) pair.
func (m *ConfusionMatrix) Observe(truth, pred int) {
	if truth < 0 || truth >= m.classes || pred < 0 || pred >= m.classes {
		panic(fmt.Sprintf("metrics: observation (%d,%d) outside %d classes", truth, pred, m.classes))
	}
	m.counts[truth*m.classes+pred]++
}

// Count returns the number of observations with the given truth and
// prediction.
func (m *ConfusionMatrix) Count(truth, pred int) int {
	return m.counts[truth*m.classes+pred]
}

// Accuracy returns the global accuracy (0 when empty).
func (m *ConfusionMatrix) Accuracy() float64 {
	correct, total := 0, 0
	for t := 0; t < m.classes; t++ {
		for p := 0; p < m.classes; p++ {
			c := m.Count(t, p)
			total += c
			if t == p {
				correct += c
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// Recall returns per-class recall (NaN-free: classes with no samples get 0).
func (m *ConfusionMatrix) Recall(class int) float64 {
	total := 0
	for p := 0; p < m.classes; p++ {
		total += m.Count(class, p)
	}
	if total == 0 {
		return 0
	}
	return float64(m.Count(class, class)) / float64(total)
}

// MacroRecall averages recall over classes that have samples.
func (m *ConfusionMatrix) MacroRecall() float64 {
	sum, n := 0.0, 0
	for c := 0; c < m.classes; c++ {
		total := 0
		for p := 0; p < m.classes; p++ {
			total += m.Count(c, p)
		}
		if total == 0 {
			continue
		}
		sum += m.Recall(c)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// AUCRounds approximates the area under the accuracy-vs-rounds curve via
// the trapezoid rule, a single-number summary of convergence speed used
// by the ablation benches.
func (c *Curve) AUCRounds() float64 {
	if len(c.Points) < 2 {
		return 0
	}
	area := 0.0
	for i := 1; i < len(c.Points); i++ {
		a, b := c.Points[i-1], c.Points[i]
		area += (a.Accuracy + b.Accuracy) / 2 * float64(b.Round-a.Round)
	}
	span := float64(c.Points[len(c.Points)-1].Round - c.Points[0].Round)
	if span == 0 {
		return 0
	}
	return area / span
}

// IsFinite reports whether every numeric field of every point is finite;
// guards trace output against NaN divergence.
func (c *Curve) IsFinite() bool {
	for _, p := range c.Points {
		if math.IsNaN(p.Loss) || math.IsInf(p.Loss, 0) ||
			math.IsNaN(p.Accuracy) || math.IsInf(p.Accuracy, 0) ||
			math.IsNaN(p.LatencySeconds) || math.IsInf(p.LatencySeconds, 0) {
			return false
		}
	}
	return true
}
