package metrics

import (
	"fmt"
	"io"
	"math/rand"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// Exposition-format line shapes, per the Prometheus text format spec:
// HELP/TYPE comments, then samples `name{labels} value` with float
// values (including NaN/+Inf and scientific notation).
var (
	helpRe   = regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* [^\n]*$`)
	typeRe   = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram|summary|untyped)$`)
	sampleRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|[+-]?[0-9]*\.?[0-9]+([eE][+-]?[0-9]+)?) ?[0-9]*$`)
)

// checkExposition asserts every line of an exposition page parses under
// the regexes above — the shape a Prometheus scraper accepts.
func checkExposition(t *testing.T, page string) {
	t.Helper()
	if page == "" {
		return
	}
	for i, line := range strings.Split(strings.TrimSuffix(page, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			if !helpRe.MatchString(line) {
				t.Fatalf("line %d not a valid HELP line: %q", i+1, line)
			}
		case strings.HasPrefix(line, "# TYPE "):
			if !typeRe.MatchString(line) {
				t.Fatalf("line %d not a valid TYPE line: %q", i+1, line)
			}
		case strings.HasPrefix(line, "#"):
			// bare comments are legal
		default:
			if !sampleRe.MatchString(line) {
				t.Fatalf("line %d not a valid sample: %q", i+1, line)
			}
		}
	}
}

// TestExpositionConformance renders a full page — counters, gauges, a
// histogram, awkward HELP strings — and runs it through the
// parser-shaped regexes.
func TestExpositionConformance(t *testing.T) {
	r := NewRegistry()
	r.Counter("gsfl_rounds_total", "rounds served").Add(42)
	r.Gauge("gsfl_clients_active", "clients with live\nconnections").Set(-3)
	r.Counter("gsfl_weird_help_total", `path C:\tmp\x and a
second line`).Inc()
	h := r.Histogram("gsfl_turn_seconds", "turn wall time", DefSecondsBuckets)
	h.Observe(0.003)
	h.Observe(7.5)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	page := sb.String()
	checkExposition(t, page)
	if !strings.Contains(page, `path C:\\tmp\\x and a\nsecond line`) {
		t.Fatalf("HELP not escaped:\n%s", page)
	}
	if strings.Count(page, "\n# HELP")+1 != 4 {
		t.Fatalf("expected 4 metric families:\n%s", page)
	}
}

// TestExpositionSorted pins the stable ordering contract: output is
// sorted by metric name no matter the registration order.
func TestExpositionSorted(t *testing.T) {
	page := func(names []string) string {
		r := NewRegistry()
		for _, n := range names {
			r.Counter(n, "h").Inc()
		}
		var sb strings.Builder
		if err := r.WriteText(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	names := []string{"zz_total", "aa_total", "mm_total", "bb_total"}
	a := page(names)
	shuffled := append([]string(nil), names...)
	rand.New(rand.NewSource(1)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	if b := page(shuffled); a != b {
		t.Fatalf("output depends on registration order:\n%s\nvs\n%s", a, b)
	}
	if !strings.HasPrefix(a, "# HELP aa_total") {
		t.Fatalf("output not name-sorted:\n%s", a)
	}
}

// TestRegistryConcurrent hammers create-on-first-use registration,
// metric updates, and text serving from many goroutines at once — the
// AP registers metrics while its endpoint is being scraped. Run under
// -race this is the registry's data-race gate.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter(fmt.Sprintf("ctr_%d_total", i%10), "h").Inc()
				r.Gauge(fmt.Sprintf("g_%d", i%10), "h").Set(int64(i))
				r.Histogram(fmt.Sprintf("h_%d_seconds", i%10), "h", DefSecondsBuckets).Observe(float64(i) / 100)
				if i%20 == 0 {
					if err := r.WriteText(io.Discard); err != nil {
						t.Error(err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	checkExposition(t, rec.Body.String())
	if got := r.Counter("ctr_0_total", "h").Value(); got != 8*20 {
		t.Fatalf("ctr_0_total = %d, want 160", got)
	}
}

// TestCurveAppendPanics covers every Append panic path plus the legal
// boundary cases around them.
func TestCurveAppendPanics(t *testing.T) {
	grab := func(f func()) (msg string) {
		defer func() {
			if r := recover(); r != nil {
				msg = fmt.Sprint(r)
			}
		}()
		f()
		return ""
	}

	var c Curve
	c.Append(Point{Round: 5, LatencySeconds: 2})
	if msg := grab(func() { c.Append(Point{Round: 5, LatencySeconds: 3}) }); !strings.Contains(msg, "non-increasing round") {
		t.Fatalf("equal round: panic = %q", msg)
	}
	if msg := grab(func() { c.Append(Point{Round: 4, LatencySeconds: 3}) }); !strings.Contains(msg, "non-increasing round") {
		t.Fatalf("decreasing round: panic = %q", msg)
	}
	if msg := grab(func() { c.Append(Point{Round: 6, LatencySeconds: 1.9}) }); !strings.Contains(msg, "latency moved backward") {
		t.Fatalf("backward latency: panic = %q", msg)
	}
	// Equal latency at a later round is legal (a zero-cost round).
	if msg := grab(func() { c.Append(Point{Round: 6, LatencySeconds: 2}) }); msg != "" {
		t.Fatalf("equal latency must not panic: %q", msg)
	}
	if len(c.Points) != 2 {
		t.Fatalf("curve has %d points, want 2", len(c.Points))
	}
	// First point is unconstrained (any round, any latency).
	var first Curve
	if msg := grab(func() { first.Append(Point{Round: 1, LatencySeconds: 0}) }); msg != "" {
		t.Fatalf("first append must not panic: %q", msg)
	}
}
