package metrics_test

import (
	"fmt"

	"gsfl/internal/metrics"
)

// ExampleDelayReduction computes the paper's headline statistic: the
// fraction of wall-clock training time GSFL saves over vanilla SL at a
// common accuracy target.
func ExampleDelayReduction() {
	gsfl := &metrics.Curve{Scheme: "gsfl"}
	gsfl.Append(metrics.Point{Round: 100, LatencySeconds: 686, Accuracy: 0.90})
	sl := &metrics.Curve{Scheme: "sl"}
	sl.Append(metrics.Point{Round: 80, LatencySeconds: 1000, Accuracy: 0.90})

	reduction, ok := metrics.DelayReduction(gsfl, sl, 0.90)
	fmt.Printf("%.1f%% %v\n", reduction*100, ok)
	// Output: 31.4% true
}

// ExampleSpeedupVsRounds computes the "nearly 500% improvement in
// convergence speed" comparison against FL.
func ExampleSpeedupVsRounds() {
	gsfl := &metrics.Curve{Scheme: "gsfl"}
	gsfl.Append(metrics.Point{Round: 100, Accuracy: 0.85})
	fl := &metrics.Curve{Scheme: "fl"}
	fl.Append(metrics.Point{Round: 500, Accuracy: 0.85})

	speedup, _ := metrics.SpeedupVsRounds(gsfl, fl, 0.85)
	fmt.Printf("%.0f%%\n", speedup*100)
	// Output: 500%
}
