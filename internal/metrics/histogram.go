package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Histogram is a fixed-bucket distribution metric in the Prometheus
// style: cumulative observation counts per upper bound plus a running
// sum and count. Safe for concurrent use; Observe is lock-free (one
// atomic add per call plus a CAS loop on the sum), cheap enough to sit
// on the transport's per-frame path.
type Histogram struct {
	name, help string
	bounds     []float64 // strictly increasing finite upper bounds
	counts     []atomic.Int64
	sumBits    atomic.Uint64
	count      atomic.Int64
}

// DefSecondsBuckets is the default bucket layout for latency
// histograms: roughly exponential from 100µs to a minute, matched to
// the spread between a loopback frame round-trip and a straggler
// deadline.
var DefSecondsBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// DefBytesBuckets is the default bucket layout for frame/message size
// histograms: powers of four from 64 B to 16 MiB (the default frame
// cap).
var DefBytesBuckets = []float64{
	64, 256, 1024, 4096, 16384, 65536, 262144, 1 << 20, 4 << 20, 16 << 20,
}

func newHistogram(name, help string, buckets []float64) *Histogram {
	if len(buckets) == 0 {
		panic(fmt.Sprintf("metrics: histogram %s needs at least one bucket", name))
	}
	bounds := append([]float64(nil), buckets...)
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic(fmt.Sprintf("metrics: histogram %s bucket %v must be finite (+Inf is implicit)", name, b))
		}
		if i > 0 && b <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram %s buckets must be strictly increasing (%v after %v)", name, b, bounds[i-1]))
		}
	}
	return &Histogram{
		name: name, help: help,
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1), // +1 = implicit +Inf
	}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	// Upper bounds are inclusive (le): the first bound >= v is v's
	// bucket, and i == len(bounds) lands in the implicit +Inf bucket.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Name returns the metric name.
func (h *Histogram) Name() string { return h.name }

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket
// counts with Prometheus-style linear interpolation inside the target
// bucket (the first bucket interpolates from zero). Observations above
// the last finite bound clamp to that bound. Returns NaN when empty.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	target := q * float64(total)
	var cum float64
	for i := range h.bounds {
		c := float64(h.counts[i].Load())
		if cum+c >= target && c > 0 {
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			frac := (target - cum) / c
			return lower + (h.bounds[i]-lower)*frac
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// Snapshot returns the cumulative per-bucket counts (one entry per
// finite bound, plus the +Inf total last) — the exposition-format view,
// also handy for tests.
func (h *Histogram) Snapshot() (bounds []float64, cumulative []int64) {
	bounds = append([]float64(nil), h.bounds...)
	cumulative = make([]int64, len(h.counts))
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		cumulative[i] = cum
	}
	return bounds, cumulative
}
