package metrics

import (
	"math"
	"testing"
)

func mkCurve(scheme string, pts ...Point) *Curve {
	c := &Curve{Scheme: scheme}
	for _, p := range pts {
		c.Append(p)
	}
	return c
}

func TestAppendValidation(t *testing.T) {
	c := mkCurve("x", Point{Round: 1, Accuracy: 0.1})
	mustPanic := func(name string, p Point) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		c.Append(p)
	}
	mustPanic("same round", Point{Round: 1})
	mustPanic("backward latency", Point{Round: 2, LatencySeconds: -1})
}

func TestFinalAndBestAccuracy(t *testing.T) {
	c := mkCurve("x",
		Point{Round: 1, Accuracy: 0.3},
		Point{Round: 2, Accuracy: 0.9},
		Point{Round: 3, Accuracy: 0.7},
	)
	if c.FinalAccuracy() != 0.7 {
		t.Fatalf("FinalAccuracy = %v", c.FinalAccuracy())
	}
	if c.BestAccuracy() != 0.9 {
		t.Fatalf("BestAccuracy = %v", c.BestAccuracy())
	}
	empty := &Curve{}
	if empty.FinalAccuracy() != 0 || empty.BestAccuracy() != 0 {
		t.Fatal("empty curve accuracies must be 0")
	}
}

func TestRoundsAndLatencyToAccuracy(t *testing.T) {
	c := mkCurve("x",
		Point{Round: 10, LatencySeconds: 5, Accuracy: 0.2},
		Point{Round: 20, LatencySeconds: 12, Accuracy: 0.55},
		Point{Round: 30, LatencySeconds: 20, Accuracy: 0.8},
	)
	if r, ok := c.RoundsToAccuracy(0.5); !ok || r != 20 {
		t.Fatalf("RoundsToAccuracy = %d,%v", r, ok)
	}
	if l, ok := c.LatencyToAccuracy(0.5); !ok || l != 12 {
		t.Fatalf("LatencyToAccuracy = %v,%v", l, ok)
	}
	if _, ok := c.RoundsToAccuracy(0.99); ok {
		t.Fatal("unreached target must report !ok")
	}
}

func TestSpeedupVsRounds(t *testing.T) {
	fast := mkCurve("gsfl", Point{Round: 100, Accuracy: 0.8})
	slow := mkCurve("fl", Point{Round: 500, Accuracy: 0.8})
	s, ok := SpeedupVsRounds(fast, slow, 0.8)
	if !ok || math.Abs(s-5) > 1e-12 {
		t.Fatalf("speedup = %v,%v, want 5", s, ok)
	}
	if _, ok := SpeedupVsRounds(fast, slow, 0.95); ok {
		t.Fatal("speedup at unreachable target must be !ok")
	}
}

func TestDelayReduction(t *testing.T) {
	gsfl := mkCurve("gsfl", Point{Round: 1, LatencySeconds: 686, Accuracy: 0.9})
	sl := mkCurve("sl", Point{Round: 1, LatencySeconds: 1000, Accuracy: 0.9})
	r, ok := DelayReduction(gsfl, sl, 0.9)
	if !ok || math.Abs(r-0.314) > 1e-12 {
		t.Fatalf("reduction = %v,%v, want 0.314", r, ok)
	}
}

func TestMovingAverage(t *testing.T) {
	c := mkCurve("x",
		Point{Round: 1, Accuracy: 0.0, Loss: 2},
		Point{Round: 2, Accuracy: 1.0, Loss: 0},
		Point{Round: 3, Accuracy: 0.5, Loss: 1},
	)
	s := c.MovingAverage(2)
	want := []float64{0.0, 0.5, 0.75}
	for i, p := range s.Points {
		if math.Abs(p.Accuracy-want[i]) > 1e-12 {
			t.Fatalf("smoothed[%d] = %v, want %v", i, p.Accuracy, want[i])
		}
	}
	// Original untouched.
	if c.Points[1].Accuracy != 1.0 {
		t.Fatal("MovingAverage mutated the source curve")
	}
}

func TestMovingAverageValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(&Curve{}).MovingAverage(0)
}

func TestAccuracyAtLatencyInterpolation(t *testing.T) {
	c := mkCurve("x",
		Point{Round: 1, LatencySeconds: 10, Accuracy: 0.2},
		Point{Round: 2, LatencySeconds: 20, Accuracy: 0.6},
	)
	cases := map[float64]float64{
		5:  0.2, // clamp low
		10: 0.2,
		15: 0.4, // midpoint
		20: 0.6,
		99: 0.6, // clamp high
	}
	for at, want := range cases {
		if got := c.AccuracyAtLatency(at); math.Abs(got-want) > 1e-12 {
			t.Fatalf("AccuracyAtLatency(%v) = %v, want %v", at, got, want)
		}
	}
	if (&Curve{}).AccuracyAtLatency(1) != 0 {
		t.Fatal("empty curve interpolation must be 0")
	}
}

func TestConfusionMatrix(t *testing.T) {
	m := NewConfusionMatrix(3)
	m.Observe(0, 0)
	m.Observe(0, 1)
	m.Observe(1, 1)
	m.Observe(2, 2)
	if acc := m.Accuracy(); math.Abs(acc-0.75) > 1e-12 {
		t.Fatalf("accuracy = %v, want 0.75", acc)
	}
	if r := m.Recall(0); math.Abs(r-0.5) > 1e-12 {
		t.Fatalf("recall(0) = %v, want 0.5", r)
	}
	if r := m.Recall(1); r != 1 {
		t.Fatalf("recall(1) = %v, want 1", r)
	}
	if mr := m.MacroRecall(); math.Abs(mr-(0.5+1+1)/3) > 1e-12 {
		t.Fatalf("macro recall = %v", mr)
	}
}

func TestConfusionMatrixEdges(t *testing.T) {
	m := NewConfusionMatrix(2)
	if m.Accuracy() != 0 || m.MacroRecall() != 0 {
		t.Fatal("empty matrix must report 0, not NaN")
	}
	if m.Recall(0) != 0 {
		t.Fatal("class with no samples must have recall 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad observation")
		}
	}()
	m.Observe(0, 5)
}

func TestAUCRounds(t *testing.T) {
	// Constant 0.5 accuracy => AUC 0.5.
	c := mkCurve("x",
		Point{Round: 0, Accuracy: 0.5},
		Point{Round: 10, Accuracy: 0.5},
	)
	if a := c.AUCRounds(); math.Abs(a-0.5) > 1e-12 {
		t.Fatalf("AUC = %v, want 0.5", a)
	}
	// Linear 0→1 => AUC 0.5; better curve (fast rise) must score higher.
	fast := mkCurve("fast",
		Point{Round: 0, Accuracy: 0},
		Point{Round: 1, Accuracy: 1},
		Point{Round: 10, Accuracy: 1},
	)
	slow := mkCurve("slow",
		Point{Round: 0, Accuracy: 0},
		Point{Round: 10, Accuracy: 1},
	)
	if fast.AUCRounds() <= slow.AUCRounds() {
		t.Fatalf("fast AUC %v must beat slow AUC %v", fast.AUCRounds(), slow.AUCRounds())
	}
	if (&Curve{}).AUCRounds() != 0 {
		t.Fatal("empty AUC must be 0")
	}
}

func TestIsFinite(t *testing.T) {
	good := mkCurve("x", Point{Round: 1, Accuracy: 0.5, Loss: 1})
	if !good.IsFinite() {
		t.Fatal("finite curve reported non-finite")
	}
	bad := mkCurve("x", Point{Round: 1, Accuracy: 0.5, Loss: math.NaN()})
	if bad.IsFinite() {
		t.Fatal("NaN loss not detected")
	}
}
