package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBucketsAndCounts(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x_seconds", "test", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 2, 100} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("Count = %d, want 6", h.Count())
	}
	if got, want := h.Sum(), 0.005+0.01+0.05+0.5+2+100; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Sum = %v, want %v", got, want)
	}
	bounds, cum := h.Snapshot()
	if len(bounds) != 3 || len(cum) != 4 {
		t.Fatalf("Snapshot shape %d/%d", len(bounds), len(cum))
	}
	// le=0.01 inclusive: 0.005 and 0.01.
	for i, want := range []int64{2, 3, 4, 6} {
		if cum[i] != want {
			t.Fatalf("cumulative[%d] = %d, want %d", i, cum[i], want)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_seconds", "test", []float64{1, 2, 4})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram quantile must be NaN")
	}
	// 100 observations uniform in (0,1]: all land in the first bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 100)
	}
	if got := h.Quantile(0.5); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("p50 = %v, want 0.5 (interpolated from zero)", got)
	}
	if got := h.Quantile(1); got != 1 {
		t.Fatalf("p100 = %v, want 1", got)
	}
	// Push mass above the last bound: quantile clamps to it.
	for i := 0; i < 1000; i++ {
		h.Observe(100)
	}
	if got := h.Quantile(0.99); got != 4 {
		t.Fatalf("p99 with overflow mass = %v, want clamp to 4", got)
	}
}

func TestHistogramValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	mustPanic("empty buckets", func() { r.Histogram("a", "", nil) })
	mustPanic("non-increasing", func() { r.Histogram("b", "", []float64{1, 1}) })
	mustPanic("inf bucket", func() { r.Histogram("c", "", []float64{1, math.Inf(1)}) })
	r.Counter("d", "")
	mustPanic("type clash", func() { r.Histogram("d", "", []float64{1}) })
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("turn_seconds", "per-turn wall time", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(30)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := `# HELP turn_seconds per-turn wall time
# TYPE turn_seconds histogram
turn_seconds_bucket{le="0.5"} 1
turn_seconds_bucket{le="1"} 2
turn_seconds_bucket{le="+Inf"} 3
turn_seconds_sum 31
turn_seconds_count 3
`
	if got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("c_seconds", "", []float64{0.5})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("Count = %d, want 8000", h.Count())
	}
	if got := h.Sum(); math.Abs(got-2000) > 1e-6 {
		t.Fatalf("Sum = %v, want 2000", got)
	}
}
