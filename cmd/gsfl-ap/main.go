// Command gsfl-ap runs the GSFL access point / edge server as a real
// network process. Client processes (cmd/gsfl-client) dial in over TCP;
// once every expected client has registered, the AP drives the requested
// number of GSFL rounds, printing evaluation results, then shuts the
// fleet down.
//
// A per-round -deadline plus a -straggler fallback policy keep the
// fleet moving when a client stalls, disconnects mid-frame, or simply
// cannot keep up: its turn is patched per the policy, its slot is
// refilled from late joiners at the next round boundary, and the round
// completes on time. -metrics exposes live transport counters over
// HTTP for scraping.
//
// The AP and its clients must agree on -clients, -image-size, -cut and
// the per-client data seeds; the defaults line up out of the box:
//
//	gsfl-ap -addr 127.0.0.1:7070 -clients 6 -groups 2 -rounds 10 &
//	for i in $(seq 0 5); do gsfl-client -addr 127.0.0.1:7070 -id $i & done
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gsfl/cliutil"
	"gsfl/env"
	"gsfl/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gsfl-ap:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gsfl-ap", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:7070", "listen address")
		clients   = fs.Int("clients", 6, "expected client count (N)")
		groups    = fs.Int("groups", 2, "number of groups (M)")
		rounds    = fs.Int("rounds", 10, "training rounds")
		steps     = fs.Int("steps", 2, "mini-batches per client turn")
		imageSize = fs.Int("image-size", 8, "synthetic GTSRB image edge")
		testPer   = fs.Int("test-per-class", 2, "test samples per class")
		cut       = fs.Int("cut", env.DefaultCut, "cut layer index")
		lr        = fs.Float64("lr", 0.02, "server-side learning rate")
		momentum  = fs.Float64("momentum", 0.9, "server-side momentum")
		clipNorm  = fs.Float64("clip-norm", 0, "gradient clipping norm (0 = off, must match clients)")
		quant     = fs.Bool("quant", false, "quantize transfer frames to 8 bits (must match clients)")
		seed      = fs.Int64("seed", 7, "model init seed")
		wait      = fs.Duration("wait", 60*time.Second, "how long to wait for clients")
		deadline  = fs.Duration("deadline", 0, "per-round deadline; clients that miss it become stragglers (0 = none)")
		straggler = fs.String("straggler", "drop",
			"straggler fallback policy: "+strings.Join(env.StragglerPolicies(), "|"))
		metrics = fs.String("metrics", "", "serve transport counters over HTTP on this address (e.g. 127.0.0.1:9090)")
		list    = fs.Bool("list", false, "list the registered extension points, then exit")
	)
	var obsFlags cliutil.ObsFlags
	obsFlags.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		cliutil.PrintRegistries(os.Stdout)
		return nil
	}

	src, err := env.NewDataset(env.DefaultDataset, env.DataConfig{ImageSize: *imageSize, Seed: *seed + 1})
	if err != nil {
		return err
	}
	arch, err := env.NewArch(env.DefaultArch, env.ArchConfig{ImageSize: *imageSize, Classes: src.Classes()})
	if err != nil {
		return err
	}
	test := src.Balanced(*testPer)
	groupAssign, err := env.GroupClients(*clients, *groups, "round-robin", nil, nil)
	if err != nil {
		return err
	}

	tracer, obsStop, err := obsFlags.Start(obs.ClockWall)
	if err != nil {
		return err
	}
	ap, err := env.NewAP(*addr, env.APConfig{
		Arch:           arch,
		Cut:            *cut,
		Groups:         groupAssign,
		StepsPerClient: *steps,
		LR:             *lr,
		Momentum:       *momentum,
		ClipNorm:       *clipNorm,
		Test:           test,
		Seed:           *seed,
		Quantize:       *quant,
		RoundDeadline:  *deadline,
		Straggler:      *straggler,
		MetricsAddr:    *metrics,
		Tracer:         tracer,
	})
	if err != nil {
		return err
	}
	defer ap.Shutdown()
	defer func() {
		if err := obsStop(); err != nil {
			fmt.Fprintln(os.Stderr, "gsfl-ap:", err)
		}
	}()

	fmt.Printf("AP listening on %s, waiting for %d clients (groups %v)...\n",
		ap.Addr(), *clients, groupAssign)
	if maddr := ap.MetricsAddr(); maddr != "" {
		fmt.Printf("metrics on http://%s/metrics\n", maddr)
	}
	if err := ap.WaitForClients(*wait); err != nil {
		return err
	}
	fmt.Println("all clients registered; training")

	for r := 1; r <= *rounds; r++ {
		stats, err := ap.Round()
		if err != nil {
			// Post-mortem: the flight recorder holds the recent round
			// summaries and straggler events that led here.
			fmt.Fprintln(os.Stderr, "gsfl-ap: flight recorder dump:")
			ap.Flight().WriteTo(os.Stderr)
			return err
		}
		l, a := ap.Evaluate()
		fmt.Printf("round %3d  wall %8s  loss %7.4f  acc %6.2f%%  participants %d",
			r, stats.Duration.Round(time.Millisecond), l, a*100, stats.Participants)
		faulted := stats.Stragglers > 0 || stats.Skipped > 0 || stats.Refilled > 0
		if faulted {
			fmt.Printf("  (stragglers %d, skipped %d, refilled %d)",
				stats.Stragglers, stats.Skipped, stats.Refilled)
		}
		fmt.Println()
		if stats.Stragglers > 0 {
			// Straggler deadlines are the deployment's most actionable
			// fault; dump the recorder so the operator sees who and why.
			fmt.Fprintf(os.Stderr, "gsfl-ap: flight recorder after round %d:\n", r)
			ap.Flight().WriteTo(os.Stderr)
		}
	}
	return ap.Shutdown()
}
