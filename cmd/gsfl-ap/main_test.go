package main

import (
	"bufio"
	"os"
	"strings"
	"testing"
)

func TestRunRejectsBadInputs(t *testing.T) {
	cases := map[string][]string{
		"bad flag":              {"-no-such-flag"},
		"bad straggler policy":  {"-straggler", "bogus", "-wait", "100ms", "-addr", "127.0.0.1:0"},
		"bad cut":               {"-cut", "99", "-wait", "100ms", "-addr", "127.0.0.1:0"},
		"clients below groups":  {"-clients", "1", "-groups", "2", "-wait", "100ms", "-addr", "127.0.0.1:0"},
		"unparseable deadline":  {"-deadline", "soon"},
		"unparseable clip-norm": {"-clip-norm", "tight"},
	}
	for name, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestRunTimesOutWithoutClients(t *testing.T) {
	err := run([]string{
		"-addr", "127.0.0.1:0",
		"-clients", "2", "-groups", "1", "-rounds", "1",
		"-deadline", "1s", "-straggler", "reuse-last",
		"-wait", "100ms",
	})
	if err == nil {
		t.Fatal("expected timeout error with no clients")
	}
}

// captureStdout runs f with os.Stdout redirected and returns its output.
func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	f()
	w.Close()
	var sb strings.Builder
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteString("\n")
	}
	return sb.String()
}

func TestListFlag(t *testing.T) {
	out := captureStdout(t, func() {
		if err := run([]string{"-list"}); err != nil {
			t.Error(err)
		}
	})
	// The deployment registries must stream through -list alongside the
	// simulator ones — single source of truth in cliutil.
	for _, want := range []string{"stragglers:", "drop", "reuse-last", "archs:", "datasets:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("-list output missing %q:\n%s", want, out)
		}
	}
}
