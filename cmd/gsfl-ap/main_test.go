package main

import (
	"testing"
)

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("expected flag error")
	}
}

func TestRunTimesOutWithoutClients(t *testing.T) {
	err := run([]string{
		"-addr", "127.0.0.1:0",
		"-clients", "2", "-groups", "1", "-rounds", "1",
		"-wait", "100ms",
	})
	if err == nil {
		t.Fatal("expected timeout error with no clients")
	}
}
