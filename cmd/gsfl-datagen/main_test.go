package main

import (
	"os"
	"path/filepath"
	"testing"

	"gsfl/env"
)

func TestRunPNG(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"-per-class", "1", "-size", "16", "-format", "png", "-out", dir})
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	src, err := env.NewDataset(env.DefaultDataset, env.DataConfig{ImageSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != src.Classes() {
		t.Fatalf("wrote %d PNGs, want %d", len(entries), src.Classes())
	}
}

func TestRunCSV(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"-per-class", "1", "-size", "8", "-format", "csv", "-out", dir})
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "gtsrb_synthetic.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(b) == 0 {
		t.Fatal("empty CSV")
	}
}

func TestRunRejectsBadFormat(t *testing.T) {
	if err := run([]string{"-format", "bogus", "-out", t.TempDir()}); err == nil {
		t.Fatal("expected error")
	}
}

func TestRunDeterministicPNGBytes(t *testing.T) {
	d1, d2 := t.TempDir(), t.TempDir()
	for _, d := range []string{d1, d2} {
		if err := run([]string{"-per-class", "1", "-size", "8", "-out", d, "-seed", "5"}); err != nil {
			t.Fatal(err)
		}
	}
	f1, err := os.ReadFile(filepath.Join(d1, "class00_sample00_label00.png"))
	if err != nil {
		t.Fatal(err)
	}
	f2, err := os.ReadFile(filepath.Join(d2, "class00_sample00_label00.png"))
	if err != nil {
		t.Fatal(err)
	}
	if string(f1) != string(f2) {
		t.Fatal("same seed produced different PNGs")
	}
}
