// Command gsfl-datagen renders synthetic GTSRB samples to disk, either
// as PNG images (for eyeballing the generator) or as a CSV of flattened
// features (for external tooling).
//
// Example:
//
//	gsfl-datagen -per-class 3 -size 32 -format png -out samples/
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"image"
	"image/color"
	"image/png"
	"os"
	"path/filepath"
	"strconv"

	"gsfl/env"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gsfl-datagen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gsfl-datagen", flag.ContinueOnError)
	var (
		perClass = fs.Int("per-class", 2, "samples per class")
		size     = fs.Int("size", 32, "image edge length in pixels")
		format   = fs.String("format", "png", "output format: png|csv")
		outDir   = fs.String("out", "samples", "output directory")
		seed     = fs.Int64("seed", 1, "random seed")
		noise    = fs.Float64("noise", 0.08, "pixel noise standard deviation")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	src, err := env.NewDataset(env.DefaultDataset, env.DataConfig{
		ImageSize: *size,
		Seed:      *seed,
		Options:   map[string]float64{"noise_std": *noise},
	})
	if err != nil {
		return err
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}

	switch *format {
	case "png":
		return writePNGs(src, *outDir, *perClass, *size)
	case "csv":
		return writeCSV(src, *outDir, *perClass, *size)
	default:
		return fmt.Errorf("unknown format %q (want png|csv)", *format)
	}
}

func writePNGs(gen env.DataSource, dir string, perClass, size int) error {
	plane := size * size
	for c := 0; c < gen.Classes(); c++ {
		for i := 0; i < perClass; i++ {
			feats, label := gen.Sample(c)
			img := image.NewRGBA(image.Rect(0, 0, size, size))
			for y := 0; y < size; y++ {
				for x := 0; x < size; x++ {
					p := y*size + x
					img.Set(x, y, color.RGBA{
						R: uint8(feats[p] * 255),
						G: uint8(feats[plane+p] * 255),
						B: uint8(feats[2*plane+p] * 255),
						A: 255,
					})
				}
			}
			name := filepath.Join(dir, fmt.Sprintf("class%02d_sample%02d_label%02d.png", c, i, label))
			f, err := os.Create(name)
			if err != nil {
				return err
			}
			if err := png.Encode(f, img); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	fmt.Printf("wrote %d PNGs to %s\n", gen.Classes()*perClass, dir)
	return nil
}

func writeCSV(gen env.DataSource, dir string, perClass, size int) error {
	path := filepath.Join(dir, "gtsrb_synthetic.csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	header := make([]string, 1, 1+3*size*size)
	header[0] = "label"
	for i := 0; i < 3*size*size; i++ {
		header = append(header, "p"+strconv.Itoa(i))
	}
	if err := w.Write(header); err != nil {
		return err
	}
	for c := 0; c < gen.Classes(); c++ {
		for i := 0; i < perClass; i++ {
			feats, label := gen.Sample(c)
			rec := make([]string, 1, 1+len(feats))
			rec[0] = strconv.Itoa(label)
			for _, v := range feats {
				rec = append(rec, strconv.FormatFloat(v, 'f', 4, 64))
			}
			if err := w.Write(rec); err != nil {
				return err
			}
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	fmt.Printf("wrote %d samples to %s\n", gen.Classes()*perClass, path)
	return f.Close()
}
