package main

import (
	"testing"
)

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("expected flag error")
	}
}

func TestRunRejectsNegativeID(t *testing.T) {
	if err := run([]string{"-id", "-1"}); err == nil {
		t.Fatal("expected id validation error")
	}
}

func TestRunFailsWhenAPUnreachable(t *testing.T) {
	err := run([]string{"-addr", "127.0.0.1:1", "-id", "0", "-samples", "5", "-image-size", "8"})
	if err == nil {
		t.Fatal("expected dial error")
	}
}
