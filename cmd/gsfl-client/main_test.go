package main

import (
	"testing"
)

func TestRunRejectsBadInputs(t *testing.T) {
	cases := map[string][]string{
		"bad flag":              {"-no-such-flag"},
		"negative id":           {"-id", "-1"},
		"unparseable id":        {"-id", "one"},
		"unparseable clip-norm": {"-clip-norm", "tight"},
		"unparseable quant":     {"-quant", "-id"}, // bool flag eats no value; "-id" then misses its argument
	}
	for name, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestRunFailsWhenAPUnreachable(t *testing.T) {
	err := run([]string{
		"-addr", "127.0.0.1:1", "-id", "0", "-samples", "5", "-image-size", "8",
		"-clip-norm", "5", "-quant",
	})
	if err == nil {
		t.Fatal("expected dial error")
	}
}
