// Command gsfl-client runs one GSFL client node as a real network
// process: it generates its private synthetic-GTSRB shard (derived from
// its -id, so shards are disjoint across clients), dials the AP, and
// serves training turns until the AP shuts the fleet down.
//
// See cmd/gsfl-ap for the matching server and a launch example.
package main

import (
	"flag"
	"fmt"
	"os"

	"gsfl/env"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gsfl-client:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gsfl-client", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:7070", "AP address")
		id        = fs.Int("id", 0, "client ID (must appear in the AP's groups)")
		samples   = fs.Int("samples", 60, "private training samples")
		imageSize = fs.Int("image-size", 8, "synthetic GTSRB image edge (must match AP)")
		cut       = fs.Int("cut", env.DefaultCut, "cut layer index (must match AP)")
		batch     = fs.Int("batch", 8, "mini-batch size")
		lr        = fs.Float64("lr", 0.02, "client-side learning rate")
		momentum  = fs.Float64("momentum", 0.9, "client-side momentum")
		clipNorm  = fs.Float64("clip-norm", 0, "gradient clipping norm (0 = off, must match AP)")
		quant     = fs.Bool("quant", false, "quantize transfer frames to 8 bits (must match AP)")
		dataSeed  = fs.Int64("data-seed", 1000, "base seed; shard seed = base + id")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id < 0 {
		return fmt.Errorf("client id %d must be non-negative", *id)
	}

	src, err := env.NewDataset(env.DefaultDataset, env.DataConfig{ImageSize: *imageSize, Seed: *dataSeed + int64(*id)})
	if err != nil {
		return err
	}
	arch, err := env.NewArch(env.DefaultArch, env.ArchConfig{ImageSize: *imageSize, Classes: src.Classes()})
	if err != nil {
		return err
	}
	train := src.Pool(*samples)

	client, err := env.Dial(*addr, env.ClientConfig{
		ID:       *id,
		Arch:     arch,
		Cut:      *cut,
		Train:    train,
		Batch:    *batch,
		LR:       *lr,
		Momentum: *momentum,
		ClipNorm: *clipNorm,
		Quantize: *quant,
		Seed:     *dataSeed + 7919*int64(*id),
	})
	if err != nil {
		return err
	}
	fmt.Printf("client %d connected to %s with %d private samples\n", *id, *addr, train.Len())
	if err := client.Run(); err != nil {
		return err
	}
	fmt.Printf("client %d: shutdown received, exiting\n", *id)
	return nil
}
