// Command gsfl-bench regenerates the paper's figures and tables as CSV
// files under an output directory (default ./results).
//
// Experiments (see DESIGN.md's experiment index):
//
//	fig2a    accuracy vs rounds for CL/SL/GSFL/FL     -> fig2a.csv
//	fig2b    accuracy vs latency for GSFL/SL          -> fig2b.csv
//	table1   rounds-to-target convergence comparison  -> table1.csv
//	table2   per-round latency breakdown per scheme   -> table2.csv
//	table3   edge-server storage GSFL vs SplitFed     -> table3.csv
//	cutlayer cut-layer ablation (A1)                  -> ablation_cutlayer.csv
//	grouping group count/strategy ablation (A2)       -> ablation_grouping.csv
//	resalloc bandwidth-allocation ablation (A3)       -> ablation_resalloc.csv
//	pipeline pipelined-turn ablation (P)              -> ablation_pipeline.csv
//	quant    8-bit transfer ablation (Q)              -> ablation_quant.csv
//	dropout  client-dropout robustness (D)            -> ablation_dropout.csv
//	noniid   data-heterogeneity sweep (N)             -> ablation_noniid.csv
//	popsample population-sampling study (PR 7)        -> popsample.csv
//	seeds    seed-variance study (S)                  -> seed_variance.csv
//	numeric  exact-vs-fast kernel comparison (PR 8)   -> numeric.csv
//	validate analytic vs event-driven latency (V)     -> latency_model_validation.csv
//	all      everything above
//
// Every experiment except table3/validate is a job grid executed by the
// gsfl/sweep scheduler: -jobs N trains N grid cells concurrently
// (duplicated cells across experiments run once), and the CSVs are
// byte-identical for every N — including N=1, which reproduces the
// historical serial harness exactly.
//
// Example:
//
//	gsfl-bench -exp fig2b -scale medium -out results/
//	gsfl-bench -exp all -scale test -jobs 8
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"gsfl/cliutil"
	"gsfl/obs"
	"gsfl/sim"
	"gsfl/sweep"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gsfl-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gsfl-bench", flag.ContinueOnError)
	var (
		exp    = fs.String("exp", "all", "experiment: fig2a|fig2b|table1|table2|table3|cutlayer|grouping|resalloc|pipeline|quant|dropout|noniid|popsample|seeds|numeric|validate|all")
		scale  = fs.String("scale", "test", "scale: test|medium|paper")
		outDir = fs.String("out", "results", "output directory")
		rounds = fs.Int("rounds", 0, "override training rounds (0 = scale default)")
		jobs   = fs.Int("jobs", 1, "grid cells trained concurrently (0 = GOMAXPROCS); CSVs are byte-identical for every value")

		benchJSON  = fs.String("benchjson", "", "measure the training hot path and write ns/B/allocs per op to this JSON file (skips experiments)")
		benchPop   = fs.String("benchpop", "", "measure the million-member population engine and write its memory/latency report to this JSON file (skips experiments)")
		benchCheck = fs.String("benchcheck", "", "compare the live GEMM hot path against the recorded gemm stage in this report (e.g. BENCH_hotpath.json); exit non-zero on >25% regression (skips experiments)")
		benchLabel = fs.String("benchlabel", "", "label recorded in the -benchjson/-benchpop report (e.g. baseline, after)")
	)
	var env cliutil.EnvFlags
	env.Register(fs)
	var obsFlags cliutil.ObsFlags
	obsFlags.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *benchJSON != "" {
		return sweep.WriteHotPathBench(*benchJSON, *benchLabel)
	}
	if *benchPop != "" {
		return sweep.WritePopulationBench(*benchPop, *benchLabel)
	}
	if *benchCheck != "" {
		return sweep.CheckHotPathBench(*benchCheck)
	}
	sc, err := cliutil.ParseScale(*scale)
	if err != nil {
		return err
	}
	spec, r, evalEvery, target := sc.Spec, sc.Rounds, sc.EvalEvery, sc.Target
	if *rounds > 0 {
		r = *rounds
	}
	if err := env.Apply(&spec); err != nil {
		return err
	}

	// Grid-backed experiments: expand the selected grids, schedule every
	// cell once (IDs deduplicate overlaps like table1 ⊂ fig2a), then fold
	// each experiment's slice of results into its CSVs.
	catalogue := sweep.GridExperiments(spec, r, evalEvery, target)
	known := map[string]bool{"table3": true, "validate": true, "all": true}
	for _, e := range catalogue {
		known[e.Name] = true
	}
	if !known[*exp] {
		return fmt.Errorf("unknown experiment %q", *exp)
	}

	sel, err := sweep.SelectGridExperiments(catalogue, *exp)
	if err != nil {
		return err
	}
	tracer, obsStop, err := obsFlags.Start(obs.ClockWall)
	if err != nil {
		return err
	}
	defer func() {
		if err := obsStop(); err != nil {
			fmt.Fprintln(os.Stderr, "gsfl-bench:", err)
		}
	}()
	if len(sel.Jobs) > 0 {
		sched := &sweep.Scheduler{Jobs: *jobs, Workers: env.Workers, Tracer: tracer}
		start := time.Now()
		results, err := sched.Run(context.Background(), sel.Jobs, nil)
		if err != nil {
			return err
		}
		fmt.Printf("trained %d grid cells in %v (-jobs %d)\n",
			len(sel.Jobs), time.Since(start).Round(time.Millisecond), *jobs)
		if err := sel.Save(*outDir, results, func(name string, cells int) {
			fmt.Printf("%-10s saved (%d cells)\n", name, cells)
		}); err != nil {
			return err
		}
	}

	// table3/validate run outside the scheduler, on the full budget.
	sim.SetWorkers(env.Workers)

	run := func(name string, f func() error) error {
		if *exp != "all" && *exp != name {
			return nil
		}
		start := time.Now()
		if err := f(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("%-10s done in %v\n", name, time.Since(start).Round(time.Millisecond))
		return nil
	}

	if err := run("table3", func() error {
		tbl, err := sweep.RunTable3(spec)
		if err != nil {
			return err
		}
		return tbl.SaveCSV(filepath.Join(*outDir, "table3.csv"))
	}); err != nil {
		return err
	}

	return run("validate", func() error {
		res, err := sweep.RunValidationEventDriven(spec)
		if err != nil {
			return err
		}
		tbl := sweep.NewTable("latency-model-validation",
			"analytic_s", "event_driven_s", "relative_gap")
		tbl.Add(sweep.Row{
			"analytic_s":     fmt.Sprintf("%.4f", res.AnalyticSeconds),
			"event_driven_s": fmt.Sprintf("%.4f", res.EventDrivenSeconds),
			"relative_gap":   fmt.Sprintf("%+.4f", res.RelativeGap),
		})
		return tbl.SaveCSV(filepath.Join(*outDir, "latency_model_validation.csv"))
	})
}
